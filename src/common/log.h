// Minimal leveled, thread-safe logger.
//
// Experiments keep the default level at kWarn so bench output stays clean;
// examples raise it to kInfo to narrate the platform's feedback loop.
#pragma once

#include <cstdarg>
#include <string>

namespace softborg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

// printf-style; a newline is appended.
void log_at(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace softborg

#define SB_LOG_DEBUG(...) ::softborg::log_at(::softborg::LogLevel::kDebug, __VA_ARGS__)
#define SB_LOG_INFO(...) ::softborg::log_at(::softborg::LogLevel::kInfo, __VA_ARGS__)
#define SB_LOG_WARN(...) ::softborg::log_at(::softborg::LogLevel::kWarn, __VA_ARGS__)
#define SB_LOG_ERROR(...) ::softborg::log_at(::softborg::LogLevel::kError, __VA_ARGS__)
