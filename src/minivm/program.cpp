#include "minivm/program.h"

#include <unordered_set>

namespace softborg {

bool is_binary_alu(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kCmpLt:
    case Op::kCmpLe:
    case Op::kCmpEq:
    case Op::kCmpNe:
      return true;
    default:
      return false;
  }
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kCmpLt: return "cmplt";
    case Op::kCmpLe: return "cmple";
    case Op::kCmpEq: return "cmpeq";
    case Op::kCmpNe: return "cmpne";
    case Op::kBranchIf: return "brif";
    case Op::kJump: return "jump";
    case Op::kInput: return "input";
    case Op::kSyscall: return "syscall";
    case Op::kLoadG: return "loadg";
    case Op::kStoreG: return "storeg";
    case Op::kLock: return "lock";
    case Op::kUnlock: return "unlock";
    case Op::kAssert: return "assert";
    case Op::kAbort: return "abort";
    case Op::kOutput: return "output";
    case Op::kYield: return "yield";
    case Op::kHalt: return "halt";
  }
  return "?";
}

bool Program::validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };

  if (code.empty()) return fail("empty code");
  if (thread_entries.empty()) return fail("no thread entries");
  for (auto entry : thread_entries) {
    if (entry >= code.size()) return fail("thread entry out of range");
  }

  const std::uint32_t n = static_cast<std::uint32_t>(code.size());
  std::unordered_set<std::uint32_t> sites_seen;

  for (std::uint32_t pc = 0; pc < n; ++pc) {
    const Instr& ins = code[pc];
    auto reg_ok = [&](std::uint32_t r) { return r < num_regs; };
    switch (ins.op) {
      case Op::kConst:
        if (!reg_ok(ins.a)) return fail("const: bad reg");
        break;
      case Op::kMov:
        if (!reg_ok(ins.a) || !reg_ok(ins.b)) return fail("mov: bad reg");
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpEq:
      case Op::kCmpNe:
        if (!reg_ok(ins.a) || !reg_ok(ins.b) || !reg_ok(ins.c)) {
          return fail("alu: bad reg");
        }
        break;
      case Op::kBranchIf:
        if (!reg_ok(ins.a)) return fail("brif: bad reg");
        if (ins.b >= n || ins.c >= n) return fail("brif: target out of range");
        if (ins.site >= num_branch_sites) return fail("brif: bad site id");
        if (!sites_seen.insert(ins.site).second) {
          return fail("brif: duplicate site id");
        }
        break;
      case Op::kDiv:
      case Op::kMod:
        if (!reg_ok(ins.a) || !reg_ok(ins.b) || !reg_ok(ins.c)) {
          return fail("div/mod: bad reg");
        }
        if (ins.site >= num_branch_sites) return fail("div/mod: bad site id");
        if (!sites_seen.insert(ins.site).second) {
          return fail("div/mod: duplicate site id");
        }
        break;
      case Op::kJump:
        if (ins.a >= n) return fail("jump: target out of range");
        break;
      case Op::kInput:
        if (!reg_ok(ins.a)) return fail("input: bad reg");
        if (ins.b >= num_inputs) return fail("input: bad slot");
        break;
      case Op::kSyscall:
        if (!reg_ok(ins.a) || !reg_ok(ins.c)) return fail("syscall: bad reg");
        break;
      case Op::kLoadG:
        if (!reg_ok(ins.a)) return fail("loadg: bad reg");
        if (ins.b >= num_globals) return fail("loadg: bad global");
        break;
      case Op::kStoreG:
        if (ins.a >= num_globals) return fail("storeg: bad global");
        if (!reg_ok(ins.b)) return fail("storeg: bad reg");
        break;
      case Op::kLock:
      case Op::kUnlock:
        if (ins.a >= num_locks) return fail("lock/unlock: bad lock");
        break;
      case Op::kAssert:
        if (!reg_ok(ins.a)) return fail("assert: bad reg");
        if (ins.site >= num_branch_sites) return fail("assert: bad site id");
        if (!sites_seen.insert(ins.site).second) {
          return fail("assert: duplicate site id");
        }
        break;
      case Op::kAbort:
        break;
      case Op::kOutput:
        if (!reg_ok(ins.a)) return fail("output: bad reg");
        break;
      case Op::kYield:
      case Op::kHalt:
        break;
    }
  }

  if (sites_seen.size() != num_branch_sites) {
    return fail("branch site ids not dense");
  }
  return true;
}

}  // namespace softborg
