file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_bug_density.dir/bench_e3_bug_density.cpp.o"
  "CMakeFiles/bench_e3_bug_density.dir/bench_e3_bug_density.cpp.o.d"
  "bench_e3_bug_density"
  "bench_e3_bug_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_bug_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
