// Causal trace context + flight recorder (ISSUE 10 tentpole): hop-path
// algebra, the deterministic causal id, the recorder's ring + snapshot
// pipeline, and the dump codec under the same hostile-input posture as
// dist_frame_test — truncation at every boundary, every single-bit flip,
// trailing garbage.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace softborg::obs {
namespace {

// --- trace context ---------------------------------------------------------

TEST(TraceContext, WithHopShiftsAndIsIdempotent) {
  TraceContext ctx{42, 0};
  ctx = with_hop(ctx, Hop::kPod);
  EXPECT_EQ(ctx.hop_path, 0x1);
  ctx = with_hop(ctx, Hop::kPod);  // repeated newest hop does not flood
  EXPECT_EQ(ctx.hop_path, 0x1);
  ctx = with_hop(ctx, Hop::kRouter);
  EXPECT_EQ(ctx.hop_path, 0x12);
  ctx = with_hop(ctx, Hop::kShard);
  ctx = with_hop(ctx, Hop::kMerge);
  EXPECT_EQ(ctx.hop_path, 0x1234);
  EXPECT_TRUE(has_hop(ctx, Hop::kPod));
  EXPECT_TRUE(has_hop(ctx, Hop::kMerge));
  EXPECT_FALSE(has_hop(ctx, Hop::kProof));
  // A fifth hop pushes the oldest off the top.
  ctx = with_hop(ctx, Hop::kProof);
  EXPECT_EQ(ctx.hop_path, 0x2345);
  EXPECT_FALSE(has_hop(ctx, Hop::kPod));
}

TEST(TraceContext, HopPathStrRendersOldestFirst) {
  char buf[kHopPathStrMax];
  TraceContext ctx{1, 0};
  ctx = with_hop(ctx, Hop::kPod);
  ctx = with_hop(ctx, Hop::kRouter);
  ctx = with_hop(ctx, Hop::kShard);
  ctx = with_hop(ctx, Hop::kMerge);
  EXPECT_STREQ(hop_path_str(ctx.hop_path, buf), "pod>router>shard>merge");
  EXPECT_STREQ(hop_path_str(0, buf), "");
  EXPECT_STREQ(hop_path_str(0x1, buf), "pod");
}

TEST(TraceContext, CausalIdIsDeterministicAndNeverZero) {
  EXPECT_EQ(causal_trace_id(7, 3), causal_trace_id(7, 3));
  EXPECT_NE(causal_trace_id(7, 3), causal_trace_id(8, 3));
  EXPECT_NE(causal_trace_id(7, 3), causal_trace_id(7, 4));
  Rng rng(0xc0de);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_NE(causal_trace_id(rng(), rng()), 0u);
  }
  EXPECT_NE(causal_trace_id(0, 0), 0u);
}

TEST(TraceContext, ScopedContextRestoresOnExit) {
  EXPECT_FALSE(current_context().valid());
  {
    ScopedTraceContext outer({11, 0x1});
    EXPECT_EQ(current_context().trace_id, 11u);
    {
      ScopedTraceContext inner({22, 0x12});
      EXPECT_EQ(current_context().trace_id, 22u);
    }
    EXPECT_EQ(current_context().trace_id, 11u);
  }
  EXPECT_FALSE(current_context().valid());
}

// --- recorder ring + snapshot ----------------------------------------------

TEST(Recorder, DisabledRecordIsANoOp) {
  auto& rec = Recorder::global();
  Recorder::set_enabled(false);
  rec.clear();
  Recorder::record(EventKind::kPodEmit, {1, 0x1}, 7);
  Recorder::set_enabled(true);
  const RecorderDump dump = rec.snapshot();
  Recorder::set_enabled(false);
  std::size_t events = 0;
  for (const auto& t : dump.threads) events += t.events.size();
  EXPECT_EQ(events, 0u);
}

TEST(Recorder, RecordSnapshotRoundTripsEventsAndNames) {
  auto& rec = Recorder::global();
  rec.clear();
  rec.set_label("unit-test");
  Recorder::set_enabled(true);
  const std::uint32_t name = rec.intern_name("test.span");
  Recorder::record(EventKind::kSpanBegin, {}, name);
  Recorder::record(EventKind::kPodEmit, {0xabcdef, 0x12}, 3, 99);
  Recorder::record(EventKind::kSpanEnd, {}, name);
  const RecorderDump dump = rec.snapshot();
  Recorder::set_enabled(false);
  rec.clear();

  EXPECT_EQ(dump.label, "unit-test");
  ASSERT_GT(dump.names.size(), name);
  EXPECT_EQ(dump.names[name], "test.span");
  ASSERT_EQ(dump.threads.size(), 1u);
  const auto& events = dump.threads[0].events;
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, static_cast<std::uint16_t>(EventKind::kSpanBegin));
  EXPECT_EQ(events[0].arg, name);
  EXPECT_EQ(events[1].kind, static_cast<std::uint16_t>(EventKind::kPodEmit));
  EXPECT_EQ(events[1].trace_id, 0xabcdefu);
  EXPECT_EQ(events[1].hop_path, 0x12u);
  EXPECT_EQ(events[1].arg, 3u);
  EXPECT_EQ(events[1].arg2, 99u);
  // Timestamps are monotone within a thread.
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_LE(events[1].ts_ns, events[2].ts_ns);
}

TEST(Recorder, InternIsStableAndSpanSitePinsLiterals) {
  auto& rec = Recorder::global();
  const std::uint32_t a = rec.intern_name("recorder.test.a");
  EXPECT_EQ(rec.intern_name("recorder.test.a"), a);
  EXPECT_NE(rec.intern_name("recorder.test.b"), a);
}

// --- dump codec: round-trip + hostile input --------------------------------

RecorderDump make_dump(Rng& rng, std::size_t threads, std::size_t events) {
  RecorderDump d;
  d.pid = rng();
  d.mono_ns = rng();
  d.real_ns = rng();
  d.label = "shard" + std::to_string(rng.next_below(100));
  d.names = {"", "a.span", "b.span"};
  for (std::size_t t = 0; t < threads; ++t) {
    RecorderDump::ThreadEvents te;
    te.tid = static_cast<std::uint32_t>(rng());
    for (std::size_t i = 0; i < events; ++i) {
      RecorderEvent e{};
      e.ts_ns = rng();
      e.trace_id = rng();
      e.arg2 = rng();
      e.arg = static_cast<std::uint32_t>(rng());
      e.hop_path = static_cast<std::uint16_t>(rng());
      e.kind = static_cast<std::uint16_t>(rng.next_below(17));
      te.events.push_back(e);
    }
    d.threads.push_back(std::move(te));
  }
  return d;
}

void expect_equal(const RecorderDump& a, const RecorderDump& b) {
  EXPECT_EQ(a.pid, b.pid);
  EXPECT_EQ(a.mono_ns, b.mono_ns);
  EXPECT_EQ(a.real_ns, b.real_ns);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.names, b.names);
  ASSERT_EQ(a.threads.size(), b.threads.size());
  for (std::size_t t = 0; t < a.threads.size(); ++t) {
    EXPECT_EQ(a.threads[t].tid, b.threads[t].tid);
    ASSERT_EQ(a.threads[t].events.size(), b.threads[t].events.size());
    for (std::size_t i = 0; i < a.threads[t].events.size(); ++i) {
      const RecorderEvent& x = a.threads[t].events[i];
      const RecorderEvent& y = b.threads[t].events[i];
      EXPECT_EQ(x.ts_ns, y.ts_ns);
      EXPECT_EQ(x.trace_id, y.trace_id);
      EXPECT_EQ(x.arg2, y.arg2);
      EXPECT_EQ(x.arg, y.arg);
      EXPECT_EQ(x.hop_path, y.hop_path);
      EXPECT_EQ(x.kind, y.kind);
    }
  }
}

TEST(RecorderCodec, RoundTripsRandomDumps) {
  Rng rng(0xd00d);
  for (int trial = 0; trial < 50; ++trial) {
    const RecorderDump d =
        make_dump(rng, rng.next_below(4), rng.next_below(64));
    const Bytes wire = encode_recorder_dump(d);
    const auto back = decode_recorder_dump(wire);
    ASSERT_TRUE(back.has_value()) << "trial " << trial;
    expect_equal(d, *back);
  }
}

TEST(RecorderCodec, TruncationAtEveryBoundaryRejects) {
  Rng rng(0xbeef);
  const Bytes wire = encode_recorder_dump(make_dump(rng, 2, 8));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes partial(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode_recorder_dump(partial).has_value()) << "cut " << cut;
  }
}

TEST(RecorderCodec, EveryBitFlipRejects) {
  Rng rng(0xf1ee);
  const Bytes wire = encode_recorder_dump(make_dump(rng, 1, 12));
  // The trailing checksum covers every byte before it, and a flip inside
  // the checksum itself mismatches the recomputed hash: no single-bit
  // corruption may survive decode.
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    Bytes flipped = wire;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(decode_recorder_dump(flipped).has_value()) << "bit " << bit;
  }
}

TEST(RecorderCodec, TrailingGarbageRejects) {
  Rng rng(0xcafe);
  Bytes wire = encode_recorder_dump(make_dump(rng, 1, 4));
  wire.push_back(0);
  EXPECT_FALSE(decode_recorder_dump(wire).has_value());
}

TEST(RecorderCodec, RandomGarbageNeverCrashes) {
  Rng rng(0xdead);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes junk(rng.next_below(4096));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    (void)decode_recorder_dump(junk);  // must not crash or over-allocate
  }
}

// --- exporter ---------------------------------------------------------------

TEST(ChromeTrace, MergesDumpsOntoOneClockAxisWithFlows) {
  // Two "processes" whose monotonic clocks disagree wildly but whose
  // realtime anchors agree: the exporter must land their events on one
  // axis, pair spans, and chain the shared causal id across both.
  const std::uint64_t id = causal_trace_id(1, 2);
  RecorderDump a;
  a.pid = 100;
  a.mono_ns = 1'000'000;
  a.real_ns = 5'000'000'000ull;
  a.label = "router";
  a.names = {"", "router.pump"};
  {
    RecorderDump::ThreadEvents t;
    t.tid = 1;
    t.events.push_back({100'000, 0, 0, 1, 0,
                        static_cast<std::uint16_t>(EventKind::kSpanBegin)});
    t.events.push_back({150'000, id, 0, 0, 0x12,
                        static_cast<std::uint16_t>(EventKind::kRouterIngress)});
    t.events.push_back({200'000, 0, 0, 1, 0,
                        static_cast<std::uint16_t>(EventKind::kSpanEnd)});
    a.threads.push_back(std::move(t));
  }
  RecorderDump b;
  b.pid = 200;
  b.mono_ns = 999'000'000'000ull;  // different monotonic epoch
  b.real_ns = 5'000'000'000ull;
  b.label = "shard0";
  {
    RecorderDump::ThreadEvents t;
    t.tid = 2;
    t.events.push_back({998'999'000'000ull, id, 0, 0, 0x1234,
                        static_cast<std::uint16_t>(EventKind::kMerge)});
    b.threads.push_back(std::move(t));
  }
  ChromeTraceStats st;
  const std::string json = to_chrome_trace({a, b}, &st);
  EXPECT_EQ(st.processes, 2u);
  EXPECT_EQ(st.events, 3u);  // one slice + two instants
  EXPECT_EQ(st.flows, 1u);
  // Both hops pod..merge appear across two pids -> an end-to-end chain.
  EXPECT_EQ(st.cross_process_chains, 1u);
  EXPECT_NE(json.find("\"router_ingress\""), std::string::npos);
  EXPECT_NE(json.find("\"router.pump\""), std::string::npos);
  EXPECT_NE(json.find("\"merge\""), std::string::npos);
  EXPECT_NE(json.find("pod>router>shard>merge"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Clock alignment, not raw monotonic stamps: shard0's merge has a raw
  // stamp ~999s (far after the router's 150us), but its realtime anchor
  // places it 100us BEFORE the router's span begin on the shared axis —
  // the sorted output must lead with it.
  EXPECT_LT(json.find("\"merge\""), json.find("\"router_ingress\""));
}

TEST(ChromeTrace, EmptyDumpsStillValid) {
  ChromeTraceStats st;
  const std::string json = to_chrome_trace({}, &st);
  EXPECT_EQ(st.events, 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace softborg::obs
