// Human-readable disassembly of MiniVM programs (debugging, the repair
// lab's human-facing output, and golden tests) — plus views of the decoded
// dispatch stream: the superinstruction listing and the opcode-pair
// frequency dump that justifies the fusion table.
#pragma once

#include <string>

#include "minivm/decode.h"
#include "minivm/program.h"

namespace softborg {

// Instruction text without the pc prefix, e.g. "brif  r3 ? ->14 : ->17   (site 2)".
std::string instr_text(const Instr& ins);

// One instruction, e.g. "  12: brif  r3 ? ->14 : ->17   (site 2)".
std::string disassemble_instr(const Instr& ins, std::uint32_t pc);

// Whole program listing with thread-entry markers.
std::string disassemble(const Program& p);

// Listing of the decoded dispatch stream for `p`: fused slots show the
// superinstruction token plus both original halves; plain slots match the
// normal listing. `d` must be a predecode of `p`.
std::string disassemble_decoded(const Program& p, const DecodedProgram& d);

// Table of dynamic fallthrough opcode-pair frequencies, most frequent
// first, with the matching superinstruction (if any) annotated per pair.
// `top_n` limits the rows; 0 means all non-zero pairs.
std::string format_pair_counts(const OpPairCounts& counts,
                               std::size_t top_n = 0);

}  // namespace softborg
