// Point-to-point message channel between distributed-hive processes.
//
// The router and shard workers speak through Channels so the same
// router/worker code runs over two transports:
//
//   * SimNetChannel — in-process, deterministic, tick-driven; the test
//     double. Trace payloads are moved end-to-end with zero copies
//     (net_test pins this), and credit grants travel as separate
//     kMsgCredit messages so trace buffers are never wrapped or re-framed.
//   * SocketChannel (dist/socket.h) — nonblocking TCP or Unix-domain
//     stream carrying length-prefixed frames; credit grants piggyback in
//     the frame header.
//
// The socket-vs-SimNet differential test holds the router/worker logic
// fixed and swaps only this layer, so byte-identical results across the two
// implementations certify the real transport.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/varint.h"
#include "net/simnet.h"
#include "obs/trace.h"
#include "pod/protocol.h"

namespace softborg::dist {

// One received message. `credit` carries a flow-control grant that rode
// along (header field on sockets, kMsgCredit message on SimNet — the
// channel normalizes both into this form).
struct Delivery {
  std::uint32_t type = 0;
  std::uint32_t credit = 0;
  Bytes payload;
  // Causal trace context that rode the frame's v2 extension. Invalid on v1
  // frames and on SimNet (deterministic transport: the receiver re-derives
  // the context from the trace wire itself, see obs::causal_trace_id).
  obs::TraceContext ctx;
};

class Channel {
 public:
  virtual ~Channel() = default;

  // Queues a message; `credit` is a piggybacked flow-control grant. The
  // payload is moved (never copied) into the transport. A valid `ctx` rides
  // the frame's trace extension on sockets; SimNet drops it (see Delivery).
  virtual void send(std::uint32_t type, Bytes payload,
                    std::uint32_t credit = 0,
                    obs::TraceContext ctx = {}) = 0;

  // A bare grant with no message. Default: an empty kMsgCredit send.
  virtual void send_credit(std::uint32_t credit) {
    send(kMsgCredit, Bytes{}, credit);
  }

  // Returns everything received since the last poll, in arrival order.
  virtual std::vector<Delivery> poll() = 0;

  // False once the peer is unreachable (socket error/close). SimNet
  // channels never die — fault injection there is loss/partition, which the
  // router sees as shed credit, not channel death.
  virtual bool alive() const = 0;

  // Pushes buffered writes toward the peer (socket backlog drain). SimNet
  // progress is the owner ticking the net, so this is a no-op there.
  virtual void flush() {}
};

// One side of a SimNet-backed channel pair.
class SimNetChannel final : public Channel {
 public:
  SimNetChannel(SimNet& net, Endpoint local, Endpoint remote)
      : net_(net), local_(local), remote_(remote) {}

  void send(std::uint32_t type, Bytes payload, std::uint32_t credit = 0,
            obs::TraceContext ctx = {}) override;
  std::vector<Delivery> poll() override;
  bool alive() const override { return true; }

  Endpoint local_endpoint() const { return local_; }

 private:
  SimNet& net_;
  Endpoint local_;
  Endpoint remote_;
};

// Two connected channels over `net` (first ↔ second).
std::pair<std::unique_ptr<SimNetChannel>, std::unique_ptr<SimNetChannel>>
make_simnet_channel_pair(SimNet& net);

}  // namespace softborg::dist
