#include <gtest/gtest.h>

#include <set>

#include "minivm/corpus.h"
#include "minivm/interp.h"
#include "minivm/replay.h"
#include "sym/csolver.h"
#include "sym/executor.h"
#include "sym/expr.h"

namespace softborg {
namespace {

// ---------------------------------------------------------------- expr -----

TEST(Expr, ConstantFolding) {
  const Expr e = make_bin(BinOp::kAdd, make_const(2), make_const(3));
  ASSERT_TRUE(is_const(e));
  EXPECT_EQ(e->cval, 5);
}

TEST(Expr, DivByZeroNotFolded) {
  const Expr e = make_bin(BinOp::kDiv, make_const(2), make_const(0));
  EXPECT_FALSE(is_const(e));
}

TEST(Expr, VariablePreventsFolding) {
  const Expr e = make_bin(BinOp::kAdd, make_input(0), make_const(3));
  EXPECT_FALSE(is_const(e));
}

TEST(Expr, EvalMatchesInterpreterSemantics) {
  // (in0 * 3 - sys0) % 7
  const Expr e = make_bin(
      BinOp::kMod,
      make_bin(BinOp::kSub,
               make_bin(BinOp::kMul, make_input(0), make_const(3)),
               make_unknown(0)),
      make_const(7));
  EXPECT_EQ(eval_expr(e, {10}, {2}), (10 * 3 - 2) % 7);
  EXPECT_EQ(eval_expr(e, {0}, {5}), (0 - 5) % 7);
}

TEST(Expr, EvalWrapsOnOverflow) {
  const Expr e =
      make_bin(BinOp::kAdd, make_input(0), make_const(1));
  EXPECT_EQ(eval_expr(e, {INT64_MAX}, {}), INT64_MIN);
}

TEST(Expr, MaxIndices) {
  const Expr e = make_bin(BinOp::kAdd, make_input(4), make_unknown(2));
  int mi = -1, mu = -1;
  max_indices(e, &mi, &mu);
  EXPECT_EQ(mi, 4);
  EXPECT_EQ(mu, 2);
}

TEST(Expr, ToStringReadable) {
  const Expr e = make_bin(BinOp::kLt, make_input(1), make_const(10));
  EXPECT_EQ(expr_to_string(e), "(in1 < 10)");
}

// ------------------------------------------------------------- csolver -----

PathConstraint pc_of(std::initializer_list<Literal> lits) { return lits; }

TEST(CSolver, TrivialSat) {
  const auto r = solve_path({}, {{0, 10}});
  EXPECT_EQ(r.status, SolveStatus::kSat);
}

TEST(CSolver, SimpleInterval) {
  // in0 < 5 with in0 in [0, 100]
  const PathConstraint pc =
      pc_of({{make_bin(BinOp::kLt, make_input(0), make_const(5)), true}});
  const auto r = solve_path(pc, {{0, 100}});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_LT(r.model.inputs[0], 5);
}

TEST(CSolver, UnsatWhenDomainExcludes) {
  const PathConstraint pc =
      pc_of({{make_bin(BinOp::kLt, make_input(0), make_const(5)), true}});
  EXPECT_EQ(solve_path(pc, {{10, 100}}).status, SolveStatus::kUnsat);
}

TEST(CSolver, NegatedLiteral) {
  // !(in0 < 5): in0 >= 5
  const PathConstraint pc =
      pc_of({{make_bin(BinOp::kLt, make_input(0), make_const(5)), false}});
  const auto r = solve_path(pc, {{0, 100}});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_GE(r.model.inputs[0], 5);
}

TEST(CSolver, ConjunctionPinpoints) {
  // in0 == 13 && in1 >= 200 (as !(in1 < 200))
  const PathConstraint pc = pc_of(
      {{make_bin(BinOp::kEq, make_input(0), make_const(13)), true},
       {make_bin(BinOp::kLt, make_input(1), make_const(200)), false}});
  const auto r = solve_path(pc, {{0, 63}, {0, 255}});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model.inputs[0], 13);
  EXPECT_GE(r.model.inputs[1], 200);
  EXPECT_TRUE(satisfies(pc, r.model));
}

TEST(CSolver, ArithmeticConstraint) {
  // in0 * 2 + in1 == 100
  const Expr lhs = make_bin(
      BinOp::kAdd, make_bin(BinOp::kMul, make_input(0), make_const(2)),
      make_input(1));
  const PathConstraint pc =
      pc_of({{make_bin(BinOp::kEq, lhs, make_const(100)), true}});
  const auto r = solve_path(pc, {{0, 60}, {0, 60}});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model.inputs[0] * 2 + r.model.inputs[1], 100);
}

TEST(CSolver, ModConstraint) {
  // in0 % 100 == 42 over [0, 255] — exercises the coarse mod interval.
  const Expr m = make_bin(BinOp::kMod, make_input(0), make_const(100));
  const PathConstraint pc =
      pc_of({{make_bin(BinOp::kEq, m, make_const(42)), true}});
  const auto r = solve_path(pc, {{0, 255}});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model.inputs[0] % 100, 42);
}

TEST(CSolver, ModNeverNegativeForNonNegativeOperand) {
  // in0 % 100 < 0 is UNSAT for in0 in [0, 255].
  const Expr m = make_bin(BinOp::kMod, make_input(0), make_const(100));
  const PathConstraint pc =
      pc_of({{make_bin(BinOp::kLt, m, make_const(0)), true}});
  EXPECT_EQ(solve_path(pc, {{0, 255}}).status, SolveStatus::kUnsat);
}

TEST(CSolver, UnknownVariables) {
  // sys0 == 0 with sys0 in [-1, 64]
  const PathConstraint pc =
      pc_of({{make_bin(BinOp::kEq, make_unknown(0), make_const(0)), true}});
  const auto r = solve_path(pc, {}, {{-1, 64}});
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_EQ(r.model.unknowns[0], 0);
}

TEST(CSolver, ContradictionUnsat) {
  const PathConstraint pc = pc_of(
      {{make_bin(BinOp::kLt, make_input(0), make_const(5)), true},
       {make_bin(BinOp::kLt, make_input(0), make_const(5)), false}});
  EXPECT_EQ(solve_path(pc, {{0, 100}}).status, SolveStatus::kUnsat);
}

TEST(CSolver, BudgetExhaustionReturnsUnknown) {
  // Hard equality over a large domain with a tiny node budget.
  const Expr lhs = make_bin(
      BinOp::kAdd, make_bin(BinOp::kMul, make_input(0), make_input(1)),
      make_input(2));
  const PathConstraint pc =
      pc_of({{make_bin(BinOp::kEq, lhs, make_const(999983)), true}});
  SolverOptions so;
  so.max_nodes = 10;
  const auto r =
      solve_path(pc, {{0, 100000}, {0, 100000}, {0, 100000}}, {}, so);
  EXPECT_EQ(r.status, SolveStatus::kUnknown);
}

TEST(CSolver, SatisfiesAgreesWithSolver) {
  // Randomized cross-check: solver models always satisfy.
  Rng rng(31);
  for (int round = 0; round < 50; ++round) {
    const Value a = rng.next_in(0, 50), b = rng.next_in(0, 50);
    const Expr sum = make_bin(BinOp::kAdd, make_input(0), make_input(1));
    const PathConstraint pc = pc_of(
        {{make_bin(BinOp::kEq, sum, make_const(a + b)), true},
         {make_bin(BinOp::kLe, make_input(0), make_const(a)), true}});
    const auto r = solve_path(pc, {{0, 50}, {0, 50}});
    ASSERT_EQ(r.status, SolveStatus::kSat) << "round " << round;
    EXPECT_TRUE(satisfies(pc, r.model)) << "round " << round;
  }
}

// ------------------------------------------------------------ executor -----

ExploreOptions options_for(const CorpusEntry& entry) {
  ExploreOptions opt;
  opt.input_domains = domains_of(entry);
  return opt;
}

TEST(Executor, ConfigSpaceEnumeratesAllPaths) {
  const auto entry = make_config_space(6);
  SymbolicExecutor ex(entry.program, options_for(entry));
  const auto paths = ex.explore();
  EXPECT_EQ(paths.size(), 64u);
  EXPECT_TRUE(ex.stats().complete);
  std::set<std::vector<SymDecision>> unique;
  for (const auto& p : paths) {
    EXPECT_EQ(p.terminal, PathTerminal::kOk);
    EXPECT_EQ(p.decisions.size(), 6u);
    unique.insert(p.decisions);
  }
  EXPECT_EQ(unique.size(), 64u);
}

TEST(Executor, MediaParserFindsTheCrash) {
  const auto entry = make_media_parser();
  SymbolicExecutor ex(entry.program, options_for(entry));
  const auto paths = ex.explore();
  EXPECT_TRUE(ex.stats().complete);

  int crashes = 0;
  for (const auto& p : paths) {
    if (p.terminal != PathTerminal::kCrash) continue;
    crashes++;
    ASSERT_TRUE(p.crash.has_value());
    EXPECT_EQ(p.crash->kind, CrashKind::kDivByZero);
    // The model must be a real crashing input.
    ASSERT_EQ(p.model.inputs.size(), 2u);
    EXPECT_EQ(p.model.inputs[0], 13);
    EXPECT_GE(p.model.inputs[1], 200);
    // Confirm by concrete execution.
    ExecConfig cfg;
    cfg.inputs = p.model.inputs;
    EXPECT_EQ(execute(entry.program, cfg).trace.outcome, Outcome::kCrash);
  }
  EXPECT_EQ(crashes, 1);
}

TEST(Executor, ModelsExecuteToPredictedPath) {
  // Every symbolic path's model, run concretely, reproduces exactly the
  // decisions the executor predicted.
  const auto entry = make_media_parser();
  SymbolicExecutor ex(entry.program, options_for(entry));
  const auto paths = ex.explore();
  ASSERT_FALSE(paths.empty());
  for (const auto& p : paths) {
    ExecConfig cfg;
    cfg.inputs = p.model.inputs;
    cfg.collect_branch_events = true;
    const auto live = execute(entry.program, cfg);
    std::vector<SymDecision> live_decisions;
    for (const auto& ev : live.branch_events) {
      if (ev.tainted) live_decisions.push_back({ev.site, ev.taken});
    }
    EXPECT_EQ(live_decisions, p.decisions);
  }
}

TEST(Executor, MagicNeedleFound) {
  const auto entry = make_magic_lookup();
  SymbolicExecutor ex(entry.program, options_for(entry));
  const auto paths = ex.explore();
  bool found = false;
  for (const auto& p : paths) {
    if (p.terminal == PathTerminal::kCrash) {
      found = true;
      EXPECT_EQ(p.model.inputs[0], 4242);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Executor, FileCopierSyscallCrash) {
  const auto entry = make_file_copier();
  auto opt = options_for(entry);
  opt.max_paths = 20000;
  SymbolicExecutor ex(entry.program, opt);
  const auto paths = ex.explore();
  bool found = false;
  for (const auto& p : paths) {
    if (p.terminal != PathTerminal::kCrash) continue;
    found = true;
    ASSERT_TRUE(p.crash.has_value());
    EXPECT_EQ(p.crash->kind, CrashKind::kDivByZero);
    // The crash needs a zero-length read: check the witness.
    ASSERT_FALSE(p.model.unknowns.empty());
    EXPECT_EQ(p.model.unknowns.back(), 0);
    break;
  }
  EXPECT_TRUE(found);
}

TEST(Executor, WorkerPoolSystemLevelHasNoCrash) {
  const auto entry = make_worker_pool();
  SymbolicExecutor ex(entry.program, options_for(entry));
  const auto paths = ex.explore();
  EXPECT_TRUE(ex.stats().complete);
  for (const auto& p : paths) {
    EXPECT_NE(p.terminal, PathTerminal::kCrash)
        << "in-system infeasible abort reported as feasible";
  }
}

TEST(Executor, WorkerPoolUnitLevelOverApproximates) {
  // Relaxed (unit-level) consistency: v unconstrained in [-128, 127]
  // exposes the defensive abort — a superset of in-system behaviour (§4).
  const auto entry = make_worker_pool();
  ExploreOptions opt;  // note: no program input domains; unit params only
  SymbolicExecutor ex(entry.program, opt);
  const auto paths = ex.explore_unit(
      entry.unit_entry_pc, {{entry.unit_params[0], VarDomain{-128, 127}}});
  bool abort_found = false;
  for (const auto& p : paths) {
    if (p.terminal == PathTerminal::kCrash &&
        p.crash->kind == CrashKind::kExplicitAbort) {
      abort_found = true;
    }
  }
  EXPECT_TRUE(abort_found);
}

TEST(Executor, SubtreeExplorationRestrictsToPrefix) {
  const auto entry = make_config_space(6);
  SymbolicExecutor ex(entry.program, options_for(entry));
  const std::vector<SymDecision> prefix = {{0, true}, {1, false}};
  const auto paths = ex.explore_subtree(prefix);
  EXPECT_EQ(paths.size(), 16u);  // 2^(6-2)
  for (const auto& p : paths) {
    ASSERT_GE(p.decisions.size(), 2u);
    EXPECT_EQ(p.decisions[0], prefix[0]);
    EXPECT_EQ(p.decisions[1], prefix[1]);
  }
}

TEST(Executor, PathForDecisionsRecoversCrashConstraint) {
  // Record a real crash, replay it to decisions, then derive the path
  // constraint symbolically and check it characterizes the crash region.
  const auto entry = make_media_parser();
  ExecConfig cfg;
  cfg.inputs = {13, 250};
  const auto live = execute(entry.program, cfg);
  ASSERT_EQ(live.trace.outcome, Outcome::kCrash);
  const auto rep = replay_trace(entry.program, live.trace);
  ASSERT_TRUE(rep.ok);

  std::vector<SymDecision> decisions;
  for (const auto& d : rep.decisions) decisions.push_back({d.site, d.taken});

  SymbolicExecutor ex(entry.program, options_for(entry));
  const auto path =
      ex.path_for_decisions(decisions, live.trace.steps, live.trace.crash);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->terminal, PathTerminal::kCrash);

  // All models of the constraint crash; {13, 250} satisfies it.
  Assignment probe;
  probe.inputs = {13, 250};
  EXPECT_TRUE(satisfies(path->constraints, probe));
  probe.inputs = {13, 100};
  EXPECT_FALSE(satisfies(path->constraints, probe));
  probe.inputs = {12, 250};
  EXPECT_FALSE(satisfies(path->constraints, probe));
}

TEST(Executor, PathBudgetMarksIncomplete) {
  const auto entry = make_config_space(10);
  auto opt = options_for(entry);
  opt.max_paths = 16;  // far fewer than 1024 feasible paths
  SymbolicExecutor ex(entry.program, opt);
  const auto paths = ex.explore();
  EXPECT_LE(paths.size(), 16u);
  EXPECT_FALSE(ex.stats().complete);
}

TEST(Executor, StatsAccounting) {
  const auto entry = make_media_parser();
  SymbolicExecutor ex(entry.program, options_for(entry));
  const auto paths = ex.explore();
  const auto& st = ex.stats();
  EXPECT_EQ(st.paths_completed, paths.size());
  EXPECT_GT(st.solver_calls, 0u);
  EXPECT_EQ(st.crash_paths, 1u);
  EXPECT_GT(st.total_steps, 0u);
}

}  // namespace
}  // namespace softborg
