#include "sym/csolver.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace softborg {

namespace {

struct Ival {
  Value lo = 0;
  Value hi = 0;

  bool singleton() const { return lo == hi; }
  bool contains_zero() const { return lo <= 0 && 0 <= hi; }
};

constexpr Ival kTop{INT64_MIN, INT64_MAX};

// Exact i128 helpers; widen to kTop when the result cannot be represented.
bool fits(__int128 v) { return v >= INT64_MIN && v <= INT64_MAX; }

Ival iv_from(__int128 lo, __int128 hi) {
  if (!fits(lo) || !fits(hi)) return kTop;
  return {static_cast<Value>(lo), static_cast<Value>(hi)};
}

Ival iv_add(Ival a, Ival b) {
  return iv_from(static_cast<__int128>(a.lo) + b.lo,
                 static_cast<__int128>(a.hi) + b.hi);
}

Ival iv_sub(Ival a, Ival b) {
  return iv_from(static_cast<__int128>(a.lo) - b.hi,
                 static_cast<__int128>(a.hi) - b.lo);
}

Ival iv_mul(Ival a, Ival b) {
  const __int128 products[4] = {
      static_cast<__int128>(a.lo) * b.lo, static_cast<__int128>(a.lo) * b.hi,
      static_cast<__int128>(a.hi) * b.lo, static_cast<__int128>(a.hi) * b.hi};
  __int128 lo = products[0], hi = products[0];
  for (auto p : products) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  return iv_from(lo, hi);
}

Ival iv_div(Ival a, Ival b) {
  if (b.contains_zero()) return kTop;  // conservative
  const Value quotients[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo,
                              a.hi / b.hi};
  Value lo = quotients[0], hi = quotients[0];
  for (auto q : quotients) {
    lo = std::min(lo, q);
    hi = std::max(hi, q);
  }
  // INT64_MIN / -1 is defined as INT64_MIN in MiniVM; the raw C++ division
  // above would overflow, so widen when that case is inside the box.
  if (a.lo == INT64_MIN && b.lo <= -1 && -1 <= b.hi) return kTop;
  return {lo, hi};
}

Ival iv_mod(Ival a, Ival b) {
  if (b.contains_zero()) return kTop;  // conservative
  const Value m =
      std::max(b.hi == INT64_MIN ? INT64_MAX : std::abs(b.hi),
               b.lo == INT64_MIN ? INT64_MAX : std::abs(b.lo));
  if (m == INT64_MAX) return kTop;
  if (a.lo >= 0) return {0, std::min(a.hi, m - 1)};
  return {-(m - 1), m - 1};
}

Ival iv_cmp(BinOp op, Ival a, Ival b) {
  auto certainly = [](bool v) { return Ival{v, v}; };
  switch (op) {
    case BinOp::kLt:
      if (a.hi < b.lo) return certainly(true);
      if (a.lo >= b.hi) return certainly(false);
      return {0, 1};
    case BinOp::kLe:
      if (a.hi <= b.lo) return certainly(true);
      if (a.lo > b.hi) return certainly(false);
      return {0, 1};
    case BinOp::kEq:
      if (a.singleton() && b.singleton() && a.lo == b.lo) {
        return certainly(true);
      }
      if (a.hi < b.lo || b.hi < a.lo) return certainly(false);
      return {0, 1};
    case BinOp::kNe:
      if (a.singleton() && b.singleton() && a.lo == b.lo) {
        return certainly(false);
      }
      if (a.hi < b.lo || b.hi < a.lo) return certainly(true);
      return {0, 1};
    default:
      SB_CHECK(false);
  }
  return {0, 1};
}

struct Box {
  std::vector<Ival> inputs;
  std::vector<Ival> unknowns;
};

// Expressions are DAGs (register reuse shares subtrees): memoize on node
// identity per box evaluation or this walk goes exponential.
using IvalMemo = std::unordered_map<const ExprNode*, Ival>;

Ival eval_interval(const ExprNode* e, const Box& box, IvalMemo& memo) {
  switch (e->kind) {
    case ExprKind::kConst:
      return {e->cval, e->cval};
    case ExprKind::kInput:
      return e->index < box.inputs.size() ? box.inputs[e->index] : Ival{0, 0};
    case ExprKind::kUnknown:
      return e->index < box.unknowns.size() ? box.unknowns[e->index]
                                            : Ival{0, 0};
    case ExprKind::kBin: {
      auto it = memo.find(e);
      if (it != memo.end()) return it->second;
      const Ival a = eval_interval(e->lhs.get(), box, memo);
      const Ival b = eval_interval(e->rhs.get(), box, memo);
      Ival r;
      switch (e->op) {
        case BinOp::kAdd: r = iv_add(a, b); break;
        case BinOp::kSub: r = iv_sub(a, b); break;
        case BinOp::kMul: r = iv_mul(a, b); break;
        case BinOp::kDiv: r = iv_div(a, b); break;
        case BinOp::kMod: r = iv_mod(a, b); break;
        default: r = iv_cmp(e->op, a, b); break;
      }
      memo.emplace(e, r);
      return r;
    }
  }
  return kTop;
}

enum class LitState { kTrue, kFalse, kUndecided };

LitState literal_state(const Literal& lit, const Box& box, IvalMemo& memo) {
  const Ival v = eval_interval(lit.cond.get(), box, memo);
  const bool definitely_nonzero = v.lo > 0 || v.hi < 0;
  const bool definitely_zero = v.lo == 0 && v.hi == 0;
  if (lit.expected) {
    if (definitely_nonzero) return LitState::kTrue;
    if (definitely_zero) return LitState::kFalse;
  } else {
    if (definitely_zero) return LitState::kTrue;
    if (definitely_nonzero) return LitState::kFalse;
  }
  return LitState::kUndecided;
}

class Search {
 public:
  Search(const PathConstraint& pc, const SolverOptions& options)
      : pc_(pc), options_(options) {}

  SolveResult run(Box box) {
    result_.status = descend(box);
    result_.nodes = nodes_;
    return result_;
  }

 private:
  SolveStatus descend(Box& box) {
    if (++nodes_ > options_.max_nodes) return SolveStatus::kUnknown;

    bool all_true = true;
    IvalMemo memo;  // shared across this box's literals
    for (const auto& lit : pc_) {
      switch (literal_state(lit, box, memo)) {
        case LitState::kFalse:
          return SolveStatus::kUnsat;
        case LitState::kUndecided:
          all_true = false;
          break;
        case LitState::kTrue:
          break;
      }
    }
    if (all_true) {
      extract_model(box);
      return SolveStatus::kSat;
    }

    // Split the widest non-singleton variable.
    Ival* widest = nullptr;
    std::uint64_t widest_span = 0;
    for (auto* vars : {&box.inputs, &box.unknowns}) {
      for (auto& iv : *vars) {
        const std::uint64_t span = static_cast<std::uint64_t>(iv.hi) -
                                   static_cast<std::uint64_t>(iv.lo);
        if (span > widest_span) {
          widest_span = span;
          widest = &iv;
        }
      }
    }
    if (widest == nullptr) {
      // All singletons yet some literal undecided: interval arithmetic was
      // too coarse (e.g. widened div). Decide exactly.
      Assignment a = box_point(box);
      if (satisfies(pc_, a)) {
        result_.model = std::move(a);
        return SolveStatus::kSat;
      }
      return SolveStatus::kUnsat;
    }

    const Ival saved = *widest;
    const Value mid = saved.lo + static_cast<Value>(widest_span / 2);

    *widest = {saved.lo, mid};
    const SolveStatus left = descend(box);
    if (left != SolveStatus::kUnsat) {
      *widest = saved;
      return left;  // kSat or kUnknown
    }
    *widest = {mid + 1, saved.hi};
    const SolveStatus right = descend(box);
    *widest = saved;
    return right;
  }

  static Assignment box_point(const Box& box) {
    Assignment a;
    for (const auto& iv : box.inputs) a.inputs.push_back(iv.lo);
    for (const auto& iv : box.unknowns) a.unknowns.push_back(iv.lo);
    return a;
  }

  void extract_model(const Box& box) {
    // Every point of the box satisfies the constraint; take the low corner.
    result_.model = box_point(box);
  }

  const PathConstraint& pc_;
  const SolverOptions& options_;
  SolveResult result_;
  std::uint64_t nodes_ = 0;
};

}  // namespace

const char* solve_status_name(SolveStatus s) {
  switch (s) {
    case SolveStatus::kSat: return "sat";
    case SolveStatus::kUnsat: return "unsat";
    case SolveStatus::kUnknown: return "unknown";
  }
  return "?";
}

SolveResult solve_path(const PathConstraint& pc,
                       const std::vector<VarDomain>& input_domains,
                       const std::vector<VarDomain>& unknown_domains,
                       const SolverOptions& options) {
  // Size the box to cover both the declared domains and every variable the
  // constraint mentions.
  int max_input = -1, max_unknown = -1;
  for (const auto& lit : pc) max_indices(lit.cond, &max_input, &max_unknown);

  Box box;
  const std::size_t n_inputs = std::max<std::size_t>(
      input_domains.size(), static_cast<std::size_t>(max_input + 1));
  const std::size_t n_unknowns = std::max<std::size_t>(
      unknown_domains.size(), static_cast<std::size_t>(max_unknown + 1));
  for (std::size_t i = 0; i < n_inputs; ++i) {
    const VarDomain d =
        i < input_domains.size() ? input_domains[i] : VarDomain{0, 0};
    SB_CHECK(d.lo <= d.hi);
    box.inputs.push_back({d.lo, d.hi});
  }
  for (std::size_t j = 0; j < n_unknowns; ++j) {
    const VarDomain d =
        j < unknown_domains.size() ? unknown_domains[j] : VarDomain{0, 0};
    SB_CHECK(d.lo <= d.hi);
    box.unknowns.push_back({d.lo, d.hi});
  }

  Search search(pc, options);
  return search.run(std::move(box));
}

bool satisfies(const PathConstraint& pc, const Assignment& assignment) {
  for (const auto& lit : pc) {
    const Value v = eval_expr(lit.cond, assignment.inputs, assignment.unknowns);
    if ((v != 0) != lit.expected) return false;
  }
  return true;
}

}  // namespace softborg
