// Solver portfolio (paper §4).
//
// "Choosing the equities with the highest return is undecidable, so one
// must invest in parallel" — the portfolio runs heterogeneous solvers on
// the same instance and takes the first decision. Two execution modes:
//
//  * solve_simulated — deterministic model of perfect parallelism: every
//    solver runs to its own decision; the winner is the one with the fewest
//    ticks; resource cost charges each loser only up to the winner's tick
//    count (they would have been cancelled). This is what E2 measures,
//    reproducing the paper's "~10x time for ~3x resources" shape.
//  * solve_threaded — real threads with first-winner cancellation, for
//    wall-clock demonstrations.
#pragma once

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "sym/sat.h"

namespace softborg {

struct PortfolioOutcome {
  SatStatus status = SatStatus::kUnknown;
  std::vector<bool> model;        // valid iff kSat
  int winner = -1;                // index of the deciding solver
  std::uint64_t wall_ticks = 0;   // simulated elapsed time (winner's ticks)
  std::uint64_t cost_ticks = 0;   // total resource consumption
  std::vector<std::uint64_t> per_solver_ticks;
  // Per-solver terminal status, index-aligned with per_solver_ticks. Fleet
  // telemetry needs the split: only the winner's decision is fresh solver
  // work; a loser that also decided merely duplicated it. Before this field
  // existed, aggregators counting decisions over the portfolio's solvers
  // double-counted every such duplicate as independent work.
  std::vector<SatStatus> per_solver_status;
  // Ticks the losers burned (cost_ticks minus the winner's share): the
  // resource overhead of investing in parallel. In solve_simulated losers
  // are clamped at the winner's finish; in solve_threaded cancellation is
  // lazy, so their real (possibly larger) spend is what is recorded.
  std::uint64_t duplicated_ticks = 0;
  // Losers that reached their own decision before cancellation took hold —
  // each one a re-derivation of an answer the portfolio already had.
  std::size_t redundant_decisions = 0;
};

class PortfolioSolver {
 public:
  explicit PortfolioSolver(std::vector<std::unique_ptr<SatSolver>> solvers);

  std::size_t size() const { return solvers_.size(); }
  const SatSolver& solver(std::size_t i) const { return *solvers_[i]; }

  PortfolioOutcome solve_simulated(const Cnf& cnf,
                                   std::uint64_t budget_ticks_per_solver);

  PortfolioOutcome solve_threaded(const Cnf& cnf,
                                  std::uint64_t budget_ticks_per_solver,
                                  ThreadPool& pool);

 private:
  std::vector<std::unique_ptr<SatSolver>> solvers_;
};

}  // namespace softborg
