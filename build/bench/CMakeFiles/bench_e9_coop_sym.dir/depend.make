# Empty dependencies file for bench_e9_coop_sym.
# This may be replaced when dependencies are built.
