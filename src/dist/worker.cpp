#include "dist/worker.h"

#include <unistd.h>

#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/state_wire.h"
#include "dist/socket.h"
#include "obs/registry.h"
#include "store/store.h"
#include "trace/codec.h"

namespace softborg::dist {

ShardWorker::ShardWorker(std::size_t index,
                         const std::vector<CorpusEntry>* corpus,
                         WorkerConfig config)
    : index_(index),
      corpus_(corpus),
      config_(std::move(config)),
      queue_(config_.queue_capacity) {
  SB_CHECK(corpus_ != nullptr);
  SB_CHECK(config_.credit_window >= 1 && config_.credit_window <= 0xffff);
  build_hive();
}

void ShardWorker::build_hive() {
  // Same per-shard layout as ShardedHive: disjoint fix/proof id blocks and
  // a per-shard seed, so a distributed fleet and an in-process one
  // synthesize identically-numbered artifacts.
  HiveConfig hive_config = config_.hive;
  hive_config.fixer.next_fix_id = 1 + index_ * 1'000'000;
  hive_config.next_proof_id = 1 + index_ * 1'000'000;
  hive_config.seed = config_.hive.seed ^ (index_ * 0x9e3779b97f4a7c15ULL);
  hive_ = std::make_unique<Hive>(corpus_, hive_config);
}

bool ShardWorker::try_resume() {
  if (config_.snapshot_dir.empty()) return false;
  const auto snapshot = store::read_snapshot(config_.snapshot_dir);
  if (!snapshot.has_value()) return false;
  const auto part = [&](const char* name) -> const Bytes* {
    const auto it = snapshot->parts.find(name);
    return it == snapshot->parts.end() ? nullptr : &it->second;
  };
  for (const char* name : {"hive", "trees", "solver", "worker"}) {
    if (part(name) == nullptr) return false;
  }
  // On any validation failure the hive may be half-restored: rebuild it
  // cold so a corrupt snapshot degrades to a clean cold start, never a
  // Frankenstein state.
  const auto reject = [&] {
    build_hive();
    return false;
  };
  {
    StateReader r(*part("hive"));
    if (!hive_->load_state(r) || !r.done()) return reject();
  }
  {
    StateReader r(*part("trees"));
    if (!hive_->load_trees(r) || !r.done()) return reject();
  }
  {
    StateReader r(*part("solver"));
    if (!hive_->solver_cache().load_state(r) || !r.done()) return reject();
  }
  {
    StateReader r(*part("worker"));
    const std::uint64_t idx = r.u64();
    ingested_ = r.u64();
    const std::uint64_t shed = r.u64();
    batches_ = r.u64();
    snapshots_written_ = r.u64();
    if (!r.done() || idx != index_) {
      ingested_ = batches_ = snapshots_written_ = 0;
      return reject();
    }
    // The queue object is fresh; seed its shed ledger with the restored
    // count so closing stats are cumulative across restarts.
    queue_.restore_shed_total(shed);
  }
  snapshot_seq_ = snapshot->seq;
  resumed_ = true;
  return true;
}

void ShardWorker::send_hello(Channel& ch) {
  ch.send(kMsgHello,
          encode_hello(HelloMsg{index_, config_.credit_window, resumed_}));
}

void ShardWorker::admit(Bytes wire) {
  // Admission control: summarize for priority (allocation-free peek; the
  // router already validated, so failures here are corruption — admit as
  // routine and let the hive count the decode failure deterministically).
  TracePriority priority = TracePriority::kRoutine;
  if (const auto summary = summarize_trace_wire(wire)) {
    priority = trace_priority(*summary);
  }
  const std::uint64_t shed_before = queue_.shed_total();
  queue_.push(priority, std::move(wire));
  const std::uint64_t shed_delta = queue_.shed_total() - shed_before;
  // A shed trace still consumed a router credit: grant it back, or the
  // window leaks shut under sustained overload.
  pending_credit_ += static_cast<std::uint32_t>(shed_delta);
}

bool ShardWorker::write_snapshot() {
  if (config_.snapshot_dir.empty()) return false;
  std::vector<store::Part> parts;
  {
    Bytes h;
    hive_->save_state(h);
    parts.push_back({"hive", std::move(h)});
  }
  {
    Bytes t;
    hive_->save_trees(t);
    parts.push_back({"trees", std::move(t)});
  }
  {
    Bytes s;
    hive_->solver_cache().save_state(s);
    parts.push_back({"solver", std::move(s)});
  }
  {
    Bytes w;
    put_varint(w, index_);
    put_varint(w, ingested_);
    put_varint(w, queue_.shed_total());
    put_varint(w, batches_);
    put_varint(w, snapshots_written_ + 1);
    parts.push_back({"worker", std::move(w)});
  }
  if (!store::write_snapshot(config_.snapshot_dir, ++snapshot_seq_, parts)) {
    return false;
  }
  snapshots_written_++;
  return true;
}

bool ShardWorker::pump(Channel& ch) {
  if (done_) return false;
  active_ = false;
  for (auto& d : ch.poll()) {
    active_ = true;
    switch (d.type) {
      case kMsgTrace:
        admit(std::move(d.payload));
        break;
      case kMsgShutdown:
        shutdown_ = true;
        break;
      case kMsgSnapshot:
        (void)write_snapshot();
        ch.send(kMsgSnapshot, Bytes{});  // ack (even on failure: unblocks)
        break;
      default:
        break;  // credit/hello noise from the router is ignorable
    }
  }
  // Ingest one bounded batch; batch_max keeps the round short so credit
  // grants and shutdown stay responsive under sustained load.
  std::vector<Bytes> batch;
  batch.reserve(config_.batch_max);
  while (batch.size() < config_.batch_max) {
    auto item = queue_.pop();
    if (!item) break;
    batch.push_back(std::move(item->wire));
  }
  if (!batch.empty()) {
    active_ = true;
    hive_->ingest_batch(batch);
    ingested_ += batch.size();
    batches_++;
    pending_credit_ += static_cast<std::uint32_t>(batch.size());
    if (config_.snapshot_every_batches > 0 &&
        batches_ % config_.snapshot_every_batches == 0) {
      (void)write_snapshot();
    }
  }
  if (pending_credit_ > 0) {
    ch.send_credit(pending_credit_);
    pending_credit_ = 0;
  }
  publish_metrics();
  if (shutdown_ && queue_.empty()) {
    // Drained: report the closing ledger, then ack the shutdown. A final
    // snapshot makes the restart path (CI's kill-and-resume leg) current.
    if (!config_.snapshot_dir.empty()) (void)write_snapshot();
    ch.send(kMsgStats, encode_worker_stats(closing_stats()));
    Bytes trees;
    hive_->save_trees(trees);
    ch.send(kMsgTreeData, std::move(trees));
    ch.send(kMsgShutdown, Bytes{});
    ch.flush();
    done_ = true;
    return false;
  }
  return true;
}

WorkerStatsMsg ShardWorker::closing_stats() const {
  WorkerStatsMsg m;
  m.shard_index = index_;
  m.ingested = ingested_;
  m.shed = queue_.shed_total();
  m.queue_max_depth = queue_.max_depth();
  m.batches = batches_;
  m.snapshots_written = snapshots_written_;
  m.hive = hive_->stats();
  return m;
}

void ShardWorker::publish_metrics() {
  if (!obs::enabled()) return;
  struct Metrics {
    obs::Counter& ingested = obs::MetricsRegistry::global().counter(
        "dist.worker.ingested_total");
    obs::Counter& shed = obs::MetricsRegistry::global().counter(
        "dist.worker.shed_total");
    obs::Counter& batches = obs::MetricsRegistry::global().counter(
        "dist.worker.batches_total");
    obs::Gauge& depth =
        obs::MetricsRegistry::global().gauge("dist.worker.queue_depth");
    static Metrics& get() {
      static Metrics m;
      return m;
    }
  };
  auto& m = Metrics::get();
  if (ingested_ != obs_ingested_) {
    m.ingested.add(ingested_ - obs_ingested_);
    obs_ingested_ = ingested_;
  }
  const std::uint64_t shed = queue_.shed_total();
  if (shed != obs_shed_) {
    m.shed.add(shed - obs_shed_);
    obs_shed_ = shed;
  }
  if (batches_ != obs_batches_) {
    m.batches.add(batches_ - obs_batches_);
    obs_batches_ = batches_;
  }
  m.depth.set(static_cast<std::int64_t>(queue_.depth()));
}

int run_worker_loop(std::size_t index, const std::vector<CorpusEntry>* corpus,
                    const WorkerConfig& config,
                    const std::string& router_addr) {
  auto ch = dial(router_addr);
  if (ch == nullptr) return 2;  // router never came up
  ShardWorker worker(index, corpus, config);
  (void)worker.try_resume();
  worker.send_hello(*ch);
  while (worker.pump(*ch)) {
    if (!ch->alive()) return 3;  // router died mid-run
    if (!worker.last_round_active()) {
      // Idle: yield the core instead of spinning the poll loop.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  // Closing frames may still sit in the socket buffer; push until gone.
  for (int i = 0; i < 1000 && ch->alive(); ++i) {
    ch->flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return 0;
}

int spawn_worker_process(std::size_t index,
                         const std::vector<CorpusEntry>* corpus,
                         const WorkerConfig& config,
                         const std::string& router_addr) {
  const int pid = ::fork();
  if (pid != 0) return pid;  // parent (or fork failure: -1)
  ::_exit(run_worker_loop(index, corpus, config, router_addr));
}

}  // namespace softborg::dist
