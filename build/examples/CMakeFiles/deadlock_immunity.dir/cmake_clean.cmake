file(REMOVE_RECURSE
  "CMakeFiles/deadlock_immunity.dir/deadlock_immunity.cpp.o"
  "CMakeFiles/deadlock_immunity.dir/deadlock_immunity.cpp.o.d"
  "deadlock_immunity"
  "deadlock_immunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_immunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
