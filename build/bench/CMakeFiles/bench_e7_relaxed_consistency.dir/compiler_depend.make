# Empty compiler generated dependencies file for bench_e7_relaxed_consistency.
# This may be replaced when dependencies are built.
