// Snapshot exporters: Prometheus text exposition and JSON.
//
// Prometheus (exposition format 0.0.4): metric names are sanitized
// (dots to underscores) and prefixed "softborg_"; counters render as
// `counter`, gauges as `gauge`, histograms as `summary` with p50/p90/p99
// quantile labels plus `_sum` and `_count` series:
//
//   # TYPE softborg_net_sent_total counter
//   softborg_net_sent_total 4096
//   # TYPE softborg_hive_ingest_replay_us summary
//   softborg_hive_ingest_replay_us{quantile="0.5"} 123.4
//   ...
//   softborg_hive_ingest_replay_us_sum 5678.9
//   softborg_hive_ingest_replay_us_count 42
//
// JSON (schema "softborg.metrics.v1", bench/bench_json.h style — one
// self-describing document the CI archives next to BENCH_*.json):
//
//   { "schema": "softborg.metrics.v1",
//     "counters":   [ {"name": "...", "value": 0}, ... ],
//     "gauges":     [ {"name": "...", "value": 0}, ... ],
//     "histograms": [ {"name": "...", "count": 0, "sum": 0.0,
//                      "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}, ... ] }
//
// Arrays are name-sorted (the snapshot already is), so two exports of equal
// snapshots are byte-identical.
#pragma once

#include <string>
#include <vector>

#include "obs/recorder.h"
#include "obs/registry.h"

namespace softborg::obs {

std::string to_prometheus(const MetricsSnapshot& snap);
std::string to_json(const MetricsSnapshot& snap);

// Chrome trace_event / Perfetto JSON from flight-recorder dumps — one
// merged timeline for a whole fleet (load the output in ui.perfetto.dev or
// chrome://tracing).
//
// Clock alignment: every dump carries a (CLOCK_MONOTONIC, CLOCK_REALTIME)
// pair sampled at flush time; each process's monotonic event stamps are
// shifted by its own realtime-minus-monotonic offset onto one shared
// wall-clock axis, then rebased so the earliest event is t=0.
//
// Rendering: span begin/end pairs become complete ("X") slices matched per
// thread (unbalanced ends — ring overwrote the begin — are dropped);
// every other event becomes a thread-scoped instant ("i") carrying its
// causal trace id, decoded hop path, and args; each causal trace id seen
// more than once becomes a flow arrow chain ("s"/"t"/"f") so the viewer
// draws pod → router → shard → merge across process lanes.
struct ChromeTraceStats {
  std::size_t processes = 0;
  std::size_t events = 0;   // instants + slices emitted
  std::size_t flows = 0;    // causal trace ids with >= 2 events
  // Causal trace ids observed in >= 2 distinct processes whose accumulated
  // hop paths cover pod, router, shard AND merge — the end-to-end causal
  // chains the dist trace e2e test asserts on.
  std::size_t cross_process_chains = 0;
};
std::string to_chrome_trace(const std::vector<RecorderDump>& dumps,
                            ChromeTraceStats* stats = nullptr);

// Writes `content` to `path` ("-" means stdout). Returns false on I/O
// failure (logged).
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace softborg::obs
