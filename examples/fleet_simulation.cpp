// Fleet simulation: the paper's core bet at scale (§2: "the aggregation of
// all executions across the lifetime of a program ... is equivalent to one
// big test suite").
//
// Deploys the full buggy corpus to a fleet of heterogeneous simulated users
// for a simulated month and prints the reliability trajectory: failure
// rates collapse as the hive converts crashes and deadlocks into
// distributed fixes, while path coverage keeps climbing. The race_counter
// program demonstrates the repair lab: its atomicity violation is detected
// and diagnosed but deliberately never auto-fixed.
//
// Usage: fleet_simulation [seed] [--days N] [--metrics-json PATH]
//                         [--metrics-prom PATH] [--snapshot-dir DIR]
//                         [--snapshot-every N] [--resume] [--warm-start]
//                         [--adaptive]
// The metrics flags enable span sampling for the run and write a final
// snapshot of the global registry in JSON ("softborg.metrics.v1") or
// Prometheus text exposition; PATH "-" writes to stdout.
//
// Persistence (src/store): --snapshot-dir plus --snapshot-every N write a
// durable generation every N days. --resume restores the newest good
// generation from --snapshot-dir and continues the run bit-identically to
// one that was never interrupted; if the directory holds no loadable
// snapshot (first run, torn write, version skew) the fleet cold-starts and
// says so. --warm-start instead begins a FRESH run but replays the stored
// regression set each day, so previously-found bugs resurface immediately.
//
// --adaptive turns on the telemetry-driven control plane (hive/adapt.h):
// guidance budgets, the daily proof slice, and a daily cooperative
// exploration run are all rebalanced from measured yield instead of the
// static uniform schedule. Composes with the persistence flags — the yield
// ledger is part of every snapshot, so a resumed adaptive run keeps its
// learned allocation and stays bit-identical to an uninterrupted one.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/softborg.h"
#include "hive/report.h"

int main(int argc, char** argv) {
  using namespace softborg;

  WorldConfig config;
  config.pods_per_program = 150;  // ~1000 pods across the 7-program corpus
  config.days = 30;
  config.mean_runs_per_day = 5.0;
  config.guidance_per_program_per_day = 3;
  config.net.drop_prob = 0.02;
  config.seed = 42;

  const char* json_path = nullptr;
  const char* prom_path = nullptr;
  bool resume = false;
  bool warm_start = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      config.days = static_cast<std::uint64_t>(atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot-dir") == 0 && i + 1 < argc) {
      config.snapshot_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0 && i + 1 < argc) {
      config.snapshot_every_n_days =
          static_cast<std::size_t>(atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--warm-start") == 0) {
      warm_start = true;
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      config.adapt.static_plan = false;
      config.proof_programs_per_day = 2;
      config.coop_programs_per_day = 1;
      config.coop.num_workers = 3;
    } else {
      config.seed = static_cast<std::uint64_t>(atoll(argv[i]));
    }
  }
  if (json_path != nullptr || prom_path != nullptr) {
    obs::set_spans_enabled(true);  // populate the timing histograms too
  }
  if ((resume || warm_start) && config.snapshot_dir.empty()) {
    std::fprintf(stderr,
                 "--resume/--warm-start need --snapshot-dir DIR\n");
    return 2;
  }
  if (warm_start) {
    std::string err;
    config.warm_start_regressions =
        load_regression_inputs(config.snapshot_dir, &err);
    std::printf("warm start: %zu regression inputs%s%s\n",
                config.warm_start_regressions.size(),
                err.empty() ? "" : " — ", err.c_str());
  }

  std::optional<World> world_slot;
  world_slot.emplace(standard_corpus(), config);
  if (resume) {
    std::string err;
    if (world_slot->resume_from_snapshot(config.snapshot_dir, &err)) {
      std::printf("resumed from %s at day %llu\n", config.snapshot_dir.c_str(),
                  static_cast<unsigned long long>(world_slot->day()));
    } else {
      // A bad/missing snapshot is a clean cold start, never a crash — but
      // the failed restore may have left the World partially mutated, so
      // rebuild from scratch.
      std::printf("no usable snapshot in %s (%s): cold start\n",
                  config.snapshot_dir.c_str(), err.c_str());
      world_slot.emplace(standard_corpus(), config);
    }
  }
  World& world = *world_slot;

  std::printf("%-5s %-8s %-9s %-7s %-9s %-6s %-6s %-8s %-8s\n", "day",
              "runs", "failures", "rate%", "averted", "bugs", "fixed",
              "paths", "traces");
  while (world.day() < config.days) {
    world.step_day();
    const auto& d = world.history().back();
    std::printf("%-5llu %-8llu %-9llu %-7.3f %-9llu %-6zu %-6zu %-8zu %-8llu\n",
                static_cast<unsigned long long>(d.day),
                static_cast<unsigned long long>(d.runs),
                static_cast<unsigned long long>(d.failures),
                d.failure_rate * 100.0,
                static_cast<unsigned long long>(d.fix_interventions),
                d.bugs_found_total, d.bugs_fixed_total, d.total_paths,
                static_cast<unsigned long long>(d.traces_delivered_total));
  }

  std::printf("\nhive stats: ingested=%llu dup=%llu decode_fail=%llu "
              "new_paths=%llu fixes=%llu repair_lab=%llu\n",
              static_cast<unsigned long long>(world.hive().stats().traces_ingested),
              static_cast<unsigned long long>(world.hive().stats().duplicates_dropped),
              static_cast<unsigned long long>(world.hive().stats().decode_failures),
              static_cast<unsigned long long>(world.hive().stats().new_paths),
              static_cast<unsigned long long>(world.hive().stats().fixes_approved),
              static_cast<unsigned long long>(world.hive().stats().repair_lab_entries));

  std::printf("\n%s", hive_status_report(world.hive(), world.net_stats()).c_str());

  if (json_path != nullptr || prom_path != nullptr) {
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    if (json_path != nullptr) {
      obs::write_text_file(json_path, obs::to_json(snap));
    }
    if (prom_path != nullptr) {
      obs::write_text_file(prom_path, obs::to_prometheus(snap));
    }
  }
  return 0;
}
