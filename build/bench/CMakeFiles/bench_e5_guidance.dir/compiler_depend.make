# Empty compiler generated dependencies file for bench_e5_guidance.
# This may be replaced when dependencies are built.
