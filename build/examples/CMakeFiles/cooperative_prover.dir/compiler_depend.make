# Empty compiler generated dependencies file for cooperative_prover.
# This may be replaced when dependencies are built.
