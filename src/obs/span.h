// Stage spans: scoped wall-clock timers feeding registry histograms.
//
//   void Hive::ingest_batch(...) {
//     SB_SPAN("hive.ingest.batch");
//     ...
//   }
//
// records the block's elapsed microseconds into the global registry
// histogram "hive.ingest.batch.us" — but only while span sampling is on
// (set_spans_enabled, default off). When sampling is off the cost is one
// relaxed atomic load and a predictable branch: no clock reads, no
// histogram lock. The call site's histogram handle is resolved once (magic
// static) and reused forever, so the enabled path costs two steady_clock
// reads plus one mutex-guarded histogram insert.
//
// Spans are timing metrics: exported (Prometheus summary / JSON), never
// asserted — wall-clock is nondeterministic by nature. Counter metrics are
// the deterministic surface (registry.h).
#pragma once

#include <atomic>
#include <chrono>

#include "obs/recorder.h"
#include "obs/registry.h"

namespace softborg::obs {

namespace detail {
extern std::atomic<bool> g_spans_enabled;
}

inline bool spans_enabled() {
  return detail::g_spans_enabled.load(std::memory_order_relaxed);
}
void set_spans_enabled(bool on);

// One per SB_SPAN call site: owns the resolved histogram handle and the
// flight-recorder name-table id. The constructor appends the ".us" unit
// suffix to `name` for the histogram.
class SpanSite {
 public:
  explicit SpanSite(const char* name);
  HistogramMetric& hist() { return *hist_; }
  std::uint32_t name_id() const { return name_id_; }

 private:
  HistogramMetric* hist_;
  std::uint32_t name_id_;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite& site) {
    timed_ = spans_enabled();
    recorded_ = Recorder::enabled();
    if (timed_ || recorded_) {
      site_ = &site;
      start_ = std::chrono::steady_clock::now();
      if (recorded_) {
        // The span inherits the thread's current trace context, so spans
        // executed while a trace is being processed join its causal chain.
        Recorder::record(EventKind::kSpanBegin, {}, site.name_id());
      }
    }
  }
  ~ScopedSpan() {
    if (site_ == nullptr) return;
    if (timed_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      site_->hist().record(
          std::chrono::duration<double, std::micro>(elapsed).count());
    }
    if (recorded_) {
      Recorder::record(EventKind::kSpanEnd, {}, site_->name_id());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanSite* site_ = nullptr;
  bool timed_ = false;
  bool recorded_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace softborg::obs

#define SB_OBS_CONCAT_INNER(a, b) a##b
#define SB_OBS_CONCAT(a, b) SB_OBS_CONCAT_INNER(a, b)

// Times the enclosing scope under `name`. One statement; usable at most
// once per line. `name ""` is the literal pin: hot-path span names must be
// string literals (a built-at-runtime name would allocate on every pass
// even with spans disabled, and the flight recorder's name table holds the
// pointer forever) — anything else fails to concatenate and won't compile.
#define SB_SPAN(name)                                                     \
  static ::softborg::obs::SpanSite SB_OBS_CONCAT(sb_span_site_,           \
                                                 __LINE__){name ""};      \
  ::softborg::obs::ScopedSpan SB_OBS_CONCAT(sb_span_, __LINE__)(          \
      SB_OBS_CONCAT(sb_span_site_, __LINE__))
