// Human-readable hive status reports.
//
// The paper keeps humans in the loop in exactly one place — the repair lab
// ("suggests plausible fixes to developers, who then manually choose the
// correct one") — and SoftBorg operators will want the rest at a glance
// too: the bug ledger, the proof ledger (including revocations), fix
// telemetry, and ingestion health. This module renders all of it as text;
// examples print it, tests pin its structure.
#pragma once

#include <string>

#include "hive/hive.h"
#include "net/simnet.h"

namespace softborg {

// Multi-line report: ingestion stats, batch-pipeline health, bug ledger
// (with fix status and recurrence telemetry), proof ledger with closure
// telemetry, repair-lab queue, and a registry telemetry summary.
std::string hive_status_report(Hive& hive);

// Same report plus a network-health line rendered from `net`: delivery loss
// (blocked at send, dropped in flight, random drops) next to what actually
// arrived, so operators see how much fleet knowledge the unreliable network
// is costing.
std::string hive_status_report(Hive& hive, const NetStats& net);

// One line per open repair-lab entry, ranked as the hive ranked them.
std::string repair_lab_report(const Hive& hive);

}  // namespace softborg
