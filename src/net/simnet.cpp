#include "net/simnet.h"

#include <utility>

#include "common/check.h"

namespace softborg {

Endpoint SimNet::add_endpoint() {
  inboxes_.emplace_back();
  return static_cast<Endpoint>(inboxes_.size() - 1);
}

bool SimNet::blocked(Endpoint a, Endpoint b) const {
  if (isolated_.count(a) != 0 || isolated_.count(b) != 0) return true;
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return partitions_.count(key) != 0;
}

void SimNet::send(Endpoint from, Endpoint to, std::uint32_t type,
                  Bytes payload) {
  SB_CHECK(from < inboxes_.size() && to < inboxes_.size());
  stats_.sent++;
  stats_.bytes_sent += payload.size();
  if (blocked(from, to)) {
    stats_.blocked_at_send++;
    return;
  }
  if (config_.drop_prob > 0 && rng_.next_bool(config_.drop_prob)) {
    stats_.dropped++;
    return;
  }
  auto enqueue = [&](Bytes body) {
    Message m;
    m.from = from;
    m.to = to;
    m.type = type;
    m.payload = std::move(body);
    m.sent_tick = now_;
    const std::uint32_t span =
        config_.max_latency_ticks - config_.min_latency_ticks;
    m.deliver_tick = now_ + config_.min_latency_ticks +
                     (span > 0 ? rng_.next_below(span + 1) : 0);
    in_flight_[m.deliver_tick].push_back(std::move(m));
  };
  if (config_.dup_prob > 0 && rng_.next_bool(config_.dup_prob)) {
    stats_.duplicated++;
    enqueue(payload);
  }
  enqueue(std::move(payload));
}

void SimNet::tick() {
  now_++;
  auto end = in_flight_.upper_bound(now_);
  for (auto it = in_flight_.begin(); it != end; ++it) {
    for (Message& m : it->second) {
      if (blocked(m.from, m.to)) {
        stats_.dropped_in_flight++;
        continue;  // partitions that formed mid-flight eat the message
      }
      stats_.delivered++;
      inboxes_[m.to].push_back(std::move(m));
    }
  }
  in_flight_.erase(in_flight_.begin(), end);
}

std::vector<Message> SimNet::drain(Endpoint ep) {
  SB_CHECK(ep < inboxes_.size());
  // Move the inbox out wholesale — draining used to copy every payload.
  return std::exchange(inboxes_[ep], {});
}

void SimNet::set_partitioned(Endpoint a, Endpoint b, bool blocked_now) {
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (blocked_now) {
    partitions_.insert(key);
  } else {
    partitions_.erase(key);
  }
}

void SimNet::set_isolated(Endpoint ep, bool isolated) {
  if (isolated) {
    isolated_.insert(ep);
  } else {
    isolated_.erase(ep);
  }
}

}  // namespace softborg
