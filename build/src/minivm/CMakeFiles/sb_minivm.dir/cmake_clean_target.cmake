file(REMOVE_RECURSE
  "libsb_minivm.a"
)
