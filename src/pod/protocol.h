// Wire protocol between pods and the hive (paper Fig. 1).
//
// Upstream:   by-products (traces, sampled site observations).
// Downstream: fixes (guard patches, crash guards, lock-avoidance sets) and
//             guidance directives (input seeds, schedule steering, syscall
//             fault plans).
//
// Everything is varint-encoded like trace/codec.h; decoders validate and
// return nullopt on malformed input.
#pragma once

#include <optional>

#include "common/varint.h"
#include "minivm/fixes.h"
#include "minivm/interp.h"

namespace softborg {

enum MsgType : std::uint32_t {
  kMsgTrace = 1,
  kMsgGuardPatch = 2,
  kMsgCrashGuard = 3,
  kMsgLockFix = 4,
  kMsgGuidance = 5,
  kMsgWorkRequest = 6,
  kMsgWorkAssign = 7,
  kMsgWorkResult = 8,
  // Distributed-hive control plane (src/dist). Traces still travel as
  // kMsgTrace — the distributed transport reuses the v2 trace wire verbatim.
  kMsgCredit = 9,       // flow-control grant (count in the frame header)
  kMsgHello = 10,       // worker announces shard index + credit window
  kMsgShutdown = 11,    // drain, report closing stats, exit (ack'd in kind)
  kMsgStats = 12,       // worker's closing stats (dist/worker.h codec)
  kMsgTreeData = 13,    // one program's encoded collective tree
  kMsgSnapshot = 14,    // write a durable snapshot now (ack'd in kind)
};

// A guidance directive: "run the program this way once" (§3.3). Any subset
// of the fields may be present.
struct GuidanceDirective {
  ProgramId program;
  std::optional<std::vector<Value>> input_seed;
  std::optional<SchedulePlan> schedule;
  std::optional<FaultPlan> faults;

  bool operator==(const GuidanceDirective& o) const;
};

Bytes encode_guard_patch(const GuardPatch& p);
std::optional<GuardPatch> decode_guard_patch(const Bytes& bytes);

Bytes encode_crash_guard(const CrashGuardFix& f);
std::optional<CrashGuardFix> decode_crash_guard(const Bytes& bytes);

Bytes encode_lock_fix(const LockAvoidanceFix& f);
std::optional<LockAvoidanceFix> decode_lock_fix(const Bytes& bytes);

Bytes encode_guidance(const GuidanceDirective& g);
std::optional<GuidanceDirective> decode_guidance(const Bytes& bytes);

}  // namespace softborg
