# Empty dependencies file for pod_test.
# This may be replaced when dependencies are built.
