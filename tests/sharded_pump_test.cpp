// Differential tests for the shard-parallel pump: routing by header peek
// plus per-shard ingest_batch on a thread pool must produce byte-identical
// exported trees and equal aggregate HiveStats compared to the serial
// per-trace pump — across shard counts, pump thread counts, and simulated
// network faults (drop, duplication, partition churn). The network is
// seeded, and the pump mode never changes the send sequence, so two runs
// with equal seeds see identical deliveries; any divergence is the pump's.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "hive/sharded.h"
#include "minivm/corpus.h"
#include "minivm/interp.h"
#include "net/simnet.h"
#include "obs/registry.h"
#include "trace/codec.h"
#include "tree/tree_codec.h"

namespace softborg {
namespace {

// Executes random corpus programs on random in-domain inputs and returns
// the encoded by-products, ids 1..n (unique, so dedup passes every wire).
std::vector<Bytes> make_workload(const std::vector<CorpusEntry>& corpus,
                                 std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> wires;
  wires.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CorpusEntry& entry = corpus[rng.next_below(corpus.size())];
    ExecConfig cfg;
    for (const auto& d : entry.domains) {
      cfg.inputs.push_back(rng.next_in(d.lo, d.hi));
    }
    cfg.seed = seed * 1'000'000 + i;
    auto result = execute(entry.program, cfg);
    result.trace.id = TraceId(i + 1);
    result.trace.day = i % 7;
    wires.push_back(encode_trace(result.trace));
  }
  return wires;
}

struct FleetResult {
  HiveStats aggregate;
  std::vector<HiveStats> per_shard;
  std::vector<std::map<std::uint64_t, Bytes>> trees;  // per shard, encoded
  std::uint64_t routed = 0;
  std::uint64_t routing_failures = 0;
  std::uint64_t unroutable = 0;
};

// Sends the workload through the ingress in bursts with periodic
// tick+pump rounds, optionally isolating the ingress mid-run (partition
// churn eats in-flight messages), then flushes and snapshots the fleet.
FleetResult run_fleet(const std::vector<CorpusEntry>& corpus,
                      const std::vector<Bytes>& wires, std::size_t num_shards,
                      ShardedHiveConfig config, NetConfig net_config,
                      bool partition_churn) {
  SimNet net(net_config);
  ShardedHive hive(&corpus, num_shards, net, config);
  const Endpoint client = net.add_endpoint();
  std::size_t sent = 0;
  int round = 0;
  while (sent < wires.size()) {
    const std::size_t burst = std::min<std::size_t>(64, wires.size() - sent);
    for (std::size_t i = 0; i < burst; ++i) {
      net.send(client, hive.ingress(), kMsgTrace, wires[sent + i]);
    }
    sent += burst;
    if (partition_churn) {
      if (round == 2) net.set_isolated(hive.ingress(), true);
      if (round == 4) net.set_isolated(hive.ingress(), false);
    }
    net.tick();
    hive.pump(net);
    round++;
  }
  if (partition_churn) net.set_isolated(hive.ingress(), false);
  for (int i = 0; i < 12; ++i) {  // flush: two hops of max latency + dups
    net.tick();
    hive.pump(net);
  }

  FleetResult out;
  out.aggregate = hive.aggregate_stats();
  out.routed = hive.routed();
  out.routing_failures = hive.routing_failures();
  out.unroutable = hive.unroutable();
  for (std::size_t i = 0; i < num_shards; ++i) {
    out.per_shard.push_back(hive.shard(i).stats());
    out.trees.push_back(hive.export_trees(i));
  }
  return out;
}

void expect_identical(const FleetResult& a, const FleetResult& b) {
  EXPECT_TRUE(a.aggregate == b.aggregate);
  EXPECT_EQ(a.routed, b.routed);
  EXPECT_EQ(a.routing_failures, b.routing_failures);
  EXPECT_EQ(a.unroutable, b.unroutable);
  ASSERT_EQ(a.per_shard.size(), b.per_shard.size());
  for (std::size_t i = 0; i < a.per_shard.size(); ++i) {
    EXPECT_TRUE(a.per_shard[i] == b.per_shard[i]) << "shard " << i;
    EXPECT_EQ(a.trees[i], b.trees[i]) << "shard " << i;  // byte-identical
    // Wire-version equivalence, proven for every pump flavor / shard count /
    // fault pattern this helper compares: each exported (v2) tree must
    // survive a round-trip through the legacy v1 wire — decode, re-encode
    // under kV1, decode again — with `operator==` holding throughout and
    // the v1 rendering itself byte-stable.
    for (const auto& [program, bytes] : a.trees[i]) {
      const auto v2 = decode_tree(bytes);
      ASSERT_TRUE(v2.has_value()) << "shard " << i << " program " << program;
      const Bytes v1_wire = v2->encode(ExecTree::WireVersion::kV1);
      const auto v1 = decode_tree(v1_wire);
      ASSERT_TRUE(v1.has_value()) << "shard " << i << " program " << program;
      EXPECT_TRUE(*v1 == *v2) << "shard " << i << " program " << program;
      EXPECT_EQ(v1->encode(ExecTree::WireVersion::kV1), v1_wire);
    }
  }
}

TEST(ShardedPump, ParallelMatchesSerialAcrossShardCounts) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 384, 3);
  for (const std::size_t shards : {1u, 2u, 8u}) {
    ShardedHiveConfig serial;
    serial.serial_pump = true;
    ShardedHiveConfig parallel;
    parallel.pump_threads = 4;
    const auto a = run_fleet(corpus, wires, shards, serial, {}, false);
    const auto b = run_fleet(corpus, wires, shards, parallel, {}, false);
    SCOPED_TRACE(shards);
    EXPECT_GT(b.aggregate.traces_ingested, 0u);
    expect_identical(a, b);
  }
}

TEST(ShardedPump, ParallelMatchesSerialUnderNetworkFaults) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 384, 7);
  NetConfig net_config;
  net_config.drop_prob = 0.05;
  net_config.dup_prob = 0.05;
  net_config.seed = 23;
  for (const std::size_t shards : {1u, 2u, 8u}) {
    ShardedHiveConfig serial;
    serial.serial_pump = true;
    ShardedHiveConfig parallel;
    parallel.pump_threads = 4;
    const auto a = run_fleet(corpus, wires, shards, serial, net_config, true);
    const auto b =
        run_fleet(corpus, wires, shards, parallel, net_config, true);
    SCOPED_TRACE(shards);
    // The faults actually bit: some traces vanished, some duplicated.
    EXPECT_LT(b.aggregate.traces_ingested, wires.size());
    EXPECT_GT(b.aggregate.duplicates_dropped, 0u);
    expect_identical(a, b);
  }
}

TEST(ShardedPump, PumpThreadCountDoesNotChangeResults) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 256, 11);
  NetConfig net_config;
  net_config.dup_prob = 0.03;
  net_config.seed = 31;
  std::vector<FleetResult> runs;
  for (const std::size_t threads : {0u, 2u, 8u}) {
    ShardedHiveConfig config;
    config.pump_threads = threads;
    runs.push_back(run_fleet(corpus, wires, 8, config, net_config, false));
  }
  expect_identical(runs[0], runs[1]);
  expect_identical(runs[0], runs[2]);
}

TEST(ShardedPump, CounterSnapshotsByteIdenticalAcrossPumpThreads) {
  // The observability acceptance bar: the global registry's counter surface
  // — every count-type metric recorded by codec, net, hive, and router
  // instrumentation during a fleet run — must render byte-identically for
  // any pump_threads. Timing histograms and gauges are deliberately outside
  // this surface (counters_text renders counters alone).
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 256, 13);
  NetConfig net_config;
  net_config.dup_prob = 0.03;
  net_config.seed = 37;
  std::vector<std::string> counter_texts;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ShardedHiveConfig config;
    config.pump_threads = threads;
    config.hive.ingest_threads = threads;  // inner fan-out too
    obs::MetricsRegistry::global().rebaseline();
    run_fleet(corpus, wires, 8, config, net_config, false);
    counter_texts.push_back(
        obs::MetricsRegistry::global().delta_snapshot().counters_text());
  }
  ASSERT_EQ(counter_texts.size(), 3u);
  EXPECT_FALSE(counter_texts[0].empty());
  EXPECT_NE(counter_texts[0].find("hive.traces_ingested_total"),
            std::string::npos);
  EXPECT_EQ(counter_texts[0], counter_texts[1]);
  EXPECT_EQ(counter_texts[0], counter_texts[2]);
}

TEST(ShardedPump, NestedPoolsShardAndIngestMatchSerial) {
  // Pump workers fanning out shards, each shard's ingest_batch fanning out
  // decode/replay on its own pool: still identical to the serial pump.
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 192, 17);
  ShardedHiveConfig serial;
  serial.serial_pump = true;
  ShardedHiveConfig nested;
  nested.pump_threads = 2;
  nested.hive.ingest_threads = 2;
  const auto a = run_fleet(corpus, wires, 2, serial, {}, false);
  const auto b = run_fleet(corpus, wires, 2, nested, {}, false);
  expect_identical(a, b);
}

TEST(ShardedPump, AggregateIngestStatsSumShards) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 128, 19);
  ShardedHiveConfig config;
  config.pump_threads = 4;
  SimNet net;
  ShardedHive hive(&corpus, 4, net, config);
  const Endpoint client = net.add_endpoint();
  for (const auto& w : wires) {
    net.send(client, hive.ingress(), kMsgTrace, w);
  }
  for (int i = 0; i < 12; ++i) {
    net.tick();
    hive.pump(net);
  }
  const IngestStats fleet = hive.aggregate_ingest_stats();
  EXPECT_EQ(fleet.batch_traces, hive.routed());
  std::uint64_t batches = 0, hits = 0, misses = 0;
  for (std::size_t i = 0; i < hive.num_shards(); ++i) {
    const IngestStats& s = hive.shard(i).ingest_stats();
    batches += s.batches;
    hits += s.replay_cache_hits;
    misses += s.replay_cache_misses;
  }
  EXPECT_EQ(fleet.batches, batches);
  EXPECT_EQ(fleet.replay_cache_hits, hits);
  EXPECT_EQ(fleet.replay_cache_misses, misses);
  // Every routed trace reached a batch, so the fleet-wide rate is defined.
  EXPECT_GE(fleet.cache_hit_rate(), 0.0);
  EXPECT_LE(fleet.cache_hit_rate(), 1.0);
}

}  // namespace
}  // namespace softborg
