// The collective execution tree (paper §3.2, Fig. 3).
//
// Every end-user execution, replayed into its decision stream (input-
// dependent branch directions), is one guaranteed-feasible root-to-leaf
// path. The hive merges these paths into a trie: walking the shared prefix
// finds the lowest common ancestor, and the divergent suffix is pasted in
// as new nodes. No constraint solving happens during merge — feasibility is
// inherited from the fact that the path actually executed.
//
// Beyond storage, the tree answers the hive's three questions:
//   * coverage  — how many distinct paths/nodes have been observed?
//   * frontier  — which (prefix, direction) pairs are still unexplored?
//     (these drive guidance and symbolic gap-filling, §3.3)
//   * complete  — is every direction either observed or proven infeasible?
//     (the precondition for publishing a proof)
//
// Edges are keyed by (branch site, direction) rather than direction alone,
// so interleaving-dependent multi-threaded decision streams merge cleanly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "sym/executor.h"
#include "trace/trace.h"

namespace softborg {

class ExecTree {
 public:
  explicit ExecTree(ProgramId program) : program_(program) {
    nodes_.push_back(Node{});  // root
  }

  struct MergeResult {
    bool new_path = false;     // a previously unseen leaf
    std::size_t new_nodes = 0; // nodes pasted in
    std::size_t lca_depth = 0; // depth of the lowest common ancestor
    std::uint32_t leaf = 0;    // terminal node: a valid mark_infeasible hint
  };

  // Merges one decision stream ending with `outcome`. Idempotent for
  // already-present paths (only counters change). `weight` merges the same
  // execution `weight` times in one walk: because repeats of a present path
  // only bump visit/outcome counters, add_path(d, o, c, k) leaves the tree
  // byte-identical to k sequential calls — the batch pipeline leans on this
  // to coalesce traces whose replay memoized to the same decision stream.
  MergeResult add_path(const std::vector<SymDecision>& decisions,
                       Outcome outcome,
                       const std::optional<CrashInfo>& crash = std::nullopt,
                       std::uint64_t weight = 1);

  // Marks direction `dir` at the node reached by `prefix` as proven
  // infeasible (symbolic gap closure). Returns false if the prefix does not
  // lead to a node that branches on `site`. `node_hint` (MergeResult::leaf
  // or Frontier::node — valid forever, the tree is append-only) skips the
  // prefix re-walk.
  bool mark_infeasible(const std::vector<SymDecision>& prefix,
                       std::uint32_t site, bool dir,
                       std::optional<std::uint32_t> node_hint = std::nullopt);

  // ---- coverage -----------------------------------------------------------
  std::size_t num_paths() const { return num_leaves_; }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::uint64_t total_executions() const { return nodes_[0].visits; }
  std::uint64_t paths_with_outcome(Outcome o) const;

  // Decision path of some leaf with outcome `o`, if any (counterexamples).
  std::optional<std::vector<SymDecision>> find_path_with_outcome(
      Outcome o) const;

  // ---- frontier -----------------------------------------------------------
  struct Frontier {
    std::vector<SymDecision> prefix;  // decisions leading to the node
    std::uint32_t site = 0;           // branch site with a missing direction
    bool direction = false;           // the unexplored direction
    std::uint64_t parent_visits = 0;  // how "hot" this region is
    std::uint32_t node = 0;           // node reached by prefix (walk hint)
  };

  // Enumerates unexplored directions, hottest-first, up to `max_items`.
  std::vector<Frontier> frontier(std::size_t max_items = SIZE_MAX) const;

  // ---- completeness -------------------------------------------------------
  // True iff every observed branch site has both directions observed or
  // proven infeasible, recursively. An empty tree is not complete.
  bool complete() const;

  // ---- subtree statistics (portfolio allocation, §4) ----------------------
  struct SubtreeStats {
    std::uint64_t visits = 0;
    std::size_t leaves = 0;
    std::size_t nodes = 0;
    std::size_t open_frontiers = 0;
  };

  // Stats of the subtree reached by `prefix`; nullopt if absent.
  std::optional<SubtreeStats> stats_at(
      const std::vector<SymDecision>& prefix) const;

  ProgramId program() const { return program_; }

  // ---- persistence (see tree_codec.h) ---------------------------------------
  std::vector<std::uint8_t> encode() const;
  static std::optional<ExecTree> decode(
      const std::vector<std::uint8_t>& bytes);

  bool operator==(const ExecTree& other) const;

  // Graphviz-ish debug rendering (small trees only).
  std::string to_string() const;

 private:
  struct Edge {
    std::uint32_t site = 0;
    bool dir = false;
    std::uint32_t child = 0;

    bool operator==(const Edge&) const = default;
  };

  struct Node {
    std::vector<Edge> edges;                     // usually 0..2 entries
    std::vector<std::pair<std::uint32_t, bool>> infeasible;
    std::uint64_t visits = 0;
    // Leaf bookkeeping: outcome counts materialize once a path terminates
    // here. A node can be both internal and terminal for MT programs.
    std::vector<std::pair<Outcome, std::uint64_t>> outcomes;
    std::optional<CrashInfo> crash;

    bool operator==(const Node&) const = default;
  };

  const Node* walk(const std::vector<SymDecision>& prefix) const;
  std::uint32_t find_child(const Node& n, std::uint32_t site, bool dir) const;
  bool is_infeasible(const Node& n, std::uint32_t site, bool dir) const;
  bool complete_from(std::uint32_t idx) const;
  void collect_frontiers(std::uint32_t idx, std::vector<SymDecision>& prefix,
                         std::vector<Frontier>& out) const;
  void subtree_stats(std::uint32_t idx, SubtreeStats& stats) const;

  ProgramId program_;
  std::vector<Node> nodes_;
  std::size_t num_leaves_ = 0;
};

}  // namespace softborg
