// The distributed hive deployment: hash routing, per-shard analysis,
// aggregate statistics, and shard-state export/merge (paper §3: the hive
// "may be physically centralized … entirely distributed, or hybrid").
#include <gtest/gtest.h>

#include "hive/sharded.h"
#include "minivm/interp.h"
#include "net/simnet.h"
#include "trace/codec.h"
#include "tree/tree_codec.h"

namespace softborg {
namespace {

class ShardedHiveTest : public ::testing::Test {
 protected:
  ShardedHiveTest() : corpus_(standard_corpus()) {}

  Bytes trace_bytes(const CorpusEntry& entry, std::vector<Value> inputs,
                    std::uint64_t seed) {
    ExecConfig cfg;
    cfg.inputs = std::move(inputs);
    cfg.seed = seed;
    auto result = execute(entry.program, cfg);
    result.trace.id = TraceId(next_id_++);
    return encode_trace(result.trace);
  }

  const CorpusEntry& entry(const std::string& name) const {
    for (const auto& e : corpus_) {
      if (e.program.name == name) return e;
    }
    SB_CHECK(false);
    return corpus_[0];
  }

  void settle(SimNet& net, ShardedHive& hive, int rounds = 10) {
    for (int i = 0; i < rounds; ++i) {
      net.tick();
      hive.pump(net);
    }
  }

  std::vector<CorpusEntry> corpus_;
  std::uint64_t next_id_ = 1;
};

TEST_F(ShardedHiveTest, RoutingIsStableAndCoversAllShards) {
  SimNet net;
  ShardedHive hive(&corpus_, 3, net);
  std::set<std::size_t> used;
  for (const auto& e : corpus_) {
    const std::size_t a = hive.shard_index(e.program.id);
    const std::size_t b = hive.shard_index(e.program.id);
    EXPECT_EQ(a, b);
    EXPECT_LT(a, 3u);
    used.insert(a);
  }
  EXPECT_GE(used.size(), 2u);  // 7+ programs spread over 3 shards
}

TEST_F(ShardedHiveTest, TracesReachTheOwningShard) {
  SimNet net;
  ShardedHive hive(&corpus_, 3, net);
  const auto& parser = entry("media_parser");
  const Endpoint client = net.add_endpoint();

  for (std::uint64_t i = 0; i < 10; ++i) {
    net.send(client, hive.ingress(), kMsgTrace,
             trace_bytes(parser, {static_cast<Value>(i * 6), 100}, i + 1));
  }
  settle(net, hive);

  Hive& owner = hive.shard_for(parser.program.id);
  EXPECT_EQ(owner.stats().traces_ingested, 10u);
  EXPECT_EQ(hive.routed(), 10u);
  // Other shards saw nothing of this program.
  for (std::size_t i = 0; i < hive.num_shards(); ++i) {
    if (&hive.shard(i) == &owner) continue;
    EXPECT_EQ(hive.shard(i).stats().traces_ingested, 0u);
  }
}

TEST_F(ShardedHiveTest, MalformedIngressCounted) {
  SimNet net;
  ShardedHive hive(&corpus_, 2, net);
  const Endpoint client = net.add_endpoint();
  net.send(client, hive.ingress(), kMsgTrace, Bytes{0xff, 0x00});
  settle(net, hive);
  EXPECT_EQ(hive.routing_failures(), 1u);
  EXPECT_EQ(hive.routed(), 0u);
}

TEST_F(ShardedHiveTest, NonTraceIngressMessagesCountedUnroutable) {
  SimNet net;
  ShardedHive hive(&corpus_, 2, net);
  const Endpoint client = net.add_endpoint();
  // The ingress owns exactly one message type; anything else must be
  // counted, not silently vanish.
  net.send(client, hive.ingress(), kMsgGuidance, Bytes{1, 2, 3});
  net.send(client, hive.ingress(), kMsgWorkRequest, Bytes{});
  net.send(client, hive.ingress(), kMsgTrace,
           trace_bytes(entry("media_parser"), {20, 10}, 1));
  settle(net, hive);
  EXPECT_EQ(hive.unroutable(), 2u);
  EXPECT_EQ(hive.routed(), 1u);
  EXPECT_EQ(hive.routing_failures(), 0u);
  EXPECT_EQ(hive.aggregate_stats().traces_ingested, 1u);
}

TEST_F(ShardedHiveTest, GuidanceAllPlansEveryProgramOnceWithoutDuplicates) {
  // Regression for the old corpus-scan-then-break loop: plan_guidance_all
  // must plan each program exactly once (at its owning shard) and cover the
  // same programs as a single unsharded hive holding equal trees.
  SimNet net;
  ShardedHive sharded(&corpus_, 3, net);
  Hive central(&corpus_);
  Rng rng(5);
  for (int i = 0; i < 120; ++i) {
    const auto& e = corpus_[rng.next_below(corpus_.size())];
    ExecConfig cfg;
    for (const auto& d : e.domains) cfg.inputs.push_back(rng.next_in(d.lo, d.hi));
    cfg.seed = rng();
    auto result = execute(e.program, cfg);
    result.trace.id = TraceId(next_id_++);
    const Bytes w = encode_trace(result.trace);
    sharded.shard_for(e.program.id).ingest_bytes(w);
    central.ingest_bytes(w);
  }

  const auto all = sharded.plan_guidance_all(3);
  const auto ref = central.plan_guidance(3);

  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_FALSE(all[i] == all[j]) << "duplicate directive at " << i
                                     << " and " << j;
    }
  }

  // Identical coverage: the same per-program directive counts as the
  // unsharded hive (schedule-plan contents differ only by shard rng seed).
  std::map<std::uint64_t, std::size_t> got, want;
  for (const auto& d : all) got[d.program.value]++;
  for (const auto& d : ref) want[d.program.value]++;
  EXPECT_EQ(got, want);

  // Frontier planning is solver-driven and rng-free, so for single-threaded
  // programs the directives must match the unsharded hive exactly.
  for (const auto& e : corpus_) {
    if (e.program.num_threads() != 1) continue;
    std::vector<GuidanceDirective> a, b;
    for (const auto& d : all) {
      if (d.program == e.program.id) a.push_back(d);
    }
    for (const auto& d : ref) {
      if (d.program == e.program.id) b.push_back(d);
    }
    EXPECT_EQ(a.size(), b.size()) << e.program.name;
    for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
      EXPECT_TRUE(a[i] == b[i]) << e.program.name << " directive " << i;
    }
  }
}

TEST_F(ShardedHiveTest, ProcessAllFindsFixesAcrossShards) {
  SimNet net;
  ShardedHive hive(&corpus_, 3, net);
  const Endpoint client = net.add_endpoint();

  // A crash for media_parser and a deadlock for bank_transfer: the two
  // bugs land on (possibly) different shards.
  net.send(client, hive.ingress(), kMsgTrace,
           trace_bytes(entry("media_parser"), {13, 250}, 1));
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {150};
    cfg.seed = seed;
    auto result = execute(entry("bank_transfer").program, cfg);
    if (result.trace.outcome != Outcome::kDeadlock) continue;
    result.trace.id = TraceId(next_id_++);
    net.send(client, hive.ingress(), kMsgTrace, encode_trace(result.trace));
    break;
  }
  settle(net, hive);

  EXPECT_EQ(hive.total_bugs(), 2u);
  const auto fixes = hive.process_all();
  EXPECT_EQ(fixes.size(), 2u);
  // Fix ids are globally unique across shards.
  std::set<std::uint64_t> ids;
  for (const auto& f : fixes) {
    ids.insert(std::visit([](const auto& fix) { return fix.id.value; },
                          f.fix));
  }
  EXPECT_EQ(ids.size(), fixes.size());
}

TEST_F(ShardedHiveTest, AggregateStatsSumShards) {
  SimNet net;
  ShardedHive hive(&corpus_, 4, net);
  const Endpoint client = net.add_endpoint();
  for (std::uint64_t i = 0; i < 6; ++i) {
    net.send(client, hive.ingress(), kMsgTrace,
             trace_bytes(entry("media_parser"), {20, 10}, 100 + i));
    net.send(client, hive.ingress(), kMsgTrace,
             trace_bytes(entry("magic_lookup"), {7}, 200 + i));
  }
  settle(net, hive);
  EXPECT_EQ(hive.aggregate_stats().traces_ingested, 12u);
}

TEST_F(ShardedHiveTest, ExportedTreesMergeIntoCentralHive) {
  // The hybrid deployment: shards explore, a central hive absorbs their
  // serialized trees (decode + structural check here).
  SimNet net;
  ShardedHive hive(&corpus_, 2, net);
  const Endpoint client = net.add_endpoint();
  const auto& parser = entry("media_parser");
  for (std::uint64_t i = 0; i < 30; ++i) {
    net.send(client, hive.ingress(), kMsgTrace,
             trace_bytes(parser, {static_cast<Value>(i * 2 % 64),
                                  static_cast<Value>(i * 9 % 256)},
                         300 + i));
  }
  settle(net, hive);

  const std::size_t owner = hive.shard_index(parser.program.id);
  const auto exported = hive.export_trees(owner);
  ASSERT_TRUE(exported.count(parser.program.id.value) != 0);
  const auto tree = decode_tree(exported.at(parser.program.id.value));
  ASSERT_TRUE(tree.has_value());
  EXPECT_GT(tree->num_paths(), 1u);
  ExecTree* live = hive.shard(owner).tree(parser.program.id);
  ASSERT_NE(live, nullptr);
  EXPECT_TRUE(*tree == *live);
}

TEST_F(ShardedHiveTest, SingleShardBehavesLikeCentralHive) {
  // Parity: one shard through the router == direct central hive.
  SimNet net;
  ShardedHive sharded(&corpus_, 1, net);
  Hive central(&corpus_);
  const Endpoint client = net.add_endpoint();

  const auto& parser = entry("media_parser");
  std::vector<Bytes> wires;
  for (std::uint64_t i = 0; i < 20; ++i) {
    wires.push_back(trace_bytes(
        parser, {static_cast<Value>(i * 3 % 64),
                 static_cast<Value>(i * 13 % 256)},
        500 + i));
  }
  for (const auto& w : wires) {
    net.send(client, sharded.ingress(), kMsgTrace, w);
    central.ingest_bytes(w);
  }
  settle(net, sharded);

  Hive& shard = sharded.shard_for(parser.program.id);
  EXPECT_EQ(shard.stats().traces_ingested,
            central.stats().traces_ingested);
  ExecTree* a = shard.tree(parser.program.id);
  ExecTree* b = central.tree(parser.program.id);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // The network reorders arrivals, so node numbering differs; the merged
  // structure must not (tree merge is order-independent).
  EXPECT_EQ(a->num_paths(), b->num_paths());
  EXPECT_EQ(a->num_nodes(), b->num_nodes());
  EXPECT_EQ(a->total_executions(), b->total_executions());
  EXPECT_EQ(a->frontier().size(), b->frontier().size());
}

}  // namespace
}  // namespace softborg
