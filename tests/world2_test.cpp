// Second end-to-end suite: deployment resilience and configuration
// variants of the World loop.
#include <gtest/gtest.h>

#include "core/softborg.h"

namespace softborg {
namespace {

TEST(World2, FullGranularityFleetStillFixes) {
  WorldConfig config;
  config.pods_per_program = 40;
  config.days = 12;
  config.seed = 3;
  config.pod_config.granularity = Granularity::kFull;
  World world({make_media_parser()}, config);
  world.run();
  EXPECT_GE(world.history().back().bugs_fixed_total, 1u);
}

TEST(World2, SampledFleetFeedsSiteStats) {
  WorldConfig config;
  config.pods_per_program = 30;
  config.days = 4;
  config.seed = 5;
  config.pod_config.sampling_rate = 4;
  World world({make_media_parser()}, config);
  world.run();
  const auto& stats =
      world.hive().site_stats(world.corpus()[0].program.id);
  EXPECT_GT(stats.num_sites(), 0u);
}

TEST(World2, GuidanceReachesMultithreadedPrograms) {
  WorldConfig config;
  config.pods_per_program = 20;
  config.days = 6;
  config.seed = 3;
  config.guidance_per_program_per_day = 4;
  config.distribute_fixes = false;  // keep the deadlock reproducible
  World world({make_bank_transfer()}, config);
  world.run();
  // Schedule-steering directives were consumed by pods.
  std::uint64_t guided = 0;
  for (std::size_t i = 0; i < world.num_pods(); ++i) {
    guided += world.pod(i).stats().guided_runs;
  }
  EXPECT_GT(guided, 0u);
  // And the deadlock was found.
  EXPECT_GE(world.hive().bug_tracker().count(BugKind::kDeadlock), 1u);
}

TEST(World2, KAnonymityWorldStillConverges) {
  WorldConfig config;
  config.pods_per_program = 40;
  config.days = 14;
  config.seed = 3;
  config.hive.k_anonymity = 2;
  World world({make_media_parser()}, config);
  world.run();
  // The crash path is produced by several users in the crash region, so it
  // clears the gate and gets fixed.
  EXPECT_GE(world.history().back().bugs_fixed_total, 1u);
}

TEST(World2, HiveProofRevokedByWorldFixes) {
  WorldConfig config;
  config.pods_per_program = 40;
  config.days = 2;
  config.seed = 3;
  World world({make_media_parser()}, config);
  // A proof published before the fix ships...
  const auto cert = world.hive().attempt_proof(
      world.corpus()[0].program.id, Property::kAlwaysTerminates);
  ASSERT_TRUE(cert.publishable());
  ASSERT_EQ(world.hive().valid_proof_count(), 1u);
  // ...is revoked when deployment fixes the crash.
  world.run();
  ASSERT_GE(world.history().back().bugs_fixed_total, 1u);
  EXPECT_EQ(world.hive().valid_proof_count(), 0u);
}

TEST(World2, MostRunsSurviveHarshNetwork) {
  WorldConfig config;
  config.pods_per_program = 25;
  config.days = 10;
  config.seed = 3;
  config.net.drop_prob = 0.4;
  config.net.dup_prob = 0.3;
  config.net.max_latency_ticks = 8;
  World world({make_media_parser()}, config);
  world.run();
  // Higher loss slows but does not break aggregation.
  EXPECT_GT(world.hive().stats().traces_ingested, 500u);
  EXPECT_GT(world.hive().stats().duplicates_dropped, 0u);
  ExecTree* tree = world.hive().tree(world.corpus()[0].program.id);
  ASSERT_NE(tree, nullptr);
  EXPECT_GT(tree->num_paths(), 3u);
}

TEST(World2, ZeroGuidanceConfigSendsNone) {
  WorldConfig config;
  config.pods_per_program = 10;
  config.days = 3;
  config.guidance_per_program_per_day = 0;
  World world({make_media_parser()}, config);
  world.run();
  for (std::size_t i = 0; i < world.num_pods(); ++i) {
    EXPECT_EQ(world.pod(i).stats().guided_runs, 0u);
  }
}

TEST(World2, HistoryRunsScaleWithMeanRate) {
  WorldConfig low, high;
  low.pods_per_program = high.pods_per_program = 20;
  low.days = high.days = 5;
  low.seed = high.seed = 9;
  low.mean_runs_per_day = 2.0;
  high.mean_runs_per_day = 10.0;
  World wl({make_media_parser()}, low);
  World wh({make_media_parser()}, high);
  wl.run();
  wh.run();
  std::uint64_t runs_low = 0, runs_high = 0;
  for (const auto& d : wl.history()) runs_low += d.runs;
  for (const auto& d : wh.history()) runs_high += d.runs;
  EXPECT_GT(runs_high, 3 * runs_low);
}

}  // namespace
}  // namespace softborg
