// E12 — Adaptive scheduling closes skewed populations faster (paper §4,
// ROADMAP item 3: "close the portfolio loop").
//
// Claim under test: feeding the fleet's own telemetry back into its
// schedules (hive/adapt.h) beats the static uniform plan when the program
// population is skewed — the paper's portfolio argument applied across
// programs instead of across one program's subtrees.
//
// Setup: a five-program corpus where four light programs saturate within
// days (config_space 3/4/5, file_copier) while one heavy-tailed program
// (make_skewed_workload(8): 256 feasible paths, one top-level subtree 24x
// the exploration cost of the other) holds almost all the remaining
// coverage. Static plan: every program gets the same
// guidance_per_program_per_day forever, and the daily proof slot rotates.
// Adaptive plan: the same total guidance pool and proof slots, rebalanced
// daily by YieldLedger yield estimates — saturated programs stop being
// funded and the heavy program inherits the pool.
//
// Measured: simulated days until the heavy program's hive tree reaches
// kTargetPaths (90% of its 256 paths), same seeds for both plans, 5-seed
// means. Expected shape: adaptive reaches the target in a small fraction
// of the static days, because ~4/5 of the static pool is spent on programs
// with nothing left to learn.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "core/softborg.h"

using namespace softborg;

namespace {

constexpr std::size_t kHeavyPaths = 256;   // make_skewed_workload(8)
constexpr std::size_t kTargetPaths = 230;  // ~90% of the heavy program
constexpr std::uint64_t kMaxDays = 150;
constexpr std::uint64_t kSeeds[] = {11, 22, 33, 44, 55};

std::vector<CorpusEntry> skewed_population() {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_config_space(3));
  corpus.push_back(make_config_space(4));
  corpus.push_back(make_config_space(5));
  corpus.push_back(make_file_copier());
  corpus.push_back(make_skewed_workload(8));
  return corpus;
}

struct RunOutcome {
  std::uint64_t days_to_target = kMaxDays;  // kMaxDays = never reached
  std::size_t heavy_paths = 0;
  bool reached = false;
};

RunOutcome run_once(bool adaptive, std::uint64_t seed) {
  auto corpus = skewed_population();
  const ProgramId heavy = corpus.back().program.id;

  WorldConfig config;
  config.pods_per_program = 3;
  config.days = kMaxDays;
  config.mean_runs_per_day = 4.0;
  config.guidance_per_program_per_day = 3;
  // No proof slice: a cumulative proof attempt explores the remaining tree
  // symbolically and would hand the heavy program its full path set the day
  // the proof scheduler reaches it — measuring proof rotation, not guidance
  // rebalancing. Coverage here must be earned directive by directive.
  config.net.drop_prob = 0.01;
  config.adapt.static_plan = !adaptive;
  config.seed = seed;

  World world(std::move(corpus), config);
  RunOutcome out;
  while (world.day() < config.days) {
    world.step_day();
    const ExecTree* tree = world.hive().tree(heavy);
    out.heavy_paths = tree != nullptr ? tree->num_paths() : 0;
    if (!out.reached && out.heavy_paths >= kTargetPaths) {
      out.days_to_target = world.day();
      out.reached = true;
      break;  // the race is decided; no need to simulate the tail
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json("e12_adaptive", argc, argv);

  std::printf(
      "# E12: adaptive vs static scheduling, skewed 5-program population\n"
      "# target: %zu of %zu paths on the heavy program (cap %llu days)\n",
      kTargetPaths, kHeavyPaths,
      static_cast<unsigned long long>(kMaxDays));
  std::printf("%-8s %-22s %-22s\n", "seed", "static_days_to_target",
              "adaptive_days_to_target");

  StatAccumulator static_days, adaptive_days;
  bool all_reached = true;
  for (const std::uint64_t seed : kSeeds) {
    const RunOutcome st = run_once(/*adaptive=*/false, seed);
    const RunOutcome ad = run_once(/*adaptive=*/true, seed);
    all_reached = all_reached && st.reached && ad.reached;
    static_days.add(static_cast<double>(st.days_to_target));
    adaptive_days.add(static_cast<double>(ad.days_to_target));
    std::printf("%-8llu %-22llu %-22llu\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(st.days_to_target),
                static_cast<unsigned long long>(ad.days_to_target));
    json.add("seed_" + std::to_string(seed), "days_to_target",
             static_cast<double>(ad.days_to_target),
             static_cast<double>(st.days_to_target));
  }

  std::printf(
      "\nmean days to target: static %.1f vs adaptive %.1f (%.1fx faster)"
      "%s\n",
      static_days.mean(), adaptive_days.mean(),
      adaptive_days.mean() > 0.0 ? static_days.mean() / adaptive_days.mean()
                                 : 0.0,
      all_reached ? "" : "  [WARNING: some runs never reached the target]");
  json.add("skewed_population_5seed", "mean_days_to_target",
           adaptive_days.mean(), static_days.mean());
  return json.write() ? 0 : 1;
}
