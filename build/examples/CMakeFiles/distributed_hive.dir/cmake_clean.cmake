file(REMOVE_RECURSE
  "CMakeFiles/distributed_hive.dir/distributed_hive.cpp.o"
  "CMakeFiles/distributed_hive.dir/distributed_hive.cpp.o.d"
  "distributed_hive"
  "distributed_hive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_hive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
