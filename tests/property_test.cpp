// Property-based tests over randomly generated programs: the pipeline's
// invariants must hold for arbitrary program shapes, not just the
// hand-written corpus.
//
// Checked properties, per random program:
//   P1  generated programs validate and always terminate
//   P2  execution is deterministic in (inputs, seed)
//   P3  replay reconstructs exactly the interpreter's tainted decisions
//   P4  trace wire codec round-trips
//   P5  every symbolic path's model concretely executes to the predicted
//       decision sequence and terminal kind
//   P6  symbolic exploration and exhaustive concrete enumeration agree on
//       the set of decision paths (small domains)
//   P7  publishable proof certificates survive the independent checker
//   P8  the constraint solver agrees with a brute-force oracle
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hive/proof.h"
#include "minivm/interp.h"
#include "minivm/random_program.h"
#include "minivm/replay.h"
#include "sym/csolver.h"
#include "sym/executor.h"
#include "trace/codec.h"
#include "tree/exec_tree.h"

namespace softborg {
namespace {

RandomProgramOptions test_options() {
  // Keep generated programs small enough that interval solving over their
  // expression DAGs stays fast; the point is shape diversity, not size.
  RandomProgramOptions options;
  options.max_depth = 2;
  options.block_min = 2;
  options.block_max = 4;
  return options;
}

class RandomProgram : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  RandomProgram() : entry_(make_random_program(GetParam(), test_options())) {}

  std::vector<Value> random_inputs(Rng& rng) const {
    std::vector<Value> inputs;
    for (const auto& d : entry_.domains) inputs.push_back(rng.next_in(d.lo, d.hi));
    return inputs;
  }

  CorpusEntry entry_;
};

TEST_P(RandomProgram, ValidatesAndTerminates) {
  std::string err;
  ASSERT_TRUE(entry_.program.validate(&err)) << err;
  Rng rng(GetParam() ^ 1);
  for (int round = 0; round < 30; ++round) {
    ExecConfig cfg;
    cfg.inputs = random_inputs(rng);
    cfg.seed = rng();
    cfg.max_steps = 1'000'000;
    const auto result = execute(entry_.program, cfg);
    EXPECT_NE(result.trace.outcome, Outcome::kHang)
        << "bounded-loop program must terminate";
  }
}

TEST_P(RandomProgram, DeterministicExecution) {
  Rng rng(GetParam() ^ 2);
  for (int round = 0; round < 10; ++round) {
    ExecConfig cfg;
    cfg.inputs = random_inputs(rng);
    cfg.seed = rng();
    const auto a = execute(entry_.program, cfg);
    const auto b = execute(entry_.program, cfg);
    EXPECT_EQ(a.trace.outcome, b.trace.outcome);
    EXPECT_EQ(a.trace.branch_bits, b.trace.branch_bits);
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.trace.steps, b.trace.steps);
  }
}

TEST_P(RandomProgram, ReplayReconstructsDecisions) {
  Rng rng(GetParam() ^ 3);
  for (int round = 0; round < 20; ++round) {
    ExecConfig cfg;
    cfg.inputs = random_inputs(rng);
    cfg.seed = rng();
    cfg.collect_branch_events = true;
    const auto live = execute(entry_.program, cfg);
    const auto rep = replay_trace(entry_.program, live.trace);
    ASSERT_TRUE(rep.ok) << rep.error;
    std::vector<BranchEvent> live_tainted;
    for (const auto& ev : live.branch_events) {
      if (ev.tainted) live_tainted.push_back(ev);
    }
    ASSERT_EQ(rep.decisions.size(), live_tainted.size());
    for (std::size_t i = 0; i < live_tainted.size(); ++i) {
      EXPECT_EQ(rep.decisions[i].site, live_tainted[i].site);
      EXPECT_EQ(rep.decisions[i].taken, live_tainted[i].taken);
    }
  }
}

TEST_P(RandomProgram, CodecRoundTrip) {
  Rng rng(GetParam() ^ 4);
  for (int round = 0; round < 10; ++round) {
    ExecConfig cfg;
    cfg.inputs = random_inputs(rng);
    cfg.seed = rng();
    cfg.granularity =
        round % 2 == 0 ? Granularity::kTaintedBranches : Granularity::kFull;
    const auto live = execute(entry_.program, cfg);
    const auto back = decode_trace(encode_trace(live.trace));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, live.trace);
  }
}

// Runs `model` concretely and returns (decision path, crashed?).
std::pair<std::vector<SymDecision>, bool> run_model(
    const Program& program, const std::vector<Value>& inputs,
    const std::vector<Value>& unknowns) {
  // Unknown syscall results are pinned via a fault plan (by ordinal).
  FaultPlan faults;
  for (std::size_t j = 0; j < unknowns.size(); ++j) {
    faults.forced[static_cast<std::uint32_t>(j)] = unknowns[j];
  }
  ExecConfig cfg;
  cfg.inputs = inputs;
  cfg.fault_plan = &faults;
  cfg.collect_branch_events = true;
  const auto live = execute(program, cfg);
  std::vector<SymDecision> ds;
  for (const auto& ev : live.branch_events) {
    if (ev.tainted) ds.push_back({ev.site, ev.taken});
  }
  return {ds, live.trace.outcome == Outcome::kCrash};
}

TEST_P(RandomProgram, SymbolicModelsExecuteToPredictedPaths) {
  ExploreOptions opt;
  opt.input_domains = domains_of(entry_);
  opt.max_paths = 128;
  // Keep nasty random constraints (mul/mod chains) from wedging the test:
  // budget exhaustion marks paths unverified and we skip those.
  opt.solver.max_nodes = 3'000;
  opt.max_total_steps = 100'000;
  SymbolicExecutor ex(entry_.program, opt);
  const auto paths = ex.explore();
  for (const auto& p : paths) {
    if (p.terminal == PathTerminal::kBudget) continue;
    if (!p.model_verified) continue;  // solver budget ran out for this path
    const auto [decisions, crashed] =
        run_model(entry_.program, p.model.inputs, p.model.unknowns);
    EXPECT_EQ(decisions, p.decisions)
        << entry_.program.name << ": model does not follow predicted path";
    EXPECT_EQ(crashed, p.terminal == PathTerminal::kCrash);
  }
}

TEST_P(RandomProgram, SymbolicAgreesWithExhaustiveEnumeration) {
  // Only when the symbolic exploration completed and there are no syscalls
  // involved in decisions (environment would need enumeration too).
  ExploreOptions opt;
  opt.input_domains = domains_of(entry_);
  opt.max_paths = 2048;
  opt.solver.max_nodes = 3'000;
  opt.max_total_steps = 100'000;
  SymbolicExecutor ex(entry_.program, opt);
  const auto paths = ex.explore();
  if (!ex.stats().complete) GTEST_SKIP() << "exploration hit budget";
  bool uses_env = false;
  for (const auto& p : paths) {
    if (!p.unknown_domains.empty()) uses_env = true;
  }
  if (uses_env) GTEST_SKIP() << "environment-dependent";

  std::set<std::vector<SymDecision>> symbolic_paths;
  for (const auto& p : paths) symbolic_paths.insert(p.decisions);

  // Exhaustive concrete enumeration over the (64^k) input grid, strided to
  // a budget.
  std::set<std::vector<SymDecision>> concrete_paths;
  const std::size_t k = entry_.domains.size();
  std::uint64_t total = 1;
  for (std::size_t i = 0; i < k; ++i) total *= 64;
  const std::uint64_t stride = total > 8192 ? total / 8192 : 1;
  for (std::uint64_t index = 0; index < total; index += stride) {
    std::vector<Value> inputs;
    std::uint64_t rest = index;
    for (std::size_t i = 0; i < k; ++i) {
      inputs.push_back(static_cast<Value>(rest % 64));
      rest /= 64;
    }
    const auto [ds, crashed] = run_model(entry_.program, inputs, {});
    concrete_paths.insert(ds);
    (void)crashed;
  }
  // Concrete paths must be a subset of symbolic paths (symbolic is
  // complete); equality when stride == 1.
  for (const auto& path : concrete_paths) {
    EXPECT_TRUE(symbolic_paths.count(path) != 0)
        << "concrete path missing from complete symbolic exploration";
  }
  if (stride == 1) {
    EXPECT_EQ(symbolic_paths.size(), concrete_paths.size());
  }
}

TEST_P(RandomProgram, PublishableProofsSurviveTheChecker) {
  ExecTree tree(entry_.program.id);
  // Seed with a few observations.
  Rng rng(GetParam() ^ 5);
  for (int i = 0; i < 5; ++i) {
    ExecConfig cfg;
    cfg.inputs = random_inputs(rng);
    cfg.seed = rng();
    cfg.collect_branch_events = true;
    const auto live = execute(entry_.program, cfg);
    std::vector<SymDecision> ds;
    for (const auto& ev : live.branch_events) {
      if (ev.tainted) ds.push_back({ev.site, ev.taken});
    }
    tree.add_path(ds, live.trace.outcome, live.trace.crash);
  }
  ProofEngine engine;
  ProofBudget budget;
  budget.max_symbolic_paths = 1024;
  budget.max_gap_closures = 100;
  budget.solver.max_nodes = 3'000;
  const auto cert =
      engine.attempt(entry_, tree, Property::kNeverCrashes, budget);
  if (!cert.publishable()) GTEST_SKIP() << "not publishable for this seed";
  std::string reason;
  EXPECT_TRUE(check_certificate(entry_, cert, 1u << 14, &reason)) << reason;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::Range<std::uint64_t>(1, 21));

// ------------------------- solver vs brute force ----------------------------

class SolverOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverOracle, AgreesWithBruteForce) {
  Rng rng(GetParam() * 7919);
  // Random constraint over 2 small variables.
  const VarDomain d0{0, 30}, d1{-10, 20};
  auto random_expr = [&rng](auto&& self, int depth) -> Expr {
    if (depth == 0 || rng.next_bool(0.4)) {
      switch (rng.next_below(3)) {
        case 0: return make_input(0);
        case 1: return make_input(1);
        default: return make_const(rng.next_in(-12, 12));
      }
    }
    const BinOp ops[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul, BinOp::kMod,
                         BinOp::kLt, BinOp::kLe, BinOp::kEq, BinOp::kNe};
    return make_bin(ops[rng.next_below(8)], self(self, depth - 1),
                    self(self, depth - 1));
  };

  for (int round = 0; round < 20; ++round) {
    PathConstraint pc;
    const int n_lits = 1 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < n_lits; ++i) {
      pc.push_back({random_expr(random_expr, 3), rng.next_bool()});
    }

    // Brute force.
    bool brute_sat = false;
    for (Value a = d0.lo; a <= d0.hi && !brute_sat; ++a) {
      for (Value b = d1.lo; b <= d1.hi && !brute_sat; ++b) {
        Assignment assignment;
        assignment.inputs = {a, b};
        if (satisfies(pc, assignment)) brute_sat = true;
      }
    }

    SolverOptions so;
    so.max_nodes = 2'000'000;
    const auto result = solve_path(pc, {d0, d1}, {}, so);
    ASSERT_NE(result.status, SolveStatus::kUnknown) << "budget too small";
    EXPECT_EQ(result.status == SolveStatus::kSat, brute_sat)
        << "round " << round << ": " << path_to_string(pc);
    if (result.status == SolveStatus::kSat) {
      EXPECT_TRUE(satisfies(pc, result.model));
      EXPECT_GE(result.model.inputs[0], d0.lo);
      EXPECT_LE(result.model.inputs[0], d0.hi);
      EXPECT_GE(result.model.inputs[1], d1.lo);
      EXPECT_LE(result.model.inputs[1], d1.hi);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverOracle,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace softborg
