# Empty dependencies file for sb_pod.
# This may be replaced when dependencies are built.
