#include "hive/sharded.h"

#include "common/check.h"
#include "common/metrics.h"
#include "hive/adapt.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "pod/protocol.h"
#include "trace/codec.h"
#include "tree/tree_codec.h"

namespace softborg {

namespace {
// Router telemetry. Published once per pump() from the caller's thread
// (routing and draining are serial; only the per-shard ingest fans out) as
// the deltas of the routing tallies, so these counters are deterministic
// for any pump_threads and cost nothing per message.
struct ShardedMetrics {
  obs::Counter& routed = obs::MetricsRegistry::global().counter(
      "sharded.pump.routed_total");
  obs::Counter& routing_failures = obs::MetricsRegistry::global().counter(
      "sharded.pump.routing_failures_total");
  obs::Counter& unroutable = obs::MetricsRegistry::global().counter(
      "sharded.pump.unroutable_total");

  static ShardedMetrics& get() {
    static ShardedMetrics m;
    return m;
  }
};
}  // namespace

ShardedHive::ShardedHive(const std::vector<CorpusEntry>* corpus,
                         std::size_t num_shards, Transport& net,
                         ShardedHiveConfig config)
    : corpus_(corpus), config_(config) {
  SB_CHECK(corpus_ != nullptr);
  SB_CHECK(num_shards >= 1);
  ingress_ = net.add_endpoint();
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    Shard shard;
    // Fixer ids must not collide across shards.
    HiveConfig shard_config = config.hive;
    shard_config.fixer.next_fix_id = 1 + i * 1'000'000;
    shard_config.next_proof_id = 1 + i * 1'000'000;
    shard_config.seed = config.hive.seed ^ (i * 0x9e3779b97f4a7c15ULL);
    shard.hive = std::make_unique<Hive>(corpus_, shard_config);
    shard.endpoint = net.add_endpoint();
    shards_.push_back(std::move(shard));
  }
}

std::size_t ShardedHive::shard_index(ProgramId program) const {
  // SplitMix avalanche for a stable, well-spread assignment.
  std::uint64_t x = program.value;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::size_t>(x % shards_.size());
}

ThreadPool* ShardedHive::pump_pool() {
  const std::size_t workers =
      std::min(config_.pump_threads, shards_.size());
  if (workers <= 1) return nullptr;
  if (pump_pool_ == nullptr) {
    pump_pool_ = std::make_unique<ThreadPool>(workers);
  }
  return pump_pool_.get();
}

void ShardedHive::pump(Transport& net) {
  SB_SPAN("sharded.pump");
  // Route ingress traffic to the owning shard. Routing only needs the
  // program id, so peek the header with the one-pass allocation-free
  // validator instead of materializing the trace's vector payloads; the
  // owning shard's ingest pipeline does the full decode exactly once.
  const std::uint64_t routed_before = routed_;
  const std::uint64_t failures_before = routing_failures_;
  const std::uint64_t unroutable_before = unroutable_;
  for (auto& msg : net.drain(ingress_)) {
    if (msg.type != kMsgTrace) {
      unroutable_++;  // the router owns no other message type
      continue;
    }
    std::optional<ProgramId> program;
    if (config_.serial_pump) {
      // Baseline flavor: the pre-peek router materialized the whole trace
      // just to read its header. Kept bit-for-bit routable-equivalent to the
      // peek (summarize succeeds exactly when decode does — codec tests pin
      // this), so differential runs see identical send sequences.
      if (const auto trace = decode_trace(msg.payload)) {
        program = trace->program;
      }
    } else if (const auto summary = summarize_trace_wire(msg.payload)) {
      program = summary->program;
    }
    if (!program) {
      routing_failures_++;
      continue;
    }
    const std::size_t owner = shard_index(*program);
    net.send(ingress_, shards_[owner].endpoint, kMsgTrace,
             std::move(msg.payload));
    routed_++;
  }
  if (obs::enabled()) {
    auto& m = ShardedMetrics::get();
    if (routed_ != routed_before) m.routed.add(routed_ - routed_before);
    if (routing_failures_ != failures_before) {
      m.routing_failures.add(routing_failures_ - failures_before);
    }
    if (unroutable_ != unroutable_before) {
      m.unroutable.add(unroutable_ - unroutable_before);
    }
  }
  // Drain every shard endpoint on the caller — SimNet is single-threaded
  // state — so the fan-out below touches nothing but the shards' own Hives.
  std::vector<std::vector<Bytes>> batches(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto messages = net.drain(shards_[i].endpoint);
    batches[i].reserve(messages.size());
    for (auto& msg : messages) {
      if (msg.type == kMsgTrace) batches[i].push_back(std::move(msg.payload));
    }
  }
  if (config_.serial_pump) {
    // Baseline flavor: the per-trace serial pipeline, message by message.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Timer t;
      for (const Bytes& wire : batches[i]) shards_[i].hive->ingest_bytes(wire);
      if (yield_ != nullptr && !batches[i].empty()) {
        yield_->observe_shard_pump(i, t.elapsed_seconds());
      }
    }
    return;
  }
  // Shard-parallel ingestion: one worker per shard, each draining its batch
  // through the staged pipeline. Shards own disjoint Hive state (trees,
  // caches, stats), so no locking is needed; within a shard the batch keeps
  // network-delivery order, so results are independent of pump_threads.
  std::vector<double> shard_seconds(shards_.size(), 0.0);
  parallel_for(pump_pool(), shards_.size(), [&](std::size_t i) {
    if (batches[i].empty()) return;
    Timer t;
    shards_[i].hive->ingest_batch(batches[i]);
    shard_seconds[i] = t.elapsed_seconds();
  });
  // Ledger writes happen on the caller after the barrier: the ledger is not
  // thread-safe, and the latencies are load telemetry, not ingest results.
  if (yield_ != nullptr) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (!batches[i].empty()) yield_->observe_shard_pump(i, shard_seconds[i]);
    }
  }
}

std::vector<FixCandidate> ShardedHive::process_all() {
  std::vector<FixCandidate> all;
  for (auto& shard : shards_) {
    auto fixes = shard.hive->process();
    all.insert(all.end(), std::make_move_iterator(fixes.begin()),
               std::make_move_iterator(fixes.end()));
  }
  return all;
}

std::vector<GuidanceDirective> ShardedHive::plan_guidance_all(
    std::size_t per_program) {
  std::vector<GuidanceDirective> all;
  // One pass over the corpus: each program is planned once, by its owning
  // shard — no shard spends solver time on programs whose traces it never
  // sees, and no directive can be emitted twice.
  for (const auto& entry : *corpus_) {
    auto directives = shards_[shard_index(entry.program.id)]
                          .hive->plan_guidance_for(entry, per_program);
    all.insert(all.end(), std::make_move_iterator(directives.begin()),
               std::make_move_iterator(directives.end()));
  }
  return all;
}

std::vector<GuidanceDirective> ShardedHive::plan_guidance_all(
    std::size_t per_program, const AdaptivePlanner& planner) {
  if (yield_ == nullptr) return plan_guidance_all(per_program);
  std::vector<GuidanceDirective> all;
  for (const auto& entry : *corpus_) {
    const std::size_t owner = shard_index(entry.program.id);
    // Scale the per-program budget by the owning shard's load factor
    // (mean pump latency / own latency, clamped to [0.5, 2]): a shard
    // pumping twice as slowly as the mean plans half the directives.
    const double scale = planner.shard_scale(*yield_, owner);
    const std::size_t budget = static_cast<std::size_t>(
        static_cast<double>(per_program) * scale + 0.5);
    auto directives =
        shards_[owner].hive->plan_guidance_for(entry, budget);
    all.insert(all.end(), std::make_move_iterator(directives.begin()),
               std::make_move_iterator(directives.end()));
  }
  return all;
}

std::vector<ProofCertificate> ShardedHive::attempt_proofs_all(
    Property property) {
  // Slice the corpus by owner, preserving corpus order within each slice,
  // and remember where each program sits so the certificates can reassemble
  // positionally.
  std::vector<std::vector<const CorpusEntry*>> slices(shards_.size());
  std::vector<std::vector<std::size_t>> positions(shards_.size());
  for (std::size_t pos = 0; pos < corpus_->size(); ++pos) {
    const std::size_t owner = shard_index((*corpus_)[pos].program.id);
    slices[owner].push_back(&(*corpus_)[pos]);
    positions[owner].push_back(pos);
  }
  // Shard-parallel: each worker drives one shard's sweep. The shard's own
  // proof_threads setting still applies inside (nested pools compose; the
  // default of 0 keeps the inner sweep inline on the pump worker).
  std::vector<std::vector<ProofCertificate>> per_shard(shards_.size());
  parallel_for(pump_pool(), shards_.size(), [&](std::size_t i) {
    if (!slices[i].empty()) {
      per_shard[i] = shards_[i].hive->attempt_proofs_for(slices[i], property);
    }
  });
  std::vector<ProofCertificate> all(corpus_->size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    for (std::size_t k = 0; k < per_shard[i].size(); ++k) {
      all[positions[i][k]] = std::move(per_shard[i][k]);
    }
  }
  return all;
}

HiveStats ShardedHive::aggregate_stats() const {
  HiveStats total;
  for (const auto& shard : shards_) {
    const HiveStats& s = shard.hive->stats();
    total.traces_ingested += s.traces_ingested;
    total.duplicates_dropped += s.duplicates_dropped;
    total.decode_failures += s.decode_failures;
    total.replay_failures += s.replay_failures;
    total.patched_traces_skipped += s.patched_traces_skipped;
    total.gated_traces += s.gated_traces;
    total.paths_merged += s.paths_merged;
    total.new_paths += s.new_paths;
    total.bugs_found += s.bugs_found;
    total.fixes_approved += s.fixes_approved;
    total.repair_lab_entries += s.repair_lab_entries;
    total.proofs_revoked += s.proofs_revoked;
    total.fixed_traces_seen += s.fixed_traces_seen;
    total.fix_recurrences += s.fix_recurrences;
    total.bugs_reopened += s.bugs_reopened;
  }
  return total;
}

IngestStats ShardedHive::aggregate_ingest_stats() const {
  IngestStats total;
  for (const auto& shard : shards_) {
    const IngestStats& s = shard.hive->ingest_stats();
    total.batches += s.batches;
    total.batch_traces += s.batch_traces;
    total.replay_cache_hits += s.replay_cache_hits;
    total.replay_cache_misses += s.replay_cache_misses;
    total.decode_seconds += s.decode_seconds;
    total.serial_seconds += s.serial_seconds;
    total.replay_seconds += s.replay_seconds;
    total.merge_seconds += s.merge_seconds;
  }
  return total;
}

std::size_t ShardedHive::total_bugs() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard.hive->bug_tracker().all().size();
  }
  return n;
}

std::map<std::uint64_t, Bytes> ShardedHive::export_trees(std::size_t index) {
  SB_CHECK(index < shards_.size());
  // Trees ship in the current wire version (v2, parent-link layout); the
  // importer accepts v1 as well, so mixed-version fleets can still migrate
  // shard knowledge into a central hive mid-upgrade.
  std::map<std::uint64_t, Bytes> out;
  for (const auto& entry : *corpus_) {
    if (shard_index(entry.program.id) != index) continue;
    if (ExecTree* tree = shards_[index].hive->tree(entry.program.id)) {
      out[entry.program.id.value] = encode_tree(*tree);
    }
  }
  return out;
}

void ShardedHive::save_state(Bytes& out) const {
  put_varint(out, shards_.size());
  for (const Shard& shard : shards_) {
    Bytes state, trees, solver;
    shard.hive->save_state(state);
    shard.hive->save_trees(trees);
    shard.hive->solver_cache().save_state(solver);
    put_blob(out, state);
    put_blob(out, trees);
    put_blob(out, solver);
  }
  put_varint(out, routed_);
  put_varint(out, routing_failures_);
  put_varint(out, unroutable_);
}

bool ShardedHive::load_state(StateReader& r) {
  if (r.u64() != shards_.size()) {
    r.fail();  // different shard count: hash routing would misdeliver
    return false;
  }
  for (Shard& shard : shards_) {
    Bytes state, trees, solver;
    r.blob(state);
    r.blob(trees);
    r.blob(solver);
    if (!r.ok()) return false;
    StateReader sr(state);
    if (!shard.hive->load_state(sr) || !sr.done()) {
      r.fail();
      return false;
    }
    StateReader tr(trees);
    if (!shard.hive->load_trees(tr) || !tr.done()) {
      r.fail();
      return false;
    }
    StateReader cr(solver);
    if (!shard.hive->solver_cache().load_state(cr) || !cr.done()) {
      r.fail();
      return false;
    }
  }
  routed_ = r.u64();
  routing_failures_ = r.u64();
  unroutable_ = r.u64();
  return r.ok();
}

}  // namespace softborg
