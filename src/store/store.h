// Durable corpus store: versioned, checksummed snapshot directories for the
// hive's accumulated state (ISSUE 7 tentpole).
//
// Layout under a snapshot root `dir`:
//
//   dir/CURRENT              "gen-<seq>\n" — name of the newest good generation
//   dir/gen-<seq>/<part>     one file per logical part ("hive", "trees", ...)
//   dir/gen-<seq>/MANIFEST   part list + per-part checksums, written LAST
//
// Crash-safety protocol (write_snapshot):
//   1. write every part file (temp + fsync + rename, common/fsio.h),
//   2. write MANIFEST the same way — a generation without a readable,
//      self-checksummed manifest does not exist as far as readers care,
//   3. atomically rewrite CURRENT to point at the new generation,
//   4. prune older generations, keeping the newest two.
// A crash at any step leaves the previously-current generation fully intact
// and loadable; a crash between (2) and (3) leaves a complete orphan
// generation that the next save prunes.
//
// Validation policy (read_snapshot): every magic, version, length, and
// checksum is verified before a byte of payload is handed to a component
// decoder. Any mismatch — torn file, bit rot, truncation, a manifest from a
// future format version — yields std::nullopt (plus a
// store.validation_rejects_total tick) so the caller degrades to a clean
// cold start. Corruption is never UB and never a partial load.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/varint.h"

namespace softborg::store {

// Bump when the container layout changes. Readers refuse snapshots whose
// manifest declares a NEWER version (forward skew = written by a future
// binary); older versions decode via back-compat paths (none yet).
inline constexpr std::uint64_t kFormatVersion = 1;

struct Part {
  std::string name;
  Bytes payload;
};

struct Snapshot {
  std::uint64_t seq = 0;
  std::map<std::string, Bytes> parts;
};

// Writes generation `seq` under `dir` (created if missing) following the
// crash-safety protocol above. False on I/O failure (with *err set when
// non-null); the previously-current generation is untouched either way.
bool write_snapshot(const std::string& dir, std::uint64_t seq,
                    const std::vector<Part>& parts, std::string* err = nullptr);

// Loads the generation named by CURRENT, validating everything. nullopt when
// the directory has no snapshot or the snapshot fails any validation check;
// *err (when non-null) describes the first failure.
std::optional<Snapshot> read_snapshot(const std::string& dir,
                                      std::string* err = nullptr);

}  // namespace softborg::store
