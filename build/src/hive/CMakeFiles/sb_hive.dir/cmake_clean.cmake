file(REMOVE_RECURSE
  "CMakeFiles/sb_hive.dir/bugs.cpp.o"
  "CMakeFiles/sb_hive.dir/bugs.cpp.o.d"
  "CMakeFiles/sb_hive.dir/coop.cpp.o"
  "CMakeFiles/sb_hive.dir/coop.cpp.o.d"
  "CMakeFiles/sb_hive.dir/fixer.cpp.o"
  "CMakeFiles/sb_hive.dir/fixer.cpp.o.d"
  "CMakeFiles/sb_hive.dir/guidance.cpp.o"
  "CMakeFiles/sb_hive.dir/guidance.cpp.o.d"
  "CMakeFiles/sb_hive.dir/hive.cpp.o"
  "CMakeFiles/sb_hive.dir/hive.cpp.o.d"
  "CMakeFiles/sb_hive.dir/proof.cpp.o"
  "CMakeFiles/sb_hive.dir/proof.cpp.o.d"
  "CMakeFiles/sb_hive.dir/report.cpp.o"
  "CMakeFiles/sb_hive.dir/report.cpp.o.d"
  "CMakeFiles/sb_hive.dir/sharded.cpp.o"
  "CMakeFiles/sb_hive.dir/sharded.cpp.o.d"
  "libsb_hive.a"
  "libsb_hive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_hive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
