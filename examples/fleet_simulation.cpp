// Fleet simulation: the paper's core bet at scale (§2: "the aggregation of
// all executions across the lifetime of a program ... is equivalent to one
// big test suite").
//
// Deploys the full buggy corpus to a fleet of heterogeneous simulated users
// for a simulated month and prints the reliability trajectory: failure
// rates collapse as the hive converts crashes and deadlocks into
// distributed fixes, while path coverage keeps climbing. The race_counter
// program demonstrates the repair lab: its atomicity violation is detected
// and diagnosed but deliberately never auto-fixed.
//
// Usage: fleet_simulation [seed] [--days N] [--metrics-json PATH]
//                         [--metrics-prom PATH] [--snapshot-dir DIR]
//                         [--snapshot-every N] [--resume] [--warm-start]
//                         [--adaptive] [--trace-out PATH]
//                         [--distributed] [--dist-shards N]
//                         [--traces-per-day N]
// The metrics flags enable span sampling for the run and write a final
// snapshot of the global registry in JSON ("softborg.metrics.v1") or
// Prometheus text exposition; PATH "-" writes to stdout.
//
// --trace-out PATH enables causal tracing + the flight recorder and writes
// a merged Chrome trace_event / Perfetto JSON timeline to PATH (load it in
// ui.perfetto.dev). Under --distributed the per-process flight-recorder
// dumps land in PATH.d/ and are clock-aligned into one fleet timeline; in
// the single-process World the timeline covers this process's spans and
// pipeline events.
//
// Persistence (src/store): --snapshot-dir plus --snapshot-every N write a
// durable generation every N days. --resume restores the newest good
// generation from --snapshot-dir and continues the run bit-identically to
// one that was never interrupted; if the directory holds no loadable
// snapshot (first run, torn write, version skew) the fleet cold-starts and
// says so. --warm-start instead begins a FRESH run but replays the stored
// regression set each day, so previously-found bugs resurface immediately.
//
// --distributed runs the fleet as OS processes instead of one (src/dist):
// --dist-shards shard workers are forked, each owning a Hive, and a
// TraceRouter in this process streams each simulated day's traffic to them
// over a Unix-domain socket with bounded queues and credit-based
// backpressure. The per-day rows then show transport health (shed traces,
// backpressure stalls, queue peak) alongside delivery counts, and the run
// ends with each worker's closing ledger. Composes with --days and seed;
// the World-only knobs (--resume, --adaptive, ...) do not apply.
//
// --adaptive turns on the telemetry-driven control plane (hive/adapt.h):
// guidance budgets, the daily proof slice, and a daily cooperative
// exploration run are all rebalanced from measured yield instead of the
// static uniform schedule. Composes with the persistence flags — the yield
// ledger is part of every snapshot, so a resumed adaptive run keeps its
// learned allocation and stays bit-identical to an uninterrupted one.
#include <sys/stat.h>
#include <sys/wait.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "common/fsio.h"
#include "core/softborg.h"
#include "hive/report.h"

namespace {

// Best-effort mkdir -p for the flight-recorder dump directory.
void mkdirs(const std::string& path) {
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    pos = path.find('/', pos + 1);
    ::mkdir(path.substr(0, pos).c_str(), 0755);
  }
}

// Decodes the dumps that exist under `paths`, merges them into one Chrome
// trace JSON at `out_path`, and prints the stable summary line.
void merge_trace_dumps(const std::vector<std::string>& paths,
                       const std::string& out_path) {
  using namespace softborg;
  std::vector<obs::RecorderDump> dumps;
  for (const std::string& path : paths) {
    Bytes data;
    if (!read_file(path, data)) continue;
    if (auto dump = obs::decode_recorder_dump(data)) {
      dumps.push_back(std::move(*dump));
    }
  }
  obs::ChromeTraceStats st;
  const std::string json = obs::to_chrome_trace(dumps, &st);
  if (obs::write_text_file(out_path, json)) {
    std::printf(
        "trace: dumps=%zu events=%zu flows=%zu cross_process_chains=%zu "
        "-> %s\n",
        st.processes, st.events, st.flows, st.cross_process_chains,
        out_path.c_str());
  }
}

// The --distributed fleet: forked shard workers behind a socket router,
// stepped one simulated day at a time. Traffic is the same seeded
// corpus-random workload shape the in-process World generates, so the day
// series is comparable; the extra columns are the transport's.
int run_distributed(std::uint64_t seed, std::uint64_t days,
                    std::size_t num_shards, std::size_t traces_per_day,
                    const char* prom_path, const char* trace_out) {
  using namespace softborg;
  using namespace softborg::dist;

  const std::string addr =
      "unix:/tmp/softborg-fleet-" + std::to_string(::getpid()) + ".sock";
  // Flight-recorder dumps live next to the merged timeline in <out>.d/.
  std::string dump_dir, router_dump;
  std::vector<std::string> dump_paths;
  if (trace_out != nullptr) {
    dump_dir = std::string(trace_out) + ".d";
    mkdirs(dump_dir);
    router_dump = dump_dir + "/router.sbfr";
    obs::set_tracing_enabled(true);
    obs::Recorder::set_enabled(true);
    obs::Recorder::global().set_label("router");
    obs::Recorder::global().install_signal_flush(router_dump);
  }
  const auto corpus = standard_corpus();
  // Fork before anything in this process creates a thread.
  std::vector<int> pids;
  for (std::size_t i = 0; i < num_shards; ++i) {
    WorkerConfig config;
    if (trace_out != nullptr) {
      config.trace_dump_path =
          dump_dir + "/shard" + std::to_string(i) + ".sbfr";
      dump_paths.push_back(config.trace_dump_path);
    }
    const int pid = spawn_worker_process(i, &corpus, config, addr);
    if (pid <= 0) {
      std::fprintf(stderr, "fork failed for shard %zu\n", i);
      return 1;
    }
    pids.push_back(pid);
  }
  Listener listener(addr);
  TraceRouter router(num_shards);
  const auto round = [&] {
    while (auto ch = listener.accept()) router.add_unidentified(std::move(ch));
    router.pump();
  };
  const auto settle = [&](auto done) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(60);
    while (!done() && std::chrono::steady_clock::now() < deadline) {
      round();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return done();
  };

  Rng rng(seed);
  std::uint64_t trace_id = 1;
  std::printf("%-5s %-8s %-9s %-6s %-7s %-7s\n", "day", "traces", "forwarded",
              "shed", "stalls", "qpeak");
  RouterStats prev;
  for (std::uint64_t day = 1; day <= days; ++day) {
    for (std::size_t i = 0; i < traces_per_day; ++i) {
      const CorpusEntry& entry = corpus[rng.next_below(corpus.size())];
      ExecConfig cfg;
      for (const auto& d : entry.domains) {
        cfg.inputs.push_back(rng.next_in(d.lo, d.hi));
      }
      cfg.seed = rng();
      auto result = execute(entry.program, cfg);
      result.trace.id = TraceId(trace_id++);
      result.trace.day = day;
      obs::TraceContext ctx;
      if (obs::tracing_enabled()) {
        // This loop is the pod stand-in: the causal chain is born at
        // injection, exactly as Pod::run_once births it in a real fleet.
        ctx = obs::with_hop(
            obs::TraceContext{obs::causal_trace_id(result.trace.id.value,
                                                   result.trace.program.value),
                              0},
            obs::Hop::kPod);
        obs::Recorder::record(obs::EventKind::kPodEmit, ctx);
      }
      router.route_wire(encode_trace(result.trace), ctx);
      round();
    }
    if (!settle([&] { return router.quiescent(); })) {
      std::fprintf(stderr, "day %llu: fleet failed to drain\n",
                   static_cast<unsigned long long>(day));
      break;
    }
    const RouterStats& s = router.stats();
    std::printf("%-5llu %-8llu %-9llu %-6llu %-7llu %-7zu\n",
                static_cast<unsigned long long>(day),
                static_cast<unsigned long long>(s.received - prev.received),
                static_cast<unsigned long long>(s.forwarded - prev.forwarded),
                static_cast<unsigned long long>(s.shed - prev.shed),
                static_cast<unsigned long long>(s.backpressure_stalls -
                                                prev.backpressure_stalls),
                s.queue_depth_peak);
    prev = s;
  }

  router.broadcast_shutdown();
  const bool closed = settle([&] { return router.all_reports_in(); });
  const RouterStats& s = router.stats();
  std::printf(
      "\ndistributed fleet: received=%llu forwarded=%llu shed=%llu "
      "(%.2f%% shed rate), stalls=%llu stall_s=%.3f queue_peak=%zu\n",
      static_cast<unsigned long long>(s.received),
      static_cast<unsigned long long>(s.forwarded),
      static_cast<unsigned long long>(s.shed),
      s.received == 0 ? 0.0
                      : 100.0 * static_cast<double>(s.shed) /
                            static_cast<double>(s.received),
      static_cast<unsigned long long>(s.backpressure_stalls), s.stall_seconds,
      s.queue_depth_peak);
  std::uint64_t bugs = 0, paths = 0, ingested = 0;
  for (const auto& report : router.reports()) {
    const auto stats = dist::decode_worker_stats(report.stats_wire);
    if (!stats) continue;
    ingested += stats->ingested;
    bugs += stats->hive.bugs_found;
    paths += stats->hive.new_paths;
    std::printf("shard %llu: ingested=%llu bugs=%llu new_paths=%llu\n",
                static_cast<unsigned long long>(stats->shard_index),
                static_cast<unsigned long long>(stats->ingested),
                static_cast<unsigned long long>(stats->hive.bugs_found),
                static_cast<unsigned long long>(stats->hive.new_paths));
  }
  std::printf("fleet totals: ingested=%llu bugs=%llu new_paths=%llu\n",
              static_cast<unsigned long long>(ingested),
              static_cast<unsigned long long>(bugs),
              static_cast<unsigned long long>(paths));
  if (prom_path != nullptr) {
    obs::write_text_file(prom_path,
                         obs::to_prometheus(
                             obs::MetricsRegistry::global().snapshot()));
  }
  int failures = 0;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    int status = 0;
    ::waitpid(pids[i], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) failures++;
  }
  if (trace_out != nullptr) {
    // Workers have exited (dumps flushed at their clean shutdown); add this
    // process's dump and merge everything onto one clock axis.
    (void)obs::Recorder::global().flush_to_file(router_dump);
    dump_paths.push_back(router_dump);
    merge_trace_dumps(dump_paths, trace_out);
  }
  return closed && failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace softborg;

  WorldConfig config;
  config.pods_per_program = 150;  // ~1000 pods across the 7-program corpus
  config.days = 30;
  config.mean_runs_per_day = 5.0;
  config.guidance_per_program_per_day = 3;
  config.net.drop_prob = 0.02;
  config.seed = 42;

  const char* json_path = nullptr;
  const char* prom_path = nullptr;
  const char* trace_out = nullptr;
  bool resume = false;
  bool warm_start = false;
  bool distributed = false;
  std::size_t dist_shards = 4;
  std::size_t traces_per_day = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--distributed") == 0) {
      distributed = true;
    } else if (std::strcmp(argv[i], "--dist-shards") == 0 && i + 1 < argc) {
      dist_shards = static_cast<std::size_t>(atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--traces-per-day") == 0 && i + 1 < argc) {
      traces_per_day = static_cast<std::size_t>(atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      config.days = static_cast<std::uint64_t>(atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot-dir") == 0 && i + 1 < argc) {
      config.snapshot_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0 && i + 1 < argc) {
      config.snapshot_every_n_days =
          static_cast<std::size_t>(atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--warm-start") == 0) {
      warm_start = true;
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      config.adapt.static_plan = false;
      config.proof_programs_per_day = 2;
      config.coop_programs_per_day = 1;
      config.coop.num_workers = 3;
    } else {
      config.seed = static_cast<std::uint64_t>(atoll(argv[i]));
    }
  }
  if (json_path != nullptr || prom_path != nullptr) {
    obs::set_spans_enabled(true);  // populate the timing histograms too
  }
  if (distributed) {
    return run_distributed(config.seed, config.days, dist_shards,
                           traces_per_day, prom_path, trace_out);
  }
  if (trace_out != nullptr) {
    // Single-process World: one dump, still a valid (one-lane) timeline.
    obs::set_tracing_enabled(true);
    obs::Recorder::set_enabled(true);
    obs::Recorder::global().set_label("world");
  }
  if ((resume || warm_start) && config.snapshot_dir.empty()) {
    std::fprintf(stderr,
                 "--resume/--warm-start need --snapshot-dir DIR\n");
    return 2;
  }
  if (warm_start) {
    std::string err;
    config.warm_start_regressions =
        load_regression_inputs(config.snapshot_dir, &err);
    std::printf("warm start: %zu regression inputs%s%s\n",
                config.warm_start_regressions.size(),
                err.empty() ? "" : " — ", err.c_str());
  }

  std::optional<World> world_slot;
  world_slot.emplace(standard_corpus(), config);
  if (resume) {
    std::string err;
    if (world_slot->resume_from_snapshot(config.snapshot_dir, &err)) {
      std::printf("resumed from %s at day %llu\n", config.snapshot_dir.c_str(),
                  static_cast<unsigned long long>(world_slot->day()));
    } else {
      // A bad/missing snapshot is a clean cold start, never a crash — but
      // the failed restore may have left the World partially mutated, so
      // rebuild from scratch.
      std::printf("no usable snapshot in %s (%s): cold start\n",
                  config.snapshot_dir.c_str(), err.c_str());
      world_slot.emplace(standard_corpus(), config);
    }
  }
  World& world = *world_slot;

  std::printf("%-5s %-8s %-9s %-7s %-9s %-6s %-6s %-8s %-8s\n", "day",
              "runs", "failures", "rate%", "averted", "bugs", "fixed",
              "paths", "traces");
  while (world.day() < config.days) {
    world.step_day();
    const auto& d = world.history().back();
    std::printf("%-5llu %-8llu %-9llu %-7.3f %-9llu %-6zu %-6zu %-8zu %-8llu\n",
                static_cast<unsigned long long>(d.day),
                static_cast<unsigned long long>(d.runs),
                static_cast<unsigned long long>(d.failures),
                d.failure_rate * 100.0,
                static_cast<unsigned long long>(d.fix_interventions),
                d.bugs_found_total, d.bugs_fixed_total, d.total_paths,
                static_cast<unsigned long long>(d.traces_delivered_total));
  }

  std::printf("\nhive stats: ingested=%llu dup=%llu decode_fail=%llu "
              "new_paths=%llu fixes=%llu repair_lab=%llu\n",
              static_cast<unsigned long long>(world.hive().stats().traces_ingested),
              static_cast<unsigned long long>(world.hive().stats().duplicates_dropped),
              static_cast<unsigned long long>(world.hive().stats().decode_failures),
              static_cast<unsigned long long>(world.hive().stats().new_paths),
              static_cast<unsigned long long>(world.hive().stats().fixes_approved),
              static_cast<unsigned long long>(world.hive().stats().repair_lab_entries));

  std::printf("\n%s", hive_status_report(world.hive(), world.net_stats()).c_str());

  if (json_path != nullptr || prom_path != nullptr) {
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    if (json_path != nullptr) {
      obs::write_text_file(json_path, obs::to_json(snap));
    }
    if (prom_path != nullptr) {
      obs::write_text_file(prom_path, obs::to_prometheus(snap));
    }
  }
  if (trace_out != nullptr) {
    obs::ChromeTraceStats st;
    const std::string json = obs::to_chrome_trace(
        {obs::Recorder::global().snapshot()}, &st);
    if (obs::write_text_file(trace_out, json)) {
      std::printf("trace: dumps=1 events=%zu flows=%zu -> %s\n", st.events,
                  st.flows, trace_out);
    }
  }
  return 0;
}
