// Tests for hive-side deterministic-branch reconstruction (paper §3.2):
// replay must rebuild the exact decision path from only the by-products,
// for every program in the corpus, every outcome, and both granularities.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "minivm/builder.h"
#include "minivm/corpus.h"
#include "minivm/interp.h"
#include "minivm/replay.h"

namespace softborg {
namespace {

// Executes with branch-event collection and cross-checks replay against the
// interpreter's own record of tainted decisions.
void expect_replay_matches(const Program& p, std::vector<Value> inputs,
                           std::uint64_t seed,
                           Granularity gran = Granularity::kTaintedBranches) {
  ExecConfig cfg;
  cfg.inputs = std::move(inputs);
  cfg.seed = seed;
  cfg.granularity = gran;
  cfg.collect_branch_events = true;
  const auto live = execute(p, cfg);

  const auto rep = replay_trace(p, live.trace);
  ASSERT_TRUE(rep.ok) << p.name << ": " << rep.error;

  std::vector<BranchEvent> live_tainted;
  for (const auto& ev : live.branch_events) {
    if (ev.tainted) live_tainted.push_back(ev);
  }
  ASSERT_EQ(rep.decisions.size(), live_tainted.size()) << p.name;
  for (std::size_t i = 0; i < live_tainted.size(); ++i) {
    EXPECT_EQ(rep.decisions[i].site, live_tainted[i].site) << p.name;
    EXPECT_EQ(rep.decisions[i].taken, live_tainted[i].taken) << p.name;
    EXPECT_EQ(rep.decisions[i].thread, live_tainted[i].thread) << p.name;
  }
  EXPECT_EQ(rep.outcome, live.trace.outcome);
}

TEST(Replay, MediaParserOkPath) {
  auto entry = make_media_parser();
  expect_replay_matches(entry.program, {20, 100}, 1);
}

TEST(Replay, MediaParserCrashPath) {
  auto entry = make_media_parser();
  expect_replay_matches(entry.program, {13, 250}, 1);
}

TEST(Replay, MediaParserFullInputSweep) {
  auto entry = make_media_parser();
  for (Value format = 0; format <= 63; format += 3) {
    for (Value size = 0; size <= 255; size += 17) {
      expect_replay_matches(entry.program, {format, size}, 1);
    }
  }
}

TEST(Replay, ReconstructsDeterministicBranches) {
  // A program whose loop branch is deterministic: the trace carries only
  // the one tainted bit, and replay reconstructs the rest.
  ProgramBuilder b("mixed");
  const Reg x = b.reg(), i = b.reg(), one = b.reg(), cond = b.reg(),
            t = b.reg();
  b.input(x, b.input_slot());
  b.const_(i, 5);
  b.const_(one, 1);
  auto top = b.here();
  auto body = b.label(), after = b.label();
  b.const_(cond, 0);
  b.cmp_lt(cond, cond, i);
  b.branch_if(cond, body, after);  // deterministic loop branch
  b.bind(body);
  b.sub(i, i, one);
  b.jump(top);
  b.bind(after);
  auto yes = b.label(), no = b.label();
  b.cmp_lt_const(t, x, 50);
  b.branch_if(t, yes, no);  // the single tainted branch
  b.bind(yes);
  b.bind(no);
  b.halt();
  const Program p = b.build();

  ExecConfig cfg;
  cfg.inputs = {10};
  const auto live = execute(p, cfg);
  EXPECT_EQ(live.trace.branch_bits.size(), 1u);  // only the tainted branch

  const auto rep = replay_trace(p, live.trace);
  ASSERT_TRUE(rep.ok) << rep.error;
  ASSERT_EQ(rep.decisions.size(), 1u);
  EXPECT_TRUE(rep.decisions[0].taken);
}

TEST(Replay, AllBranchGranularityCrossChecks) {
  auto entry = make_media_parser();
  expect_replay_matches(entry.program, {13, 250}, 1,
                        Granularity::kAllBranches);
  expect_replay_matches(entry.program, {40, 10}, 1,
                        Granularity::kAllBranches);
}

TEST(Replay, CorruptedBitsDetectedAtAllGranularity) {
  // A program with a deterministic branch: at kAllBranches granularity its
  // direction is recorded too, and replay cross-checks it against the
  // reconstructed value — flipping it must be detected.
  ProgramBuilder b("detcheck");
  const Reg x = b.reg(), c = b.reg(), t = b.reg();
  b.input(x, b.input_slot());
  b.const_(c, 1);
  auto det_t = b.label(), det_f = b.label();
  b.branch_if(c, det_t, det_f);  // deterministic: always true
  b.bind(det_t);
  b.bind(det_f);
  auto yes = b.label(), no = b.label();
  b.cmp_lt_const(t, x, 50);
  b.branch_if(t, yes, no);  // tainted
  b.bind(yes);
  b.bind(no);
  b.halt();
  const Program p = b.build();

  ExecConfig cfg;
  cfg.inputs = {10};
  cfg.granularity = Granularity::kAllBranches;
  const auto live = execute(p, cfg);
  ASSERT_EQ(live.trace.branch_bits.size(), 2u);
  ASSERT_TRUE(replay_trace(p, live.trace).ok);

  Trace mutated = live.trace;
  mutated.branch_bits.set(0, !mutated.branch_bits[0]);  // deterministic bit
  const auto rep = replay_trace(p, mutated);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("mismatch"), std::string::npos);
}

TEST(Replay, TruncatedBitsRejected) {
  auto entry = make_config_space(6);
  ExecConfig cfg;
  cfg.inputs = {1, 0, 1, 0, 1, 0};
  auto live = execute(entry.program, cfg);
  Trace mutated = live.trace;
  // Drop the last bit.
  BitVec shorter;
  for (std::size_t i = 0; i + 1 < mutated.branch_bits.size(); ++i) {
    shorter.push_back(mutated.branch_bits[i]);
  }
  mutated.branch_bits = shorter;
  const auto rep = replay_trace(entry.program, mutated);
  EXPECT_FALSE(rep.ok);
}

TEST(Replay, ExtraBitsRejected) {
  auto entry = make_config_space(6);
  ExecConfig cfg;
  cfg.inputs = {1, 1, 1, 1, 1, 1};
  auto live = execute(entry.program, cfg);
  Trace mutated = live.trace;
  mutated.branch_bits.push_back(true);
  const auto rep = replay_trace(entry.program, mutated);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("unconsumed"), std::string::npos);
}

TEST(Replay, PatchedTracesRefused) {
  auto entry = make_media_parser();
  Trace t;
  t.program = entry.program.id;
  t.patched = true;
  const auto rep = replay_trace(entry.program, t);
  EXPECT_FALSE(rep.ok);
}

TEST(Replay, GranularityNoneRefused) {
  auto entry = make_media_parser();
  Trace t;
  t.granularity = Granularity::kNone;
  EXPECT_FALSE(replay_trace(entry.program, t).ok);
}

TEST(Replay, MultiThreadedDeadlockTrace) {
  auto entry = make_bank_transfer();
  int replayed_deadlocks = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {150};
    cfg.seed = seed;
    cfg.collect_branch_events = true;
    const auto live = execute(entry.program, cfg);
    if (live.trace.outcome != Outcome::kDeadlock) continue;
    const auto rep = replay_trace(entry.program, live.trace);
    ASSERT_TRUE(rep.ok) << "seed " << seed << ": " << rep.error;
    replayed_deadlocks++;
  }
  EXPECT_GT(replayed_deadlocks, 0);
}

TEST(Replay, MultiThreadedOkTraces) {
  auto entry = make_bank_transfer();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {80};
    cfg.seed = seed;
    cfg.collect_branch_events = true;
    const auto live = execute(entry.program, cfg);
    ASSERT_EQ(live.trace.outcome, Outcome::kOk);
    const auto rep = replay_trace(entry.program, live.trace);
    EXPECT_TRUE(rep.ok) << "seed " << seed << ": " << rep.error;
  }
}

TEST(Replay, RaceCounterSchedulesReplayExactly) {
  auto entry = make_race_counter();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ExecConfig cfg;
    cfg.seed = seed;
    const auto live = execute(entry.program, cfg);
    if (live.trace.outcome == Outcome::kHang) continue;
    const auto rep = replay_trace(entry.program, live.trace);
    EXPECT_TRUE(rep.ok) << "seed " << seed << ": " << rep.error;
    EXPECT_EQ(rep.outcome, live.trace.outcome);
  }
}

TEST(Replay, WholeCorpusRandomizedRoundTrip) {
  Rng rng(999);
  for (const auto& entry : standard_corpus()) {
    for (int round = 0; round < 20; ++round) {
      std::vector<Value> inputs;
      for (const auto& d : entry.domains) {
        inputs.push_back(rng.next_in(d.lo, d.hi));
      }
      ExecConfig cfg;
      cfg.inputs = inputs;
      cfg.seed = rng();
      const auto live = execute(entry.program, cfg);
      if (live.trace.outcome == Outcome::kHang) continue;
      const auto rep = replay_trace(entry.program, live.trace);
      EXPECT_TRUE(rep.ok) << entry.program.name << ": " << rep.error;
    }
  }
}

TEST(Replay, IdenticalInputsGiveIdenticalDecisionPaths) {
  auto entry = make_media_parser();
  ExecConfig cfg;
  cfg.inputs = {13, 250};
  const auto a = execute(entry.program, cfg);
  const auto b = execute(entry.program, cfg);
  const auto ra = replay_trace(entry.program, a.trace);
  const auto rb = replay_trace(entry.program, b.trace);
  ASSERT_TRUE(ra.ok);
  ASSERT_TRUE(rb.ok);
  ASSERT_EQ(ra.decisions.size(), rb.decisions.size());
  for (std::size_t i = 0; i < ra.decisions.size(); ++i) {
    EXPECT_EQ(ra.decisions[i].site, rb.decisions[i].site);
    EXPECT_EQ(ra.decisions[i].taken, rb.decisions[i].taken);
  }
}

}  // namespace
}  // namespace softborg
