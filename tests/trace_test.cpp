#include <gtest/gtest.h>

#include "common/rng.h"
#include "trace/codec.h"
#include "trace/sampling.h"
#include "trace/trace.h"

namespace softborg {
namespace {

Trace sample_trace(std::uint64_t seed = 1) {
  Rng r(seed);
  Trace t;
  t.id = TraceId(r());
  t.program = ProgramId(r.next_below(100));
  t.pod = PodId(r.next_below(10000));
  t.outcome = Outcome::kCrash;
  t.crash = CrashInfo{CrashKind::kDivByZero, 42, -7};
  t.granularity = Granularity::kFull;
  for (int i = 0; i < 100; ++i) t.branch_bits.push_back(r.next_bool());
  t.schedule = {{0, 17}, {1, 5}, {0, 3}};
  t.lock_events = {{0, true, 1, 10}, {1, true, 2, 20}, {0, false, 1, 12}};
  t.syscalls = {{0, 0, -1}, {3, 1, 1}, {1, 2, 0}};
  t.steps = 12345;
  t.patched = true;
  t.guided = false;
  t.day = 33;
  return t;
}

TEST(Codec, RoundTripFullTrace) {
  const Trace t = sample_trace();
  const Bytes wire = encode_trace(t);
  auto back = decode_trace(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
}

TEST(Codec, RoundTripMinimalTrace) {
  Trace t;
  t.outcome = Outcome::kOk;
  const Bytes wire = encode_trace(t);
  auto back = decode_trace(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
}

TEST(Codec, RoundTripEveryOutcome) {
  for (auto o : {Outcome::kOk, Outcome::kCrash, Outcome::kDeadlock,
                 Outcome::kHang, Outcome::kUserKilled}) {
    Trace t;
    t.outcome = o;
    auto back = decode_trace(encode_trace(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->outcome, o);
  }
}

TEST(Codec, RoundTripRandomizedSweep) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Trace t = sample_trace(seed);
    auto back = decode_trace(encode_trace(t));
    ASSERT_TRUE(back.has_value()) << "seed " << seed;
    EXPECT_EQ(*back, t) << "seed " << seed;
  }
}

TEST(Codec, RejectsEmptyInput) {
  EXPECT_FALSE(decode_trace({}).has_value());
}

TEST(Codec, RejectsBadMagic) {
  Bytes wire = encode_trace(sample_trace());
  wire[0] ^= 0xff;
  EXPECT_FALSE(decode_trace(wire).has_value());
}

TEST(Codec, RejectsTruncation) {
  const Bytes wire = encode_trace(sample_trace());
  // Every strict prefix must be rejected — no partial decodes.
  for (std::size_t cut = 0; cut < wire.size(); cut += 7) {
    Bytes prefix(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode_trace(prefix).has_value()) << "cut " << cut;
  }
}

TEST(Codec, RejectsTrailingGarbage) {
  Bytes wire = encode_trace(sample_trace());
  wire.push_back(0x00);
  EXPECT_FALSE(decode_trace(wire).has_value());
}

TEST(Codec, RejectsInvalidOutcome) {
  Trace t;
  Bytes wire = encode_trace(t);
  // Layout: magic (5 bytes), then version/id/program/pod as single-byte
  // varints, so the outcome byte is at index 9.
  wire[9] = 99;
  EXPECT_FALSE(decode_trace(wire).has_value());
}

TEST(Codec, FuzzRandomBytesNeverCrash) {
  Rng r(77);
  for (int round = 0; round < 2000; ++round) {
    Bytes junk(r.next_below(64));
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(r());
    (void)decode_trace(junk);  // must not crash or hang
  }
}

TEST(Codec, FuzzMutatedValidTracesNeverCrash) {
  Rng r(78);
  const Bytes wire = encode_trace(sample_trace());
  for (int round = 0; round < 2000; ++round) {
    Bytes mutated = wire;
    const std::size_t n_mutations = 1 + r.next_below(4);
    for (std::size_t i = 0; i < n_mutations; ++i) {
      mutated[r.next_below(mutated.size())] =
          static_cast<std::uint8_t>(r());
    }
    auto result = decode_trace(mutated);  // must not crash
    if (result.has_value()) {
      // If it decodes, invariants must hold.
      EXPECT_LE(static_cast<int>(result->outcome), 4);
    }
  }
}

TEST(Codec, WireSizeIsCompact) {
  // 100 branch bits + metadata should be well under raw struct size.
  const Trace t = sample_trace();
  const Bytes wire = encode_trace(t);
  EXPECT_LT(wire.size(), 200u);
}

// --------------------------------------------------- wire summaries -------
// codec.h promises: summarize_trace_wire(w) succeeds exactly when
// decode_trace(w) succeeds, the shared fields agree, and key equals
// replay_key(*decode_trace(w)). The batch pipeline's deferred decoding
// (dedup and memoization straight off the wire) rests on these three.

TEST(Codec, SummaryFieldsAgreeWithDecode) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Bytes wire = encode_trace(sample_trace(seed));
    const auto t = decode_trace(wire);
    const auto s = summarize_trace_wire(wire);
    ASSERT_TRUE(t.has_value());
    ASSERT_TRUE(s.has_value()) << "seed " << seed;
    EXPECT_EQ(s->id, t->id);
    EXPECT_EQ(s->program, t->program);
    EXPECT_EQ(s->pod, t->pod);
    EXPECT_EQ(s->outcome, t->outcome);
    EXPECT_EQ(s->crash, t->crash);
    EXPECT_EQ(s->granularity, t->granularity);
    EXPECT_EQ(s->steps, t->steps);
    EXPECT_EQ(s->patched, t->patched);
    EXPECT_EQ(s->guided, t->guided);
    EXPECT_EQ(s->day, t->day);
  }
}

TEST(Codec, SummaryKeyEqualsReplayKeyOfDecodedTrace) {
  for (auto o : {Outcome::kOk, Outcome::kCrash, Outcome::kDeadlock,
                 Outcome::kHang, Outcome::kUserKilled}) {
    Trace t = sample_trace(static_cast<std::uint64_t>(o) + 1);
    t.outcome = o;
    if (o != Outcome::kCrash) t.crash.reset();
    const Bytes wire = encode_trace(t);
    const auto s = summarize_trace_wire(wire);
    ASSERT_TRUE(s.has_value());
    const ReplayKey k = replay_key(*decode_trace(wire));
    EXPECT_EQ(s->key.key, k.key);
    EXPECT_EQ(s->key.check, k.check);
  }
  // Odd bit counts exercise the last-word masking in the streaming fold.
  for (int nbits : {0, 1, 63, 64, 65, 127, 128, 129}) {
    Trace t;
    Rng r(nbits + 7);
    for (int i = 0; i < nbits; ++i) t.branch_bits.push_back(r.next_bool());
    const Bytes wire = encode_trace(t);
    const auto s = summarize_trace_wire(wire);
    ASSERT_TRUE(s.has_value()) << "nbits " << nbits;
    EXPECT_EQ(s->key.key, replay_key(*decode_trace(wire)).key)
        << "nbits " << nbits;
  }
}

TEST(Codec, SummarizeSucceedsExactlyWhenDecodeSucceeds) {
  const Bytes wire = encode_trace(sample_trace());
  // Strict prefixes fail both; so does appended garbage.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes prefix(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_EQ(summarize_trace_wire(prefix).has_value(),
              decode_trace(prefix).has_value())
        << "cut " << cut;
  }
  Bytes padded = wire;
  padded.push_back(0x00);
  EXPECT_FALSE(summarize_trace_wire(padded).has_value());
  // Mutation sweep: whatever decode thinks of a corrupted wire, summarize
  // must agree — the batch path counts decode_failures off summaries alone.
  Rng r(79);
  for (int round = 0; round < 2000; ++round) {
    Bytes mutated = wire;
    const std::size_t n_mutations = 1 + r.next_below(4);
    for (std::size_t i = 0; i < n_mutations; ++i) {
      mutated[r.next_below(mutated.size())] = static_cast<std::uint8_t>(r());
    }
    EXPECT_EQ(summarize_trace_wire(mutated).has_value(),
              decode_trace(mutated).has_value());
  }
  Rng junk_rng(80);
  for (int round = 0; round < 2000; ++round) {
    Bytes junk(junk_rng.next_below(64));
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(junk_rng());
    EXPECT_EQ(summarize_trace_wire(junk).has_value(),
              decode_trace(junk).has_value());
  }
}

TEST(Codec, DecodeIntoRecyclesAcrossWires) {
  // One scratch trace decodes a sequence of wires (the stage-2 miss path);
  // every result must equal a fresh decode, including after a failure.
  Trace scratch;
  Rng r(81);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Trace t = sample_trace(seed);
    if (seed % 3 == 0) {  // vary payload shapes so capacities shrink too
      t.lock_events.clear();
      t.syscalls.clear();
      t.branch_bits.clear();
      t.crash.reset();
      t.outcome = Outcome::kOk;
    }
    const Bytes wire = encode_trace(t);
    ASSERT_TRUE(decode_trace_into(scratch, wire)) << "seed " << seed;
    EXPECT_EQ(scratch, t) << "seed " << seed;
    Bytes broken = wire;
    broken.resize(broken.size() / 2);
    EXPECT_FALSE(decode_trace_into(scratch, broken));
    ASSERT_TRUE(decode_trace_into(scratch, wire));  // recovers after failure
    EXPECT_EQ(scratch, t) << "seed " << seed;
  }
}

// ------------------------------------------------------------ sampling -----

TEST(Sampling, RateOneRecordsEverything) {
  for (std::uint32_t site = 0; site < 100; ++site) {
    EXPECT_TRUE(sample_site(site, PodId(3), 1));
  }
}

TEST(Sampling, ApproximatelyOneOverRate) {
  const std::uint32_t rate = 10;
  int recorded = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (sample_site(static_cast<std::uint32_t>(i % 200),
                    PodId(static_cast<std::uint64_t>(i / 200)), rate)) {
      recorded++;
    }
  }
  EXPECT_NEAR(static_cast<double>(recorded) / n, 1.0 / rate, 0.01);
}

TEST(Sampling, CoordinatedCoverage) {
  // Across enough pods, every site is recorded by someone.
  const std::uint32_t rate = 13;
  for (std::uint32_t site = 0; site < 50; ++site) {
    bool covered = false;
    for (std::uint64_t pod = 0; pod < 200 && !covered; ++pod) {
      covered = sample_site(site, PodId(pod), rate);
    }
    EXPECT_TRUE(covered) << "site " << site;
  }
}

TEST(Sampling, DeterministicAssignment) {
  EXPECT_EQ(sample_site(7, PodId(3), 5), sample_site(7, PodId(3), 5));
}

TEST(SiteStats, FailureScoreIdentifiesPredictiveSite) {
  SiteStats stats;
  // Site 1 taken => always fails; site 2 is noise.
  Rng r(5);
  for (int i = 0; i < 200; ++i) {
    SampledTrace t;
    t.outcome = (i % 4 == 0) ? Outcome::kCrash : Outcome::kOk;
    t.observations.push_back({1, t.outcome == Outcome::kCrash});
    t.observations.push_back({2, r.next_bool()});
    stats.add(t);
  }
  EXPECT_GT(stats.failure_score(1, true), 0.5);
  EXPECT_LT(std::abs(stats.failure_score(2, true)), 0.3);
  const auto ranked = stats.ranked_sites();
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 1u);
}

TEST(SiteStats, UnknownSiteScoresZero) {
  SiteStats stats;
  EXPECT_DOUBLE_EQ(stats.failure_score(123, true), 0.0);
  EXPECT_EQ(stats.cell(123), nullptr);
}

}  // namespace
}  // namespace softborg
