# Empty compiler generated dependencies file for distributed_hive.
# This may be replaced when dependencies are built.
