#include "hive/fixer.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "minivm/interp.h"
#include "minivm/replay.h"
#include "pod/protocol.h"

namespace softborg {

std::vector<InputBound> input_hull(const PathConstraint& constraints,
                                   const std::vector<VarDomain>& domains,
                                   const std::vector<VarDomain>& unknowns) {
  std::vector<InputBound> hull;
  auto feasible_with = [&](std::size_t input, Value lo, Value hi) {
    PathConstraint pc = constraints;
    const Expr var = make_input(static_cast<std::uint32_t>(input));
    pc.push_back({make_bin(BinOp::kLe, make_const(lo), var), true});
    pc.push_back({make_bin(BinOp::kLe, var, make_const(hi)), true});
    return solve_path(pc, domains, unknowns).status == SolveStatus::kSat;
  };

  for (std::size_t i = 0; i < domains.size(); ++i) {
    const VarDomain d = domains[i];
    if (!feasible_with(i, d.lo, d.hi)) return {};  // constraint infeasible

    // Smallest feasible value: binary search the least m with
    // feasible([lo, m]).
    Value lo = d.lo, hi = d.hi;
    while (lo < hi) {
      const Value mid = lo + (hi - lo) / 2;
      if (feasible_with(i, d.lo, mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    const Value min_v = lo;

    lo = d.lo;
    hi = d.hi;
    while (lo < hi) {
      const Value mid = lo + (hi - lo + 1) / 2;
      if (feasible_with(i, mid, d.hi)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    const Value max_v = lo;

    if (min_v == d.lo && max_v == d.hi) continue;  // unconstrained
    hull.push_back({static_cast<std::uint16_t>(i), min_v, max_v});
  }
  return hull;
}

std::vector<FixCandidate> FixSynthesizer::crash_candidates(
    const Bug& bug, const CorpusEntry& entry) {
  std::vector<FixCandidate> out;
  SB_CHECK(bug.crash.has_value());

  // Derive the crash path constraint from the exemplar trace first: its
  // input hull tells validation where the failure lives, and enables the
  // branch-steering candidate. Single-threaded programs only (the
  // decision-stream replay is deterministic there).
  std::vector<InputBound> hull;
  std::vector<SymDecision> decisions;
  if (entry.program.num_threads() == 1 && !bug.exemplar.patched &&
      bug.exemplar.granularity != Granularity::kNone &&
      bug.exemplar.granularity != Granularity::kAllBranches) {
    const auto rep = replay_trace(entry.program, bug.exemplar);
    if (rep.ok) {
      for (const auto& d : rep.decisions) {
        decisions.push_back({d.site, d.taken});
      }
      ExploreOptions opt;
      opt.input_domains = domains_of(entry);
      SymbolicExecutor ex(entry.program, opt);
      const auto path = ex.path_for_decisions(decisions, bug.exemplar.steps,
                                              bug.exemplar.crash);
      if (path.has_value() && path->terminal == PathTerminal::kCrash) {
        hull = input_hull(path->constraints, opt.input_domains,
                          path->unknown_domains);
        // Candidate: input-predicate branch steering, worthwhile only when
        // the crash region is genuinely input-bounded. The patch anchors at
        // the last *branch* decision of the crash path (check sites — the
        // crash itself — cannot be steered; they are guarded by the
        // crash-site candidate below).
        std::vector<bool> site_is_branch(entry.program.num_branch_sites,
                                         false);
        for (const auto& ins : entry.program.code) {
          if (ins.op == Op::kBranchIf) site_is_branch[ins.site] = true;
        }
        const SymDecision* anchor = nullptr;
        for (auto it = decisions.rbegin(); it != decisions.rend(); ++it) {
          if (site_is_branch[it->site]) {
            anchor = &*it;
            break;
          }
        }
        if (!hull.empty() && anchor != nullptr) {
          FixCandidate c;
          GuardPatch patch;
          patch.id = next_id();
          patch.program = entry.program.id;
          patch.site = anchor->site;
          patch.crash_direction = anchor->taken;
          patch.when = hull;
          c.fix = patch;
          c.bug = bug.id;
          c.program = entry.program.id;
          c.region_hint = hull;
          c.rationale = "steer branch site " + std::to_string(patch.site) +
                        " away from crash region " +
                        path_to_string(path->constraints);
          out.push_back(std::move(c));
        }
      }
    }
  }

  // Candidate: crash-site guard. Always applicable (covers crashes whose
  // condition depends on syscall results rather than inputs).
  {
    FixCandidate c;
    CrashGuardFix guard;
    guard.id = next_id();
    guard.program = entry.program.id;
    guard.pc = bug.crash->pc;
    guard.action = bug.crash->kind == CrashKind::kDivByZero
                       ? CrashGuardFix::Action::kSubstitute
                       : CrashGuardFix::Action::kSkip;
    guard.fallback = 0;
    c.fix = guard;
    c.bug = bug.id;
    c.program = entry.program.id;
    c.region_hint = hull;  // may be empty: then validation samples the domain
    c.rationale = "crash-site guard at pc " + std::to_string(guard.pc);
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<FixCandidate> FixSynthesizer::deadlock_candidates(
    const Bug& bug, const CorpusEntry& entry) {
  std::vector<FixCandidate> out;
  if (bug.cycle_locks.empty()) return out;
  FixCandidate c;
  LockAvoidanceFix fix;
  fix.id = next_id();
  fix.program = entry.program.id;
  fix.cycle_locks = bug.cycle_locks;
  c.fix = fix;
  c.bug = bug.id;
  c.program = entry.program.id;
  c.rationale = "serialize entry into diagnosed lock cycle (immunity)";
  out.push_back(std::move(c));
  return out;
}

void FixSynthesizer::validate(FixCandidate& candidate,
                              const CorpusEntry& entry, const Bug& bug) {
  FixSet fixes;
  std::visit(
      [&fixes](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, GuardPatch>) {
          fixes.guards.push_back(f);
        } else if constexpr (std::is_same_v<T, CrashGuardFix>) {
          fixes.crash_guards.push_back(f);
        } else {
          fixes.lock_fixes.push_back(f);
        }
      },
      candidate.fix);

  Rng rng(config_.seed ^ bug.id.value);
  auto draw_inputs = [&]() {
    std::vector<Value> inputs;
    for (const auto& d : entry.domains) inputs.push_back(rng.next_in(d.lo, d.hi));
    return inputs;
  };

  // (a) Region validation: re-create failing conditions and check the fix
  // averts them. For deadlocks/schedule bugs the "region" is many seeds of
  // the exemplar inputs; for crashes it is the exemplar inputs themselves
  // (plus jitter within any GuardPatch hull).
  std::uint64_t averted = 0, region_runs = 0;
  for (std::size_t i = 0; i < config_.validation_runs_region; ++i) {
    ExecConfig cfg;
    cfg.seed = rng();
    cfg.max_steps = 200'000;
    // Without recorded inputs (privacy), sample the synthesized crash
    // region when one is known; otherwise the whole domain (works when the
    // failure is frequent or environment-driven).
    std::vector<Value> inputs = draw_inputs();
    for (const auto& bound : candidate.region_hint) {
      if (bound.input < inputs.size()) {
        inputs[bound.input] = rng.next_in(bound.lo, bound.hi);
      }
    }
    cfg.inputs = std::move(inputs);

    // First check the failure still manifests without the fix (otherwise
    // the run doesn't count as region evidence).
    ExecConfig bare = cfg;
    bare.fixes = nullptr;
    const auto before = execute(entry.program, bare);
    if (before.trace.outcome == Outcome::kOk) continue;

    region_runs++;
    cfg.fixes = &fixes;
    const auto after = execute(entry.program, cfg);
    if (after.trace.outcome == Outcome::kOk) averted++;
  }
  candidate.averted_fraction =
      region_runs == 0 ? 0.0
                       : static_cast<double>(averted) /
                             static_cast<double>(region_runs);

  // (b) Preservation: healthy runs must stay byte-identical.
  std::uint64_t preserved = 0, healthy_runs = 0;
  for (std::size_t i = 0; i < config_.validation_runs_domain; ++i) {
    ExecConfig cfg;
    cfg.inputs = draw_inputs();
    cfg.seed = rng();
    cfg.max_steps = 200'000;

    ExecConfig bare = cfg;
    const auto before = execute(entry.program, bare);
    if (before.trace.outcome != Outcome::kOk) continue;

    healthy_runs++;
    cfg.fixes = &fixes;
    const auto after = execute(entry.program, cfg);
    // A lock-avoidance fix may legitimately intervene (yield) on healthy
    // runs — that only reorders the schedule. Guard patches and crash
    // guards, in contrast, must never fire outside the failure region.
    const bool is_lock_fix =
        std::holds_alternative<LockAvoidanceFix>(candidate.fix);
    if (after.trace.outcome == Outcome::kOk &&
        after.outputs == before.outputs &&
        (is_lock_fix || !after.fix_intervened)) {
      preserved++;
    }
  }
  candidate.preserved_fraction =
      healthy_runs == 0 ? 1.0
                        : static_cast<double>(preserved) /
                              static_cast<double>(healthy_runs);
  candidate.validation_runs = region_runs + healthy_runs;
}

std::vector<FixCandidate> FixSynthesizer::synthesize(
    const Bug& bug, const CorpusEntry& entry) {
  std::vector<FixCandidate> candidates;
  switch (bug.kind) {
    case BugKind::kCrash:
      candidates = crash_candidates(bug, entry);
      break;
    case BugKind::kDeadlock:
      candidates = deadlock_candidates(bug, entry);
      break;
    case BugKind::kScheduleAssert:
    case BugKind::kHang:
      // Not automatically fixable; the repair lab may still surface a
      // crash-site guard for humans to consider.
      if (bug.crash.has_value()) candidates = crash_candidates(bug, entry);
      break;
  }
  for (auto& c : candidates) validate(c, entry, bug);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const FixCandidate& a, const FixCandidate& b) {
                     return a.score() > b.score();
                   });
  return candidates;
}

void encode_fix_candidate(Bytes& out, const FixCandidate& c) {
  put_varint(out, c.fix.index());
  if (const auto* g = std::get_if<GuardPatch>(&c.fix)) {
    put_blob(out, encode_guard_patch(*g));
  } else if (const auto* cg = std::get_if<CrashGuardFix>(&c.fix)) {
    put_blob(out, encode_crash_guard(*cg));
  } else {
    put_blob(out, encode_lock_fix(std::get<LockAvoidanceFix>(c.fix)));
  }
  put_varint(out, c.bug.value);
  put_varint(out, c.program.value);
  put_varint(out, c.region_hint.size());
  for (const InputBound& b : c.region_hint) {
    put_varint(out, b.input);
    put_varint_signed(out, b.lo);
    put_varint_signed(out, b.hi);
  }
  put_f64(out, c.averted_fraction);
  put_f64(out, c.preserved_fraction);
  put_varint(out, c.validation_runs);
  put_str(out, c.rationale);
}

bool decode_fix_candidate(StateReader& r, FixCandidate& c) {
  const std::uint64_t tag = r.u64_max(2);
  Bytes wire;
  r.blob(wire);
  if (!r.ok()) return false;
  bool decoded = false;
  switch (tag) {
    case 0:
      if (auto g = decode_guard_patch(wire)) {
        c.fix = std::move(*g);
        decoded = true;
      }
      break;
    case 1:
      if (auto cg = decode_crash_guard(wire)) {
        c.fix = std::move(*cg);
        decoded = true;
      }
      break;
    default:
      if (auto lf = decode_lock_fix(wire)) {
        c.fix = std::move(*lf);
        decoded = true;
      }
      break;
  }
  if (!decoded) {
    r.fail();  // the embedded wire record failed its protocol decoder
    return false;
  }
  c.bug = BugId(r.u64());
  c.program = ProgramId(r.u64());
  const std::uint64_t n_bounds = r.count(3);
  c.region_hint.clear();
  c.region_hint.reserve(n_bounds);
  for (std::uint64_t i = 0; i < n_bounds && r.ok(); ++i) {
    InputBound b;
    b.input = static_cast<std::uint16_t>(r.u64_max(0xffff));
    b.lo = r.i64();
    b.hi = r.i64();
    if (b.lo > b.hi) r.fail();
    c.region_hint.push_back(b);
  }
  c.averted_fraction = r.f64();
  c.preserved_fraction = r.f64();
  c.validation_runs = r.u64();
  r.str(c.rationale);
  return r.ok();
}

}  // namespace softborg
