file(REMOVE_RECURSE
  "CMakeFiles/interp2_test.dir/interp2_test.cpp.o"
  "CMakeFiles/interp2_test.dir/interp2_test.cpp.o.d"
  "interp2_test"
  "interp2_test.pdb"
  "interp2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
