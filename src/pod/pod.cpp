#include "pod/pod.h"

#include <algorithm>

#include "common/check.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace softborg {

namespace {
// Fleet-wide pod telemetry: every pod instance feeds the same counters.
struct PodMetrics {
  obs::Counter& runs =
      obs::MetricsRegistry::global().counter("pod.runs_total");
  obs::Counter& failures =
      obs::MetricsRegistry::global().counter("pod.failures_total");
  obs::Counter& fix_interventions =
      obs::MetricsRegistry::global().counter("pod.fix_interventions_total");
  obs::Counter& guided_runs =
      obs::MetricsRegistry::global().counter("pod.guided_runs_total");

  static PodMetrics& get() {
    static PodMetrics m;
    return m;
  }
};
}  // namespace

Pod::Pod(PodId id, const CorpusEntry& entry, UserProfile profile,
         PodConfig config, std::uint64_t seed)
    : id_(id),
      entry_(&entry),
      profile_(std::move(profile)),
      config_(config),
      rng_(seed) {
  SB_CHECK(profile_.input_prefs.empty() ||
           profile_.input_prefs.size() == entry.domains.size());
}

bool Pod::install(const GuardPatch& patch) {
  if (patch.program != program()) return false;
  if (std::count(installed_fix_ids_.begin(), installed_fix_ids_.end(),
                 patch.id.value) != 0) {
    return false;
  }
  installed_fix_ids_.push_back(patch.id.value);
  fixes_.guards.push_back(patch);
  return true;
}

bool Pod::install(const CrashGuardFix& fix) {
  if (fix.program != program()) return false;
  if (std::count(installed_fix_ids_.begin(), installed_fix_ids_.end(),
                 fix.id.value) != 0) {
    return false;
  }
  installed_fix_ids_.push_back(fix.id.value);
  fixes_.crash_guards.push_back(fix);
  return true;
}

bool Pod::install(const LockAvoidanceFix& fix) {
  if (fix.program != program()) return false;
  if (std::count(installed_fix_ids_.begin(), installed_fix_ids_.end(),
                 fix.id.value) != 0) {
    return false;
  }
  installed_fix_ids_.push_back(fix.id.value);
  fixes_.lock_fixes.push_back(fix);
  return true;
}

void Pod::push_guidance(GuidanceDirective directive) {
  if (directive.program != program()) return;
  if (!rng_.next_bool(profile_.guidance_compliance)) return;  // declined
  guidance_.push_back(std::move(directive));
}

std::uint32_t Pod::draws_for_day() {
  // Cheap Poisson-ish draw: rate r gives floor(r) runs plus one more with
  // probability frac(r), jittered by +/-1 occasionally.
  const double rate = profile_.executions_per_day;
  std::uint32_t n = static_cast<std::uint32_t>(rate);
  if (rng_.next_bool(rate - static_cast<double>(n))) n++;
  if (n > 0 && rng_.next_bool(0.1)) n--;
  if (rng_.next_bool(0.1)) n++;
  return n;
}

std::vector<Value> Pod::draw_inputs() {
  std::vector<Value> inputs;
  inputs.reserve(entry_->domains.size());
  for (std::size_t i = 0; i < entry_->domains.size(); ++i) {
    const InputDomain& domain = profile_.input_prefs.empty()
                                    ? entry_->domains[i]
                                    : profile_.input_prefs[i];
    inputs.push_back(rng_.next_in(domain.lo, domain.hi));
  }
  return inputs;
}

PodRun Pod::run_once(std::uint64_t day) {
  SB_SPAN("pod.run");
  // Consume a guidance directive if one is queued.
  std::optional<GuidanceDirective> directive;
  if (!guidance_.empty()) {
    directive = std::move(guidance_.front());
    guidance_.pop_front();
  }

  ExecConfig cfg;
  cfg.inputs = directive && directive->input_seed ? *directive->input_seed
                                                  : draw_inputs();
  cfg.seed = rng_();
  cfg.max_steps = config_.max_steps;
  cfg.granularity = config_.granularity;
  cfg.enable_fusion = config_.enable_fusion;
  cfg.fixes = &fixes_;
  if (directive && directive->schedule) {
    cfg.schedule_plan = &*directive->schedule;
  }
  if (directive && directive->faults) cfg.fault_plan = &*directive->faults;
  cfg.collect_branch_events = config_.sampling_rate > 0;

  ExecResult exec = execute(entry_->program, cfg);

  // Inferred end-user feedback: a hung program is usually force-killed.
  if (exec.trace.outcome == Outcome::kHang &&
      rng_.next_bool(profile_.kill_on_hang)) {
    exec.trace.outcome = Outcome::kUserKilled;
  }

  exec.trace.id = TraceId((id_.value << 24) | next_trace_seq_++);
  exec.trace.pod = id_;
  exec.trace.day = day;
  exec.trace.guided = directive.has_value();

  PodRun run;
  run.fix_intervened = exec.fix_intervened;
  run.deadlock_cycle = std::move(exec.deadlock_cycle);

  // Coordinated sampling: site-level observations instead of the path.
  if (config_.sampling_rate > 0) {
    SampledTrace st;
    st.program = program();
    st.pod = id_;
    st.outcome = exec.trace.outcome;
    for (const auto& ev : exec.branch_events) {
      if (sample_site(ev.site, id_, config_.sampling_rate)) {
        st.observations.push_back({ev.site, ev.taken});
      }
    }
    run.sampled = std::move(st);
  }

  run.trace = anonymize(exec.trace, config_.anonymize);

  stats_.runs++;
  if (run.trace.outcome != Outcome::kOk) stats_.failures++;
  if (exec.fix_intervened) stats_.fix_interventions++;
  if (directive) stats_.guided_runs++;
  if (obs::enabled()) {
    auto& m = PodMetrics::get();
    m.runs.add();
    if (run.trace.outcome != Outcome::kOk) m.failures.add();
    if (exec.fix_intervened) m.fix_interventions.add();
    if (directive) m.guided_runs.add();
  }
  return run;
}

}  // namespace softborg
