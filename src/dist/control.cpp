#include "dist/control.h"

namespace softborg::dist {

Bytes encode_hello(const HelloMsg& m) {
  Bytes out;
  put_varint(out, m.shard_index);
  put_varint(out, m.credit_window);
  put_varint(out, m.resumed ? 1 : 0);
  put_varint(out, m.mono_ns);
  put_varint(out, m.real_ns);
  return out;
}

std::optional<HelloMsg> decode_hello(const Bytes& bytes) {
  std::size_t pos = 0;
  HelloMsg m;
  const auto shard = get_varint(bytes, pos);
  const auto window = get_varint(bytes, pos);
  const auto resumed = get_varint(bytes, pos);
  if (!shard || !window || !resumed) return std::nullopt;
  if (*window > 0xffff || *resumed > 1) return std::nullopt;
  m.shard_index = *shard;
  m.credit_window = static_cast<std::uint32_t>(*window);
  m.resumed = *resumed == 1;
  if (pos == bytes.size()) return m;  // pre-tracing 3-field hello
  const auto mono = get_varint(bytes, pos);
  const auto real = get_varint(bytes, pos);
  if (!mono || !real || pos != bytes.size()) return std::nullopt;
  m.mono_ns = *mono;
  m.real_ns = *real;
  return m;
}

Bytes encode_worker_stats(const WorkerStatsMsg& m) {
  Bytes out;
  put_varint(out, m.shard_index);
  put_varint(out, m.ingested);
  put_varint(out, m.shed);
  put_varint(out, m.queue_max_depth);
  put_varint(out, m.batches);
  put_varint(out, m.snapshots_written);
  const HiveStats& h = m.hive;
  // HiveStats, field by field in declaration order. The frame version gates
  // the whole protocol, so there is no per-message versioning to maintain.
  for (std::uint64_t v :
       {h.traces_ingested, h.duplicates_dropped, h.decode_failures,
        h.replay_failures, h.patched_traces_skipped, h.gated_traces,
        h.paths_merged, h.new_paths, h.bugs_found, h.fixes_approved,
        h.repair_lab_entries, h.proofs_revoked, h.fixed_traces_seen,
        h.fix_recurrences, h.bugs_reopened}) {
    put_varint(out, v);
  }
  return out;
}

std::optional<WorkerStatsMsg> decode_worker_stats(const Bytes& bytes) {
  std::size_t pos = 0;
  WorkerStatsMsg m;
  auto next = [&](std::uint64_t& field) {
    const auto v = get_varint(bytes, pos);
    if (!v) return false;
    field = *v;
    return true;
  };
  HiveStats& h = m.hive;
  for (std::uint64_t* field :
       {&m.shard_index, &m.ingested, &m.shed, &m.queue_max_depth, &m.batches,
        &m.snapshots_written, &h.traces_ingested, &h.duplicates_dropped,
        &h.decode_failures, &h.replay_failures, &h.patched_traces_skipped,
        &h.gated_traces, &h.paths_merged, &h.new_paths, &h.bugs_found,
        &h.fixes_approved, &h.repair_lab_entries, &h.proofs_revoked,
        &h.fixed_traces_seen, &h.fix_recurrences, &h.bugs_reopened}) {
    if (!next(*field)) return std::nullopt;
  }
  if (pos != bytes.size()) return std::nullopt;
  return m;
}

}  // namespace softborg::dist
