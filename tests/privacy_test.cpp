#include <gtest/gtest.h>

#include "common/rng.h"
#include "privacy/anonymize.h"
#include "privacy/entropy.h"

namespace softborg {
namespace {

Trace trace_with_path(std::uint64_t pod, std::initializer_list<bool> bits,
                      Outcome outcome = Outcome::kOk) {
  Trace t;
  t.pod = PodId(pod);
  t.outcome = outcome;
  for (bool b : bits) t.branch_bits.push_back(b);
  t.day = 10;
  t.syscalls = {{0, 3, 0}};
  return t;
}

TEST(Anonymize, StripsPodIdentity) {
  const Trace t = trace_with_path(1234, {true, false});
  const Trace a = anonymize(t, {});
  EXPECT_EQ(a.pod.value, 0u);
  EXPECT_FALSE(has_identifiers(a));
  EXPECT_TRUE(has_identifiers(t));
}

TEST(Anonymize, PodBucketingKeepsCoarseIdentity) {
  AnonymizeConfig cfg;
  cfg.pod_bucket_count = 10;
  const Trace a = anonymize(trace_with_path(1234, {true}), cfg);
  EXPECT_EQ(a.pod.value, 4u);
}

TEST(Anonymize, QuantizesDays) {
  const Trace a = anonymize(trace_with_path(1, {true}), {});
  EXPECT_EQ(a.day, 7u);  // day 10 -> week floor
}

TEST(Anonymize, CoarsensSyscallIndices) {
  const Trace a = anonymize(trace_with_path(1, {true}), {});
  ASSERT_EQ(a.syscalls.size(), 1u);
  EXPECT_EQ(a.syscalls[0].call_index, 0u);
}

TEST(Anonymize, BitSuppressionShrinksVector) {
  AnonymizeConfig cfg;
  cfg.bit_suppression = 3;  // drop every 3rd bit
  Trace t;
  for (int i = 0; i < 9; ++i) t.branch_bits.push_back(i % 2 == 0);
  const Trace a = anonymize(t, cfg);
  EXPECT_EQ(a.branch_bits.size(), 6u);
  // Kept bits preserve order: indices 0,1,3,4,6,7 of 101010101.
  EXPECT_EQ(a.branch_bits.to_string(), "100110");
}

TEST(Anonymize, NoSuppressionKeepsBits) {
  const Trace t = trace_with_path(1, {true, false, true});
  const Trace a = anonymize(t, {});
  EXPECT_EQ(a.branch_bits, t.branch_bits);
}

TEST(KAnonymityGate, HoldsUntilKDistinctPods) {
  KAnonymityGate gate(3);
  EXPECT_TRUE(gate.add(trace_with_path(1, {true, true})).empty());
  EXPECT_TRUE(gate.add(trace_with_path(2, {true, true})).empty());
  EXPECT_EQ(gate.buffered(), 2u);
  const auto released = gate.add(trace_with_path(3, {true, true}));
  EXPECT_EQ(released.size(), 3u);
  EXPECT_EQ(gate.buffered(), 0u);
  EXPECT_EQ(gate.released_paths(), 1u);
}

TEST(KAnonymityGate, SamePodDoesNotCount) {
  KAnonymityGate gate(2);
  EXPECT_TRUE(gate.add(trace_with_path(7, {false})).empty());
  EXPECT_TRUE(gate.add(trace_with_path(7, {false})).empty());
  EXPECT_EQ(gate.buffered(), 2u);  // one pod repeating is not anonymity
  EXPECT_EQ(gate.add(trace_with_path(8, {false})).size(), 3u);
}

TEST(KAnonymityGate, ReleasedPathsPassThrough) {
  KAnonymityGate gate(2);
  gate.add(trace_with_path(1, {true}));
  gate.add(trace_with_path(2, {true}));
  const auto later = gate.add(trace_with_path(3, {true}));
  EXPECT_EQ(later.size(), 1u);
}

TEST(KAnonymityGate, DistinctPathsBufferedSeparately) {
  KAnonymityGate gate(2);
  gate.add(trace_with_path(1, {true}));
  gate.add(trace_with_path(2, {false}));
  EXPECT_EQ(gate.buffered(), 2u);
  EXPECT_EQ(gate.released_paths(), 0u);
}

TEST(KAnonymityGate, KOneReleasesImmediately) {
  KAnonymityGate gate(1);
  EXPECT_EQ(gate.add(trace_with_path(1, {true, false})).size(), 1u);
}

TEST(Entropy, EmptyPopulation) {
  const auto m = measure_population({});
  EXPECT_EQ(m.traces, 0u);
  EXPECT_DOUBLE_EQ(m.path_entropy_bits, 0.0);
}

TEST(Entropy, UniformPathsMaximizeEntropy) {
  std::vector<Trace> traces;
  for (int i = 0; i < 4; ++i) {
    traces.push_back(trace_with_path(static_cast<std::uint64_t>(i),
                                     {(i & 1) != 0, (i & 2) != 0}));
  }
  const auto m = measure_population(traces);
  EXPECT_EQ(m.distinct_paths, 4u);
  EXPECT_NEAR(m.path_entropy_bits, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.unique_fraction, 1.0);
}

TEST(Entropy, IdenticalPathsHaveZeroEntropy) {
  std::vector<Trace> traces;
  for (int i = 0; i < 10; ++i) {
    traces.push_back(trace_with_path(static_cast<std::uint64_t>(i), {true}));
  }
  const auto m = measure_population(traces);
  EXPECT_EQ(m.distinct_paths, 1u);
  EXPECT_NEAR(m.path_entropy_bits, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.unique_fraction, 0.0);
}

TEST(Entropy, SuppressionReducesInformationContent) {
  // The E8 mechanism in miniature: suppress bits, entropy falls, unique
  // fraction falls (traces collapse into families).
  Rng rng(3);
  std::vector<Trace> raw;
  for (int i = 0; i < 200; ++i) {
    Trace t;
    t.pod = PodId(static_cast<std::uint64_t>(i));
    for (int b = 0; b < 12; ++b) t.branch_bits.push_back(rng.next_bool());
    raw.push_back(std::move(t));
  }
  AnonymizeConfig cfg;
  cfg.bit_suppression = 2;  // drop half the bits
  std::vector<Trace> scrubbed;
  for (const auto& t : raw) scrubbed.push_back(anonymize(t, cfg));

  const auto before = measure_population(raw);
  const auto after = measure_population(scrubbed);
  EXPECT_LT(after.mean_bits_per_trace, before.mean_bits_per_trace);
  EXPECT_LE(after.path_entropy_bits, before.path_entropy_bits);
  EXPECT_LE(after.unique_fraction, before.unique_fraction);
  EXPECT_LT(after.distinct_paths, before.distinct_paths);
}

}  // namespace
}  // namespace softborg
