#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "sym/cnf.h"
#include "sym/portfolio.h"
#include "sym/sat.h"

namespace softborg {
namespace {

constexpr std::uint64_t kBigBudget = 50'000'000;

Cnf tiny_sat() {
  // (x1 | x2) & (!x1 | x2) & (x1 | !x2): model x1=1,x2=1.
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.clauses = {{1, 2}, {-1, 2}, {1, -2}};
  return cnf;
}

Cnf tiny_unsat() {
  Cnf cnf;
  cnf.num_vars = 1;
  cnf.clauses = {{1}, {-1}};
  return cnf;
}

// ----------------------------------------------------------------- cnf -----

TEST(Cnf, GeneratorsAreWellFormed) {
  EXPECT_TRUE(random_ksat(20, 85, 3, 1).well_formed());
  EXPECT_TRUE(pigeonhole(4).well_formed());
  EXPECT_TRUE(chain(10).well_formed());
}

TEST(Cnf, RandomKsatDeterministic) {
  const Cnf a = random_ksat(20, 85, 3, 7);
  const Cnf b = random_ksat(20, 85, 3, 7);
  EXPECT_EQ(a.clauses, b.clauses);
}

TEST(Cnf, RandomKsatNoDuplicateVarsInClause) {
  const Cnf cnf = random_ksat(10, 200, 3, 3);
  for (const auto& clause : cnf.clauses) {
    ASSERT_EQ(clause.size(), 3u);
    EXPECT_NE(std::abs(clause[0]), std::abs(clause[1]));
    EXPECT_NE(std::abs(clause[0]), std::abs(clause[2]));
    EXPECT_NE(std::abs(clause[1]), std::abs(clause[2]));
  }
}

TEST(Cnf, ChainHasUniqueAllTrueSolution) {
  const Cnf cnf = chain(20);
  std::vector<bool> all_true(20, true);
  EXPECT_TRUE(cnf_satisfied(cnf, all_true));
  std::vector<bool> flip = all_true;
  flip[10] = false;
  EXPECT_FALSE(cnf_satisfied(cnf, flip));
}

// ------------------------------------------------------------- solvers -----

class EverySolver : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<SatSolver> make() const {
    switch (GetParam()) {
      case 0:
        return make_dpll_solver(DpllHeuristic::kActivity);
      case 1:
        return make_dpll_solver(DpllHeuristic::kNegativeStatic);
      default:
        return make_walksat_solver(123);
    }
  }
  bool complete() const { return GetParam() != 2; }  // walksat can't refute
};

TEST_P(EverySolver, SolvesTinySat) {
  auto solver = make();
  const auto out = solver->solve(tiny_sat(), kBigBudget);
  ASSERT_EQ(out.status, SatStatus::kSat);
  EXPECT_TRUE(cnf_satisfied(tiny_sat(), out.model));
}

TEST_P(EverySolver, HandlesTinyUnsat) {
  auto solver = make();
  const auto out = solver->solve(tiny_unsat(), kBigBudget);
  if (complete()) {
    EXPECT_EQ(out.status, SatStatus::kUnsat);
  } else {
    EXPECT_EQ(out.status, SatStatus::kUnknown);
  }
}

TEST_P(EverySolver, SolvesChain) {
  auto solver = make();
  const Cnf cnf = chain(40);
  const auto out = solver->solve(cnf, kBigBudget);
  if (complete()) {
    // Unit propagation solves chains instantly.
    ASSERT_EQ(out.status, SatStatus::kSat);
    EXPECT_TRUE(cnf_satisfied(cnf, out.model));
  } else if (out.status == SatStatus::kSat) {
    // Local search may or may not find the unique model — that asymmetry is
    // exactly what the portfolio exploits.
    EXPECT_TRUE(cnf_satisfied(cnf, out.model));
  }
}

TEST_P(EverySolver, RandomSatInstancesModelVerified) {
  auto solver = make();
  // Under-constrained random 3-SAT (ratio 3.0): almost surely satisfiable.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Cnf cnf = random_ksat(25, 75, 3, seed);
    const auto out = solver->solve(cnf, kBigBudget);
    if (out.status == SatStatus::kSat) {
      EXPECT_TRUE(cnf_satisfied(cnf, out.model)) << "seed " << seed;
    } else if (complete()) {
      EXPECT_EQ(out.status, SatStatus::kUnsat);
    }
  }
}

TEST_P(EverySolver, BudgetExhaustionIsUnknown) {
  auto solver = make();
  const Cnf cnf = pigeonhole(7);
  const auto out = solver->solve(cnf, /*budget=*/50);
  EXPECT_EQ(out.status, SatStatus::kUnknown);
  EXPECT_LE(out.ticks, 50u + 2048u);  // small overshoot tolerated
}

TEST_P(EverySolver, TicksAreReported) {
  auto solver = make();
  const auto out = solver->solve(tiny_sat(), kBigBudget);
  EXPECT_GT(out.ticks, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EverySolver, ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           switch (info.param) {
                             case 0: return "DpllActivity";
                             case 1: return "DpllNegStatic";
                             default: return "WalkSat";
                           }
                         });

TEST(Dpll, PigeonholeUnsat) {
  auto solver = make_dpll_solver(DpllHeuristic::kActivity);
  for (int holes = 2; holes <= 4; ++holes) {
    const auto out = solver->solve(pigeonhole(holes), kBigBudget);
    EXPECT_EQ(out.status, SatStatus::kUnsat) << "holes " << holes;
  }
}

TEST(Dpll, SolversAgreeOnRandomInstances) {
  auto a = make_dpll_solver(DpllHeuristic::kActivity);
  auto b = make_dpll_solver(DpllHeuristic::kNegativeStatic);
  int decided_both = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const Cnf cnf = random_ksat(18, 76, 3, seed);  // near phase transition
    const auto ra = a->solve(cnf, kBigBudget);
    const auto rb = b->solve(cnf, kBigBudget);
    if (ra.status != SatStatus::kUnknown && rb.status != SatStatus::kUnknown) {
      EXPECT_EQ(ra.status, rb.status) << "seed " << seed;
      decided_both++;
    }
  }
  EXPECT_GT(decided_both, 20);
}

// ----------------------------------------------------------- portfolio -----

TEST(Portfolio, SimulatedDecidesAndVerifies) {
  PortfolioSolver portfolio(make_standard_portfolio());
  const Cnf cnf = random_ksat(25, 100, 3, 5);
  const auto out = portfolio.solve_simulated(cnf, kBigBudget);
  ASSERT_NE(out.status, SatStatus::kUnknown);
  if (out.status == SatStatus::kSat) {
    EXPECT_TRUE(cnf_satisfied(cnf, out.model));
  }
  EXPECT_GE(out.winner, 0);
  EXPECT_EQ(out.per_solver_ticks.size(), 3u);
}

TEST(Portfolio, WallTicksIsMinOfDeciders) {
  PortfolioSolver portfolio(make_standard_portfolio());
  const Cnf cnf = random_ksat(20, 84, 3, 11);
  const auto out = portfolio.solve_simulated(cnf, kBigBudget);
  ASSERT_GE(out.winner, 0);
  EXPECT_EQ(out.wall_ticks,
            out.per_solver_ticks[static_cast<std::size_t>(out.winner)]);
  for (auto t : out.per_solver_ticks) {
    // Any solver that decided must have been at least as slow.
    if (t < out.wall_ticks) {
      // a faster tick count is only possible for a non-decider
      // (kUnknown), which never happens below the winner's ticks unless it
      // hit the budget — with kBigBudget that cannot be the case here.
      ADD_FAILURE() << "solver finished earlier than the winner";
    }
  }
}

TEST(Portfolio, CostAtMostNTimesWall) {
  PortfolioSolver portfolio(make_standard_portfolio());
  const Cnf cnf = random_ksat(22, 93, 3, 13);
  const auto out = portfolio.solve_simulated(cnf, kBigBudget);
  EXPECT_LE(out.cost_ticks, 3 * out.wall_ticks);
}

TEST(Portfolio, UnsatHandledByCompleteMembers) {
  PortfolioSolver portfolio(make_standard_portfolio());
  const auto out = portfolio.solve_simulated(pigeonhole(4), kBigBudget);
  EXPECT_EQ(out.status, SatStatus::kUnsat);
}

TEST(Portfolio, ThreadedMatchesSimulatedStatus) {
  PortfolioSolver portfolio(make_standard_portfolio());
  ThreadPool pool(3);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Cnf cnf = random_ksat(20, 84, 3, seed);
    const auto sim = portfolio.solve_simulated(cnf, kBigBudget);
    const auto thr = portfolio.solve_threaded(cnf, kBigBudget, pool);
    ASSERT_NE(sim.status, SatStatus::kUnknown);
    // The threaded run may be cancelled mid-flight, but when it decides it
    // must agree.
    if (thr.status != SatStatus::kUnknown) {
      EXPECT_EQ(thr.status, sim.status) << "seed " << seed;
    }
  }
}

TEST(Portfolio, BeatsWorstMemberOnMixedWorkload) {
  // The portfolio's wall time should be far below the worst single solver
  // summed over a mixed workload — the paper's §4 motivation.
  PortfolioSolver portfolio(make_standard_portfolio());
  std::uint64_t portfolio_wall = 0;
  std::vector<std::uint64_t> solo(3, 0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Cnf cnf = random_ksat(22, 94, 3, seed);
    const auto out = portfolio.solve_simulated(cnf, kBigBudget);
    portfolio_wall += out.wall_ticks;
    for (int i = 0; i < 3; ++i) {
      solo[static_cast<std::size_t>(i)] +=
          out.per_solver_ticks[static_cast<std::size_t>(i)];
    }
  }
  const std::uint64_t worst = std::max({solo[0], solo[1], solo[2]});
  EXPECT_LT(portfolio_wall, worst);
}

}  // namespace
}  // namespace softborg
