// Durable corpus store (src/store) and the component state codecs it
// carries (ISSUE 7): container round trips, crash-safety commit points,
// strict validation (every corruption degrades to a clean load failure,
// never a crash or a partial load), version-skew refusal, and exact
// serialization of the accumulated hive state — including the SolverCache's
// probe-layout-exact table dump.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/fsio.h"
#include "common/state_wire.h"
#include "core/softborg.h"
#include "privacy/anonymize.h"
#include "store/store.h"
#include "sym/solver_cache.h"
#include "trace/sampling.h"

namespace softborg {
namespace {

namespace fs = std::filesystem;

// A unique scratch directory per test, removed on teardown.
class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("sb_store_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

Bytes bytes_of(const char* s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s),
               reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s));
}

// --- fsio -------------------------------------------------------------------

TEST_F(StoreTest, AtomicWriteRoundTrip) {
  fs::create_directories(dir_);
  const std::string path = dir_ + "/file";
  const Bytes data = bytes_of("hello, durable world");
  ASSERT_TRUE(atomic_write_file(path, data.data(), data.size()));
  Bytes back;
  ASSERT_TRUE(read_file(path, back));
  EXPECT_EQ(back, data);

  // Overwrite is atomic too: the new contents fully replace the old.
  const Bytes data2 = bytes_of("v2");
  ASSERT_TRUE(atomic_write_file(path, data2.data(), data2.size()));
  ASSERT_TRUE(read_file(path, back));
  EXPECT_EQ(back, data2);
}

TEST_F(StoreTest, ReadFileMissingAndOversized) {
  fs::create_directories(dir_);
  Bytes out;
  EXPECT_FALSE(read_file(dir_ + "/nope", out));
  const std::string path = dir_ + "/big";
  const Bytes data = bytes_of("0123456789");
  ASSERT_TRUE(atomic_write_file(path, data.data(), data.size()));
  EXPECT_FALSE(read_file(path, out, 5));  // over max_size
  EXPECT_TRUE(read_file(path, out, 10));
}

TEST_F(StoreTest, AtomicWriteFailureKeepsOldFile) {
  fs::create_directories(dir_);
  const std::string path = dir_ + "/file";
  const Bytes data = bytes_of("original");
  ASSERT_TRUE(atomic_write_file(path, data.data(), data.size()));
  // Writing into a missing directory fails without touching the original.
  std::string err;
  EXPECT_FALSE(
      atomic_write_file(dir_ + "/no/such/dir/file", data.data(), data.size(),
                        &err));
  EXPECT_FALSE(err.empty());
  Bytes back;
  ASSERT_TRUE(read_file(path, back));
  EXPECT_EQ(back, data);
}

// --- snapshot container -----------------------------------------------------

std::vector<store::Part> sample_parts() {
  std::vector<store::Part> parts;
  parts.push_back({"alpha", bytes_of("payload-a")});
  parts.push_back({"beta", {}});  // empty payloads are legal
  Bytes big;
  for (int i = 0; i < 10'000; ++i) big.push_back(std::uint8_t(i * 31));
  parts.push_back({"gamma", std::move(big)});
  return parts;
}

TEST_F(StoreTest, ContainerRoundTrip) {
  const auto parts = sample_parts();
  std::string err;
  ASSERT_TRUE(store::write_snapshot(dir_, 7, parts, &err)) << err;
  const auto snap = store::read_snapshot(dir_, &err);
  ASSERT_TRUE(snap.has_value()) << err;
  EXPECT_EQ(snap->seq, 7u);
  ASSERT_EQ(snap->parts.size(), parts.size());
  for (const auto& p : parts) {
    ASSERT_TRUE(snap->parts.count(p.name)) << p.name;
    EXPECT_EQ(snap->parts.at(p.name), p.payload) << p.name;
  }
}

TEST_F(StoreTest, ReadEmptyOrMissingDirectory) {
  std::string err;
  EXPECT_FALSE(store::read_snapshot(dir_, &err).has_value());
  fs::create_directories(dir_);
  EXPECT_FALSE(store::read_snapshot(dir_, &err).has_value());
}

TEST_F(StoreTest, NewerGenerationWinsAndOldOnesArePruned) {
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    std::vector<store::Part> parts;
    Bytes payload;
    put_varint(payload, seq);
    parts.push_back({"state", std::move(payload)});
    ASSERT_TRUE(store::write_snapshot(dir_, seq, parts, nullptr));
  }
  const auto snap = store::read_snapshot(dir_);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->seq, 5u);
  // Prune keeps the newest two generations only.
  std::size_t gen_dirs = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (e.is_directory()) gen_dirs++;
  }
  EXPECT_EQ(gen_dirs, 2u);
}

TEST_F(StoreTest, MissingPartFileRejects) {
  ASSERT_TRUE(store::write_snapshot(dir_, 1, sample_parts(), nullptr));
  fs::remove(dir_ + "/gen-1/alpha");
  std::string err;
  EXPECT_FALSE(store::read_snapshot(dir_, &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST_F(StoreTest, StrayFileInGenerationIsIgnored) {
  ASSERT_TRUE(store::write_snapshot(dir_, 1, sample_parts(), nullptr));
  const Bytes junk = bytes_of("not a part");
  ASSERT_TRUE(
      atomic_write_file(dir_ + "/gen-1/stray", junk.data(), junk.size()));
  EXPECT_TRUE(store::read_snapshot(dir_).has_value());
}

TEST_F(StoreTest, FutureFormatVersionRefused) {
  ASSERT_TRUE(store::write_snapshot(dir_, 3, sample_parts(), nullptr));
  // Hand-craft a well-formed manifest that declares format version
  // kFormatVersion + 1 (empty part list, correct self-checksum): the reader
  // must refuse on version skew, not on framing.
  Bytes m = bytes_of("SBMF");
  put_varint(m, store::kFormatVersion + 1);
  put_varint(m, 3);  // seq
  put_varint(m, 0);  // entries
  const std::uint64_t sum = fnv1a64(m.data(), m.size());
  for (int i = 0; i < 8; ++i) m.push_back(std::uint8_t(sum >> (8 * i)));
  ASSERT_TRUE(atomic_write_file(dir_ + "/gen-3/MANIFEST", m.data(), m.size()));
  std::string err;
  EXPECT_FALSE(store::read_snapshot(dir_, &err).has_value());
  EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST_F(StoreTest, DanglingCurrentRejects) {
  ASSERT_TRUE(store::write_snapshot(dir_, 1, sample_parts(), nullptr));
  const Bytes current = bytes_of("gen-99\n");
  ASSERT_TRUE(
      atomic_write_file(dir_ + "/CURRENT", current.data(), current.size()));
  EXPECT_FALSE(store::read_snapshot(dir_).has_value());
}

// Container-level fuzz: flip single bits and truncate every file of a valid
// snapshot. Every mutation must either be caught (nullopt) or — impossible
// for a checksum-guarded single-bit flip, but allowed by the contract —
// yield the original data. Never a crash, never different data.
TEST_F(StoreTest, BitFlipAndTruncationFuzz) {
  const auto parts = sample_parts();
  ASSERT_TRUE(store::write_snapshot(dir_, 2, parts, nullptr));
  const auto good = store::read_snapshot(dir_);
  ASSERT_TRUE(good.has_value());

  std::vector<std::string> files = {dir_ + "/CURRENT"};
  for (const auto& e : fs::directory_iterator(dir_ + "/gen-2")) {
    files.push_back(e.path().string());
  }
  ASSERT_EQ(files.size(), parts.size() + 2);  // CURRENT + parts + MANIFEST

  for (const std::string& path : files) {
    Bytes original;
    ASSERT_TRUE(read_file(path, original));
    // Single-bit flips at a byte stride (every byte for small files).
    const std::size_t stride = std::max<std::size_t>(original.size() / 64, 1);
    for (std::size_t pos = 0; pos < original.size(); pos += stride) {
      Bytes mutated = original;
      mutated[pos] ^= 0x10;
      ASSERT_TRUE(atomic_write_file(path, mutated.data(), mutated.size()));
      const auto snap = store::read_snapshot(dir_);
      if (snap.has_value()) {
        EXPECT_EQ(snap->parts, good->parts) << path << " @" << pos;
      }
    }
    // Truncations.
    for (std::size_t len : {std::size_t(0), original.size() / 2,
                            original.size() - 1}) {
      if (len >= original.size()) continue;
      Bytes mutated(original.begin(),
                    original.begin() + static_cast<std::ptrdiff_t>(len));
      ASSERT_TRUE(atomic_write_file(path, mutated.data(), mutated.size()));
      const auto snap = store::read_snapshot(dir_);
      if (snap.has_value()) {
        EXPECT_EQ(snap->parts, good->parts) << path << " truncated@" << len;
      }
    }
    ASSERT_TRUE(atomic_write_file(path, original.data(), original.size()));
  }
  EXPECT_TRUE(store::read_snapshot(dir_).has_value());
}

// A crash before the manifest leaves the previous generation untouched and
// loadable; the half-written generation is invisible to readers.
TEST_F(StoreTest, TornGenerationFallsBackToPrevious) {
  std::vector<store::Part> v1;
  v1.push_back({"state", bytes_of("one")});
  ASSERT_TRUE(store::write_snapshot(dir_, 1, v1, nullptr));

  // Simulate a crash between part writes and the manifest: a gen-2 dir with
  // parts but no MANIFEST.
  fs::create_directories(dir_ + "/gen-2");
  const Bytes part = bytes_of("torn");
  ASSERT_TRUE(
      atomic_write_file(dir_ + "/gen-2/state", part.data(), part.size()));

  const auto snap = store::read_snapshot(dir_);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->seq, 1u);
  EXPECT_EQ(snap->parts.at("state"), bytes_of("one"));

  // And the next successful save cleans the orphan up.
  std::vector<store::Part> v3;
  v3.push_back({"state", bytes_of("three")});
  ASSERT_TRUE(store::write_snapshot(dir_, 3, v3, nullptr));
  EXPECT_EQ(store::read_snapshot(dir_)->seq, 3u);
}

// --- component codecs -------------------------------------------------------

TEST(StateCodec, SiteStatsRoundTrip) {
  SiteStats stats;
  SampledTrace t;
  t.program = ProgramId(1);
  t.outcome = Outcome::kCrash;
  t.observations = {{3, true}, {9, false}, {3, false}};
  stats.add(t);
  t.outcome = Outcome::kOk;
  t.observations = {{3, true}, {11, true}};
  stats.add(t);

  Bytes wire;
  stats.save_state(wire);
  SiteStats back;
  StateReader r(wire);
  ASSERT_TRUE(back.load_state(r));
  ASSERT_TRUE(r.done());
  EXPECT_EQ(back, stats);
}

TEST(StateCodec, KAnonymityGateRoundTrip) {
  KAnonymityGate gate(3);
  auto trace_from = [](std::uint64_t pod, bool path_b) {
    Trace t;
    t.program = ProgramId(1);
    t.pod = PodId(pod);
    for (int i = 0; i < 16; ++i) t.branch_bits.push_back(path_b);
    return t;
  };
  EXPECT_TRUE(gate.add(trace_from(1, false)).empty());
  EXPECT_TRUE(gate.add(trace_from(2, false)).empty());
  EXPECT_TRUE(gate.add(trace_from(1, true)).empty());
  ASSERT_EQ(gate.buffered(), 3u);

  Bytes wire;
  gate.save_state(wire);
  KAnonymityGate back(3);
  {
    StateReader r(wire);
    ASSERT_TRUE(back.load_state(r));
    ASSERT_TRUE(r.done());
  }
  EXPECT_EQ(back.buffered(), gate.buffered());
  EXPECT_EQ(back.released_paths(), gate.released_paths());
  // The restored gate releases exactly when the original would.
  EXPECT_EQ(back.add(trace_from(3, false)).size(),
            gate.add(trace_from(3, false)).size());

  // A gate built with a different k refuses the snapshot.
  KAnonymityGate wrong_k(2);
  StateReader r(wire);
  EXPECT_FALSE(wrong_k.load_state(r));
}

Literal lt_lit(std::uint32_t slot, Value bound) {
  return {make_bin(BinOp::kLt, make_input(slot), make_const(bound)), true};
}

SolverCache exercised_cache() {
  SolverCache cache;
  for (Value bound = 1; bound <= 40; ++bound) {
    cache.solve({lt_lit(0, bound)}, {{0, 20}});
    cache.solve({lt_lit(static_cast<std::uint32_t>(bound % 3), bound),
                 lt_lit(0, bound + 1)},
                {{0, 9}, {0, 9}, {0, 9}});
  }
  return cache;
}

// Satellite 3: the SolverCache round-trips its generation structure and
// counters exactly — slot-for-slot, including stats and the resets counter.
TEST(StateCodec, SolverCacheRoundTripIsExact) {
  const SolverCache cache = exercised_cache();
  Bytes wire;
  cache.save_state(wire);

  SolverCache back;
  StateReader r(wire);
  ASSERT_TRUE(back.load_state(r));
  ASSERT_TRUE(r.done());
  ASSERT_TRUE(back.state_equals(cache));

  // Behavioral equivalence: a query that hits the original hits the copy
  // with identical stats movement.
  SolverCache a = exercised_cache(), b;
  Bytes wire2;
  a.save_state(wire2);
  StateReader r2(wire2);
  ASSERT_TRUE(b.load_state(r2));
  CacheLookup la = CacheLookup::kMiss, lb = CacheLookup::kMiss;
  const auto ra = a.solve({lt_lit(0, 5)}, {{0, 20}}, {}, {}, &la);
  const auto rb = b.solve({lt_lit(0, 5)}, {{0, 20}}, {}, {}, &lb);
  EXPECT_EQ(la, lb);
  EXPECT_EQ(ra.status, rb.status);
  EXPECT_EQ(ra.model, rb.model);
  EXPECT_TRUE(a.state_equals(b));
}

TEST(StateCodec, SolverCacheGenerationResetSurvives) {
  // Force at least one generational reset, then round-trip: the resets
  // counter and the post-reset table must restore exactly.
  SolverCacheConfig config;
  config.max_entries = 8;
  SolverCache cache(config);
  for (Value bound = 1; bound <= 30; ++bound) {
    cache.solve({lt_lit(0, bound)}, {{0, 100}});
  }
  ASSERT_GT(cache.stats().resets, 0u);

  Bytes wire;
  cache.save_state(wire);
  SolverCache back(config);
  StateReader r(wire);
  ASSERT_TRUE(back.load_state(r));
  ASSERT_TRUE(r.done());
  EXPECT_TRUE(back.state_equals(cache));
  EXPECT_EQ(back.stats().resets, cache.stats().resets);
}

TEST(StateCodec, SolverCacheRejectsConfigMismatch) {
  const SolverCache cache = exercised_cache();
  Bytes wire;
  cache.save_state(wire);
  SolverCacheConfig other;
  other.max_entries = 16;
  SolverCache back(other);
  StateReader r(wire);
  EXPECT_FALSE(back.load_state(r));
}

// Payload-level fuzz for the hardened component decoders (satellite 2):
// every single-byte mutation of a valid SolverCache payload must either be
// rejected or decode to *some* valid cache — never crash, never UB.
TEST(StateCodec, SolverCachePayloadFuzz) {
  const SolverCache cache = exercised_cache();
  Bytes wire;
  cache.save_state(wire);
  const std::size_t stride = std::max<std::size_t>(wire.size() / 512, 1);
  for (std::size_t pos = 0; pos < wire.size(); pos += stride) {
    for (std::uint8_t delta : {0x01, 0x80, 0xff}) {
      Bytes mutated = wire;
      mutated[pos] ^= delta;
      SolverCache victim;
      StateReader r(mutated);
      (void)victim.load_state(r);  // must not crash; result is don't-care
    }
    // Truncation at this position.
    Bytes cut(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(pos));
    SolverCache victim;
    StateReader r(cut);
    EXPECT_FALSE(victim.load_state(r) && r.done());
  }
}

// --- whole-world parts through the container -------------------------------

WorldConfig fuzz_world_config() {
  WorldConfig config;
  config.pods_per_program = 10;
  config.days = 4;
  config.seed = 11;
  config.guidance_per_program_per_day = 2;
  config.proof_programs_per_day = 1;
  config.net.drop_prob = 0.05;
  return config;
}

// Mutate each part of a real World snapshot (re-written through the
// container so checksums stay valid) and resume: the loader must reject or
// succeed cleanly, never crash. This drives every component load_state
// (pods, net, hive ledgers, trees, solver cache) with hostile bytes.
TEST_F(StoreTest, WorldSnapshotPayloadFuzz) {
  World world(standard_corpus(), fuzz_world_config());
  for (int i = 0; i < 3; ++i) world.step_day();
  std::string err;
  ASSERT_TRUE(world.save_snapshot(dir_, &err)) << err;
  const auto good = store::read_snapshot(dir_, &err);
  ASSERT_TRUE(good.has_value()) << err;

  const std::string fuzz_dir = dir_ + "_mutated";
  std::uint64_t rejected = 0;
  std::uint64_t meta_accepted = 0;
  for (const auto& [name, payload] : good->parts) {
    const std::size_t stride = std::max<std::size_t>(payload.size() / 48, 1);
    for (std::size_t pos = 0; pos < payload.size(); pos += stride) {
      std::vector<store::Part> parts;
      for (const auto& [n, p] : good->parts) parts.push_back({n, p});
      for (auto& part : parts) {
        if (part.name == name) part.payload[pos] ^= 0x08;
      }
      fs::remove_all(fuzz_dir);
      ASSERT_TRUE(store::write_snapshot(fuzz_dir, good->seq, parts, nullptr));
      World victim(standard_corpus(), fuzz_world_config());
      // The hard guarantee is "reject or load a valid state, never crash":
      // flips landing in free-value fields (stats counters, rng words,
      // metric samples) decode to a different but well-formed state and are
      // legitimately accepted; flips violating any structural invariant
      // must be caught.
      if (victim.resume_from_snapshot(fuzz_dir)) {
        if (name == "meta") meta_accepted++;
      } else {
        rejected++;
      }
    }
  }
  fs::remove_all(fuzz_dir);
  // Validation must actually fire across the corpus of mutations...
  EXPECT_GT(rejected, 50u);
  // ...and the meta part (fingerprint + day, both cross-checked) must
  // reject every flip.
  EXPECT_EQ(meta_accepted, 0u);
}

}  // namespace
}  // namespace softborg
