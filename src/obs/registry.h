// Fleet observability: a process-wide registry of named counters, gauges,
// and histograms — the one place every layer of the pipeline reports into
// and every exporter reads from (DESIGN.md, "Observability").
//
// Design rules:
//
//  * Counters are per-thread-sharded atomics: the shard-parallel pump and
//    the proof pool record without contention (each thread owns a cache
//    line; value() sums the stripes). Because a counter's value is the sum
//    of a multiset of increments — and the differential suites pin that the
//    work performed is identical for every worker count — counter snapshots
//    are byte-identical across `pump_threads` and proof worker counts.
//    Count-type metrics may therefore be asserted in tests; timing metrics
//    (histograms fed by SB_SPAN) are exported but never asserted.
//
//  * Snapshots are deterministic: metrics are kept name-sorted, and
//    counters_text() renders counters alone as stable "name value" lines —
//    the byte-identity surface the sharded-pump differential suite compares.
//
//  * Delta reads: delta_snapshot() returns counter values since the
//    previous delta_snapshot() (gauges and histograms report their current
//    state). World::step_day uses this for the per-day metrics series.
//
//  * Handles are stable: counter()/gauge()/histogram() return references
//    that live as long as the registry. reset() zeroes values in place, so
//    cached handles (including SB_SPAN call sites) survive it.
//
// Naming convention: dot-separated lowercase paths, `<subsystem>.<noun>`,
// counters suffixed `_total`, span histograms suffixed `.us` (microseconds).
// Exporters map these to Prometheus names (softborg_ prefix, dots to
// underscores).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"

namespace softborg::obs {

// Monotonic event count, striped across cache-line-sized cells so
// concurrent writers (pump workers, proof workers) never share a line.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[thread_stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 16;
  static constexpr std::size_t kNoStripe = ~std::size_t{0};
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  // Each thread is assigned one stripe round-robin on first use. The TLS
  // slot is constant-initialized, so the fast path is one plain TLS load
  // with no init guard; the one-time assignment is the out-of-line path.
  static std::size_t thread_stripe() {
    const std::size_t s = tls_stripe_;
    return s != kNoStripe ? s : assign_stripe();
  }
  static std::size_t assign_stripe();
  static thread_local std::size_t tls_stripe_;

  std::array<Cell, kStripes> cells_{};
};

// Last-write-wins instantaneous value (queue depths, sizes). Writers are
// expected to be single-threaded per gauge (SimNet, the World loop).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// A mutex-guarded log2-bucketed histogram (common/metrics.h). Spans record
// at stage granularity — a handful of records per pump round — so a plain
// mutex is contention-free in practice; determinism is not required here
// (timing metrics are exported, never asserted).
class HistogramMetric {
 public:
  void record(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.add(value);
  }
  Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.reset();
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

// Point-in-time view of a registry, name-sorted within each kind.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
    bool operator==(const CounterValue&) const = default;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
    bool operator==(const GaugeValue&) const = default;
  };
  struct HistogramValue {
    std::string name;
    Histogram hist;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  // Stable "name value\n" rendering of the counters alone — the surface
  // differential tests compare byte-for-byte across worker counts.
  std::string counters_text() const;

  // Value of one counter by exact name (binary search over the name-sorted
  // vector); nullopt when the counter is absent from this snapshot.
  std::optional<std::uint64_t> counter_value(std::string_view name) const;
};

class MetricsRegistry {
 public:
  // The process-wide registry every instrumentation site reports into.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or registers a metric. Returned references stay valid for the
  // registry's lifetime; call sites cache them (registration takes a lock,
  // recording does not).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  HistogramMetric& histogram(std::string_view name);

  // Cumulative snapshot, deterministically ordered.
  MetricsSnapshot snapshot() const;

  // Counters since the previous delta_snapshot() (the first call baselines
  // against zero); gauges and histograms report their current state. The
  // baseline advances on every call.
  MetricsSnapshot delta_snapshot();

  // Convenience: advance the delta baseline without building a snapshot.
  void rebaseline() { (void)delta_snapshot(); }

  // Zeroes every metric in place (handles stay valid) and clears the delta
  // baseline. Test isolation only — production readers use deltas.
  void reset();

  std::size_t num_metrics() const;

 private:
  mutable std::mutex mu_;
  // Name-sorted maps double as the deterministic snapshot order.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_;
  std::map<std::string, std::uint64_t, std::less<>> counter_baseline_;
};

// Global collection switch (default on). Instrumentation sites guard their
// counter/gauge writes with obs::enabled() so the cost of the telemetry
// layer can be measured (bench_e6) and eliminated when unwanted; SB_SPAN
// has its own, separate sampling switch (span.h), default off.
namespace detail {
extern std::atomic<bool> g_enabled;
}
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

}  // namespace softborg::obs
