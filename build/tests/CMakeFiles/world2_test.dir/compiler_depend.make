# Empty compiler generated dependencies file for world2_test.
# This may be replaced when dependencies are built.
