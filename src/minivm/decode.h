// Predecode: compile a Program (plus the pod's installed FixSet) into a
// dense decoded stream the dispatch core executes directly.
//
// The interpreter's hot loop used to pay, per instruction: a bounds-checked
// Program::at, a nested switch for ALU ops, and an O(#guards) linear scan
// for crash-guard fixes. Predecode moves all of that to program-load time:
// each pc gets a 64-byte DecodedInstr holding the resolved handler token,
// the pre-unpacked operands, and the pre-resolved fix hooks (crash guard,
// branch GuardPatch candidates, lock-avoidance candidates) for that pc.
//
// On top of the 1:1 decoded stream a peephole pass fuses hot fallthrough
// opcode pairs into superinstructions (const+ALU, cmp+branch, mov+storeg).
// A fused slot overlays the *first* pc of the pair; the second pc keeps its
// own plain decode, so branches into the middle of a pair keep working and
// pc values stay original-program pcs throughout. Fused execution debits
// step budgets once per original instruction (interp.cpp), so traces are
// byte-identical with fusion on or off.
//
// Decoded programs are cached per (Program, FixSet, fuse) content hash so
// repeated replays of the same program/fix configuration — the fleet's
// common case — skip decode entirely.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "minivm/fixes.h"
#include "minivm/program.h"

namespace softborg {

// Handler tokens: one per Op (same order and values — predecode relies on
// the 1:1 mapping), then one per superinstruction.
enum class Tok : std::uint8_t {
  kConst,
  kMov,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kCmpLt,
  kCmpLe,
  kCmpEq,
  kCmpNe,
  kBranchIf,
  kJump,
  kInput,
  kSyscall,
  kLoadG,
  kStoreG,
  kLock,
  kUnlock,
  kAssert,
  kAbort,
  kOutput,
  kYield,
  kHalt,
  // Superinstructions: const feeding (or preceding) a non-trapping ALU op,
  kConstAdd,
  kConstSub,
  kConstMul,
  kConstCmpLt,
  kConstCmpLe,
  kConstCmpEq,
  kConstCmpNe,
  // compare whose result is immediately branched on,
  kCmpLtBranch,
  kCmpLeBranch,
  kCmpEqBranch,
  kCmpNeBranch,
  // and register shuffle feeding a global store.
  kMovStoreG,
};

inline constexpr std::size_t kNumToks =
    static_cast<std::size_t>(Tok::kMovStoreG) + 1;

static_assert(static_cast<std::size_t>(Tok::kHalt) ==
                  static_cast<std::size_t>(Op::kHalt),
              "base tokens must mirror Op values");

const char* tok_name(Tok tok);

inline constexpr std::uint32_t kNoFix = 0xffffffffu;

// One decoded slot: exactly one cache line. Primary operands (a, b, c, imm,
// site) are the first instruction of the slot; a2/b2/c2/site2 are the fused
// second instruction's, valid iff len == 2.
struct alignas(64) DecodedInstr {
  Tok tok = Tok::kHalt;   // handler to dispatch
  Tok base = Tok::kHalt;  // unfused token of the first instruction: executed
                          // instead when < len steps of budget remain
  std::uint8_t len = 1;   // original instructions this slot covers (1 or 2)
  std::uint8_t pad0 = 0;
  std::uint16_t fix_count = 0;  // GuardPatch / LockAvoidanceFix candidates
  std::uint16_t pad1 = 0;
  Value imm = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t site = 0;
  std::uint32_t a2 = 0;
  std::uint32_t b2 = 0;
  std::uint32_t c2 = 0;
  std::uint32_t site2 = 0;
  std::uint32_t guard = kNoFix;  // guard_pool index (kDiv/kMod/kAssert/kAbort)
  std::uint32_t fix_begin = 0;   // patch_pool (kBranchIf) / lockfix_pool (kLock)
};

static_assert(sizeof(DecodedInstr) == 64);

struct DecodeOptions {
  bool fuse = true;
};

// Self-contained decoded form: fix hooks are *copies* grouped per pc, so a
// cached DecodedProgram never dangles into a caller's FixSet.
struct DecodedProgram {
  std::vector<DecodedInstr> code;  // one slot per original pc
  std::vector<CrashGuardFix> guard_pool;
  std::vector<GuardPatch> patch_pool;
  std::vector<LockAvoidanceFix> lockfix_pool;
  std::uint32_t fused_slots = 0;  // static count of len==2 slots
  bool fused = false;             // decoded with fusion enabled
};

// Decodes `p` with `fixes` (nullptr == empty FixSet) resolved into the
// stream. Deterministic in its inputs.
DecodedProgram predecode(const Program& p, const FixSet* fixes,
                         const DecodeOptions& options = {});

// Cached predecode, keyed by a 128-bit dual-pass content hash over the
// program, the fixes, and the fuse flag (pointer identity is deliberately
// not part of the key: equal content shares one entry, mutated content
// misses). Thread-safe; generational eviction when the cache fills.
std::shared_ptr<const DecodedProgram> predecode_cached(
    const Program& p, const FixSet* fixes, const DecodeOptions& options = {});

struct PredecodeCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
};

PredecodeCacheStats predecode_cache_stats();
void clear_predecode_cache();

// Dynamic opcode-pair frequency counters: how often instruction `second`
// executed as the fallthrough successor (pc + 1, same thread) of `first`.
// This is exactly the population a fusion candidate draws from, so the dump
// (disasm.h: format_pair_counts) is the data that justifies the fusion
// table. Fill via ExecConfig::pair_counts (interp.h), which runs the
// unfused stream so raw pairs are observable.
struct OpPairCounts {
  std::array<std::uint64_t, kNumOps * kNumOps> counts{};

  void add(Op first, Op second) {
    counts[static_cast<std::size_t>(first) * kNumOps +
           static_cast<std::size_t>(second)]++;
  }
  std::uint64_t at(Op first, Op second) const {
    return counts[static_cast<std::size_t>(first) * kNumOps +
                  static_cast<std::size_t>(second)];
  }
  void merge(const OpPairCounts& other) {
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : counts) t += c;
    return t;
  }

  struct Pair {
    Op first = Op::kHalt;
    Op second = Op::kHalt;
    std::uint64_t count = 0;
  };
  // Non-zero pairs, most frequent first (ties broken by opcode order).
  std::vector<Pair> sorted() const;
};

}  // namespace softborg
