#include "hive/report.h"

#include <cstdarg>
#include <cstdio>

#include "hive/coop.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace softborg {

namespace {
std::string line(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
std::string line(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return std::string(buf) + "\n";
}
}  // namespace

std::string repair_lab_report(const Hive& hive) {
  std::string out;
  if (hive.repair_lab().empty()) {
    return "repair lab: empty\n";
  }
  out += line("repair lab: %zu candidate(s) awaiting a human:",
              hive.repair_lab().size());
  for (const auto& entry : hive.repair_lab()) {
    out += line("  [score %.2f] bug %llu: %s — %s", entry.candidate.score(),
                static_cast<unsigned long long>(entry.candidate.bug.value),
                entry.candidate.rationale.c_str(),
                entry.why_not_auto.c_str());
  }
  return out;
}

std::string hive_status_report(Hive& hive) {
  const HiveStats& s = hive.stats();
  std::string out;
  out += "=== hive status ===\n";
  out += line(
      "ingestion: %llu traces (%llu dup, %llu malformed, %llu unreplayable, "
      "%llu gate-held), %llu paths merged (%llu new)",
      static_cast<unsigned long long>(s.traces_ingested),
      static_cast<unsigned long long>(s.duplicates_dropped),
      static_cast<unsigned long long>(s.decode_failures),
      static_cast<unsigned long long>(s.replay_failures),
      static_cast<unsigned long long>(s.gated_traces),
      static_cast<unsigned long long>(s.paths_merged),
      static_cast<unsigned long long>(s.new_paths));
  const IngestStats& ing = hive.ingest_stats();
  out += line(
      "pipeline: %llu batches (%llu traces), replay cache %llu hit / %llu "
      "miss (%.0f%%)",
      static_cast<unsigned long long>(ing.batches),
      static_cast<unsigned long long>(ing.batch_traces),
      static_cast<unsigned long long>(ing.replay_cache_hits),
      static_cast<unsigned long long>(ing.replay_cache_misses),
      ing.cache_hit_rate() * 100.0);
  out += line(
      "fixing: %llu bugs found, %llu fixes approved, %llu repair-lab "
      "entries; telemetry: %llu patched traces, %llu recurrences, %llu "
      "bugs reopened",
      static_cast<unsigned long long>(s.bugs_found),
      static_cast<unsigned long long>(s.fixes_approved),
      static_cast<unsigned long long>(s.repair_lab_entries),
      static_cast<unsigned long long>(s.fixed_traces_seen),
      static_cast<unsigned long long>(s.fix_recurrences),
      static_cast<unsigned long long>(s.bugs_reopened));
  const Hive::ProofClosureStats& ps = hive.proof_stats();
  out += line(
      "proof closure: %llu attempts (%llu publishable, %llu refuted), "
      "solver calls %llu, recycled %llu (exact %llu, subsumed %llu, "
      "models %llu)",
      static_cast<unsigned long long>(ps.attempts),
      static_cast<unsigned long long>(ps.publishable),
      static_cast<unsigned long long>(ps.refuted),
      static_cast<unsigned long long>(ps.solver_calls),
      static_cast<unsigned long long>(ps.recycled()),
      static_cast<unsigned long long>(ps.solver_cache_hits),
      static_cast<unsigned long long>(ps.solver_unsat_subsumed),
      static_cast<unsigned long long>(ps.solver_models_reused));
  bool any_coop = false;
  for (std::size_t strat = 0; strat < hive.coop_stats().size(); ++strat) {
    const Hive::CoopStrategyStats& cs = hive.coop_stats()[strat];
    if (cs.runs == 0) continue;
    any_coop = true;
    const std::uint64_t total_steps = cs.useful_steps + cs.wasted_steps;
    out += line(
        "coop[%s]: %llu runs (%llu complete), %llu ticks, %llu useful / "
        "%llu wasted steps (%.0f%% waste), %llu idle ticks, %llu deaths",
        strategy_name(static_cast<PartitionStrategy>(strat)),
        static_cast<unsigned long long>(cs.runs),
        static_cast<unsigned long long>(cs.completed),
        static_cast<unsigned long long>(cs.ticks),
        static_cast<unsigned long long>(cs.useful_steps),
        static_cast<unsigned long long>(cs.wasted_steps),
        total_steps == 0 ? 0.0
                         : 100.0 * static_cast<double>(cs.wasted_steps) /
                               static_cast<double>(total_steps),
        static_cast<unsigned long long>(cs.idle_ticks),
        static_cast<unsigned long long>(cs.worker_deaths));
  }
  if (!any_coop) out += "coop: no cooperative runs\n";

  // Distributed-transport backpressure: present only when a TraceRouter in
  // this process has published its dist.* series (the line never appears —
  // and pinned report outputs never change — in a purely in-process fleet).
  {
    const obs::MetricsSnapshot ms = obs::MetricsRegistry::global().snapshot();
    const auto cv = [&](const char* name) {
      return ms.counter_value(name).value_or(0);
    };
    const std::uint64_t received = cv("dist.received_total");
    if (received > 0) {
      const std::uint64_t shed = cv("dist.shed_total");
      std::int64_t queue_peak = 0;
      for (const auto& g : ms.gauges) {
        if (g.name == "dist.queue_depth_peak") queue_peak = g.value;
      }
      out += line(
          "distributed: %llu received, %llu forwarded, %llu shed (%.2f%% "
          "shed rate), %llu backpressure stalls (%.3fs stalled), queue "
          "peak %lld",
          static_cast<unsigned long long>(received),
          static_cast<unsigned long long>(cv("dist.forwarded_total")),
          static_cast<unsigned long long>(shed),
          100.0 * static_cast<double>(shed) / static_cast<double>(received),
          static_cast<unsigned long long>(cv("dist.backpressure_stalls_total")),
          static_cast<double>(cv("dist.stall_us_total")) / 1e6,
          static_cast<long long>(queue_peak));
      // Per-shard credit occupancy: one line per shard the router has
      // published a credit_window gauge for (contiguous from shard 0).
      for (std::size_t i = 0;; ++i) {
        const std::string prefix = "dist.shard" + std::to_string(i);
        std::int64_t window = -1;
        std::int64_t in_flight = 0;
        for (const auto& g : ms.gauges) {
          if (g.name == prefix + ".credit_window") window = g.value;
          if (g.name == prefix + ".credit_in_flight") in_flight = g.value;
        }
        if (window < 0) break;
        out += line(
            "  shard %zu: credit %lld/%lld in flight (%.0f%% occupied), "
            "%llu forwarded, %.3fs stalled",
            i, static_cast<long long>(in_flight),
            static_cast<long long>(window),
            window == 0 ? 0.0
                        : 100.0 * static_cast<double>(in_flight) /
                              static_cast<double>(window),
            static_cast<unsigned long long>(
                cv((prefix + ".forwarded_total").c_str())),
            static_cast<double>(cv((prefix + ".stall_us_total").c_str())) /
                1e6);
      }
    }
  }

  out += "bug ledger:\n";
  if (hive.bug_tracker().all().empty()) {
    out += "  (no bugs recorded)\n";
  }
  for (const auto& bug : hive.bug_tracker().all()) {
    out += line("  [%s] #%llu %s", bug.fixed ? "FIXED" : "OPEN ",
                static_cast<unsigned long long>(bug.id.value),
                bug.describe().c_str());
  }

  out += "proof ledger:\n";
  if (hive.published_proofs().empty()) {
    out += "  (no certificates published)\n";
  }
  for (const auto& published : hive.published_proofs()) {
    out += line("  [%s] #%llu %s",
                published.revoked ? "REVOKED" : "VALID  ",
                static_cast<unsigned long long>(
                    published.certificate.id.value),
                published.certificate.describe().c_str());
  }

  out += repair_lab_report(hive);
  out += line("telemetry: %zu metrics registered (spans %s)",
              obs::MetricsRegistry::global().num_metrics(),
              obs::spans_enabled() ? "on" : "off");
  return out;
}

std::string hive_status_report(Hive& hive, const NetStats& net) {
  std::string out = hive_status_report(hive);
  out += line(
      "network: %llu sent, %llu delivered; lost: %llu blocked at send, "
      "%llu dropped in flight, %llu dropped at random; %llu duplicated, "
      "%llu bytes sent",
      static_cast<unsigned long long>(net.sent),
      static_cast<unsigned long long>(net.delivered),
      static_cast<unsigned long long>(net.blocked_at_send),
      static_cast<unsigned long long>(net.dropped_in_flight),
      static_cast<unsigned long long>(net.dropped),
      static_cast<unsigned long long>(net.duplicated),
      static_cast<unsigned long long>(net.bytes_sent));
  return out;
}

}  // namespace softborg
