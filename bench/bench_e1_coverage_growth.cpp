// E1 — Collective coverage growth (paper §2, Fig. 3).
//
// Claim under test: "the aggregation of all executions across the lifetime
// of a program (and across all copies) is equivalent to one big test
// suite", and no single organization can match the fleet's volume.
//
// Setup: config_space(14) has 16384 feasible paths. We compare, at equal
// *total* execution counts:
//   (a) one in-house tester drawing uniformly from the full input domain
//       (the best a single organization can do per execution), and
//   (b) a fleet of 500 heterogeneous users, each confined to their own
//       window of the domain, whose traces the hive merges into the
//       collective execution tree.
// We report distinct paths (tree leaves) vs executions, per-user coverage
// vs fleet-union coverage, and the tree-merge census.
//
// Expected shape: coupon-collector-style growth; each individual user
// plateaus at a tiny path count while the union keeps climbing; the
// aggregate matches the uniform tester closely at equal volume — i.e. the
// fleet loses little to heterogeneity but can scale volume arbitrarily.
#include <cstdio>
#include <set>

#include "bench_json.h"
#include "core/softborg.h"

using namespace softborg;

namespace {

std::vector<SymDecision> run_and_replay(const CorpusEntry& entry,
                                        const std::vector<Value>& inputs,
                                        std::uint64_t seed) {
  ExecConfig cfg;
  cfg.inputs = inputs;
  cfg.seed = seed;
  cfg.collect_branch_events = true;
  const auto live = execute(entry.program, cfg);
  std::vector<SymDecision> ds;
  for (const auto& ev : live.branch_events) {
    if (ev.tainted) ds.push_back({ev.site, ev.taken});
  }
  return ds;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json("e1_coverage_growth", argc, argv);
  const unsigned kOptions = 14;
  const std::size_t kUsers = 500;
  const std::size_t kTotalExecutions = 60'000;
  const auto entry = make_config_space(kOptions);
  const std::size_t kAllPaths = 1u << kOptions;

  Rng rng(2026);

  // Fleet: each user flips a biased coin per option (their "habits"), so a
  // single user only ever sees a small slice of the path space.
  struct User {
    std::vector<double> p_on;  // per-option probability
    std::size_t paths_seen = 0;
  };
  std::vector<User> users(kUsers);
  std::vector<std::set<std::uint64_t>> user_paths(kUsers);
  for (auto& u : users) {
    u.p_on.resize(kOptions);
    for (auto& p : u.p_on) {
      const double r = rng.next_double();
      p = r < 0.4 ? 0.05 : (r < 0.8 ? 0.95 : 0.5);  // habits, mostly fixed
    }
  }

  ExecTree fleet_tree(entry.program.id);
  std::set<std::uint64_t> org_paths;

  std::printf("# E1: coverage growth on %s (%zu feasible paths)\n",
              entry.program.name.c_str(), kAllPaths);
  std::printf("%-12s %-16s %-18s %-12s\n", "executions",
              "org_paths(a)", "fleet_paths(b)", "fleet_nodes");

  std::size_t next_report = 1000;
  for (std::size_t n = 1; n <= kTotalExecutions; ++n) {
    // (a) the single organization: one uniform execution.
    {
      std::vector<Value> inputs;
      for (unsigned j = 0; j < kOptions; ++j) {
        inputs.push_back(rng.next_bool() ? 1 : 0);
      }
      ExecConfig cfg;
      cfg.inputs = inputs;
      org_paths.insert(
          execute(entry.program, cfg).trace.branch_bits.hash());
    }
    // (b) the fleet: one execution by a random user, merged into the tree.
    {
      const std::size_t ui = rng.next_below(kUsers);
      std::vector<Value> inputs;
      for (unsigned j = 0; j < kOptions; ++j) {
        inputs.push_back(rng.next_bool(users[ui].p_on[j]) ? 1 : 0);
      }
      const auto decisions = run_and_replay(entry, inputs, n);
      fleet_tree.add_path(decisions, Outcome::kOk);
      BitVec bits;
      for (const auto& d : decisions) bits.push_back(d.taken);
      user_paths[ui].insert(bits.hash());
    }

    if (n == next_report || n == kTotalExecutions) {
      std::printf("%-12zu %-16zu %-18zu %-12zu\n", n, org_paths.size(),
                  fleet_tree.num_paths(), fleet_tree.num_nodes());
      next_report *= 2;
    }
  }

  StatAccumulator per_user;
  for (const auto& paths : user_paths) {
    per_user.add(static_cast<double>(paths.size()));
  }
  std::printf(
      "\nper-user coverage: mean=%.1f paths (max=%.0f) of %zu — "
      "fleet union: %zu (%.1fx the best individual)\n",
      per_user.mean(), per_user.max(), kAllPaths, fleet_tree.num_paths(),
      static_cast<double>(fleet_tree.num_paths()) /
          std::max(per_user.max(), 1.0));
  std::printf(
      "tree census: %zu leaves / %zu nodes from %llu merged executions; "
      "complete=%s\n",
      fleet_tree.num_paths(), fleet_tree.num_nodes(),
      static_cast<unsigned long long>(fleet_tree.total_executions()),
      fleet_tree.complete() ? "yes" : "no");
  json.add("fleet_60k", "union_paths",
           static_cast<double>(fleet_tree.num_paths()),
           static_cast<double>(org_paths.size()));
  json.add("fleet_60k", "per_user_mean_paths", per_user.mean());

  // The paper's volume argument: the fleet can simply keep going. Double
  // the fleet volume and report again.
  for (std::size_t n = kTotalExecutions; n < 2 * kTotalExecutions; ++n) {
    const std::size_t ui = rng.next_below(kUsers);
    std::vector<Value> inputs;
    for (unsigned j = 0; j < kOptions; ++j) {
      inputs.push_back(rng.next_bool(users[ui].p_on[j]) ? 1 : 0);
    }
    fleet_tree.add_path(run_and_replay(entry, inputs, n), Outcome::kOk);
  }
  std::printf("at 2x fleet volume (%zu executions): %zu paths (%.1f%% of all)\n",
              2 * kTotalExecutions, fleet_tree.num_paths(),
              100.0 * static_cast<double>(fleet_tree.num_paths()) /
                  static_cast<double>(kAllPaths));
  json.add("fleet_120k", "coverage_pct",
           100.0 * static_cast<double>(fleet_tree.num_paths()) /
               static_cast<double>(kAllPaths));
  return json.write() ? 0 : 1;
}
