// Execution by-products (paper §3.1).
//
// A Trace is everything a pod ships to the hive about one execution of a
// program P: the bit-vector of input-dependent branch directions, summaries
// of system-call results, the thread-schedule summary, lock events (for
// deadlock reasoning), and the outcome label. Traces are pure data — they
// depend only on `common`, so every other module can speak them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "common/ids.h"

namespace softborg {

// How the execution ended. Matches the paper's outcome taxonomy: explicit
// pod-detected failures (crash/deadlock), inferred end-user feedback
// (user-killed ~ "forceful program termination"), and resource exhaustion.
enum class Outcome : std::uint8_t {
  kOk = 0,
  kCrash = 1,
  kDeadlock = 2,
  kHang = 3,        // exceeded step budget
  kUserKilled = 4,  // end-user feedback: forcefully terminated
};

const char* outcome_name(Outcome o);

enum class CrashKind : std::uint8_t {
  kAssertFailure = 0,
  kDivByZero = 1,
  kBadGlobalAccess = 2,
  kExplicitAbort = 3,
};

const char* crash_kind_name(CrashKind k);

struct CrashInfo {
  CrashKind kind = CrashKind::kAssertFailure;
  std::uint32_t pc = 0;       // crashing instruction
  std::int64_t detail = 0;    // assert message id / divisor site / global idx

  bool operator==(const CrashInfo&) const = default;
};

// One lock acquisition/release event; captured for deadlock diagnosis and
// for lock-targeted schedule guidance (`step` = global execution step at
// which the event happened).
struct LockEvent {
  std::uint8_t thread = 0;
  bool acquire = true;
  std::uint16_t lock = 0;
  std::uint32_t pc = 0;
  std::uint32_t step = 0;

  bool operator==(const LockEvent&) const = default;
};

// Run-length-encoded scheduler decision: `thread` ran for `steps` steps.
struct ScheduleRun {
  std::uint8_t thread = 0;
  std::uint32_t steps = 0;

  bool operator==(const ScheduleRun&) const = default;
};

// Summarized system call: which call site, invocation index, and the
// *class* of result (e.g., success/short/fail) rather than the raw value —
// coarse on purpose (privacy, §3.1).
struct SyscallRecord {
  std::uint16_t sys_id = 0;
  std::uint32_t call_index = 0;
  std::int8_t result_class = 0;  // <0 failure, 0 nominal, >0 partial/short

  bool operator==(const SyscallRecord&) const = default;
};

// Recording granularity knob (§3.1: trade recording detail vs overhead).
enum class Granularity : std::uint8_t {
  kNone = 0,             // outcome only
  kTaintedBranches = 1,  // default: bits for input-dependent branches
  kAllBranches = 2,      // every conditional branch
  kFull = 3,             // + syscall summaries + lock events
};

struct Trace {
  TraceId id;
  ProgramId program;
  PodId pod;
  Outcome outcome = Outcome::kOk;
  std::optional<CrashInfo> crash;

  Granularity granularity = Granularity::kTaintedBranches;
  BitVec branch_bits;                  // directions, in serialized exec order
  std::vector<ScheduleRun> schedule;   // empty for single-threaded programs
  std::vector<LockEvent> lock_events;  // kFull, or always on deadlock
  std::vector<SyscallRecord> syscalls;

  std::uint64_t steps = 0;
  bool patched = false;   // a distributed fix altered this execution
  bool guided = false;    // execution followed a hive guidance directive
  std::uint64_t day = 0;  // virtual capture time

  bool operator==(const Trace&) const = default;
};

}  // namespace softborg
