// Execution guidance (paper §3.3): "SoftBorg uses symbolic analysis to
// identify directions toward which to guide the pods to fill in the gaps".
//
// The planner reads the collective tree's frontier and, for each unexplored
// direction, solves for a witness: concrete inputs plus (when the path
// depends on the environment) a syscall fault plan. Directives never change
// P's semantics — they only choose inputs, inject environment values, and
// steer thread schedules, all of which are legal executions of P.
//
// For multi-threaded programs the planner also emits schedule-exploration
// directives (seeded random and adversarial yield-at-lock plans), which is
// how rare interleavings (deadlocks) are surfaced quickly.
#pragma once

#include <vector>

#include "common/rng.h"
#include "minivm/corpus.h"
#include "pod/protocol.h"
#include "sym/executor.h"
#include "tree/exec_tree.h"

namespace softborg {

struct GuidancePlannerConfig {
  // The unified solver budget (see SolverOptions in csolver.h for the
  // precedence rules shared with ExploreOptions and ProofBudget).
  SolverOptions solver;
  std::size_t max_paths_per_frontier = 4;
  // Frontiers enumerated per plan_frontier call; 0 keeps the historical
  // default of 2x the directive budget (headroom for infeasible gaps the
  // solver declines). Overshooting is cheap now that enumeration is
  // O(answer), but each witness still costs a solver call, so the budget
  // is worth keeping configurable per deployment.
  std::size_t frontier_budget = 0;

  // The single resolution point for the 0-means-default rule above. Every
  // consumer — plan_frontier itself and the adaptive planner's work-unit
  // accounting — must go through this so per-day budgets can never diverge
  // from the historical default.
  std::size_t effective_frontier_budget(std::size_t max_directives) const {
    return frontier_budget != 0 ? frontier_budget : max_directives * 2;
  }
};

class GuidancePlanner {
 public:
  explicit GuidancePlanner(GuidancePlannerConfig config = {})
      : config_(config) {}

  // Input/fault directives targeting up to `max_directives` frontier gaps
  // of a single-threaded program's tree. `cache`, when non-null, recycles
  // solver results across frontiers (and across programs, via the caller).
  std::vector<GuidanceDirective> plan_frontier(const CorpusEntry& entry,
                                               const ExecTree& tree,
                                               std::size_t max_directives,
                                               SolverCache* cache = nullptr);

  // Schedule-exploration directives for multi-threaded programs: plans that
  // force long runs of each thread at staggered offsets, plus random mixes.
  std::vector<GuidanceDirective> plan_schedules(const CorpusEntry& entry,
                                                std::size_t max_directives,
                                                Rng& rng);

 private:
  GuidancePlannerConfig config_;
};

}  // namespace softborg
