// Differential tests for parallel proof gap closure: attempt_proofs_all
// fanned out on N workers must produce byte-identical certificates, trees,
// and closure telemetry compared to the inline sweep — with and without the
// solver-result recycling cache — because programs own disjoint trees,
// proof ids are pre-assigned in corpus order, and each worker solves
// against a snapshot copy of the shared cache that merges back at the
// barrier in corpus order (see Hive::attempt_proofs_for).
//
// Test names carry the ProofParallel prefix so the TSAN CI job's -R regex
// picks the whole suite up.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/softborg.h"
#include "tree/tree_codec.h"

namespace softborg {
namespace {

constexpr Property kProperty = Property::kNeverCrashes;

// Executes random corpus programs on random in-domain inputs and returns
// the encoded by-products, ids 1..n (unique, so dedup passes every wire).
std::vector<Bytes> make_workload(const std::vector<CorpusEntry>& corpus,
                                 std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> wires;
  wires.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CorpusEntry& entry = corpus[rng.next_below(corpus.size())];
    ExecConfig cfg;
    for (const auto& d : entry.domains) {
      cfg.inputs.push_back(rng.next_in(d.lo, d.hi));
    }
    cfg.seed = seed * 1'000'000 + i;
    auto result = execute(entry.program, cfg);
    result.trace.id = TraceId(i + 1);
    wires.push_back(encode_trace(result.trace));
  }
  return wires;
}

struct ClosureResult {
  std::vector<ProofCertificate> certs;
  std::map<std::uint64_t, Bytes> trees;  // program id -> encoded tree
  Hive::ProofClosureStats stats;
  std::size_t valid_proofs = 0;
  std::size_t cache_size = 0;
};

// One hive lifecycle: batch-ingest the workload, run the full-corpus proof
// sweep with the given cache/threads configuration, snapshot everything a
// divergence could show up in.
ClosureResult run_closure(const std::vector<CorpusEntry>& corpus,
                          const std::vector<Bytes>& wires, bool cache,
                          std::size_t threads) {
  HiveConfig config;
  config.solver_cache = cache;
  config.proof_threads = threads;
  Hive hive(&corpus, config);
  hive.ingest_batch(wires);

  ClosureResult out;
  out.certs = hive.attempt_proofs_all(kProperty);
  for (const auto& entry : corpus) {
    if (ExecTree* t = hive.tree(entry.program.id)) {
      out.trees[entry.program.id.value] = encode_tree(*t);
    }
  }
  out.stats = hive.proof_stats();
  out.valid_proofs = hive.valid_proof_count();
  out.cache_size = hive.solver_cache().size();
  return out;
}

void expect_identical(const ClosureResult& a, const ClosureResult& b) {
  ASSERT_EQ(a.certs.size(), b.certs.size());
  for (std::size_t i = 0; i < a.certs.size(); ++i) {
    EXPECT_TRUE(a.certs[i] == b.certs[i]) << "certificate " << i << " ("
                                          << a.certs[i].describe() << " vs "
                                          << b.certs[i].describe() << ")";
  }
  EXPECT_EQ(a.trees, b.trees);  // byte-identical wire encodings
  EXPECT_TRUE(a.stats == b.stats);
  EXPECT_EQ(a.valid_proofs, b.valid_proofs);
  EXPECT_EQ(a.cache_size, b.cache_size);
}

// Certificates with the attempt-local solver telemetry scrubbed: the
// semantic payload (census, completeness, verdict, counterexample) that
// must not depend on whether a cache answered the queries.
ProofCertificate scrub_solver_counters(ProofCertificate c) {
  c.solver_calls = 0;
  c.solver_cache_hits = 0;
  c.solver_unsat_subsumed = 0;
  c.solver_models_reused = 0;
  return c;
}

TEST(ProofParallel, WorkerCountInvarianceWithCache) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 200, 11);
  const ClosureResult serial = run_closure(corpus, wires, true, 0);
  ASSERT_EQ(serial.certs.size(), corpus.size());
  EXPECT_GT(serial.valid_proofs, 0u);
  EXPECT_GT(serial.stats.recycled(), 0u);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    expect_identical(serial, run_closure(corpus, wires, true, threads));
  }
}

TEST(ProofParallel, WorkerCountInvarianceWithoutCache) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 200, 11);
  const ClosureResult serial = run_closure(corpus, wires, false, 0);
  EXPECT_EQ(serial.stats.recycled(), 0u);
  EXPECT_EQ(serial.cache_size, 0u);
  for (const std::size_t threads : {2u, 8u}) {
    expect_identical(serial, run_closure(corpus, wires, false, threads));
  }
}

// The parallel sweep must match what a plain serial loop of attempt_proof
// calls produces. Cache off: with it on the two schedules legitimately
// differ in *telemetry* (the loop lets attempt i see attempt i-1's results;
// the sweep snapshots the cache up front) though never in semantics.
TEST(ProofParallel, SweepMatchesSerialAttemptLoop) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 200, 11);

  HiveConfig config;
  config.solver_cache = false;
  Hive loop_hive(&corpus, config);
  loop_hive.ingest_batch(wires);
  std::vector<ProofCertificate> loop_certs;
  for (const auto& entry : corpus) {
    loop_certs.push_back(loop_hive.attempt_proof(entry.program.id, kProperty));
  }

  const ClosureResult sweep = run_closure(corpus, wires, false, 8);
  ASSERT_EQ(sweep.certs.size(), loop_certs.size());
  for (std::size_t i = 0; i < loop_certs.size(); ++i) {
    EXPECT_TRUE(sweep.certs[i] == loop_certs[i]) << "certificate " << i;
  }
  EXPECT_EQ(sweep.valid_proofs, loop_hive.valid_proof_count());
  EXPECT_TRUE(sweep.stats == loop_hive.proof_stats());
}

// Recycling must be invisible outside the telemetry: same verdicts, same
// census, same trees, same published proofs with the cache on or off. (The
// only divergence the cache is allowed — deciding a query a fresh solve
// would give up on — cannot occur here: the default budget decides every
// query of this corpus.)
TEST(ProofParallel, CacheOnMatchesCacheOffSemantics) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 200, 11);
  const ClosureResult off = run_closure(corpus, wires, false, 0);
  const ClosureResult on = run_closure(corpus, wires, true, 8);

  ASSERT_EQ(on.certs.size(), off.certs.size());
  for (std::size_t i = 0; i < on.certs.size(); ++i) {
    EXPECT_TRUE(scrub_solver_counters(on.certs[i]) ==
                scrub_solver_counters(off.certs[i]))
        << "certificate " << i;
    // Total query count is schedule-independent; only who answers differs.
    EXPECT_EQ(on.certs[i].solver_calls, off.certs[i].solver_calls);
  }
  EXPECT_EQ(on.trees, off.trees);
  EXPECT_EQ(on.valid_proofs, off.valid_proofs);
}

// Publishable certificates from the parallel cached sweep survive the
// independent checker (exhaustive re-execution over the input domain).
TEST(ProofParallel, CertificatesSurviveIndependentCheck) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 200, 11);

  HiveConfig config;
  config.proof_threads = 4;
  Hive hive(&corpus, config);
  hive.ingest_batch(wires);
  const auto certs = hive.attempt_proofs_all(kProperty);

  std::size_t checked = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (!certs[i].publishable()) continue;
    std::string reason;
    EXPECT_TRUE(check_certificate(corpus[i], certs[i], 20'000, &reason))
        << corpus[i].program.name << ": " << reason;
    checked++;
  }
  EXPECT_GT(checked, 0u);
}

// The sharded fleet: per-shard sweeps fan out on the pump pool, each shard
// issuing ids from its own disjoint block. Same ingested traffic, different
// pump_threads -> identical certificates in corpus order.
TEST(ProofParallel, ShardedSweepIsPumpThreadInvariant) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 200, 11);

  const auto run_sharded = [&](std::size_t pump_threads) {
    ShardedHiveConfig config;
    config.pump_threads = pump_threads;
    SimNet net{NetConfig{}};
    ShardedHive hive(&corpus, 4, net, config);
    const Endpoint client = net.add_endpoint();
    for (const Bytes& wire : wires) {
      net.send(client, hive.ingress(), kMsgTrace, wire);
    }
    for (int i = 0; i < 12; ++i) {  // flush the (lossless-default) net
      net.tick();
      hive.pump(net);
    }
    return hive.attempt_proofs_all(kProperty);
  };

  const auto serial = run_sharded(1);
  ASSERT_EQ(serial.size(), corpus.size());
  const auto parallel = run_sharded(8);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i] == parallel[i]) << "certificate " << i;
  }
}

// End to end through the world loop: daily rotating proof slices with the
// parallel cached closure leave the simulation bit-reproducible across
// worker counts, and the day series actually reports closure progress.
TEST(ProofParallel, WorldDailyClosureIsDeterministic) {
  const auto run_world = [](std::size_t threads) {
    WorldConfig config;
    config.pods_per_program = 2;
    config.days = 4;
    config.proof_programs_per_day = 3;
    config.hive.proof_threads = threads;
    World world(standard_corpus(), config);
    world.run();
    return world;
  };

  World a = run_world(0);
  World b = run_world(8);
  ASSERT_EQ(a.history().size(), b.history().size());
  for (std::size_t d = 0; d < a.history().size(); ++d) {
    const DayMetrics& ma = a.history()[d];
    const DayMetrics& mb = b.history()[d];
    EXPECT_EQ(ma.proofs_valid_total, mb.proofs_valid_total) << "day " << d;
    EXPECT_EQ(ma.proof_solver_calls_total, mb.proof_solver_calls_total)
        << "day " << d;
    EXPECT_EQ(ma.proof_solver_recycled_total, mb.proof_solver_recycled_total)
        << "day " << d;
    EXPECT_EQ(ma.failures, mb.failures) << "day " << d;
    EXPECT_EQ(ma.total_paths, mb.total_paths) << "day " << d;
  }
  EXPECT_TRUE(a.hive().proof_stats() == b.hive().proof_stats());
  EXPECT_EQ(a.hive().valid_proof_count(), b.hive().valid_proof_count());
  // The rotating slice must have recycled something by day 4.
  EXPECT_GT(a.history().back().proof_solver_recycled_total, 0u);
  EXPECT_GT(a.history().back().proofs_valid_total, 0u);
}

}  // namespace
}  // namespace softborg
