// Fluent assembler for MiniVM programs.
//
// Labels may be referenced before they are bound; build() resolves all
// fixups, assigns dense branch-site ids in code order, and validates the
// result. The corpus (corpus.h) and all tests construct programs with this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minivm/program.h"

namespace softborg {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name, std::uint64_t id = 1);

  // --- resource allocation -------------------------------------------------
  Reg reg();                    // next per-thread register
  std::uint32_t global();       // next shared global slot
  std::uint32_t lock();         // next lock id
  std::uint32_t input_slot();   // next program-external input slot

  // --- labels ---------------------------------------------------------------
  using Label = std::uint32_t;
  Label label();            // fresh, unbound label
  void bind(Label l);       // bind at the current pc
  Label here();             // label bound at the current pc

  // --- instructions ----------------------------------------------------------
  void const_(Reg r, Value v);
  void mov(Reg dst, Reg src);
  void add(Reg d, Reg a, Reg b);
  void sub(Reg d, Reg a, Reg b);
  void mul(Reg d, Reg a, Reg b);
  void div(Reg d, Reg a, Reg b);
  void mod(Reg d, Reg a, Reg b);
  void cmp_lt(Reg d, Reg a, Reg b);
  void cmp_le(Reg d, Reg a, Reg b);
  void cmp_eq(Reg d, Reg a, Reg b);
  void cmp_ne(Reg d, Reg a, Reg b);
  void branch_if(Reg cond, Label then_l, Label else_l);
  void jump(Label l);
  void input(Reg r, std::uint32_t slot);
  void syscall(Reg r, std::uint16_t sys_id, Reg arg);
  void loadg(Reg r, std::uint32_t g);
  void storeg(std::uint32_t g, Reg r);
  void lock_acq(std::uint32_t l);
  void lock_rel(std::uint32_t l);
  void assert_true(Reg r, std::int64_t msg_id);
  void abort_now(std::int64_t code);
  void output(Reg r);
  void yield();
  void halt();

  // Starts a new thread whose entry is the current pc. The first thread
  // (thread 0) starts implicitly at pc 0.
  void start_thread();

  // Convenience: d = a <op> const. Allocates a scratch register once.
  void add_const(Reg d, Reg a, Value v);
  void cmp_lt_const(Reg d, Reg a, Value v);
  void cmp_eq_const(Reg d, Reg a, Value v);

  // Resolves labels, assigns branch sites, validates. Aborts on invalid
  // programs (builder misuse is a programming error, not an input error).
  Program build();

  std::uint32_t current_pc() const {
    return static_cast<std::uint32_t>(code_.size());
  }

 private:
  void emit(Instr ins);
  Reg scratch();

  std::string name_;
  std::uint64_t id_;
  std::vector<Instr> code_;
  std::vector<std::uint32_t> thread_entries_{0};
  std::uint16_t num_regs_ = 0;
  std::uint16_t num_globals_ = 0;
  std::uint16_t num_locks_ = 0;
  std::uint16_t num_inputs_ = 0;

  static constexpr std::uint32_t kUnbound = 0xffffffffu;
  std::vector<std::uint32_t> label_pc_;  // label -> pc or kUnbound
  struct Fixup {
    std::uint32_t pc;
    int operand;  // 0=a, 1=b, 2=c
    Label label;
  };
  std::vector<Fixup> fixups_;
  Reg scratch_ = 0;
  bool have_scratch_ = false;
};

}  // namespace softborg
