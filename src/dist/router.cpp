#include "dist/router.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "obs/recorder.h"
#include "trace/codec.h"

namespace softborg::dist {

namespace {

double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceRouter::TraceRouter(std::size_t num_shards, RouterConfig config)
    : config_(config), ring_(num_shards, config.vnodes_per_shard) {
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(ShardLink{nullptr, BoundedTraceQueue(config_.queue_capacity)});
  }
  reports_.resize(num_shards);
}

void TraceRouter::connect_shard(std::size_t index, std::unique_ptr<Channel> ch) {
  SB_CHECK(index < shards_.size());
  shards_[index].ch = std::move(ch);
}

void TraceRouter::add_pod(std::unique_ptr<Channel> ch) {
  pods_.push_back(std::move(ch));
}

void TraceRouter::add_unidentified(std::unique_ptr<Channel> ch) {
  unidentified_.push_back(std::move(ch));
}

void TraceRouter::add_shard() {
  ring_.add_shard();
  shards_.push_back(ShardLink{nullptr, BoundedTraceQueue(config_.queue_capacity)});
  reports_.resize(shards_.size());
}

void TraceRouter::route_wire(Bytes wire, obs::TraceContext ctx) {
  stats_.received++;
  const auto summary = summarize_trace_wire(wire);
  if (!summary) {
    stats_.routing_failures++;
    return;
  }
  const std::size_t owner = ring_.owner(summary->program.value);
  if (obs::tracing_enabled()) {
    // A socket peer's v2 frame already carries the chain; otherwise this is
    // the first traced hop and the context comes from the wire header.
    if (!ctx.valid()) {
      ctx.trace_id =
          obs::causal_trace_id(summary->id.value, summary->program.value);
    }
    ctx = obs::with_hop(ctx, obs::Hop::kRouter);
    obs::Recorder::record(obs::EventKind::kRouterIngress, ctx,
                          static_cast<std::uint32_t>(owner));
  } else {
    ctx = {};
  }
  ShardLink& link = shards_[owner];
  if (link.ch && !link.ch->alive()) {
    // The owning worker is dead: degrade by shedding, never queue into a
    // black hole. (A null ch is different — the worker just hasn't connected
    // yet, so the queue buffers the head of traffic for it.)
    stats_.shed++;
    obs::Recorder::record(obs::EventKind::kQueueShed, ctx,
                          static_cast<std::uint32_t>(owner),
                          link.queue.depth());
    return;
  }
  const std::uint64_t shed_before = link.queue.shed_total();
  link.queue.push(trace_priority(*summary), std::move(wire), ctx);
  if (link.queue.shed_total() != shed_before) {
    stats_.shed += link.queue.shed_total() - shed_before;
    obs::Recorder::record(obs::EventKind::kQueueShed, ctx,
                          static_cast<std::uint32_t>(owner),
                          link.queue.depth());
  }
}

void TraceRouter::handle_shard_delivery(std::size_t index, Delivery d) {
  ShardLink& link = shards_[index];
  if (d.credit > 0) {
    link.credit += d.credit;
    stats_.credits_granted += d.credit;
  }
  switch (d.type) {
    case kMsgCredit:
      break;  // grant already applied above
    case kMsgHello: {
      const auto hello = decode_hello(d.payload);
      if (!hello) break;
      // Fresh connection state: anything in flight on the old link is gone,
      // the worker's window is whole again.
      link.window = hello->credit_window;
      link.credit = hello->credit_window;
      obs::Recorder::record(obs::EventKind::kHello, {},
                            static_cast<std::uint32_t>(index),
                            hello->mono_ns);
      break;
    }
    case kMsgStats:
      reports_[index].stats_wire = std::move(d.payload);
      break;
    case kMsgTreeData:
      reports_[index].trees_wire = std::move(d.payload);
      break;
    case kMsgShutdown:
      if (!reports_[index].closed) {
        reports_[index].closed = true;
        closed_reports_++;
      }
      break;
    case kMsgSnapshot:
      snapshot_acks_++;
      break;
    default:
      stats_.unroutable++;
      break;
  }
}

void TraceRouter::poll_shard(std::size_t index) {
  ShardLink& link = shards_[index];
  if (!link.ch) return;
  for (auto& d : link.ch->poll()) {
    handle_shard_delivery(index, std::move(d));
  }
}

void TraceRouter::forward(std::size_t index) {
  ShardLink& link = shards_[index];
  const bool alive = link.alive();
  if (!alive && link.ch && !link.queue.empty()) {
    // Dead worker: everything queued for it is shed in one stroke so the
    // router's memory never grows toward a shard that cannot drain.
    stats_.shed += link.queue.depth();
    link.queue.shed_all();
  }
  while (alive && link.credit > 0 && !link.queue.empty()) {
    auto item = link.queue.pop();
    obs::Recorder::record(obs::EventKind::kRouterForward, item->ctx,
                          static_cast<std::uint32_t>(index));
    link.ch->send(kMsgTrace, std::move(item->wire), 0, item->ctx);
    link.credit--;
    link.forwarded++;
    stats_.forwarded++;
  }
  // Backpressure: work queued, worker announced a window, window exhausted.
  // (window == 0 means the worker hasn't helloed yet — startup, not stall.)
  const bool stalled_now =
      alive && link.window > 0 && link.credit == 0 && !link.queue.empty();
  if (stalled_now && !link.stalled) {
    link.stalled = true;
    link.stall_started = mono_seconds();
    stats_.backpressure_stalls++;
    obs::Recorder::record(obs::EventKind::kCreditStall, {},
                          static_cast<std::uint32_t>(index),
                          link.queue.depth());
  } else if (!stalled_now && link.stalled) {
    link.stalled = false;
    const double stalled_for = mono_seconds() - link.stall_started;
    stats_.stall_seconds += stalled_for;
    link.stall_seconds += stalled_for;
    obs::Recorder::record(obs::EventKind::kCreditResume, {},
                          static_cast<std::uint32_t>(index),
                          static_cast<std::uint64_t>(stalled_for * 1e6));
  }
}

void TraceRouter::pump() {
  // 1. Anonymous peers: the first message tells us what they are.
  for (std::size_t i = 0; i < unidentified_.size();) {
    Channel* ch = unidentified_[i].get();
    auto deliveries = ch->poll();
    if (deliveries.empty()) {
      if (!ch->alive()) {
        unidentified_.erase(unidentified_.begin() +
                            static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
      continue;
    }
    auto moved = std::move(unidentified_[i]);
    unidentified_.erase(unidentified_.begin() + static_cast<std::ptrdiff_t>(i));
    if (deliveries.front().type == kMsgHello) {
      const auto hello = decode_hello(deliveries.front().payload);
      if (hello && hello->shard_index < shards_.size()) {
        const std::size_t index = hello->shard_index;
        shards_[index].ch = std::move(moved);  // new or restarted worker
        for (auto& d : deliveries) {
          handle_shard_delivery(index, std::move(d));
        }
      } else {
        stats_.unroutable++;  // bogus hello: drop the peer
      }
    } else {
      for (auto& d : deliveries) {
        if (d.type == kMsgTrace) {
          route_wire(std::move(d.payload), d.ctx);
        } else {
          stats_.unroutable++;
        }
      }
      pods_.push_back(std::move(moved));
    }
  }

  // 2. Shard workers first, so freshly granted credit is spendable in this
  // same round.
  for (std::size_t i = 0; i < shards_.size(); ++i) poll_shard(i);

  // 3. Pod ingress.
  for (std::size_t i = 0; i < pods_.size();) {
    Channel* ch = pods_[i].get();
    for (auto& d : ch->poll()) {
      if (d.type == kMsgTrace) {
        route_wire(std::move(d.payload), d.ctx);
      } else if (d.type != kMsgCredit) {
        stats_.unroutable++;
      }
    }
    if (!ch->alive()) {
      pods_.erase(pods_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  // 4. Forward within credit; account stalls and dead-shard sheds.
  std::size_t depth = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    forward(i);
    depth += shards_[i].queue.depth();
    if (shards_[i].ch) shards_[i].ch->flush();
  }
  stats_.queue_depth_peak = std::max(stats_.queue_depth_peak, depth);

  publish_metrics();
}

void TraceRouter::broadcast_shutdown() {
  for (auto& link : shards_) {
    if (link.alive()) link.ch->send(kMsgShutdown, Bytes{});
  }
}

bool TraceRouter::all_reports_in() const {
  return closed_reports_ == shards_.size();
}

void TraceRouter::request_snapshots() {
  for (auto& link : shards_) {
    if (link.alive()) link.ch->send(kMsgSnapshot, Bytes{});
  }
}

bool TraceRouter::shard_alive(std::size_t index) const {
  return index < shards_.size() && shards_[index].alive();
}

std::size_t TraceRouter::shard_credit(std::size_t index) const {
  return index < shards_.size() ? shards_[index].credit : 0;
}

std::size_t TraceRouter::shard_credit_window(std::size_t index) const {
  return index < shards_.size() ? shards_[index].window : 0;
}

double TraceRouter::shard_stall_seconds(std::size_t index) const {
  if (index >= shards_.size()) return 0.0;
  const ShardLink& link = shards_[index];
  double total = link.stall_seconds;
  if (link.stalled) total += mono_seconds() - link.stall_started;
  return total;
}

std::uint64_t TraceRouter::shard_forwarded(std::size_t index) const {
  return index < shards_.size() ? shards_[index].forwarded : 0;
}

std::size_t TraceRouter::total_queue_depth() const {
  std::size_t depth = 0;
  for (const auto& link : shards_) depth += link.queue.depth();
  return depth;
}

bool TraceRouter::quiescent() const {
  if (!unidentified_.empty()) return false;
  for (const auto& link : shards_) {
    if (!link.queue.empty()) return false;
    // Credit equal to the announced window means every forwarded trace has
    // been consumed and acknowledged.
    if (link.alive() && link.window > 0 && link.credit != link.window) {
      return false;
    }
  }
  return true;
}

void TraceRouter::publish_metrics() {
  if (!obs::enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  // Cached handles, looked up once: pump() runs every loop iteration.
  static constexpr const char* kNames[] = {
      "dist.received_total",     "dist.forwarded_total",
      "dist.shed_total",         "dist.backpressure_stalls_total",
      "dist.routing_failures_total", "dist.unroutable_total",
      "dist.credits_granted_total",  "dist.stall_us_total",
  };
  struct Handles {
    obs::Counter* c[8];
    obs::Gauge* depth;
    obs::Gauge* depth_peak;
  };
  static Handles h = [&] {
    Handles out{};
    for (std::size_t i = 0; i < 8; ++i) out.c[i] = &reg.counter(kNames[i]);
    out.depth = &reg.gauge("dist.queue_depth");
    out.depth_peak = &reg.gauge("dist.queue_depth_peak");
    return out;
  }();
  const RouterStats& s = stats_;
  RouterStats& p = obs_published_;
  const std::uint64_t now[8] = {
      s.received,
      s.forwarded,
      s.shed,
      s.backpressure_stalls,
      s.routing_failures,
      s.unroutable,
      s.credits_granted,
      static_cast<std::uint64_t>(s.stall_seconds * 1e6),
  };
  const std::uint64_t before[8] = {
      p.received,
      p.forwarded,
      p.shed,
      p.backpressure_stalls,
      p.routing_failures,
      p.unroutable,
      p.credits_granted,
      static_cast<std::uint64_t>(p.stall_seconds * 1e6),
  };
  for (std::size_t i = 0; i < 8; ++i) {
    if (now[i] > before[i]) h.c[i]->add(now[i] - before[i]);
  }
  p = s;
  h.depth->set(static_cast<std::int64_t>(total_queue_depth()));
  h.depth_peak->set(static_cast<std::int64_t>(s.queue_depth_peak));
  // Per-shard ingest rates and flow-control health. Registry lookups are
  // string-keyed, so each series publishes only when its value moved.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardLink& link = shards_[i];
    const std::string prefix = "dist.shard" + std::to_string(i);
    if (link.forwarded != link.obs_published_forwarded) {
      reg.counter(prefix + ".forwarded_total")
          .add(link.forwarded - link.obs_published_forwarded);
      link.obs_published_forwarded = link.forwarded;
    }
    // Credit-window occupancy: window is what the worker announced,
    // in-flight is how much of it the router has spent and not yet had
    // re-granted (the live backpressure signal).
    const auto window = static_cast<std::int64_t>(link.window);
    const auto in_flight =
        static_cast<std::int64_t>(link.window) -
        static_cast<std::int64_t>(std::min<std::uint32_t>(link.credit,
                                                          link.window));
    if (window != link.obs_window) {
      reg.gauge(prefix + ".credit_window").set(window);
      link.obs_window = window;
    }
    if (in_flight != link.obs_in_flight) {
      reg.gauge(prefix + ".credit_in_flight").set(in_flight);
      link.obs_in_flight = in_flight;
    }
    if (link.stall_seconds != link.obs_published_stall_seconds) {
      const auto now_us = static_cast<std::uint64_t>(link.stall_seconds * 1e6);
      const auto before_us =
          static_cast<std::uint64_t>(link.obs_published_stall_seconds * 1e6);
      if (now_us > before_us) {
        reg.counter(prefix + ".stall_us_total").add(now_us - before_us);
      }
      link.obs_published_stall_seconds = link.stall_seconds;
    }
  }
}

}  // namespace softborg::dist
