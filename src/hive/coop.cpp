#include "hive/coop.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>

#include "common/check.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "hive/adapt.h"
#include "pod/protocol.h"
#include "sym/executor.h"
#include "tree/exec_tree.h"

namespace softborg {

const char* strategy_name(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kStatic: return "static";
    case PartitionStrategy::kDynamic: return "dynamic";
    case PartitionStrategy::kPortfolio: return "portfolio";
  }
  return "?";
}

namespace {

// One unit of work: a prefix-subtree's path costs (symbolic steps each).
struct WorkUnit {
  std::size_t id = 0;
  std::size_t equity = 0;  // top-level subtree this unit belongs to
  std::vector<std::uint64_t> path_costs;
  std::uint64_t total_cost = 0;
};

struct UnitAssignment {
  std::size_t unit = 0;
  std::uint64_t assigned_tick = 0;
  std::size_t worker = 0;
};

struct Worker {
  Endpoint endpoint = 0;
  bool alive = true;
  std::uint64_t respawn_at = 0;
  std::optional<std::size_t> unit;     // current work
  std::size_t path_index = 0;
  std::uint64_t remaining_in_path = 0;
  std::uint64_t steps_done_in_unit = 0;
  std::uint64_t last_request_tick = 0;
  std::size_t paths_done_in_unit = 0;
};

// Per-equity statistics for the portfolio allocator.
struct Equity {
  StatAccumulator unit_cost;    // observed per-unit total costs
  std::size_t units_open = 0;   // unfinished units in this equity
  std::size_t exposure = 0;     // in-flight assignments ("capital invested")
  // Cross-run prior from the yield ledger (negative mean = no prior).
  double prior_mean = -1.0;
  double prior_dev = 0.0;
};

class Coordinator {
 public:
  Coordinator(std::vector<WorkUnit> units, PartitionStrategy strategy,
              std::size_t num_workers, std::size_t num_equities)
      : units_(std::move(units)),
        strategy_(strategy),
        equities_(num_equities) {
    for (const auto& u : units_) equities_[u.equity].units_open++;
    switch (strategy_) {
      case PartitionStrategy::kStatic: {
        // Static = split the execution tree spatially, up front: each
        // worker owns one contiguous block of prefix-ordered units (one
        // contiguous region of the tree). This is the partition one would
        // choose without knowing subtree costs — the paper's point that a
        // good static split is undecidable before exploration.
        static_share_.resize(num_workers);
        const std::size_t per_worker =
            (units_.size() + num_workers - 1) /
            std::max<std::size_t>(num_workers, 1);
        for (std::size_t i = 0; i < units_.size(); ++i) {
          static_share_[std::min(i / std::max<std::size_t>(per_worker, 1),
                                 num_workers - 1)]
              .push_back(i);
        }
        break;
      }
      case PartitionStrategy::kDynamic:
      case PartitionStrategy::kPortfolio:
        for (std::size_t i = 0; i < units_.size(); ++i) queue_.push_back(i);
        break;
    }
    done_.assign(units_.size(), false);
    in_flight_.assign(units_.size(), false);
  }

  // Picks a unit for `worker`, or nullopt if none available to it now.
  std::optional<std::size_t> assign(std::size_t worker) {
    switch (strategy_) {
      case PartitionStrategy::kStatic: {
        auto& share = static_share_[worker];
        while (!share.empty()) {
          const std::size_t u = share.front();
          if (done_[u] || in_flight_[u]) {
            share.pop_front();
            continue;
          }
          share.pop_front();
          in_flight_[u] = true;
          return u;
        }
        return std::nullopt;
      }
      case PartitionStrategy::kDynamic: {
        while (!queue_.empty()) {
          const std::size_t u = queue_.front();
          queue_.pop_front();
          if (done_[u] || in_flight_[u]) continue;
          in_flight_[u] = true;
          return u;
        }
        return std::nullopt;
      }
      case PartitionStrategy::kPortfolio:
        return assign_portfolio();
    }
    return std::nullopt;
  }

  std::optional<std::size_t> assign_portfolio() {
    // Modern-portfolio-theory allocation (paper §4): treat each top-level
    // subtree as an equity and invest the idle worker where the expected
    // *remaining* work per unit of already-invested capital is largest.
    //  * return estimate: units_open x observed mean unit cost (optimistic
    //    prior for unobserved equities — speculation);
    //  * risk: high cost variance inflates the estimate (a risky equity
    //    may hide much more work than its mean suggests), which is
    //    exactly why it deserves early diversified investment;
    //  * diversification: dividing by (exposure + 1) spreads workers
    //    across equities instead of piling onto one.
    double global_mean = 0.0;
    std::size_t observed = 0;
    for (const auto& eq : equities_) {
      if (eq.unit_cost.count() > 0) {
        global_mean += eq.unit_cost.sum();
        observed += eq.unit_cost.count();
      }
    }
    global_mean = observed > 0 ? global_mean / static_cast<double>(observed)
                               : 1.0;

    double best_score = -1.0;
    std::size_t best_equity = SIZE_MAX;
    for (std::size_t e = 0; e < equities_.size(); ++e) {
      const Equity& eq = equities_[e];
      if (eq.units_open == 0) continue;
      double mean_cost;
      if (eq.unit_cost.count() == 0) {
        if (eq.prior_mean >= 0.0) {
          // A past run (via the yield ledger) already priced this subtree:
          // start from its risk-inflated estimate instead of speculating.
          mean_cost = eq.prior_mean + eq.prior_dev;
        } else {
          mean_cost = 4.0 * global_mean;  // speculation: optimistic unknown
        }
      } else {
        // Risk premium: one observed-stddev of upside per unit.
        mean_cost = eq.unit_cost.mean() + eq.unit_cost.stddev();
      }
      const double remaining =
          static_cast<double>(eq.units_open) * std::max(mean_cost, 1.0);
      const double score =
          remaining / static_cast<double>(eq.exposure + 1);
      if (score > best_score) {
        best_score = score;
        best_equity = e;
      }
    }
    if (best_equity == SIZE_MAX) return std::nullopt;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      const std::size_t u = *it;
      if (done_[u] || in_flight_[u]) continue;
      if (units_[u].equity != best_equity) continue;
      queue_.erase(it);
      in_flight_[u] = true;
      equities_[best_equity].exposure++;
      return u;
    }
    // Fall back to anything open.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      const std::size_t u = *it;
      if (done_[u] || in_flight_[u]) continue;
      queue_.erase(it);
      in_flight_[u] = true;
      equities_[units_[u].equity].exposure++;
      return u;
    }
    return std::nullopt;
  }

  bool complete(std::size_t unit) {
    if (done_[unit]) return false;
    done_[unit] = true;
    in_flight_[unit] = false;
    auto& eq = equities_[units_[unit].equity];
    SB_CHECK(eq.units_open > 0);
    eq.units_open--;
    if (eq.exposure > 0) eq.exposure--;
    eq.unit_cost.add(static_cast<double>(units_[unit].total_cost));
    remaining_--;
    return true;
  }

  // Work lost with a dead worker: back on the queue (dynamic/portfolio) or
  // back into the owner's share (static — it must wait for the respawn).
  void requeue(std::size_t unit, std::size_t worker) {
    if (done_[unit]) return;
    in_flight_[unit] = false;
    auto& eq = equities_[units_[unit].equity];
    if (eq.exposure > 0) eq.exposure--;
    if (strategy_ == PartitionStrategy::kStatic) {
      static_share_[worker].push_front(unit);
    } else {
      queue_.push_front(unit);
    }
  }

  bool all_done() const { return remaining_ == 0; }
  const WorkUnit& unit(std::size_t id) const { return units_[id]; }
  std::size_t num_units() const { return units_.size(); }

  void set_equity_prior(std::size_t e, double mean, double dev) {
    equities_[e].prior_mean = mean;
    equities_[e].prior_dev = dev;
  }
  const std::vector<Equity>& equities() const { return equities_; }

 private:
  std::vector<WorkUnit> units_;
  PartitionStrategy strategy_;
  std::vector<Equity> equities_;
  std::deque<std::size_t> queue_;
  std::vector<std::deque<std::size_t>> static_share_;
  std::vector<bool> done_;
  std::vector<bool> in_flight_;
  std::size_t remaining_ = 0;

 public:
  void set_remaining(std::size_t n) { remaining_ = n; }
};

}  // namespace

CoopResult run_cooperative_exploration(const CorpusEntry& entry,
                                       const CoopConfig& config) {
  SB_CHECK(config.num_workers >= 1);
  CoopResult result;

  // Ground truth: the full path set with real symbolic costs.
  ExploreOptions opt;
  opt.input_domains = domains_of(entry);
  opt.max_paths = 1u << 20;
  opt.solver_cache = config.solver_cache;
  SymbolicExecutor ex(entry.program, opt);
  const auto paths = ex.explore();
  result.complete = ex.stats().complete;

  // Partition paths into prefix units of depth `split_depth` and equities
  // by first decision. Units are keyed on the collective tree's node ids —
  // every path with the same truncated prefix lands on the same (stable,
  // append-only) node, so the key is one uint32 instead of a decision
  // vector, and the depth-k walk replaces a vector copy per path.
  ExecTree tree(entry.program.id);
  for (const auto& p : paths) tree.add_path(p.decisions, Outcome::kOk);
  std::map<std::uint32_t, WorkUnit> unit_map;  // prefix node id -> unit
  std::map<SymDecision, std::size_t> equity_ids;
  for (const auto& p : paths) {
    std::vector<SymDecision> prefix = p.decisions;
    if (prefix.size() > config.split_depth) prefix.resize(config.split_depth);
    const std::uint32_t node = tree.node_at(prefix);
    SB_CHECK(node != ExecTree::kNoNode);  // the path was just merged
    WorkUnit& u = unit_map[node];
    u.path_costs.push_back(std::max<std::uint64_t>(p.steps, 1));
    u.total_cost += std::max<std::uint64_t>(p.steps, 1);
    const SymDecision top =
        p.decisions.empty() ? SymDecision{0, false} : p.decisions.front();
    auto [it, inserted] = equity_ids.try_emplace(top, equity_ids.size());
    u.equity = it->second;
  }
  // Equity id -> its defining top decision (for ledger keys).
  std::vector<SymDecision> equity_top(equity_ids.size());
  for (const auto& [top, id] : equity_ids) equity_top[id] = top;
  // Flatten in lexicographic prefix order — reconstructed on demand from
  // the tree's parent links — so unit numbering (and thus the static
  // partition and every strategy's deterministic outcome) is identical to
  // the original prefix-keyed map.
  std::vector<std::pair<std::vector<SymDecision>, WorkUnit*>> ordered;
  ordered.reserve(unit_map.size());
  for (auto& [node, u] : unit_map) {
    ordered.emplace_back(tree.path_to(node), &u);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<WorkUnit> units;
  units.reserve(ordered.size());
  for (auto& [prefix, u] : ordered) {
    u->id = units.size();
    units.push_back(std::move(*u));
  }
  const std::size_t num_units = units.size();
  const std::size_t num_equities = std::max<std::size_t>(equity_ids.size(), 1);

  Coordinator coord(std::move(units), config.strategy, config.num_workers,
                    num_equities);
  coord.set_remaining(num_units);
  if (config.yield != nullptr) {
    for (std::size_t e = 0; e < equity_top.size(); ++e) {
      const auto* prior = config.yield->equity(
          entry.program.id,
          YieldLedger::equity_key(equity_top[e].site, equity_top[e].taken));
      if (prior != nullptr && prior->units > 0) {
        coord.set_equity_prior(e, prior->mean_cost, prior->dev);
      }
    }
  }

  SimNet net(config.net);
  const Endpoint coord_ep = net.add_endpoint();
  std::vector<Worker> workers(config.num_workers);
  for (auto& w : workers) w.endpoint = net.add_endpoint();

  Rng rng(config.seed ^ 0xc00b);
  std::map<std::size_t, UnitAssignment> live_assignments;  // unit -> assignment

  auto payload_of = [](std::size_t unit) {
    Bytes b;
    put_varint(b, unit);
    return b;
  };
  auto unit_of = [](const Bytes& b) -> std::optional<std::size_t> {
    std::size_t pos = 0;
    auto v = get_varint(b, pos);
    if (!v || pos != b.size()) return std::optional<std::size_t>{};
    return static_cast<std::size_t>(*v);
  };

  std::uint64_t tick = 0;
  for (; tick < config.max_ticks && !coord.all_done(); ++tick) {
    net.tick();

    // --- coordinator ---------------------------------------------------
    for (const auto& msg : net.drain(coord_ep)) {
      const auto unit = unit_of(msg.payload);
      if (!unit) continue;
      if (msg.type == kMsgWorkResult) {
        if (*unit < coord.num_units() && coord.complete(*unit)) {
          result.paths_explored += coord.unit(*unit).path_costs.size();
        }
        live_assignments.erase(*unit);
      } else if (msg.type == kMsgWorkRequest) {
        // Worker index encoded in the payload for requests.
        const std::size_t worker_idx = *unit;
        if (worker_idx >= workers.size()) continue;
        const auto assigned = coord.assign(worker_idx);
        if (assigned) {
          live_assignments[*assigned] = {*assigned, tick, worker_idx};
          net.send(coord_ep, workers[worker_idx].endpoint, kMsgWorkAssign,
                   payload_of(*assigned));
        }
      }
    }
    // Death/timeout detection. Dead workers' assignments are re-queued
    // after the detection delay; assignments to live workers also time out
    // (covers lost assign/result messages on the lossy network) after a
    // generous multiple of the unit's expected processing time.
    for (auto it = live_assignments.begin(); it != live_assignments.end();) {
      const Worker& w = workers[it->second.worker];
      const std::uint64_t age = tick - it->second.assigned_tick;
      const std::uint64_t expected =
          coord.unit(it->first).total_cost / config.steps_per_tick + 1;
      const bool timed_out =
          (!w.alive && age >= config.death_detect_ticks) ||
          age >= 4 * expected + config.death_detect_ticks + 40;
      if (timed_out) {
        coord.requeue(it->first, it->second.worker);
        it = live_assignments.erase(it);
      } else {
        ++it;
      }
    }

    // --- workers ---------------------------------------------------------
    for (std::size_t wi = 0; wi < workers.size(); ++wi) {
      Worker& w = workers[wi];
      if (!w.alive) {
        if (tick >= w.respawn_at) {
          w.alive = true;
          w.unit.reset();
        } else {
          continue;
        }
      }
      // Churn: busy workers die, losing their in-progress unit.
      if (w.unit && config.churn_prob > 0 &&
          rng.next_bool(config.churn_prob)) {
        w.alive = false;
        w.respawn_at = tick + config.respawn_ticks;
        result.worker_deaths++;
        result.wasted_steps += w.steps_done_in_unit;
        w.unit.reset();
        w.steps_done_in_unit = 0;
        continue;
      }

      for (const auto& msg : net.drain(w.endpoint)) {
        if (msg.type != kMsgWorkAssign || w.unit) continue;
        const auto unit = unit_of(msg.payload);
        if (!unit || *unit >= coord.num_units()) continue;
        w.unit = *unit;
        w.path_index = 0;
        w.paths_done_in_unit = 0;
        w.steps_done_in_unit = 0;
        w.remaining_in_path = coord.unit(*unit).path_costs.empty()
                                  ? 0
                                  : coord.unit(*unit).path_costs[0];
      }

      if (!w.unit) {
        result.idle_ticks++;
        // (Re-)request work, with retry because the network drops messages.
        if (tick == 0 || tick - w.last_request_tick >= 8) {
          Bytes b;
          put_varint(b, wi);
          net.send(w.endpoint, coord_ep, kMsgWorkRequest, b);
          w.last_request_tick = tick;
        }
        continue;
      }

      // Burn through path costs.
      std::uint64_t budget = config.steps_per_tick;
      const WorkUnit& unit = coord.unit(*w.unit);
      while (budget > 0 && w.path_index < unit.path_costs.size()) {
        const std::uint64_t burn = std::min(budget, w.remaining_in_path);
        budget -= burn;
        w.remaining_in_path -= burn;
        w.steps_done_in_unit += burn;
        result.useful_steps += burn;
        if (w.remaining_in_path == 0) {
          w.paths_done_in_unit++;
          w.path_index++;
          if (w.path_index < unit.path_costs.size()) {
            w.remaining_in_path = unit.path_costs[w.path_index];
          }
        }
      }
      if (w.path_index >= unit.path_costs.size()) {
        net.send(w.endpoint, coord_ep, kMsgWorkResult, payload_of(*w.unit));
        w.unit.reset();
        w.steps_done_in_unit = 0;
        // Immediately ask for more.
        Bytes b;
        put_varint(b, wi);
        net.send(w.endpoint, coord_ep, kMsgWorkRequest, b);
        w.last_request_tick = tick;
      }
    }
  }

  result.ticks = tick;
  result.messages = net.stats().sent;
  result.complete = result.complete && coord.all_done();
  result.strategy = config.strategy;
  if (config.yield != nullptr) {
    // Epilogue write-back: this run's observed subtree costs become the
    // next run's priors.
    const auto& eqs = coord.equities();
    for (std::size_t e = 0; e < eqs.size() && e < equity_top.size(); ++e) {
      if (eqs[e].unit_cost.count() == 0) continue;
      config.yield->observe_equity(
          entry.program.id,
          YieldLedger::equity_key(equity_top[e].site, equity_top[e].taken),
          eqs[e].unit_cost.mean(), eqs[e].unit_cost.count());
    }
  }
  return result;
}

}  // namespace softborg
