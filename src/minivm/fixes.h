// Fix artifacts the hive synthesizes and pods apply (paper §3.3).
//
// Two families, mirroring the paper's examples:
//  * GuardPatch — ClearView-style [24] behaviour smoothing: at a branch
//    site on a known crash path, when the synthesized input predicate holds
//    and execution is about to take the crash direction, steer to the safe
//    side instead. Never fires on executions outside the predicate, so the
//    semantics of correct runs are untouched.
//  * LockAvoidanceFix — deadlock immunity [16]: the locks of a diagnosed
//    deadlock cycle; the pod runtime serializes entry into that lock set by
//    yielding, so the bad interleaving pattern can never re-form.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "minivm/program.h"

namespace softborg {

struct InputBound {
  std::uint16_t input = 0;
  Value lo = INT64_MIN;
  Value hi = INT64_MAX;

  bool contains(Value v) const { return v >= lo && v <= hi; }
  bool operator==(const InputBound&) const = default;
};

struct GuardPatch {
  FixId id;
  ProgramId program;
  std::uint32_t site = 0;        // branch site being guarded
  bool crash_direction = true;   // direction that leads to the failure
  std::vector<InputBound> when;  // fire only if all bounds hold (conjunction)

  bool matches(const std::vector<Value>& inputs) const {
    for (const auto& b : when) {
      if (b.input >= inputs.size() || !b.contains(inputs[b.input])) {
        return false;
      }
    }
    return true;
  }

  bool operator==(const GuardPatch&) const = default;
};

// Crash-site guard (also ClearView-style): intercept a known crash right at
// the faulting instruction. For kDiv/kMod it substitutes a fallback result
// when the divisor is zero; for kAssert/kAbort it skips the instruction
// (failure-oblivious continuation). Used when the crash condition depends on
// values a branch-steering patch cannot see (e.g. syscall results).
struct CrashGuardFix {
  enum class Action : std::uint8_t { kSubstitute = 0, kSkip = 1 };

  FixId id;
  ProgramId program;
  std::uint32_t pc = 0;
  Action action = Action::kSubstitute;
  Value fallback = 0;  // result substituted for a guarded div/mod

  bool operator==(const CrashGuardFix&) const = default;
};

struct LockAvoidanceFix {
  FixId id;
  ProgramId program;
  std::vector<std::uint16_t> cycle_locks;  // locks in the deadlock cycle

  bool covers(std::uint16_t lock) const {
    for (auto l : cycle_locks) {
      if (l == lock) return true;
    }
    return false;
  }

  bool operator==(const LockAvoidanceFix&) const = default;
};

// Everything a pod has installed for one program.
struct FixSet {
  std::vector<GuardPatch> guards;
  std::vector<CrashGuardFix> crash_guards;
  std::vector<LockAvoidanceFix> lock_fixes;

  bool empty() const {
    return guards.empty() && crash_guards.empty() && lock_fixes.empty();
  }
  std::size_t size() const {
    return guards.size() + crash_guards.size() + lock_fixes.size();
  }
};

}  // namespace softborg
