#include "sym/portfolio.h"

#include <algorithm>
#include <atomic>
#include <future>

#include "common/check.h"

namespace softborg {

PortfolioSolver::PortfolioSolver(
    std::vector<std::unique_ptr<SatSolver>> solvers)
    : solvers_(std::move(solvers)) {
  SB_CHECK(!solvers_.empty());
}

PortfolioOutcome PortfolioSolver::solve_simulated(
    const Cnf& cnf, std::uint64_t budget_ticks_per_solver) {
  PortfolioOutcome out;
  std::vector<SatOutcome> results;
  results.reserve(solvers_.size());
  for (auto& solver : solvers_) {
    results.push_back(solver->solve(cnf, budget_ticks_per_solver));
  }

  // Winner: fewest ticks among solvers that decided.
  for (std::size_t i = 0; i < results.size(); ++i) {
    out.per_solver_ticks.push_back(results[i].ticks);
    out.per_solver_status.push_back(results[i].status);
    if (results[i].status == SatStatus::kUnknown) continue;
    if (out.winner < 0 || results[i].ticks < out.wall_ticks) {
      out.winner = static_cast<int>(i);
      out.wall_ticks = results[i].ticks;
      out.status = results[i].status;
      out.model = results[i].model;
    }
  }
  if (out.winner < 0) {
    // Nobody decided within budget.
    out.wall_ticks = budget_ticks_per_solver;
  }
  // Losers are cancelled at the winner's finish time.
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::uint64_t charged = std::min(results[i].ticks, out.wall_ticks);
    out.cost_ticks += charged;
    if (static_cast<int>(i) == out.winner) continue;
    out.duplicated_ticks += charged;
    if (results[i].status != SatStatus::kUnknown &&
        results[i].ticks <= out.wall_ticks) {
      out.redundant_decisions++;
    }
  }
  return out;
}

PortfolioOutcome PortfolioSolver::solve_threaded(
    const Cnf& cnf, std::uint64_t budget_ticks_per_solver, ThreadPool& pool) {
  std::atomic<bool> cancel{false};
  std::vector<std::future<SatOutcome>> futures;
  futures.reserve(solvers_.size());
  for (auto& solver : solvers_) {
    SatSolver* s = solver.get();
    futures.push_back(pool.submit([s, &cnf, budget_ticks_per_solver,
                                   &cancel]() {
      SatOutcome r = s->solve(cnf, budget_ticks_per_solver, &cancel);
      if (r.status != SatStatus::kUnknown) {
        cancel.store(true, std::memory_order_relaxed);
      }
      return r;
    }));
  }

  PortfolioOutcome out;
  std::vector<SatOutcome> results;
  results.reserve(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    results.push_back(futures[i].get());
    const SatOutcome& r = results.back();
    out.per_solver_ticks.push_back(r.ticks);
    out.per_solver_status.push_back(r.status);
    out.cost_ticks += r.ticks;
    if (r.status == SatStatus::kUnknown) continue;
    if (out.winner < 0 || r.ticks < out.wall_ticks) {
      out.winner = static_cast<int>(i);
      out.wall_ticks = r.ticks;
      out.status = r.status;
    }
  }
  if (out.winner >= 0) out.model = std::move(results[out.winner].model);
  // Duplicated work: everything the losers burned. Threaded cancellation is
  // lazy (solvers poll the flag), so losers may run past the winner's finish
  // — and may even decide on their own before noticing; both must be split
  // out or fleet telemetry counts the same answer as multiple solves.
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (static_cast<int>(i) == out.winner) continue;
    out.duplicated_ticks += results[i].ticks;
    if (results[i].status != SatStatus::kUnknown) out.redundant_decisions++;
  }
  if (out.winner < 0) out.wall_ticks = budget_ticks_per_solver;
  return out;
}

}  // namespace softborg
