// The multi-process distributed hive (ISSUE 9): consistent-hash routing,
// bounded ingress with priority shedding, credit-based backpressure, and
// the socket transport — held to the repo's differential standard. The
// SimNet leg (deterministic in-process test double) and the socket leg
// (real fork()ed shard processes over unix-domain sockets) run the same
// router/worker code over the same traffic and must produce byte-identical
// per-shard trees and equal HiveStats — including across worker
// ingest-thread counts, and across a SIGKILL + restart-from-snapshot of a
// shard process.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <thread>

#include "common/rng.h"
#include "dist/bounded_queue.h"
#include "dist/channel.h"
#include "dist/control.h"
#include "dist/ring.h"
#include "dist/router.h"
#include "dist/socket.h"
#include "dist/worker.h"
#include "minivm/corpus.h"
#include "minivm/interp.h"
#include "net/simnet.h"
#include "trace/codec.h"

namespace softborg::dist {
namespace {

namespace fs = std::filesystem;

// --- consistent-hash ring ---------------------------------------------------

TEST(HashRing, SpreadsKeysRoughlyEvenly) {
  HashRing ring(4);
  std::vector<std::size_t> hits(4, 0);
  for (std::uint64_t key = 0; key < 40'000; ++key) hits[ring.owner(key)]++;
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(hits[s], 5'000u) << "shard " << s;  // perfect would be 10'000
    EXPECT_LT(hits[s], 15'000u) << "shard " << s;
  }
}

TEST(HashRing, OwnerIsDeterministic) {
  HashRing a(8), b(8);
  for (std::uint64_t key = 0; key < 1'000; ++key) {
    EXPECT_EQ(a.owner(key), b.owner(key));
  }
}

TEST(HashRing, AddShardMovesOnlyToTheNewcomer) {
  // The reason the ring exists: growing the fleet re-keys ~1/(n+1) of the
  // space, and every moved key moves TO the new shard — never between old
  // shards (which would invalidate trees the old shards already own).
  HashRing ring(4);
  std::vector<std::size_t> before;
  for (std::uint64_t key = 0; key < 20'000; ++key) {
    before.push_back(ring.owner(key));
  }
  ring.add_shard();
  ASSERT_EQ(ring.num_shards(), 5u);
  std::size_t moved = 0;
  for (std::uint64_t key = 0; key < 20'000; ++key) {
    const std::size_t now = ring.owner(key);
    if (now != before[key]) {
      EXPECT_EQ(now, 4u) << "key " << key << " moved between old shards";
      moved++;
    }
  }
  EXPECT_GT(moved, 20'000 / 10);  // ~1/5 of the space, generously bracketed
  EXPECT_LT(moved, 20'000 / 3);
}

// --- bounded queue ----------------------------------------------------------

Bytes tag(std::uint8_t v) { return Bytes{v}; }

TEST(BoundedQueue, FifoDispatchRegardlessOfPriority) {
  // Priority affects only shedding; admitted traffic keeps arrival order
  // (the socket-vs-SimNet differential depends on this).
  BoundedTraceQueue q(8);
  q.push(TracePriority::kRoutine, tag(1));
  q.push(TracePriority::kFailure, tag(2));
  q.push(TracePriority::kGuided, tag(3));
  EXPECT_EQ(q.pop()->wire, tag(1));
  EXPECT_EQ(q.pop()->wire, tag(2));
  EXPECT_EQ(q.pop()->wire, tag(3));
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, ShedsLowestPriorityWhenFull) {
  BoundedTraceQueue q(2);
  q.push(TracePriority::kRoutine, tag(1));
  q.push(TracePriority::kRoutine, tag(2));
  // A failure trace arrives at a full queue: the NEWEST routine entry is
  // displaced (FIFO within the surviving class), the failure is admitted.
  q.push(TracePriority::kFailure, tag(3));
  EXPECT_EQ(q.shed_total(), 1u);
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.pop()->wire, tag(1));
  EXPECT_EQ(q.pop()->wire, tag(3));
}

TEST(BoundedQueue, ArrivalIsShedWhenItIsTheLeastValuable) {
  BoundedTraceQueue q(2);
  q.push(TracePriority::kFailure, tag(1));
  q.push(TracePriority::kGuided, tag(2));
  q.push(TracePriority::kRoutine, tag(3));  // outranked by everything queued
  EXPECT_EQ(q.shed_total(), 1u);
  EXPECT_EQ(q.pop()->wire, tag(1));
  EXPECT_EQ(q.pop()->wire, tag(2));
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, DepthNeverExceedsCapacity) {
  Rng rng(7);
  BoundedTraceQueue q(16);
  for (int i = 0; i < 1'000; ++i) {
    q.push(static_cast<TracePriority>(rng.next_below(3)),
           tag(static_cast<std::uint8_t>(i)));
    EXPECT_LE(q.depth(), 16u);
    if (rng.next_below(4) == 0) q.pop();
  }
  EXPECT_LE(q.max_depth(), 16u);
  EXPECT_GT(q.shed_total(), 0u);
}

// --- control codecs ---------------------------------------------------------

TEST(Control, HelloRoundTrips) {
  const HelloMsg m{3, 512, true};
  const auto back = decode_hello(encode_hello(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
  EXPECT_FALSE(decode_hello(Bytes{0x80}).has_value());  // truncated varint
  Bytes trailing = encode_hello(m);
  trailing.push_back(0);
  EXPECT_FALSE(decode_hello(trailing).has_value());
}

TEST(Control, WorkerStatsRoundTrip) {
  WorkerStatsMsg m;
  m.shard_index = 2;
  m.ingested = 12'345;
  m.shed = 67;
  m.queue_max_depth = 890;
  m.batches = 99;
  m.snapshots_written = 3;
  m.hive.traces_ingested = 12'345;
  m.hive.bugs_found = 17;
  m.hive.new_paths = 4'242;
  const auto back = decode_worker_stats(encode_worker_stats(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
  EXPECT_FALSE(decode_worker_stats(Bytes{1, 2}).has_value());
}

// --- fleet harness ----------------------------------------------------------

std::vector<Bytes> make_workload(const std::vector<CorpusEntry>& corpus,
                                 std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> wires;
  wires.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CorpusEntry& entry = corpus[rng.next_below(corpus.size())];
    ExecConfig cfg;
    for (const auto& d : entry.domains) {
      cfg.inputs.push_back(rng.next_in(d.lo, d.hi));
    }
    cfg.seed = seed * 1'000'000 + i;
    auto result = execute(entry.program, cfg);
    result.trace.id = TraceId(i + 1);
    result.trace.day = i % 7;
    wires.push_back(encode_trace(result.trace));
  }
  return wires;
}

struct LegResult {
  std::vector<Bytes> trees;             // per shard, Hive::save_trees wire
  std::vector<WorkerStatsMsg> stats;    // per shard
  RouterStats router;
};

void expect_equivalent(const LegResult& a, const LegResult& b) {
  // The comparison surface of ISSUE 9: byte-identical trees and equal
  // HiveStats per shard, modulo timing (batch counts and queue depths are
  // scheduling artifacts and deliberately excluded).
  ASSERT_EQ(a.trees.size(), b.trees.size());
  for (std::size_t i = 0; i < a.trees.size(); ++i) {
    EXPECT_EQ(a.trees[i], b.trees[i]) << "shard " << i << " trees diverge";
    EXPECT_TRUE(a.stats[i].hive == b.stats[i].hive) << "shard " << i;
    EXPECT_EQ(a.stats[i].ingested, b.stats[i].ingested) << "shard " << i;
    EXPECT_EQ(a.stats[i].shed, b.stats[i].shed) << "shard " << i;
  }
  EXPECT_EQ(a.router.received, b.router.received);
  EXPECT_EQ(a.router.forwarded, b.router.forwarded);
  EXPECT_EQ(a.router.shed, b.router.shed);
}

LegResult collect_reports(TraceRouter& router) {
  LegResult out;
  out.router = router.stats();
  for (const auto& report : router.reports()) {
    EXPECT_TRUE(report.closed);
    out.trees.push_back(report.trees_wire);
    const auto stats = decode_worker_stats(report.stats_wire);
    EXPECT_TRUE(stats.has_value());
    out.stats.push_back(stats.value_or(WorkerStatsMsg{}));
  }
  return out;
}

// Runs the full protocol in-process over SimNet with fixed latency (the
// deterministic config: equal latency preserves send order, so per-shard
// ingestion sequences match the order-preserving socket transport).
LegResult run_simnet_leg(const std::vector<CorpusEntry>& corpus,
                         const std::vector<Bytes>& wires,
                         std::size_t num_shards, std::size_t ingest_threads,
                         RouterConfig router_config = {},
                         WorkerConfig worker_template = {}) {
  NetConfig net_config;
  net_config.min_latency_ticks = 1;
  net_config.max_latency_ticks = 1;
  SimNet net(net_config);
  TraceRouter router(num_shards, router_config);
  std::vector<std::unique_ptr<ShardWorker>> workers;
  std::vector<std::unique_ptr<SimNetChannel>> worker_ch;
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto [router_side, worker_side] = make_simnet_channel_pair(net);
    router.connect_shard(i, std::move(router_side));
    worker_ch.push_back(std::move(worker_side));
    WorkerConfig cfg = worker_template;
    cfg.hive.ingest_threads = ingest_threads;
    workers.push_back(std::make_unique<ShardWorker>(i, &corpus, cfg));
    workers.back()->send_hello(*worker_ch.back());
  }
  auto round = [&] {
    net.step();
    router.pump();
    for (std::size_t i = 0; i < num_shards; ++i) {
      workers[i]->pump(*worker_ch[i]);
    }
  };
  std::size_t sent = 0;
  while (sent < wires.size()) {
    const std::size_t burst = std::min<std::size_t>(64, wires.size() - sent);
    for (std::size_t i = 0; i < burst; ++i) {
      router.route_wire(wires[sent + i]);
    }
    sent += burst;
    round();
  }
  for (int i = 0; i < 10'000 && !router.quiescent(); ++i) round();
  EXPECT_TRUE(router.quiescent());
  router.broadcast_shutdown();
  for (int i = 0; i < 10'000 && !router.all_reports_in(); ++i) round();
  EXPECT_TRUE(router.all_reports_in());
  return collect_reports(router);
}

// --- SimNet-leg determinism -------------------------------------------------

TEST(DistFleet, ByteIdenticalAcrossWorkerThreadCounts) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 256, 11);
  const auto baseline = run_simnet_leg(corpus, wires, 4, 1);
  EXPECT_GT(baseline.router.forwarded, 0u);
  EXPECT_EQ(baseline.router.shed, 0u);
  std::uint64_t total = 0;
  for (const auto& s : baseline.stats) total += s.ingested;
  EXPECT_EQ(total, wires.size());
  for (const std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    const auto run = run_simnet_leg(corpus, wires, 4, threads);
    expect_equivalent(baseline, run);
  }
}

TEST(DistFleet, RepeatRunsAreByteIdentical) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 128, 23);
  expect_equivalent(run_simnet_leg(corpus, wires, 2, 2),
                    run_simnet_leg(corpus, wires, 2, 2));
}

// --- backpressure & shedding ------------------------------------------------

TEST(DistFleet, OverloadShedsAndStaysBounded) {
  // 2x-overload shape: a tiny queue and a worker that stops pumping. The
  // router must stall on credit, cap the queue, shed the excess, and still
  // finish the run (bounded memory, no wedge).
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 300, 31);
  NetConfig net_config;
  net_config.min_latency_ticks = 1;
  net_config.max_latency_ticks = 1;
  SimNet net(net_config);
  RouterConfig router_config;
  router_config.queue_capacity = 32;
  TraceRouter router(1, router_config);
  auto [router_side, worker_side] = make_simnet_channel_pair(net);
  router.connect_shard(0, std::move(router_side));
  WorkerConfig worker_config;
  worker_config.credit_window = 8;
  ShardWorker worker(0, &corpus, worker_config);
  worker.send_hello(*worker_side);
  // Let the hello land, then firehose without letting the worker run.
  for (int i = 0; i < 3; ++i) {
    net.step();
    router.pump();
  }
  for (const auto& wire : wires) {
    router.route_wire(wire);
    router.pump();
    net.step();
    EXPECT_LE(router.total_queue_depth(), 32u);
  }
  const auto& s = router.stats();
  EXPECT_GT(s.shed, 0u);
  EXPECT_GT(s.backpressure_stalls, 0u);
  EXPECT_LE(s.queue_depth_peak, 32u);
  EXPECT_LE(s.forwarded, 8u);  // the credit window held the line
  // The worker wakes up: the fleet drains what was admitted and completes.
  for (int i = 0; i < 10'000 && !router.quiescent(); ++i) {
    net.step();
    router.pump();
    worker.pump(*worker_side);
  }
  EXPECT_TRUE(router.quiescent());
  EXPECT_EQ(s.received, wires.size());
  EXPECT_EQ(s.forwarded + s.shed, s.received);
}

// --- socket transport -------------------------------------------------------

std::string test_socket_addr(const char* tag) {
  return "unix:" + (fs::temp_directory_path() /
                    ("sb_dist_" + std::string(tag) + "_" +
                     std::to_string(::getpid()) + ".sock"))
                       .string();
}

TEST(SocketChannel, RoundTripsOverUnixSocket) {
  const std::string addr = test_socket_addr("rt");
  Listener listener(addr);
  auto client = dial(addr);
  ASSERT_NE(client, nullptr);
  std::unique_ptr<SocketChannel> server;
  for (int i = 0; i < 1'000 && server == nullptr; ++i) {
    server = listener.accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_NE(server, nullptr);
  client->send(kMsgTrace, Bytes{1, 2, 3}, 0);
  client->send(kMsgCredit, Bytes{}, 42);
  std::vector<Delivery> got;
  for (int i = 0; i < 1'000 && got.size() < 2; ++i) {
    for (auto& d : server->poll()) got.push_back(std::move(d));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, static_cast<std::uint32_t>(kMsgTrace));
  EXPECT_EQ(got[0].payload, (Bytes{1, 2, 3}));
  EXPECT_EQ(got[1].credit, 42u);
  EXPECT_TRUE(client->alive() && server->alive());
  client.reset();  // close → EOF at the server
  for (int i = 0; i < 1'000 && server->alive(); ++i) {
    server->poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(server->alive());
}

// Socket-leg fixture: forked shard worker processes over a unix socket,
// router in the test process.
class DistSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    snapshot_root_ = (fs::temp_directory_path() /
                      ("sb_dist_snap_" +
                       std::string(::testing::UnitTest::GetInstance()
                                       ->current_test_info()
                                       ->name())))
                         .string();
    fs::remove_all(snapshot_root_);
  }
  void TearDown() override {
    for (const int pid : pids_) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
    fs::remove_all(snapshot_root_);
  }

  int spawn(std::size_t index, const std::vector<CorpusEntry>& corpus,
            const WorkerConfig& config, const std::string& addr) {
    const int pid = spawn_worker_process(index, &corpus, config, addr);
    EXPECT_GT(pid, 0);
    pids_.push_back(pid);
    return pid;
  }

  void reap(int pid) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "worker exited with status " << status;
    std::erase(pids_, pid);
  }

  // One router round over sockets: accept new peers, pump, breathe.
  void round(Listener& listener, TraceRouter& router) {
    while (auto ch = listener.accept()) {
      router.add_unidentified(std::move(ch));
    }
    router.pump();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  bool wait_until(Listener& listener, TraceRouter& router,
                  const std::function<bool()>& done, int timeout_ms = 20'000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!done()) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      round(listener, router);
    }
    return true;
  }

  std::string snapshot_root_;
  std::vector<int> pids_;
};

TEST_F(DistSocketTest, SocketLegMatchesSimNetLeg) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 192, 41);
  const std::size_t kShards = 3;
  const auto simnet = run_simnet_leg(corpus, wires, kShards, 2);

  const std::string addr = test_socket_addr("diff");
  Listener listener(addr);
  TraceRouter router(kShards);
  WorkerConfig worker_config;
  worker_config.hive.ingest_threads = 2;
  std::vector<int> pids;
  for (std::size_t i = 0; i < kShards; ++i) {
    pids.push_back(spawn(i, corpus, worker_config, addr));
  }
  ASSERT_TRUE(wait_until(listener, router, [&] {
    for (std::size_t i = 0; i < kShards; ++i) {
      if (!router.shard_alive(i)) return false;
    }
    return true;
  })) << "workers never connected";
  for (const auto& wire : wires) {
    router.route_wire(wire);
    round(listener, router);
  }
  ASSERT_TRUE(wait_until(listener, router, [&] { return router.quiescent(); }))
      << "fleet never drained";
  router.broadcast_shutdown();
  ASSERT_TRUE(
      wait_until(listener, router, [&] { return router.all_reports_in(); }))
      << "closing reports never arrived";
  const auto socket_leg = collect_reports(router);
  for (const int pid : pids) reap(pid);

  expect_equivalent(simnet, socket_leg);
  EXPECT_EQ(socket_leg.router.shed, 0u);
}

TEST_F(DistSocketTest, SigkillRestartResumesFromSnapshotByteIdentically) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 160, 53);
  const std::size_t kShards = 2;
  const std::size_t half = wires.size() / 2;

  // Reference: the uninterrupted SimNet leg over the same traffic.
  const auto simnet = run_simnet_leg(corpus, wires, kShards, 1);

  const std::string addr = test_socket_addr("kill");
  Listener listener(addr);
  TraceRouter router(kShards);
  std::vector<WorkerConfig> configs(kShards);
  std::vector<int> pids(kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    configs[i].snapshot_dir = snapshot_root_ + "/shard" + std::to_string(i);
    pids[i] = spawn(i, corpus, configs[i], addr);
  }
  ASSERT_TRUE(wait_until(listener, router, [&] {
    return router.shard_alive(0) && router.shard_alive(1);
  }));

  // Phase 1: first half, fully drained (credits settled = all ingested).
  for (std::size_t i = 0; i < half; ++i) {
    router.route_wire(wires[i]);
    round(listener, router);
  }
  ASSERT_TRUE(wait_until(listener, router, [&] { return router.quiescent(); }));

  // Durable checkpoint, then murder shard 0.
  router.request_snapshots();
  ASSERT_TRUE(wait_until(listener, router,
                         [&] { return router.snapshot_acks() >= kShards; }));
  ASSERT_EQ(::kill(pids[0], SIGKILL), 0);
  ASSERT_EQ(::waitpid(pids[0], nullptr, 0), pids[0]);
  std::erase(pids_, pids[0]);

  // The router notices the corpse (EOF on poll) and sheds traffic for it
  // instead of wedging. Probe with traces owned by shard 0 — shed traffic
  // never reaches a hive, so the differential below stays intact.
  ASSERT_TRUE(wait_until(listener, router, [&] {
    return !router.shard_alive(0);
  })) << "router never detected the dead shard";
  HashRing ring(kShards);
  std::size_t probes = 0;
  for (std::size_t i = 0; i < half && probes < 5; ++i) {
    const auto summary = summarize_trace_wire(wires[i]);
    ASSERT_TRUE(summary.has_value());
    if (ring.owner(summary->program.value) != 0) continue;
    router.route_wire(wires[i]);  // duplicate id: would be deduped anyway
    probes++;
  }
  ASSERT_GT(probes, 0u);
  round(listener, router);
  EXPECT_GT(router.stats().shed, 0u);

  // Restart shard 0 from its snapshot; it re-hellos and service resumes.
  pids[0] = spawn(0, corpus, configs[0], addr);
  ASSERT_TRUE(wait_until(listener, router, [&] {
    return router.shard_alive(0);
  })) << "restarted worker never re-announced";

  // Phase 2: second half, then the normal shutdown protocol.
  for (std::size_t i = half; i < wires.size(); ++i) {
    router.route_wire(wires[i]);
    round(listener, router);
  }
  ASSERT_TRUE(wait_until(listener, router, [&] { return router.quiescent(); }));
  router.broadcast_shutdown();
  ASSERT_TRUE(
      wait_until(listener, router, [&] { return router.all_reports_in(); }));
  const auto socket_leg = collect_reports(router);
  for (std::size_t i = 0; i < kShards; ++i) reap(pids[i]);

  // The kill + warm restart is invisible in the results: byte-identical
  // trees, equal hive stats, nothing ingested twice, nothing lost — only
  // the router's shed counter remembers the outage window.
  ASSERT_EQ(socket_leg.trees.size(), simnet.trees.size());
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(socket_leg.trees[i], simnet.trees[i]) << "shard " << i;
    EXPECT_TRUE(socket_leg.stats[i].hive == simnet.stats[i].hive)
        << "shard " << i;
    EXPECT_EQ(socket_leg.stats[i].ingested, simnet.stats[i].ingested)
        << "shard " << i;
  }
  EXPECT_GT(socket_leg.stats[0].snapshots_written, 0u);
  EXPECT_EQ(socket_leg.router.forwarded + socket_leg.router.shed,
            socket_leg.router.received);
}

}  // namespace
}  // namespace softborg::dist
