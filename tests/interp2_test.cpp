// Second interpreter suite: environment model, parameterized granularity
// sweeps, schedule plans, check-site recording, and the hive status report.
#include <gtest/gtest.h>

#include "hive/report.h"
#include "minivm/builder.h"
#include "minivm/corpus.h"
#include "minivm/env.h"
#include "minivm/interp.h"

namespace softborg {
namespace {

// ----------------------------------------------------------------- env -----

TEST(EnvModel, DefaultSpecsCoverFourSyscalls) {
  const EnvModel& env = default_env();
  EXPECT_GE(env.num_syscalls(), 4u);
}

TEST(EnvModel, ArgBoundedResultsStayWithinArg) {
  const EnvModel env;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const Value arg = rng.next_in(0, 100);
    const Value r = env.call(0, arg, static_cast<std::uint32_t>(i), rng,
                             nullptr);
    EXPECT_LE(r, arg);
    EXPECT_GE(r, -1);
  }
}

TEST(EnvModel, FailureRateApproximatesSpec) {
  const EnvModel env;
  Rng rng(5);
  int failures = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (env.call(3, 100, static_cast<std::uint32_t>(i), rng, nullptr) < 0) {
      failures++;
    }
  }
  EXPECT_NEAR(static_cast<double>(failures) / n, 0.10, 0.01);
}

TEST(EnvModel, FaultPlanOverridesEverything) {
  const EnvModel env;
  Rng rng(7);
  FaultPlan plan;
  plan.forced[5] = 4242;
  EXPECT_EQ(env.call(0, 10, 5, rng, &plan), 4242);
  // Other call indices unaffected by the plan.
  const Value r = env.call(0, 10, 6, rng, &plan);
  EXPECT_LE(r, 10);
}

TEST(EnvModel, ClassifyShortAndFailed) {
  const EnvModel env;
  EXPECT_EQ(env.classify(0, 100, -1), -1);  // failure
  EXPECT_EQ(env.classify(0, 100, 40), 1);   // short read
  EXPECT_EQ(env.classify(0, 100, 100), 0);  // nominal
  EXPECT_EQ(env.classify(2, 0, 12345), 0);  // clock: not arg-bounded
}

TEST(EnvModel, UnknownSyscallGetsDefaultSpec) {
  const EnvModel env;
  Rng rng(9);
  const Value r = env.call(999, 5, 0, rng, nullptr);
  EXPECT_GE(r, -1);
  EXPECT_LE(r, 1 << 10);
}

// ----------------------------------------------- granularity sweep ---------

struct SweepCase {
  const char* program;
  Granularity granularity;
};

class GranularitySweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  CorpusEntry entry() const {
    for (auto& e : standard_corpus()) {
      if (e.program.name == GetParam().program) return e;
    }
    SB_CHECK(false);
    return make_media_parser();
  }
};

TEST_P(GranularitySweep, OutcomeIndependentOfRecording) {
  // Recording granularity must never change behaviour, only what is
  // captured (the probe effect would poison the whole methodology).
  const auto e = entry();
  Rng rng(11);
  for (int round = 0; round < 30; ++round) {
    std::vector<Value> inputs;
    for (const auto& d : e.domains) inputs.push_back(rng.next_in(d.lo, d.hi));
    const std::uint64_t seed = rng();

    ExecConfig base;
    base.inputs = inputs;
    base.seed = seed;
    base.granularity = Granularity::kNone;
    const auto reference = execute(e.program, base);

    ExecConfig probed = base;
    probed.granularity = GetParam().granularity;
    const auto result = execute(e.program, probed);

    EXPECT_EQ(result.trace.outcome, reference.trace.outcome);
    EXPECT_EQ(result.outputs, reference.outputs);
    EXPECT_EQ(result.trace.steps, reference.trace.steps);
  }
}

TEST_P(GranularitySweep, BitsMonotoneInGranularity) {
  const auto e = entry();
  Rng rng(13);
  for (int round = 0; round < 10; ++round) {
    std::vector<Value> inputs;
    for (const auto& d : e.domains) inputs.push_back(rng.next_in(d.lo, d.hi));
    const std::uint64_t seed = rng();
    auto bits_at = [&](Granularity g) {
      ExecConfig cfg;
      cfg.inputs = inputs;
      cfg.seed = seed;
      cfg.granularity = g;
      return execute(e.program, cfg).trace.branch_bits.size();
    };
    EXPECT_EQ(bits_at(Granularity::kNone), 0u);
    EXPECT_LE(bits_at(Granularity::kTaintedBranches),
              bits_at(Granularity::kAllBranches));
    EXPECT_EQ(bits_at(Granularity::kAllBranches),
              bits_at(Granularity::kFull));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, GranularitySweep,
    ::testing::Values(SweepCase{"media_parser", Granularity::kTaintedBranches},
                      SweepCase{"media_parser", Granularity::kAllBranches},
                      SweepCase{"media_parser", Granularity::kFull},
                      SweepCase{"file_copier", Granularity::kTaintedBranches},
                      SweepCase{"file_copier", Granularity::kFull},
                      SweepCase{"bank_transfer", Granularity::kFull},
                      SweepCase{"worker_pool", Granularity::kAllBranches},
                      SweepCase{"race_counter", Granularity::kFull}),
    [](const auto& info) {
      std::string name = info.param.program;
      name += "_g";
      name += std::to_string(static_cast<int>(info.param.granularity));
      return name;
    });

// ------------------------------------------------ check-site recording -----

TEST(CheckSites, TaintedAssertRecordsSurviveBit) {
  ProgramBuilder b("chk");
  const Reg x = b.reg(), t = b.reg();
  b.input(x, b.input_slot());
  b.cmp_lt_const(t, x, 100);
  b.assert_true(t, 1);
  b.halt();
  const Program p = b.build();

  ExecConfig cfg;
  cfg.inputs = {5};  // passes
  const auto ok = execute(p, cfg);
  EXPECT_EQ(ok.trace.outcome, Outcome::kOk);
  ASSERT_EQ(ok.trace.branch_bits.size(), 1u);
  EXPECT_TRUE(ok.trace.branch_bits[0]);  // survived

  cfg.inputs = {150};  // fails
  const auto crash = execute(p, cfg);
  EXPECT_EQ(crash.trace.outcome, Outcome::kCrash);
  ASSERT_EQ(crash.trace.branch_bits.size(), 1u);
  EXPECT_FALSE(crash.trace.branch_bits[0]);  // crashed
}

TEST(CheckSites, UntaintedAssertRecordsNothing) {
  ProgramBuilder b("chk2");
  const Reg x = b.reg();
  b.const_(x, 1);
  b.assert_true(x, 1);
  b.halt();
  const auto result = execute(b.build(), {});
  EXPECT_EQ(result.trace.branch_bits.size(), 0u);
}

TEST(CheckSites, TaintedDivRecordsSurviveBit) {
  ProgramBuilder b("chk3");
  const Reg x = b.reg(), d = b.reg(), hundred = b.reg();
  b.input(x, b.input_slot());
  b.const_(hundred, 100);
  b.div(d, hundred, x);
  b.output(d);
  b.halt();
  const Program p = b.build();

  ExecConfig cfg;
  cfg.inputs = {4};
  const auto ok = execute(p, cfg);
  ASSERT_EQ(ok.trace.branch_bits.size(), 1u);
  EXPECT_TRUE(ok.trace.branch_bits[0]);
  EXPECT_EQ(ok.outputs[0], 25);

  cfg.inputs = {0};
  const auto crash = execute(p, cfg);
  EXPECT_EQ(crash.trace.outcome, Outcome::kCrash);
  ASSERT_EQ(crash.trace.branch_bits.size(), 1u);
  EXPECT_FALSE(crash.trace.branch_bits[0]);
}

TEST(CheckSites, DistinctOutcomesAreDistinctTreePaths) {
  // The soundness property the fuzzer once broke: same branch decisions,
  // different assert outcomes => different decision streams.
  ProgramBuilder b("chk4");
  const Reg x = b.reg(), t = b.reg();
  b.input(x, b.input_slot());
  b.cmp_lt_const(t, x, 100);
  b.assert_true(t, 1);
  b.output(x);
  b.halt();
  const Program p = b.build();

  ExecConfig pass_cfg, crash_cfg;
  pass_cfg.inputs = {5};
  crash_cfg.inputs = {150};
  const auto pass = execute(p, pass_cfg);
  const auto crash = execute(p, crash_cfg);
  EXPECT_NE(pass.trace.branch_bits, crash.trace.branch_bits);
}

// ---------------------------------------------------------------- report ---

TEST(Report, RendersBugAndProofLedgers) {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_media_parser());
  Hive hive(&corpus);

  const auto cert = hive.attempt_proof(corpus[0].program.id,
                                       Property::kAlwaysTerminates);
  ASSERT_TRUE(cert.publishable());

  ExecConfig cfg;
  cfg.inputs = {13, 250};
  auto result = execute(corpus[0].program, cfg);
  result.trace.id = TraceId(1);
  hive.ingest(result.trace);
  hive.process();

  const std::string report = hive_status_report(hive);
  EXPECT_NE(report.find("=== hive status ==="), std::string::npos);
  EXPECT_NE(report.find("[FIXED]"), std::string::npos);
  EXPECT_NE(report.find("div-by-zero"), std::string::npos);
  EXPECT_NE(report.find("[REVOKED]"), std::string::npos);
  EXPECT_NE(report.find("always-terminates"), std::string::npos);
}

TEST(Report, EmptyHiveRendersPlaceholders) {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_media_parser());
  Hive hive(&corpus);
  const std::string report = hive_status_report(hive);
  EXPECT_NE(report.find("no bugs recorded"), std::string::npos);
  EXPECT_NE(report.find("no certificates published"), std::string::npos);
  EXPECT_NE(report.find("repair lab: empty"), std::string::npos);
  EXPECT_NE(report.find("pipeline: 0 batches"), std::string::npos);
  EXPECT_NE(report.find("proof closure: 0 attempts"), std::string::npos);
  EXPECT_NE(report.find("telemetry: "), std::string::npos);
}

TEST(Report, NetworkOverloadAppendsDeliveryLossLine) {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_media_parser());
  Hive hive(&corpus);
  NetStats net;
  net.sent = 100;
  net.delivered = 90;
  net.blocked_at_send = 4;
  net.dropped_in_flight = 5;
  net.dropped = 1;
  net.bytes_sent = 12345;
  const std::string report = hive_status_report(hive, net);
  EXPECT_NE(report.find("network: 100 sent, 90 delivered"),
            std::string::npos);
  EXPECT_NE(report.find("4 blocked at send"), std::string::npos);
  EXPECT_NE(report.find("5 dropped in flight"), std::string::npos);
  EXPECT_NE(report.find("1 dropped at random"), std::string::npos);
}

TEST(Report, RepairLabEntriesListed) {
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_race_counter());
  Hive hive(&corpus);
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    ExecConfig cfg;
    cfg.seed = seed;
    auto result = execute(corpus[0].program, cfg);
    if (result.trace.outcome == Outcome::kCrash) {
      result.trace.id = TraceId(seed);
      hive.ingest(result.trace);
      break;
    }
  }
  hive.process();
  const std::string report = repair_lab_report(hive);
  EXPECT_NE(report.find("awaiting a human"), std::string::npos);
}

}  // namespace
}  // namespace softborg
