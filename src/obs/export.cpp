#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "common/fsio.h"
#include "common/log.h"
#include "obs/trace.h"

namespace softborg::obs {

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names are
// dot-separated lowercase paths; dots (and any other outlaw byte) become
// underscores, and every name gets the softborg_ prefix.
std::string prometheus_name(const std::string& name) {
  std::string out = "softborg_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// Shortest-round-trip-ish rendering; JSON has no NaN/Inf, clamp to 0.
std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) c = ' ';
    out.push_back(c);
  }
  return out;
}

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    const std::string name = prometheus_name(c.name);
    append(out, "# TYPE %s counter\n", name.c_str());
    append(out, "%s %llu\n", name.c_str(),
           static_cast<unsigned long long>(c.value));
  }
  for (const auto& g : snap.gauges) {
    const std::string name = prometheus_name(g.name);
    append(out, "# TYPE %s gauge\n", name.c_str());
    append(out, "%s %lld\n", name.c_str(), static_cast<long long>(g.value));
  }
  for (const auto& h : snap.histograms) {
    const std::string name = prometheus_name(h.name);
    append(out, "# TYPE %s summary\n", name.c_str());
    for (const auto& [q, p] : std::initializer_list<std::pair<double, double>>{
             {0.5, 50.0}, {0.9, 90.0}, {0.99, 99.0}}) {
      append(out, "%s{quantile=\"%g\"} %s\n", name.c_str(), q,
             number(h.hist.percentile(p)).c_str());
    }
    append(out, "%s_sum %s\n", name.c_str(), number(h.hist.sum()).c_str());
    append(out, "%s_count %llu\n", name.c_str(),
           static_cast<unsigned long long>(h.hist.count()));
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"schema\": \"softborg.metrics.v1\",\n";
  out += "  \"counters\": [";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const auto& c = snap.counters[i];
    append(out, "%s\n    {\"name\": \"%s\", \"value\": %llu}",
           i == 0 ? "" : ",", json_escape(c.name).c_str(),
           static_cast<unsigned long long>(c.value));
  }
  out += snap.counters.empty() ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    const auto& g = snap.gauges[i];
    append(out, "%s\n    {\"name\": \"%s\", \"value\": %lld}",
           i == 0 ? "" : ",", json_escape(g.name).c_str(),
           static_cast<long long>(g.value));
  }
  out += snap.gauges.empty() ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    append(out, "%s\n    {\"name\": \"%s\", \"count\": %llu, \"sum\": %s, ",
           i == 0 ? "" : ",", json_escape(h.name).c_str(),
           static_cast<unsigned long long>(h.hist.count()),
           number(h.hist.sum()).c_str());
    append(out, "\"p50\": %s, \"p90\": %s, \"p99\": %s, \"max\": %s}",
           number(h.hist.percentile(50)).c_str(),
           number(h.hist.percentile(90)).c_str(),
           number(h.hist.percentile(99)).c_str(),
           number(h.hist.max_seen()).c_str());
  }
  out += snap.histograms.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

namespace {

// One rendered timeline entry (slice or instant) on the shared clock axis.
struct TimelineEvent {
  double ts_us = 0;
  double dur_us = -1;  // >= 0 marks a complete ("X") slice
  std::uint64_t pid = 0;
  std::uint32_t tid = 0;
  const char* name = "";
  std::uint64_t trace_id = 0;
  std::uint16_t hop_path = 0;
  std::uint32_t arg = 0;
  std::uint64_t arg2 = 0;
};

// Union of the 4-bit hop codes packed into a hop path.
std::uint32_t hop_mask(std::uint16_t hop_path) {
  std::uint32_t mask = 0;
  for (std::uint32_t p = hop_path; p != 0; p >>= 4) mask |= 1u << (p & 0xf);
  return mask;
}

}  // namespace

std::string to_chrome_trace(const std::vector<RecorderDump>& dumps,
                            ChromeTraceStats* stats) {
  std::vector<TimelineEvent> events;
  // Pass 1: shift every process onto the shared wall-clock axis, pair span
  // begin/end into slices, turn everything else into instants.
  std::int64_t min_ns = 0;
  bool have_min = false;
  for (const RecorderDump& d : dumps) {
    const std::int64_t offset_ns = static_cast<std::int64_t>(d.real_ns) -
                                   static_cast<std::int64_t>(d.mono_ns);
    const auto span_name = [&](std::uint32_t id) {
      return id < d.names.size() && !d.names[id].empty()
                 ? d.names[id].c_str()
                 : "span";
    };
    for (const RecorderDump::ThreadEvents& t : d.threads) {
      struct OpenSpan {
        std::uint32_t name_arg;
        std::int64_t ts_ns;
        std::uint64_t trace_id;
        std::uint16_t hop_path;
      };
      std::vector<OpenSpan> open;
      for (const RecorderEvent& e : t.events) {
        const std::int64_t ts_ns =
            static_cast<std::int64_t>(e.ts_ns) + offset_ns;
        if (!have_min || ts_ns < min_ns) {
          min_ns = ts_ns;
          have_min = true;
        }
        const auto kind = static_cast<EventKind>(e.kind);
        if (kind == EventKind::kSpanBegin) {
          open.push_back({e.arg, ts_ns, e.trace_id, e.hop_path});
        } else if (kind == EventKind::kSpanEnd) {
          // The ring may have overwritten the begin; only a matching top
          // closes a slice, anything else is dropped rather than guessed at.
          if (!open.empty() && open.back().name_arg == e.arg) {
            const OpenSpan b = open.back();
            open.pop_back();
            TimelineEvent ev;
            ev.ts_us = static_cast<double>(b.ts_ns) / 1e3;
            ev.dur_us = static_cast<double>(ts_ns - b.ts_ns) / 1e3;
            ev.pid = d.pid;
            ev.tid = t.tid;
            ev.name = span_name(b.name_arg);
            ev.trace_id = b.trace_id;
            ev.hop_path = b.hop_path;
            events.push_back(ev);
          }
        } else {
          TimelineEvent ev;
          ev.ts_us = static_cast<double>(ts_ns) / 1e3;
          ev.pid = d.pid;
          ev.tid = t.tid;
          ev.name = event_kind_name(kind);
          ev.trace_id = e.trace_id;
          ev.hop_path = e.hop_path;
          ev.arg = e.arg;
          ev.arg2 = e.arg2;
          events.push_back(ev);
        }
      }
      // Spans still open at flush time have no end stamp — dropped.
    }
  }
  const double base_us = have_min ? static_cast<double>(min_ns) / 1e3 : 0.0;
  for (TimelineEvent& e : events) e.ts_us -= base_us;
  std::stable_sort(events.begin(), events.end(),
                   [](const TimelineEvent& a, const TimelineEvent& b) {
                     return a.ts_us < b.ts_us;
                   });

  // Pass 2: group by causal trace id for flow arrows + chain accounting.
  std::map<std::uint64_t, std::vector<std::size_t>> by_trace;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].trace_id != 0) by_trace[events[i].trace_id].push_back(i);
  }
  ChromeTraceStats st;
  st.processes = dumps.size();
  st.events = events.size();
  constexpr std::uint32_t kChainMask =
      (1u << static_cast<std::uint32_t>(Hop::kPod)) |
      (1u << static_cast<std::uint32_t>(Hop::kRouter)) |
      (1u << static_cast<std::uint32_t>(Hop::kShard)) |
      (1u << static_cast<std::uint32_t>(Hop::kMerge));
  for (const auto& [trace_id, idxs] : by_trace) {
    if (idxs.size() >= 2) st.flows++;
    std::uint32_t mask = 0;
    std::set<std::uint64_t> pids;
    for (const std::size_t i : idxs) {
      mask |= hop_mask(events[i].hop_path);
      pids.insert(events[i].pid);
    }
    if (pids.size() >= 2 && (mask & kChainMask) == kChainMask) {
      st.cross_process_chains++;
    }
  }

  // Emission: one event object per line, metadata first.
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const RecorderDump& d : dumps) {
    sep();
    std::string label = d.label.empty()
                            ? "pid" + std::to_string(d.pid)
                            : d.label;
    append(out,
           "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%llu,\"tid\":0,"
           "\"args\":{\"name\":\"%s\"}}",
           static_cast<unsigned long long>(d.pid),
           json_escape(label).c_str());
  }
  char hops[kHopPathStrMax];
  for (const TimelineEvent& e : events) {
    sep();
    if (e.dur_us >= 0) {
      append(out,
             "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"span\",\"pid\":%llu,"
             "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
             json_escape(e.name).c_str(),
             static_cast<unsigned long long>(e.pid), e.tid, e.ts_us,
             e.dur_us);
    } else {
      append(out,
             "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"%s\",\"cat\":\"event\","
             "\"pid\":%llu,\"tid\":%u,\"ts\":%.3f",
             json_escape(e.name).c_str(),
             static_cast<unsigned long long>(e.pid), e.tid, e.ts_us);
    }
    if (e.trace_id != 0 || e.arg != 0 || e.arg2 != 0) {
      append(out, ",\"args\":{\"trace_id\":\"%llx\",\"path\":\"%s\","
                  "\"arg\":%u,\"arg2\":%llu}",
             static_cast<unsigned long long>(e.trace_id),
             hop_path_str(e.hop_path, hops), e.arg,
             static_cast<unsigned long long>(e.arg2));
    }
    out += "}";
  }
  // Flow arrows: start at the first sighting of a causal id, step through
  // every later one — Perfetto draws these across process lanes.
  for (const auto& [trace_id, idxs] : by_trace) {
    if (idxs.size() < 2) continue;
    for (std::size_t k = 0; k < idxs.size(); ++k) {
      const TimelineEvent& e = events[idxs[k]];
      const char* ph = k == 0 ? "s" : (k + 1 == idxs.size() ? "f" : "t");
      sep();
      append(out,
             "{\"ph\":\"%s\",\"name\":\"trace\",\"cat\":\"causal\","
             "\"id\":\"%llx\",\"pid\":%llu,\"tid\":%u,\"ts\":%.3f%s}",
             ph, static_cast<unsigned long long>(trace_id),
             static_cast<unsigned long long>(e.pid), e.tid, e.ts_us,
             k + 1 == idxs.size() ? ",\"bp\":\"e\"" : "");
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  if (stats != nullptr) *stats = st;
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return true;
  }
  // Atomic temp+fsync+rename: CI artifact consumers parse these files, and
  // a crash mid-write used to leave a torn (half-parseable) snapshot behind.
  std::string err;
  if (!atomic_write_file(path, content.data(), content.size(), &err)) {
    SB_CLOG_ERROR("obs", "cannot write %s (%s)", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

}  // namespace softborg::obs
