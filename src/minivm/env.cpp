#include "minivm/env.h"

#include <algorithm>

namespace softborg {

EnvModel::EnvModel() {
  specs_ = {
      // 0: read(fd-ish, wants `arg` bytes) -> [0, arg], 5% failure
      {.lo = 0, .hi = 1 << 16, .fail_prob = 0.05, .fail_value = -1,
       .arg_bounded = true},
      // 1: alloc(size) -> size on success, 2% failure
      {.lo = 0, .hi = 1 << 20, .fail_prob = 0.02, .fail_value = -1,
       .arg_bounded = true},
      // 2: clock() -> monotonic-ish value
      {.lo = 0, .hi = 1 << 20, .fail_prob = 0.0, .fail_value = -1,
       .arg_bounded = false},
      // 3: send(n) -> [0, n], 10% failure
      {.lo = 0, .hi = 1 << 16, .fail_prob = 0.10, .fail_value = -1,
       .arg_bounded = true},
  };
}

const SyscallSpec& EnvModel::spec(std::uint16_t sys_id) const {
  static const SyscallSpec kDefault{.lo = 0,
                                    .hi = 1 << 10,
                                    .fail_prob = 0.05,
                                    .fail_value = -1,
                                    .arg_bounded = false};
  if (sys_id < specs_.size()) return specs_[sys_id];
  return kDefault;
}

Value EnvModel::call(std::uint16_t sys_id, Value arg,
                     std::uint32_t call_index, Rng& rng,
                     const FaultPlan* faults) const {
  if (faults != nullptr) {
    auto it = faults->forced.find(call_index);
    if (it != faults->forced.end()) return it->second;
  }
  const SyscallSpec& sp = spec(sys_id);
  if (sp.fail_prob > 0.0 && rng.next_bool(sp.fail_prob)) return sp.fail_value;
  Value lo = sp.lo, hi = sp.hi;
  if (sp.arg_bounded) {
    hi = std::min(hi, std::max<Value>(arg, 0));
    lo = std::min(lo, hi);
  }
  if (lo >= hi) return lo;
  return rng.next_in(lo, hi);
}

std::int8_t EnvModel::classify(std::uint16_t sys_id, Value arg,
                               Value result) const {
  const SyscallSpec& sp = spec(sys_id);
  if (result == sp.fail_value && sp.fail_prob > 0.0) return -1;
  if (result < 0) return -1;
  if (sp.arg_bounded && result < arg) return 1;  // short read/write
  return 0;
}

}  // namespace softborg
