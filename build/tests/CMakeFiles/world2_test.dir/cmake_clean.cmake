file(REMOVE_RECURSE
  "CMakeFiles/world2_test.dir/world2_test.cpp.o"
  "CMakeFiles/world2_test.dir/world2_test.cpp.o.d"
  "world2_test"
  "world2_test.pdb"
  "world2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
