// Quickstart: the whole SoftBorg loop on one buggy program, in ~40 lines of
// API use (paper Fig. 1).
//
//   media_parser crashes (div-by-zero) whenever format==13 && size>=200.
//   We deploy it to a small fleet, watch the hive find the bug from crash
//   traces, synthesize and validate an input-guard fix, push it to every
//   pod, and then prove the patched deployment's failure rate collapsed.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/softborg.h"

int main() {
  using namespace softborg;
  set_log_level(LogLevel::kInfo);  // narrate the hive's decisions

  // 1. A program with a planted bug, and a simulated fleet of 40 users.
  WorldConfig config;
  config.pods_per_program = 40;
  config.days = 12;
  config.mean_runs_per_day = 6.0;
  config.seed = 3;
  World world({make_media_parser()}, config);

  // 2. Let the world run: pods execute, by-products flow, the hive reacts.
  world.run();

  // 3. What happened?
  std::printf("\n%-5s %-7s %-9s %-7s %-12s %-6s %-6s\n", "day", "runs",
              "failures", "rate%", "averted", "bugs", "fixed");
  for (const auto& d : world.history()) {
    std::printf("%-5llu %-7llu %-9llu %-7.2f %-12llu %-6zu %-6zu\n",
                static_cast<unsigned long long>(d.day),
                static_cast<unsigned long long>(d.runs),
                static_cast<unsigned long long>(d.failures),
                d.failure_rate * 100.0,
                static_cast<unsigned long long>(d.fix_interventions),
                d.bugs_found_total, d.bugs_fixed_total);
  }

  // 4. The bug the hive found, in its own words.
  for (const auto& bug : world.hive().bug_tracker().all()) {
    std::printf("\nbug: %s\n", bug.describe().c_str());
  }

  // 5. A cumulative proof attempt: with the crash feasible in P itself, the
  //    never-crashes property is refuted with a counterexample...
  const ProgramId program = world.corpus()[0].program.id;
  auto cert = world.hive().attempt_proof(program, Property::kNeverCrashes);
  std::printf("\nproof attempt: %s\n", cert.describe().c_str());

  // ...while always-terminates holds and is proven over the complete tree.
  cert = world.hive().attempt_proof(program, Property::kAlwaysTerminates);
  std::printf("proof attempt: %s\n", cert.describe().c_str());
  if (cert.publishable()) {
    std::string reason;
    const bool ok = check_certificate(world.corpus()[0], cert,
                                      /*max_checks=*/1u << 20, &reason);
    std::printf("independent certificate check: %s\n",
                ok ? "PASSED" : reason.c_str());
  }
  return 0;
}
