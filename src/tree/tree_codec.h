// Serialization of collective execution trees.
//
// The hive is long-lived but not immortal (restarts, migration between
// centralized/distributed deployments, §3's "physically centralized …
// entirely distributed, or hybrid"); its accumulated knowledge of P must
// survive. Trees serialize to the same varint wire format as traces and
// decode with full validation.
#pragma once

#include <optional>

#include "common/varint.h"
#include "tree/exec_tree.h"

namespace softborg {

Bytes encode_tree(const ExecTree& tree);
std::optional<ExecTree> decode_tree(const Bytes& bytes);

}  // namespace softborg
