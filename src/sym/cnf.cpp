#include "sym/cnf.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"

namespace softborg {

bool Cnf::well_formed() const {
  for (const auto& clause : clauses) {
    if (clause.empty()) return false;
    for (Lit lit : clause) {
      const int v = std::abs(lit);
      if (v < 1 || v > num_vars) return false;
    }
  }
  return true;
}

bool cnf_satisfied(const Cnf& cnf, const std::vector<bool>& model) {
  SB_CHECK(static_cast<int>(model.size()) >= cnf.num_vars);
  for (const auto& clause : cnf.clauses) {
    bool sat = false;
    for (Lit lit : clause) {
      const int v = std::abs(lit) - 1;
      if (model[static_cast<std::size_t>(v)] == (lit > 0)) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

Cnf random_ksat(int num_vars, int num_clauses, int k, std::uint64_t seed) {
  SB_CHECK(num_vars >= k && k >= 1);
  Rng rng(seed);
  Cnf cnf;
  cnf.num_vars = num_vars;
  cnf.clauses.reserve(static_cast<std::size_t>(num_clauses));
  for (int c = 0; c < num_clauses; ++c) {
    Clause clause;
    while (static_cast<int>(clause.size()) < k) {
      const int v =
          1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(num_vars)));
      bool dup = false;
      for (Lit lit : clause) {
        if (std::abs(lit) == v) dup = true;
      }
      if (dup) continue;
      clause.push_back(rng.next_bool() ? v : -v);
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

Cnf pigeonhole(int holes) {
  SB_CHECK(holes >= 1);
  const int pigeons = holes + 1;
  auto var = [holes](int pigeon, int hole) {
    return pigeon * holes + hole + 1;  // 1-based
  };
  Cnf cnf;
  cnf.num_vars = pigeons * holes;
  // Every pigeon is in some hole.
  for (int p = 0; p < pigeons; ++p) {
    Clause clause;
    for (int h = 0; h < holes; ++h) clause.push_back(var(p, h));
    cnf.clauses.push_back(std::move(clause));
  }
  // No two pigeons share a hole.
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.clauses.push_back({-var(p1, h), -var(p2, h)});
      }
    }
  }
  return cnf;
}

Cnf chain(int length) {
  SB_CHECK(length >= 2);
  Cnf cnf;
  cnf.num_vars = length;
  cnf.clauses.push_back({1});  // x1
  for (int v = 1; v < length; ++v) {
    cnf.clauses.push_back({-v, v + 1});  // x_v -> x_{v+1}
  }
  return cnf;
}

}  // namespace softborg
