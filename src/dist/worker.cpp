#include "dist/worker.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <ctime>
#include <thread>

#include "common/check.h"
#include "common/state_wire.h"
#include "dist/socket.h"
#include "obs/recorder.h"
#include "obs/registry.h"
#include "store/store.h"
#include "trace/codec.h"

namespace softborg::dist {

ShardWorker::ShardWorker(std::size_t index,
                         const std::vector<CorpusEntry>* corpus,
                         WorkerConfig config)
    : index_(index),
      corpus_(corpus),
      config_(std::move(config)),
      queue_(config_.queue_capacity) {
  SB_CHECK(corpus_ != nullptr);
  SB_CHECK(config_.credit_window >= 1 && config_.credit_window <= 0xffff);
  build_hive();
}

void ShardWorker::build_hive() {
  // Same per-shard layout as ShardedHive: disjoint fix/proof id blocks and
  // a per-shard seed, so a distributed fleet and an in-process one
  // synthesize identically-numbered artifacts.
  HiveConfig hive_config = config_.hive;
  hive_config.fixer.next_fix_id = 1 + index_ * 1'000'000;
  hive_config.next_proof_id = 1 + index_ * 1'000'000;
  hive_config.seed = config_.hive.seed ^ (index_ * 0x9e3779b97f4a7c15ULL);
  hive_ = std::make_unique<Hive>(corpus_, hive_config);
}

bool ShardWorker::try_resume() {
  if (config_.snapshot_dir.empty()) return false;
  const auto snapshot = store::read_snapshot(config_.snapshot_dir);
  if (!snapshot.has_value()) return false;
  const auto part = [&](const char* name) -> const Bytes* {
    const auto it = snapshot->parts.find(name);
    return it == snapshot->parts.end() ? nullptr : &it->second;
  };
  for (const char* name : {"hive", "trees", "solver", "worker"}) {
    if (part(name) == nullptr) return false;
  }
  // On any validation failure the hive may be half-restored: rebuild it
  // cold so a corrupt snapshot degrades to a clean cold start, never a
  // Frankenstein state.
  const auto reject = [&] {
    build_hive();
    return false;
  };
  {
    StateReader r(*part("hive"));
    if (!hive_->load_state(r) || !r.done()) return reject();
  }
  {
    StateReader r(*part("trees"));
    if (!hive_->load_trees(r) || !r.done()) return reject();
  }
  {
    StateReader r(*part("solver"));
    if (!hive_->solver_cache().load_state(r) || !r.done()) return reject();
  }
  {
    StateReader r(*part("worker"));
    const std::uint64_t idx = r.u64();
    ingested_ = r.u64();
    const std::uint64_t shed = r.u64();
    batches_ = r.u64();
    snapshots_written_ = r.u64();
    if (!r.done() || idx != index_) {
      ingested_ = batches_ = snapshots_written_ = 0;
      return reject();
    }
    // The queue object is fresh; seed its shed ledger with the restored
    // count so closing stats are cumulative across restarts.
    queue_.restore_shed_total(shed);
  }
  snapshot_seq_ = snapshot->seq;
  resumed_ = true;
  return true;
}

void ShardWorker::send_hello(Channel& ch) {
  HelloMsg hello{index_, config_.credit_window, resumed_};
  if (obs::tracing_enabled()) {
    // Clock pair for cross-process timeline alignment (the untraced
    // handshake keeps both at 0 so its bytes stay deterministic).
    timespec mono{}, real{};
    ::clock_gettime(CLOCK_MONOTONIC, &mono);
    ::clock_gettime(CLOCK_REALTIME, &real);
    hello.mono_ns = std::uint64_t(mono.tv_sec) * 1'000'000'000ULL +
                    std::uint64_t(mono.tv_nsec);
    hello.real_ns = std::uint64_t(real.tv_sec) * 1'000'000'000ULL +
                    std::uint64_t(real.tv_nsec);
  }
  ch.send(kMsgHello, encode_hello(hello));
}

void ShardWorker::admit(Bytes wire, obs::TraceContext ctx) {
  // Admission control: summarize for priority (allocation-free peek; the
  // router already validated, so failures here are corruption — admit as
  // routine and let the hive count the decode failure deterministically).
  TracePriority priority = TracePriority::kRoutine;
  const auto summary = summarize_trace_wire(wire);
  if (summary) priority = trace_priority(*summary);
  if (obs::tracing_enabled()) {
    // The router's v2 frame normally delivers the accumulated chain; a v1
    // sender (or SimNet) yields no context, so re-derive the id locally —
    // same wire, same causal id — and the chain stays joinable even if the
    // upstream hop path is lost.
    if (!ctx.valid() && summary) {
      ctx.trace_id =
          obs::causal_trace_id(summary->id.value, summary->program.value);
    }
    ctx = obs::with_hop(ctx, obs::Hop::kShard);
    obs::Recorder::record(obs::EventKind::kShardAdmit, ctx,
                          static_cast<std::uint32_t>(index_));
  } else {
    ctx = {};
  }
  const std::uint64_t shed_before = queue_.shed_total();
  queue_.push(priority, std::move(wire), ctx);
  const std::uint64_t shed_delta = queue_.shed_total() - shed_before;
  if (shed_delta > 0) {
    obs::Recorder::record(obs::EventKind::kQueueShed, ctx,
                          static_cast<std::uint32_t>(index_), queue_.depth());
  }
  // A shed trace still consumed a router credit: grant it back, or the
  // window leaks shut under sustained overload.
  pending_credit_ += static_cast<std::uint32_t>(shed_delta);
}

bool ShardWorker::write_snapshot() {
  if (config_.snapshot_dir.empty()) return false;
  std::vector<store::Part> parts;
  {
    Bytes h;
    hive_->save_state(h);
    parts.push_back({"hive", std::move(h)});
  }
  {
    Bytes t;
    hive_->save_trees(t);
    parts.push_back({"trees", std::move(t)});
  }
  {
    Bytes s;
    hive_->solver_cache().save_state(s);
    parts.push_back({"solver", std::move(s)});
  }
  {
    Bytes w;
    put_varint(w, index_);
    put_varint(w, ingested_);
    put_varint(w, queue_.shed_total());
    put_varint(w, batches_);
    put_varint(w, snapshots_written_ + 1);
    parts.push_back({"worker", std::move(w)});
  }
  if (!store::write_snapshot(config_.snapshot_dir, ++snapshot_seq_, parts)) {
    return false;
  }
  snapshots_written_++;
  obs::Recorder::record(obs::EventKind::kSnapshotCommit, {},
                        static_cast<std::uint32_t>(index_), snapshot_seq_);
  return true;
}

bool ShardWorker::pump(Channel& ch) {
  if (done_) return false;
  active_ = false;
  for (auto& d : ch.poll()) {
    active_ = true;
    switch (d.type) {
      case kMsgTrace:
        admit(std::move(d.payload), d.ctx);
        break;
      case kMsgShutdown:
        shutdown_ = true;
        break;
      case kMsgSnapshot:
        (void)write_snapshot();
        // A snapshot request is also the fleet's "leave a postmortem now"
        // signal: re-flush the flight recorder so a later kill -9 still has
        // a recent ring on disk.
        if (!config_.trace_dump_path.empty() && obs::Recorder::enabled()) {
          (void)obs::Recorder::global().flush_to_file(config_.trace_dump_path);
        }
        ch.send(kMsgSnapshot, Bytes{});  // ack (even on failure: unblocks)
        break;
      default:
        break;  // credit/hello noise from the router is ignorable
    }
  }
  // Ingest one bounded batch; batch_max keeps the round short so credit
  // grants and shutdown stay responsive under sustained load.
  std::vector<Bytes> batch;
  std::vector<obs::TraceContext> batch_ctx;
  batch.reserve(config_.batch_max);
  while (batch.size() < config_.batch_max) {
    auto item = queue_.pop();
    if (!item) break;
    if (obs::Recorder::enabled()) batch_ctx.push_back(item->ctx);
    batch.push_back(std::move(item->wire));
  }
  if (!batch.empty()) {
    active_ = true;
    obs::Recorder::record(obs::EventKind::kBatchDecode, {},
                          static_cast<std::uint32_t>(batch.size()));
    hive_->ingest_batch(batch);
    // One merge-hop event per trace, carrying the full accumulated path
    // (pod>router>shard>merge): this is the event the trace-merge acceptance
    // check follows across process boundaries.
    for (const auto& ctx : batch_ctx) {
      if (!ctx.valid()) continue;
      obs::Recorder::record(obs::EventKind::kMerge,
                            obs::with_hop(ctx, obs::Hop::kMerge),
                            static_cast<std::uint32_t>(index_));
    }
    ingested_ += batch.size();
    batches_++;
    pending_credit_ += static_cast<std::uint32_t>(batch.size());
    if (config_.snapshot_every_batches > 0 &&
        batches_ % config_.snapshot_every_batches == 0) {
      (void)write_snapshot();
    }
  }
  if (pending_credit_ > 0) {
    ch.send_credit(pending_credit_);
    pending_credit_ = 0;
  }
  publish_metrics();
  if (shutdown_ && queue_.empty()) {
    // Drained: report the closing ledger, then ack the shutdown. A final
    // snapshot makes the restart path (CI's kill-and-resume leg) current.
    if (!config_.snapshot_dir.empty()) (void)write_snapshot();
    ch.send(kMsgStats, encode_worker_stats(closing_stats()));
    Bytes trees;
    hive_->save_trees(trees);
    ch.send(kMsgTreeData, std::move(trees));
    ch.send(kMsgShutdown, Bytes{});
    ch.flush();
    done_ = true;
    return false;
  }
  return true;
}

WorkerStatsMsg ShardWorker::closing_stats() const {
  WorkerStatsMsg m;
  m.shard_index = index_;
  m.ingested = ingested_;
  m.shed = queue_.shed_total();
  m.queue_max_depth = queue_.max_depth();
  m.batches = batches_;
  m.snapshots_written = snapshots_written_;
  m.hive = hive_->stats();
  return m;
}

void ShardWorker::publish_metrics() {
  if (!obs::enabled()) return;
  struct Metrics {
    obs::Counter& ingested = obs::MetricsRegistry::global().counter(
        "dist.worker.ingested_total");
    obs::Counter& shed = obs::MetricsRegistry::global().counter(
        "dist.worker.shed_total");
    obs::Counter& batches = obs::MetricsRegistry::global().counter(
        "dist.worker.batches_total");
    obs::Gauge& depth =
        obs::MetricsRegistry::global().gauge("dist.worker.queue_depth");
    static Metrics& get() {
      static Metrics m;
      return m;
    }
  };
  auto& m = Metrics::get();
  if (ingested_ != obs_ingested_) {
    m.ingested.add(ingested_ - obs_ingested_);
    obs_ingested_ = ingested_;
  }
  const std::uint64_t shed = queue_.shed_total();
  if (shed != obs_shed_) {
    m.shed.add(shed - obs_shed_);
    obs_shed_ = shed;
  }
  if (batches_ != obs_batches_) {
    m.batches.add(batches_ - obs_batches_);
    obs_batches_ = batches_;
  }
  m.depth.set(static_cast<std::int64_t>(queue_.depth()));
}

int run_worker_loop(std::size_t index, const std::vector<CorpusEntry>* corpus,
                    const WorkerConfig& config,
                    const std::string& router_addr) {
  if (!config.trace_dump_path.empty()) {
    obs::set_tracing_enabled(true);
    obs::Recorder::set_enabled(true);
    auto& rec = obs::Recorder::global();
    // Forked workers inherit the parent's rings; drop those stale events so
    // this dump describes only this process's life.
    rec.clear();
    char label[32];
    std::snprintf(label, sizeof(label), "shard%zu", index);
    rec.set_label(label);
    rec.install_signal_flush(config.trace_dump_path);
  }
  auto ch = dial(router_addr);
  if (ch == nullptr) return 2;  // router never came up
  ShardWorker worker(index, corpus, config);
  (void)worker.try_resume();
  worker.send_hello(*ch);
  while (worker.pump(*ch)) {
    if (!ch->alive()) return 3;  // router died mid-run
    if (!worker.last_round_active()) {
      // Idle: yield the core instead of spinning the poll loop.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  // Closing frames may still sit in the socket buffer; push until gone.
  for (int i = 0; i < 1000 && ch->alive(); ++i) {
    ch->flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!config.trace_dump_path.empty()) {
    (void)obs::Recorder::global().flush_to_file(config.trace_dump_path);
  }
  return 0;
}

int spawn_worker_process(std::size_t index,
                         const std::vector<CorpusEntry>* corpus,
                         const WorkerConfig& config,
                         const std::string& router_addr) {
  const int pid = ::fork();
  if (pid != 0) return pid;  // parent (or fork failure: -1)
  ::_exit(run_worker_loop(index, corpus, config, router_addr));
}

}  // namespace softborg::dist
