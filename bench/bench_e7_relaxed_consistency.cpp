// E7 — Relaxed execution consistency (paper §4, after S2E [7]).
//
// Claims under test: "reasoning at the unit level (instead of system
// level) can be faster despite the fact that overapproximation introduces
// more paths", and "if the unit behaves correctly for a superset of the
// feasible paths, then it is guaranteed to behave correctly for all
// feasible paths".
//
// Setup: worker_pool's validation unit is guarded by its caller (main
// clamps the argument into [0,99]); a family of wider variants scales the
// caller's preamble cost. We explore each variant two ways:
//   (a) system-consistent: symbolic execution from program entry — every
//       path is feasible-in-system; reaching the unit costs the whole
//       preamble, including solver work on the clamp (mod) constraints;
//   (b) relaxed unit-level: start at the unit entry with its parameter
//       unconstrained over the machine byte range.
// Reported: paths, symbolic steps, solver calls/nodes, wall time, and the
// superset check (every in-system unit behaviour appears under (b)).
//
// Expected shape: (b) explores a strict superset of unit behaviours
// (including the caller-infeasible defensive abort) at a fraction of (a)'s
// solver cost; the soundness direction always holds.
#include <cstdio>

#include "bench_json.h"
#include "core/softborg.h"

using namespace softborg;

namespace {

// worker_pool variant whose caller preamble is `preamble` arithmetic rounds
// (simulating an expensive in-system path to the unit).
CorpusEntry make_padded_worker_pool(unsigned preamble) {
  ProgramBuilder b("worker_pool_pad" + std::to_string(preamble), 900 + preamble);
  const Reg raw = b.reg(), v = b.reg(), hundred = b.reg(), tmp = b.reg(),
            out = b.reg(), x = b.reg();
  const std::uint32_t in_raw = b.input_slot();

  b.input(raw, in_raw);
  // Tainted preamble: a chain of input-dependent branches before the unit
  // (each adds a feasible fork the system-level exploration must solve).
  for (unsigned i = 0; i < preamble; ++i) {
    auto L_a = b.label(), L_b = b.label();
    b.cmp_lt_const(tmp, raw, static_cast<Value>(16 * (i + 1)));
    b.branch_if(tmp, L_a, L_b);
    b.bind(L_a);
    b.add_const(x, raw, 1);
    b.jump(L_b);
    b.bind(L_b);
  }
  b.const_(hundred, 100);
  b.mod(v, raw, hundred);

  const std::uint32_t unit_entry = b.current_pc();
  auto L_neg = b.label(), L_ok = b.label(), L_lo = b.label(), L_hi = b.label(),
       L_done = b.label();
  b.cmp_lt_const(tmp, v, 0);
  b.branch_if(tmp, L_neg, L_ok);
  b.bind(L_neg);
  b.abort_now(99);
  b.bind(L_ok);
  b.cmp_lt_const(tmp, v, 50);
  b.branch_if(tmp, L_lo, L_hi);
  b.bind(L_lo);
  b.add_const(out, v, 10);
  b.output(out);
  b.jump(L_done);
  b.bind(L_hi);
  b.sub(out, v, hundred);
  b.output(out);
  b.jump(L_done);
  b.bind(L_done);
  b.halt();

  CorpusEntry e;
  e.program = b.build();
  e.domains = {{0, 255}};
  e.unit_entry_pc = unit_entry;
  e.unit_params = {v};
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json("e7_relaxed_consistency", argc, argv);
  std::printf("# E7: system-consistent vs relaxed (unit-level) exploration\n");
  std::printf("%-10s %-8s | %-8s %-10s %-10s %-9s | %-8s %-10s %-10s %-9s | "
              "%-8s\n",
              "preamble", "", "sys_paths", "sys_steps", "sys_solver",
              "sys_ms", "unit_pth", "unit_steps", "unit_solver", "unit_ms",
              "superset");

  for (unsigned preamble : {0u, 2u, 4u, 6u, 8u}) {
    const auto entry = make_padded_worker_pool(preamble);

    // (a) system-level.
    ExploreOptions sys_opt;
    sys_opt.input_domains = domains_of(entry);
    SymbolicExecutor sys(entry.program, sys_opt);
    Timer t1;
    const auto sys_paths = sys.explore();
    const double sys_ms = t1.elapsed_ms();

    // (b) unit-level, relaxed.
    ExploreOptions unit_opt;
    SymbolicExecutor unit(entry.program, unit_opt);
    Timer t2;
    const auto unit_paths = unit.explore_unit(
        entry.unit_entry_pc, {{entry.unit_params[0], VarDomain{-128, 127}}});
    const double unit_ms = t2.elapsed_ms();

    // Superset check: the unit's decision suffix of every in-system path
    // must appear among the unit-level paths. The unit has 2 decision
    // sites (the last two of each system path); compare suffix sets.
    std::set<std::vector<bool>> unit_suffixes;
    for (const auto& p : unit_paths) {
      std::vector<bool> s;
      for (const auto& d : p.decisions) s.push_back(d.taken);
      unit_suffixes.insert(s);
    }
    bool superset = true;
    for (const auto& p : sys_paths) {
      if (p.decisions.size() < 2) continue;
      std::vector<bool> s = {p.decisions[p.decisions.size() - 2].taken,
                             p.decisions[p.decisions.size() - 1].taken};
      if (unit_suffixes.count(s) == 0) superset = false;
    }

    std::printf("%-10u %-8s | %-8zu %-10llu %-10llu %-9.1f | %-8zu %-10llu "
                "%-10llu %-9.1f | %-8s\n",
                preamble, "",
                sys_paths.size(),
                static_cast<unsigned long long>(sys.stats().total_steps),
                static_cast<unsigned long long>(sys.stats().solver_calls),
                sys_ms, unit_paths.size(),
                static_cast<unsigned long long>(unit.stats().total_steps),
                static_cast<unsigned long long>(unit.stats().solver_calls),
                unit_ms, superset ? "yes" : "NO");
    json.add("preamble_" + std::to_string(preamble), "unit_total_steps",
             static_cast<double>(unit.stats().total_steps),
             static_cast<double>(sys.stats().total_steps));
  }

  std::printf(
      "\n(unit-level cost is flat in the preamble; its extra paths — the "
      "defensive abort — are the over-approximation the paper accepts in "
      "exchange)\n");
  return json.write() ? 0 : 1;
}
