#include "minivm/decode.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "common/check.h"
#include "obs/span.h"
#include "trace/trace.h"

namespace softborg {

namespace {

bool is_nontrap_alu(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kCmpLt:
    case Op::kCmpLe:
    case Op::kCmpEq:
    case Op::kCmpNe:
      return true;
    default:
      return false;
  }
}

bool is_cmp(Op op) {
  return op == Op::kCmpLt || op == Op::kCmpLe || op == Op::kCmpEq ||
         op == Op::kCmpNe;
}

Tok const_alu_token(Op alu) {
  switch (alu) {
    case Op::kAdd: return Tok::kConstAdd;
    case Op::kSub: return Tok::kConstSub;
    case Op::kMul: return Tok::kConstMul;
    case Op::kCmpLt: return Tok::kConstCmpLt;
    case Op::kCmpLe: return Tok::kConstCmpLe;
    case Op::kCmpEq: return Tok::kConstCmpEq;
    case Op::kCmpNe: return Tok::kConstCmpNe;
    default: SB_CHECK(false); return Tok::kHalt;
  }
}

Tok cmp_branch_token(Op cmp) {
  switch (cmp) {
    case Op::kCmpLt: return Tok::kCmpLtBranch;
    case Op::kCmpLe: return Tok::kCmpLeBranch;
    case Op::kCmpEq: return Tok::kCmpEqBranch;
    case Op::kCmpNe: return Tok::kCmpNeBranch;
    default: SB_CHECK(false); return Tok::kHalt;
  }
}

// Superinstruction selection for the pair starting at `pc`, or Tok::kHalt
// ("no fusion") when the pair is not in the table. Fusion requires the first
// instruction to fall through unconditionally (const/mov/cmp all do) and
// the pair to be one the dispatch core has a specialized handler for.
Tok fuse_token(const Program& p, std::uint32_t pc) {
  if (pc + 1 >= p.code.size()) return Tok::kHalt;
  const Instr& i1 = p.code[pc];
  const Instr& i2 = p.code[pc + 1];
  switch (i1.op) {
    case Op::kConst:
      if (!is_nontrap_alu(i2.op)) return Tok::kHalt;
      // Prefer the more profitable cmp+branch fusion one slot later: leave
      // the const plain when the ALU op is a cmp that would itself fuse
      // with a following branch (both splits cost two dispatches, but the
      // cmp+branch handler also skips the flag-register round trip).
      if (is_cmp(i2.op) && pc + 2 < p.code.size() &&
          p.code[pc + 2].op == Op::kBranchIf && p.code[pc + 2].a == i2.a) {
        return Tok::kHalt;
      }
      return const_alu_token(i2.op);
    case Op::kCmpLt:
    case Op::kCmpLe:
    case Op::kCmpEq:
    case Op::kCmpNe:
      // The branch must test the freshly computed compare result.
      if (i2.op == Op::kBranchIf && i2.a == i1.a) return cmp_branch_token(i1.op);
      return Tok::kHalt;
    case Op::kMov:
      if (i2.op == Op::kStoreG) return Tok::kMovStoreG;
      return Tok::kHalt;
    default:
      return Tok::kHalt;
  }
}

}  // namespace

const char* tok_name(Tok tok) {
  if (static_cast<std::size_t>(tok) < kNumOps) {
    return op_name(static_cast<Op>(tok));
  }
  switch (tok) {
    case Tok::kConstAdd: return "const+add";
    case Tok::kConstSub: return "const+sub";
    case Tok::kConstMul: return "const+mul";
    case Tok::kConstCmpLt: return "const+cmplt";
    case Tok::kConstCmpLe: return "const+cmple";
    case Tok::kConstCmpEq: return "const+cmpeq";
    case Tok::kConstCmpNe: return "const+cmpne";
    case Tok::kCmpLtBranch: return "cmplt+brif";
    case Tok::kCmpLeBranch: return "cmple+brif";
    case Tok::kCmpEqBranch: return "cmpeq+brif";
    case Tok::kCmpNeBranch: return "cmpne+brif";
    case Tok::kMovStoreG: return "mov+storeg";
    default: return "?";
  }
}

DecodedProgram predecode(const Program& p, const FixSet* fixes,
                         const DecodeOptions& options) {
  SB_SPAN("minivm.predecode");
  DecodedProgram d;
  d.fused = options.fuse;
  const std::size_t n = p.code.size();
  d.code.resize(n);

  // Pass 1: plain 1:1 decode with fix hooks resolved per pc.
  for (std::uint32_t pc = 0; pc < n; ++pc) {
    const Instr& ins = p.code[pc];
    DecodedInstr& e = d.code[pc];
    e.tok = e.base = static_cast<Tok>(ins.op);
    e.len = 1;
    e.a = ins.a;
    e.b = ins.b;
    e.c = ins.c;
    e.imm = ins.imm;
    e.site = ins.site;
    if (fixes == nullptr) continue;
    switch (ins.op) {
      case Op::kDiv:
      case Op::kMod:
      case Op::kAssert:
      case Op::kAbort:
        // First guard at this pc wins, like the interpreter's old
        // crash_guard_at scan.
        for (const auto& g : fixes->crash_guards) {
          if (g.pc == pc) {
            e.guard = static_cast<std::uint32_t>(d.guard_pool.size());
            d.guard_pool.push_back(g);
            break;
          }
        }
        break;
      case Op::kBranchIf:
        e.fix_begin = static_cast<std::uint32_t>(d.patch_pool.size());
        for (const auto& patch : fixes->guards) {
          if (patch.site == ins.site) d.patch_pool.push_back(patch);
        }
        e.fix_count = static_cast<std::uint16_t>(d.patch_pool.size() -
                                                 e.fix_begin);
        break;
      case Op::kLock:
        e.fix_begin = static_cast<std::uint32_t>(d.lockfix_pool.size());
        for (const auto& fix : fixes->lock_fixes) {
          if (fix.covers(static_cast<std::uint16_t>(ins.a))) {
            d.lockfix_pool.push_back(fix);
          }
        }
        e.fix_count = static_cast<std::uint16_t>(d.lockfix_pool.size() -
                                                 e.fix_begin);
        break;
      default:
        break;
    }
  }

  // Pass 2: peephole fusion. A fused slot overlays the pair's first pc; the
  // second pc keeps its plain decode so jumps into the middle still land on
  // a valid slot.
  if (options.fuse) {
    for (std::uint32_t pc = 0; pc + 1 < n; ++pc) {
      const Tok fused = fuse_token(p, pc);
      if (fused == Tok::kHalt) continue;
      const Instr& i2 = p.code[pc + 1];
      DecodedInstr& e = d.code[pc];
      e.tok = fused;
      e.len = 2;
      e.a2 = i2.a;
      e.b2 = i2.b;
      e.c2 = i2.c;
      e.site2 = i2.site;
      // A fused cmp+branch inherits the branch's resolved GuardPatch range
      // (the cmp half has no hooks of its own, so the slot's fields are
      // free). const+ALU and mov+storeg pairs have no hooks on either half.
      e.fix_begin = d.code[pc + 1].fix_begin;
      e.fix_count = d.code[pc + 1].fix_count;
      d.fused_slots++;
    }
  }
  return d;
}

namespace {

// 128-bit dual-pass content hash over (program, fixes, fuse): the decode
// cache key. Everything the decoded stream depends on is folded in;
// id/name metadata is excluded so equal-content programs share an entry.
struct DecodeKey {
  std::uint64_t h1 = 0;
  std::uint64_t h2 = 0;
};

DecodeKey decode_key(const Program& p, const FixSet* fixes, bool fuse) {
  DecodeKey k{0x5b0f7b0de51a11edULL, 0xc0dec0dec0dec0deULL};
  auto mix = [&k](std::uint64_t v) {
    k.h1 = replay_mix(k.h1, v);
    k.h2 = replay_mix(k.h2, v ^ 0x9e3779b97f4a7c15ULL);
  };
  mix(p.code.size());
  for (const Instr& ins : p.code) {
    mix(static_cast<std::uint64_t>(ins.op) |
        (static_cast<std::uint64_t>(ins.site) << 8) |
        (static_cast<std::uint64_t>(ins.a) << 40));
    mix(static_cast<std::uint64_t>(ins.b) |
        (static_cast<std::uint64_t>(ins.c) << 32));
    mix(static_cast<std::uint64_t>(ins.imm));
  }
  mix(p.thread_entries.size());
  for (auto e : p.thread_entries) mix(e);
  mix(static_cast<std::uint64_t>(p.num_regs) |
      (static_cast<std::uint64_t>(p.num_globals) << 16) |
      (static_cast<std::uint64_t>(p.num_locks) << 32) |
      (static_cast<std::uint64_t>(p.num_inputs) << 48));
  mix(p.num_branch_sites);
  if (fixes != nullptr) {
    mix(fixes->guards.size());
    for (const auto& g : fixes->guards) {
      mix(static_cast<std::uint64_t>(g.site) |
          (static_cast<std::uint64_t>(g.crash_direction) << 32));
      mix(g.when.size());
      for (const auto& b : g.when) {
        mix(b.input);
        mix(static_cast<std::uint64_t>(b.lo));
        mix(static_cast<std::uint64_t>(b.hi));
      }
    }
    mix(fixes->crash_guards.size());
    for (const auto& g : fixes->crash_guards) {
      mix(static_cast<std::uint64_t>(g.pc) |
          (static_cast<std::uint64_t>(g.action) << 32));
      mix(static_cast<std::uint64_t>(g.fallback));
    }
    mix(fixes->lock_fixes.size());
    for (const auto& f : fixes->lock_fixes) {
      mix(f.cycle_locks.size());
      for (auto l : f.cycle_locks) mix(l);
    }
  } else {
    // Same key shape as an empty FixSet: both decode to the same stream.
    mix(0);
    mix(0);
    mix(0);
  }
  mix(fuse ? 1 : 0);
  return k;
}

struct DecodeCache {
  std::mutex mu;
  struct Entry {
    std::uint64_t h2 = 0;
    std::shared_ptr<const DecodedProgram> prog;
  };
  std::unordered_map<std::uint64_t, Entry> map;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

DecodeCache& decode_cache() {
  static DecodeCache c;
  return c;
}

// Generational eviction bound: far above the live program count of any
// fleet run, small enough that a long random-program fuzz cannot grow the
// cache without limit.
constexpr std::size_t kMaxCacheEntries = 1024;

}  // namespace

std::shared_ptr<const DecodedProgram> predecode_cached(
    const Program& p, const FixSet* fixes, const DecodeOptions& options) {
  const DecodeKey key = decode_key(p, fixes, options.fuse);
  DecodeCache& cache = decode_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.map.find(key.h1);
    if (it != cache.map.end() && it->second.h2 == key.h2) {
      cache.hits++;
      return it->second.prog;
    }
  }
  auto decoded =
      std::make_shared<const DecodedProgram>(predecode(p, fixes, options));
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    cache.misses++;
    if (cache.map.size() >= kMaxCacheEntries) cache.map.clear();
    cache.map[key.h1] = {key.h2, decoded};
  }
  return decoded;
}

PredecodeCacheStats predecode_cache_stats() {
  DecodeCache& cache = decode_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return {cache.hits, cache.misses, cache.map.size()};
}

void clear_predecode_cache() {
  DecodeCache& cache = decode_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.map.clear();
  cache.hits = 0;
  cache.misses = 0;
}

std::vector<OpPairCounts::Pair> OpPairCounts::sorted() const {
  std::vector<Pair> out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    out.push_back({static_cast<Op>(i / kNumOps), static_cast<Op>(i % kNumOps),
                   counts[i]});
  }
  std::sort(out.begin(), out.end(), [](const Pair& a, const Pair& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  return out;
}

}  // namespace softborg
