// Simulated unreliable network connecting pods and hive nodes.
//
// The paper's hive nodes are "mostly end-user machines communicating over a
// potentially unreliable network" (§4), and pods relay by-products "over
// the Internet" (§3). SimNet models that: tick-driven delivery with
// per-message random latency, loss, duplication, and pairwise partitions —
// all seeded and deterministic so whole-fleet experiments reproduce.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/state_wire.h"
#include "common/varint.h"
#include "net/transport.h"

namespace softborg {

struct NetConfig {
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  std::uint32_t min_latency_ticks = 1;
  std::uint32_t max_latency_ticks = 3;
  std::uint64_t seed = 1;
};

struct NetStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  // Partition effects, counted once per message copy: refused at send()
  // because the pair was already partitioned, vs. eaten at delivery time by
  // a partition that formed while the message was in flight. (Formerly one
  // `blocked_by_partition` counter incremented in both places, so a single
  // message could be counted twice.)
  std::uint64_t blocked_at_send = 0;
  std::uint64_t dropped_in_flight = 0;
  std::uint64_t bytes_sent = 0;
  // Payload buffers copied inside the transport. The only legitimate copy
  // is the extra body a probabilistic duplication manufactures; every other
  // hop (send → in-flight → inbox → drain, including the router → shard
  // re-send) moves the one buffer end-to-end. net_test pins this at zero
  // for dup-free traffic by tracking a payload's data pointer across the
  // whole route.
  std::uint64_t payloads_copied = 0;

  bool operator==(const NetStats&) const = default;
};

class SimNet : public Transport {
 public:
  explicit SimNet(NetConfig config = {})
      : config_(config), rng_(config.seed) {}

  Endpoint add_endpoint() override;
  std::size_t num_endpoints() const { return inboxes_.size(); }

  // Queues a message; it may be dropped, duplicated, or delayed.
  void send(Endpoint from, Endpoint to, std::uint32_t type,
            Bytes payload) override;

  // Advances time by one tick, moving due messages into inboxes.
  void tick();
  // Transport::step — a SimNet makes progress one tick at a time.
  void step() override { tick(); }
  std::uint64_t now() const { return now_; }

  // Removes and returns everything delivered to `ep` so far.
  std::vector<Message> drain(Endpoint ep) override;

  // Bidirectional partition control between two endpoints.
  void set_partitioned(Endpoint a, Endpoint b, bool blocked);
  // Isolates an endpoint from everyone (node churn/failure).
  void set_isolated(Endpoint ep, bool isolated);

  const NetStats& stats() const { return stats_; }

  // Durable-store serialization of all mutable state (endpoints, clock, rng,
  // inboxes, in-flight queues, partitions, stats). Config is not persisted —
  // the resuming World reconstructs the net with the same NetConfig, then
  // overwrites its state. load_state replaces this net's state wholesale and
  // re-baselines metric publication at the restored stats (the deltas were
  // already published by the run that saved); on false the net is
  // unspecified — discard it.
  void save_state(Bytes& out) const;
  bool load_state(StateReader& r);

 private:
  bool blocked(Endpoint a, Endpoint b) const;
  // Pushes the stats_ deltas accumulated since the last publication into
  // the process-wide registry (the `net.*` counters and the in-flight
  // gauge). Called once per tick() — the network only makes progress at
  // ticks, so counters advance at tick boundaries and the per-message hot
  // path carries no telemetry cost.
  void publish_metrics();

  NetConfig config_;
  Rng rng_;
  std::uint64_t now_ = 0;
  std::vector<std::vector<Message>> inboxes_;
  // In-flight messages bucketed by delivery tick. Within a tick, messages
  // deliver in send order (push_back / in-order walk), exactly like the
  // multimap this replaces — but with one tree node per distinct tick
  // instead of one per message, which matters when a pump round moves
  // thousands of messages.
  std::map<std::uint64_t, std::vector<Message>> in_flight_;
  std::set<std::pair<Endpoint, Endpoint>> partitions_;
  std::set<Endpoint> isolated_;
  NetStats stats_;
  NetStats obs_published_;          // publish_metrics() delta baseline
  std::int64_t queued_ = 0;         // messages currently in in_flight_
  std::int64_t obs_published_depth_ = 0;
};

}  // namespace softborg
