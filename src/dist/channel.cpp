#include "dist/channel.h"

namespace softborg::dist {

void SimNetChannel::send(std::uint32_t type, Bytes payload,
                         std::uint32_t credit, obs::TraceContext /*ctx*/) {
  // The trace context is intentionally dropped: SimNet messages carry the
  // trace wire itself, and the deterministic receiver re-derives the same
  // causal id from it (obs::causal_trace_id), so nothing is lost — and the
  // deterministic byte stream the differential tests pin stays untouched.
  //
  // Grants travel as their own kMsgCredit message (count in a 4-byte LE
  // payload) instead of wrapping the main payload in an envelope: wrapping
  // would copy every trace buffer and break the zero-copy guarantee.
  if (credit > 0) {
    Bytes grant(4);
    for (int i = 0; i < 4; ++i) {
      grant[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(credit >> (8 * i));
    }
    net_.send(local_, remote_, kMsgCredit, std::move(grant));
  }
  if (type != kMsgCredit || !payload.empty()) {
    net_.send(local_, remote_, type, std::move(payload));
  }
}

std::vector<Delivery> SimNetChannel::poll() {
  std::vector<Delivery> out;
  for (auto& msg : net_.drain(local_)) {
    Delivery d;
    d.type = msg.type;
    if (msg.type == kMsgCredit && msg.payload.size() == 4) {
      for (int i = 3; i >= 0; --i) {
        d.credit = (d.credit << 8) |
                   msg.payload[static_cast<std::size_t>(i)];
      }
    } else {
      d.payload = std::move(msg.payload);
    }
    out.push_back(std::move(d));
  }
  return out;
}

std::pair<std::unique_ptr<SimNetChannel>, std::unique_ptr<SimNetChannel>>
make_simnet_channel_pair(SimNet& net) {
  const Endpoint a = net.add_endpoint();
  const Endpoint b = net.add_endpoint();
  return {std::make_unique<SimNetChannel>(net, a, b),
          std::make_unique<SimNetChannel>(net, b, a)};
}

}  // namespace softborg::dist
