#include <gtest/gtest.h>

#include "hive/bugs.h"
#include "hive/coop.h"
#include "hive/fixer.h"
#include "hive/guidance.h"
#include "hive/hive.h"
#include "hive/proof.h"
#include "minivm/corpus.h"
#include "minivm/interp.h"
#include "trace/codec.h"

namespace softborg {
namespace {

Trace failing_trace(const CorpusEntry& entry, std::vector<Value> inputs,
                    std::uint64_t seed = 1) {
  ExecConfig cfg;
  cfg.inputs = std::move(inputs);
  cfg.seed = seed;
  auto result = execute(entry.program, cfg);
  result.trace.id = TraceId(seed);
  return result.trace;
}

// ---------------------------------------------------------------- bugs -----

TEST(BugTracker, BucketsCrashesBySite) {
  const auto entry = make_media_parser();
  BugTracker tracker;
  const Bug* b1 = tracker.record(failing_trace(entry, {13, 250}, 1));
  const Bug* b2 = tracker.record(failing_trace(entry, {13, 201}, 2));
  ASSERT_NE(b1, nullptr);
  ASSERT_NE(b2, nullptr);
  EXPECT_EQ(b1->id, b2->id);  // same bucket
  EXPECT_EQ(b2->occurrences, 2u);
  EXPECT_EQ(tracker.all().size(), 1u);
}

TEST(BugTracker, DistinctCrashSitesAreDistinctBugs) {
  const auto parser = make_media_parser();
  const auto lookup = make_magic_lookup();
  BugTracker tracker;
  tracker.record(failing_trace(parser, {13, 250}));
  tracker.record(failing_trace(lookup, {4242}));
  EXPECT_EQ(tracker.all().size(), 2u);
}

TEST(BugTracker, OkTracesIgnored) {
  const auto entry = make_media_parser();
  BugTracker tracker;
  EXPECT_EQ(tracker.record(failing_trace(entry, {20, 10})), nullptr);
  EXPECT_TRUE(tracker.all().empty());
}

TEST(BugTracker, DeadlockSignatureFromLockSet) {
  const auto entry = make_bank_transfer();
  BugTracker tracker;
  int deadlocks = 0;
  for (std::uint64_t seed = 1; seed <= 60 && deadlocks < 2; ++seed) {
    Trace t = failing_trace(entry, {150}, seed);
    if (t.outcome != Outcome::kDeadlock) continue;
    deadlocks++;
    const Bug* bug = tracker.record(t);
    ASSERT_NE(bug, nullptr);
    EXPECT_EQ(bug->kind, BugKind::kDeadlock);
    EXPECT_EQ(bug->cycle_locks, (std::vector<std::uint16_t>{0, 1}));
  }
  ASSERT_GE(deadlocks, 2);
  EXPECT_EQ(tracker.all().size(), 1u);  // same cycle, same bug
}

TEST(BugTracker, MarkFixedRemovesFromOpen) {
  const auto entry = make_media_parser();
  BugTracker tracker;
  Bug* bug = tracker.record(failing_trace(entry, {13, 250}));
  EXPECT_EQ(tracker.open_bugs().size(), 1u);
  tracker.mark_fixed(bug->id, FixId(9));
  EXPECT_TRUE(tracker.open_bugs().empty());
  EXPECT_TRUE(tracker.find(bug->id)->fixed);
}

TEST(LockOrderAnalyzer, FindsAbBaCycle) {
  const auto entry = make_bank_transfer();
  LockOrderAnalyzer analyzer;
  int added = 0;
  for (std::uint64_t seed = 1; seed <= 100 && added < 3; ++seed) {
    const Trace t = failing_trace(entry, {150}, seed);
    if (t.outcome != Outcome::kDeadlock) continue;
    analyzer.add_trace(t);
    added++;
  }
  ASSERT_GT(added, 0);
  const auto cycles = analyzer.cycles();
  ASSERT_FALSE(cycles.empty());
  EXPECT_EQ(cycles[0], (std::vector<std::uint16_t>{0, 1}));
}

TEST(LockOrderAnalyzer, NoCycleFromConsistentOrder) {
  // Healthy full-granularity traces acquire A then B in both threads only
  // when amount <= 100: consistent order, no cycle.
  const auto entry = make_bank_transfer();
  LockOrderAnalyzer analyzer;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {50};
    cfg.seed = seed;
    cfg.granularity = Granularity::kFull;
    const auto result = execute(entry.program, cfg);
    ASSERT_EQ(result.trace.outcome, Outcome::kOk);
    analyzer.add_trace(result.trace);
  }
  EXPECT_GT(analyzer.num_edges(), 0u);
  EXPECT_TRUE(analyzer.cycles().empty());
}

// --------------------------------------------------------------- fixer -----

TEST(Fixer, InputHullRecoversCrashRegion) {
  // in0 == 13 && in1 >= 200.
  PathConstraint pc;
  pc.push_back({make_bin(BinOp::kEq, make_input(0), make_const(13)), true});
  pc.push_back({make_bin(BinOp::kLt, make_input(1), make_const(200)), false});
  const auto hull = input_hull(pc, {{0, 63}, {0, 255}}, {});
  ASSERT_EQ(hull.size(), 2u);
  EXPECT_EQ(hull[0].lo, 13);
  EXPECT_EQ(hull[0].hi, 13);
  EXPECT_EQ(hull[1].lo, 200);
  EXPECT_EQ(hull[1].hi, 255);
}

TEST(Fixer, InputHullOmitsUnconstrainedInputs) {
  PathConstraint pc;
  pc.push_back({make_bin(BinOp::kEq, make_input(0), make_const(5)), true});
  const auto hull = input_hull(pc, {{0, 10}, {0, 10}}, {});
  ASSERT_EQ(hull.size(), 1u);
  EXPECT_EQ(hull[0].input, 0);
}

TEST(Fixer, InfeasibleConstraintGivesEmptyHull) {
  PathConstraint pc;
  pc.push_back({make_bin(BinOp::kLt, make_input(0), make_const(0)), true});
  EXPECT_TRUE(input_hull(pc, {{0, 10}}, {}).empty());
}

TEST(Fixer, MediaParserGetsHighScoreGuardPatch) {
  const auto entry = make_media_parser();
  BugTracker tracker;
  Bug* bug = tracker.record(failing_trace(entry, {13, 250}));
  ASSERT_NE(bug, nullptr);

  FixSynthesizer fixer;
  const auto candidates = fixer.synthesize(*bug, entry);
  ASSERT_FALSE(candidates.empty());
  const auto& best = candidates.front();
  EXPECT_GE(best.score(), 0.95);
  EXPECT_GT(best.validation_runs, 50u);

  // The winning candidate must avert the crash when installed.
  FixSet fixes;
  std::visit(
      [&fixes](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, GuardPatch>) {
          fixes.guards.push_back(f);
        } else if constexpr (std::is_same_v<T, CrashGuardFix>) {
          fixes.crash_guards.push_back(f);
        } else {
          fixes.lock_fixes.push_back(f);
        }
      },
      best.fix);
  ExecConfig cfg;
  cfg.inputs = {13, 250};
  cfg.fixes = &fixes;
  EXPECT_EQ(execute(entry.program, cfg).trace.outcome, Outcome::kOk);
}

TEST(Fixer, DeadlockGetsLockAvoidanceFix) {
  const auto entry = make_bank_transfer();
  BugTracker tracker;
  Bug* bug = nullptr;
  for (std::uint64_t seed = 1; seed <= 100 && bug == nullptr; ++seed) {
    Trace t = failing_trace(entry, {150}, seed);
    if (t.outcome == Outcome::kDeadlock) bug = tracker.record(t);
  }
  ASSERT_NE(bug, nullptr);

  FixSynthesizer fixer;
  const auto candidates = fixer.synthesize(*bug, entry);
  ASSERT_FALSE(candidates.empty());
  const auto& best = candidates.front();
  ASSERT_TRUE(std::holds_alternative<LockAvoidanceFix>(best.fix));
  EXPECT_GE(best.averted_fraction, 0.95);
  EXPECT_GE(best.preserved_fraction, 0.95);
}

TEST(Fixer, FileCopierGetsCrashSiteGuard) {
  const auto entry = make_file_copier();
  BugTracker tracker;
  Bug* bug = nullptr;
  for (std::uint64_t seed = 1; seed <= 300 && bug == nullptr; ++seed) {
    Trace t = failing_trace(entry, {2, 8}, seed);
    if (t.outcome == Outcome::kCrash) bug = tracker.record(t);
  }
  ASSERT_NE(bug, nullptr);

  FixSynthesizer fixer;
  const auto candidates = fixer.synthesize(*bug, entry);
  ASSERT_FALSE(candidates.empty());
  // The crash depends on a syscall result, so the crash-site guard must be
  // the (high-scoring) winner.
  const auto& best = candidates.front();
  EXPECT_TRUE(std::holds_alternative<CrashGuardFix>(best.fix));
  EXPECT_GE(best.score(), 0.9);
}

// --------------------------------------------------------------- proof -----

void observe(ExecTree& tree, const CorpusEntry& entry,
             std::vector<Value> inputs, std::uint64_t seed = 1) {
  ExecConfig cfg;
  cfg.inputs = std::move(inputs);
  cfg.seed = seed;
  cfg.collect_branch_events = true;
  const auto live = execute(entry.program, cfg);
  std::vector<SymDecision> decisions;
  for (const auto& ev : live.branch_events) {
    if (ev.tainted) decisions.push_back({ev.site, ev.taken});
  }
  tree.add_path(decisions, live.trace.outcome, live.trace.crash);
}

TEST(Proof, ConfigSpaceProvenFromPartialObservations) {
  // Observe a handful of natural paths; symbolic gap closure completes the
  // tree and proves never-crashes.
  const auto entry = make_config_space(6);
  ExecTree tree(entry.program.id);
  for (Value mask = 0; mask < 5; ++mask) {
    std::vector<Value> inputs;
    for (int j = 0; j < 6; ++j) inputs.push_back((mask >> j) & 1);
    observe(tree, entry, inputs);
  }
  EXPECT_FALSE(tree.complete());

  ProofEngine engine;
  const auto cert = engine.attempt(entry, tree, Property::kNeverCrashes);
  EXPECT_TRUE(cert.complete);
  EXPECT_TRUE(cert.holds);
  EXPECT_TRUE(cert.publishable());
  EXPECT_EQ(cert.paths_total, 64u);
  EXPECT_EQ(cert.paths_from_executions, 5u);
  EXPECT_EQ(cert.paths_from_symbolic, 59u);

  std::string reason;
  EXPECT_TRUE(check_certificate(entry, cert, 1u << 20, &reason)) << reason;
}

TEST(Proof, MediaParserRefutedWithCounterexample) {
  const auto entry = make_media_parser();
  ExecTree tree(entry.program.id);
  observe(tree, entry, {20, 100});
  ProofEngine engine;
  const auto cert = engine.attempt(entry, tree, Property::kNeverCrashes);
  EXPECT_TRUE(cert.complete);   // the tree can still be completed...
  EXPECT_FALSE(cert.holds);     // ...but the property is refuted
  EXPECT_FALSE(cert.publishable());
}

TEST(Proof, WorkerPoolProvenSafeViaInfeasibleGapClosure) {
  // worker_pool's defensive abort is in-system infeasible: the proof
  // requires refuting that direction with the solver.
  const auto entry = make_worker_pool();
  ExecTree tree(entry.program.id);
  observe(tree, entry, {10});
  observe(tree, entry, {70});
  ProofEngine engine;
  const auto cert = engine.attempt(entry, tree, Property::kNeverCrashes);
  EXPECT_TRUE(cert.publishable());
  EXPECT_GE(cert.gaps_closed_infeasible, 1u);
  std::string reason;
  EXPECT_TRUE(check_certificate(entry, cert, 1u << 16, &reason)) << reason;
}

TEST(Proof, CheckerRejectsUnpublishable) {
  const auto entry = make_media_parser();
  ProofCertificate cert;
  std::string reason;
  EXPECT_FALSE(check_certificate(entry, cert, 1000, &reason));
  EXPECT_FALSE(reason.empty());
}

TEST(Proof, MagicLookupProofRequiresFindingTheNeedle) {
  // Proving never-crashes must FAIL (refuted): the needle is feasible.
  const auto entry = make_magic_lookup();
  ExecTree tree(entry.program.id);
  observe(tree, entry, {7});
  ProofEngine engine;
  const auto cert = engine.attempt(entry, tree, Property::kNeverCrashes);
  EXPECT_FALSE(cert.holds);
  // And the crash path entered the tree via symbolic closure.
  EXPECT_GT(tree.paths_with_outcome(Outcome::kCrash), 0u);
}

TEST(Proof, FrontierClipsAreRecordedAndProofStillLands) {
  // A tight frontier window under-enumerates the open directions each
  // round; the certificate must record that it worked from a clipped view
  // (the old hard-coded frontier(64) clipped silently) — and the proof must
  // still converge, since later rounds revisit the remainder.
  const auto entry = make_config_space(6);
  ExecTree tree(entry.program.id);
  observe(tree, entry, {0, 0, 0, 0, 0, 0});
  EXPECT_GT(tree.open_frontiers(), 2u);
  ProofBudget tight;
  tight.frontier_budget = 2;
  ProofEngine engine;
  const auto cert =
      engine.attempt(entry, tree, Property::kNeverCrashes, tight);
  EXPECT_TRUE(cert.publishable());
  EXPECT_GT(cert.frontier_clips, 0u);

  // An ample window (the default) never clips on this tree.
  ExecTree fresh(entry.program.id);
  observe(fresh, entry, {0, 0, 0, 0, 0, 0});
  ProofEngine engine2;
  const auto wide = engine2.attempt(entry, fresh, Property::kNeverCrashes);
  EXPECT_TRUE(wide.publishable());
  EXPECT_EQ(wide.frontier_clips, 0u);
}

// ------------------------------------------------------------ guidance -----

TEST(Guidance, FrontierDirectivesReachUnexploredPaths) {
  const auto entry = make_config_space(4);
  ExecTree tree(entry.program.id);
  observe(tree, entry, {0, 0, 0, 0});
  const std::size_t before = tree.num_paths();

  GuidancePlanner planner;
  const auto directives = planner.plan_frontier(entry, tree, 8);
  ASSERT_FALSE(directives.empty());
  for (const auto& d : directives) {
    ASSERT_TRUE(d.input_seed.has_value());
    observe(tree, entry, *d.input_seed);
  }
  EXPECT_GT(tree.num_paths(), before);
}

TEST(Guidance, FaultPlanDirectivesDriveSyscallPaths) {
  // file_copier's error path needs read() < 0: only guidance with fault
  // injection reaches it deterministically.
  const auto entry = make_file_copier();
  ExecTree tree(entry.program.id);
  observe(tree, entry, {10, 2}, 12345);

  GuidancePlanner planner;
  const auto directives = planner.plan_frontier(entry, tree, 8);
  bool fault_directive = false;
  for (const auto& d : directives) {
    if (d.faults.has_value()) fault_directive = true;
  }
  EXPECT_TRUE(fault_directive);
}

TEST(Guidance, FrontierBudgetConfigBoundsEnumeration) {
  // frontier_budget = 1 examines exactly one gap, so at most one directive
  // comes back; 0 keeps the historical 2x-directives default.
  const auto entry = make_config_space(4);
  ExecTree tree(entry.program.id);
  observe(tree, entry, {0, 0, 0, 0});
  GuidancePlannerConfig tight;
  tight.frontier_budget = 1;
  GuidancePlanner planner(tight);
  const auto directives = planner.plan_frontier(entry, tree, 8);
  EXPECT_EQ(directives.size(), 1u);
}

TEST(Guidance, SchedulePlansForMultithreadedPrograms) {
  const auto entry = make_bank_transfer();
  GuidancePlanner planner;
  Rng rng(7);
  const auto directives = planner.plan_schedules(entry, 6, rng);
  ASSERT_EQ(directives.size(), 6u);
  for (const auto& d : directives) {
    ASSERT_TRUE(d.schedule.has_value());
    EXPECT_FALSE(d.schedule->runs.empty());
  }
}

TEST(Guidance, ScheduleDirectivesFindDeadlocksFaster) {
  // Among 40 guided runs, staggered schedules should hit the deadlock at
  // least as often as 40 natural runs.
  const auto entry = make_bank_transfer();
  GuidancePlanner planner;
  Rng rng(11);
  const auto directives = planner.plan_schedules(entry, 40, rng);

  int natural = 0, guided = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {150};
    cfg.seed = seed;
    if (execute(entry.program, cfg).trace.outcome == Outcome::kDeadlock) {
      natural++;
    }
  }
  for (std::size_t i = 0; i < directives.size(); ++i) {
    ExecConfig cfg;
    cfg.inputs = {150};
    cfg.seed = 1000 + i;
    cfg.schedule_plan = &*directives[i].schedule;
    if (execute(entry.program, cfg).trace.outcome == Outcome::kDeadlock) {
      guided++;
    }
  }
  EXPECT_GE(guided, natural);
  EXPECT_GT(guided, 0);
}

// ---------------------------------------------------------------- coop -----

TEST(Coop, SingleWorkerCompletes) {
  const auto entry = make_config_space(8);
  CoopConfig cfg;
  cfg.num_workers = 1;
  const auto result = run_cooperative_exploration(entry, cfg);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.paths_explored, 256u);
}

TEST(Coop, MoreWorkersAreFaster) {
  const auto entry = make_config_space(9);
  CoopConfig one, eight;
  one.num_workers = 1;
  eight.num_workers = 8;
  const auto r1 = run_cooperative_exploration(entry, one);
  const auto r8 = run_cooperative_exploration(entry, eight);
  ASSERT_TRUE(r1.complete);
  ASSERT_TRUE(r8.complete);
  EXPECT_LT(r8.ticks * 3, r1.ticks);  // at least ~3x on 8 workers
}

TEST(Coop, AllStrategiesComplete) {
  const auto entry = make_file_copier();
  for (auto strategy : {PartitionStrategy::kStatic,
                        PartitionStrategy::kDynamic,
                        PartitionStrategy::kPortfolio}) {
    CoopConfig cfg;
    cfg.num_workers = 4;
    cfg.strategy = strategy;
    const auto result = run_cooperative_exploration(entry, cfg);
    EXPECT_TRUE(result.complete) << strategy_name(strategy);
    EXPECT_GT(result.paths_explored, 0u) << strategy_name(strategy);
  }
}

TEST(Coop, SurvivesChurnAndLoss) {
  const auto entry = make_config_space(8);
  CoopConfig cfg;
  cfg.num_workers = 6;
  cfg.strategy = PartitionStrategy::kDynamic;
  cfg.steps_per_tick = 20;  // slow workers: churn has time to strike
  cfg.churn_prob = 0.02;
  cfg.net.drop_prob = 0.05;
  const auto result = run_cooperative_exploration(entry, cfg);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.paths_explored, 256u);
  EXPECT_GT(result.worker_deaths, 0u);
}

TEST(Coop, DynamicBeatsStaticUnderChurn) {
  const auto entry = make_file_copier();  // heterogeneous path costs
  CoopConfig base;
  base.num_workers = 6;
  base.churn_prob = 0.004;
  base.net.drop_prob = 0.02;
  base.seed = 3;

  CoopConfig s = base, d = base;
  s.strategy = PartitionStrategy::kStatic;
  d.strategy = PartitionStrategy::kDynamic;
  const auto rs = run_cooperative_exploration(entry, s);
  const auto rd = run_cooperative_exploration(entry, d);
  ASSERT_TRUE(rs.complete);
  ASSERT_TRUE(rd.complete);
  EXPECT_LE(rd.ticks, rs.ticks);
}

TEST(Coop, DeterministicForSeed) {
  const auto entry = make_config_space(7);
  CoopConfig cfg;
  cfg.num_workers = 3;
  cfg.churn_prob = 0.01;
  cfg.net.drop_prob = 0.05;
  const auto a = run_cooperative_exploration(entry, cfg);
  const auto b = run_cooperative_exploration(entry, cfg);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.worker_deaths, b.worker_deaths);
}

// ----------------------------------------------------------------- hive ----

class HiveTest : public ::testing::Test {
 protected:
  HiveTest() : corpus_(standard_corpus()), hive_(&corpus_) {}

  const CorpusEntry& entry(const std::string& name) const {
    for (const auto& e : corpus_) {
      if (e.program.name == name) return e;
    }
    SB_CHECK(false);
    return corpus_[0];
  }

  std::vector<CorpusEntry> corpus_;
  Hive hive_;
};

TEST_F(HiveTest, IngestBuildsTree) {
  const auto& parser = entry("media_parser");
  for (std::uint64_t i = 1; i <= 20; ++i) {
    Trace t = failing_trace(parser, {static_cast<Value>(i % 64),
                                     static_cast<Value>(i * 12 % 256)},
                            i);
    hive_.ingest(t);
  }
  ExecTree* tree = hive_.tree(parser.program.id);
  ASSERT_NE(tree, nullptr);
  EXPECT_GT(tree->num_paths(), 1u);
  EXPECT_EQ(hive_.stats().traces_ingested, 20u);
}

TEST_F(HiveTest, WireRoundTripThroughIngestBytes) {
  const auto& parser = entry("media_parser");
  const Trace t = failing_trace(parser, {13, 250}, 5);
  hive_.ingest_bytes(encode_trace(t));
  EXPECT_EQ(hive_.stats().traces_ingested, 1u);
  EXPECT_EQ(hive_.bug_tracker().all().size(), 1u);
}

TEST_F(HiveTest, MalformedBytesCounted) {
  hive_.ingest_bytes({0xde, 0xad, 0xbe, 0xef});
  EXPECT_EQ(hive_.stats().decode_failures, 1u);
  EXPECT_EQ(hive_.stats().traces_ingested, 0u);
}

TEST_F(HiveTest, DuplicateTraceIdsDropped) {
  const auto& parser = entry("media_parser");
  const Trace t = failing_trace(parser, {20, 10}, 7);
  hive_.ingest(t);
  hive_.ingest(t);
  EXPECT_EQ(hive_.stats().traces_ingested, 1u);
  EXPECT_EQ(hive_.stats().duplicates_dropped, 1u);
}

TEST_F(HiveTest, CrashProducesApprovedFix) {
  const auto& parser = entry("media_parser");
  hive_.ingest(failing_trace(parser, {13, 250}, 3));
  const auto fixes = hive_.process();
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_GE(fixes[0].score(), 0.9);
  EXPECT_EQ(hive_.stats().fixes_approved, 1u);
  EXPECT_TRUE(hive_.bug_tracker().open_bugs().empty());
}

TEST_F(HiveTest, ProcessIsIdempotentPerBug) {
  const auto& parser = entry("media_parser");
  hive_.ingest(failing_trace(parser, {13, 250}, 3));
  EXPECT_EQ(hive_.process().size(), 1u);
  EXPECT_TRUE(hive_.process().empty());  // no new bugs, no new fixes
}

TEST_F(HiveTest, DeadlockProducesLockFix) {
  const auto& bank = entry("bank_transfer");
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Trace t = failing_trace(bank, {150}, seed);
    if (t.outcome == Outcome::kDeadlock) {
      hive_.ingest(t);
      break;
    }
  }
  const auto fixes = hive_.process();
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<LockAvoidanceFix>(fixes[0].fix));
}

TEST_F(HiveTest, ScheduleAssertGoesToRepairLab) {
  const auto& race = entry("race_counter");
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Trace t = failing_trace(race, {}, seed);
    if (t.outcome == Outcome::kCrash) {
      hive_.ingest(t);
      break;
    }
  }
  ASSERT_EQ(hive_.bug_tracker().count(BugKind::kScheduleAssert), 1u);
  const auto fixes = hive_.process();
  EXPECT_TRUE(fixes.empty());  // never auto-distributed
  EXPECT_EQ(hive_.repair_lab().size(), 1u);
}

TEST_F(HiveTest, ProofAfterIngestingExecutions) {
  const auto& config = entry("config_space_10");
  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    std::vector<Value> inputs;
    for (int j = 0; j < 10; ++j) inputs.push_back(rng.next_bool() ? 1 : 0);
    ExecConfig cfg;
    cfg.inputs = inputs;
    auto result = execute(config.program, cfg);
    result.trace.id = TraceId(static_cast<std::uint64_t>(i) + 1);
    hive_.ingest(result.trace);
  }
  const auto cert =
      hive_.attempt_proof(config.program.id, Property::kNeverCrashes);
  EXPECT_TRUE(cert.publishable());
  EXPECT_EQ(cert.paths_total, 1024u);
  EXPECT_GT(cert.paths_from_executions, 0u);
  EXPECT_GT(cert.paths_from_symbolic, 0u);
  EXPECT_EQ(hive_.published_proofs().size(), 1u);
}

TEST_F(HiveTest, KAnonymityGateHoldsRarePaths) {
  HiveConfig cfg;
  cfg.k_anonymity = 3;
  Hive gated(&corpus_, cfg);
  const auto& parser = entry("media_parser");
  // One pod, one path: never released.
  Trace t = failing_trace(parser, {20, 10}, 1);
  t.pod = PodId(1);
  gated.ingest(t);
  EXPECT_EQ(gated.stats().gated_traces, 1u);
  ExecTree* tree = gated.tree(parser.program.id);
  EXPECT_TRUE(tree == nullptr || tree->num_paths() == 0u);

  // Two more pods with the same path: the bucket releases.
  for (std::uint64_t pod = 2; pod <= 3; ++pod) {
    Trace more = failing_trace(parser, {20, 10}, pod * 100);
    more.pod = PodId(pod);
    more.id = TraceId(pod * 1000);
    gated.ingest(more);
  }
  tree = gated.tree(parser.program.id);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->num_paths(), 1u);
}

}  // namespace
}  // namespace softborg
