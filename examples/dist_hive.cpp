// Multi-process distributed hive (ISSUE 9): one router process owning the
// fleet ingress, N shard worker processes each owning a Hive, talking
// length-prefixed frames over Unix-domain or TCP sockets with credit-based
// backpressure and bounded, priority-shedding ingress queues.
//
// Three modes:
//
//   dist_hive fleet  [--shards N] [--traces N] [--snapshot-root DIR] ...
//       One-command demo: forks N shard workers, runs the router inline,
//       streams a generated workload through the fleet, prints the closing
//       ledger, reaps the children.
//
//   dist_hive router [--addr A] [--shards N] [--traces N] [--pace-us U] ...
//       The ingress alone: listens on A (default unix:/tmp/softborg-hive-
//       <pid>.sock; "tcp:HOST:PORT" works too), waits for workers to dial
//       in, routes the workload, runs the shutdown protocol, reports. A
//       shard dying mid-run degrades to shedding — the router never wedges;
//       a worker that re-dials resumes service. CI drives this mode and
//       kill -9s a shard under it.
//
//   dist_hive shard --index I [--addr A] [--snapshot-dir D] ...
//       One shard worker: warm-starts from --snapshot-dir when it holds a
//       valid snapshot (prints which), dials the router, serves until the
//       shutdown protocol completes.
//
//   dist_hive trace-merge [--out PATH] DUMP.sbfr...
//       Merges flight-recorder dumps (written under --trace-dump DIR by the
//       modes above) into one Chrome trace_event / Perfetto JSON timeline.
//
// --trace-dump DIR (fleet/router/shard modes) enables causal tracing + the
// flight recorder: each process dumps DIR/router.sbfr or DIR/shardN.sbfr at
// clean exit, on snapshot requests, and from the fatal-signal handler.
//
// Output lines are stable and greppable (CI asserts on them):
//   router: received=... forwarded=... shed=... stalls=... queue_peak=...
//   shard N: resumed from snapshot | cold start
//   trace-merge: dumps=... events=... flows=... cross_process_chains=...
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/fsio.h"
#include "core/softborg.h"

namespace {

using namespace softborg;
using namespace softborg::dist;

std::vector<Bytes> make_workload(const std::vector<CorpusEntry>& corpus,
                                 std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> wires;
  wires.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CorpusEntry& entry = corpus[rng.next_below(corpus.size())];
    ExecConfig cfg;
    for (const auto& d : entry.domains) {
      cfg.inputs.push_back(rng.next_in(d.lo, d.hi));
    }
    cfg.seed = seed * 1'000'000 + i;
    auto result = execute(entry.program, cfg);
    result.trace.id = TraceId(i + 1);
    result.trace.day = i % 7;
    wires.push_back(encode_trace(result.trace));
  }
  return wires;
}

struct Options {
  std::string addr;
  std::size_t shards = 4;
  std::size_t traces = 2000;
  std::uint64_t seed = 42;
  std::size_t index = 0;  // shard mode
  unsigned pace_us = 0;   // sleep between routed traces (widens kill windows)
  std::size_t queue_capacity = 1024;
  std::uint32_t credit_window = 256;
  int deadline_ms = 60'000;
  std::string snapshot_dir;   // shard mode
  std::string snapshot_root;  // fleet mode: <root>/shardN per worker
  std::uint64_t snapshot_every = 0;
  std::string trace_dump;  // flight-recorder dump dir; empty = tracing off
  const char* prom_path = nullptr;
};

std::string default_addr() {
  return "unix:/tmp/softborg-hive-" + std::to_string(::getpid()) + ".sock";
}

// Best-effort mkdir -p for the trace dump directory.
void mkdirs(const std::string& path) {
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    pos = path.find('/', pos + 1);
    ::mkdir(path.substr(0, pos).c_str(), 0755);
  }
}

// Turns on causal tracing + the flight recorder for THIS process, with the
// fatal-signal flush aimed at `dump_path` (the same setup run_worker_loop
// performs for forked workers).
void enable_process_tracing(const char* label, const std::string& dump_path) {
  obs::set_tracing_enabled(true);
  obs::Recorder::set_enabled(true);
  auto& rec = obs::Recorder::global();
  rec.clear();
  rec.set_label(label);
  rec.install_signal_flush(dump_path);
}

int run_router(const Options& opt) {
  const auto corpus = standard_corpus();
  Listener listener(opt.addr);
  std::printf("router: listening on %s, %zu shard(s), %zu trace(s)\n",
              listener.bound_addr().c_str(), opt.shards, opt.traces);
  std::fflush(stdout);

  std::string router_dump;
  if (!opt.trace_dump.empty()) {
    mkdirs(opt.trace_dump);
    router_dump = opt.trace_dump + "/router.sbfr";
    enable_process_tracing("router", router_dump);
  }

  RouterConfig config;
  config.queue_capacity = opt.queue_capacity;
  TraceRouter router(opt.shards, config);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opt.deadline_ms);
  const auto expired = [&] {
    return std::chrono::steady_clock::now() >= deadline;
  };
  const auto round = [&] {
    while (auto ch = listener.accept()) router.add_unidentified(std::move(ch));
    router.pump();
  };

  // Grace period: wait for the first worker so the head of the workload is
  // not instantly queued against an empty fleet (late workers still catch
  // up — a not-yet-connected shard's queue buffers for it).
  while (!expired()) {
    round();
    bool any = false;
    for (std::size_t i = 0; i < opt.shards; ++i) any |= router.shard_alive(i);
    if (any) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto wires = make_workload(corpus, opt.traces, opt.seed);
  for (auto& wire : wires) {
    obs::TraceContext ctx;
    if (obs::tracing_enabled()) {
      // This process is the pod stand-in: the causal chain is born at
      // injection, exactly as Pod::run_once births it in a real fleet.
      if (const auto s = summarize_trace_wire(wire)) {
        ctx = obs::with_hop(
            obs::TraceContext{
                obs::causal_trace_id(s->id.value, s->program.value), 0},
            obs::Hop::kPod);
        obs::Recorder::record(obs::EventKind::kPodEmit, ctx,
                              static_cast<std::uint32_t>(s->pod.value));
      }
    }
    router.route_wire(std::move(wire), ctx);
    round();
    if (opt.pace_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(opt.pace_us));
    }
  }
  while (!router.quiescent() && !expired()) {
    round();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  router.broadcast_shutdown();
  while (!router.all_reports_in() && !expired()) {
    round();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  const RouterStats& s = router.stats();
  std::printf(
      "router: received=%llu forwarded=%llu shed=%llu stalls=%llu "
      "stall_s=%.3f queue_peak=%zu routing_failures=%llu\n",
      static_cast<unsigned long long>(s.received),
      static_cast<unsigned long long>(s.forwarded),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.backpressure_stalls), s.stall_seconds,
      s.queue_depth_peak, static_cast<unsigned long long>(s.routing_failures));

  std::uint64_t fleet_ingested = 0, fleet_bugs = 0, fleet_paths = 0;
  std::size_t reports = 0;
  for (std::size_t i = 0; i < router.reports().size(); ++i) {
    const auto& report = router.reports()[i];
    if (!report.closed) {
      std::printf("shard %zu: no closing report (dead or wedged)\n", i);
      continue;
    }
    const auto stats = decode_worker_stats(report.stats_wire);
    if (!stats) continue;
    reports++;
    fleet_ingested += stats->ingested;
    fleet_bugs += stats->hive.bugs_found;
    fleet_paths += stats->hive.new_paths;
    std::printf(
        "shard %llu: ingested=%llu shed=%llu batches=%llu snapshots=%llu "
        "bugs=%llu new_paths=%llu trees_bytes=%zu\n",
        static_cast<unsigned long long>(stats->shard_index),
        static_cast<unsigned long long>(stats->ingested),
        static_cast<unsigned long long>(stats->shed),
        static_cast<unsigned long long>(stats->batches),
        static_cast<unsigned long long>(stats->snapshots_written),
        static_cast<unsigned long long>(stats->hive.bugs_found),
        static_cast<unsigned long long>(stats->hive.new_paths),
        report.trees_wire.size());
  }
  std::printf("fleet: reports=%zu/%zu ingested=%llu bugs=%llu new_paths=%llu\n",
              reports, opt.shards,
              static_cast<unsigned long long>(fleet_ingested),
              static_cast<unsigned long long>(fleet_bugs),
              static_cast<unsigned long long>(fleet_paths));

  if (opt.prom_path != nullptr) {
    obs::write_text_file(opt.prom_path,
                         obs::to_prometheus(
                             obs::MetricsRegistry::global().snapshot()));
  }
  if (!router_dump.empty()) {
    (void)obs::Recorder::global().flush_to_file(router_dump);
  }
  return router.all_reports_in() ? 0 : 1;
}

int run_shard(const Options& opt) {
  const auto corpus = standard_corpus();
  WorkerConfig config;
  config.queue_capacity = opt.queue_capacity;
  config.credit_window = opt.credit_window;
  config.snapshot_dir = opt.snapshot_dir;
  config.snapshot_every_batches = opt.snapshot_every;
  if (!opt.trace_dump.empty()) {
    mkdirs(opt.trace_dump);
    config.trace_dump_path =
        opt.trace_dump + "/shard" + std::to_string(opt.index) + ".sbfr";
    char label[32];
    std::snprintf(label, sizeof(label), "shard%zu", opt.index);
    enable_process_tracing(label, config.trace_dump_path);
  }
  ShardWorker worker(opt.index, &corpus, config);
  const bool resumed = worker.try_resume();
  std::printf("shard %zu: %s\n", opt.index,
              resumed ? "resumed from snapshot" : "cold start");
  std::fflush(stdout);

  auto ch = dial(opt.addr);
  if (ch == nullptr) {
    std::fprintf(stderr, "shard %zu: cannot reach router at %s\n", opt.index,
                 opt.addr.c_str());
    return 2;
  }
  worker.send_hello(*ch);
  while (worker.pump(*ch)) {
    if (!ch->alive()) {
      std::fprintf(stderr, "shard %zu: router link died\n", opt.index);
      return 3;
    }
    if (!worker.last_round_active()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  for (int i = 0; i < 1000 && ch->alive(); ++i) {
    ch->flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!config.trace_dump_path.empty()) {
    (void)obs::Recorder::global().flush_to_file(config.trace_dump_path);
  }
  const WorkerStatsMsg stats = worker.closing_stats();
  std::printf("shard %zu: done ingested=%llu shed=%llu snapshots=%llu\n",
              opt.index, static_cast<unsigned long long>(stats.ingested),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.snapshots_written));
  return 0;
}

int run_fleet(Options opt) {
  if (opt.addr.empty()) opt.addr = default_addr();
  // Fork the workers FIRST (no thread pools exist yet), each execing the
  // same worker loop the standalone shard mode runs.
  const auto corpus = standard_corpus();
  std::vector<int> pids;
  for (std::size_t i = 0; i < opt.shards; ++i) {
    WorkerConfig config;
    config.queue_capacity = opt.queue_capacity;
    config.credit_window = opt.credit_window;
    if (!opt.snapshot_root.empty()) {
      config.snapshot_dir = opt.snapshot_root + "/shard" + std::to_string(i);
      config.snapshot_every_batches = opt.snapshot_every;
    }
    if (!opt.trace_dump.empty()) {
      if (i == 0) mkdirs(opt.trace_dump);
      config.trace_dump_path =
          opt.trace_dump + "/shard" + std::to_string(i) + ".sbfr";
    }
    const int pid = spawn_worker_process(i, &corpus, config, opt.addr);
    if (pid <= 0) {
      std::fprintf(stderr, "fleet: fork failed for shard %zu\n", i);
      return 1;
    }
    pids.push_back(pid);
  }
  const int rc = run_router(opt);
  int failures = 0;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    int status = 0;
    ::waitpid(pids[i], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "fleet: shard %zu exited abnormally (status %d)\n",
                   i, status);
      failures++;
    }
  }
  return rc != 0 ? rc : (failures > 0 ? 1 : 0);
}

// trace-merge [--out PATH] DUMP.sbfr...: decode per-process flight-recorder
// dumps, merge onto one wall-clock axis, emit Chrome/Perfetto JSON. Corrupt
// or missing dumps are skipped with a warning (a kill -9'd process leaves
// its last snapshot-time dump — or nothing — behind; the rest of the fleet
// still merges).
int run_trace_merge(int argc, char** argv) {
  std::string out_path = "-";
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: dist_hive trace-merge [--out PATH] DUMP.sbfr...\n");
    return 2;
  }
  std::vector<obs::RecorderDump> dumps;
  for (const std::string& path : inputs) {
    Bytes data;
    if (!read_file(path, data)) {
      std::fprintf(stderr, "trace-merge: %s: unreadable, skipped\n",
                   path.c_str());
      continue;
    }
    auto dump = obs::decode_recorder_dump(data);
    if (!dump) {
      std::fprintf(stderr, "trace-merge: %s: corrupt dump, skipped\n",
                   path.c_str());
      continue;
    }
    dumps.push_back(std::move(*dump));
  }
  if (dumps.empty()) {
    std::fprintf(stderr, "trace-merge: no decodable dumps\n");
    return 1;
  }
  obs::ChromeTraceStats st;
  const std::string json = obs::to_chrome_trace(dumps, &st);
  if (!obs::write_text_file(out_path, json)) return 1;
  std::printf(
      "trace-merge: dumps=%zu events=%zu flows=%zu cross_process_chains=%zu "
      "-> %s\n",
      st.processes, st.events, st.flows, st.cross_process_chains,
      out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dist_hive fleet|router|shard [--addr A] [--shards N] "
                 "[--traces N] [--seed S] [--index I] [--pace-us U] "
                 "[--queue-capacity N] [--credit-window N] [--deadline-ms M] "
                 "[--snapshot-dir D] [--snapshot-root D] [--snapshot-every N] "
                 "[--trace-dump DIR] [--metrics-prom PATH]\n"
                 "       dist_hive trace-merge [--out PATH] DUMP.sbfr...\n");
    return 2;
  }
  const std::string mode = argv[1];
  if (mode == "trace-merge") return run_trace_merge(argc, argv);
  Options opt;
  for (int i = 2; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--addr") == 0) {
      opt.addr = next();
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      opt.shards = static_cast<std::size_t>(atoll(next()));
    } else if (std::strcmp(argv[i], "--traces") == 0) {
      opt.traces = static_cast<std::size_t>(atoll(next()));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = static_cast<std::uint64_t>(atoll(next()));
    } else if (std::strcmp(argv[i], "--index") == 0) {
      opt.index = static_cast<std::size_t>(atoll(next()));
    } else if (std::strcmp(argv[i], "--pace-us") == 0) {
      opt.pace_us = static_cast<unsigned>(atoll(next()));
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
      opt.queue_capacity = static_cast<std::size_t>(atoll(next()));
    } else if (std::strcmp(argv[i], "--credit-window") == 0) {
      opt.credit_window = static_cast<std::uint32_t>(atoll(next()));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      opt.deadline_ms = static_cast<int>(atoll(next()));
    } else if (std::strcmp(argv[i], "--snapshot-dir") == 0) {
      opt.snapshot_dir = next();
    } else if (std::strcmp(argv[i], "--snapshot-root") == 0) {
      opt.snapshot_root = next();
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0) {
      opt.snapshot_every = static_cast<std::uint64_t>(atoll(next()));
    } else if (std::strcmp(argv[i], "--trace-dump") == 0) {
      opt.trace_dump = next();
    } else if (std::strcmp(argv[i], "--metrics-prom") == 0) {
      opt.prom_path = next();
    } else {
      std::fprintf(stderr, "dist_hive: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (opt.addr.empty()) opt.addr = default_addr();
  if (mode == "fleet") return run_fleet(opt);
  if (mode == "router") return run_router(opt);
  if (mode == "shard") return run_shard(opt);
  std::fprintf(stderr, "dist_hive: unknown mode %s\n", mode.c_str());
  return 2;
}
