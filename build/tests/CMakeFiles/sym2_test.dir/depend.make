# Empty dependencies file for sym2_test.
# This may be replaced when dependencies are built.
