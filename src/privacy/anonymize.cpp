#include "privacy/anonymize.h"

#include <algorithm>

#include "trace/codec.h"

namespace softborg {

Trace anonymize(const Trace& t, const AnonymizeConfig& config) {
  Trace out = t;
  if (config.strip_pod_id) {
    out.pod = config.pod_bucket_count > 0
                  ? PodId(t.pod.value % config.pod_bucket_count)
                  : PodId(0);
  }
  if (config.quantize_day) out.day = (t.day / 7) * 7;
  if (config.coarsen_syscalls) {
    for (auto& sc : out.syscalls) sc.call_index = 0;
  }
  if (config.bit_suppression > 0) {
    BitVec kept;
    for (std::size_t i = 0; i < t.branch_bits.size(); ++i) {
      if ((i + 1) % config.bit_suppression == 0) continue;  // drop n-th
      kept.push_back(t.branch_bits[i]);
    }
    out.branch_bits = kept;
  }
  return out;
}

bool has_identifiers(const Trace& t) { return t.pod.value != 0; }

std::vector<Trace> KAnonymityGate::add(Trace t) {
  const std::uint64_t key = t.branch_bits.hash();
  if (released_.count(key) != 0) return {std::move(t)};

  Bucket& bucket = buckets_[key];
  bucket.pods.insert(t.pod.value);
  bucket.pending.push_back(std::move(t));
  if (bucket.pods.size() < k_) return {};

  std::vector<Trace> out = std::move(bucket.pending);
  buckets_.erase(key);
  released_.insert(key);
  return out;
}

std::size_t KAnonymityGate::buffered() const {
  std::size_t n = 0;
  for (const auto& [key, bucket] : buckets_) n += bucket.pending.size();
  return n;
}

namespace {
template <typename Set>
std::vector<std::uint64_t> sorted_keys(const Set& s) {
  std::vector<std::uint64_t> keys;
  keys.reserve(s.size());
  for (const auto& entry : s) {
    if constexpr (requires { entry.first; }) {
      keys.push_back(entry.first);
    } else {
      keys.push_back(entry);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}
}  // namespace

void KAnonymityGate::save_state(Bytes& out) const {
  put_varint(out, k_);
  const auto bucket_keys = sorted_keys(buckets_);
  put_varint(out, bucket_keys.size());
  for (const std::uint64_t key : bucket_keys) {
    const Bucket& bucket = buckets_.at(key);
    put_varint(out, key);
    const auto pods = sorted_keys(bucket.pods);
    put_varint(out, pods.size());
    for (const std::uint64_t pod : pods) put_varint(out, pod);
    put_varint(out, bucket.pending.size());
    for (const Trace& t : bucket.pending) put_blob(out, encode_trace(t));
  }
  const auto released = sorted_keys(released_);
  put_varint(out, released.size());
  for (const std::uint64_t key : released) put_varint(out, key);
}

bool KAnonymityGate::load_state(StateReader& r) {
  if (r.u64() != k_) {
    r.fail();
    return false;
  }
  buckets_.clear();
  released_.clear();
  const std::uint64_t n_buckets = r.count(3);
  for (std::uint64_t i = 0; i < n_buckets && r.ok(); ++i) {
    const std::uint64_t key = r.u64();
    Bucket bucket;
    const std::uint64_t n_pods = r.count();
    for (std::uint64_t p = 0; p < n_pods && r.ok(); ++p) {
      if (!bucket.pods.insert(r.u64()).second) r.fail();
    }
    const std::uint64_t n_pending = r.count();
    bucket.pending.reserve(n_pending);
    for (std::uint64_t p = 0; p < n_pending && r.ok(); ++p) {
      Bytes wire;
      r.blob(wire);
      if (!r.ok()) break;
      auto t = decode_trace(wire);
      if (!t) {
        r.fail();
        break;
      }
      // Each buffered trace's path must hash to its bucket key, or a bit
      // flip has rebucketed it; and a released path has no bucket.
      if (t->branch_bits.hash() != key) {
        r.fail();
        break;
      }
      bucket.pending.push_back(std::move(*t));
    }
    // A bucket at or past k pods would already have been released.
    if (r.ok() && bucket.pods.size() >= k_ && k_ > 0) r.fail();
    if (!r.ok()) return false;
    if (!buckets_.emplace(key, std::move(bucket)).second) {
      r.fail();
      return false;
    }
  }
  const std::uint64_t n_released = r.count();
  for (std::uint64_t i = 0; i < n_released && r.ok(); ++i) {
    const std::uint64_t key = r.u64();
    if (buckets_.count(key) != 0 || !released_.insert(key).second) r.fail();
  }
  return r.ok();
}

}  // namespace softborg
