// Cooperative prover: tests and proofs as one spectrum (paper §3.3) plus
// cooperative symbolic execution (§4).
//
// Part 1 — cumulative proof: a handful of natural executions seed the
//   collective tree; guidance directives harvest the easy gaps; the proof
//   engine closes the rest symbolically (including refuting the worker
//   pool's in-system-infeasible defensive abort) and publishes a
//   certificate, which an independent exhaustive checker then audits.
//
// Part 2 — cooperative exploration: the same tree is explored by a swarm of
//   unreliable workers over a lossy network, comparing static, dynamic
//   (Cloud9-style), and portfolio-theoretic work allocation.
#include <cstdio>

#include "core/softborg.h"

int main() {
  using namespace softborg;

  // ---------------- part 1: from a few tests to a proof ----------------
  const auto pool = make_worker_pool();
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_worker_pool());
  Hive hive(&corpus);

  // Three natural user executions...
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {static_cast<Value>(40 * seed)};
    cfg.seed = seed;
    auto result = execute(pool.program, cfg);
    result.trace.id = TraceId(seed);
    hive.ingest(result.trace);
  }
  const ExecTree* tree = hive.tree(pool.program.id);
  std::printf("part 1: after 3 natural executions: %zu paths, complete=%s\n",
              tree->num_paths(), tree->complete() ? "yes" : "no");

  // ...then the proof engine closes the gaps.
  const auto cert =
      hive.attempt_proof(pool.program.id, Property::kNeverCrashes);
  std::printf("        %s\n", cert.describe().c_str());
  std::string reason;
  const bool audited = check_certificate(corpus[0], cert, 1u << 16, &reason);
  std::printf("        independent audit: %s\n",
              audited ? "PASSED (exhaustive re-execution)" : reason.c_str());

  // The relaxed-consistency contrast (S2E, §4): at unit level the defensive
  // abort IS reachable — over-approximation finds latent defects that the
  // in-system proof correctly excludes.
  ExploreOptions relaxed_opt;
  SymbolicExecutor relaxed(pool.program, relaxed_opt);
  const auto unit_paths = relaxed.explore_unit(
      pool.unit_entry_pc, {{pool.unit_params[0], VarDomain{-128, 127}}});
  std::size_t unit_aborts = 0;
  for (const auto& p : unit_paths) {
    if (p.terminal == PathTerminal::kCrash) unit_aborts++;
  }
  std::printf(
      "        unit-level (relaxed) exploration: %zu paths, %zu latent "
      "abort(s) — a superset of in-system behaviour\n",
      unit_paths.size(), unit_aborts);

  // ---------------- part 2: cooperative symbolic execution ----------------
  const auto big = make_skewed_workload(10);  // heterogeneous path costs
  std::printf("\npart 2: cooperative exploration of %s (%s)\n",
              big.program.name.c_str(), big.description.c_str());
  std::printf("%-10s %-8s %-8s %-9s %-8s %-7s\n", "strategy", "workers",
              "ticks", "speedup", "wasted", "msgs");

  CoopConfig base;
  base.net.drop_prob = 0.03;
  base.churn_prob = 0.002;
  base.steps_per_tick = 200;
  base.split_depth = 6;  // finer units: better balance under skew
  std::uint64_t solo_ticks = 0;
  for (auto strategy : {PartitionStrategy::kStatic,
                        PartitionStrategy::kDynamic,
                        PartitionStrategy::kPortfolio}) {
    for (std::size_t workers : {1u, 4u, 16u}) {
      CoopConfig cfg = base;
      cfg.strategy = strategy;
      cfg.num_workers = workers;
      const auto result = run_cooperative_exploration(big, cfg);
      if (strategy == PartitionStrategy::kStatic && workers == 1) {
        solo_ticks = result.ticks;
      }
      std::printf("%-10s %-8zu %-8llu %-9.2f %-8llu %-7llu\n",
                  strategy_name(strategy), workers,
                  static_cast<unsigned long long>(result.ticks),
                  solo_ticks > 0 ? static_cast<double>(solo_ticks) /
                                       static_cast<double>(result.ticks)
                                 : 1.0,
                  static_cast<unsigned long long>(result.wasted_steps),
                  static_cast<unsigned long long>(result.messages));
    }
  }
  return audited ? 0 : 1;
}
