// Constraint solver for path constraints over bounded variables.
//
// Branch-and-prune: interval arithmetic over the current variable box tests
// each literal (definitely-true / definitely-false / undecided); undecided
// boxes are split on the widest variable until a decision or the node
// budget runs out. Interval operations are overflow-aware: any operation
// that could wrap returns the full int64 interval, so pruning is always
// sound with respect to MiniVM's wrapping semantics.
//
// Complete for the bounded domains SoftBorg uses (program input domains and
// syscall result ranges); returns kUnknown only on budget exhaustion.
#pragma once

#include <cstdint>
#include <vector>

#include "sym/expr.h"

namespace softborg {

struct VarDomain {
  Value lo = 0;
  Value hi = 0;

  bool operator==(const VarDomain&) const = default;
};

struct Assignment {
  std::vector<Value> inputs;
  std::vector<Value> unknowns;

  bool operator==(const Assignment&) const = default;
};

enum class SolveStatus : std::uint8_t { kSat, kUnsat, kUnknown };

const char* solve_status_name(SolveStatus s);

struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  Assignment model;  // valid iff status == kSat
  std::uint64_t nodes = 0;
};

// THE solver budget. Every layer that issues solver queries embeds this
// struct rather than duplicating its knobs: ExploreOptions::solver,
// ProofBudget::solver, and GuidancePlannerConfig::solver are all copied
// verbatim into the solve_path calls their layer makes. Precedence is
// strictly top-down — the proof engine overwrites ExploreOptions::solver
// with ProofBudget::solver for the executors it spawns, and the guidance
// planner does the same with its config — so the struct closest to the
// caller always wins and the knobs can no longer drift independently.
struct SolverOptions {
  std::uint64_t max_nodes = 200'000;
};

// Decides satisfiability of `pc` with input i ranging over
// input_domains[i] and syscall-unknown j over unknown_domains[j].
// Variables referenced by the constraint but absent from the domain vectors
// default to [0, 0].
SolveResult solve_path(const PathConstraint& pc,
                       const std::vector<VarDomain>& input_domains,
                       const std::vector<VarDomain>& unknown_domains = {},
                       const SolverOptions& options = {});

// True iff `assignment` satisfies every literal (exact, wrap-aware).
bool satisfies(const PathConstraint& pc, const Assignment& assignment);

}  // namespace softborg
