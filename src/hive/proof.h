// Cumulative proofs (paper §3.3): "a complete exploration of all paths
// leads to a proof, while a test is just a weaker proof".
//
// The ProofEngine combines the two ends of that spectrum:
//   * naturally-occurring executions already merged into the collective
//     execution tree (each guaranteed feasible, no solving needed), and
//   * symbolic gap closure: for every frontier (observed node with an
//     unexplored direction) the engine asks the solver whether that
//     direction is feasible at all — infeasible directions are closed with
//     an UNSAT certificate, feasible ones are explored symbolically and
//     their paths added to the tree (counted separately).
//
// When the tree becomes complete, the engine issues a ProofCertificate: the
// property holds on EVERY feasible path of P over the stated input domain.
// Certificates are independently checkable: for bounded domains the checker
// re-executes the program exhaustively (or on a dense sample) and confirms
// both the property and the path census.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/state_wire.h"
#include "minivm/corpus.h"
#include "sym/executor.h"
#include "tree/exec_tree.h"

namespace softborg {

enum class Property : std::uint8_t {
  kNeverCrashes = 0,
  kNeverDeadlocks = 1,
  kAlwaysTerminates = 2,  // no hangs within the step budget
};

const char* property_name(Property p);

struct ProofCertificate {
  ProofId id;
  ProgramId program;
  Property property = Property::kNeverCrashes;
  std::vector<VarDomain> input_domain;

  // Census of the completed tree.
  std::size_t paths_total = 0;
  std::size_t paths_from_executions = 0;  // observed in the wild
  std::size_t paths_from_symbolic = 0;    // added by gap closure
  std::size_t gaps_closed_infeasible = 0;

  bool complete = false;  // every direction observed or refuted
  bool holds = false;     // no counterexample path in the tree
  // How many gap-closure rounds saw more open directions than the frontier
  // budget could enumerate. Nonzero means the engine worked from a clipped
  // window of the frontier (correct but slower — later rounds revisit the
  // rest); it is the observability hook for tuning ProofBudget.
  std::size_t frontier_clips = 0;
  // When !holds: one counterexample (decision path + outcome).
  std::vector<SymDecision> counterexample;
  Outcome counterexample_outcome = Outcome::kOk;

  // Solver telemetry for this attempt, summed over every executor the
  // engine spawned. The cache counters say how much of the solver work was
  // recycled instead of re-derived (0 when no cache was supplied); the
  // fresh-solve count is solver_calls minus the three.
  std::uint64_t solver_calls = 0;
  std::uint64_t solver_cache_hits = 0;
  std::uint64_t solver_unsat_subsumed = 0;
  std::uint64_t solver_models_reused = 0;

  std::uint64_t day_issued = 0;

  // A certificate is publishable iff the tree was completed AND no
  // counterexample exists.
  bool publishable() const { return complete && holds; }

  std::string describe() const;

  bool operator==(const ProofCertificate&) const = default;
};

struct ProofBudget {
  std::size_t max_gap_closures = 10'000;
  std::size_t max_symbolic_paths = 100'000;
  // The unified solver budget, copied into every executor the engine
  // spawns (see SolverOptions in csolver.h for the precedence rules).
  SolverOptions solver;
  // Frontiers enumerated per gap-closure round. Enumeration is O(answer)
  // on the incremental tree, so this bounds solver work per round, not
  // tree-walk cost; ProofCertificate::frontier_clips records every round
  // where the tree held more open directions than this window.
  std::size_t frontier_budget = 64;
};

class ProofEngine {
 public:
  explicit ProofEngine(std::uint64_t next_proof_id = 1)
      : next_id_(next_proof_id) {}

  // Attempts a proof of `property` for the program over its full input
  // domain, extending `tree` in place (symbolic paths merged, infeasible
  // directions marked). Multi-threaded programs are rejected for
  // kNeverCrashes/kAlwaysTerminates (their decision trees are schedule-
  // woven) but kNeverDeadlocks can still be refuted from observations.
  // `cache`, when non-null, recycles solver results across the attempt's
  // executors (and, via the caller, across attempts and programs); the
  // certificate's cache counters report what it saved.
  ProofCertificate attempt(const CorpusEntry& entry, ExecTree& tree,
                           Property property, const ProofBudget& budget = {},
                           SolverCache* cache = nullptr);

  // Id bookkeeping for parallel sweeps: Hive::attempt_proofs_for assigns
  // each program `next_id() + its corpus position` up front (local engines
  // issue the pre-assigned ids), then advances this engine past the block —
  // so ids match what a serial loop over the same programs would issue.
  std::uint64_t next_id() const { return next_id_; }
  void advance_ids(std::uint64_t n) { next_id_ += n; }
  // Durable-store restore: a resumed hive continues the saved id sequence.
  void set_next_id(std::uint64_t id) { next_id_ = id; }

 private:
  std::uint64_t next_id_;
};

// Independent certificate checker: exhaustively (or densely, bounded by
// max_checks) re-executes the program over the certificate's input domain
// and verifies (a) the property indeed holds on every run and (b) the
// number of distinct decision paths does not exceed the census. Returns
// false with a reason on any discrepancy.
bool check_certificate(const CorpusEntry& entry, const ProofCertificate& cert,
                       std::uint64_t max_checks, std::string* reason);

// Durable-store codec: a resumed run's published-proof ledger round-trips
// exactly (operator== above), solver-cache counters included. decode
// validates every enum tag and domain bound; false = reader failed.
void encode_certificate(Bytes& out, const ProofCertificate& cert);
bool decode_certificate(StateReader& r, ProofCertificate& cert);

}  // namespace softborg
