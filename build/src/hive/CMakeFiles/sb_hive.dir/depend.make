# Empty dependencies file for sb_hive.
# This may be replaced when dependencies are built.
