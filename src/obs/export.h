// Snapshot exporters: Prometheus text exposition and JSON.
//
// Prometheus (exposition format 0.0.4): metric names are sanitized
// (dots to underscores) and prefixed "softborg_"; counters render as
// `counter`, gauges as `gauge`, histograms as `summary` with p50/p90/p99
// quantile labels plus `_sum` and `_count` series:
//
//   # TYPE softborg_net_sent_total counter
//   softborg_net_sent_total 4096
//   # TYPE softborg_hive_ingest_replay_us summary
//   softborg_hive_ingest_replay_us{quantile="0.5"} 123.4
//   ...
//   softborg_hive_ingest_replay_us_sum 5678.9
//   softborg_hive_ingest_replay_us_count 42
//
// JSON (schema "softborg.metrics.v1", bench/bench_json.h style — one
// self-describing document the CI archives next to BENCH_*.json):
//
//   { "schema": "softborg.metrics.v1",
//     "counters":   [ {"name": "...", "value": 0}, ... ],
//     "gauges":     [ {"name": "...", "value": 0}, ... ],
//     "histograms": [ {"name": "...", "count": 0, "sum": 0.0,
//                      "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}, ... ] }
//
// Arrays are name-sorted (the snapshot already is), so two exports of equal
// snapshots are byte-identical.
#pragma once

#include <string>

#include "obs/registry.h"

namespace softborg::obs {

std::string to_prometheus(const MetricsSnapshot& snap);
std::string to_json(const MetricsSnapshot& snap);

// Writes `content` to `path` ("-" means stdout). Returns false on I/O
// failure (logged).
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace softborg::obs
