// Minimal leveled, thread-safe logger.
//
// Entries carry a wall-clock timestamp and an optional component tag:
//
//   [2026-08-05 14:03:12.412] [INFO ] [hive] approved fix 3 for bug 7
//
// The level defaults to kWarn so bench output stays clean; examples raise
// it to kInfo to narrate the platform's feedback loop. It can also be set
// without a rebuild via the SOFTBORG_LOG environment variable
// (debug|info|warn|error, or the numeric level 0-3) — read once at startup;
// set_log_level() still overrides at runtime.
#pragma once

#include <cstdarg>
#include <string>

namespace softborg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

// printf-style; a newline is appended.
void log_at(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

// As log_at, with a component tag rendered after the level ("hive", "net",
// "world", ...). A null or empty component renders exactly like log_at.
void log_tagged(LogLevel level, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace softborg

#define SB_LOG_DEBUG(...) ::softborg::log_at(::softborg::LogLevel::kDebug, __VA_ARGS__)
#define SB_LOG_INFO(...) ::softborg::log_at(::softborg::LogLevel::kInfo, __VA_ARGS__)
#define SB_LOG_WARN(...) ::softborg::log_at(::softborg::LogLevel::kWarn, __VA_ARGS__)
#define SB_LOG_ERROR(...) ::softborg::log_at(::softborg::LogLevel::kError, __VA_ARGS__)

// Component-tagged variants: SB_CLOG_INFO("hive", "merged %zu paths", n).
#define SB_CLOG_DEBUG(comp, ...) \
  ::softborg::log_tagged(::softborg::LogLevel::kDebug, comp, __VA_ARGS__)
#define SB_CLOG_INFO(comp, ...) \
  ::softborg::log_tagged(::softborg::LogLevel::kInfo, comp, __VA_ARGS__)
#define SB_CLOG_WARN(comp, ...) \
  ::softborg::log_tagged(::softborg::LogLevel::kWarn, comp, __VA_ARGS__)
#define SB_CLOG_ERROR(comp, ...) \
  ::softborg::log_tagged(::softborg::LogLevel::kError, comp, __VA_ARGS__)
