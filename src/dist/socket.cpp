#include "dist/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/check.h"

namespace softborg::dist {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
// Compact the write buffer once the consumed prefix dominates; below this
// we just advance the offset (amortized O(1) sends).
constexpr std::size_t kWriteCompactAt = 1 << 20;

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  SB_CHECK(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

struct ParsedAddr {
  bool is_unix = false;
  std::string path;  // unix
  std::string host;  // tcp
  std::uint16_t port = 0;
};

ParsedAddr parse_addr(const std::string& addr) {
  ParsedAddr out;
  if (addr.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = addr.substr(5);
    SB_CHECK(!out.path.empty());
    // sun_path is a fixed 108-byte array; refuse early with a clear failure
    // instead of silently truncating the path.
    SB_CHECK(out.path.size() < sizeof(sockaddr_un{}.sun_path));
    return out;
  }
  SB_CHECK(addr.rfind("tcp:", 0) == 0);
  const std::string rest = addr.substr(4);
  const std::size_t colon = rest.rfind(':');
  SB_CHECK(colon != std::string::npos);
  out.host = rest.substr(0, colon);
  if (out.host.empty()) out.host = "0.0.0.0";
  out.port = static_cast<std::uint16_t>(std::stoul(rest.substr(colon + 1)));
  return out;
}

sockaddr_in make_inet_addr(const ParsedAddr& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(a.port);
  SB_CHECK(inet_pton(AF_INET, a.host.c_str(), &sa.sin_addr) == 1);
  return sa;
}

sockaddr_un make_unix_addr(const ParsedAddr& a) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  std::memcpy(sa.sun_path, a.path.c_str(), a.path.size() + 1);
  return sa;
}

}  // namespace

SocketChannel::SocketChannel(int fd) : fd_(fd) {
  SB_CHECK(fd_ >= 0);
  set_nonblocking(fd_);
  // Trace frames are latency-sensitive and small; don't let Nagle batch the
  // credit handshake (harmless no-op on unix sockets).
  int one = 1;
  (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

SocketChannel::~SocketChannel() { kill(); }

void SocketChannel::kill() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  wbuf_.clear();
  woff_ = 0;
}

void SocketChannel::send(std::uint32_t type, Bytes payload,
                         std::uint32_t credit, obs::TraceContext ctx) {
  if (fd_ < 0) return;
  encode_frame(wbuf_, type, credit, payload, ctx);
  flush();
}

void SocketChannel::flush() {
  while (fd_ >= 0 && woff_ < wbuf_.size()) {
    const ssize_t n = ::send(fd_, wbuf_.data() + woff_, wbuf_.size() - woff_,
                             MSG_NOSIGNAL);
    if (n > 0) {
      woff_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    kill();
    return;
  }
  if (woff_ == wbuf_.size()) {
    wbuf_.clear();
    woff_ = 0;
  } else if (woff_ >= kWriteCompactAt) {
    wbuf_.erase(wbuf_.begin(), wbuf_.begin() + static_cast<std::ptrdiff_t>(woff_));
    woff_ = 0;
  }
}

std::vector<Delivery> SocketChannel::poll() {
  std::vector<Delivery> out;
  if (fd_ < 0) return out;
  flush();
  std::uint8_t chunk[kReadChunk];
  while (fd_ >= 0) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      decoder_.feed(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    kill();  // EOF or hard error
    break;
  }
  while (auto f = decoder_.next()) {
    out.push_back(Delivery{f->type, f->credit, std::move(f->payload), f->ctx});
  }
  if (decoder_.failed()) kill();  // poisoned stream: corrupt or hostile peer
  return out;
}

Listener::Listener(const std::string& addr) {
  const ParsedAddr a = parse_addr(addr);
  if (a.is_unix) {
    unix_path_ = a.path;
    ::unlink(a.path.c_str());  // stale socket file from a killed process
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    SB_CHECK(fd_ >= 0);
    const sockaddr_un sa = make_unix_addr(a);
    SB_CHECK(::bind(fd_, reinterpret_cast<const sockaddr*>(&sa),
                    sizeof(sa)) == 0);
    bound_addr_ = addr;
  } else {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SB_CHECK(fd_ >= 0);
    int one = 1;
    (void)setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa = make_inet_addr(a);
    SB_CHECK(::bind(fd_, reinterpret_cast<const sockaddr*>(&sa),
                    sizeof(sa)) == 0);
    socklen_t len = sizeof(sa);
    SB_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) == 0);
    bound_addr_ =
        "tcp:" + a.host + ":" + std::to_string(ntohs(sa.sin_port));
  }
  SB_CHECK(::listen(fd_, 64) == 0);
  set_nonblocking(fd_);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

std::unique_ptr<SocketChannel> Listener::accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return nullptr;
  return std::make_unique<SocketChannel>(fd);
}

std::unique_ptr<SocketChannel> dial(const std::string& addr, int timeout_ms) {
  const ParsedAddr a = parse_addr(addr);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int fd = -1;
    int rc = -1;
    if (a.is_unix) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      SB_CHECK(fd >= 0);
      const sockaddr_un sa = make_unix_addr(a);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
    } else {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      SB_CHECK(fd >= 0);
      const sockaddr_in sa = make_inet_addr(a);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
    }
    if (rc == 0) return std::make_unique<SocketChannel>(fd);
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) return nullptr;
    // The common race: the worker started before the router bound its port.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace softborg::dist
