#include "pod/protocol.h"

namespace softborg {

namespace {
constexpr std::uint64_t kMaxItems = 1u << 16;

struct Reader {
  const Bytes& bytes;
  std::size_t pos = 0;
  bool ok = true;

  std::uint64_t u() {
    auto v = get_varint(bytes, pos);
    if (!v) {
      ok = false;
      return 0;
    }
    return *v;
  }
  std::int64_t s() {
    auto v = get_varint_signed(bytes, pos);
    if (!v) {
      ok = false;
      return 0;
    }
    return *v;
  }
  bool done() const { return ok && pos == bytes.size(); }
};
}  // namespace

bool GuidanceDirective::operator==(const GuidanceDirective& o) const {
  if (program != o.program || input_seed != o.input_seed) return false;
  const bool sched_eq =
      schedule.has_value() == o.schedule.has_value() &&
      (!schedule.has_value() || schedule->runs == o.schedule->runs);
  const bool faults_eq =
      faults.has_value() == o.faults.has_value() &&
      (!faults.has_value() || faults->forced == o.faults->forced);
  return sched_eq && faults_eq;
}

Bytes encode_guard_patch(const GuardPatch& p) {
  Bytes out;
  put_varint(out, p.id.value);
  put_varint(out, p.program.value);
  put_varint(out, p.site);
  put_varint(out, p.crash_direction ? 1 : 0);
  put_varint(out, p.when.size());
  for (const auto& b : p.when) {
    put_varint(out, b.input);
    put_varint_signed(out, b.lo);
    put_varint_signed(out, b.hi);
  }
  return out;
}

std::optional<GuardPatch> decode_guard_patch(const Bytes& bytes) {
  Reader r{bytes};
  GuardPatch p;
  p.id = FixId(r.u());
  p.program = ProgramId(r.u());
  p.site = static_cast<std::uint32_t>(r.u());
  const std::uint64_t dir = r.u();
  if (dir > 1) return std::nullopt;
  p.crash_direction = dir == 1;
  const std::uint64_t n = r.u();
  if (!r.ok || n > kMaxItems) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) {
    InputBound b;
    const std::uint64_t input = r.u();
    if (input > 0xffff) return std::nullopt;
    b.input = static_cast<std::uint16_t>(input);
    b.lo = r.s();
    b.hi = r.s();
    if (!r.ok || b.lo > b.hi) return std::nullopt;
    p.when.push_back(b);
  }
  if (!r.done()) return std::nullopt;
  return p;
}

Bytes encode_crash_guard(const CrashGuardFix& f) {
  Bytes out;
  put_varint(out, f.id.value);
  put_varint(out, f.program.value);
  put_varint(out, f.pc);
  put_varint(out, static_cast<std::uint64_t>(f.action));
  put_varint_signed(out, f.fallback);
  return out;
}

std::optional<CrashGuardFix> decode_crash_guard(const Bytes& bytes) {
  Reader r{bytes};
  CrashGuardFix f;
  f.id = FixId(r.u());
  f.program = ProgramId(r.u());
  f.pc = static_cast<std::uint32_t>(r.u());
  const std::uint64_t action = r.u();
  if (action > 1) return std::nullopt;
  f.action = static_cast<CrashGuardFix::Action>(action);
  f.fallback = r.s();
  if (!r.done()) return std::nullopt;
  return f;
}

Bytes encode_lock_fix(const LockAvoidanceFix& f) {
  Bytes out;
  put_varint(out, f.id.value);
  put_varint(out, f.program.value);
  put_varint(out, f.cycle_locks.size());
  for (auto l : f.cycle_locks) put_varint(out, l);
  return out;
}

std::optional<LockAvoidanceFix> decode_lock_fix(const Bytes& bytes) {
  Reader r{bytes};
  LockAvoidanceFix f;
  f.id = FixId(r.u());
  f.program = ProgramId(r.u());
  const std::uint64_t n = r.u();
  if (!r.ok || n > kMaxItems) return std::nullopt;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t lock = r.u();
    if (lock > 0xffff) return std::nullopt;
    f.cycle_locks.push_back(static_cast<std::uint16_t>(lock));
  }
  if (!r.done()) return std::nullopt;
  return f;
}

Bytes encode_guidance(const GuidanceDirective& g) {
  Bytes out;
  put_varint(out, g.program.value);
  put_varint(out, g.input_seed.has_value() ? 1 : 0);
  if (g.input_seed) {
    put_varint(out, g.input_seed->size());
    for (auto v : *g.input_seed) put_varint_signed(out, v);
  }
  put_varint(out, g.schedule.has_value() ? 1 : 0);
  if (g.schedule) {
    put_varint(out, g.schedule->runs.size());
    for (const auto& run : g.schedule->runs) {
      put_varint(out, run.thread);
      put_varint(out, run.steps);
    }
  }
  put_varint(out, g.faults.has_value() ? 1 : 0);
  if (g.faults) {
    put_varint(out, g.faults->forced.size());
    for (const auto& [index, value] : g.faults->forced) {
      put_varint(out, index);
      put_varint_signed(out, value);
    }
  }
  return out;
}

std::optional<GuidanceDirective> decode_guidance(const Bytes& bytes) {
  Reader r{bytes};
  GuidanceDirective g;
  g.program = ProgramId(r.u());

  const std::uint64_t has_seed = r.u();
  if (has_seed > 1) return std::nullopt;
  if (has_seed == 1) {
    const std::uint64_t n = r.u();
    if (!r.ok || n > kMaxItems) return std::nullopt;
    std::vector<Value> seed;
    for (std::uint64_t i = 0; i < n; ++i) seed.push_back(r.s());
    g.input_seed = std::move(seed);
  }

  const std::uint64_t has_schedule = r.u();
  if (has_schedule > 1) return std::nullopt;
  if (has_schedule == 1) {
    const std::uint64_t n = r.u();
    if (!r.ok || n > kMaxItems) return std::nullopt;
    SchedulePlan plan;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t thread = r.u(), steps = r.u();
      if (thread > 0xff || steps > 0xffffffffULL) return std::nullopt;
      plan.runs.push_back({static_cast<std::uint8_t>(thread),
                           static_cast<std::uint32_t>(steps)});
    }
    g.schedule = std::move(plan);
  }

  const std::uint64_t has_faults = r.u();
  if (has_faults > 1) return std::nullopt;
  if (has_faults == 1) {
    const std::uint64_t n = r.u();
    if (!r.ok || n > kMaxItems) return std::nullopt;
    FaultPlan faults;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t index = r.u();
      const std::int64_t value = r.s();
      if (index > 0xffffffffULL) return std::nullopt;
      faults.forced[static_cast<std::uint32_t>(index)] = value;
    }
    g.faults = std::move(faults);
  }

  if (!r.done()) return std::nullopt;
  return g;
}

}  // namespace softborg
