file(REMOVE_RECURSE
  "libsb_privacy.a"
)
