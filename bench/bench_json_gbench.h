// google-benchmark glue for --json: a reporter that tees every finished run
// into a BenchJsonWriter (workload = the benchmark's full name, metric =
// real time in the run's declared unit, plus one record per user counter)
// while still printing the normal console table. Used by the gbench-based
// bench binaries, whose mains become:
//
//   int main(int argc, char** argv) {
//     softborg::BenchJsonWriter json("tree_v2", argc, argv);  // strips --json
//     benchmark::Initialize(&argc, argv);
//     softborg::JsonTeeReporter reporter(json);
//     benchmark::RunSpecifiedBenchmarks(&reporter);
//     benchmark::Shutdown();
//     return json.write() ? 0 : 1;
//   }
#pragma once

#include <benchmark/benchmark.h>

#include <string>

#include "bench_json.h"

namespace softborg {

class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(BenchJsonWriter& out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      const std::string unit = benchmark::GetTimeUnitString(run.time_unit);
      out_.add(name, std::string("real_time_") + unit,
               run.GetAdjustedRealTime());
      for (const auto& [counter, value] : run.counters) {
        out_.add(name, counter, static_cast<double>(value));
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  BenchJsonWriter& out_;
};

}  // namespace softborg
