file(REMOVE_RECURSE
  "CMakeFiles/cooperative_prover.dir/cooperative_prover.cpp.o"
  "CMakeFiles/cooperative_prover.dir/cooperative_prover.cpp.o.d"
  "cooperative_prover"
  "cooperative_prover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cooperative_prover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
