#include <gtest/gtest.h>

#include "net/simnet.h"
#include "pod/protocol.h"

namespace softborg {
namespace {

Bytes payload(std::initializer_list<std::uint8_t> bytes) { return bytes; }

TEST(SimNet, ReliableDelivery) {
  SimNet net;
  const auto a = net.add_endpoint(), b = net.add_endpoint();
  net.send(a, b, 1, payload({1, 2, 3}));
  for (int i = 0; i < 5; ++i) net.tick();
  const auto messages = net.drain(b);
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].from, a);
  EXPECT_EQ(messages[0].type, 1u);
  EXPECT_EQ(messages[0].payload, payload({1, 2, 3}));
}

TEST(SimNet, NothingBeforeLatency) {
  NetConfig cfg;
  cfg.min_latency_ticks = 3;
  cfg.max_latency_ticks = 3;
  SimNet net(cfg);
  const auto a = net.add_endpoint(), b = net.add_endpoint();
  net.send(a, b, 0, {});
  net.tick();
  net.tick();
  EXPECT_TRUE(net.drain(b).empty());
  net.tick();
  EXPECT_EQ(net.drain(b).size(), 1u);
}

TEST(SimNet, DrainEmptiesInbox) {
  SimNet net;
  const auto a = net.add_endpoint(), b = net.add_endpoint();
  net.send(a, b, 0, {});
  for (int i = 0; i < 5; ++i) net.tick();
  EXPECT_EQ(net.drain(b).size(), 1u);
  EXPECT_TRUE(net.drain(b).empty());
}

TEST(SimNet, DropProbabilityLosesMessages) {
  NetConfig cfg;
  cfg.drop_prob = 0.5;
  cfg.seed = 3;
  SimNet net(cfg);
  const auto a = net.add_endpoint(), b = net.add_endpoint();
  for (int i = 0; i < 1000; ++i) net.send(a, b, 0, {});
  for (int i = 0; i < 10; ++i) net.tick();
  const auto n = net.drain(b).size();
  EXPECT_GT(n, 350u);
  EXPECT_LT(n, 650u);
  EXPECT_EQ(net.stats().dropped + net.stats().delivered, 1000u);
}

TEST(SimNet, DuplicationDeliversTwice) {
  NetConfig cfg;
  cfg.dup_prob = 1.0;
  SimNet net(cfg);
  const auto a = net.add_endpoint(), b = net.add_endpoint();
  net.send(a, b, 0, {});
  for (int i = 0; i < 5; ++i) net.tick();
  EXPECT_EQ(net.drain(b).size(), 2u);
  EXPECT_EQ(net.stats().duplicated, 1u);
}

TEST(SimNet, PartitionBlocksBothDirections) {
  SimNet net;
  const auto a = net.add_endpoint(), b = net.add_endpoint();
  net.set_partitioned(a, b, true);
  net.send(a, b, 0, {});
  net.send(b, a, 0, {});
  for (int i = 0; i < 5; ++i) net.tick();
  EXPECT_TRUE(net.drain(a).empty());
  EXPECT_TRUE(net.drain(b).empty());
  EXPECT_EQ(net.stats().blocked_at_send, 2u);
  EXPECT_EQ(net.stats().dropped_in_flight, 0u);
}

TEST(SimNet, PartitionHealRestoresDelivery) {
  SimNet net;
  const auto a = net.add_endpoint(), b = net.add_endpoint();
  net.set_partitioned(a, b, true);
  net.send(a, b, 0, {});
  net.set_partitioned(a, b, false);
  net.send(a, b, 0, {});
  for (int i = 0; i < 5; ++i) net.tick();
  EXPECT_EQ(net.drain(b).size(), 1u);  // only the post-heal message
}

TEST(SimNet, MidFlightPartitionEatsMessages) {
  NetConfig cfg;
  cfg.min_latency_ticks = 3;
  cfg.max_latency_ticks = 3;
  SimNet net(cfg);
  const auto a = net.add_endpoint(), b = net.add_endpoint();
  net.send(a, b, 0, {});
  net.tick();
  net.set_partitioned(a, b, true);
  for (int i = 0; i < 5; ++i) net.tick();
  EXPECT_TRUE(net.drain(b).empty());
  // The message was accepted at send time and eaten mid-flight: exactly one
  // of the two partition counters sees it.
  EXPECT_EQ(net.stats().blocked_at_send, 0u);
  EXPECT_EQ(net.stats().dropped_in_flight, 1u);
}

TEST(SimNet, PartitionCountersNeverDoubleCountOneMessage) {
  // A message refused at send() never reaches in_flight_, so it cannot also
  // be counted as dropped_in_flight (the old single counter could reach 2×
  // the number of affected messages).
  NetConfig cfg;
  cfg.min_latency_ticks = 2;
  cfg.max_latency_ticks = 2;
  SimNet net(cfg);
  const auto a = net.add_endpoint(), b = net.add_endpoint();
  net.set_partitioned(a, b, true);
  net.send(a, b, 0, {});  // refused at send
  net.set_partitioned(a, b, false);
  net.send(a, b, 0, {});  // accepted, then eaten mid-flight
  net.tick();
  net.set_partitioned(a, b, true);
  for (int i = 0; i < 5; ++i) net.tick();
  EXPECT_TRUE(net.drain(b).empty());
  EXPECT_EQ(net.stats().blocked_at_send, 1u);
  EXPECT_EQ(net.stats().dropped_in_flight, 1u);
  EXPECT_EQ(net.stats().blocked_at_send + net.stats().dropped_in_flight,
            net.stats().sent - net.stats().delivered - net.stats().dropped);
}

TEST(SimNet, IsolationModelsChurn) {
  SimNet net;
  const auto a = net.add_endpoint(), b = net.add_endpoint(),
             c = net.add_endpoint();
  net.set_isolated(b, true);
  net.send(a, b, 0, {});
  net.send(a, c, 0, {});
  for (int i = 0; i < 5; ++i) net.tick();
  EXPECT_TRUE(net.drain(b).empty());
  EXPECT_EQ(net.drain(c).size(), 1u);
  net.set_isolated(b, false);
  net.send(a, b, 0, {});
  for (int i = 0; i < 5; ++i) net.tick();
  EXPECT_EQ(net.drain(b).size(), 1u);
}

TEST(SimNet, DeterministicForSeed) {
  auto run = [] {
    NetConfig cfg;
    cfg.drop_prob = 0.3;
    cfg.dup_prob = 0.2;
    cfg.seed = 99;
    SimNet net(cfg);
    const auto a = net.add_endpoint(), b = net.add_endpoint();
    for (int i = 0; i < 100; ++i) {
      net.send(a, b, static_cast<std::uint32_t>(i), {});
      net.tick();
    }
    for (int i = 0; i < 10; ++i) net.tick();
    std::vector<std::uint32_t> types;
    for (const auto& m : net.drain(b)) types.push_back(m.type);
    return types;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimNet, LatencyWithinBounds) {
  NetConfig cfg;
  cfg.min_latency_ticks = 2;
  cfg.max_latency_ticks = 7;
  SimNet net(cfg);
  const auto a = net.add_endpoint(), b = net.add_endpoint();
  for (int i = 0; i < 200; ++i) net.send(a, b, 0, {});
  for (int i = 0; i < 10; ++i) net.tick();
  for (const auto& m : net.drain(b)) {
    const auto latency = m.deliver_tick - m.sent_tick;
    EXPECT_GE(latency, 2u);
    EXPECT_LE(latency, 7u);
  }
}

TEST(SimNet, StatsCountBytes) {
  SimNet net;
  const auto a = net.add_endpoint(), b = net.add_endpoint();
  net.send(a, b, 0, payload({1, 2, 3, 4}));
  EXPECT_EQ(net.stats().bytes_sent, 4u);
}

TEST(SimNet, ZeroCopyEndToEnd) {
  // A payload moves through send -> in-flight -> inbox -> drain without a
  // single buffer copy: the drained payload owns the very allocation the
  // sender handed in. Pinned by data-pointer identity, which only survives
  // moves.
  SimNet net;
  const auto a = net.add_endpoint(), b = net.add_endpoint();
  Bytes buf(1024, 0xab);
  const std::uint8_t* data = buf.data();
  net.send(a, b, kMsgTrace, std::move(buf));
  for (int i = 0; i < 5; ++i) net.tick();
  auto messages = net.drain(b);
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].payload.data(), data);
  EXPECT_EQ(net.stats().payloads_copied, 0u);
}

TEST(SimNet, ZeroCopyThroughRouterHop) {
  // The distributed topology's router hop: ingress drains a trace and
  // re-sends the same Bytes to the owning shard's endpoint. Both hops must
  // move the one buffer (the PR-9 fix: the router leg used to copy).
  SimNet net;
  const auto pod = net.add_endpoint(), router = net.add_endpoint(),
             shard = net.add_endpoint();
  Bytes buf(512, 0x5a);
  const std::uint8_t* data = buf.data();
  net.send(pod, router, kMsgTrace, std::move(buf));
  for (int i = 0; i < 5; ++i) net.tick();
  auto at_router = net.drain(router);
  ASSERT_EQ(at_router.size(), 1u);
  net.send(router, shard, kMsgTrace, std::move(at_router[0].payload));
  for (int i = 0; i < 5; ++i) net.tick();
  auto at_shard = net.drain(shard);
  ASSERT_EQ(at_shard.size(), 1u);
  EXPECT_EQ(at_shard[0].payload.data(), data);
  EXPECT_EQ(net.stats().payloads_copied, 0u);
}

TEST(SimNet, DuplicationIsTheOnlyCopy) {
  // Duplication must manufacture a second body — and that is the only copy
  // the transport is allowed to make.
  NetConfig cfg;
  cfg.dup_prob = 1.0;
  SimNet net(cfg);
  const auto a = net.add_endpoint(), b = net.add_endpoint();
  net.send(a, b, 0, payload({1, 2, 3}));
  for (int i = 0; i < 5; ++i) net.tick();
  EXPECT_EQ(net.drain(b).size(), 2u);
  EXPECT_EQ(net.stats().payloads_copied, 1u);
}

}  // namespace
}  // namespace softborg
