// Fixed-size thread pool with future-returning submission.
//
// Used by the portfolio solver (run several solvers on one instance and take
// the first answer), by the hive's batch ingestion pipeline, by the sharded
// hive's shard-parallel pump (one worker drains one shard's batch), and by
// benches that need real parallelism. RAII: the destructor drains and joins
// (CP.25 — never detach).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace softborg {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Schedules `fn` and returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// Runs `fn(i)` for every i in [0, n), splitting the range into ~4 chunks per
// worker, and blocks until the whole range is done. `fn` must be safe to call
// concurrently for distinct indices. With a null pool (or a trivial range)
// the loop runs inline on the caller — same results, no threads. If any call
// throws, every chunk still runs to completion (captured references stay
// valid) and the first exception is rethrown afterwards.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t n, const Fn& fn) {
  if (pool == nullptr || pool->size() <= 1 || n < 2) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, pool->size() * 4);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * n / chunks;
    const std::size_t hi = (c + 1) * n / chunks;
    futures.push_back(pool->submit([&fn, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace softborg
