// Crash-safe file I/O primitives shared by the obs exporters and the
// durable corpus store (src/store).
//
// atomic_write_file implements the classic torn-write-proof protocol:
// write to a same-directory temp file, fsync the file, rename() over the
// destination (atomic on POSIX), then fsync the directory so the rename
// itself survives a power cut. Readers therefore see either the complete
// old file or the complete new file — never a prefix.
#pragma once

#include <cstdint>
#include <string>

#include "common/varint.h"

namespace softborg {

// FNV-1a 64-bit with a splitmix finalizer; the store's part/manifest
// checksum. Not cryptographic — it defends against bit rot and truncation,
// not adversaries.
std::uint64_t fnv1a64(const void* data, std::size_t n);

// Writes `size` bytes to `path` via temp-file + fsync + atomic rename +
// directory fsync. On failure returns false, sets *err (when non-null) to a
// description, and leaves any previous file at `path` intact.
bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size, std::string* err = nullptr);

// Reads the whole file into `out`. False (out cleared) when the file is
// missing, unreadable, or larger than `max_size`.
bool read_file(const std::string& path, Bytes& out,
               std::size_t max_size = std::size_t(1) << 32);

}  // namespace softborg
