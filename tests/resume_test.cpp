// Kill-and-resume differential (ISSUE 7 headline): a cold N-day run and a
// run snapshotted at day k, torn down, and resumed into a fresh World must
// be indistinguishable — byte-identical trees, identical day metrics and
// stats, identical proof certificates. Plus: version/config-skew refusal,
// partial-write fallback to cold start, and the warm-start head start.
#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>

#include "core/softborg.h"
#include "store/store.h"

namespace softborg {
namespace {

namespace fs = std::filesystem;

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("sb_resume_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

WorldConfig resume_config() {
  WorldConfig config;
  config.pods_per_program = 15;
  config.days = 6;
  config.mean_runs_per_day = 5.0;
  config.seed = 21;
  config.guidance_per_program_per_day = 2;
  config.proof_programs_per_day = 2;
  config.canary_fraction = 0.5;  // exercise pending-rollout persistence
  config.net.drop_prob = 0.03;
  return config;
}

// Full-state equivalence between two worlds, checked at every layer the
// snapshot covers.
void expect_worlds_equal(const World& a, const World& b) {
  EXPECT_EQ(a.day(), b.day());
  ASSERT_EQ(a.history().size(), b.history().size());
  for (std::size_t i = 0; i < a.history().size(); ++i) {
    EXPECT_EQ(a.history()[i], b.history()[i]) << "day index " << i;
  }
  EXPECT_EQ(a.hive().stats(), b.hive().stats());
  EXPECT_EQ(a.hive().proof_stats(), b.hive().proof_stats());
  EXPECT_EQ(a.hive().bug_tracker(), b.hive().bug_tracker());
  EXPECT_EQ(a.net_stats(), b.net_stats());
  EXPECT_EQ(a.pending_rollouts(), b.pending_rollouts());
  ASSERT_EQ(a.hive().published_proofs().size(),
            b.hive().published_proofs().size());
  for (std::size_t i = 0; i < a.hive().published_proofs().size(); ++i) {
    const auto& pa = a.hive().published_proofs()[i];
    const auto& pb = b.hive().published_proofs()[i];
    EXPECT_EQ(pa.revoked, pb.revoked);
    EXPECT_EQ(pa.certificate.id, pb.certificate.id);
    EXPECT_EQ(pa.certificate.program, pb.certificate.program);
    EXPECT_EQ(pa.certificate.complete, pb.certificate.complete);
    EXPECT_EQ(pa.certificate.holds, pb.certificate.holds);
    EXPECT_EQ(pa.certificate.paths_total, pb.certificate.paths_total);
    EXPECT_EQ(pa.certificate.solver_calls, pb.certificate.solver_calls);
  }
  for (const auto& entry : a.corpus()) {
    const ExecTree* ta = a.hive().tree(entry.program.id);
    const ExecTree* tb = b.hive().tree(entry.program.id);
    ASSERT_EQ(ta == nullptr, tb == nullptr) << entry.program.id.value;
    if (ta != nullptr) {
      EXPECT_TRUE(*ta == *tb) << "tree " << entry.program.id.value;
    }
  }
  EXPECT_TRUE(a.hive().solver_cache().state_equals(b.hive().solver_cache()));
}

// The core differential, parameterized on the interruption day.
void run_kill_and_resume(const std::string& dir, std::uint64_t kill_day) {
  const WorldConfig config = resume_config();

  // Cold reference: N uninterrupted days.
  World cold(standard_corpus(), config);
  for (std::uint64_t d = 0; d < config.days; ++d) cold.step_day();

  // Interrupted run: step to kill_day, snapshot, and drop the World (the
  // simulated kill — nothing of the process state survives but the store).
  {
    World doomed(standard_corpus(), config);
    for (std::uint64_t d = 0; d < kill_day; ++d) doomed.step_day();
    std::string err;
    ASSERT_TRUE(doomed.save_snapshot(dir, &err)) << err;
  }

  // Resume into a fresh World and finish the horizon.
  World resumed(standard_corpus(), config);
  std::string err;
  ASSERT_TRUE(resumed.resume_from_snapshot(dir, &err)) << err;
  EXPECT_EQ(resumed.day(), kill_day);
  while (resumed.day() < config.days) resumed.step_day();

  expect_worlds_equal(cold, resumed);
}

TEST_F(ResumeTest, KillAfterFirstDay) { run_kill_and_resume(dir_, 1); }
TEST_F(ResumeTest, KillMidRun) { run_kill_and_resume(dir_, 3); }
TEST_F(ResumeTest, KillOnLastDay) {
  run_kill_and_resume(dir_, resume_config().days);
}

TEST_F(ResumeTest, PeriodicSnapshotsResumeFromNewest) {
  WorldConfig config = resume_config();
  config.snapshot_dir = dir_;
  config.snapshot_every_n_days = 2;

  World cold(standard_corpus(), config);
  for (std::uint64_t d = 0; d < 5; ++d) cold.step_day();
  // Days 2 and 4 snapshotted; prune keeps both generations.
  const auto snap = store::read_snapshot(dir_);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->seq, 4u);

  World resumed(standard_corpus(), config);
  ASSERT_TRUE(resumed.resume_from_snapshot(dir_));
  EXPECT_EQ(resumed.day(), 4u);
  resumed.step_day();
  ASSERT_EQ(resumed.history().size(), 5u);
  EXPECT_EQ(resumed.history().back(), cold.history().back());
}

TEST_F(ResumeTest, ConfigSkewRefused) {
  World saver(standard_corpus(), resume_config());
  saver.step_day();
  ASSERT_TRUE(saver.save_snapshot(dir_));

  WorldConfig other = resume_config();
  other.seed = 99;  // behavioral knob changed: fingerprint must differ
  World victim(standard_corpus(), other);
  std::string err;
  EXPECT_FALSE(victim.resume_from_snapshot(dir_, &err));
  EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;

  // `days` is exempt: extending the horizon is a legitimate resume.
  WorldConfig longer = resume_config();
  longer.days = 40;
  World extender(standard_corpus(), longer);
  EXPECT_TRUE(extender.resume_from_snapshot(dir_, &err)) << err;
}

TEST_F(ResumeTest, CorpusSkewRefused) {
  World saver(standard_corpus(), resume_config());
  saver.step_day();
  ASSERT_TRUE(saver.save_snapshot(dir_));

  std::vector<CorpusEntry> smaller = {standard_corpus().front()};
  WorldConfig config = resume_config();
  World victim(std::move(smaller), config);
  EXPECT_FALSE(victim.resume_from_snapshot(dir_));
}

TEST_F(ResumeTest, PartialWriteFallsBackToCleanColdStart) {
  World saver(standard_corpus(), resume_config());
  saver.step_day();
  saver.step_day();
  ASSERT_TRUE(saver.save_snapshot(dir_));

  // Tear the snapshot: truncate the hive part to half its size. The loader
  // must reject (checksum), and a World that failed to resume must be
  // discardable for a cold start that behaves exactly like day zero.
  std::string hive_part;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (e.is_directory()) hive_part = e.path().string() + "/hive";
  }
  ASSERT_FALSE(hive_part.empty());
  fs::resize_file(hive_part, fs::file_size(hive_part) / 2);

  World victim(standard_corpus(), resume_config());
  EXPECT_FALSE(victim.resume_from_snapshot(dir_));

  // Cold start after the failed resume: fresh World, identical to a never-
  // resumed one.
  World fresh(standard_corpus(), resume_config());
  World reference(standard_corpus(), resume_config());
  fresh.step_day();
  reference.step_day();
  EXPECT_EQ(fresh.history().back(), reference.history().back());
}

TEST_F(ResumeTest, WarmStartReplaysRegressionsOnDayOne) {
  // A first fleet accumulates bugs, persists; a second, fresh fleet warm-
  // starts from the stored regression set and rediscovers the first fleet's
  // bugs on day one — before its own users ever hit the crash regions.
  WorldConfig config = resume_config();
  config.days = 6;
  World first(standard_corpus(), config);
  for (std::uint64_t d = 0; d < config.days; ++d) first.step_day();
  const std::size_t bugs_found = first.history().back().bugs_found_total;
  ASSERT_GT(bugs_found, 0u);
  ASSERT_TRUE(first.save_snapshot(dir_));

  std::string err;
  const auto regressions = load_regression_inputs(dir_, &err);
  ASSERT_GT(regressions.size(), 0u) << err;

  WorldConfig warm = resume_config();
  warm.seed = 77;  // a different fleet entirely
  warm.warm_start_regressions = regressions;
  World second(standard_corpus(), warm);
  second.step_day();
  EXPECT_GE(second.history().back().bugs_found_total, bugs_found);

  // And the control without warm start knows strictly less on day one.
  WorldConfig cold = resume_config();
  cold.seed = 77;
  World control(standard_corpus(), cold);
  control.step_day();
  EXPECT_GE(second.history().back().bugs_found_total,
            control.history().back().bugs_found_total);
}

TEST_F(ResumeTest, LoadRegressionInputsOnEmptyDirIsEmpty) {
  std::string err;
  EXPECT_TRUE(load_regression_inputs(dir_, &err).empty());
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace softborg
