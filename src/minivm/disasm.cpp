#include "minivm/disasm.h"

#include <cstdio>

namespace softborg {

std::string instr_text(const Instr& ins) {
  char buf[128];
  switch (ins.op) {
    case Op::kConst:
      std::snprintf(buf, sizeof(buf), "const r%u = %lld", ins.a,
                    static_cast<long long>(ins.imm));
      break;
    case Op::kMov:
      std::snprintf(buf, sizeof(buf), "mov   r%u = r%u", ins.a, ins.b);
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kCmpLt:
    case Op::kCmpLe:
    case Op::kCmpEq:
    case Op::kCmpNe:
      std::snprintf(buf, sizeof(buf), "%-5s r%u = r%u, r%u",
                    op_name(ins.op), ins.a, ins.b, ins.c);
      break;
    case Op::kBranchIf:
      std::snprintf(buf, sizeof(buf), "brif  r%u ? ->%u : ->%u   (site %u)",
                    ins.a, ins.b, ins.c, ins.site);
      break;
    case Op::kJump:
      std::snprintf(buf, sizeof(buf), "jump  ->%u", ins.a);
      break;
    case Op::kInput:
      std::snprintf(buf, sizeof(buf), "input r%u = in[%u]", ins.a, ins.b);
      break;
    case Op::kSyscall:
      std::snprintf(buf, sizeof(buf), "sys   r%u = sys%u(r%u)", ins.a, ins.b,
                    ins.c);
      break;
    case Op::kLoadG:
      std::snprintf(buf, sizeof(buf), "loadg r%u = g[%u]", ins.a, ins.b);
      break;
    case Op::kStoreG:
      std::snprintf(buf, sizeof(buf), "storg g[%u] = r%u", ins.a, ins.b);
      break;
    case Op::kLock:
      std::snprintf(buf, sizeof(buf), "lock  L%u", ins.a);
      break;
    case Op::kUnlock:
      std::snprintf(buf, sizeof(buf), "unlck L%u", ins.a);
      break;
    case Op::kAssert:
      std::snprintf(buf, sizeof(buf), "asert r%u (msg %u)", ins.a, ins.b);
      break;
    case Op::kAbort:
      std::snprintf(buf, sizeof(buf), "abort (%u)", ins.a);
      break;
    case Op::kOutput:
      std::snprintf(buf, sizeof(buf), "out   r%u", ins.a);
      break;
    case Op::kYield:
      std::snprintf(buf, sizeof(buf), "yield");
      break;
    case Op::kHalt:
      std::snprintf(buf, sizeof(buf), "halt");
      break;
  }
  return buf;
}

std::string disassemble_instr(const Instr& ins, std::uint32_t pc) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%4u: %s", pc, instr_text(ins).c_str());
  return buf;
}

std::string disassemble(const Program& p) {
  std::string out = "program '" + p.name + "' (id " +
                    std::to_string(p.id.value) + "): " +
                    std::to_string(p.code.size()) + " instrs, " +
                    std::to_string(p.num_threads()) + " thread(s), " +
                    std::to_string(p.num_inputs) + " input(s), " +
                    std::to_string(p.num_branch_sites) + " branch site(s)\n";
  for (std::uint32_t pc = 0; pc < p.code.size(); ++pc) {
    for (std::size_t t = 0; t < p.thread_entries.size(); ++t) {
      if (p.thread_entries[t] == pc) {
        out += "     --- thread " + std::to_string(t) + " ---\n";
      }
    }
    out += disassemble_instr(p.code[pc], pc) + "\n";
  }
  return out;
}

std::string disassemble_decoded(const Program& p, const DecodedProgram& d) {
  std::string out = "program '" + p.name + "' decoded: " +
                    std::to_string(d.code.size()) + " slot(s), " +
                    std::to_string(d.fused_slots) + " fused, fusion " +
                    (d.fused ? "on" : "off") + "\n";
  char buf[256];
  for (std::uint32_t pc = 0; pc < p.code.size(); ++pc) {
    for (std::size_t t = 0; t < p.thread_entries.size(); ++t) {
      if (p.thread_entries[t] == pc) {
        out += "     --- thread " + std::to_string(t) + " ---\n";
      }
    }
    const DecodedInstr& slot = d.code[pc];
    if (slot.len == 2) {
      // The superinstruction's halves, in execution order. The second pc
      // keeps its own plain slot below (branch targets can land there).
      std::snprintf(buf, sizeof(buf), "%4u: [%s]  %s ; %s", pc,
                    tok_name(slot.tok), instr_text(p.code[pc]).c_str(),
                    instr_text(p.code[pc + 1]).c_str());
      out += buf;
      out += "\n";
    } else {
      out += disassemble_instr(p.code[pc], pc) + "\n";
    }
  }
  return out;
}

namespace {

// Superinstruction the pair *can* select (decode.cpp fuse_token), ignoring
// the program-context conditions (branch-tests-cmp-register, const+cmp
// deferral): the pair-counts table is opcode-level, so this annotates which
// rows the fusion table can serve at all.
const char* fusion_candidate(Op first, Op second) {
  switch (first) {
    case Op::kConst:
      switch (second) {
        case Op::kAdd: return "const+add";
        case Op::kSub: return "const+sub";
        case Op::kMul: return "const+mul";
        case Op::kCmpLt: return "const+cmplt";
        case Op::kCmpLe: return "const+cmple";
        case Op::kCmpEq: return "const+cmpeq";
        case Op::kCmpNe: return "const+cmpne";
        default: return nullptr;
      }
    case Op::kCmpLt:
      return second == Op::kBranchIf ? "cmplt+brif" : nullptr;
    case Op::kCmpLe:
      return second == Op::kBranchIf ? "cmple+brif" : nullptr;
    case Op::kCmpEq:
      return second == Op::kBranchIf ? "cmpeq+brif" : nullptr;
    case Op::kCmpNe:
      return second == Op::kBranchIf ? "cmpne+brif" : nullptr;
    case Op::kMov:
      return second == Op::kStoreG ? "mov+storeg" : nullptr;
    default:
      return nullptr;
  }
}

}  // namespace

std::string format_pair_counts(const OpPairCounts& counts,
                               std::size_t top_n) {
  const auto pairs = counts.sorted();
  const std::uint64_t total = counts.total();
  std::string out = "opcode pairs (dynamic fallthrough successors, " +
                    std::to_string(total) + " total):\n";
  char buf[160];
  std::size_t shown = 0;
  for (const auto& pair : pairs) {
    if (top_n != 0 && shown == top_n) break;
    const double pct =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(pair.count) /
                               static_cast<double>(total);
    const char* fuse = fusion_candidate(pair.first, pair.second);
    std::snprintf(buf, sizeof(buf), "  %-6s -> %-6s %10llu  %5.1f%%%s%s\n",
                  op_name(pair.first), op_name(pair.second),
                  static_cast<unsigned long long>(pair.count), pct,
                  fuse != nullptr ? "  fuses: " : "",
                  fuse != nullptr ? fuse : "");
    out += buf;
    shown++;
  }
  if (top_n != 0 && pairs.size() > top_n) {
    out += "  ... " + std::to_string(pairs.size() - top_n) +
           " more pair(s)\n";
  }
  return out;
}

}  // namespace softborg
