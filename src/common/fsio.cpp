#include "common/fsio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace softborg {

namespace {

void set_err(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what + ": " + std::strerror(errno);
}

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * 0x100000001b3ULL;
  }
  // splitmix finalizer so short inputs still scramble every output bit
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size, std::string* err) {
  // Same-directory temp so the rename stays within one filesystem. The pid
  // suffix keeps concurrent writers (two processes exporting metrics to the
  // same path) from clobbering each other's temp file.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_err(err, "open " + tmp);
    return false;
  }
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ::ssize_t n = ::write(fd, p + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_err(err, "write " + tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    set_err(err, "fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_err(err, "close " + tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_err(err, "rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return false;
  }
  // Persist the rename itself. Failure here is not fatal to correctness
  // (the data is durable, only the directory entry might be replayed), so
  // it is deliberately not an error.
  fsync_path(dir_of(path));
  return true;
}

bool read_file(const std::string& path, Bytes& out, std::size_t max_size) {
  out.clear();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct ::stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0 ||
      static_cast<std::uint64_t>(st.st_size) > max_size) {
    ::close(fd);
    return false;
  }
  out.resize(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < out.size()) {
    const ::ssize_t n = ::read(fd, out.data() + got, out.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      out.clear();
      return false;
    }
    if (n == 0) break;  // truncated between fstat and read
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (got != out.size()) {
    out.clear();
    return false;
  }
  return true;
}

}  // namespace softborg
