// --json support for the bench_* binaries.
//
// Every bench accepts `--json <path>` (or `--json=<path>`) and, when given,
// writes its headline numbers as a JSON document the CI can archive and diff
// across commits (the human-readable stdout report is unchanged). The
// convention is one record per measurement:
//
//   { "bench": "<name>",
//     "meta": { "git": "<describe>", "dispatch": "goto|switch",
//               "threads": 8 },
//     "results": [
//       { "workload": "...", "metric": "...", "value": 1.23,
//         "baseline": 4.56 },   // "baseline" only when a comparison exists
//       ... ] }
//
// The meta block pins what produced the numbers: the source revision
// (SOFTBORG_GIT_DESCRIBE, stamped by bench/CMakeLists.txt at configure
// time), the MiniVM dispatch flavor (SOFTBORG_DISPATCH_NAME, from the
// SOFTBORG_DISPATCH option), and the host's hardware thread count — the
// three axes along which archived bench numbers are otherwise
// incomparable.
//
// The flag is stripped from argv before the writer returns, so argument
// parsers that reject unknown flags (google-benchmark's Initialize) never
// see it. Canonical output name: BENCH_<name>.json.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#ifndef SOFTBORG_GIT_DESCRIBE
#define SOFTBORG_GIT_DESCRIBE "unknown"
#endif
#ifndef SOFTBORG_DISPATCH_NAME
#define SOFTBORG_DISPATCH_NAME "unknown"
#endif

namespace softborg {

class BenchJsonWriter {
 public:
  // `name` is the bench's short name ("e1_coverage_growth"); argv is scanned
  // for the flag and compacted in place.
  BenchJsonWriter(std::string name, int& argc, char** argv)
      : name_(std::move(name)) {
    int w = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        path_ = argv[++i];
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(7);
      } else {
        argv[w++] = argv[i];
      }
    }
    argc = w;
    if (path_ == "-") path_ = "BENCH_" + name_ + ".json";
  }

  bool enabled() const { return !path_.empty(); }

  void add(const std::string& workload, const std::string& metric,
           double value) {
    results_.push_back({workload, metric, value, 0.0, false});
  }
  void add(const std::string& workload, const std::string& metric,
           double value, double baseline) {
    results_.push_back({workload, metric, value, baseline, true});
  }

  // Writes the document (no-op when --json was not given). Returns false on
  // I/O failure.
  bool write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", escape(name_).c_str());
    std::fprintf(f,
                 "  \"meta\": {\"git\": \"%s\", \"dispatch\": \"%s\", "
                 "\"threads\": %u},\n",
                 escape(SOFTBORG_GIT_DESCRIBE).c_str(),
                 escape(SOFTBORG_DISPATCH_NAME).c_str(),
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"results\": [");
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const Result& r = results_[i];
      std::fprintf(f, "%s\n    {\"workload\": \"%s\", \"metric\": \"%s\", ",
                   i == 0 ? "" : ",", escape(r.workload).c_str(),
                   escape(r.metric).c_str());
      std::fprintf(f, "\"value\": %s", number(r.value).c_str());
      if (r.has_baseline) {
        std::fprintf(f, ", \"baseline\": %s", number(r.baseline).c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Result {
    std::string workload;
    std::string metric;
    double value = 0.0;
    double baseline = 0.0;
    bool has_baseline = false;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) c = ' ';
      out.push_back(c);
    }
    return out;
  }

  // JSON has no NaN/Inf; clamp them to null-ish zero with a lost-value flag
  // kept out of scope (benches never emit them in practice).
  static std::string number(double v) {
    if (!std::isfinite(v)) return "0";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }

  std::string name_;
  std::string path_;
  std::vector<Result> results_;
};

}  // namespace softborg
