#include "common/bitvec.h"

namespace softborg {

std::size_t BitVec::common_prefix(const BitVec& other) const {
  const std::size_t limit = std::min(size_, other.size_);
  const std::size_t full_words = limit / 64;
  std::size_t i = 0;
  for (std::size_t w = 0; w < full_words; ++w) {
    const std::uint64_t diff = words_[w] ^ other.words_[w];
    if (diff != 0) {
      return w * 64 + static_cast<std::size_t>(__builtin_ctzll(diff));
    }
    i = (w + 1) * 64;
  }
  while (i < limit && (*this)[i] == other[i]) ++i;
  return i;
}

std::uint64_t BitVec::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(size_);
  for (auto w : words_) mix(w);
  return h;
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back((*this)[i] ? '1' : '0');
  return s;
}

BitVec BitVec::from_words(std::vector<std::uint64_t> words, std::size_t n) {
  SB_CHECK(words.size() >= (n + 63) / 64);
  BitVec v;
  v.size_ = n;
  v.words_ = std::move(words);
  v.words_.resize((n + 63) / 64);
  v.trim();
  return v;
}

void BitVec::trim() {
  const std::size_t off = size_ % 64;
  if (off != 0 && !words_.empty()) {
    words_.back() &= (1ULL << off) - 1;
  }
}

}  // namespace softborg
