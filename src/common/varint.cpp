#include "common/varint.h"

namespace softborg {

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_varint_signed(Bytes& out, std::int64_t v) {
  const std::uint64_t zz =
      (static_cast<std::uint64_t>(v) << 1) ^
      static_cast<std::uint64_t>(v >> 63);
  put_varint(out, zz);
}

std::optional<std::uint64_t> get_varint_slow(const Bytes& in,
                                             std::size_t& pos) {
  std::uint64_t result = 0;
  int shift = 0;
  while (pos < in.size()) {
    const std::uint8_t byte = in[pos++];
    if (shift == 63 && (byte & 0x7f) > 1) return std::nullopt;  // overflow
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
    if (shift > 63) return std::nullopt;
  }
  return std::nullopt;  // truncated
}

}  // namespace softborg
