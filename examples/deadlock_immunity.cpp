// Deadlock immunity, fleet-wide (paper §3.3, after Jula et al. [16]).
//
// bank_transfer has an input-dependent AB-BA deadlock: when amount > 100,
// thread 1 acquires the two account locks in the reverse order. This example
// shows the three acts of the SoftBorg story:
//
//   act 1 — the bug in the wild: natural schedules deadlock a few percent
//           of the time, and hive guidance (lock-targeted schedule plans)
//           reproduces it deterministically;
//   act 2 — diagnosis: the hive reconstructs the lock-order cycle from the
//           shipped lock events alone;
//   act 3 — immunity: the avoidance fix is validated and distributed, and
//           the fleet never deadlocks again — at a measurable but small
//           cost in extra scheduling yields.
#include <cstdio>

#include "core/softborg.h"

int main() {
  using namespace softborg;
  const auto entry = make_bank_transfer();

  // --- act 1: the bug in the wild -----------------------------------------
  int natural_deadlocks = 0;
  const int trials = 400;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {150};
    cfg.seed = seed;
    if (execute(entry.program, cfg).trace.outcome == Outcome::kDeadlock) {
      natural_deadlocks++;
    }
  }
  std::printf("act 1: natural schedules: %d/%d runs deadlock (%.1f%%)\n",
              natural_deadlocks, trials, 100.0 * natural_deadlocks / trials);

  GuidancePlanner planner;
  Rng rng(11);
  const auto directives = planner.plan_schedules(entry, 4, rng);
  int guided_deadlocks = 0;
  for (std::size_t i = 0; i < directives.size(); ++i) {
    ExecConfig cfg;
    cfg.inputs = directives[i].input_seed ? *directives[i].input_seed
                                          : std::vector<Value>{150};
    cfg.seed = 1000 + i;
    cfg.schedule_plan = &*directives[i].schedule;
    if (execute(entry.program, cfg).trace.outcome == Outcome::kDeadlock) {
      guided_deadlocks++;
    }
  }
  std::printf("       hive schedule guidance: %d/%zu directives deadlock\n",
              guided_deadlocks, directives.size());

  // --- act 2: diagnosis -----------------------------------------------------
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_bank_transfer());
  Hive hive(&corpus);
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {150};
    cfg.seed = seed;
    auto result = execute(entry.program, cfg);
    result.trace.id = TraceId(seed);
    if (result.trace.outcome == Outcome::kDeadlock) hive.ingest(result.trace);
  }
  for (const auto& bug : hive.bug_tracker().all()) {
    std::printf("act 2: hive diagnosis: %s\n", bug.describe().c_str());
  }

  // --- act 3: immunity -------------------------------------------------------
  const auto fixes = hive.process();
  if (fixes.empty()) {
    std::printf("act 3: no fix approved (unexpected)\n");
    return 1;
  }
  const auto& fix = std::get<LockAvoidanceFix>(fixes[0].fix);
  std::printf(
      "act 3: lock-avoidance fix approved (averted %.0f%%, preserved %.0f%% "
      "over %llu validation runs)\n",
      fixes[0].averted_fraction * 100, fixes[0].preserved_fraction * 100,
      static_cast<unsigned long long>(fixes[0].validation_runs));

  FixSet installed;
  installed.lock_fixes.push_back(fix);
  int post_fix_deadlocks = 0;
  std::uint64_t steps_with = 0, steps_without = 0;
  for (std::uint64_t seed = 1; seed <= trials; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {150};
    cfg.seed = seed;
    steps_without += execute(entry.program, cfg).trace.steps;
    cfg.fixes = &installed;
    const auto result = execute(entry.program, cfg);
    steps_with += result.trace.steps;
    if (result.trace.outcome == Outcome::kDeadlock) post_fix_deadlocks++;
  }
  std::printf(
      "       with the fix installed: %d/%d deadlocks; overhead %.1f%% extra "
      "steps\n",
      post_fix_deadlocks, trials,
      100.0 * (static_cast<double>(steps_with) /
                   static_cast<double>(steps_without) -
               1.0));
  return post_fix_deadlocks == 0 ? 0 : 1;
}
