// Wire codec for traces (§3.1: "collecting them efficiently").
//
// Varint + bit-packed encoding; decode validates and returns nullopt on any
// malformed input (the hive must survive hostile/corrupt pods).
#pragma once

#include <optional>

#include "common/varint.h"
#include "trace/trace.h"

namespace softborg {

Bytes encode_trace(const Trace& t);
std::optional<Trace> decode_trace(const Bytes& bytes);

}  // namespace softborg
