#include "dist/frame.h"

#include <cstring>

#include "common/fsio.h"

namespace softborg::dist {

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'B', 'D', '1'};

std::uint32_t payload_checksum(const std::uint8_t* data, std::size_t n) {
  const std::uint64_t h = fnv1a64(data, n);
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

void put_u16le(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32le(Bytes& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::uint16_t get_u16le(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void encode_frame(Bytes& out, std::uint32_t type, std::uint32_t credit,
                  const Bytes& payload) {
  // Callers only send the small protocol type space and grants within the
  // header fields; both are asserted by construction (workers clamp their
  // windows to u16).
  out.reserve(out.size() + kFrameHeaderSize + payload.size());
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u16le(out, static_cast<std::uint16_t>(credit));
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  put_u32le(out, payload_checksum(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (failed_ || n == 0) return;
  // Compact the consumed prefix before growing; keeps the buffer bounded by
  // one frame in progress plus whatever feed() just delivered.
  if (consumed_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameDecoder::next() {
  if (failed_) return std::nullopt;
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* h = buf_.data() + consumed_;
  if (std::memcmp(h, kMagic, 4) != 0 || h[4] != kFrameVersion) {
    failed_ = true;
    return std::nullopt;
  }
  const std::uint32_t len = get_u32le(h + 8);
  if (len > kMaxFramePayload) {
    // A hostile/corrupt length: reject before buffering a single payload
    // byte, so allocation stays bounded no matter what the peer claims.
    failed_ = true;
    return std::nullopt;
  }
  if (avail < kFrameHeaderSize + len) return std::nullopt;  // wait for more
  Frame f;
  f.type = h[5];
  f.credit = get_u16le(h + 6);
  const std::uint8_t* body = h + kFrameHeaderSize;
  if (payload_checksum(body, len) != get_u32le(h + 12)) {
    failed_ = true;
    return std::nullopt;
  }
  f.payload.assign(body, body + len);
  consumed_ += kFrameHeaderSize + len;
  return f;
}

}  // namespace softborg::dist
