#include "common/thread_pool.h"

#include "common/check.h"

namespace softborg {

ThreadPool::ThreadPool(std::size_t num_threads) {
  SB_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

}  // namespace softborg
