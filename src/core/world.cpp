#include "core/world.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/fsio.h"
#include "common/log.h"
#include "common/state_wire.h"
#include "obs/span.h"
#include "store/store.h"
#include "trace/codec.h"

namespace softborg {

World::World(std::vector<CorpusEntry> corpus, WorldConfig config)
    : corpus_(std::move(corpus)), config_(config), rng_(config.seed),
      ledger_(config.adapt), adapt_planner_(config.adapt),
      net_(config.net) {
  SB_CHECK(!corpus_.empty());
  hive_endpoint_ = net_.add_endpoint();
  hive_ = std::make_unique<Hive>(&corpus_, config_.hive);

  std::uint64_t next_pod_id = 1;
  for (std::size_t ci = 0; ci < corpus_.size(); ++ci) {
    for (std::size_t i = 0; i < config_.pods_per_program; ++i) {
      PodSlot slot;
      slot.corpus_index = ci;
      slot.endpoint = net_.add_endpoint();
      slot.pod = std::make_unique<Pod>(PodId(next_pod_id++), corpus_[ci],
                                       random_profile(corpus_[ci]),
                                       config_.pod_config, rng_());
      pods_.push_back(std::move(slot));
    }
  }
}

UserProfile World::random_profile(const CorpusEntry& entry) {
  UserProfile profile;
  // Heterogeneous usage: rates spread around the mean with a heavy tail.
  const double r = rng_.next_double();
  profile.executions_per_day =
      config_.mean_runs_per_day * (r < 0.1 ? 4.0 : (r < 0.5 ? 1.0 : 0.4));
  // Each user draws inputs from their own window of the domain (about a
  // third of it), except "power users" (20%) who roam the full domain.
  if (!rng_.next_bool(0.2)) {
    for (const auto& d : entry.domains) {
      const Value width = d.width();
      const Value window = std::max<Value>(width / 3, 1);
      const Value start =
          d.lo + rng_.next_in(0, std::max<Value>(width - window, 0));
      profile.input_prefs.push_back(
          {start, std::min(start + window - 1, d.hi)});
    }
  }
  return profile;
}

void World::deliver_downstream() {
  for (auto& slot : pods_) {
    for (const auto& msg : net_.drain(slot.endpoint)) {
      switch (msg.type) {
        case kMsgGuardPatch: {
          if (auto patch = decode_guard_patch(msg.payload)) {
            slot.pod->install(*patch);
          }
          break;
        }
        case kMsgCrashGuard: {
          if (auto fix = decode_crash_guard(msg.payload)) {
            slot.pod->install(*fix);
          }
          break;
        }
        case kMsgLockFix: {
          if (auto fix = decode_lock_fix(msg.payload)) {
            slot.pod->install(*fix);
          }
          break;
        }
        case kMsgGuidance: {
          if (auto directive = decode_guidance(msg.payload)) {
            slot.pod->push_guidance(std::move(*directive));
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

void World::send_fix_to(const FixCandidate& candidate, const PodSlot& slot) {
  std::visit(
      [&](const auto& fix) {
        using T = std::decay_t<decltype(fix)>;
        if constexpr (std::is_same_v<T, GuardPatch>) {
          net_.send(hive_endpoint_, slot.endpoint, kMsgGuardPatch,
                    encode_guard_patch(fix));
        } else if constexpr (std::is_same_v<T, CrashGuardFix>) {
          net_.send(hive_endpoint_, slot.endpoint, kMsgCrashGuard,
                    encode_crash_guard(fix));
        } else {
          net_.send(hive_endpoint_, slot.endpoint, kMsgLockFix,
                    encode_lock_fix(fix));
        }
      },
      candidate.fix);
}

void World::broadcast_fixes(const std::vector<FixCandidate>& fixes) {
  for (const auto& candidate : fixes) {
    fixes_distributed_++;
    std::size_t program_index = 0;
    for (const auto& slot : pods_) {
      if (slot.pod->program() != candidate.program) continue;
      const bool in_canary =
          config_.canary_fraction >= 1.0 ||
          static_cast<double>(program_index) <
              config_.canary_fraction *
                  static_cast<double>(config_.pods_per_program);
      program_index++;
      if (in_canary) send_fix_to(candidate, slot);
    }
    if (config_.canary_fraction < 1.0) {
      pending_rollouts_.push_back(
          {candidate, day_ + config_.canary_days});
    }
  }
}

void World::advance_rollouts() {
  for (auto it = pending_rollouts_.begin(); it != pending_rollouts_.end();) {
    if (day_ < it->full_rollout_day) {
      ++it;
      continue;
    }
    // The canary verdict: if the hive's telemetry reopened the bug, the
    // fix is not holding — cancel the full rollout.
    const Bug* bug = hive_->bug_tracker().find(it->candidate.bug);
    if (bug != nullptr && !bug->fixed) {
      rollouts_cancelled_++;
      it = pending_rollouts_.erase(it);
      continue;
    }
    std::size_t program_index = 0;
    for (const auto& slot : pods_) {
      if (slot.pod->program() != it->candidate.program) continue;
      const bool was_canary =
          static_cast<double>(program_index) <
          config_.canary_fraction *
              static_cast<double>(config_.pods_per_program);
      program_index++;
      if (!was_canary) send_fix_to(it->candidate, slot);
    }
    it = pending_rollouts_.erase(it);
  }
}

void World::send_guidance() {
  if (config_.guidance_per_program_per_day == 0) return;
  std::vector<GuidanceDirective> directives;
  if (config_.adapt.static_plan) {
    // Historical schedule: every program gets the same per-program budget.
    // This branch must not touch the ledger-driven path — the differential
    // suites pin it byte-identical to the pre-adaptive pipeline.
    directives = hive_->plan_guidance(config_.guidance_per_program_per_day);
  } else {
    // Adaptive schedule: the same total directive pool, split across
    // programs by risk-adjusted yield instead of uniformly.
    std::vector<ProgramId> targets;
    targets.reserve(corpus_.size());
    for (const auto& entry : corpus_) targets.push_back(entry.program.id);
    auto shares = adapt_planner_.allocate(
        config_.guidance_per_program_per_day * corpus_.size(), targets,
        ledger_);
    // Cap each share at the program's fleet absorption capacity: a pod
    // consumes at most one queued directive per run, so anything beyond
    // pods × mean daily runs only builds a backlog of stale directives
    // (frontiers long since closed by the time a pod executes them).
    // Freed units are re-spread to unsaturated programs in score order;
    // whatever exceeds the whole fleet's capacity is dropped.
    std::vector<std::size_t> pod_count(corpus_.size(), 0);
    for (const auto& slot : pods_) pod_count[slot.corpus_index]++;
    const auto capacity = [&](std::size_t i) {
      return pod_count[i] *
             static_cast<std::size_t>(
                 std::ceil(std::max(config_.mean_runs_per_day, 1.0)));
    };
    std::size_t freed = 0;
    for (std::size_t i = 0; i < corpus_.size(); ++i) {
      const std::size_t cap = capacity(i);
      if (shares[i] > cap) {
        freed += shares[i] - cap;
        shares[i] = cap;
      }
    }
    for (const std::size_t i : adapt_planner_.rank(targets, ledger_)) {
      if (freed == 0) break;
      if (adapt_planner_.score(ledger_, targets[i]) <= 0.0) break;
      const std::size_t room = capacity(i) - std::min(capacity(i), shares[i]);
      const std::size_t grant = std::min(room, freed);
      shares[i] += grant;
      freed -= grant;
    }
    for (std::size_t i = 0; i < corpus_.size(); ++i) {
      if (shares[i] == 0) continue;
      auto planned = hive_->plan_guidance_for(corpus_[i], shares[i]);
      directives.insert(directives.end(),
                        std::make_move_iterator(planned.begin()),
                        std::make_move_iterator(planned.end()));
    }
  }
  // Charge the invested directives to the ledger (in both modes, so static
  // runs accumulate warm estimates for a later flip to adaptive).
  for (const auto& d : directives) ledger_.note_work(d.program, 1);
  for (const auto& d : directives) {
    // Pick a random pod of the right program.
    std::vector<const PodSlot*> eligible;
    for (const auto& slot : pods_) {
      if (slot.pod->program() == d.program) eligible.push_back(&slot);
    }
    if (eligible.empty()) continue;
    const PodSlot* target = eligible[rng_.next_below(eligible.size())];
    net_.send(hive_endpoint_, target->endpoint, kMsgGuidance,
              encode_guidance(d));
  }
}

void World::attempt_daily_proofs() {
  if (config_.proof_programs_per_day == 0 || corpus_.empty()) return;
  const std::size_t n =
      std::min(config_.proof_programs_per_day, corpus_.size());
  std::vector<const CorpusEntry*> slice;
  slice.reserve(n);
  if (config_.adapt.static_plan) {
    // Historical schedule: a rotating corpus slice, the whole fleet swept
    // every ceil(corpus / n) days regardless of where proofs might land.
    const std::size_t start = ((day_ - 1) * n) % corpus_.size();
    for (std::size_t i = 0; i < n; ++i) {
      slice.push_back(&corpus_[(start + i) % corpus_.size()]);
    }
  } else {
    // Adaptive schedule: spend the day's proof slots on the highest-scoring
    // programs. Saturated programs (complete tree + standing certificate)
    // score 0 and sink to the bottom, so slots migrate to open work.
    std::vector<ProgramId> targets;
    targets.reserve(corpus_.size());
    for (const auto& entry : corpus_) targets.push_back(entry.program.id);
    const auto order = adapt_planner_.rank(targets, ledger_);
    for (std::size_t i = 0; i < n; ++i) slice.push_back(&corpus_[order[i]]);
  }
  for (const CorpusEntry* entry : slice) {
    ledger_.note_work(entry->program.id, 1);
  }
  hive_->attempt_proofs_for(slice, config_.proof_property);
}

void World::run_daily_coop(DayMetrics& metrics) {
  if (config_.coop_programs_per_day == 0 || corpus_.empty()) return;
  // Cooperative exploration runs the symbolic engine, which (like guidance
  // planning and proof attempts) only handles single-threaded programs.
  std::vector<std::size_t> candidates;
  candidates.reserve(corpus_.size());
  for (std::size_t i = 0; i < corpus_.size(); ++i) {
    if (corpus_[i].program.num_threads() == 1) candidates.push_back(i);
  }
  if (candidates.empty()) return;
  const std::size_t n =
      std::min(config_.coop_programs_per_day, candidates.size());
  std::vector<std::size_t> picks;
  picks.reserve(n);
  std::vector<std::size_t> workers(n, config_.coop.num_workers);
  if (config_.adapt.static_plan) {
    // Rotating slice, uniform worker investment — mirrors the proof slice.
    const std::size_t start = ((day_ - 1) * n) % candidates.size();
    for (std::size_t i = 0; i < n; ++i) {
      picks.push_back(candidates[(start + i) % candidates.size()]);
    }
  } else {
    // Top-ranked programs, with the day's total worker pool allocated
    // across them by yield (every pick keeps at least one worker).
    std::vector<ProgramId> targets;
    targets.reserve(candidates.size());
    for (const std::size_t c : candidates) {
      targets.push_back(corpus_[c].program.id);
    }
    const auto order = adapt_planner_.rank(targets, ledger_);
    picks.clear();
    for (std::size_t i = 0; i < n; ++i) picks.push_back(candidates[order[i]]);
    std::vector<ProgramId> pick_ids;
    pick_ids.reserve(n);
    for (const std::size_t p : picks) pick_ids.push_back(corpus_[p].program.id);
    const auto shares = adapt_planner_.allocate(
        n * config_.coop.num_workers, pick_ids, ledger_);
    for (std::size_t i = 0; i < n; ++i) {
      workers[i] = std::max<std::size_t>(shares[i], 1);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const CorpusEntry& entry = corpus_[picks[i]];
    CoopConfig cc = config_.coop;
    cc.num_workers = workers[i];
    // Per-(day, program) seed so repeated runs of one program differ but the
    // whole schedule stays a pure function of (config, day).
    cc.seed = config_.coop.seed ^ (day_ << 20) ^ entry.program.id.value;
    if (config_.hive.solver_cache) cc.solver_cache = &hive_->solver_cache();
    // The ledger seeds portfolio equities with cross-run priors only on the
    // adaptive path; the static path keeps the historical cold start.
    cc.yield = config_.adapt.static_plan ? nullptr : &ledger_;
    ledger_.note_work(entry.program.id, cc.num_workers);
    const CoopResult result = run_cooperative_exploration(entry, cc);
    hive_->record_coop_outcome(result);
    metrics.coop_runs++;
    metrics.coop_ticks += result.ticks;
    metrics.coop_useful_steps += result.useful_steps;
    metrics.coop_wasted_steps += result.wasted_steps;
    metrics.coop_idle_ticks += result.idle_ticks;
    metrics.coop_runs_by_strategy[static_cast<std::size_t>(result.strategy)]++;
  }
}

void World::step_day() {
  SB_SPAN("world.step_day");
  day_++;
  DayMetrics metrics;
  metrics.day = day_;

  // 0. Warm start: replay the persisted regression set before the day's
  //    fresh traffic (the wires carry trace id 0, so dedup never eats them).
  if (!config_.warm_start_regressions.empty()) {
    hive_->ingest_batch(config_.warm_start_regressions);
  }

  // 1. Deliver yesterday's in-flight downstream messages.
  deliver_downstream();

  // 2. Users run their software; pods ship by-products.
  for (auto& slot : pods_) {
    const std::uint32_t n = slot.pod->draws_for_day();
    for (std::uint32_t i = 0; i < n; ++i) {
      PodRun run = slot.pod->run_once(day_);
      metrics.runs++;
      if (run.trace.outcome != Outcome::kOk) metrics.failures++;
      if (run.fix_intervened) metrics.fix_interventions++;
      net_.send(slot.endpoint, hive_endpoint_, kMsgTrace,
                encode_trace(run.trace));
      if (run.sampled.has_value()) {
        hive_->ingest_sampled(*run.sampled);  // cheap side channel
      }
    }
  }

  // 3. Let the network move, then the hive ingest everything delivered as
  //    one batch (decode/replay fan out when hive.ingest_threads > 1).
  for (std::size_t t = 0; t < config_.ticks_per_day; ++t) net_.tick();
  std::vector<Bytes> batch;
  auto messages = net_.drain(hive_endpoint_);
  batch.reserve(messages.size());
  for (auto& msg : messages) {
    if (msg.type == kMsgTrace) batch.push_back(std::move(msg.payload));
  }
  if (!batch.empty()) hive_->ingest_batch(batch);

  // 4. Analysis: bugs -> fixes -> distribution; guidance planning; proof
  //    gap closure over a rotating corpus slice.
  const auto fixes = hive_->process();
  if (config_.distribute_fixes) {
    advance_rollouts();
    broadcast_fixes(fixes);
  }
  send_guidance();
  attempt_daily_proofs();
  run_daily_coop(metrics);
  for (std::size_t t = 0; t < config_.ticks_per_day; ++t) net_.tick();

  // 5. Metrics.
  metrics.failure_rate =
      metrics.runs == 0
          ? 0.0
          : static_cast<double>(metrics.failures) /
                static_cast<double>(metrics.runs);
  metrics.bugs_found_total = hive_->bug_tracker().all().size();
  metrics.bugs_fixed_total =
      hive_->bug_tracker().all().size() - hive_->bug_tracker().open_bugs().size();
  metrics.fixes_distributed_total = fixes_distributed_;
  for (const auto& entry : corpus_) {
    if (const ExecTree* tree = hive_->tree(entry.program.id)) {
      metrics.total_paths += tree->num_paths();
      metrics.open_frontiers += tree->open_frontiers();
    }
  }
  metrics.traces_delivered_total = net_.stats().delivered;
  metrics.net_blocked_at_send_total = net_.stats().blocked_at_send;
  metrics.net_dropped_in_flight_total = net_.stats().dropped_in_flight;
  metrics.net_dropped_total = net_.stats().dropped;
  metrics.proofs_valid_total = hive_->valid_proof_count();
  metrics.proof_solver_calls_total = hive_->proof_stats().solver_calls;
  metrics.proof_solver_recycled_total = hive_->proof_stats().recycled();
  // Distributed-transport backpressure: read (never register) the dist.*
  // series a co-resident TraceRouter publishes; absent counters read zero.
  {
    const obs::MetricsSnapshot ms = obs::MetricsRegistry::global().snapshot();
    metrics.dist_shed_total = ms.counter_value("dist.shed_total").value_or(0);
    metrics.dist_backpressure_stalls_total =
        ms.counter_value("dist.backpressure_stalls_total").value_or(0);
    metrics.dist_stall_seconds = static_cast<double>(ms.counter_value(
                                     "dist.stall_us_total").value_or(0)) /
                                 1e6;
    for (const auto& g : ms.gauges) {
      if (g.name == "dist.queue_depth_peak" && g.value > 0) {
        metrics.dist_queue_depth_peak = static_cast<std::uint64_t>(g.value);
      }
    }
  }
  // Feed the yield ledger at this serial barrier, in both planning modes
  // (static runs keep warm estimates for a later flip to adaptive). Inputs
  // are the deterministic stats structs and tree aggregates — never the
  // process-wide registry — so ledger state is byte-identical across worker
  // counts and across cold vs resumed runs.
  for (const auto& entry : corpus_) {
    const ExecTree* tree = hive_->tree(entry.program.id);
    ledger_.observe_program(entry.program.id,
                            tree != nullptr ? tree->num_paths() : 0,
                            tree != nullptr ? tree->open_frontiers() : 0,
                            hive_->has_valid_proof(entry.program.id));
  }
  ledger_.observe_hive(hive_->ingest_stats(), hive_->proof_stats());
  history_.push_back(metrics);
  if (config_.record_metrics) {
    metrics_history_.push_back(
        obs::MetricsRegistry::global().delta_snapshot());
  }

  SB_LOG_INFO(
      "day %llu: runs=%llu failures=%llu (%.2f%%) bugs=%zu fixed=%zu "
      "paths=%zu",
      static_cast<unsigned long long>(day_),
      static_cast<unsigned long long>(metrics.runs),
      static_cast<unsigned long long>(metrics.failures),
      metrics.failure_rate * 100.0, metrics.bugs_found_total,
      metrics.bugs_fixed_total, metrics.total_paths);

  // 6. Durable store: persist a generation at the configured cadence. A
  //    failed save is logged, not fatal — the run continues, and the
  //    previous generation stays loadable.
  if (!config_.snapshot_dir.empty() && config_.snapshot_every_n_days > 0 &&
      day_ % config_.snapshot_every_n_days == 0) {
    std::string err;
    if (!save_snapshot(config_.snapshot_dir, &err)) {
      SB_CLOG_ERROR("world", "snapshot at day %llu failed: %s",
                    static_cast<unsigned long long>(day_), err.c_str());
    }
  }
}

void World::run() {
  while (day_ < config_.days) step_day();
}

// --- durable store ----------------------------------------------------------

std::uint64_t World::config_fingerprint() const {
  // Everything with behavioral effect on a run, EXCEPT `days` (a resumed run
  // may legitimately extend the horizon) and the snapshot/warm-start knobs
  // themselves (where state is stored must not invalidate the state).
  Bytes b;
  put_varint(b, config_.seed);
  put_varint(b, config_.pods_per_program);
  put_f64(b, config_.mean_runs_per_day);
  put_varint(b, config_.ticks_per_day);
  put_bool(b, config_.distribute_fixes);
  put_f64(b, config_.canary_fraction);
  put_varint(b, config_.canary_days);
  put_varint(b, config_.guidance_per_program_per_day);
  put_varint(b, config_.proof_programs_per_day);
  put_varint(b, static_cast<std::uint64_t>(config_.proof_property));
  // Adaptive control plane + cooperative exploration.
  put_bool(b, config_.adapt.static_plan);
  put_f64(b, config_.adapt.ewma_alpha);
  put_f64(b, config_.adapt.optimism);
  put_f64(b, config_.adapt.risk_aversion);
  put_varint(b, config_.coop_programs_per_day);
  put_varint(b, config_.coop.num_workers);
  put_varint(b, static_cast<std::uint64_t>(config_.coop.strategy));
  put_varint(b, config_.coop.steps_per_tick);
  put_f64(b, config_.coop.churn_prob);
  put_varint(b, config_.coop.respawn_ticks);
  put_varint(b, config_.coop.death_detect_ticks);
  put_varint(b, config_.coop.split_depth);
  put_varint(b, config_.coop.seed);
  put_varint(b, config_.coop.max_ticks);
  // Network.
  put_f64(b, config_.net.drop_prob);
  put_f64(b, config_.net.dup_prob);
  put_varint(b, config_.net.min_latency_ticks);
  put_varint(b, config_.net.max_latency_ticks);
  put_varint(b, config_.net.seed);
  // Pods.
  put_varint(b, static_cast<std::uint64_t>(config_.pod_config.granularity));
  put_varint(b, config_.pod_config.sampling_rate);
  put_varint(b, config_.pod_config.max_steps);
  put_bool(b, config_.pod_config.enable_fusion);
  put_bool(b, config_.pod_config.anonymize.strip_pod_id);
  put_varint(b, config_.pod_config.anonymize.pod_bucket_count);
  put_bool(b, config_.pod_config.anonymize.quantize_day);
  put_bool(b, config_.pod_config.anonymize.coarsen_syscalls);
  put_varint(b, config_.pod_config.anonymize.bit_suppression);
  // Hive.
  put_f64(b, config_.hive.auto_fix_threshold);
  put_varint(b, config_.hive.recurrence_grace_days);
  put_varint(b, config_.hive.k_anonymity);
  put_varint(b, config_.hive.seed);
  put_bool(b, config_.hive.solver_cache);
  put_varint(b, config_.hive.next_proof_id);
  put_varint(b, config_.hive.fixer.next_fix_id);
  put_varint(b, config_.hive.fixer.validation_runs_region);
  put_varint(b, config_.hive.fixer.validation_runs_domain);
  put_varint(b, config_.hive.fixer.seed);
  // Corpus identity.
  put_varint(b, corpus_.size());
  for (const auto& entry : corpus_) put_varint(b, entry.program.id.value);
  return fnv1a64(b.data(), b.size());
}

bool World::save_snapshot(const std::string& dir, std::string* err) const {
  std::vector<store::Part> parts;
  {
    Bytes meta;
    put_varint(meta, config_fingerprint());
    put_varint(meta, day_);
    parts.push_back({"meta", std::move(meta)});
  }
  {
    Bytes w;
    put_varint(w, day_);
    std::uint64_t rng_state[4];
    rng_.export_state(rng_state);
    for (std::uint64_t word : rng_state) put_varint(w, word);
    put_varint(w, fixes_distributed_);
    put_varint(w, rollouts_cancelled_);
    put_varint(w, pending_rollouts_.size());
    for (const auto& pr : pending_rollouts_) {
      Bytes c;
      encode_fix_candidate(c, pr.candidate);
      put_blob(w, c);
      put_varint(w, pr.full_rollout_day);
    }
    put_varint(w, history_.size());
    for (const DayMetrics& m : history_) {
      put_varint(w, m.day);
      put_varint(w, m.runs);
      put_varint(w, m.failures);
      put_f64(w, m.failure_rate);
      put_varint(w, m.fix_interventions);
      put_varint(w, m.bugs_found_total);
      put_varint(w, m.bugs_fixed_total);
      put_varint(w, m.fixes_distributed_total);
      put_varint(w, m.total_paths);
      put_varint(w, m.open_frontiers);
      put_varint(w, m.traces_delivered_total);
      put_varint(w, m.net_blocked_at_send_total);
      put_varint(w, m.net_dropped_in_flight_total);
      put_varint(w, m.net_dropped_total);
      put_varint(w, m.proofs_valid_total);
      put_varint(w, m.proof_solver_calls_total);
      put_varint(w, m.proof_solver_recycled_total);
      put_varint(w, m.coop_runs);
      put_varint(w, m.coop_ticks);
      put_varint(w, m.coop_useful_steps);
      put_varint(w, m.coop_wasted_steps);
      put_varint(w, m.coop_idle_ticks);
      for (const std::uint64_t runs : m.coop_runs_by_strategy) {
        put_varint(w, runs);
      }
      put_varint(w, m.dist_shed_total);
      put_varint(w, m.dist_backpressure_stalls_total);
      put_varint(w, m.dist_queue_depth_peak);
      put_f64(w, m.dist_stall_seconds);
    }
    parts.push_back({"world", std::move(w)});
  }
  {
    // Pod order is construction order, which the ctor re-derives from the
    // corpus + config — so per-pod state maps positionally.
    Bytes p;
    put_varint(p, pods_.size());
    for (const auto& slot : pods_) {
      Bytes one;
      slot.pod->save_state(one);
      put_blob(p, one);
    }
    parts.push_back({"pods", std::move(p)});
  }
  {
    Bytes n;
    net_.save_state(n);
    parts.push_back({"net", std::move(n)});
  }
  {
    Bytes h;
    hive_->save_state(h);
    parts.push_back({"hive", std::move(h)});
  }
  {
    Bytes t;
    hive_->save_trees(t);
    parts.push_back({"trees", std::move(t)});
  }
  {
    Bytes s;
    hive_->solver_cache().save_state(s);
    parts.push_back({"solver", std::move(s)});
  }
  {
    // The regression set is re-derived (not mutable state) but persisted as
    // its own part so load_regression_inputs() can warm-start a fresh fleet
    // without decoding the full hive ledger.
    Bytes reg;
    const std::vector<Bytes> wires = hive_->regression_inputs();
    put_varint(reg, wires.size());
    for (const Bytes& wire : wires) put_blob(reg, wire);
    parts.push_back({"regress", std::move(reg)});
  }
  {
    Bytes a;
    ledger_.save_state(a);
    parts.push_back({"adapt", std::move(a)});
  }
  return store::write_snapshot(dir, day_, parts, err);
}

bool World::resume_from_snapshot(const std::string& dir, std::string* err) {
  const auto snapshot = store::read_snapshot(dir, err);
  if (!snapshot.has_value()) return false;
  auto set_err = [&](const char* what) {
    if (err != nullptr) *err = what;
    return false;
  };
  const auto part = [&](const char* name) -> const Bytes* {
    const auto it = snapshot->parts.find(name);
    return it == snapshot->parts.end() ? nullptr : &it->second;
  };
  for (const char* name : {"meta", "world", "pods", "net", "hive", "trees",
                           "solver", "adapt"}) {
    if (part(name) == nullptr) return set_err("snapshot missing a part");
  }

  {
    StateReader r(*part("meta"));
    const std::uint64_t fingerprint = r.u64();
    const std::uint64_t day = r.u64();
    if (!r.done()) return set_err("meta part malformed");
    if (fingerprint != config_fingerprint()) {
      return set_err("config/corpus fingerprint mismatch");
    }
    if (day != snapshot->seq) return set_err("meta day != generation seq");
  }
  {
    StateReader r(*part("world"));
    day_ = r.u64();
    std::uint64_t rng_state[4];
    for (std::uint64_t& word : rng_state) word = r.u64();
    if (!r.ok()) return set_err("world part malformed");
    rng_.import_state(rng_state);
    fixes_distributed_ = r.u64();
    rollouts_cancelled_ = r.u64();
    pending_rollouts_.clear();
    const std::uint64_t n_rollouts = r.count(2);
    for (std::uint64_t i = 0; i < n_rollouts && r.ok(); ++i) {
      Bytes c;
      r.blob(c);
      PendingRollout pr;
      StateReader cr(c);
      if (!decode_fix_candidate(cr, pr.candidate) || !cr.done()) {
        return set_err("pending rollout malformed");
      }
      pr.full_rollout_day = r.u64();
      pending_rollouts_.push_back(std::move(pr));
    }
    history_.clear();
    const std::uint64_t n_days = r.count(29);
    history_.reserve(n_days);
    for (std::uint64_t i = 0; i < n_days && r.ok(); ++i) {
      DayMetrics m;
      m.day = r.u64();
      m.runs = r.u64();
      m.failures = r.u64();
      m.failure_rate = r.f64();
      m.fix_interventions = r.u64();
      m.bugs_found_total = r.u64();
      m.bugs_fixed_total = r.u64();
      m.fixes_distributed_total = r.u64();
      m.total_paths = r.u64();
      m.open_frontiers = r.u64();
      m.traces_delivered_total = r.u64();
      m.net_blocked_at_send_total = r.u64();
      m.net_dropped_in_flight_total = r.u64();
      m.net_dropped_total = r.u64();
      m.proofs_valid_total = r.u64();
      m.proof_solver_calls_total = r.u64();
      m.proof_solver_recycled_total = r.u64();
      m.coop_runs = r.u64();
      m.coop_ticks = r.u64();
      m.coop_useful_steps = r.u64();
      m.coop_wasted_steps = r.u64();
      m.coop_idle_ticks = r.u64();
      for (std::uint64_t& runs : m.coop_runs_by_strategy) runs = r.u64();
      m.dist_shed_total = r.u64();
      m.dist_backpressure_stalls_total = r.u64();
      m.dist_queue_depth_peak = r.u64();
      m.dist_stall_seconds = r.f64();
      history_.push_back(m);
    }
    if (!r.done()) return set_err("world part malformed");
    if (day_ != snapshot->seq) return set_err("world day != generation seq");
    if (history_.size() != day_) return set_err("history length != day");
  }
  {
    StateReader r(*part("pods"));
    if (r.u64() != pods_.size()) return set_err("pod count mismatch");
    for (auto& slot : pods_) {
      Bytes one;
      r.blob(one);
      if (!r.ok()) return set_err("pods part malformed");
      StateReader pr(one);
      if (!slot.pod->load_state(pr) || !pr.done()) {
        return set_err("pod state malformed");
      }
    }
    if (!r.done()) return set_err("pods part malformed");
  }
  {
    StateReader r(*part("net"));
    if (!net_.load_state(r) || !r.done()) {
      return set_err("net part malformed");
    }
  }
  {
    StateReader r(*part("hive"));
    if (!hive_->load_state(r) || !r.done()) {
      return set_err("hive part malformed");
    }
  }
  {
    StateReader r(*part("trees"));
    if (!hive_->load_trees(r) || !r.done()) {
      return set_err("trees part malformed");
    }
  }
  {
    StateReader r(*part("solver"));
    if (!hive_->solver_cache().load_state(r) || !r.done()) {
      return set_err("solver part malformed");
    }
  }
  {
    StateReader r(*part("adapt"));
    if (!ledger_.load_state(r) || !r.done()) {
      return set_err("adapt part malformed");
    }
  }
  return true;
}

std::vector<Bytes> load_regression_inputs(const std::string& dir,
                                          std::string* err) {
  const auto snapshot = store::read_snapshot(dir, err);
  if (!snapshot.has_value()) return {};
  const auto it = snapshot->parts.find("regress");
  if (it == snapshot->parts.end()) {
    if (err != nullptr) *err = "snapshot has no regress part";
    return {};
  }
  StateReader r(it->second);
  std::vector<Bytes> wires;
  const std::uint64_t n = r.count();
  wires.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    Bytes wire;
    r.blob(wire);
    wires.push_back(std::move(wire));
  }
  if (!r.done()) {
    if (err != nullptr) *err = "regress part malformed";
    return {};
  }
  return wires;
}

}  // namespace softborg
