file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_privacy.dir/bench_e8_privacy.cpp.o"
  "CMakeFiles/bench_e8_privacy.dir/bench_e8_privacy.cpp.o.d"
  "bench_e8_privacy"
  "bench_e8_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
