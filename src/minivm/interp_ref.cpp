// The pre-threaded-dispatch interpreter, frozen verbatim as the
// differential baseline for the predecode + direct-threaded core in
// interp.cpp. Do not optimize this file: its value is that it is the
// nested-switch machine the dispatch rebuild must stay byte-identical to
// (tests/dispatch_diff_test.cpp) and the baseline BM_PodExecute measures
// against. It ignores the dispatch-era ExecConfig knobs (enable_fusion,
// pair_counts) by construction.
#include "minivm/interp.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace softborg {

namespace {

// Wrapping arithmetic: MiniVM integers are two's-complement 64-bit with
// defined wraparound (no UB on overflow).
Value wrap_add(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) +
                            static_cast<std::uint64_t>(b));
}
Value wrap_sub(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) -
                            static_cast<std::uint64_t>(b));
}
Value wrap_mul(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) *
                            static_cast<std::uint64_t>(b));
}

struct ThreadCtx {
  std::uint32_t pc = 0;
  std::vector<Value> regs;
  std::vector<bool> taint;
  bool halted = false;
  std::optional<std::uint16_t> blocked_on;
  std::vector<std::uint16_t> held;

  bool runnable() const { return !halted && !blocked_on; }
};

struct LockCtx {
  int owner = -1;  // thread index, -1 = free
  std::deque<std::uint8_t> waiters;
};

class ReferenceMachine {
 public:
  ReferenceMachine(const Program& program, const ExecConfig& config)
      : p_(program),
        cfg_(config),
        env_(config.env != nullptr ? *config.env : default_env()),
        sched_rng_(config.seed),
        env_rng_(Rng(config.seed).split(0x0e17)) {
    threads_.resize(p_.num_threads());
    for (std::size_t t = 0; t < threads_.size(); ++t) {
      threads_[t].pc = p_.thread_entries[t];
      threads_[t].regs.assign(p_.num_regs, 0);
      threads_[t].taint.assign(p_.num_regs, false);
    }
    globals_.assign(p_.num_globals, 0);
    global_taint_.assign(p_.num_globals, false);
    locks_.resize(p_.num_locks);
  }

  ExecResult run();

 private:
  // Returns false when the whole execution must stop (crash/deadlock/hang).
  bool step(std::uint8_t t);
  bool exec_lock(std::uint8_t t, const Instr& ins);
  void exec_unlock(std::uint8_t t, const Instr& ins);
  void crash(CrashKind kind, std::uint32_t pc, std::int64_t detail);
  const CrashGuardFix* crash_guard_at(std::uint32_t pc) const {
    if (cfg_.fixes == nullptr) return nullptr;
    for (const auto& g : cfg_.fixes->crash_guards) {
      if (g.pc == pc) return &g;
    }
    return nullptr;
  }
  int pick_next_thread();
  bool wait_chain_has_cycle(std::uint8_t start,
                            std::vector<LockEvent>* cycle) const;
  void record_schedule_step(std::uint8_t t);
  void record_branch_bit(bool dir, bool tainted);
  bool record_all_branches() const {
    return cfg_.granularity == Granularity::kAllBranches ||
           cfg_.granularity == Granularity::kFull;
  }

  const Program& p_;
  const ExecConfig& cfg_;
  const EnvModel& env_;
  Rng sched_rng_;
  Rng env_rng_;

  std::vector<ThreadCtx> threads_;
  std::vector<Value> globals_;
  std::vector<bool> global_taint_;
  std::vector<LockCtx> locks_;

  std::uint64_t steps_ = 0;
  std::uint32_t syscall_index_ = 0;
  bool done_ = false;
  Outcome outcome_ = Outcome::kOk;
  std::optional<CrashInfo> crash_info_;

  // Scheduler plan cursor.
  std::size_t plan_run_ = 0;
  std::uint32_t plan_used_ = 0;
  std::uint32_t plan_cap_ = 0;  // steps left in the current plan run

  // Captured by-products.
  BitVec bits_;
  std::vector<ScheduleRun> schedule_;
  std::vector<LockEvent> lock_events_;
  std::vector<SyscallRecord> syscalls_;
  std::vector<BranchEvent> branch_events_;
  std::vector<LockEvent> deadlock_cycle_;
  std::vector<Value> outputs_;
  bool fix_intervened_ = false;
  bool yielded_ = false;  // current thread's quantum ended voluntarily
};

void ReferenceMachine::record_schedule_step(std::uint8_t t) {
  if (p_.num_threads() <= 1) return;
  if (!schedule_.empty() && schedule_.back().thread == t) {
    schedule_.back().steps++;
  } else {
    schedule_.push_back({t, 1});
  }
}

void ReferenceMachine::record_branch_bit(bool dir, bool tainted) {
  if (cfg_.granularity == Granularity::kNone) return;
  if (tainted || record_all_branches()) bits_.push_back(dir);
}

void ReferenceMachine::crash(CrashKind kind, std::uint32_t pc,
                             std::int64_t detail) {
  done_ = true;
  outcome_ = Outcome::kCrash;
  crash_info_ = CrashInfo{kind, pc, detail};
}

bool ReferenceMachine::wait_chain_has_cycle(
    std::uint8_t start, std::vector<LockEvent>* cycle) const {
  // Follow thread -> lock-it-waits-on -> owner; bounded by thread count.
  std::vector<LockEvent> path;
  std::uint8_t t = start;
  for (std::size_t hop = 0; hop <= threads_.size(); ++hop) {
    const auto& th = threads_[t];
    if (!th.blocked_on) return false;
    const std::uint16_t l = *th.blocked_on;
    path.push_back({t, true, l, th.pc,
                    static_cast<std::uint32_t>(steps_)});
    const int owner = locks_[l].owner;
    if (owner < 0) return false;  // transiently free; no cycle
    if (static_cast<std::uint8_t>(owner) == start) {
      if (cycle != nullptr) *cycle = path;
      return true;
    }
    t = static_cast<std::uint8_t>(owner);
  }
  return false;
}

bool ReferenceMachine::exec_lock(std::uint8_t t, const Instr& ins) {
  ThreadCtx& th = threads_[t];
  const std::uint16_t l = static_cast<std::uint16_t>(ins.a);

  // Deadlock-immunity fix: serialize entry into a diagnosed cycle's lock
  // set. If another thread currently holds any lock of the cycle, yield
  // (quantum ends, pc unchanged) instead of entering the pattern.
  if (cfg_.fixes != nullptr) {
    for (const auto& fix : cfg_.fixes->lock_fixes) {
      if (!fix.covers(l)) continue;
      // If we already hold a cycle lock we are the occupant; proceed.
      bool self_inside = false;
      for (auto h : th.held) {
        if (fix.covers(h)) {
          self_inside = true;
          break;
        }
      }
      if (self_inside) continue;
      for (std::size_t other = 0; other < threads_.size(); ++other) {
        if (other == t) continue;
        for (auto h : threads_[other].held) {
          if (fix.covers(h)) {
            fix_intervened_ = true;
            yielded_ = true;  // retry this kLock later
            return true;
          }
        }
      }
    }
  }
  if (yielded_) return true;

  LockCtx& lock = locks_[l];
  if (lock.owner < 0) {
    lock.owner = t;
    th.held.push_back(l);
    th.pc++;
    lock_events_.push_back(
        {t, true, l, th.pc - 1, static_cast<std::uint32_t>(steps_)});
    return true;
  }

  // Block (possibly on a lock we already own: self-deadlock).
  th.blocked_on = l;
  lock.waiters.push_back(t);
  if (cfg_.detect_deadlock) {
    std::vector<LockEvent> cycle;
    if (wait_chain_has_cycle(t, &cycle)) {
      done_ = true;
      outcome_ = Outcome::kDeadlock;
      deadlock_cycle_ = cycle;
      return false;
    }
  }
  return true;
}

void ReferenceMachine::exec_unlock(std::uint8_t t, const Instr& ins) {
  ThreadCtx& th = threads_[t];
  const std::uint16_t l = static_cast<std::uint16_t>(ins.a);
  LockCtx& lock = locks_[l];
  if (lock.owner != static_cast<int>(t)) {
    crash(CrashKind::kExplicitAbort, th.pc, 1000 + l);
    return;
  }
  lock.owner = -1;
  th.held.erase(std::find(th.held.begin(), th.held.end(), l));
  lock_events_.push_back(
      {t, false, l, th.pc, static_cast<std::uint32_t>(steps_)});
  th.pc++;

  // Hand the lock to the first waiter, FIFO; its pc moves past its kLock.
  while (!lock.waiters.empty()) {
    const std::uint8_t w = lock.waiters.front();
    lock.waiters.pop_front();
    ThreadCtx& wt = threads_[w];
    if (!wt.blocked_on || *wt.blocked_on != l) continue;  // stale waiter
    lock.owner = w;
    wt.blocked_on.reset();
    wt.held.push_back(l);
    lock_events_.push_back(
        {w, true, l, wt.pc, static_cast<std::uint32_t>(steps_)});
    wt.pc++;
    break;
  }
}

bool ReferenceMachine::step(std::uint8_t t) {
  ThreadCtx& th = threads_[t];
  const Instr& ins = p_.at(th.pc);
  auto& regs = th.regs;
  auto taint_of = [&](std::uint32_t r) -> bool { return th.taint[r]; };

  switch (ins.op) {
    case Op::kConst:
      regs[ins.a] = ins.imm;
      th.taint[ins.a] = false;
      th.pc++;
      break;
    case Op::kMov:
      regs[ins.a] = regs[ins.b];
      th.taint[ins.a] = th.taint[ins.b];
      th.pc++;
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kCmpLt:
    case Op::kCmpLe:
    case Op::kCmpEq:
    case Op::kCmpNe: {
      const Value x = regs[ins.b], y = regs[ins.c];
      Value r = 0;
      switch (ins.op) {
        case Op::kAdd:
          r = wrap_add(x, y);
          break;
        case Op::kSub:
          r = wrap_sub(x, y);
          break;
        case Op::kMul:
          r = wrap_mul(x, y);
          break;
        case Op::kDiv:
        case Op::kMod: {
          // Surviving a data-dependent crash check is a decision of the
          // execution tree: record it like a branch (true = survived).
          record_branch_bit(y != 0, taint_of(ins.c));
          if (cfg_.collect_branch_events) {
            branch_events_.push_back(
                {ins.site, y != 0, taint_of(ins.c), t});
          }
          if (y == 0) {
            if (const auto* g = crash_guard_at(th.pc);
                g != nullptr &&
                g->action == CrashGuardFix::Action::kSubstitute) {
              r = g->fallback;
              fix_intervened_ = true;
              break;
            }
            crash(CrashKind::kDivByZero, th.pc, ins.op == Op::kDiv ? 0 : 1);
            return false;
          }
          if (ins.op == Op::kDiv) {
            r = (x == INT64_MIN && y == -1) ? INT64_MIN : x / y;
          } else {
            r = (x == INT64_MIN && y == -1) ? 0 : x % y;
          }
          break;
        }
        case Op::kCmpLt:
          r = x < y;
          break;
        case Op::kCmpLe:
          r = x <= y;
          break;
        case Op::kCmpEq:
          r = x == y;
          break;
        case Op::kCmpNe:
          r = x != y;
          break;
        default:
          break;
      }
      regs[ins.a] = r;
      th.taint[ins.a] = taint_of(ins.b) || taint_of(ins.c);
      th.pc++;
      break;
    }
    case Op::kBranchIf: {
      bool dir = regs[ins.a] != 0;
      const bool tainted = taint_of(ins.a);
      // GuardPatch fix hook: steer away from a known crash direction when
      // the synthesized input predicate holds.
      if (cfg_.fixes != nullptr) {
        for (const auto& patch : cfg_.fixes->guards) {
          if (patch.site == ins.site && dir == patch.crash_direction &&
              patch.matches(cfg_.inputs)) {
            dir = !dir;
            fix_intervened_ = true;
            break;
          }
        }
      }
      record_branch_bit(dir, tainted);
      if (cfg_.collect_branch_events) {
        branch_events_.push_back({ins.site, dir, tainted, t});
      }
      th.pc = dir ? ins.b : ins.c;
      break;
    }
    case Op::kJump:
      th.pc = ins.a;
      break;
    case Op::kInput: {
      const Value v =
          ins.b < cfg_.inputs.size() ? cfg_.inputs[ins.b] : 0;
      regs[ins.a] = v;
      th.taint[ins.a] = true;
      th.pc++;
      break;
    }
    case Op::kSyscall: {
      const std::uint16_t sys = static_cast<std::uint16_t>(ins.b);
      const Value arg = regs[ins.c];
      const Value result =
          env_.call(sys, arg, syscall_index_, env_rng_, cfg_.fault_plan);
      if (cfg_.granularity == Granularity::kFull) {
        syscalls_.push_back({sys, syscall_index_, env_.classify(sys, arg, result)});
      }
      syscall_index_++;
      regs[ins.a] = result;
      th.taint[ins.a] = true;
      th.pc++;
      break;
    }
    case Op::kLoadG:
      regs[ins.a] = globals_[ins.b];
      th.taint[ins.a] = global_taint_[ins.b];
      th.pc++;
      break;
    case Op::kStoreG:
      globals_[ins.a] = regs[ins.b];
      global_taint_[ins.a] = th.taint[ins.b];
      th.pc++;
      break;
    case Op::kLock:
      return exec_lock(t, ins);
    case Op::kUnlock:
      exec_unlock(t, ins);
      return !done_;
    case Op::kAssert:
      record_branch_bit(regs[ins.a] != 0, taint_of(ins.a));
      if (cfg_.collect_branch_events) {
        branch_events_.push_back(
            {ins.site, regs[ins.a] != 0, taint_of(ins.a), t});
      }
      if (regs[ins.a] == 0) {
        if (const auto* g = crash_guard_at(th.pc);
            g != nullptr && g->action == CrashGuardFix::Action::kSkip) {
          fix_intervened_ = true;
          th.pc++;
          break;
        }
        crash(CrashKind::kAssertFailure, th.pc,
              static_cast<std::int64_t>(ins.b));
        return false;
      }
      th.pc++;
      break;
    case Op::kAbort:
      if (const auto* g = crash_guard_at(th.pc);
          g != nullptr && g->action == CrashGuardFix::Action::kSkip) {
        fix_intervened_ = true;
        th.pc++;
        break;
      }
      crash(CrashKind::kExplicitAbort, th.pc, static_cast<std::int64_t>(ins.a));
      return false;
    case Op::kOutput:
      outputs_.push_back(regs[ins.a]);
      th.pc++;
      break;
    case Op::kYield:
      yielded_ = true;
      th.pc++;
      break;
    case Op::kHalt:
      th.halted = true;
      break;
  }
  return true;
}

int ReferenceMachine::pick_next_thread() {
  // Honor the steering plan first (guidance, §3.3: "guide P in exploring
  // previously unseen thread schedules").
  if (cfg_.schedule_plan != nullptr) {
    const auto& runs = cfg_.schedule_plan->runs;
    while (plan_run_ < runs.size()) {
      const auto& run = runs[plan_run_];
      if (plan_used_ >= run.steps) {
        plan_run_++;
        plan_used_ = 0;
        continue;
      }
      if (run.thread < threads_.size() && threads_[run.thread].runnable()) {
        // Cap this turn exactly at the run boundary so short runs are not
        // overrun by the default quantum.
        plan_cap_ = run.steps - plan_used_;
        return run.thread;
      }
      // Planned thread can't run; skip the rest of this run.
      plan_run_++;
      plan_used_ = 0;
    }
  }
  plan_cap_ = 0;
  std::vector<std::uint8_t> runnable;
  for (std::size_t t = 0; t < threads_.size(); ++t) {
    if (threads_[t].runnable()) runnable.push_back(static_cast<std::uint8_t>(t));
  }
  if (runnable.empty()) return -1;
  return runnable[sched_rng_.next_below(runnable.size())];
}

ExecResult ReferenceMachine::run() {
  while (!done_) {
    const int picked = pick_next_thread();
    if (picked < 0) {
      // No runnable thread. All halted: OK. Otherwise threads are blocked
      // with no possible wake-up: resource deadlock (even without a
      // wait-for cycle, e.g. owner halted while holding).
      bool any_blocked = false;
      for (const auto& th : threads_) {
        if (th.blocked_on) any_blocked = true;
      }
      outcome_ = any_blocked ? Outcome::kDeadlock : Outcome::kOk;
      done_ = true;
      break;
    }
    const std::uint8_t t = static_cast<std::uint8_t>(picked);

    yielded_ = false;
    const std::uint32_t quantum = plan_cap_ > 0 ? plan_cap_ : cfg_.quantum;
    for (std::uint32_t q = 0; q < quantum && !done_; ++q) {
      if (!threads_[t].runnable()) break;
      record_schedule_step(t);
      steps_++;
      if (cfg_.schedule_plan != nullptr && plan_run_ < cfg_.schedule_plan->runs.size()) {
        plan_used_++;
      }
      if (!step(t)) break;
      if (yielded_) break;
      if (steps_ >= cfg_.max_steps) {
        bool all_halted = true;
        for (const auto& th : threads_) {
          if (!th.halted) all_halted = false;
        }
        outcome_ = all_halted ? Outcome::kOk : Outcome::kHang;
        done_ = true;
      }
    }
  }

  ExecResult result;
  Trace& tr = result.trace;
  tr.program = p_.id;
  tr.outcome = outcome_;
  tr.crash = crash_info_;
  tr.granularity = cfg_.granularity;
  tr.branch_bits = std::move(bits_);
  tr.schedule = std::move(schedule_);
  tr.steps = steps_;
  tr.patched = fix_intervened_;
  tr.syscalls = std::move(syscalls_);
  // Lock events ride along at full granularity, or as part of the "crash
  // report" whenever the run deadlocked. For deadlocks the blocked requests
  // (the wait-for cycle) are appended as pseudo-acquire events so the hive
  // can reconstruct the full lock-order cycle from the trace alone.
  if (cfg_.granularity == Granularity::kFull ||
      outcome_ == Outcome::kDeadlock) {
    tr.lock_events = std::move(lock_events_);
    if (outcome_ == Outcome::kDeadlock) {
      tr.lock_events.insert(tr.lock_events.end(), deadlock_cycle_.begin(),
                            deadlock_cycle_.end());
    }
  }
  result.outputs = std::move(outputs_);
  result.branch_events = std::move(branch_events_);
  result.deadlock_cycle = std::move(deadlock_cycle_);
  result.fix_intervened = fix_intervened_;
  return result;
}

}  // namespace

ExecResult execute_reference(const Program& program, const ExecConfig& config) {
  SB_CHECK(program.validate());
  SB_CHECK(program.num_threads() <= 256);
  ReferenceMachine m(program, config);
  return m.run();
}

}  // namespace softborg
