// Distributed hive deployment (paper §3: "the hive may be physically
// centralized (a cluster behind a web service), entirely distributed
// (running on end-users' machines), or hybrid").
//
// ShardedHive runs N independent hive shards behind the simulated network.
// Each program is owned by exactly one shard (hash routing), so a shard
// holds the complete knowledge of its programs — trees merge locally with
// no cross-shard coordination, mirroring how the single-hive pipeline
// works. An ingress endpoint routes encoded traces to the owning shard's
// endpoint; analysis (process / guidance / proofs) fans out per shard.
// Because routing is per program, a shard can drain its inbox through
// Hive::ingest_batch() — per-program grouping and replay memoization apply
// within each shard unchanged.
//
// Shard state is portable: `export_trees` serializes every tree via
// tree_codec, so shards can be migrated or their knowledge merged into a
// centralized hive (the hybrid deployment).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "hive/hive.h"
#include "net/simnet.h"

namespace softborg {

class ShardedHive {
 public:
  // Creates `num_shards` hives, each with an endpoint on `net`, plus one
  // ingress endpoint that routes upstream traffic.
  ShardedHive(const std::vector<CorpusEntry>* corpus, std::size_t num_shards,
              SimNet& net, HiveConfig config = {});

  Endpoint ingress() const { return ingress_; }
  std::size_t num_shards() const { return shards_.size(); }

  // Which shard owns a program (stable hash routing).
  std::size_t shard_index(ProgramId program) const;
  Hive& shard(std::size_t index) { return *shards_[index].hive; }
  Hive& shard_for(ProgramId program) {
    return *shards_[shard_index(program)].hive;
  }

  // Drains the ingress (routing traces onward) and every shard endpoint
  // (ingesting what arrived). Call after net ticks.
  void pump(SimNet& net);

  // Fans analysis out to every shard and concatenates approved fixes.
  std::vector<FixCandidate> process_all();
  std::vector<GuidanceDirective> plan_guidance_all(std::size_t per_program);

  // Aggregated statistics across shards.
  HiveStats aggregate_stats() const;
  std::size_t total_bugs() const;

  // Serialized trees of one shard, keyed by program id — the migration /
  // centralization payload.
  std::map<std::uint64_t, Bytes> export_trees(std::size_t index);

  // Statistics about routing.
  std::uint64_t routed() const { return routed_; }
  std::uint64_t routing_failures() const { return routing_failures_; }

 private:
  struct Shard {
    std::unique_ptr<Hive> hive;
    Endpoint endpoint = 0;
  };

  const std::vector<CorpusEntry>* corpus_;
  std::vector<Shard> shards_;
  Endpoint ingress_ = 0;
  std::uint64_t routed_ = 0;
  std::uint64_t routing_failures_ = 0;
};

}  // namespace softborg
