file(REMOVE_RECURSE
  "CMakeFiles/sym2_test.dir/sym2_test.cpp.o"
  "CMakeFiles/sym2_test.dir/sym2_test.cpp.o.d"
  "sym2_test"
  "sym2_test.pdb"
  "sym2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sym2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
