#include "sym/executor.h"

#include <algorithm>

#include "common/check.h"
#include "sym/solver_cache.h"

namespace softborg {

namespace {
constexpr std::uint32_t kNoForcedStop = 0;
}  // namespace

struct SymbolicExecutor::State {
  std::uint32_t pc = 0;
  std::vector<Expr> regs;
  std::vector<Expr> globals;
  std::vector<std::uint16_t> held_locks;
  PathConstraint constraints;
  std::vector<SymDecision> decisions;
  std::vector<VarDomain> unknown_domains;
  Assignment model;  // witness of `constraints` (kept current)
  std::uint32_t syscall_count = 0;
  std::uint64_t steps = 0;
};

class SymbolicExecutor::Impl {
 public:
  Impl(const Program& program, ExploreOptions& options, ExploreStats& stats)
      : p_(program),
        opt_(options),
        stats_(stats),
        env_(options.env != nullptr ? *options.env : default_env()) {
    SB_CHECK(p_.num_threads() == 1);
  }

  // forced: decisions to follow before forking. follow_only: never fork
  // (used by path_for_decisions). stop_step/crash: pin a recorded crash.
  std::vector<SymPath> run(State initial,
                           const std::vector<SymDecision>& forced,
                           bool follow_only, std::uint64_t stop_step,
                           const std::optional<CrashInfo>& recorded_crash) {
    forced_ = &forced;
    follow_only_ = follow_only;
    stop_step_ = stop_step;
    recorded_crash_ = recorded_crash;
    paths_.clear();

    stack_.clear();
    stack_.push_back(std::move(initial));
    while (!stack_.empty()) {
      if (paths_.size() >= opt_.max_paths ||
          stats_.total_steps >= opt_.max_total_steps) {
        stats_.complete = false;
        break;
      }
      State s = std::move(stack_.back());
      stack_.pop_back();
      advance(std::move(s));
    }
    return std::move(paths_);
  }

 private:
  // Runs one state until it terminates or forks (forked children go on the
  // stack).
  void advance(State s) {
    for (;;) {
      if (s.steps >= opt_.max_steps_per_path) {
        stats_.complete = false;
        finish(std::move(s), PathTerminal::kBudget, std::nullopt);
        return;
      }
      s.steps++;
      stats_.total_steps++;
      const Instr& ins = p_.at(s.pc);
      switch (ins.op) {
        case Op::kConst:
          s.regs[ins.a] = make_const(ins.imm);
          s.pc++;
          break;
        case Op::kMov:
          s.regs[ins.a] = s.regs[ins.b];
          s.pc++;
          break;
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kCmpLt:
        case Op::kCmpLe:
        case Op::kCmpEq:
        case Op::kCmpNe: {
          s.regs[ins.a] = make_bin(binop_for(ins.op), s.regs[ins.b],
                                   s.regs[ins.c]);
          s.pc++;
          break;
        }
        case Op::kDiv:
        case Op::kMod: {
          if (!handle_div(s, ins)) return;  // crashed or became infeasible
          break;
        }
        case Op::kBranchIf: {
          if (!handle_branch(s, ins)) return;  // forked or infeasible
          break;
        }
        case Op::kJump:
          s.pc = ins.a;
          break;
        case Op::kInput:
          s.regs[ins.a] = make_input(ins.b);
          s.pc++;
          break;
        case Op::kSyscall: {
          const std::uint16_t sys = static_cast<std::uint16_t>(ins.b);
          const SyscallSpec& spec = env_.spec(sys);
          VarDomain dom{std::min<Value>(spec.fail_prob > 0 ? spec.fail_value
                                                           : spec.lo,
                                        spec.lo),
                        spec.hi};
          // Tighter bound when the argument is concrete and arg-bounded.
          const Expr& arg = s.regs[ins.c];
          if (spec.arg_bounded && is_const(arg) && arg->cval >= 0) {
            dom.hi = std::min(dom.hi, arg->cval);
            dom.lo = std::min(dom.lo, dom.hi);
          }
          s.regs[ins.a] = make_unknown(s.syscall_count);
          s.unknown_domains.push_back(dom);
          s.syscall_count++;
          s.pc++;
          break;
        }
        case Op::kLoadG:
          s.regs[ins.a] = s.globals[ins.b];
          s.pc++;
          break;
        case Op::kStoreG:
          s.globals[ins.a] = s.regs[ins.b];
          s.pc++;
          break;
        case Op::kLock: {
          const std::uint16_t l = static_cast<std::uint16_t>(ins.a);
          if (std::find(s.held_locks.begin(), s.held_locks.end(), l) !=
              s.held_locks.end()) {
            finish(std::move(s), PathTerminal::kDeadlock, std::nullopt);
            return;
          }
          s.held_locks.push_back(l);
          s.pc++;
          break;
        }
        case Op::kUnlock: {
          const std::uint16_t l = static_cast<std::uint16_t>(ins.a);
          auto it = std::find(s.held_locks.begin(), s.held_locks.end(), l);
          if (it == s.held_locks.end()) {
            finish(std::move(s), PathTerminal::kCrash,
                   CrashInfo{CrashKind::kExplicitAbort, s.pc, 1000 + l});
            return;
          }
          s.held_locks.erase(it);
          s.pc++;
          break;
        }
        case Op::kAssert: {
          if (!handle_assert(s, ins)) return;
          break;
        }
        case Op::kAbort:
          finish(std::move(s), PathTerminal::kCrash,
                 CrashInfo{CrashKind::kExplicitAbort, s.pc,
                           static_cast<std::int64_t>(ins.a)});
          return;
        case Op::kOutput:
        case Op::kYield:
          s.pc++;
          break;
        case Op::kHalt:
          finish(std::move(s), PathTerminal::kOk, std::nullopt);
          return;
      }
    }
  }

  static BinOp binop_for(Op op) {
    switch (op) {
      case Op::kAdd: return BinOp::kAdd;
      case Op::kSub: return BinOp::kSub;
      case Op::kMul: return BinOp::kMul;
      case Op::kDiv: return BinOp::kDiv;
      case Op::kMod: return BinOp::kMod;
      case Op::kCmpLt: return BinOp::kLt;
      case Op::kCmpLe: return BinOp::kLe;
      case Op::kCmpEq: return BinOp::kEq;
      default: return BinOp::kNe;
    }
  }

  // One solver query, routed through the recycling cache when configured;
  // classifies the answer's source into the cache counters.
  SolveResult query(const PathConstraint& pc,
                    const std::vector<VarDomain>& unknown_domains) {
    stats_.solver_calls++;
    if (opt_.solver_cache != nullptr) {
      CacheLookup outcome = CacheLookup::kMiss;
      const SolveResult r = opt_.solver_cache->solve(
          pc, opt_.input_domains, unknown_domains, opt_.solver, &outcome);
      switch (outcome) {
        case CacheLookup::kExactHit: stats_.solver_cache_hits++; break;
        case CacheLookup::kUnsatSubsumed: stats_.solver_unsat_subsumed++; break;
        case CacheLookup::kModelReused: stats_.solver_models_reused++; break;
        case CacheLookup::kMiss: break;
      }
      return r;
    }
    return solve_path(pc, opt_.input_domains, unknown_domains, opt_.solver);
  }

  SolveStatus check(const PathConstraint& pc, const State& s,
                    Assignment* model) {
    const SolveResult r = query(pc, s.unknown_domains);
    switch (r.status) {
      case SolveStatus::kSat:
        stats_.solver_sat++;
        if (model != nullptr) *model = r.model;
        break;
      case SolveStatus::kUnsat:
        stats_.solver_unsat++;
        break;
      case SolveStatus::kUnknown:
        stats_.solver_unknown++;
        stats_.complete = false;
        break;
    }
    return r.status;
  }

  // Returns false if the state terminated (caller must stop advancing it).
  bool handle_div(State& s, const Instr& ins) {
    const Expr divisor = s.regs[ins.c];
    const CrashKind kind = CrashKind::kDivByZero;
    const std::int64_t detail = ins.op == Op::kDiv ? 0 : 1;

    if (is_const(divisor)) {
      if (divisor->cval == 0) {
        finish(std::move(s), PathTerminal::kCrash,
               CrashInfo{kind, s.pc, detail});
        return false;
      }
      s.regs[ins.a] =
          make_bin(binop_for(ins.op), s.regs[ins.b], s.regs[ins.c]);
      s.pc++;
      return true;
    }

    // Symbolic divisor: this is a decision site (crash = direction false,
    // survive = direction true), handled exactly like a branch.
    const Expr survive_cond =
        make_bin(BinOp::kNe, divisor, make_const(0));

    // Forced prefix?
    if (s.decisions.size() < forced_->size()) {
      const SymDecision want = (*forced_)[s.decisions.size()];
      if (want.site != ins.site) {
        stats_.complete = false;
        return false;
      }
      s.constraints.push_back({survive_cond, want.taken});
      s.decisions.push_back(want);
      if (!want.taken) {
        finish(std::move(s), PathTerminal::kCrash,
               CrashInfo{kind, s.pc, detail});
        return false;
      }
      s.regs[ins.a] =
          make_bin(binop_for(ins.op), s.regs[ins.b], s.regs[ins.c]);
      s.pc++;
      return true;
    }
    if (follow_only_) {
      stats_.complete = false;
      return false;
    }

    if (opt_.check_crashes) {
      // Fork the crash side: divisor == 0.
      PathConstraint crash_pc = s.constraints;
      crash_pc.push_back({survive_cond, false});
      Assignment crash_model;
      if (check(crash_pc, s, &crash_model) == SolveStatus::kSat) {
        State crashed = s;
        crashed.constraints = std::move(crash_pc);
        crashed.model = std::move(crash_model);
        crashed.decisions.push_back({ins.site, false});
        finish(std::move(crashed), PathTerminal::kCrash,
               CrashInfo{kind, s.pc, detail});
      }
    }
    // Continue with divisor != 0.
    s.constraints.push_back({survive_cond, true});
    s.decisions.push_back({ins.site, true});
    Assignment model;
    const SolveStatus st = check(s.constraints, s, &model);
    if (st == SolveStatus::kUnsat) {
      stats_.infeasible_pruned++;
      return false;  // every compliant run crashes here
    }
    if (st == SolveStatus::kSat) s.model = std::move(model);
    s.regs[ins.a] =
        make_bin(binop_for(ins.op), s.regs[ins.b], s.regs[ins.c]);
    s.pc++;
    return true;
  }

  bool handle_assert(State& s, const Instr& ins) {
    const Expr cond = s.regs[ins.a];
    const CrashKind kind = CrashKind::kAssertFailure;
    const std::int64_t detail = static_cast<std::int64_t>(ins.b);

    if (is_const(cond)) {
      if (cond->cval == 0) {
        finish(std::move(s), PathTerminal::kCrash,
               CrashInfo{kind, s.pc, detail});
        return false;
      }
      s.pc++;
      return true;
    }

    // Forced prefix?
    if (s.decisions.size() < forced_->size()) {
      const SymDecision want = (*forced_)[s.decisions.size()];
      if (want.site != ins.site) {
        stats_.complete = false;
        return false;
      }
      s.constraints.push_back({cond, want.taken});
      s.decisions.push_back(want);
      if (!want.taken) {
        finish(std::move(s), PathTerminal::kCrash,
               CrashInfo{kind, s.pc, detail});
        return false;
      }
      s.pc++;
      return true;
    }
    if (follow_only_) {
      stats_.complete = false;
      return false;
    }

    if (opt_.check_crashes) {
      PathConstraint crash_pc = s.constraints;
      crash_pc.push_back({cond, false});
      Assignment crash_model;
      if (check(crash_pc, s, &crash_model) == SolveStatus::kSat) {
        State crashed = s;
        crashed.constraints = std::move(crash_pc);
        crashed.model = std::move(crash_model);
        crashed.decisions.push_back({ins.site, false});
        finish(std::move(crashed), PathTerminal::kCrash,
               CrashInfo{kind, s.pc, detail});
      }
    }
    s.constraints.push_back({cond, true});
    s.decisions.push_back({ins.site, true});
    Assignment model;
    const SolveStatus st = check(s.constraints, s, &model);
    if (st == SolveStatus::kUnsat) {
      stats_.infeasible_pruned++;
      return false;
    }
    if (st == SolveStatus::kSat) s.model = std::move(model);
    s.pc++;
    return true;
  }

  bool handle_branch(State& s, const Instr& ins) {
    const Expr cond = s.regs[ins.a];
    if (is_const(cond)) {
      // Deterministic branch: reconstructed, not a decision (matches the
      // interpreter's taint rule).
      s.pc = cond->cval != 0 ? ins.b : ins.c;
      return true;
    }

    // Forced prefix?
    if (s.decisions.size() < forced_->size()) {
      const SymDecision want = (*forced_)[s.decisions.size()];
      if (want.site != ins.site) {
        // Prefix does not match this program point: inconsistent input.
        stats_.complete = false;
        return false;
      }
      s.constraints.push_back({cond, want.taken});
      s.decisions.push_back(want);
      s.pc = want.taken ? ins.b : ins.c;
      return true;
    }
    if (follow_only_) {
      // Decisions exhausted in follow mode: the remaining branch must not
      // exist on the recorded path.
      stats_.complete = false;
      return false;
    }

    // Fork both directions, feasibility-checked.
    for (const bool dir : {false, true}) {
      PathConstraint child_pc = s.constraints;
      child_pc.push_back({cond, dir});
      Assignment model;
      const SolveStatus st = check(child_pc, s, &model);
      if (st == SolveStatus::kUnsat) {
        stats_.infeasible_pruned++;
        continue;
      }
      State child = s;
      child.constraints = std::move(child_pc);
      if (st == SolveStatus::kSat) child.model = std::move(model);
      child.decisions.push_back({ins.site, dir});
      child.pc = dir ? ins.b : ins.c;
      stack_.push_back(std::move(child));
    }
    return false;  // children continue on the stack
  }

  void finish(State s, PathTerminal terminal,
              std::optional<CrashInfo> crash) {
    SymPath path;
    path.decisions = std::move(s.decisions);
    path.constraints = std::move(s.constraints);
    path.terminal = terminal;
    path.crash = crash;
    path.unknown_domains = std::move(s.unknown_domains);
    path.steps = s.steps;
    path.model = std::move(s.model);
    // Ensure the model is a real witness (it can be stale when the last
    // literals were added without a solver call).
    if (satisfies(path.constraints, path.model)) {
      path.model_verified = true;
    } else {
      const SolveResult r = query(path.constraints, path.unknown_domains);
      if (r.status == SolveStatus::kSat) {
        path.model = r.model;
        path.model_verified = true;
      } else if (r.status == SolveStatus::kUnknown) {
        stats_.solver_unknown++;
        stats_.complete = false;
      } else {
        // Infeasible terminal (possible only in forced/follow modes with a
        // bad prefix): drop it.
        stats_.infeasible_pruned++;
        return;
      }
    }
    if (terminal == PathTerminal::kCrash) stats_.crash_paths++;
    stats_.paths_completed++;
    paths_.push_back(std::move(path));
  }

  const Program& p_;
  ExploreOptions& opt_;
  ExploreStats& stats_;
  const EnvModel& env_;

  const std::vector<SymDecision>* forced_ = nullptr;
  bool follow_only_ = false;
  std::uint64_t stop_step_ = kNoForcedStop;
  std::optional<CrashInfo> recorded_crash_;

  std::vector<State> stack_;
  std::vector<SymPath> paths_;
};

SymbolicExecutor::SymbolicExecutor(const Program& program,
                                   ExploreOptions options)
    : program_(program), options_(std::move(options)) {}

std::vector<SymPath> SymbolicExecutor::explore() {
  State init;
  init.pc = program_.thread_entries[0];
  init.regs.assign(program_.num_regs, make_const(0));
  init.globals.assign(program_.num_globals, make_const(0));
  init.model.inputs.reserve(options_.input_domains.size());
  for (const auto& d : options_.input_domains) init.model.inputs.push_back(d.lo);
  Impl impl(program_, options_, stats_);
  return impl.run(std::move(init), {}, false, 0, std::nullopt);
}

std::vector<SymPath> SymbolicExecutor::explore_unit(
    std::uint32_t entry_pc,
    const std::vector<std::pair<Reg, VarDomain>>& params) {
  State init;
  init.pc = entry_pc;
  init.regs.assign(program_.num_regs, make_const(0));
  init.globals.assign(program_.num_globals, make_const(0));
  // Unit parameters become fresh symbolic inputs; their domains extend (or
  // override) the configured input domains.
  std::uint32_t next_slot =
      static_cast<std::uint32_t>(options_.input_domains.size());
  for (const auto& [reg, domain] : params) {
    init.regs[reg] = make_input(next_slot);
    options_.input_domains.push_back(domain);
    next_slot++;
  }
  init.model.inputs.reserve(options_.input_domains.size());
  for (const auto& d : options_.input_domains) init.model.inputs.push_back(d.lo);
  Impl impl(program_, options_, stats_);
  return impl.run(std::move(init), {}, false, 0, std::nullopt);
}

std::vector<SymPath> SymbolicExecutor::explore_subtree(
    const std::vector<SymDecision>& prefix) {
  State init;
  init.pc = program_.thread_entries[0];
  init.regs.assign(program_.num_regs, make_const(0));
  init.globals.assign(program_.num_globals, make_const(0));
  init.model.inputs.reserve(options_.input_domains.size());
  for (const auto& d : options_.input_domains) init.model.inputs.push_back(d.lo);
  Impl impl(program_, options_, stats_);
  return impl.run(std::move(init), prefix, false, 0, std::nullopt);
}

std::optional<SymPath> SymbolicExecutor::path_for_decisions(
    const std::vector<SymDecision>& decisions, std::uint64_t total_steps,
    const std::optional<CrashInfo>& crash) {
  State init;
  init.pc = program_.thread_entries[0];
  init.regs.assign(program_.num_regs, make_const(0));
  init.globals.assign(program_.num_globals, make_const(0));
  init.model.inputs.reserve(options_.input_domains.size());
  for (const auto& d : options_.input_domains) init.model.inputs.push_back(d.lo);
  Impl impl(program_, options_, stats_);
  auto paths =
      impl.run(std::move(init), decisions, true, total_steps, crash);
  if (paths.empty()) return std::nullopt;
  return std::move(paths.front());
}

std::vector<VarDomain> domains_of(const CorpusEntry& entry) {
  std::vector<VarDomain> ds;
  ds.reserve(entry.domains.size());
  for (const auto& d : entry.domains) ds.push_back({d.lo, d.hi});
  return ds;
}

}  // namespace softborg
