// Fixed-size thread pool with future-returning submission.
//
// Used by the portfolio solver (run several solvers on one instance and take
// the first answer) and by benches that need real parallelism. RAII: the
// destructor drains and joins (CP.25 — never detach).
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace softborg {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Schedules `fn` and returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace softborg
