// Second symbolic suite: algebraic identities, DAG-safe evaluation
// performance, model verification flags, and the taint<->symbolic
// correspondence that the identities must preserve.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "minivm/builder.h"
#include "minivm/interp.h"
#include "sym/csolver.h"
#include "sym/executor.h"
#include "sym/expr.h"

namespace softborg {
namespace {

// ----------------------------------------------------------- identities ----

TEST(ExprIdentities, AddZeroReturnsOperand) {
  const Expr x = make_input(0);
  EXPECT_EQ(make_bin(BinOp::kAdd, x, make_const(0)).get(), x.get());
  EXPECT_EQ(make_bin(BinOp::kAdd, make_const(0), x).get(), x.get());
}

TEST(ExprIdentities, SubZeroAndMulDivOne) {
  const Expr x = make_input(0);
  EXPECT_EQ(make_bin(BinOp::kSub, x, make_const(0)).get(), x.get());
  EXPECT_EQ(make_bin(BinOp::kMul, x, make_const(1)).get(), x.get());
  EXPECT_EQ(make_bin(BinOp::kMul, make_const(1), x).get(), x.get());
  EXPECT_EQ(make_bin(BinOp::kDiv, x, make_const(1)).get(), x.get());
}

TEST(ExprIdentities, TaintedExpressionsNeverFoldToConstants) {
  // x - x, x * 0, x == x MUST stay symbolic: the interpreter taints these
  // results and records trace bits for them; folding would desynchronize
  // the executor from the trace (the media_parser crash relies on this —
  // its planted bug divides by size - size).
  const Expr x = make_input(0);
  EXPECT_FALSE(is_const(make_bin(BinOp::kSub, x, x)));
  EXPECT_FALSE(is_const(make_bin(BinOp::kMul, x, make_const(0))));
  EXPECT_FALSE(is_const(make_bin(BinOp::kEq, x, x)));
  EXPECT_FALSE(is_const(make_bin(BinOp::kNe, x, x)));
  EXPECT_FALSE(is_const(make_bin(BinOp::kLt, x, x)));
}

TEST(ExprIdentities, IdentitiesPreserveEvaluation) {
  Rng rng(3);
  const Expr x = make_input(0);
  for (int i = 0; i < 100; ++i) {
    const Value v = rng.next_in(-1000, 1000);
    EXPECT_EQ(eval_expr(make_bin(BinOp::kAdd, x, make_const(0)), {v}, {}), v);
    EXPECT_EQ(eval_expr(make_bin(BinOp::kSub, x, x), {v}, {}), 0);
    EXPECT_EQ(eval_expr(make_bin(BinOp::kMul, x, make_const(0)), {v}, {}), 0);
  }
}

// ------------------------------------------------------ DAG performance ----

TEST(ExprDag, DeepReuseChainsEvaluateInLinearTime) {
  // r = x; repeat: r = r + r. Without memoization this is a 2^64-leaf tree.
  Expr r = make_input(0);
  for (int i = 0; i < 64; ++i) r = make_bin(BinOp::kAdd, r, r);
  Timer timer;
  const Value v = eval_expr(r, {1}, {});
  EXPECT_LT(timer.elapsed_ms(), 100.0);
  // 2^64 additions of 1 wraps to 0 under two's-complement.
  EXPECT_EQ(v, 0);
}

TEST(ExprDag, SolverHandlesDeepChains) {
  Expr r = make_input(0);
  for (int i = 0; i < 40; ++i) r = make_bin(BinOp::kMul, r, r);
  // x^(2^40) == 0 iff x == 0 over [0, 3] (0 stays 0; 1 stays 1; 2,3
  // wrap around but the solver just needs to terminate quickly).
  PathConstraint pc;
  pc.push_back({make_bin(BinOp::kEq, r, make_const(0)), true});
  SolverOptions so;
  so.max_nodes = 10'000;
  Timer timer;
  const auto result = solve_path(pc, {{0, 3}}, {}, so);
  EXPECT_LT(timer.elapsed_ms(), 2000.0);
  // x=0 satisfies; result must be SAT (or at worst unknown under budget,
  // but never a hang).
  if (result.status == SolveStatus::kSat) {
    EXPECT_EQ(result.model.inputs[0] , 0);
  }
}

TEST(ExprDag, MaxIndicesLinearOnDags) {
  Expr r = make_bin(BinOp::kAdd, make_input(7), make_unknown(3));
  for (int i = 0; i < 60; ++i) r = make_bin(BinOp::kAdd, r, r);
  Timer timer;
  int mi = -1, mu = -1;
  max_indices(r, &mi, &mu);
  EXPECT_LT(timer.elapsed_ms(), 100.0);
  EXPECT_EQ(mi, 7);
  EXPECT_EQ(mu, 3);
}

// -------------------------------------------- taint/symbolic agreement -----

TEST(TaintSymbolicCorrespondence, SubSelfKeepsRecordingParity) {
  // The media_parser pattern in miniature: divide by (x - x). The
  // interpreter records a (crash) check bit because x-x is tainted; the
  // symbolic executor must treat the same divisor as symbolic and emit the
  // same decision.
  ProgramBuilder b("subself");
  const Reg x = b.reg(), z = b.reg(), d = b.reg(), c = b.reg();
  b.input(x, b.input_slot());
  b.sub(z, x, x);  // always 0, but tainted
  b.const_(c, 10);
  b.div(d, c, z);  // always crashes
  b.output(d);
  b.halt();
  const Program p = b.build();

  ExecConfig cfg;
  cfg.inputs = {5};
  const auto live = execute(p, cfg);
  EXPECT_EQ(live.trace.outcome, Outcome::kCrash);
  ASSERT_EQ(live.trace.branch_bits.size(), 1u);  // one crash-check decision

  ExploreOptions opt;
  opt.input_domains = {{0, 63}};
  SymbolicExecutor ex(p, opt);
  const auto paths = ex.explore();
  ASSERT_EQ(paths.size(), 1u);  // survive side is infeasible
  EXPECT_EQ(paths[0].terminal, PathTerminal::kCrash);
  ASSERT_EQ(paths[0].decisions.size(), 1u);
  EXPECT_FALSE(paths[0].decisions[0].taken);
}

TEST(TaintSymbolicCorrespondence, ModelVerifiedFlagSetWhenSolved) {
  ProgramBuilder b("mv");
  const Reg x = b.reg(), t = b.reg();
  b.input(x, b.input_slot());
  b.cmp_lt_const(t, x, 10);
  auto yes = b.label(), no = b.label();
  b.branch_if(t, yes, no);
  b.bind(yes);
  b.bind(no);
  b.halt();
  const Program p = b.build();  // the executor keeps a reference
  ExploreOptions opt;
  opt.input_domains = {{0, 63}};
  SymbolicExecutor ex(p, opt);
  const auto paths = ex.explore();
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    EXPECT_TRUE(p.model_verified);
    // And the model indeed satisfies the constraints.
    EXPECT_TRUE(satisfies(p.constraints, p.model));
  }
}

}  // namespace
}  // namespace softborg
