// E4 — Deadlock immunity (paper §3.3, after Jula et al. [16]).
//
// Claims under test: SoftBorg can "synthesize instrumentation that
// 'protects' P from thread schedules that trigger that deadlock bug, thus
// avoiding future occurrences", and fixes "never modify P's semantics".
//
// Setup: bank_transfer (input-dependent AB-BA deadlock). We measure:
//   1. deadlock frequency without the fix, as a function of the amount
//      input (the cycle only arms for amount > 100), over 2000 seeds;
//   2. recurrence with the diagnosed-cycle avoidance fix installed (same
//      2000 schedules): must be zero;
//   3. semantic preservation: final balance identical with/without the fix
//      on every non-deadlocking run;
//   4. overhead: extra interpreter steps (yield-retries) with the fix, on
//      armed and unarmed inputs;
//   5. fleet recurrence: deadlocks per day in a World deployment before
//      and after the fix propagates.
#include <cstdio>

#include "bench_json.h"
#include "core/softborg.h"

using namespace softborg;

int main(int argc, char** argv) {
  BenchJsonWriter json("e4_deadlock_immunity", argc, argv);
  const auto entry = make_bank_transfer();
  const int kSeeds = 2000;

  // Diagnose the cycle through the real pipeline to get the real fix.
  std::vector<CorpusEntry> corpus;
  corpus.push_back(make_bank_transfer());
  Hive hive(&corpus);
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {150};
    cfg.seed = seed;
    auto result = execute(entry.program, cfg);
    result.trace.id = TraceId(seed);
    if (result.trace.outcome == Outcome::kDeadlock) hive.ingest(result.trace);
  }
  const auto fixes = hive.process();
  if (fixes.empty() ||
      !std::holds_alternative<LockAvoidanceFix>(fixes[0].fix)) {
    std::printf("FAILED: no lock-avoidance fix synthesized\n");
    return 1;
  }
  FixSet installed;
  installed.lock_fixes.push_back(std::get<LockAvoidanceFix>(fixes[0].fix));

  std::printf("# E4: deadlock immunity on %s (cycle {0,1}, armed when "
              "amount>100)\n",
              entry.program.name.c_str());
  std::printf("%-8s %-14s %-14s %-12s %-12s %-10s\n", "amount",
              "deadlock%_bare", "deadlock%_fix", "steps_bare", "steps_fix",
              "overhead%");

  for (Value amount : {0, 50, 100, 101, 150, 200}) {
    int bare_deadlocks = 0, fixed_deadlocks = 0;
    std::uint64_t bare_steps = 0, fixed_steps = 0;
    int semantic_mismatches = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      ExecConfig cfg;
      cfg.inputs = {amount};
      cfg.seed = seed;
      cfg.granularity = Granularity::kNone;  // measure pure runtime
      const auto bare = execute(entry.program, cfg);
      cfg.fixes = &installed;
      const auto fixed = execute(entry.program, cfg);

      if (bare.trace.outcome == Outcome::kDeadlock) bare_deadlocks++;
      if (fixed.trace.outcome == Outcome::kDeadlock) fixed_deadlocks++;
      bare_steps += bare.trace.steps;
      fixed_steps += fixed.trace.steps;
      if (bare.trace.outcome == Outcome::kOk &&
          fixed.trace.outcome == Outcome::kOk &&
          bare.outputs != fixed.outputs) {
        semantic_mismatches++;
      }
    }
    std::printf("%-8lld %-14.1f %-14.1f %-12llu %-12llu %-10.1f",
                static_cast<long long>(amount),
                100.0 * bare_deadlocks / kSeeds,
                100.0 * fixed_deadlocks / kSeeds,
                static_cast<unsigned long long>(bare_steps / kSeeds),
                static_cast<unsigned long long>(fixed_steps / kSeeds),
                100.0 * (static_cast<double>(fixed_steps) /
                             static_cast<double>(bare_steps) -
                         1.0));
    if (semantic_mismatches > 0) {
      std::printf("  SEMANTIC MISMATCHES: %d", semantic_mismatches);
    }
    std::printf("\n");
  }

  // Fleet recurrence.
  std::printf("\nfleet deployment (40 pods, 14 days):\n");
  WorldConfig config;
  config.pods_per_program = 40;
  config.days = 14;
  config.seed = 3;
  World world({make_bank_transfer()}, config);
  world.run();
  std::printf("%-5s %-9s %-9s %-7s\n", "day", "failures", "averted", "fixed");
  for (const auto& d : world.history()) {
    std::printf("%-5llu %-9llu %-9llu %-7zu\n",
                static_cast<unsigned long long>(d.day),
                static_cast<unsigned long long>(d.failures),
                static_cast<unsigned long long>(d.fix_interventions),
                d.bugs_fixed_total);
  }
  std::uint64_t recurrences = 0;
  bool fixed_yet = false;
  for (const auto& d : world.history()) {
    if (fixed_yet) recurrences += d.failures;
    if (d.bugs_fixed_total > 0) fixed_yet = true;
  }
  std::printf("\nrecurrences after the fix day: %llu %s\n",
              static_cast<unsigned long long>(recurrences),
              recurrences == 0 ? "(immunity REPRODUCED)" : "");
  json.add("bank_transfer_fleet", "recurrences_after_fix",
           static_cast<double>(recurrences));

  // Generalization: a length-n cycle (dining philosophers). The same
  // pipeline — lock-event diagnosis, immunity fix, validation — must
  // handle cycles longer than the classic AB-BA pair.
  std::printf("\ndining philosophers (length-n cycles):\n");
  std::printf("%-4s %-14s %-14s %-12s\n", "n", "deadlock%_bare",
              "deadlock%_fix", "fix_score");
  for (unsigned n : {2u, 3u, 4u, 5u}) {
    const auto dp = make_dining_philosophers(n);
    std::vector<CorpusEntry> dp_corpus;
    dp_corpus.push_back(make_dining_philosophers(n));
    Hive dp_hive(&dp_corpus);
    int bare = 0;
    for (std::uint64_t seed = 1; seed <= 500; ++seed) {
      ExecConfig cfg;
      cfg.seed = seed;
      auto result = execute(dp.program, cfg);
      if (result.trace.outcome == Outcome::kDeadlock) {
        bare++;
        result.trace.id = TraceId(seed);
        dp_hive.ingest(result.trace);
      }
    }
    const auto dp_fixes = dp_hive.process();
    double score = 0.0;
    int with_fix = 0;
    if (!dp_fixes.empty()) {
      score = dp_fixes[0].score();
      FixSet installed;
      installed.lock_fixes.push_back(
          std::get<LockAvoidanceFix>(dp_fixes[0].fix));
      for (std::uint64_t seed = 1; seed <= 500; ++seed) {
        ExecConfig cfg;
        cfg.seed = seed;
        cfg.fixes = &installed;
        if (execute(dp.program, cfg).trace.outcome == Outcome::kDeadlock) {
          with_fix++;
        }
      }
    }
    std::printf("%-4u %-14.1f %-14.1f %-12.2f\n", n, 100.0 * bare / 500,
                100.0 * with_fix / 500, score);
    json.add("dining_philosophers_" + std::to_string(n), "deadlock_pct_fixed",
             100.0 * with_fix / 500, 100.0 * bare / 500);
  }
  return json.write() ? 0 : 1;
}
