// Bug identification from aggregated by-products (paper §3.3 "identifies
// misbehaviors in P").
//
// Crashes are bucketed WER-style [11] by (program, crash kind, pc, detail).
// Deadlocks are diagnosed from lock-event traces: per-thread held-sets give
// lock-order edges, cycles in the lock-order graph give the deadlock
// pattern (the artifact the deadlock-immunity fix needs). Schedule-dependent
// assertion failures are recognized as a distinct class that cannot be
// auto-fixed (they go to the repair lab instead).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/state_wire.h"
#include "trace/trace.h"

namespace softborg {

enum class BugKind : std::uint8_t {
  kCrash = 0,          // deterministic crash (input/env dependent)
  kDeadlock = 1,       // lock-order cycle
  kScheduleAssert = 2, // assertion failing only under some interleavings
  kHang = 3,
};

const char* bug_kind_name(BugKind k);

struct Bug {
  BugId id;
  ProgramId program;
  BugKind kind = BugKind::kCrash;
  // kCrash / kScheduleAssert signature:
  std::optional<CrashInfo> crash;
  // kDeadlock signature: the lock-order cycle, sorted.
  std::vector<std::uint16_t> cycle_locks;

  std::uint64_t occurrences = 0;
  std::uint64_t first_day = 0;
  std::uint64_t last_day = 0;
  Trace exemplar;  // one representative trace (earliest seen)

  bool fixed = false;
  FixId fix;
  std::uint64_t fixed_day = 0;  // virtual day the fix was approved

  std::string describe() const;

  bool operator==(const Bug&) const = default;
};

// Lock-order graph built from traces' lock events.
class LockOrderAnalyzer {
 public:
  // Adds the (held -> requested) edges implied by one trace.
  void add_trace(const Trace& t);

  // Distinct simple cycles (as canonically-rotated lock lists). Complete
  // for the small lock counts MiniVM programs use.
  std::vector<std::vector<std::uint16_t>> cycles() const;

  std::size_t num_edges() const;

  // Durable-store serialization; the edge multimap round-trips exactly
  // (duplicate targets included — they are what add_trace accumulates).
  void save_state(Bytes& out) const;
  bool load_state(StateReader& r);

  bool operator==(const LockOrderAnalyzer& o) const {
    return edges_ == o.edges_;
  }

 private:
  std::map<std::uint16_t, std::vector<std::uint16_t>> edges_;
};

// The scalar fields of a failing trace that bug signatures are built from.
// Lets the batch pipeline record sightings straight off a wire summary,
// deferring full trace decoding to the first occurrence (the exemplar).
// Deadlocks are excluded: their signature needs the trace's lock events.
struct BugSighting {
  ProgramId program{0};
  Outcome outcome = Outcome::kOk;
  std::optional<CrashInfo> crash;
  std::uint64_t day = 0;
};

// The hive's bug database.
class BugTracker {
 public:
  // Records a failing trace; returns the (new or existing) bug, or nullptr
  // for outcomes that are not failures. `is_schedule_dependent` marks
  // assertion failures already seen to pass under other schedules.
  Bug* record(const Trace& t);

  // Same bucketing from scalar fields only (non-deadlock outcomes). When
  // this creates the bug (occurrences == 1), its exemplar is left default —
  // the caller owns decoding the trace and filling it in.
  Bug* record(const BugSighting& s);

  std::vector<Bug*> open_bugs();
  const std::vector<Bug>& all() const { return bugs_; }
  Bug* find(BugId id);
  void mark_fixed(BugId id, FixId fix);

  // Reclassifies a crash bug as schedule-dependent (set once the hive sees
  // the same program state pass under other schedules).
  void mark_schedule_dependent(BugId id);

  std::size_t count(BugKind kind) const;

  // Durable-store serialization. Bugs round-trip in database order (ids,
  // signatures, exemplars, fix state); the signature index is rebuilt from
  // sorted keys so the bytes never depend on hash-map iteration order.
  // load_state validates every index entry, id, enum tag, and exemplar wire
  // record; false means corrupt — discard the tracker.
  void save_state(Bytes& out) const;
  bool load_state(StateReader& r);

  bool operator==(const BugTracker& o) const {
    return bugs_ == o.bugs_ && next_id_ == o.next_id_;
  }

 private:
  std::uint64_t key_of(const Trace& t) const;

  std::vector<Bug> bugs_;
  // Signature hash -> index into bugs_. Hashed, not ordered: only ever
  // probed point-wise (every failing trace hits it), never iterated.
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::uint64_t next_id_ = 1;
};

}  // namespace softborg
