// CNF formulas and instance generators for the solver portfolio (paper §4).
//
// Literal encoding is DIMACS-style: variable v in 1..num_vars, literal +v /
// -v. The portfolio experiment (E2) runs on random 3-SAT near the phase
// transition plus structured families, where different solver heuristics
// have genuinely complementary runtimes — the property behind the paper's
// "10x speedup for 3x resources" observation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace softborg {

using Lit = std::int32_t;
using Clause = std::vector<Lit>;

struct Cnf {
  int num_vars = 0;
  std::vector<Clause> clauses;

  bool well_formed() const;
};

// True iff `model` (size num_vars, model[v-1] = value of v) satisfies `cnf`.
bool cnf_satisfied(const Cnf& cnf, const std::vector<bool>& model);

// Uniform random k-SAT. clause_ratio ~4.26 for 3-SAT sits at the hard
// phase-transition region.
Cnf random_ksat(int num_vars, int num_clauses, int k, std::uint64_t seed);

// Pigeonhole principle PHP(n+1, n): n+1 pigeons, n holes — small but
// uniformly hard UNSAT instances.
Cnf pigeonhole(int holes);

// A long implication chain with a unique solution; trivial under unit
// propagation, miserable for pure local search.
Cnf chain(int length);

}  // namespace softborg
