# Empty compiler generated dependencies file for deadlock_immunity.
# This may be replaced when dependencies are built.
