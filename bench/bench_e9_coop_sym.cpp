// E9 — Cooperative symbolic execution at fleet scale (paper §4).
//
// Claims under test: dynamic partitioning is needed because "finding an
// appropriate [static] partition is undecidable"; portfolio-theoretic
// allocation balances the risk/reward of unknown subtrees; the hive's
// nodes are end-user machines on an unreliable network.
//
// Setup: skewed_workload(11) — 2048 paths with a 24x cost skew between the
// two top-level subtrees. Sweeps:
//   1. scaling: workers x strategies on a reliable network;
//   2. adversity: 2% message loss + worker churn;
//   3. ablation: work-unit granularity (split depth) under skew.
// Reported per cell: wall ticks, speedup vs 1 worker, efficiency,
// wasted/redone work, messages. Results are averaged over 5 seeds.
//
// Expected shape: static plateaus well below linear under skew (stragglers)
// and degrades badly under churn; dynamic and portfolio stay near each
// other and well ahead, with portfolio wasting the least work.
#include <cstdio>

#include "bench_json.h"
#include "core/softborg.h"

using namespace softborg;

namespace {

struct Cell {
  double ticks = 0;
  double wasted = 0;
  double messages = 0;
  double idle = 0;
  bool complete = true;
};

Cell average(const CorpusEntry& entry, CoopConfig config, int seeds) {
  Cell cell;
  for (int s = 1; s <= seeds; ++s) {
    config.seed = static_cast<std::uint64_t>(s) * 7919;
    config.net.seed = config.seed ^ 0xbeef;
    const auto r = run_cooperative_exploration(entry, config);
    cell.ticks += static_cast<double>(r.ticks);
    cell.wasted += static_cast<double>(r.wasted_steps);
    cell.messages += static_cast<double>(r.messages);
    cell.idle += static_cast<double>(r.idle_ticks);
    cell.complete = cell.complete && r.complete;
  }
  cell.ticks /= seeds;
  cell.wasted /= seeds;
  cell.messages /= seeds;
  cell.idle /= seeds;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json("e9_coop_sym", argc, argv);
  const auto entry = make_skewed_workload(11);
  const int kSeeds = 5;

  CoopConfig base;
  base.steps_per_tick = 300;
  base.split_depth = 6;

  std::printf("# E9: cooperative exploration of %s (%s)\n",
              entry.program.name.c_str(), entry.description.c_str());

  for (int scenario = 0; scenario < 2; ++scenario) {
    CoopConfig scenario_cfg = base;
    if (scenario == 1) {
      scenario_cfg.net.drop_prob = 0.02;
      scenario_cfg.churn_prob = 0.004;
    }
    std::printf("\n## %s\n", scenario == 0
                                 ? "reliable network, stable workers"
                                 : "2% loss + worker churn");
    std::printf("%-10s %-8s %-10s %-9s %-11s %-9s %-9s\n", "strategy",
                "workers", "ticks", "speedup", "efficiency", "wasted",
                "msgs");
    for (auto strategy : {PartitionStrategy::kStatic,
                          PartitionStrategy::kDynamic,
                          PartitionStrategy::kPortfolio}) {
      double solo = 0;
      for (std::size_t workers : {1u, 2u, 4u, 8u, 16u}) {
        CoopConfig cfg = scenario_cfg;
        cfg.strategy = strategy;
        cfg.num_workers = workers;
        const auto cell = average(entry, cfg, kSeeds);
        if (workers == 1) solo = cell.ticks;
        const double speedup = solo / cell.ticks;
        std::printf("%-10s %-8zu %-10.0f %-9.2f %-11.2f %-9.0f %-9.0f%s\n",
                    strategy_name(strategy), workers, cell.ticks, speedup,
                    speedup / static_cast<double>(workers), cell.wasted,
                    cell.messages, cell.complete ? "" : "  INCOMPLETE");
        if (scenario == 0 && workers == 8) {
          json.add(std::string("reliable/") + strategy_name(strategy),
                   "speedup_8_workers", speedup);
        }
      }
    }
  }

  // Ablation: unit granularity under skew (8 workers, dynamic).
  std::printf("\n## ablation: work-unit granularity (dynamic, 8 workers)\n");
  std::printf("%-12s %-10s %-9s\n", "split_depth", "ticks", "msgs");
  for (std::size_t depth : {1u, 2u, 4u, 6u, 8u}) {
    CoopConfig cfg = base;
    cfg.strategy = PartitionStrategy::kDynamic;
    cfg.num_workers = 8;
    cfg.split_depth = depth;
    const auto cell = average(entry, cfg, kSeeds);
    std::printf("%-12zu %-10.0f %-9.0f\n", depth, cell.ticks, cell.messages);
  }
  std::printf("\n(too-coarse units straggle on the heavy subtree; finer "
              "units trade messages for balance — the undecidability of a "
              "good static split, made visible)\n");
  return json.write() ? 0 : 1;
}
