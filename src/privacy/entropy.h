// Information-content accounting for execution traces (paper §3.1: "we are
// investigating ways to quantify this information content").
//
// Two lenses:
//  * per-trace content: how many bits of control-flow detail one trace
//    reveals (raw bit count; after suppression, fewer);
//  * population re-identification risk: over a corpus of traces, the
//    entropy of the path distribution and the fraction of pods whose path
//    is unique (a unique path = a perfect quasi-identifier).
#pragma once

#include <cstddef>
#include <vector>

#include "trace/trace.h"

namespace softborg {

struct PopulationPrivacy {
  std::size_t traces = 0;
  std::size_t distinct_paths = 0;
  double path_entropy_bits = 0.0;   // H over the empirical path distribution
  double unique_fraction = 0.0;     // traces whose path appears exactly once
  double mean_bits_per_trace = 0.0; // released control-flow bits
};

PopulationPrivacy measure_population(const std::vector<Trace>& traces);

}  // namespace softborg
