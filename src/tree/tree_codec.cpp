#include "tree/tree_codec.h"

namespace softborg {

namespace {
constexpr std::uint64_t kTreeMagic = 0x53425452'45ULL;  // "SBTRE"
constexpr std::uint64_t kMaxNodes = 1u << 26;
constexpr std::uint64_t kMaxPerNode = 1u << 20;
}  // namespace

// The codec builds and walks the arena directly (it is the only code
// besides ExecTree itself that sees the SoA layout).
struct TreeCodecAccess {
  using Edge = ExecTree::Edge;

  // -------------------------------------------------------------- encode --
  // Per-node trailer shared by both wire versions: infeasibility marks,
  // outcome counters, crash record — emitted in chain (= insertion) order.
  static void encode_trailer(const ExecTree& t, std::uint32_t node, Bytes& out,
                             ExecTree::WireVersion version) {
    const bool packed = version == ExecTree::WireVersion::kV2;
    std::uint64_t n_marks = 0;
    for (std::uint32_t link = t.infeasible_head_[node];
         link != ExecTree::kNoNode; link = t.marks_[link].next) {
      n_marks++;
    }
    put_varint(out, n_marks);
    for (std::uint32_t link = t.infeasible_head_[node];
         link != ExecTree::kNoNode; link = t.marks_[link].next) {
      if (packed) {
        put_varint(out, (static_cast<std::uint64_t>(t.marks_[link].site) << 1) |
                            (t.marks_[link].dir ? 1 : 0));
      } else {
        put_varint(out, t.marks_[link].site);
        put_varint(out, t.marks_[link].dir ? 1 : 0);
      }
    }
    std::uint64_t n_outcomes = 0;
    for (std::uint32_t link = t.outcome_head_[node]; link != ExecTree::kNoNode;
         link = t.outcomes_[link].next) {
      n_outcomes++;
    }
    put_varint(out, n_outcomes);
    for (std::uint32_t link = t.outcome_head_[node]; link != ExecTree::kNoNode;
         link = t.outcomes_[link].next) {
      put_varint(out, static_cast<std::uint64_t>(t.outcomes_[link].outcome));
      put_varint(out, t.outcomes_[link].count);
    }
    const bool has_crash = t.crash_[node] != ExecTree::kNoNode;
    put_varint(out, has_crash ? 1 : 0);
    if (has_crash) {
      const CrashInfo& crash = t.crash_pool_[t.crash_[node]];
      put_varint(out, static_cast<std::uint64_t>(crash.kind));
      put_varint(out, crash.pc);
      put_varint_signed(out, crash.detail);
    }
  }

  // v1: the legacy node-of-vectors layout — per node, the explicit edge list
  // in insertion order. Byte-identical to the original encoder for any tree
  // built through the public API (edge insertion order is preserved by the
  // arena), which is what the differential pump tests compare.
  static Bytes encode_v1(const ExecTree& t) {
    Bytes out;
    put_varint(out, kTreeMagic);
    put_varint(out, 1);
    put_varint(out, t.program_.value);
    put_varint(out, t.num_leaves_);
    const std::size_t count = t.visits_.size();
    put_varint(out, count);
    for (std::uint32_t i = 0; i < count; ++i) {
      put_varint(out, t.visits_[i]);
      std::uint64_t n_edges = 0;
      t.for_each_edge(i, [&](const Edge&) { n_edges++; });
      put_varint(out, n_edges);
      t.for_each_edge(i, [&](const Edge& e) {
        put_varint(out, e.site);
        put_varint(out, e.dir ? 1 : 0);
        put_varint(out, e.child);
      });
      encode_trailer(t, i, out, ExecTree::WireVersion::kV1);
    }
    return out;
  }

  // v2: parent-link layout. Edges are not written at all — each non-root
  // node carries (parent delta, packed (site<<1)|dir), and the decoder
  // re-derives every edge list by appending children in index order, which
  // is exactly the insertion order (children are always created after their
  // parent). Chain pastes encode their parent link in one byte.
  static Bytes encode_v2(const ExecTree& t) {
    Bytes out;
    put_varint(out, kTreeMagic);
    put_varint(out, 2);
    put_varint(out, t.program_.value);
    put_varint(out, t.num_leaves_);
    const std::size_t count = t.visits_.size();
    put_varint(out, count);
    for (std::uint32_t i = 0; i < count; ++i) {
      if (i > 0) {
        put_varint(out, i - t.parent_[i]);
        put_varint(out, (static_cast<std::uint64_t>(t.parent_site_[i]) << 1) |
                            (t.parent_dir_[i] != 0 ? 1 : 0));
      }
      put_varint(out, t.visits_[i]);
      encode_trailer(t, i, out, ExecTree::WireVersion::kV2);
    }
    return out;
  }

  // -------------------------------------------------------------- decode --
  static bool decode_trailer(const Bytes& bytes, std::size_t& pos,
                             ExecTree& t, std::uint32_t node,
                             ExecTree::WireVersion version) {
    const bool packed = version == ExecTree::WireVersion::kV2;
    auto u = [&]() { return get_varint(bytes, pos); };
    const auto n_marks = u();
    if (!n_marks || *n_marks > kMaxPerNode) return false;
    for (std::uint64_t k = 0; k < *n_marks; ++k) {
      std::uint64_t site = 0;
      bool dir = false;
      if (packed) {
        const auto word = u();
        if (!word || (*word >> 1) > 0xffffffffULL) return false;
        site = *word >> 1;
        dir = (*word & 1) != 0;
      } else {
        const auto s = u(), d = u();
        if (!s || !d || *d > 1) return false;
        site = *s;
        dir = *d == 1;
      }
      t.append_mark(node, static_cast<std::uint32_t>(site), dir);
    }
    const auto n_outcomes = u();
    if (!n_outcomes || *n_outcomes > kMaxPerNode) return false;
    std::uint32_t tail = ExecTree::kNoNode;
    for (std::uint64_t k = 0; k < *n_outcomes; ++k) {
      const auto outcome = u(), occurrences = u();
      if (!outcome || !occurrences ||
          *outcome > static_cast<std::uint64_t>(Outcome::kUserKilled)) {
        return false;
      }
      const std::uint32_t link =
          static_cast<std::uint32_t>(t.outcomes_.size());
      t.outcomes_.push_back({static_cast<Outcome>(*outcome), *occurrences,
                             ExecTree::kNoNode});
      if (tail == ExecTree::kNoNode) {
        t.outcome_head_[node] = link;
      } else {
        t.outcomes_[tail].next = link;
      }
      tail = link;
    }
    const auto has_crash = u();
    if (!has_crash || *has_crash > 1) return false;
    if (*has_crash == 1) {
      const auto kind = u(), pc = u();
      const auto detail = get_varint_signed(bytes, pos);
      if (!kind || !pc || !detail ||
          *kind > static_cast<std::uint64_t>(CrashKind::kExplicitAbort)) {
        return false;
      }
      t.crash_[node] = static_cast<std::uint32_t>(t.crash_pool_.size());
      t.crash_pool_.push_back(CrashInfo{static_cast<CrashKind>(*kind),
                                        static_cast<std::uint32_t>(*pc),
                                        *detail});
    }
    return true;
  }

  static std::optional<ExecTree> decode(const Bytes& bytes) {
    std::size_t pos = 0;
    auto u = [&]() { return get_varint(bytes, pos); };
    const auto magic = u(), version = u(), program = u(), leaves = u(),
               count = u();
    if (!magic || *magic != kTreeMagic) return std::nullopt;
    if (!version || (*version != 1 && *version != 2)) return std::nullopt;
    if (!program || !leaves || !count || *count == 0 || *count > kMaxNodes) {
      return std::nullopt;
    }
    const ExecTree::WireVersion wire = *version == 1
                                           ? ExecTree::WireVersion::kV1
                                           : ExecTree::WireVersion::kV2;

    ExecTree tree{ProgramId{*program}};
    for (std::uint64_t i = 1; i < *count; ++i) tree.push_node();

    for (std::uint32_t i = 0; i < *count; ++i) {
      if (wire == ExecTree::WireVersion::kV2 && i > 0) {
        const auto delta = u(), word = u();
        if (!delta || *delta == 0 || *delta > i) return std::nullopt;
        if (!word || (*word >> 1) > 0xffffffffULL) return std::nullopt;
        const std::uint32_t parent = i - static_cast<std::uint32_t>(*delta);
        const std::uint32_t site = static_cast<std::uint32_t>(*word >> 1);
        const bool dir = (*word & 1) != 0;
        // Reject duplicate (site, direction) edges: add_path never produces
        // them, and a decoded tree must merge new paths canonically.
        if (tree.find_child(parent, site, dir) != ExecTree::kNoNode) {
          return std::nullopt;
        }
        tree.append_edge(parent, site, dir, i);
        tree.parent_[i] = parent;
        tree.parent_site_[i] = site;
        tree.parent_dir_[i] = dir ? 1 : 0;
      }
      const auto visits = u();
      if (!visits) return std::nullopt;
      tree.visits_[i] = *visits;
      if (wire == ExecTree::WireVersion::kV1) {
        const auto n_edges = u();
        if (!n_edges || *n_edges > kMaxPerNode) return std::nullopt;
        std::uint64_t last_child = 0;
        for (std::uint64_t k = 0; k < *n_edges; ++k) {
          const auto site = u(), dir = u(), child = u();
          // Beyond the original checks (child is a non-root in-range node),
          // require the structural invariants every legitimately encoded
          // tree satisfies: children are created after their parent and
          // appended in ascending index order, and each node has exactly
          // one parent. This is what makes the wire a *tree* — parent links
          // and incremental aggregates are meaningless on anything else.
          if (!site || !dir || !child || *dir > 1 || *child <= i ||
              *child >= *count || *child <= last_child ||
              *site > 0xffffffffULL) {
            return std::nullopt;
          }
          const std::uint32_t c = static_cast<std::uint32_t>(*child);
          if (tree.parent_[c] != ExecTree::kNoNode) return std::nullopt;
          tree.append_edge(i, static_cast<std::uint32_t>(*site), *dir == 1, c);
          tree.parent_[c] = i;
          tree.parent_site_[c] = static_cast<std::uint32_t>(*site);
          tree.parent_dir_[c] = *dir == 1 ? 1 : 0;
          last_child = *child;
        }
      }
      if (!decode_trailer(bytes, pos, tree, i, wire)) return std::nullopt;
    }
    if (pos != bytes.size()) return std::nullopt;
    // Every non-root node must have been claimed by a parent edge (v2 makes
    // this true by construction; v1 wires could dangle orphans).
    for (std::uint32_t i = 1; i < *count; ++i) {
      if (tree.parent_[i] == ExecTree::kNoNode) return std::nullopt;
    }
    tree.rebuild_aggregates();
    // The wire's leaf census must agree with the outcome records.
    if (tree.num_leaves_ != *leaves) return std::nullopt;
    return tree;
  }

  // --------------------------------------------------------------- equal --
  static bool equal(const ExecTree& a, const ExecTree& b) {
    // Node identity is creation order, and edge lists are fully determined
    // by the parent-link arrays (children attach in index order), so equal
    // parent arrays mean equal tree shape. Chain contents are compared in
    // chain order; pool indices are layout, not state.
    if (a.program_ != b.program_ || a.num_leaves_ != b.num_leaves_) {
      return false;
    }
    if (a.visits_ != b.visits_ || a.parent_ != b.parent_ ||
        a.parent_site_ != b.parent_site_ || a.parent_dir_ != b.parent_dir_) {
      return false;
    }
    const std::size_t count = a.visits_.size();
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t la = a.infeasible_head_[i], lb = b.infeasible_head_[i];
      while (la != ExecTree::kNoNode && lb != ExecTree::kNoNode) {
        if (a.marks_[la].site != b.marks_[lb].site ||
            a.marks_[la].dir != b.marks_[lb].dir) {
          return false;
        }
        la = a.marks_[la].next;
        lb = b.marks_[lb].next;
      }
      if (la != lb) return false;  // both must be kNoNode
      la = a.outcome_head_[i];
      lb = b.outcome_head_[i];
      while (la != ExecTree::kNoNode && lb != ExecTree::kNoNode) {
        if (a.outcomes_[la].outcome != b.outcomes_[lb].outcome ||
            a.outcomes_[la].count != b.outcomes_[lb].count) {
          return false;
        }
        la = a.outcomes_[la].next;
        lb = b.outcomes_[lb].next;
      }
      if (la != lb) return false;
      const bool ca = a.crash_[i] != ExecTree::kNoNode;
      const bool cb = b.crash_[i] != ExecTree::kNoNode;
      if (ca != cb) return false;
      if (ca && !(a.crash_pool_[a.crash_[i]] == b.crash_pool_[b.crash_[i]])) {
        return false;
      }
    }
    return true;
  }
};

Bytes ExecTree::encode(WireVersion version) const {
  return version == WireVersion::kV1 ? TreeCodecAccess::encode_v1(*this)
                                     : TreeCodecAccess::encode_v2(*this);
}

std::optional<ExecTree> ExecTree::decode(const Bytes& bytes) {
  return TreeCodecAccess::decode(bytes);
}

bool ExecTree::operator==(const ExecTree& other) const {
  return TreeCodecAccess::equal(*this, other);
}

Bytes encode_tree(const ExecTree& tree) { return tree.encode(); }

std::optional<ExecTree> decode_tree(const Bytes& bytes) {
  return ExecTree::decode(bytes);
}

}  // namespace softborg
