// End-to-end tests of the full SoftBorg loop (paper Fig. 1): pods run
// programs for simulated users, by-products flow over a lossy network, the
// hive finds bugs, synthesizes fixes, distributes them, and reliability
// improves with use.
#include <gtest/gtest.h>

#include "core/softborg.h"

namespace softborg {
namespace {

WorldConfig small_config() {
  WorldConfig config;
  config.pods_per_program = 12;
  config.days = 8;
  config.mean_runs_per_day = 6.0;
  config.seed = 7;
  return config;
}

TEST(World, RunsAndRecordsHistory) {
  World world({make_media_parser()}, small_config());
  world.run();
  ASSERT_EQ(world.history().size(), 8u);
  for (const auto& day : world.history()) {
    EXPECT_GT(day.runs, 0u);
  }
}

TEST(World, DeterministicForSeed) {
  auto run_world = [] {
    World world({make_media_parser(), make_bank_transfer()}, small_config());
    world.run();
    std::vector<std::uint64_t> sig;
    for (const auto& d : world.history()) {
      sig.push_back(d.runs);
      sig.push_back(d.failures);
      sig.push_back(d.fixes_distributed_total);
    }
    return sig;
  };
  EXPECT_EQ(run_world(), run_world());
}

TEST(World, CrashBugGetsFixedAndFailureRateDrops) {
  WorldConfig config = small_config();
  config.pods_per_program = 40;  // enough users to hit the crash region
  config.days = 12;
  config.seed = 3;
  World world({make_media_parser()}, config);
  world.run();

  const auto& history = world.history();
  // The bug is found and fixed.
  EXPECT_GE(history.back().bugs_found_total, 1u);
  EXPECT_GE(history.back().bugs_fixed_total, 1u);
  EXPECT_GE(history.back().fixes_distributed_total, 1u);

  // After fixes propagate, interventions replace failures.
  std::uint64_t early_failures = 0, late_failures = 0, late_interventions = 0;
  std::uint64_t early_runs = 0, late_runs = 0;
  for (const auto& d : history) {
    if (d.day <= 2) {
      early_failures += d.failures;
      early_runs += d.runs;
    }
    if (d.day >= 9) {
      late_failures += d.failures;
      late_runs += d.runs;
      late_interventions += d.fix_interventions;
    }
  }
  const double early_rate =
      static_cast<double>(early_failures) / static_cast<double>(early_runs);
  const double late_rate =
      static_cast<double>(late_failures) / static_cast<double>(late_runs);
  EXPECT_LT(late_rate, early_rate + 1e-12);
  EXPECT_GT(late_interventions, 0u);
}

TEST(World, DeadlockImmunityPropagates) {
  WorldConfig config = small_config();
  config.pods_per_program = 20;
  config.days = 12;
  config.seed = 3;
  World world({make_bank_transfer()}, config);
  world.run();

  const auto& history = world.history();
  EXPECT_GE(history.back().bugs_fixed_total, 1u);

  // Once the lock fix lands, deadlocks stop: the last days should be clean
  // while fix interventions are observed.
  std::uint64_t last_days_failures = 0, last_days_interventions = 0;
  for (const auto& d : history) {
    if (d.day >= 10) {
      last_days_failures += d.failures;
      last_days_interventions += d.fix_interventions;
    }
  }
  EXPECT_EQ(last_days_failures, 0u);
  EXPECT_GT(last_days_interventions, 0u);
}

TEST(World, CoverageGrowsWithUse) {
  WorldConfig config = small_config();
  config.days = 6;
  World world({make_config_space(10)}, config);
  world.run();
  const auto& history = world.history();
  EXPECT_GT(history.back().total_paths, history.front().total_paths);
  // Monotone non-decreasing.
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_GE(history[i].total_paths, history[i - 1].total_paths);
  }
}

TEST(World, GuidanceAcceleratesCoverage) {
  WorldConfig natural = small_config();
  natural.days = 6;
  natural.pods_per_program = 10;
  WorldConfig guided = natural;
  guided.guidance_per_program_per_day = 6;

  World w_natural({make_config_space(12)}, natural);
  World w_guided({make_config_space(12)}, guided);
  w_natural.run();
  w_guided.run();
  EXPECT_GT(w_guided.history().back().total_paths,
            w_natural.history().back().total_paths);
}

TEST(World, LossyNetworkStillConverges) {
  WorldConfig config = small_config();
  config.net.drop_prob = 0.25;
  config.net.dup_prob = 0.1;
  config.days = 12;
  config.pods_per_program = 20;
  config.seed = 3;
  World world({make_media_parser()}, config);
  world.run();
  EXPECT_GE(world.history().back().bugs_fixed_total, 1u);
  EXPECT_GT(world.hive().stats().duplicates_dropped, 0u);
}

TEST(World, MultiProgramFleet) {
  WorldConfig config = small_config();
  config.days = 10;
  config.pods_per_program = 15;
  World world(standard_corpus(), config);
  world.run();
  // Bugs found across multiple programs.
  EXPECT_GE(world.hive().bug_tracker().all().size(), 3u);
  // The schedule-dependent race lands in the repair lab, not auto-fixed.
  EXPECT_GE(world.hive().bug_tracker().count(BugKind::kScheduleAssert), 0u);
}

TEST(World, ProofsAfterDeployment) {
  WorldConfig config = small_config();
  config.days = 5;
  World world({make_worker_pool()}, config);
  world.run();
  const auto cert = world.hive().attempt_proof(
      world.corpus()[0].program.id, Property::kNeverCrashes);
  EXPECT_TRUE(cert.publishable());
  std::string reason;
  EXPECT_TRUE(
      check_certificate(world.corpus()[0], cert, 1u << 16, &reason))
      << reason;
}

}  // namespace
}  // namespace softborg
