// Pod execution throughput: the frozen pre-rebuild switch interpreter
// (execute_reference) vs the predecode + direct-threaded core, unfused and
// fused (ISSUE 6 / ROADMAP item 1 acceptance: fused >= 2x reference on the
// mixed workload, byte-identical results — the identity half is pinned by
// tests/dispatch_diff_test.cpp).
//
// Workloads are prebuilt (program, inputs, seed) runs: a synthetic
// hot loop dense in fusible pairs, and corpus programs dominated by loops
// the fleet actually replays. items/s = executed MiniVM instructions/s
// (trace.steps).
//
//   ./bench_pod_execute                 console table
//   ./bench_pod_execute --json -        + BENCH_pod_execute.json records
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_json_gbench.h"
#include "common/rng.h"
#include "minivm/builder.h"
#include "minivm/corpus.h"
#include "minivm/interp.h"

namespace softborg {
namespace {

// Arithmetic loop dense in fusible pairs (const+add, const+sub,
// cmp+branch): the shape of the corpus programs' hot loops, distilled.
Program hot_loop() {
  ProgramBuilder b("hot_loop");
  const Reg n = b.reg();
  const Reg acc = b.reg();
  const Reg k = b.reg();
  const Reg cond = b.reg();
  const Reg zero = b.reg();
  b.input(n, b.input_slot());
  b.const_(acc, 0);
  b.const_(zero, 0);
  const ProgramBuilder::Label loop = b.here();
  const ProgramBuilder::Label done = b.label();
  b.const_(k, 3);
  b.add(acc, acc, k);
  b.const_(k, 1);
  b.sub(n, n, k);
  b.cmp_lt(cond, zero, n);
  b.branch_if(cond, loop, done);
  b.bind(done);
  b.output(acc);
  b.halt();
  return b.build();
}

// Loop whose body shuffles a register into a global each round
// (mov+storeg), with a const+cmp+branch trip check.
Program global_loop() {
  ProgramBuilder b("global_loop", 2);
  const Reg n = b.reg();
  const Reg acc = b.reg();
  const Reg tmp = b.reg();
  const Reg k = b.reg();
  const Reg cond = b.reg();
  const std::uint32_t g = b.global();
  b.input(n, b.input_slot());
  b.const_(acc, 0);
  const ProgramBuilder::Label loop = b.here();
  const ProgramBuilder::Label done = b.label();
  b.const_(k, 1);
  b.add(acc, acc, k);
  b.mov(tmp, acc);
  b.storeg(g, tmp);
  b.const_(k, 1);
  b.sub(n, n, k);
  b.cmp_lt(cond, k, n);
  b.branch_if(cond, loop, done);
  b.bind(done);
  b.loadg(tmp, g);
  b.output(tmp);
  b.halt();
  return b.build();
}

struct Workload {
  Program program;
  std::vector<Value> inputs;
  std::uint64_t seed = 1;
};

// The mixed set: synthetic hot loops plus corpus programs with realistic
// branch/syscall/global mixes. Inputs are fixed so every leg replays the
// exact same executions.
std::vector<Workload> mixed_workloads() {
  std::vector<Workload> ws;
  ws.push_back({hot_loop(), {20'000}, 11});
  ws.push_back({global_loop(), {10'000}, 12});
  Rng rng(99);
  for (CorpusEntry entry :
       {make_media_parser(), make_file_copier(), make_config_space(8),
        make_skewed_workload(6, 24)}) {
    for (int rep = 0; rep < 8; ++rep) {
      Workload w;
      for (const auto& domain : entry.domains) {
        w.inputs.push_back(rng.next_in(domain.lo, domain.hi));
      }
      w.seed = rng();
      w.program = entry.program;
      ws.push_back(std::move(w));
    }
  }
  return ws;
}

enum class Core { kReference, kThreaded, kThreadedFused };

void run_workloads(benchmark::State& state,
                   const std::vector<Workload>& workloads, Core core) {
  std::uint64_t instrs = 0;
  std::uint64_t checksum = 0;
  for (auto _ : state) {
    checksum = 0;  // per-iteration, so the reported value is leg-comparable
    for (const Workload& w : workloads) {
      ExecConfig cfg;
      cfg.inputs = w.inputs;
      cfg.seed = w.seed;
      cfg.enable_fusion = core == Core::kThreadedFused;
      const ExecResult r = core == Core::kReference
                               ? execute_reference(w.program, cfg)
                               : execute(w.program, cfg);
      instrs += r.trace.steps;
      for (Value v : r.outputs) checksum ^= static_cast<std::uint64_t>(v);
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instrs));
  state.counters["checksum"] =
      benchmark::Counter(static_cast<double>(checksum & 0xffff));
}

const std::vector<Workload>& mixed() {
  static const std::vector<Workload> ws = mixed_workloads();
  return ws;
}

const std::vector<Workload>& loops_only() {
  static const std::vector<Workload> ws = {
      {hot_loop(), {20'000}, 11},
      {global_loop(), {10'000}, 12},
  };
  return ws;
}

// Headline numbers (EXPERIMENTS.md): mixed fleet-like workload.
void BM_PodExecute_Reference(benchmark::State& state) {
  run_workloads(state, mixed(), Core::kReference);
}
void BM_PodExecute_Threaded(benchmark::State& state) {
  run_workloads(state, mixed(), Core::kThreaded);
}
void BM_PodExecute_ThreadedFused(benchmark::State& state) {
  run_workloads(state, mixed(), Core::kThreadedFused);
}

// Fusion ceiling: pure hot loops, where fused pairs dominate the stream.
void BM_PodExecuteLoops_Reference(benchmark::State& state) {
  run_workloads(state, loops_only(), Core::kReference);
}
void BM_PodExecuteLoops_Threaded(benchmark::State& state) {
  run_workloads(state, loops_only(), Core::kThreaded);
}
void BM_PodExecuteLoops_ThreadedFused(benchmark::State& state) {
  run_workloads(state, loops_only(), Core::kThreadedFused);
}

BENCHMARK(BM_PodExecute_Reference);
BENCHMARK(BM_PodExecute_Threaded);
BENCHMARK(BM_PodExecute_ThreadedFused);
BENCHMARK(BM_PodExecuteLoops_Reference);
BENCHMARK(BM_PodExecuteLoops_Threaded);
BENCHMARK(BM_PodExecuteLoops_ThreadedFused);

}  // namespace
}  // namespace softborg

int main(int argc, char** argv) {
  softborg::BenchJsonWriter json("pod_execute", argc, argv);  // strips --json
  benchmark::Initialize(&argc, argv);
  softborg::JsonTeeReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return json.write() ? 0 : 1;
}
