// MiniVM execution core: predecode + direct-threaded dispatch.
//
// The hot loop runs over the DecodedProgram stream (decode.h): one 64-byte
// slot per pc with the handler token, pre-unpacked operands, and the fix
// hooks for that pc already resolved, so the per-instruction work is a
// single indirect jump plus the handler body. Under GCC/Clang the dispatch
// is computed goto (&&handler jump table); -DSOFTBORG_DISPATCH_SWITCH (CMake
// option SOFTBORG_DISPATCH=switch) selects a portable token-threaded switch
// over the exact same handler bodies (SB_CASE expands to a label in one
// mode, a case in the other).
//
// Superinstructions (const+ALU, cmp+branch, mov+storeg) execute both halves
// of a fused pair in one dispatch. Accounting stays per *original*
// instruction: a fused slot debits the step counter, the scheduler quantum,
// and the steering-plan cursor by its length, and a pair only dispatches
// fused when the remaining turn budget covers both halves (otherwise the
// slot's base token runs the first half alone). Together with fusion being
// restricted to non-trapping, non-yielding first halves, this keeps traces,
// branch bit-vectors, schedule summaries, and every other by-product
// byte-identical to the unfused interpreter — the property the differential
// suite (tests/dispatch_diff_test.cpp) pins against execute_reference().
//
// Semantic quirks preserved from the original step loop, in case they look
// accidental: a voluntary kYield (and the lock-fix yield) ends the turn
// *without* the step-limit check, so a thread that yields exactly at
// max_steps gets one more instruction on its next turn before the hang
// fires; blocking on a lock and halting *do* run the step-limit check;
// crash/deadlock exits skip it (done_ is already set).
#include "minivm/interp.h"

#include <algorithm>
#include <deque>

#include "common/check.h"
#include "minivm/decode.h"
#include "obs/registry.h"
#include "obs/span.h"

#if !defined(SOFTBORG_DISPATCH_SWITCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define SB_DISPATCH_GOTO 1
#endif

namespace softborg {

namespace {

// Wrapping arithmetic: MiniVM integers are two's-complement 64-bit with
// defined wraparound (no UB on overflow).
Value wrap_add(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) +
                            static_cast<std::uint64_t>(b));
}
Value wrap_sub(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) -
                            static_cast<std::uint64_t>(b));
}
Value wrap_mul(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) *
                            static_cast<std::uint64_t>(b));
}

struct ThreadCtx {
  std::uint32_t pc = 0;
  std::vector<Value> regs;
  // Byte-per-register taint (the old vector<bool> cost a shift+mask per
  // access in the hottest path). Values are strictly 0/1.
  std::vector<std::uint8_t> taint;
  bool halted = false;
  std::optional<std::uint16_t> blocked_on;
  std::vector<std::uint16_t> held;
  // Opcode-pair profiling cursor (ExecConfig::pair_counts): the previous
  // instruction this thread executed, to detect fallthrough successors.
  bool pair_valid = false;
  std::uint32_t pair_prev_pc = 0;
  Op pair_prev_op = Op::kHalt;

  bool runnable() const { return !halted && !blocked_on; }
};

struct LockCtx {
  int owner = -1;  // thread index, -1 = free
  std::deque<std::uint8_t> waiters;
};

// Sentinel quantum for the single-threaded fast path: with one thread and
// no steering plan, the scheduler has no choice to make and the schedule
// summary is not recorded, so the whole execution runs as one turn. A
// kYield then just refreshes the turn budget in place (preserving the
// yield-at-limit quirk) instead of bouncing through the scheduler.
constexpr std::uint32_t kUnboundedQuantum = 0xffffffffu;

// exec_lock outcomes, mapped onto turn control flow by the kLock handler.
enum LockResult {
  kLockAcquired,  // proceed within the turn
  kLockBlocked,   // turn ends; step-limit check still applies
  kLockYield,     // lock-avoidance fix yielded; turn ends, no limit check
  kLockStop,      // deadlock detected; execution is over
};

class Machine {
 public:
  Machine(const Program& program, const ExecConfig& config)
      : p_(program),
        cfg_(config),
        env_(config.env != nullptr ? *config.env : default_env()),
        sched_rng_(config.seed),
        env_rng_(Rng(config.seed).split(0x0e17)),
        decoded_(predecode_cached(
            program, config.fixes,
            // Pair profiling needs the raw unfused stream to observe pairs.
            {.fuse = config.enable_fusion && config.pair_counts == nullptr})) {
    threads_.resize(p_.num_threads());
    for (std::size_t t = 0; t < threads_.size(); ++t) {
      threads_[t].pc = p_.thread_entries[t];
      threads_[t].regs.assign(p_.num_regs, 0);
      threads_[t].taint.assign(p_.num_regs, 0);
    }
    globals_.assign(p_.num_globals, 0);
    global_taint_.assign(p_.num_globals, 0);
    locks_.resize(p_.num_locks);
  }

  ExecResult run();

 private:
  // Executes one scheduler turn of thread `t`: up to `quantum` original
  // instructions, fewer if the thread yields/blocks/halts or execution ends.
  void run_quantum(std::uint8_t t, std::uint32_t quantum);
  LockResult exec_lock(std::uint8_t t, const DecodedInstr& d);
  void exec_unlock(std::uint8_t t, std::uint16_t l);
  void crash(CrashKind kind, std::uint32_t pc, std::int64_t detail);
  int pick_next_thread();
  bool wait_chain_has_cycle(std::uint8_t start,
                            std::vector<LockEvent>* cycle) const;
  void record_branch_bit(bool dir, bool tainted);
  bool record_all_branches() const {
    return cfg_.granularity == Granularity::kAllBranches ||
           cfg_.granularity == Granularity::kFull;
  }

  const Program& p_;
  const ExecConfig& cfg_;
  const EnvModel& env_;
  Rng sched_rng_;
  Rng env_rng_;
  std::shared_ptr<const DecodedProgram> decoded_;

  std::vector<ThreadCtx> threads_;
  std::vector<Value> globals_;
  std::vector<std::uint8_t> global_taint_;
  std::vector<LockCtx> locks_;

  std::uint64_t steps_ = 0;
  std::uint64_t fused_dispatches_ = 0;
  std::uint32_t syscall_index_ = 0;
  bool done_ = false;
  Outcome outcome_ = Outcome::kOk;
  std::optional<CrashInfo> crash_info_;

  // Scheduler plan cursor.
  std::size_t plan_run_ = 0;
  std::uint32_t plan_used_ = 0;
  std::uint32_t plan_cap_ = 0;  // steps left in the current plan run

  // Captured by-products.
  BitVec bits_;
  std::vector<ScheduleRun> schedule_;
  std::vector<LockEvent> lock_events_;
  std::vector<SyscallRecord> syscalls_;
  std::vector<BranchEvent> branch_events_;
  std::vector<LockEvent> deadlock_cycle_;
  std::vector<Value> outputs_;
  bool fix_intervened_ = false;
};

void Machine::record_branch_bit(bool dir, bool tainted) {
  if (cfg_.granularity == Granularity::kNone) return;
  if (tainted || record_all_branches()) bits_.push_back(dir);
}

void Machine::crash(CrashKind kind, std::uint32_t pc, std::int64_t detail) {
  done_ = true;
  outcome_ = Outcome::kCrash;
  crash_info_ = CrashInfo{kind, pc, detail};
}

bool Machine::wait_chain_has_cycle(std::uint8_t start,
                                   std::vector<LockEvent>* cycle) const {
  // Follow thread -> lock-it-waits-on -> owner; bounded by thread count.
  std::vector<LockEvent> path;
  std::uint8_t t = start;
  for (std::size_t hop = 0; hop <= threads_.size(); ++hop) {
    const auto& th = threads_[t];
    if (!th.blocked_on) return false;
    const std::uint16_t l = *th.blocked_on;
    path.push_back({t, true, l, th.pc,
                    static_cast<std::uint32_t>(steps_)});
    const int owner = locks_[l].owner;
    if (owner < 0) return false;  // transiently free; no cycle
    if (static_cast<std::uint8_t>(owner) == start) {
      if (cycle != nullptr) *cycle = path;
      return true;
    }
    t = static_cast<std::uint8_t>(owner);
  }
  return false;
}

LockResult Machine::exec_lock(std::uint8_t t, const DecodedInstr& d) {
  ThreadCtx& th = threads_[t];
  const std::uint16_t l = static_cast<std::uint16_t>(d.a);

  // Deadlock-immunity fix: serialize entry into a diagnosed cycle's lock
  // set. If another thread currently holds any lock of the cycle, yield
  // (quantum ends, pc unchanged) instead of entering the pattern. Predecode
  // already filtered the installed fixes down to the ones covering `l`.
  if (d.fix_count != 0) {
    const LockAvoidanceFix* fs = decoded_->lockfix_pool.data() + d.fix_begin;
    for (std::uint32_t i = 0; i < d.fix_count; ++i) {
      const LockAvoidanceFix& fix = fs[i];
      // If we already hold a cycle lock we are the occupant; proceed.
      bool self_inside = false;
      for (auto h : th.held) {
        if (fix.covers(h)) {
          self_inside = true;
          break;
        }
      }
      if (self_inside) continue;
      for (std::size_t other = 0; other < threads_.size(); ++other) {
        if (other == t) continue;
        for (auto h : threads_[other].held) {
          if (fix.covers(h)) {
            fix_intervened_ = true;
            return kLockYield;  // retry this kLock later
          }
        }
      }
    }
  }

  LockCtx& lock = locks_[l];
  if (lock.owner < 0) {
    lock.owner = t;
    th.held.push_back(l);
    th.pc++;
    lock_events_.push_back(
        {t, true, l, th.pc - 1, static_cast<std::uint32_t>(steps_)});
    return kLockAcquired;
  }

  // Block (possibly on a lock we already own: self-deadlock).
  th.blocked_on = l;
  lock.waiters.push_back(t);
  if (cfg_.detect_deadlock) {
    std::vector<LockEvent> cycle;
    if (wait_chain_has_cycle(t, &cycle)) {
      done_ = true;
      outcome_ = Outcome::kDeadlock;
      deadlock_cycle_ = cycle;
      return kLockStop;
    }
  }
  return kLockBlocked;
}

void Machine::exec_unlock(std::uint8_t t, std::uint16_t l) {
  ThreadCtx& th = threads_[t];
  LockCtx& lock = locks_[l];
  if (lock.owner != static_cast<int>(t)) {
    crash(CrashKind::kExplicitAbort, th.pc, 1000 + l);
    return;
  }
  lock.owner = -1;
  th.held.erase(std::find(th.held.begin(), th.held.end(), l));
  lock_events_.push_back(
      {t, false, l, th.pc, static_cast<std::uint32_t>(steps_)});
  th.pc++;

  // Hand the lock to the first waiter, FIFO; its pc moves past its kLock.
  while (!lock.waiters.empty()) {
    const std::uint8_t w = lock.waiters.front();
    lock.waiters.pop_front();
    ThreadCtx& wt = threads_[w];
    if (!wt.blocked_on || *wt.blocked_on != l) continue;  // stale waiter
    lock.owner = w;
    wt.blocked_on.reset();
    wt.held.push_back(l);
    lock_events_.push_back(
        {w, true, l, wt.pc, static_cast<std::uint32_t>(steps_)});
    wt.pc++;
    break;
  }
}

void Machine::run_quantum(std::uint8_t t, std::uint32_t quantum) {
  if (quantum == 0) return;
  ThreadCtx& th = threads_[t];
  Value* const regs = th.regs.data();
  std::uint8_t* const taint = th.taint.data();
  const DecodedInstr* const code = decoded_->code.data();
  const std::uint64_t max_steps = cfg_.max_steps;
  // Invariant per turn: plan_run_ only advances in pick_next_thread.
  const bool plan_active = cfg_.schedule_plan != nullptr &&
                           plan_run_ < cfg_.schedule_plan->runs.size();
  OpPairCounts* const pairs = cfg_.pair_counts;

  // Original instructions this turn may still execute before it must end:
  // the scheduler quantum, capped at the step limit. A thread that yielded
  // exactly at max_steps re-enters with steps_ >= max_steps and gets exactly
  // one more instruction before the limit check fires (see header comment).
  std::uint64_t left = std::min<std::uint64_t>(
      quantum, steps_ >= max_steps ? 1 : max_steps - steps_);

  // The whole turn is one thread, so the schedule summary advances by bulk
  // increments on one run instead of a call per instruction.
  ScheduleRun* sched = nullptr;
  if (p_.num_threads() > 1) {
    if (schedule_.empty() || schedule_.back().thread != t) {
      schedule_.push_back({t, 0});
    }
    sched = &schedule_.back();
  }

  const DecodedInstr* d = nullptr;
  std::uint64_t len = 0;
  Tok tok = Tok::kHalt;
  // branch_resolve inputs (shared tail of kBranchIf and fused cmp+branch).
  bool br_dir = false;
  bool br_tnt = false;
  std::uint32_t br_site = 0;
  std::uint32_t br_then = 0;
  std::uint32_t br_else = 0;

#ifdef SB_DISPATCH_GOTO
  // Jump table in Tok value order (decode.h).
  static const void* const kJump[] = {
      &&H_kConst,      &&H_kMov,        &&H_kAdd,       &&H_kSub,
      &&H_kMul,        &&H_kDiv,        &&H_kMod,       &&H_kCmpLt,
      &&H_kCmpLe,      &&H_kCmpEq,      &&H_kCmpNe,     &&H_kBranchIf,
      &&H_kJump,       &&H_kInput,      &&H_kSyscall,   &&H_kLoadG,
      &&H_kStoreG,     &&H_kLock,       &&H_kUnlock,    &&H_kAssert,
      &&H_kAbort,      &&H_kOutput,     &&H_kYield,     &&H_kHalt,
      &&H_kConstAdd,   &&H_kConstSub,   &&H_kConstMul,  &&H_kConstCmpLt,
      &&H_kConstCmpLe, &&H_kConstCmpEq, &&H_kConstCmpNe, &&H_kCmpLtBranch,
      &&H_kCmpLeBranch, &&H_kCmpEqBranch, &&H_kCmpNeBranch, &&H_kMovStoreG,
  };
  static_assert(sizeof(kJump) / sizeof(kJump[0]) == kNumToks);
#define SB_CASE(T) H_##T
#define SB_NEXT() goto* kJump[static_cast<std::size_t>(tok)]
#else
#define SB_CASE(T) case Tok::T
#define SB_NEXT() goto dispatch_switch
#endif

fetch:
  d = &code[th.pc];
  tok = d->tok;
  len = d->len;
  if (len > left) {
    // Not enough budget for both halves of a fused pair: run the first half
    // alone so step accounting lands exactly where the unfused machine's
    // would. The second half re-fetches as its own (plain) slot next turn.
    tok = d->base;
    len = 1;
  } else if (len == 2) {
    fused_dispatches_++;
  }
  if (sched != nullptr) sched->steps += static_cast<std::uint32_t>(len);
  steps_ += len;
  if (plan_active) plan_used_ += static_cast<std::uint32_t>(len);
  left -= len;
  if (pairs != nullptr) {
    // Profiling runs unfused, so d->base is the executed opcode.
    const Op cur = static_cast<Op>(d->base);
    if (th.pair_valid && th.pair_prev_pc + 1 == th.pc) {
      pairs->add(th.pair_prev_op, cur);
    }
    th.pair_prev_pc = th.pc;
    th.pair_prev_op = cur;
    th.pair_valid = true;
  }
  SB_NEXT();

#ifndef SB_DISPATCH_GOTO
dispatch_switch:
  switch (tok) {
#endif

    SB_CASE(kConst) : {
      regs[d->a] = d->imm;
      taint[d->a] = 0;
      th.pc++;
      goto done_step;
    }
    SB_CASE(kMov) : {
      regs[d->a] = regs[d->b];
      taint[d->a] = taint[d->b];
      th.pc++;
      goto done_step;
    }

// Non-trapping binary ALU handler: one flat body per op (the old
// interpreter decoded `op` twice through nested switches here).
#define SB_ALU(EXPR)                                                 \
  {                                                                  \
    const Value x = regs[d->b];                                      \
    const Value y = regs[d->c];                                      \
    regs[d->a] = (EXPR);                                             \
    taint[d->a] = static_cast<std::uint8_t>(taint[d->b] | taint[d->c]); \
    th.pc++;                                                         \
    goto done_step;                                                  \
  }

    SB_CASE(kAdd) : SB_ALU(wrap_add(x, y))
    SB_CASE(kSub) : SB_ALU(wrap_sub(x, y))
    SB_CASE(kMul) : SB_ALU(wrap_mul(x, y))
    SB_CASE(kCmpLt) : SB_ALU(x < y)
    SB_CASE(kCmpLe) : SB_ALU(x <= y)
    SB_CASE(kCmpEq) : SB_ALU(x == y)
    SB_CASE(kCmpNe) : SB_ALU(x != y)

// Division-family handler: surviving the divisor-zero check is a decision
// of the execution tree, recorded like a branch (true = survived). The
// pre-resolved crash guard (kSubstitute) can absorb the crash.
#define SB_DIVMOD(DETAIL, EXPR)                                         \
  {                                                                     \
    const Value x = regs[d->b];                                         \
    const Value y = regs[d->c];                                         \
    record_branch_bit(y != 0, taint[d->c] != 0);                        \
    if (cfg_.collect_branch_events) {                                   \
      branch_events_.push_back({d->site, y != 0, taint[d->c] != 0, t}); \
    }                                                                   \
    Value r;                                                            \
    if (y == 0) {                                                       \
      const CrashGuardFix* g =                                          \
          d->guard != kNoFix ? &decoded_->guard_pool[d->guard] : nullptr; \
      if (g == nullptr || g->action != CrashGuardFix::Action::kSubstitute) { \
        crash(CrashKind::kDivByZero, th.pc, (DETAIL));                  \
        return;                                                         \
      }                                                                 \
      r = g->fallback;                                                  \
      fix_intervened_ = true;                                           \
    } else {                                                            \
      r = (EXPR);                                                       \
    }                                                                   \
    regs[d->a] = r;                                                     \
    taint[d->a] = static_cast<std::uint8_t>(taint[d->b] | taint[d->c]); \
    th.pc++;                                                            \
    goto done_step;                                                     \
  }

    SB_CASE(kDiv)
        : SB_DIVMOD(0, (x == INT64_MIN && y == -1) ? INT64_MIN : x / y)
    SB_CASE(kMod) : SB_DIVMOD(1, (x == INT64_MIN && y == -1) ? 0 : x % y)

    SB_CASE(kBranchIf) : {
      br_dir = regs[d->a] != 0;
      br_tnt = taint[d->a] != 0;
      br_site = d->site;
      br_then = d->b;
      br_else = d->c;
      goto branch_resolve;
    }
    SB_CASE(kJump) : {
      th.pc = d->a;
      goto done_step;
    }
    SB_CASE(kInput) : {
      regs[d->a] = d->b < cfg_.inputs.size() ? cfg_.inputs[d->b] : 0;
      taint[d->a] = 1;
      th.pc++;
      goto done_step;
    }
    SB_CASE(kSyscall) : {
      const std::uint16_t sys = static_cast<std::uint16_t>(d->b);
      const Value arg = regs[d->c];
      const Value result =
          env_.call(sys, arg, syscall_index_, env_rng_, cfg_.fault_plan);
      if (cfg_.granularity == Granularity::kFull) {
        syscalls_.push_back(
            {sys, syscall_index_, env_.classify(sys, arg, result)});
      }
      syscall_index_++;
      regs[d->a] = result;
      taint[d->a] = 1;
      th.pc++;
      goto done_step;
    }
    SB_CASE(kLoadG) : {
      regs[d->a] = globals_[d->b];
      taint[d->a] = global_taint_[d->b];
      th.pc++;
      goto done_step;
    }
    SB_CASE(kStoreG) : {
      globals_[d->a] = regs[d->b];
      global_taint_[d->a] = taint[d->b];
      th.pc++;
      goto done_step;
    }
    SB_CASE(kLock) : {
      switch (exec_lock(t, *d)) {
        case kLockAcquired:
          goto done_step;
        case kLockBlocked:
          goto end_turn;
        default:  // kLockYield / kLockStop: turn over, no step-limit check
          return;
      }
    }
    SB_CASE(kUnlock) : {
      exec_unlock(t, static_cast<std::uint16_t>(d->a));
      if (done_) return;  // unlock-without-ownership crash
      goto done_step;
    }
    SB_CASE(kAssert) : {
      const bool ok = regs[d->a] != 0;
      const bool tnt = taint[d->a] != 0;
      record_branch_bit(ok, tnt);
      if (cfg_.collect_branch_events) {
        branch_events_.push_back({d->site, ok, tnt, t});
      }
      if (!ok) {
        const CrashGuardFix* g =
            d->guard != kNoFix ? &decoded_->guard_pool[d->guard] : nullptr;
        if (g != nullptr && g->action == CrashGuardFix::Action::kSkip) {
          fix_intervened_ = true;
          th.pc++;
          goto done_step;
        }
        crash(CrashKind::kAssertFailure, th.pc,
              static_cast<std::int64_t>(d->b));
        return;
      }
      th.pc++;
      goto done_step;
    }
    SB_CASE(kAbort) : {
      const CrashGuardFix* g =
          d->guard != kNoFix ? &decoded_->guard_pool[d->guard] : nullptr;
      if (g != nullptr && g->action == CrashGuardFix::Action::kSkip) {
        fix_intervened_ = true;
        th.pc++;
        goto done_step;
      }
      crash(CrashKind::kExplicitAbort, th.pc, static_cast<std::int64_t>(d->a));
      return;
    }
    SB_CASE(kOutput) : {
      outputs_.push_back(regs[d->a]);
      th.pc++;
      goto done_step;
    }
    SB_CASE(kYield) : {
      th.pc++;
      // Voluntary turn end: deliberately skips the step-limit check, so a
      // thread that yields exactly at max_steps still gets one instruction
      // on its next turn.
      if (quantum != kUnboundedQuantum) return;
      // Single-threaded fast path: the scheduler would re-pick this thread
      // immediately, so refresh the budget in place instead of bouncing
      // through the outer loop. Mirrors the turn-entry computation above.
      left = steps_ >= max_steps ? 1 : max_steps - steps_;
      goto fetch;
    }
    SB_CASE(kHalt) : {
      th.halted = true;
      goto end_turn;
    }

// Fused const+ALU: the const half (slot operands a/imm) then the ALU half
// (a2/b2/c2), exactly as two back-to-back unfused steps would.
#define SB_CONST_ALU(EXPR)                                              \
  {                                                                     \
    regs[d->a] = d->imm;                                                \
    taint[d->a] = 0;                                                    \
    const Value x = regs[d->b2];                                        \
    const Value y = regs[d->c2];                                        \
    regs[d->a2] = (EXPR);                                               \
    taint[d->a2] = static_cast<std::uint8_t>(taint[d->b2] | taint[d->c2]); \
    th.pc += 2;                                                         \
    goto done_step;                                                     \
  }

    SB_CASE(kConstAdd) : SB_CONST_ALU(wrap_add(x, y))
    SB_CASE(kConstSub) : SB_CONST_ALU(wrap_sub(x, y))
    SB_CASE(kConstMul) : SB_CONST_ALU(wrap_mul(x, y))
    SB_CASE(kConstCmpLt) : SB_CONST_ALU(x < y)
    SB_CASE(kConstCmpLe) : SB_CONST_ALU(x <= y)
    SB_CASE(kConstCmpEq) : SB_CONST_ALU(x == y)
    SB_CASE(kConstCmpNe) : SB_CONST_ALU(x != y)

// Fused cmp+branch: the compare result still lands in its register (later
// code may re-read it), then the branch half resolves on the fresh value.
// Fusion requires branch.a == cmp.a (decode.cpp), so dir/taint come straight
// from the compare. The slot inherited the branch's GuardPatch range.
#define SB_CMP_BRANCH(EXPR)                                          \
  {                                                                  \
    const Value x = regs[d->b];                                      \
    const Value y = regs[d->c];                                      \
    const Value v = (EXPR);                                          \
    const std::uint8_t tnt =                                         \
        static_cast<std::uint8_t>(taint[d->b] | taint[d->c]);        \
    regs[d->a] = v;                                                  \
    taint[d->a] = tnt;                                               \
    br_dir = v != 0;                                                 \
    br_tnt = tnt != 0;                                               \
    br_site = d->site2;                                              \
    br_then = d->b2;                                                 \
    br_else = d->c2;                                                 \
    goto branch_resolve;                                             \
  }

    SB_CASE(kCmpLtBranch) : SB_CMP_BRANCH(x < y)
    SB_CASE(kCmpLeBranch) : SB_CMP_BRANCH(x <= y)
    SB_CASE(kCmpEqBranch) : SB_CMP_BRANCH(x == y)
    SB_CASE(kCmpNeBranch) : SB_CMP_BRANCH(x != y)

    SB_CASE(kMovStoreG) : {
      // Mov completes before the store reads (b2 may alias the mov dest).
      regs[d->a] = regs[d->b];
      taint[d->a] = taint[d->b];
      globals_[d->a2] = regs[d->b2];
      global_taint_[d->a2] = taint[d->b2];
      th.pc += 2;
      goto done_step;
    }

#ifndef SB_DISPATCH_GOTO
  }
  SB_CHECK(false);  // every token has a case above
#endif

branch_resolve : {
  // GuardPatch fix hook: steer away from a known crash direction when the
  // synthesized input predicate holds. Candidates were pre-filtered to this
  // site at predecode, in FixSet order; first match wins.
  if (d->fix_count != 0) {
    const GuardPatch* ps = decoded_->patch_pool.data() + d->fix_begin;
    for (std::uint32_t i = 0; i < d->fix_count; ++i) {
      if (br_dir == ps[i].crash_direction && ps[i].matches(cfg_.inputs)) {
        br_dir = !br_dir;
        fix_intervened_ = true;
        break;
      }
    }
  }
  record_branch_bit(br_dir, br_tnt);
  if (cfg_.collect_branch_events) {
    branch_events_.push_back({br_site, br_dir, br_tnt, t});
  }
  th.pc = br_dir ? br_then : br_else;
  goto done_step;
}

done_step:
  if (steps_ >= max_steps) goto step_limit;
  if (left == 0) return;
  goto fetch;

end_turn:
  if (steps_ >= max_steps) goto step_limit;
  return;

step_limit : {
  bool all_halted = true;
  for (const auto& other : threads_) {
    if (!other.halted) all_halted = false;
  }
  outcome_ = all_halted ? Outcome::kOk : Outcome::kHang;
  done_ = true;
  return;
}

#undef SB_CASE
#undef SB_NEXT
#undef SB_ALU
#undef SB_DIVMOD
#undef SB_CONST_ALU
#undef SB_CMP_BRANCH
}

int Machine::pick_next_thread() {
  // Honor the steering plan first (guidance, §3.3: "guide P in exploring
  // previously unseen thread schedules").
  if (cfg_.schedule_plan != nullptr) {
    const auto& runs = cfg_.schedule_plan->runs;
    while (plan_run_ < runs.size()) {
      const auto& run = runs[plan_run_];
      if (plan_used_ >= run.steps) {
        plan_run_++;
        plan_used_ = 0;
        continue;
      }
      if (run.thread < threads_.size() && threads_[run.thread].runnable()) {
        // Cap this turn exactly at the run boundary so short runs are not
        // overrun by the default quantum.
        plan_cap_ = run.steps - plan_used_;
        return run.thread;
      }
      // Planned thread can't run; skip the rest of this run.
      plan_run_++;
      plan_used_ = 0;
    }
  }
  plan_cap_ = 0;
  // Stack buffer: this runs once per turn, and a heap-backed vector here
  // dominated the whole interpreter at short quanta. threads_.size() <= 256
  // is enforced in execute().
  std::uint8_t runnable[256];
  std::size_t n = 0;
  for (std::size_t t = 0; t < threads_.size(); ++t) {
    if (threads_[t].runnable()) runnable[n++] = static_cast<std::uint8_t>(t);
  }
  if (n == 0) return -1;
  return runnable[sched_rng_.next_below(n)];
}

// Fleet-wide interpreter telemetry. Only deterministic sums go here (the
// sharded differential suites pin counter snapshots byte-identical across
// worker counts); predecode cache hit rates are schedule-dependent and stay
// in PredecodeCacheStats.
struct VmMetrics {
  obs::Counter& instrs =
      obs::MetricsRegistry::global().counter("minivm.instrs_executed_total");
  obs::Counter& fused =
      obs::MetricsRegistry::global().counter("minivm.fused_dispatches_total");

  static VmMetrics& get() {
    static VmMetrics m;
    return m;
  }
};

ExecResult Machine::run() {
  while (!done_) {
    const int picked = pick_next_thread();
    if (picked < 0) {
      // No runnable thread. All halted: OK. Otherwise threads are blocked
      // with no possible wake-up: resource deadlock (even without a
      // wait-for cycle, e.g. owner halted while holding).
      bool any_blocked = false;
      for (const auto& th : threads_) {
        if (th.blocked_on) any_blocked = true;
      }
      outcome_ = any_blocked ? Outcome::kDeadlock : Outcome::kOk;
      done_ = true;
      break;
    }
    const std::uint8_t t = static_cast<std::uint8_t>(picked);
    // Single thread + no steering plan: every turn would re-pick thread 0
    // and the schedule summary is not recorded, so run unbounded turns. The
    // quantum only feeds the turn budget (`left`), which the step limit
    // already caps, and the kYield handler refreshes in place.
    if (threads_.size() == 1 && cfg_.schedule_plan == nullptr) {
      run_quantum(t, kUnboundedQuantum);
    } else {
      run_quantum(t, plan_cap_ > 0 ? plan_cap_ : cfg_.quantum);
    }
  }

  ExecResult result;
  Trace& tr = result.trace;
  tr.program = p_.id;
  tr.outcome = outcome_;
  tr.crash = crash_info_;
  tr.granularity = cfg_.granularity;
  tr.branch_bits = std::move(bits_);
  tr.schedule = std::move(schedule_);
  tr.steps = steps_;
  tr.patched = fix_intervened_;
  tr.syscalls = std::move(syscalls_);
  // Lock events ride along at full granularity, or as part of the "crash
  // report" whenever the run deadlocked. For deadlocks the blocked requests
  // (the wait-for cycle) are appended as pseudo-acquire events so the hive
  // can reconstruct the full lock-order cycle from the trace alone.
  if (cfg_.granularity == Granularity::kFull ||
      outcome_ == Outcome::kDeadlock) {
    tr.lock_events = std::move(lock_events_);
    if (outcome_ == Outcome::kDeadlock) {
      tr.lock_events.insert(tr.lock_events.end(), deadlock_cycle_.begin(),
                            deadlock_cycle_.end());
    }
  }
  result.outputs = std::move(outputs_);
  result.branch_events = std::move(branch_events_);
  result.deadlock_cycle = std::move(deadlock_cycle_);
  result.fix_intervened = fix_intervened_;
  if (obs::enabled()) {
    auto& m = VmMetrics::get();
    m.instrs.add(steps_);
    m.fused.add(fused_dispatches_);
  }
  return result;
}

}  // namespace

const EnvModel& default_env() {
  static const EnvModel kEnv;
  return kEnv;
}

ExecResult execute(const Program& program, const ExecConfig& config) {
  SB_CHECK(program.validate());
  SB_CHECK(program.num_threads() <= 256);
  SB_SPAN("minivm.execute");
  Machine m(program, config);
  return m.run();
}

}  // namespace softborg
