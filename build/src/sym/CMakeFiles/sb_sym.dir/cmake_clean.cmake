file(REMOVE_RECURSE
  "CMakeFiles/sb_sym.dir/cnf.cpp.o"
  "CMakeFiles/sb_sym.dir/cnf.cpp.o.d"
  "CMakeFiles/sb_sym.dir/csolver.cpp.o"
  "CMakeFiles/sb_sym.dir/csolver.cpp.o.d"
  "CMakeFiles/sb_sym.dir/executor.cpp.o"
  "CMakeFiles/sb_sym.dir/executor.cpp.o.d"
  "CMakeFiles/sb_sym.dir/expr.cpp.o"
  "CMakeFiles/sb_sym.dir/expr.cpp.o.d"
  "CMakeFiles/sb_sym.dir/portfolio.cpp.o"
  "CMakeFiles/sb_sym.dir/portfolio.cpp.o.d"
  "CMakeFiles/sb_sym.dir/sat.cpp.o"
  "CMakeFiles/sb_sym.dir/sat.cpp.o.d"
  "libsb_sym.a"
  "libsb_sym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
