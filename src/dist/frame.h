// Length-prefixed framing for the distributed hive's socket links.
//
// A socket delivers a byte stream; the hive speaks discrete messages (the
// v2 trace wire, credit grants, control frames). Each frame is a fixed
// 16-byte header followed by the payload:
//
//   [0..3]   magic "SBD1"
//   [4]      format version (kFrameVersion)
//   [5]      message type (pod/protocol.h MsgType, must fit a byte)
//   [6..7]   credit grant, u16 LE — the credit-based flow-control window
//            travels in the header, so grants piggyback on any frame and a
//            bare grant is a header-only frame
//   [8..11]  payload length, u32 LE, at most kMaxFramePayload
//   [12..15] payload checksum, u32 LE (FNV-1a 64 folded to 32 bits)
//
// FrameDecoder is incremental and hostile-input safe (the hive must survive
// corrupt or malicious peers): every header is fully validated before one
// byte of payload is buffered, so a flipped length bit can never drive an
// allocation beyond kMaxFramePayload; any malformed header or checksum
// mismatch latches the decoder into a failed state (the connection is
// poisoned — drop it, never resynchronize mid-stream). Truncation is not an
// error: a partial frame simply waits for more bytes. tests/dist_frame_test
// fuzzes all of this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/varint.h"

namespace softborg::dist {

inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 16;
// Generous for trace wires (typically well under a KiB) while still small
// enough that a hostile length field cannot balloon memory.
inline constexpr std::size_t kMaxFramePayload = 8u << 20;

struct Frame {
  std::uint32_t type = 0;
  std::uint32_t credit = 0;
  Bytes payload;
};

// Appends one encoded frame to `out`.
void encode_frame(Bytes& out, std::uint32_t type, std::uint32_t credit,
                  const Bytes& payload);

class FrameDecoder {
 public:
  // Appends raw stream bytes. No-op once failed.
  void feed(const std::uint8_t* data, std::size_t n);

  // Pops the next complete frame, or nullopt (partial input or failed).
  std::optional<Frame> next();

  // True once the stream is unrecoverable (bad magic/version/length/type or
  // a payload checksum mismatch).
  bool failed() const { return failed_; }

  // Bytes currently buffered — bounded by kFrameHeaderSize + the validated
  // payload length of the frame in progress.
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  Bytes buf_;
  std::size_t consumed_ = 0;  // prefix already handed out as frames
  bool failed_ = false;
};

}  // namespace softborg::dist
