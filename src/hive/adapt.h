// Adaptive control plane: telemetry-driven portfolio scheduling (paper §4,
// ROADMAP item 3 — "close the portfolio loop").
//
// The paper allocates worker nodes like capital across equities: each
// top-level subtree has an observed return (paths closed per unit of work)
// and a risk (cost variance), and idle capacity goes to the best
// risk-adjusted return, with an optimism bonus for the unexplored. Until
// this PR that rule lived only inside one cooperative-exploration run; the
// telemetry layer (PR 5) measures exactly the returns it needs — new paths
// per directive, replay-recycling rate, solver-cache tier hits, frontier
// sizes — but nothing fed them back.
//
// This module closes the loop with two pieces:
//
//  * YieldLedger — the fleet's memory of where work has paid off. It is fed
//    ONLY at serial publication barriers (end of World::step_day, the
//    ShardedHive pump barrier, the coop-run epilogue), so pipeline hot paths
//    carry no new cost and ledger state is a pure function of the
//    deterministic stats structs — byte-identical across `pump_threads` and
//    proof worker counts, and serializable through the PR 7 store so a
//    resumed run keeps its learned allocation.
//
//  * AdaptivePlanner — the paper's allocation rule over ledger estimates:
//    score = (ewma_return + optimism/√(1+n)) / (1 + risk_aversion·relative
//    risk), shares by deterministic largest-remainder apportionment.
//
// Consumers (all gated by AdaptConfig::static_plan, the escape hatch that
// preserves the historical static behaviour bit for bit):
//   - World::step_day rebalances per-program guidance budgets, the daily
//     proof-attempt slice, and cooperative-exploration worker investment;
//   - run_cooperative_exploration seeds its portfolio equity estimates from
//     the ledger instead of starting cold every run, and writes observed
//     subtree costs back;
//   - ShardedHive scales per-shard guidance budgets by measured pump load
//     (hot shards shed planning work to cold ones).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/state_wire.h"
#include "hive/hive.h"
#include "obs/registry.h"

namespace softborg {

struct AdaptConfig {
  // Escape hatch: when true every consumer keeps the historical static
  // schedule (uniform per-program guidance, rotating proof slice, cold-start
  // coop portfolio). The ledger still observes — turning adaptation on
  // mid-deployment starts from warm estimates — but allocation never reads
  // it, so runs are byte-identical to the pre-refactor pipeline.
  bool static_plan = true;
  // EWMA weight of the newest per-day observation (return and risk alike).
  double ewma_alpha = 0.35;
  // Optimism bonus for under-observed targets: added as optimism/√(1+n), so
  // unexplored programs are speculatively funded and the bonus decays as
  // evidence accumulates (the paper's speculation/diversification term).
  double optimism = 2.0;
  // Weight of the relative risk term in the score denominator; 0 ranks by
  // raw optimistic return.
  double risk_aversion = 0.5;
};

// Per-target exponentially-weighted return/risk estimates plus the raw
// baselines needed to turn cumulative stats into per-day deltas. All state
// is deterministic and serializable; doubles round-trip as IEEE bit
// patterns (snapshot resume must reproduce allocation bit for bit).
class YieldLedger {
 public:
  explicit YieldLedger(AdaptConfig config = {}) : config_(config) {}

  const AdaptConfig& config() const { return config_; }

  struct Estimate {
    double ret = 0.0;        // EWMA of new paths closed per unit of work
    double risk = 0.0;       // EWMA absolute deviation of the return
    double opportunity = 0;  // latest open-frontier count (remaining upside)
    std::uint64_t observations = 0;
    bool proven = false;     // program currently holds a valid certificate
  };

  // --- per-program yield (fed once per day at the step_day barrier) --------
  // Charge `units` of invested work (directives granted, proof-attempt
  // slots, coop workers) to `program` for the current day; consumed by the
  // next observe_program call when it computes the day's return.
  void note_work(ProgramId program, std::uint64_t units);

  // Folds one day of a program's outcomes into its estimate: the return is
  // (total_paths - last seen) / max(work noted, 1). Opportunity and proof
  // status are replaced, not averaged. The first observation only baselines.
  void observe_program(ProgramId program, std::size_t total_paths,
                       std::size_t open_frontiers, bool has_valid_proof);

  // Null when the program was never observed.
  const Estimate* estimate(ProgramId program) const;

  // --- per-subtree (coop equity) estimates ---------------------------------
  // Key = first decision of the subtree, packed (site << 1) | taken.
  static std::uint64_t equity_key(std::uint32_t site, bool taken) {
    return (static_cast<std::uint64_t>(site) << 1) | (taken ? 1 : 0);
  }
  // EWMA-blend `mean_unit_cost` (weighted by the number of completed units)
  // into the stored per-subtree cost estimate.
  void observe_equity(ProgramId program, std::uint64_t key,
                      double mean_unit_cost, std::uint64_t units);
  struct EquityEstimate {
    double mean_cost = 0.0;
    double dev = 0.0;  // EWMA absolute deviation
    std::uint64_t units = 0;
  };
  const EquityEstimate* equity(ProgramId program, std::uint64_t key) const;

  // --- shard load ----------------------------------------------------------
  // EWMA of per-shard pump wall seconds (fed after the pump barrier; wall
  // time is telemetry, so this estimate — unlike everything above — is not
  // deterministic across hosts; consumers use it only for load shedding).
  void observe_shard_pump(std::size_t shard, double seconds);
  double shard_load(std::size_t shard) const;
  std::size_t num_shards_seen() const { return shard_load_.size(); }

  // --- fleet-level recycling signals ---------------------------------------
  // Deltas of the hive's serial pipeline/proof stats (the same structs the
  // obs layer publishes from; baselines are kept internally). Updates the
  // fleet-wide replay- and solver-recycling EWMAs. These are ADVISORY
  // telemetry, like shard loads: the replay cache is deliberately ephemeral
  // (a resumed hive re-replays cold), so the post-resume hit/miss stream —
  // and therefore this EWMA — differs from an uninterrupted run's. The
  // allocation rule never reads them; only the program/equity estimates
  // (planning_state_equals) carry the bit-identical resume guarantee.
  void observe_hive(const IngestStats& ingest,
                    const Hive::ProofClosureStats& proof);
  // Same signals read from a registry delta snapshot instead — for
  // operators driving a ledger from exported telemetry. Counter names are
  // the obs layer's (hive.replay.cache_{hits,misses}_total, solver.*).
  void ingest_metrics_delta(const obs::MetricsSnapshot& delta);
  double replay_recycle_rate() const { return replay_recycle_rate_; }
  double solver_recycle_rate() const { return solver_recycle_rate_; }

  // --- persistence (src/store) --------------------------------------------
  void save_state(Bytes& out) const;
  bool load_state(StateReader& r);
  // Full-state byte equality (estimates AND advisory telemetry).
  bool state_equals(const YieldLedger& other) const;
  // Byte equality of the allocation inputs alone — per-program and
  // per-equity estimates. This is the resume differential's surface: every
  // AdaptivePlanner decision is a pure function of it, so equal planning
  // state means equal schedules, while the advisory signals (recycle-rate
  // EWMAs, shard loads) may differ across a kill/resume without any
  // behavioral divergence.
  bool planning_state_equals(const YieldLedger& other) const;

 private:
  struct ProgramState {
    Estimate est;
    std::uint64_t last_total_paths = 0;
    std::uint64_t work_pending = 0;
    bool baselined = false;
  };

  void ewma(double& acc, double obs) {
    acc += config_.ewma_alpha * (obs - acc);
  }
  void save_planning_state(Bytes& out) const;

  AdaptConfig config_;
  // Ordered maps: serialization iterates them directly and stays
  // deterministic regardless of insertion history.
  std::map<std::uint64_t, ProgramState> programs_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, EquityEstimate> equities_;
  std::vector<double> shard_load_;
  double replay_recycle_rate_ = 0.0;
  double solver_recycle_rate_ = 0.0;
  std::uint64_t replay_hits_base_ = 0, replay_misses_base_ = 0;
  std::uint64_t solver_calls_base_ = 0, solver_recycled_base_ = 0;
};

// The allocation rule. Stateless apart from its config: every decision is a
// pure function of (budget, targets, ledger), so identical inputs give
// identical schedules on every host and after every resume.
class AdaptivePlanner {
 public:
  explicit AdaptivePlanner(AdaptConfig config = {}) : config_(config) {}

  // Risk-adjusted optimistic return of one target. Saturated targets (tree
  // complete AND proof standing) score 0; unexplored ones get the full
  // optimism bonus.
  double score(const YieldLedger& ledger, ProgramId program) const;

  // Splits `budget` indivisible units across `targets` proportionally to
  // score, by largest-remainder apportionment (deterministic: remainder
  // ties break on the lower index). All-zero scores degrade to the uniform
  // static split. Returns one share per target; shares sum to `budget`
  // unless every target scores 0 opportunity-free (then all-uniform still
  // sums to budget).
  std::vector<std::size_t> allocate(std::size_t budget,
                                    const std::vector<ProgramId>& targets,
                                    const YieldLedger& ledger) const;

  // Target indices ordered by descending score (ties: lower index first) —
  // the pick order for indivisible slots (the daily proof slice, coop
  // program picks).
  std::vector<std::size_t> rank(const std::vector<ProgramId>& targets,
                                const YieldLedger& ledger) const;

  // Guidance-budget multiplier for one shard: mean pump load over the
  // shard's load, clamped to [0.5, 2] — hot shards shed planning work to
  // cold ones without any shard going dark. 1.0 when the ledger has no load
  // samples yet.
  double shard_scale(const YieldLedger& ledger, std::size_t shard) const;

 private:
  AdaptConfig config_;
};

}  // namespace softborg
