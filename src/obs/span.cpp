#include "obs/span.h"

#include <string>

namespace softborg::obs {

namespace detail {
std::atomic<bool> g_spans_enabled{false};
}

void set_spans_enabled(bool on) {
  detail::g_spans_enabled.store(on, std::memory_order_relaxed);
}

SpanSite::SpanSite(const char* name)
    : hist_(&MetricsRegistry::global().histogram(std::string(name) + ".us")),
      // SB_SPAN guarantees `name` is a string literal (immortal), which is
      // exactly what the recorder's name table requires.
      name_id_(Recorder::global().intern_name(name)) {}

}  // namespace softborg::obs
