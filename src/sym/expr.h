// Symbolic expressions over MiniVM values.
//
// Variables are program inputs (Input i) and syscall results (Unknown j, the
// j-th syscall of the run). Constant folding happens at construction, so an
// expression with no variables is always a kConst node — the symbolic
// executor uses this to tell deterministic branches from input-dependent
// ones, mirroring the interpreter's taint bit exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minivm/program.h"

namespace softborg {

enum class BinOp : std::uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,  // only constructed under a divisor!=0 path constraint
  kMod,
  kLt,
  kLe,
  kEq,
  kNe,
};

const char* binop_name(BinOp op);

struct ExprNode;
using Expr = std::shared_ptr<const ExprNode>;

enum class ExprKind : std::uint8_t { kConst, kInput, kUnknown, kBin };

struct ExprNode {
  ExprKind kind = ExprKind::kConst;
  Value cval = 0;           // kConst
  std::uint32_t index = 0;  // kInput: input slot; kUnknown: syscall ordinal
  BinOp op = BinOp::kAdd;   // kBin
  Expr lhs, rhs;            // kBin
};

// Constructors (fold constants).
Expr make_const(Value v);
Expr make_input(std::uint32_t slot);
Expr make_unknown(std::uint32_t ordinal);
Expr make_bin(BinOp op, Expr lhs, Expr rhs);

inline bool is_const(const Expr& e) { return e->kind == ExprKind::kConst; }

// Wrapping semantics identical to the interpreter. Division by zero in a
// fully concrete fold is the caller's bug (checked).
Value eval_binop(BinOp op, Value a, Value b);

// Evaluates under a full assignment. Out-of-range variables read as 0.
Value eval_expr(const Expr& e, const std::vector<Value>& inputs,
                const std::vector<Value>& unknowns);

// Highest variable indices used (for sizing assignments); -1 if none.
void max_indices(const Expr& e, int* max_input, int* max_unknown);

std::string expr_to_string(const Expr& e);

// One branch-condition literal of a path constraint: `cond` must evaluate
// nonzero iff `expected`.
struct Literal {
  Expr cond;
  bool expected = true;
};

using PathConstraint = std::vector<Literal>;

std::string path_to_string(const PathConstraint& pc);

}  // namespace softborg
