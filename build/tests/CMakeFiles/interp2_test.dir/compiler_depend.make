# Empty compiler generated dependencies file for interp2_test.
# This may be replaced when dependencies are built.
