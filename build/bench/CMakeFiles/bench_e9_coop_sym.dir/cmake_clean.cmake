file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_coop_sym.dir/bench_e9_coop_sym.cpp.o"
  "CMakeFiles/bench_e9_coop_sym.dir/bench_e9_coop_sym.cpp.o.d"
  "bench_e9_coop_sym"
  "bench_e9_coop_sym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_coop_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
