// Benchmark corpus: MiniVM programs with realistic structure and planted
// bugs, used by the examples, the test suite, and every experiment.
//
// Each entry documents its input domain (what the simulated user population
// draws from) and which bug classes it plants, so experiments can check
// ground truth (did the hive find the planted deadlock? did the fix stop
// the planted crash?).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minivm/program.h"

namespace softborg {

struct InputDomain {
  Value lo = 0;
  Value hi = 0;

  Value width() const { return hi - lo + 1; }
};

struct CorpusEntry {
  Program program;
  std::string description;
  std::vector<InputDomain> domains;  // one per input slot

  // Ground truth about planted bugs.
  bool has_crash_bug = false;
  bool has_deadlock_bug = false;
  bool has_schedule_bug = false;  // atomicity violation: diagnosable, not
                                  // automatically fixable (repair-lab case)

  // For relaxed-consistency (S2E-style) experiments: entry pc of the
  // program's "unit of interest" and the registers that form its interface.
  std::uint32_t unit_entry_pc = 0;
  std::vector<Reg> unit_params;
};

// A small single-threaded "parser": crashes (div-by-zero) for format==13
// and size>=200. Inputs: format [0,63], size [0,255].
CorpusEntry make_media_parser();

// Two-thread transfer with an input-dependent AB-BA deadlock: thread 1
// acquires in reverse order when amount > 100. Input: amount [0,200].
CorpusEntry make_bank_transfer();

// Read-process loop over syscall 0 (read); crashes on a zero-length read
// (div-by-zero computing an average). Inputs: chunk [1,64], rounds [1,8].
CorpusEntry make_file_copier();

// Needle-in-a-haystack: aborts iff key == 4242. Input: key [0,9999].
CorpusEntry make_magic_lookup();

// Pure coverage program: k independent binary options, 2^k feasible paths,
// no bugs. Input: k slots, each [0,1].
CorpusEntry make_config_space(unsigned k);

// Program with an internal "unit" guarded by the caller: main clamps its
// argument into [0,99] before the unit runs, while the unit defensively
// aborts on negative values — a path that is infeasible in-system but
// appears under relaxed (unit-level) consistency.
CorpusEntry make_worker_pool();

// Two threads increment a shared counter without locking; a final assert
// on the total fails under unlucky interleavings (atomicity violation).
CorpusEntry make_race_counter(unsigned increments_per_thread = 4);

// Skewed workload for cooperative-exploration experiments: k binary options
// (2^k feasible paths) followed by a processing loop whose trip count is
// `heavy_iterations` when option 0 is set and 1 otherwise — one top-level
// subtree is ~heavy_iterations x more expensive to explore than the other.
// Bug-free.
CorpusEntry make_skewed_workload(unsigned k, unsigned heavy_iterations = 24);

// Dining philosophers with `n` philosophers (threads) and `n` forks
// (locks): every philosopher picks up the left fork then the right one —
// the classic length-n lock-order cycle. Deadlocks under some schedules.
CorpusEntry make_dining_philosophers(unsigned n = 3);

// Retry storm: retries a syscall until it succeeds, but when attempts
// exceed a threshold AND the input "strict mode" flag is set, the
// back-off computation underflows and the loop never terminates — an
// input+environment dependent hang (detected via user-kill inference).
CorpusEntry make_retry_storm();

// The standard mixed corpus used by fleet experiments.
std::vector<CorpusEntry> standard_corpus();

}  // namespace softborg
