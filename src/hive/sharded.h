// Distributed hive deployment (paper §3: "the hive may be physically
// centralized (a cluster behind a web service), entirely distributed
// (running on end-users' machines), or hybrid").
//
// ShardedHive runs N independent hive shards behind the simulated network.
// Each program is owned by exactly one shard (hash routing), so a shard
// holds the complete knowledge of its programs — trees merge locally with
// no cross-shard coordination, mirroring how the single-hive pipeline
// works. An ingress endpoint routes encoded traces to the owning shard's
// endpoint; analysis (process / guidance / proofs) fans out per shard.
// Because routing is per program, a shard can drain its inbox through
// Hive::ingest_batch() — per-program grouping and replay memoization apply
// within each shard unchanged.
//
// pump() is shard-parallel: the SimNet drain/route step runs on the caller
// (SimNet is single-threaded state), then the per-shard batches fan out on
// a shared thread pool, one worker per shard. Shards own disjoint Hive
// instances — and therefore disjoint ExecTrees, replay caches, and stats —
// so one-worker-per-shard needs no locking anywhere. Routing peeks the wire
// header with summarize_trace_wire (one allocation-free validation pass)
// instead of fully decoding: the route step is O(validate), and the vector
// payloads are only materialized inside the owning shard's pipeline.
//
// Shard state is portable: `export_trees` serializes every tree via
// tree_codec, so shards can be migrated or their knowledge merged into a
// centralized hive (the hybrid deployment).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "hive/hive.h"
#include "net/transport.h"

namespace softborg {

class YieldLedger;
class AdaptivePlanner;

struct ShardedHiveConfig {
  HiveConfig hive;
  // Worker threads for the shard-parallel pump; <= 1 pumps shards inline on
  // the caller (identical results — see tests/sharded_pump_test.cpp). The
  // pool is sized at min(pump_threads, num_shards): more workers than
  // shards could never be busy. Unlike ingest_threads this is deliberately
  // not capped at the hardware concurrency, so the differential and TSan
  // tests exercise real cross-shard interleavings even on small hosts.
  std::size_t pump_threads = 0;
  // When true, pump() reproduces the pre-optimization pump: routing decodes
  // the full trace instead of peeking the header, and shards ingest
  // message-by-message through the serial pipeline (Hive::ingest_bytes)
  // instead of ingest_batch. Routing decisions and results are bit-identical
  // to the optimized pump (differential tests pin this); only the work done
  // differs. Kept as the baseline leg of BM_ShardedPump.
  bool serial_pump = false;
};

class ShardedHive {
 public:
  // Creates `num_shards` hives, each with an endpoint on `net`, plus one
  // ingress endpoint that routes upstream traffic. `net` is any Transport —
  // the deterministic SimNet in tests and simulations; src/dist carries the
  // same traffic across processes.
  ShardedHive(const std::vector<CorpusEntry>* corpus, std::size_t num_shards,
              Transport& net, ShardedHiveConfig config);
  ShardedHive(const std::vector<CorpusEntry>* corpus, std::size_t num_shards,
              Transport& net, HiveConfig config = {})
      : ShardedHive(corpus, num_shards, net,
                    ShardedHiveConfig{.hive = config}) {}

  Endpoint ingress() const { return ingress_; }
  std::size_t num_shards() const { return shards_.size(); }

  // Which shard owns a program (stable hash routing).
  std::size_t shard_index(ProgramId program) const;
  Hive& shard(std::size_t index) { return *shards_[index].hive; }
  const Hive& shard(std::size_t index) const { return *shards_[index].hive; }
  Hive& shard_for(ProgramId program) {
    return *shards_[shard_index(program)].hive;
  }

  // Drains the ingress (routing traces onward) and every shard endpoint
  // (ingesting what arrived, shard-parallel on the pump pool). Call after
  // net steps.
  void pump(Transport& net);

  // Fans analysis out to every shard and concatenates approved fixes.
  std::vector<FixCandidate> process_all();
  // One pass over the corpus: every program is planned exactly once, by the
  // shard that owns it, so the result carries no duplicate directives and
  // covers the same programs as a single unsharded hive with equal trees.
  std::vector<GuidanceDirective> plan_guidance_all(std::size_t per_program);
  // Load-shedding variant: each program's budget is `per_program` scaled by
  // its owning shard's AdaptivePlanner::shard_scale — hot shards (by the
  // pump latencies the attached ledger has observed) shed planning work to
  // cold ones, clamped so no shard doubles or goes dark. Falls back to the
  // uniform overload when no ledger is attached. Wall-clock latencies are
  // nondeterministic telemetry, so this overload is for deployments, not
  // differential tests.
  std::vector<GuidanceDirective> plan_guidance_all(
      std::size_t per_program, const AdaptivePlanner& planner);
  // Proof gap closure for the whole corpus, shard-parallel on the pump pool:
  // each shard runs Hive::attempt_proofs_for over the slice of the corpus it
  // owns (corpus order within the slice), then the certificates reassemble
  // in corpus order — so the result is positionally identical to a single
  // unsharded hive's attempt_proofs_all over equal trees, independent of
  // pump_threads. Shards own disjoint Hives (trees, solver caches, proof
  // engines with disjoint id blocks), so the fan-out needs no locks.
  std::vector<ProofCertificate> attempt_proofs_all(Property property);

  // Aggregated statistics across shards. aggregate_ingest_stats() sums the
  // per-shard pipeline telemetry (stage timings are CPU-seconds summed over
  // shards; the derived cache_hit_rate() is the fleet-wide rate). Per-shard
  // breakdowns stay available via shard(i).ingest_stats().
  HiveStats aggregate_stats() const;
  IngestStats aggregate_ingest_stats() const;
  std::size_t total_bugs() const;

  // Serialized trees of one shard, keyed by program id — the migration /
  // centralization payload.
  std::map<std::uint64_t, Bytes> export_trees(std::size_t index);

  // Statistics about routing: traces forwarded to a shard, wires that
  // failed header validation, and ingress messages of a non-trace type
  // (which the router cannot own and would otherwise vanish silently).
  std::uint64_t routed() const { return routed_; }
  std::uint64_t routing_failures() const { return routing_failures_; }
  std::uint64_t unroutable() const { return unroutable_; }

  // Durable-store serialization: per-shard hive state + trees + solver
  // cache (in shard order) plus the router tallies. load_state expects a
  // ShardedHive constructed with the same corpus, shard count, and config;
  // a snapshot with a different shard count is rejected (hash routing would
  // send restored programs to the wrong shards). False = corrupt; discard.
  void save_state(Bytes& out) const;
  bool load_state(StateReader& r);

  // Attaches a yield ledger (hive/adapt.h, not owned; null detaches). Each
  // pump() then feeds the ledger one wall-clock ingest latency per shard,
  // recorded after the shard-parallel barrier on the caller's thread — the
  // ingest results themselves stay byte-identical, the ledger only gains
  // the load signal plan_guidance_all(…, planner) sheds by.
  void set_yield_ledger(YieldLedger* ledger) { yield_ = ledger; }

 private:
  struct Shard {
    std::unique_ptr<Hive> hive;
    Endpoint endpoint = 0;
  };

  // Null when the effective worker count is <= 1; lazily created otherwise.
  ThreadPool* pump_pool();

  const std::vector<CorpusEntry>* corpus_;
  ShardedHiveConfig config_;
  std::vector<Shard> shards_;
  std::unique_ptr<ThreadPool> pump_pool_;
  Endpoint ingress_ = 0;
  YieldLedger* yield_ = nullptr;
  std::uint64_t routed_ = 0;
  std::uint64_t routing_failures_ = 0;
  std::uint64_t unroutable_ = 0;
};

}  // namespace softborg
