#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace softborg {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_io_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_at(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[2048];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(g_io_mu);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), buf);
}

}  // namespace softborg
