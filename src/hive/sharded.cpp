#include "hive/sharded.h"

#include "common/check.h"
#include "pod/protocol.h"
#include "trace/codec.h"
#include "tree/tree_codec.h"

namespace softborg {

ShardedHive::ShardedHive(const std::vector<CorpusEntry>* corpus,
                         std::size_t num_shards, SimNet& net,
                         HiveConfig config)
    : corpus_(corpus) {
  SB_CHECK(corpus_ != nullptr);
  SB_CHECK(num_shards >= 1);
  ingress_ = net.add_endpoint();
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    Shard shard;
    // Fixer ids must not collide across shards.
    HiveConfig shard_config = config;
    shard_config.fixer.next_fix_id = 1 + i * 1'000'000;
    shard_config.seed = config.seed ^ (i * 0x9e3779b97f4a7c15ULL);
    shard.hive = std::make_unique<Hive>(corpus_, shard_config);
    shard.endpoint = net.add_endpoint();
    shards_.push_back(std::move(shard));
  }
}

std::size_t ShardedHive::shard_index(ProgramId program) const {
  // SplitMix avalanche for a stable, well-spread assignment.
  std::uint64_t x = program.value;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::size_t>(x % shards_.size());
}

void ShardedHive::pump(SimNet& net) {
  // Route ingress traffic to the owning shard. Routing only needs the
  // program id, so decode once here (a real deployment would peek the
  // header; our codec is cheap enough to decode outright).
  for (const auto& msg : net.drain(ingress_)) {
    if (msg.type != kMsgTrace) continue;
    const auto trace = decode_trace(msg.payload);
    if (!trace) {
      routing_failures_++;
      continue;
    }
    const std::size_t owner = shard_index(trace->program);
    net.send(ingress_, shards_[owner].endpoint, kMsgTrace, msg.payload);
    routed_++;
  }
  // Shards ingest whatever has arrived, one batch per shard: the staged
  // pipeline parallelizes decode+replay when the config enables workers.
  std::vector<Bytes> batch;
  for (auto& shard : shards_) {
    batch.clear();
    auto messages = net.drain(shard.endpoint);
    for (auto& msg : messages) {
      if (msg.type == kMsgTrace) batch.push_back(std::move(msg.payload));
    }
    if (!batch.empty()) shard.hive->ingest_batch(batch);
  }
}

std::vector<FixCandidate> ShardedHive::process_all() {
  std::vector<FixCandidate> all;
  for (auto& shard : shards_) {
    auto fixes = shard.hive->process();
    all.insert(all.end(), std::make_move_iterator(fixes.begin()),
               std::make_move_iterator(fixes.end()));
  }
  return all;
}

std::vector<GuidanceDirective> ShardedHive::plan_guidance_all(
    std::size_t per_program) {
  std::vector<GuidanceDirective> all;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    // Each shard only plans for the programs it owns.
    for (const auto& entry : *corpus_) {
      if (shard_index(entry.program.id) != i) continue;
      auto directives = shards_[i].hive->plan_guidance(per_program);
      for (auto& d : directives) {
        if (shard_index(d.program) == i) all.push_back(std::move(d));
      }
      break;  // plan_guidance already covers all programs of the corpus
    }
  }
  return all;
}

HiveStats ShardedHive::aggregate_stats() const {
  HiveStats total;
  for (const auto& shard : shards_) {
    const HiveStats& s = shard.hive->stats();
    total.traces_ingested += s.traces_ingested;
    total.duplicates_dropped += s.duplicates_dropped;
    total.decode_failures += s.decode_failures;
    total.replay_failures += s.replay_failures;
    total.patched_traces_skipped += s.patched_traces_skipped;
    total.gated_traces += s.gated_traces;
    total.paths_merged += s.paths_merged;
    total.new_paths += s.new_paths;
    total.bugs_found += s.bugs_found;
    total.fixes_approved += s.fixes_approved;
    total.repair_lab_entries += s.repair_lab_entries;
    total.proofs_revoked += s.proofs_revoked;
    total.fixed_traces_seen += s.fixed_traces_seen;
    total.fix_recurrences += s.fix_recurrences;
    total.bugs_reopened += s.bugs_reopened;
  }
  return total;
}

std::size_t ShardedHive::total_bugs() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard.hive->bug_tracker().all().size();
  }
  return n;
}

std::map<std::uint64_t, Bytes> ShardedHive::export_trees(std::size_t index) {
  SB_CHECK(index < shards_.size());
  std::map<std::uint64_t, Bytes> out;
  for (const auto& entry : *corpus_) {
    if (shard_index(entry.program.id) != index) continue;
    if (ExecTree* tree = shards_[index].hive->tree(entry.program.id)) {
      out[entry.program.id.value] = encode_tree(*tree);
    }
  }
  return out;
}

}  // namespace softborg
