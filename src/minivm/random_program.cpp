#include "minivm/random_program.h"

#include "common/rng.h"
#include "minivm/builder.h"

namespace softborg {

namespace {

class Generator {
 public:
  Generator(std::uint64_t seed, const RandomProgramOptions& options)
      : rng_(seed),
        options_(options),
        builder_("random_" + std::to_string(seed), 100'000 + seed) {}

  CorpusEntry generate() {
    // A small register file: inputs first, then scratch.
    for (unsigned i = 0; i < options_.num_inputs; ++i) {
      const Reg r = builder_.reg();
      builder_.input(r, builder_.input_slot());
      regs_.push_back(r);
    }
    for (unsigned i = 0; i < 3; ++i) {
      const Reg r = builder_.reg();
      builder_.const_(r, rng_.next_in(0, 20));
      regs_.push_back(r);
    }
    block(0);
    const Reg out = any_reg();
    builder_.output(out);
    builder_.halt();

    CorpusEntry entry;
    entry.program = builder_.build();
    entry.description = "randomly generated program";
    entry.domains.assign(options_.num_inputs, InputDomain{0, 63});
    return entry;
  }

 private:
  Reg any_reg() { return regs_[rng_.next_below(regs_.size())]; }

  void statement(unsigned depth) {
    const double roll = rng_.next_double();
    double acc = 0.0;
    if (depth < options_.max_depth && roll < (acc += options_.p_branch)) {
      if_else(depth);
      return;
    }
    if (depth < options_.max_depth && roll < (acc += options_.p_loop)) {
      loop(depth);
      return;
    }
    if (roll < (acc += options_.p_div)) {
      division();
      return;
    }
    if (roll < (acc += options_.p_assert)) {
      assertion();
      return;
    }
    if (roll < (acc += options_.p_syscall)) {
      const Reg dst = any_reg();
      builder_.syscall(dst, static_cast<std::uint16_t>(rng_.next_below(4)),
                       any_reg());
      return;
    }
    alu();
  }

  void alu() {
    const Reg d = any_reg(), a = any_reg(), c = any_reg();
    switch (rng_.next_below(5)) {
      case 0: builder_.add(d, a, c); break;
      case 1: builder_.sub(d, a, c); break;
      case 2: builder_.mul(d, a, c); break;
      case 3: builder_.cmp_lt(d, a, c); break;
      default: builder_.mov(d, a); break;
    }
  }

  void division() {
    // Divide by (reg % small + offset) with offset possibly 0: zero
    // divisors are reachable but not pervasive.
    const Reg d = any_reg(), a = any_reg(), divisor = any_reg();
    builder_.mod(d, divisor, make_const_reg(rng_.next_in(2, 9)));
    // d in (-8..8); divide a by d: crashes when d == 0.
    builder_.div(d, a, d);
    (void)a;
  }

  void assertion() {
    const Reg c = any_reg(), tmp = make_scratch();
    builder_.cmp_ne(tmp, c, make_const_reg(rng_.next_in(0, 40)));
    builder_.assert_true(tmp, rng_.next_in(1, 99));
  }

  void if_else(unsigned depth) {
    const Reg cond = make_scratch();
    builder_.cmp_lt(cond, any_reg(), make_const_reg(rng_.next_in(0, 50)));
    auto then_l = builder_.label(), else_l = builder_.label(),
         join = builder_.label();
    builder_.branch_if(cond, then_l, else_l);
    builder_.bind(then_l);
    block(depth + 1);
    builder_.jump(join);
    builder_.bind(else_l);
    block(depth + 1);
    builder_.jump(join);
    builder_.bind(join);
  }

  void loop(unsigned depth) {
    // Constant trip count: termination by construction.
    const Reg i = make_scratch(), limit = make_const_reg(rng_.next_in(1, 4)),
              cond = make_scratch();
    builder_.const_(i, 0);
    auto top = builder_.here();
    auto body = builder_.label(), done = builder_.label();
    builder_.cmp_lt(cond, i, limit);
    builder_.branch_if(cond, body, done);
    builder_.bind(body);
    block(depth + 1);
    builder_.add_const(i, i, 1);
    builder_.jump(top);
    builder_.bind(done);
  }

  void block(unsigned depth) {
    const std::uint64_t n =
        options_.block_min +
        rng_.next_below(options_.block_max - options_.block_min + 1);
    for (std::uint64_t s = 0; s < n; ++s) statement(depth);
  }

  Reg make_const_reg(Value v) {
    const Reg r = builder_.reg();
    builder_.const_(r, v);
    return r;
  }

  Reg make_scratch() { return builder_.reg(); }

  Rng rng_;
  RandomProgramOptions options_;
  ProgramBuilder builder_;
  std::vector<Reg> regs_;
};

}  // namespace

CorpusEntry make_random_program(std::uint64_t seed,
                                const RandomProgramOptions& options) {
  Generator gen(seed, options);
  return gen.generate();
}

}  // namespace softborg
