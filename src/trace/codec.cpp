#include "trace/codec.h"

#include "common/check.h"
#include "obs/registry.h"

namespace softborg {

namespace {
constexpr std::uint64_t kMagic = 0x53425452;  // "SBTR"
constexpr std::uint64_t kVersion = 1;

// Hard caps so a malicious length prefix cannot balloon allocation.
constexpr std::uint64_t kMaxBits = 1u << 26;
constexpr std::uint64_t kMaxRecords = 1u << 22;

// Codec telemetry. Handles resolve once; the per-call cost is one relaxed
// enabled() load plus sharded fetch_adds (see obs/registry.h). Only the
// materializing paths count themselves: summarize_trace_wire — the
// allocation-free header peek the router and the batch pipeline run per
// wire — deliberately carries no telemetry, so peeking stays free.
struct CodecMetrics {
  obs::Counter& encodes = obs::MetricsRegistry::global().counter(
      "codec.trace.encode_total");
  obs::Counter& encode_bytes = obs::MetricsRegistry::global().counter(
      "codec.trace.encode_bytes_total");
  obs::Counter& decodes = obs::MetricsRegistry::global().counter(
      "codec.trace.decode_total");
  obs::Counter& decode_failures = obs::MetricsRegistry::global().counter(
      "codec.trace.decode_failures_total");

  static CodecMetrics& get() {
    static CodecMetrics m;
    return m;
  }
};
}  // namespace

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kCrash:
      return "crash";
    case Outcome::kDeadlock:
      return "deadlock";
    case Outcome::kHang:
      return "hang";
    case Outcome::kUserKilled:
      return "user-killed";
  }
  return "?";
}

const char* crash_kind_name(CrashKind k) {
  switch (k) {
    case CrashKind::kAssertFailure:
      return "assert-failure";
    case CrashKind::kDivByZero:
      return "div-by-zero";
    case CrashKind::kBadGlobalAccess:
      return "bad-global-access";
    case CrashKind::kExplicitAbort:
      return "explicit-abort";
  }
  return "?";
}

Bytes encode_trace(const Trace& t) {
  Bytes out;
  put_varint(out, kMagic);
  put_varint(out, kVersion);
  put_varint(out, t.id.value);
  put_varint(out, t.program.value);
  put_varint(out, t.pod.value);
  put_varint(out, static_cast<std::uint64_t>(t.outcome));
  put_varint(out, t.crash.has_value() ? 1 : 0);
  if (t.crash) {
    put_varint(out, static_cast<std::uint64_t>(t.crash->kind));
    put_varint(out, t.crash->pc);
    put_varint_signed(out, t.crash->detail);
  }
  put_varint(out, static_cast<std::uint64_t>(t.granularity));

  put_varint(out, t.branch_bits.size());
  for (auto w : t.branch_bits.words()) put_varint(out, w);

  put_varint(out, t.schedule.size());
  for (const auto& run : t.schedule) {
    put_varint(out, run.thread);
    put_varint(out, run.steps);
  }

  put_varint(out, t.lock_events.size());
  for (const auto& ev : t.lock_events) {
    put_varint(out, ev.thread);
    put_varint(out, ev.acquire ? 1 : 0);
    put_varint(out, ev.lock);
    put_varint(out, ev.pc);
    put_varint(out, ev.step);
  }

  put_varint(out, t.syscalls.size());
  for (const auto& sc : t.syscalls) {
    put_varint(out, sc.sys_id);
    put_varint(out, sc.call_index);
    put_varint_signed(out, sc.result_class);
  }

  put_varint(out, t.steps);
  put_varint(out, (t.patched ? 1u : 0u) | (t.guided ? 2u : 0u));
  put_varint(out, t.day);
  if (obs::enabled()) {
    CodecMetrics::get().encodes.add();
    CodecMetrics::get().encode_bytes.add(out.size());
  }
  return out;
}

namespace {
bool decode_trace_into_impl(Trace& t, const Bytes& bytes) {
  std::size_t pos = 0;
  auto u = [&]() -> std::optional<std::uint64_t> {
    return get_varint(bytes, pos);
  };
  auto s = [&]() -> std::optional<std::int64_t> {
    return get_varint_signed(bytes, pos);
  };

  auto magic = u();
  if (!magic || *magic != kMagic) return false;
  auto version = u();
  if (!version || *version != kVersion) return false;

  auto id = u(), prog = u(), pod = u(), outcome = u(), has_crash = u();
  if (!id || !prog || !pod || !outcome || !has_crash) return false;
  if (*outcome > static_cast<std::uint64_t>(Outcome::kUserKilled)) {
    return false;
  }
  t.id = TraceId(*id);
  t.program = ProgramId(*prog);
  t.pod = PodId(*pod);
  t.outcome = static_cast<Outcome>(*outcome);

  t.crash.reset();
  if (*has_crash == 1) {
    auto kind = u(), pc = u();
    auto detail = s();
    if (!kind || !pc || !detail) return false;
    if (*kind > static_cast<std::uint64_t>(CrashKind::kExplicitAbort)) {
      return false;
    }
    t.crash = CrashInfo{static_cast<CrashKind>(*kind),
                        static_cast<std::uint32_t>(*pc), *detail};
  } else if (*has_crash != 0) {
    return false;
  }

  auto gran = u();
  if (!gran || *gran > static_cast<std::uint64_t>(Granularity::kFull)) {
    return false;
  }
  t.granularity = static_cast<Granularity>(*gran);

  auto nbits = u();
  if (!nbits || *nbits > kMaxBits) return false;
  const std::size_t nwords = (*nbits + 63) / 64;
  std::vector<std::uint64_t> words = std::move(t.branch_bits).take_words();
  words.clear();
  words.reserve(nwords);
  for (std::size_t i = 0; i < nwords; ++i) {
    auto w = u();
    if (!w) return false;
    words.push_back(*w);
  }
  t.branch_bits = BitVec::from_words(std::move(words), *nbits);

  auto nruns = u();
  if (!nruns || *nruns > kMaxRecords) return false;
  t.schedule.clear();
  t.schedule.reserve(*nruns);
  for (std::uint64_t i = 0; i < *nruns; ++i) {
    auto thread = u(), steps = u();
    if (!thread || !steps || *thread > 0xff || *steps > 0xffffffffULL) {
      return false;
    }
    t.schedule.push_back({static_cast<std::uint8_t>(*thread),
                          static_cast<std::uint32_t>(*steps)});
  }

  auto nlocks = u();
  if (!nlocks || *nlocks > kMaxRecords) return false;
  t.lock_events.clear();
  t.lock_events.reserve(*nlocks);
  for (std::uint64_t i = 0; i < *nlocks; ++i) {
    auto thread = u(), acq = u(), lock = u(), pc = u(), step = u();
    if (!thread || !acq || !lock || !pc || !step || *thread > 0xff ||
        *acq > 1 || *lock > 0xffff || *pc > 0xffffffffULL ||
        *step > 0xffffffffULL) {
      return false;
    }
    t.lock_events.push_back({static_cast<std::uint8_t>(*thread), *acq == 1,
                             static_cast<std::uint16_t>(*lock),
                             static_cast<std::uint32_t>(*pc),
                             static_cast<std::uint32_t>(*step)});
  }

  auto nsys = u();
  if (!nsys || *nsys > kMaxRecords) return false;
  t.syscalls.clear();
  t.syscalls.reserve(*nsys);
  for (std::uint64_t i = 0; i < *nsys; ++i) {
    auto sys = u(), idx = u();
    auto cls = s();
    if (!sys || !idx || !cls || *sys > 0xffff || *idx > 0xffffffffULL ||
        *cls < -128 || *cls > 127) {
      return false;
    }
    t.syscalls.push_back({static_cast<std::uint16_t>(*sys),
                          static_cast<std::uint32_t>(*idx),
                          static_cast<std::int8_t>(*cls)});
  }

  auto steps = u(), flags = u(), day = u();
  if (!steps || !flags || !day || *flags > 3) return false;
  t.steps = *steps;
  t.patched = (*flags & 1) != 0;
  t.guided = (*flags & 2) != 0;
  t.day = *day;

  return pos == bytes.size();  // reject trailing garbage
}
}  // namespace

bool decode_trace_into(Trace& t, const Bytes& bytes) {
  const bool ok = decode_trace_into_impl(t, bytes);
  if (obs::enabled()) {
    auto& m = CodecMetrics::get();
    m.decodes.add();
    if (!ok) m.decode_failures.add();
  }
  return ok;
}

std::optional<Trace> decode_trace(const Bytes& bytes) {
  Trace t;
  if (!decode_trace_into(t, bytes)) return std::nullopt;
  return t;
}

std::optional<TraceWireSummary> summarize_trace_wire(const Bytes& bytes) {
  // Mirrors decode_trace check-for-check (the codec tests enforce the
  // equivalence), but skips all vector materialization: repeated sections
  // are validated in place. fold_replay_fields() deliberately follows the
  // wire layout, so the replay key folds during this same single walk; a
  // late validation failure just discards the partial fold.
  std::size_t pos = 0;
  auto u = [&]() -> std::optional<std::uint64_t> {
    return get_varint(bytes, pos);
  };
  auto s = [&]() -> std::optional<std::int64_t> {
    return get_varint_signed(bytes, pos);
  };
  ReplayKey k{kReplayKeySeed, kReplayCheckSeed};
  const auto fold = [&k](std::uint64_t v) { replay_fold(k, v); };

  auto magic = u();
  if (!magic || *magic != kMagic) return std::nullopt;
  auto version = u();
  if (!version || *version != kVersion) return std::nullopt;

  TraceWireSummary out;
  auto id = u(), prog = u(), pod = u(), outcome = u(), has_crash = u();
  if (!id || !prog || !pod || !outcome || !has_crash) return std::nullopt;
  if (*outcome > static_cast<std::uint64_t>(Outcome::kUserKilled)) {
    return std::nullopt;
  }
  out.id = TraceId(*id);
  out.program = ProgramId(*prog);
  out.pod = PodId(*pod);
  out.outcome = static_cast<Outcome>(*outcome);
  fold(out.program.value);
  fold(static_cast<std::uint64_t>(out.outcome));

  if (*has_crash == 1) {
    auto kind = u(), pc = u();
    auto detail = s();
    if (!kind || !pc || !detail) return std::nullopt;
    if (*kind > static_cast<std::uint64_t>(CrashKind::kExplicitAbort)) {
      return std::nullopt;
    }
    out.crash = CrashInfo{static_cast<CrashKind>(*kind),
                          static_cast<std::uint32_t>(*pc), *detail};
    fold(*kind + 1);
    fold(*pc);
    fold(static_cast<std::uint64_t>(*detail));
  } else if (*has_crash != 0) {
    return std::nullopt;
  } else {
    fold(0);
  }

  auto gran = u();
  if (!gran || *gran > static_cast<std::uint64_t>(Granularity::kFull)) {
    return std::nullopt;
  }
  out.granularity = static_cast<Granularity>(*gran);
  fold(*gran);

  auto nbits = u();
  if (!nbits || *nbits > kMaxBits) return std::nullopt;
  const std::size_t nwords = (*nbits + 63) / 64;
  fold(*nbits);
  for (std::size_t i = 0; i < nwords; ++i) {
    auto w = u();
    if (!w) return std::nullopt;
    if (i + 1 == nwords && *nbits % 64 != 0) {
      *w &= (1ULL << (*nbits % 64)) - 1;  // BitVec::from_words trims the tail
    }
    fold(*w);
  }

  auto nruns = u();
  if (!nruns || *nruns > kMaxRecords) return std::nullopt;
  fold(*nruns);
  for (std::uint64_t i = 0; i < *nruns; ++i) {
    auto thread = u(), steps = u();
    if (!thread || !steps || *thread > 0xff || *steps > 0xffffffffULL) {
      return std::nullopt;
    }
    fold((*thread << 32) | *steps);
  }

  auto nlocks = u();
  if (!nlocks || *nlocks > kMaxRecords) return std::nullopt;
  for (std::uint64_t i = 0; i < *nlocks; ++i) {
    auto thread = u(), acq = u(), lock = u(), pc = u(), step = u();
    if (!thread || !acq || !lock || !pc || !step || *thread > 0xff ||
        *acq > 1 || *lock > 0xffff || *pc > 0xffffffffULL ||
        *step > 0xffffffffULL) {
      return std::nullopt;
    }
  }

  auto nsys = u();
  if (!nsys || *nsys > kMaxRecords) return std::nullopt;
  for (std::uint64_t i = 0; i < *nsys; ++i) {
    auto sys = u(), idx = u();
    auto cls = s();
    if (!sys || !idx || !cls || *sys > 0xffff || *idx > 0xffffffffULL ||
        *cls < -128 || *cls > 127) {
      return std::nullopt;
    }
  }

  auto steps = u(), flags = u(), day = u();
  if (!steps || !flags || !day || *flags > 3) return std::nullopt;
  out.steps = *steps;
  out.patched = (*flags & 1) != 0;
  out.guided = (*flags & 2) != 0;
  out.day = *day;
  fold(*steps);

  if (pos != bytes.size()) return std::nullopt;  // trailing garbage
  out.key = k;
  return out;
}

}  // namespace softborg
