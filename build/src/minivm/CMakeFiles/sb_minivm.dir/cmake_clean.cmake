file(REMOVE_RECURSE
  "CMakeFiles/sb_minivm.dir/builder.cpp.o"
  "CMakeFiles/sb_minivm.dir/builder.cpp.o.d"
  "CMakeFiles/sb_minivm.dir/corpus.cpp.o"
  "CMakeFiles/sb_minivm.dir/corpus.cpp.o.d"
  "CMakeFiles/sb_minivm.dir/disasm.cpp.o"
  "CMakeFiles/sb_minivm.dir/disasm.cpp.o.d"
  "CMakeFiles/sb_minivm.dir/env.cpp.o"
  "CMakeFiles/sb_minivm.dir/env.cpp.o.d"
  "CMakeFiles/sb_minivm.dir/interp.cpp.o"
  "CMakeFiles/sb_minivm.dir/interp.cpp.o.d"
  "CMakeFiles/sb_minivm.dir/program.cpp.o"
  "CMakeFiles/sb_minivm.dir/program.cpp.o.d"
  "CMakeFiles/sb_minivm.dir/random_program.cpp.o"
  "CMakeFiles/sb_minivm.dir/random_program.cpp.o.d"
  "CMakeFiles/sb_minivm.dir/replay.cpp.o"
  "CMakeFiles/sb_minivm.dir/replay.cpp.o.d"
  "libsb_minivm.a"
  "libsb_minivm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_minivm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
