file(REMOVE_RECURSE
  "CMakeFiles/sb_privacy.dir/anonymize.cpp.o"
  "CMakeFiles/sb_privacy.dir/anonymize.cpp.o.d"
  "CMakeFiles/sb_privacy.dir/entropy.cpp.o"
  "CMakeFiles/sb_privacy.dir/entropy.cpp.o.d"
  "libsb_privacy.a"
  "libsb_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
