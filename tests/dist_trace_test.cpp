// End-to-end causal tracing across the multi-process fleet (ISSUE 10
// acceptance): a forked socket fleet with tracing enabled must leave
// per-process flight-recorder dumps whose merge contains at least one
// causal trace id followed pod → router → shard → merge ACROSS process
// boundaries — the shard's dump carries hop paths it could only have
// learned from the v2 frame extension. Plus the postmortem half: a
// SIGTERM'd worker's fatal-signal handler leaves a decodable dump behind.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <thread>

#include "common/fsio.h"
#include "common/rng.h"
#include "dist/ring.h"
#include "dist/router.h"
#include "dist/socket.h"
#include "dist/worker.h"
#include "minivm/corpus.h"
#include "minivm/interp.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "trace/codec.h"

namespace softborg::dist {
namespace {

namespace fs = std::filesystem;

std::vector<Bytes> make_workload(const std::vector<CorpusEntry>& corpus,
                                 std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> wires;
  wires.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CorpusEntry& entry = corpus[rng.next_below(corpus.size())];
    ExecConfig cfg;
    for (const auto& d : entry.domains) {
      cfg.inputs.push_back(rng.next_in(d.lo, d.hi));
    }
    cfg.seed = seed * 1'000'000 + i;
    auto result = execute(entry.program, cfg);
    result.trace.id = TraceId(i + 1);
    result.trace.day = i % 7;
    wires.push_back(encode_trace(result.trace));
  }
  return wires;
}

class DistTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dump_dir_ = (fs::temp_directory_path() /
                 ("sb_trace_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()) +
                  "_" + std::to_string(::getpid())))
                    .string();
    fs::remove_all(dump_dir_);
    fs::create_directories(dump_dir_);
    addr_ = "unix:" + (fs::path(dump_dir_) / "router.sock").string();
    // This test PROCESS plays the router: enable tracing here, and undo it
    // in TearDown so sibling tests see the default-off world.
    obs::set_tracing_enabled(true);
    obs::Recorder::set_enabled(true);
    obs::Recorder::global().clear();
    obs::Recorder::global().set_label("router");
  }

  void TearDown() override {
    obs::Recorder::set_enabled(false);
    obs::set_tracing_enabled(false);
    obs::Recorder::global().clear();
    for (const int pid : pids_) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
    fs::remove_all(dump_dir_);
  }

  int spawn(std::size_t index, const std::vector<CorpusEntry>& corpus,
            WorkerConfig config) {
    config.trace_dump_path = shard_dump(index);
    const int pid = spawn_worker_process(index, &corpus, config, addr_);
    EXPECT_GT(pid, 0);
    pids_.push_back(pid);
    return pid;
  }

  void reap(int pid) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    std::erase(pids_, pid);
  }

  std::string shard_dump(std::size_t index) const {
    return dump_dir_ + "/shard" + std::to_string(index) + ".sbfr";
  }

  void round(Listener& listener, TraceRouter& router) {
    while (auto ch = listener.accept()) {
      router.add_unidentified(std::move(ch));
    }
    router.pump();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  bool wait_until(Listener& listener, TraceRouter& router,
                  const std::function<bool()>& done, int timeout_ms = 20'000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!done()) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      round(listener, router);
    }
    return true;
  }

  // Routes `wire` the way the drivers do under tracing: birth the causal
  // chain with a kPod hop at injection.
  void route_traced(TraceRouter& router, const Bytes& wire) {
    obs::TraceContext ctx;
    if (const auto s = summarize_trace_wire(wire)) {
      ctx = obs::with_hop(
          obs::TraceContext{
              obs::causal_trace_id(s->id.value, s->program.value), 0},
          obs::Hop::kPod);
      obs::Recorder::record(obs::EventKind::kPodEmit, ctx);
    }
    router.route_wire(wire, ctx);
  }

  std::optional<obs::RecorderDump> load_dump(const std::string& path) {
    Bytes data;
    if (!read_file(path, data)) return std::nullopt;
    return obs::decode_recorder_dump(data);
  }

  std::string dump_dir_;
  std::string addr_;
  std::vector<int> pids_;
};

TEST_F(DistTraceTest, CausalChainCrossesProcessBoundaries) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 96, 77);
  const std::size_t kShards = 4;

  Listener listener(addr_);
  TraceRouter router(kShards);
  std::vector<int> pids;
  for (std::size_t i = 0; i < kShards; ++i) {
    pids.push_back(spawn(i, corpus, WorkerConfig{}));
  }
  ASSERT_TRUE(wait_until(listener, router, [&] {
    for (std::size_t i = 0; i < kShards; ++i) {
      if (!router.shard_alive(i)) return false;
    }
    return true;
  })) << "workers never connected";

  for (const auto& wire : wires) {
    route_traced(router, wire);
    round(listener, router);
  }
  ASSERT_TRUE(wait_until(listener, router, [&] { return router.quiescent(); }))
      << "fleet never drained";
  router.broadcast_shutdown();
  ASSERT_TRUE(
      wait_until(listener, router, [&] { return router.all_reports_in(); }))
      << "closing reports never arrived";
  for (const int pid : pids) reap(pid);

  // Every process left a dump: this one (the router) plus each worker.
  const std::string router_dump = dump_dir_ + "/router.sbfr";
  ASSERT_TRUE(obs::Recorder::global().flush_to_file(router_dump));
  std::vector<obs::RecorderDump> dumps;
  for (std::size_t i = 0; i < kShards; ++i) {
    auto d = load_dump(shard_dump(i));
    ASSERT_TRUE(d.has_value()) << "shard " << i << " dump missing/corrupt";
    EXPECT_EQ(d->label, "shard" + std::to_string(i));
    dumps.push_back(std::move(*d));
  }
  auto rd = load_dump(router_dump);
  ASSERT_TRUE(rd.has_value());
  dumps.push_back(std::move(*rd));

  // The merged timeline follows causal ids pod → router → shard → merge
  // across pids. Every routed trace should complete the chain here (no
  // sheds, clean shutdown), but ≥1 is the acceptance bar.
  obs::ChromeTraceStats st;
  const std::string json = obs::to_chrome_trace(dumps, &st);
  EXPECT_EQ(st.processes, kShards + 1);
  EXPECT_GE(st.cross_process_chains, 1u);
  EXPECT_EQ(st.cross_process_chains, wires.size());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("pod>router>shard>merge"), std::string::npos);

  // The propagation proof, spelled out: a shard recorded a merge whose hop
  // path includes pod AND router — hops taken in a DIFFERENT process, which
  // it can only know from the frame's v2 extension.
  bool shard_saw_upstream_hops = false;
  for (std::size_t i = 0; i < kShards; ++i) {
    for (const auto& t : dumps[i].threads) {
      for (const auto& e : t.events) {
        if (e.kind != static_cast<std::uint16_t>(obs::EventKind::kMerge)) {
          continue;
        }
        obs::TraceContext ctx{e.trace_id, e.hop_path};
        if (obs::has_hop(ctx, obs::Hop::kPod) &&
            obs::has_hop(ctx, obs::Hop::kRouter) &&
            obs::has_hop(ctx, obs::Hop::kShard)) {
          shard_saw_upstream_hops = true;
        }
      }
    }
  }
  EXPECT_TRUE(shard_saw_upstream_hops);
}

TEST_F(DistTraceTest, SigtermedWorkerLeavesDecodablePostmortemDump) {
  const auto corpus = standard_corpus();
  const auto wires = make_workload(corpus, 32, 99);

  Listener listener(addr_);
  TraceRouter router(1);
  const int pid = spawn(0, corpus, WorkerConfig{});
  ASSERT_TRUE(wait_until(listener, router, [&] {
    return router.shard_alive(0);
  })) << "worker never connected";
  for (const auto& wire : wires) {
    route_traced(router, wire);
    round(listener, router);
  }
  ASSERT_TRUE(wait_until(listener, router, [&] { return router.quiescent(); }))
      << "fleet never drained";

  // No clean shutdown: the fatal-signal handler is the only flush path.
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGTERM);
  std::erase(pids_, pid);

  const auto dump = load_dump(shard_dump(0));
  ASSERT_TRUE(dump.has_value()) << "postmortem dump missing or corrupt";
  EXPECT_EQ(dump->label, "shard0");
  std::size_t events = 0, merges = 0;
  for (const auto& t : dump->threads) {
    events += t.events.size();
    for (const auto& e : t.events) {
      if (e.kind == static_cast<std::uint16_t>(obs::EventKind::kMerge)) {
        merges++;
      }
    }
  }
  EXPECT_GT(events, 0u);
  EXPECT_GT(merges, 0u);  // it really did work before dying
}

}  // namespace
}  // namespace softborg::dist
