// Wire codec for traces (§3.1: "collecting them efficiently").
//
// Varint + bit-packed encoding; decode validates and returns nullopt on any
// malformed input (the hive must survive hostile/corrupt pods).
#pragma once

#include <optional>

#include "common/varint.h"
#include "trace/trace.h"

namespace softborg {

Bytes encode_trace(const Trace& t);
std::optional<Trace> decode_trace(const Bytes& bytes);

// Decodes into `out`, recycling its payload capacity — for hot paths that
// decode many wires in a loop. Returns false on malformed input, leaving
// `out` valid but unspecified. decode_trace() is this plus a fresh Trace.
bool decode_trace_into(Trace& out, const Bytes& bytes);

// Scalar header of a trace wire plus its replay memoization key, extracted
// in one allocation-free pass. summarize_trace_wire(w) succeeds exactly when
// decode_trace(w) succeeds, the shared fields agree, and `key` equals
// replay_key(*decode_trace(w)) — see codec tests. The hive's batch pipeline
// uses this to defer full decoding (vector payloads) to the consumers that
// need it: cache-missing replay, bug tracking of failures, the gate.
// ShardedHive's ingress routes on `program` from this same peek, so the
// route step validates without ever materializing a payload, and a wire
// that summarizes here is guaranteed to decode at the owning shard.
struct TraceWireSummary {
  TraceId id{0};
  ProgramId program{0};
  PodId pod{0};
  Outcome outcome = Outcome::kOk;
  std::optional<CrashInfo> crash;
  Granularity granularity = Granularity::kTaintedBranches;
  std::uint64_t steps = 0;
  bool patched = false;
  bool guided = false;
  std::uint64_t day = 0;
  ReplayKey key;
};

std::optional<TraceWireSummary> summarize_trace_wire(const Bytes& bytes);

}  // namespace softborg
