// Minimal open-addressed hash containers for uint64 keys.
//
// The hive's ingestion hot path does one membership insert (trace-id dedup)
// and one map lookup (program -> corpus entry) per trace; node-based
// std::unordered_* containers pay an allocation per insert and a pointer
// chase per find, which dominates once the rest of the pipeline is lean.
// These containers keep everything in one flat array: keys are scrambled
// with a splitmix64 finalizer and probed linearly at <= 50% load.
//
// Deliberately tiny API (insert/find/reserve/size) — no erase, no iteration.
// Anything needing richer semantics should stay on the standard containers.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace softborg {

// splitmix64 finalizer: bijective, so distinct keys stay distinct, and the
// output's low bits are uniform enough to index a power-of-two table.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Set of uint64 keys. Slot value 0 marks an empty slot; the key 0 itself is
// tracked out of band so every key value is representable.
class FlatU64Set {
 public:
  explicit FlatU64Set(std::size_t expected = 0) { rehash(slots_for(expected)); }

  // Returns true when `key` was newly inserted, false when already present.
  bool insert(std::uint64_t key) {
    if (key == 0) {
      const bool fresh = !has_zero_;
      has_zero_ = true;
      return fresh;
    }
    if ((count_ + 1) * 2 > slots_.size()) rehash(slots_.size() * 2);
    std::size_t slot = mix64(key) & mask_;
    while (slots_[slot] != 0) {
      if (slots_[slot] == key) return false;
      slot = (slot + 1) & mask_;
    }
    slots_[slot] = key;
    count_++;
    return true;
  }

  bool contains(std::uint64_t key) const {
    if (key == 0) return has_zero_;
    std::size_t slot = mix64(key) & mask_;
    while (slots_[slot] != 0) {
      if (slots_[slot] == key) return true;
      slot = (slot + 1) & mask_;
    }
    return false;
  }

  std::size_t size() const { return count_ + (has_zero_ ? 1 : 0); }

  // Grows the table so `expected` total keys fit without further rehashing.
  void reserve(std::size_t expected) {
    const std::size_t want = slots_for(expected);
    if (want > slots_.size()) rehash(want);
  }

  // Visits every key in slot order (unspecified, hash-dependent). The one
  // sanctioned departure from "no iteration": the durable store must
  // serialize the dedup set, and sorts the visited keys itself so the
  // snapshot bytes never depend on table history.
  template <typename F>
  void for_each(F&& f) const {
    if (has_zero_) f(std::uint64_t{0});
    for (const std::uint64_t key : slots_) {
      if (key != 0) f(key);
    }
  }

 private:
  static std::size_t slots_for(std::size_t expected) {
    return std::bit_ceil(expected * 2 + 16);  // load factor <= 50%
  }

  void rehash(std::size_t new_slots) {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(new_slots, 0);
    mask_ = new_slots - 1;
    for (const std::uint64_t key : old) {
      if (key == 0) continue;
      std::size_t slot = mix64(key) & mask_;
      while (slots_[slot] != 0) slot = (slot + 1) & mask_;
      slots_[slot] = key;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t mask_ = 0;
  std::size_t count_ = 0;
  bool has_zero_ = false;
};

// Map from uint64 keys to non-null pointers; a null value marks an empty
// slot, so all key values (including 0) are representable.
template <typename T>
class FlatU64PtrMap {
 public:
  explicit FlatU64PtrMap(std::size_t expected = 0) {
    rehash(slots_for(expected));
  }

  // Inserts key -> value (value must be non-null); keeps the existing value
  // when the key is already present, mirroring std::unordered_map::emplace.
  void insert(std::uint64_t key, T* value) {
    if ((count_ + 1) * 2 > slots_.size()) rehash(slots_.size() * 2);
    std::size_t slot = mix64(key) & mask_;
    while (slots_[slot].second != nullptr) {
      if (slots_[slot].first == key) return;
      slot = (slot + 1) & mask_;
    }
    slots_[slot] = {key, value};
    count_++;
  }

  // Null when absent.
  T* find(std::uint64_t key) const {
    std::size_t slot = mix64(key) & mask_;
    while (slots_[slot].second != nullptr) {
      if (slots_[slot].first == key) return slots_[slot].second;
      slot = (slot + 1) & mask_;
    }
    return nullptr;
  }

  std::size_t size() const { return count_; }

  void reserve(std::size_t expected) {
    const std::size_t want = slots_for(expected);
    if (want > slots_.size()) rehash(want);
  }

 private:
  static std::size_t slots_for(std::size_t expected) {
    return std::bit_ceil(expected * 2 + 16);
  }

  void rehash(std::size_t new_slots) {
    std::vector<std::pair<std::uint64_t, T*>> old = std::move(slots_);
    slots_.assign(new_slots, {0, nullptr});
    mask_ = new_slots - 1;
    for (const auto& [key, value] : old) {
      if (value == nullptr) continue;
      std::size_t slot = mix64(key) & mask_;
      while (slots_[slot].second != nullptr) slot = (slot + 1) & mask_;
      slots_[slot] = {key, value};
    }
  }

  std::vector<std::pair<std::uint64_t, T*>> slots_;
  std::size_t mask_ = 0;
  std::size_t count_ = 0;
};

}  // namespace softborg
