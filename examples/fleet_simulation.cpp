// Fleet simulation: the paper's core bet at scale (§2: "the aggregation of
// all executions across the lifetime of a program ... is equivalent to one
// big test suite").
//
// Deploys the full buggy corpus to a fleet of heterogeneous simulated users
// for a simulated month and prints the reliability trajectory: failure
// rates collapse as the hive converts crashes and deadlocks into
// distributed fixes, while path coverage keeps climbing. The race_counter
// program demonstrates the repair lab: its atomicity violation is detected
// and diagnosed but deliberately never auto-fixed.
//
// Usage: fleet_simulation [seed] [--days N] [--metrics-json PATH]
//                         [--metrics-prom PATH]
// The metrics flags enable span sampling for the run and write a final
// snapshot of the global registry in JSON ("softborg.metrics.v1") or
// Prometheus text exposition; PATH "-" writes to stdout.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/softborg.h"
#include "hive/report.h"

int main(int argc, char** argv) {
  using namespace softborg;

  WorldConfig config;
  config.pods_per_program = 150;  // ~1000 pods across the 7-program corpus
  config.days = 30;
  config.mean_runs_per_day = 5.0;
  config.guidance_per_program_per_day = 3;
  config.net.drop_prob = 0.02;
  config.seed = 42;

  const char* json_path = nullptr;
  const char* prom_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      config.days = static_cast<std::uint64_t>(atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    } else {
      config.seed = static_cast<std::uint64_t>(atoll(argv[i]));
    }
  }
  if (json_path != nullptr || prom_path != nullptr) {
    obs::set_spans_enabled(true);  // populate the timing histograms too
  }

  World world(standard_corpus(), config);

  std::printf("%-5s %-8s %-9s %-7s %-9s %-6s %-6s %-8s %-8s\n", "day",
              "runs", "failures", "rate%", "averted", "bugs", "fixed",
              "paths", "traces");
  for (std::uint64_t day = 0; day < config.days; ++day) {
    world.step_day();
    const auto& d = world.history().back();
    std::printf("%-5llu %-8llu %-9llu %-7.3f %-9llu %-6zu %-6zu %-8zu %-8llu\n",
                static_cast<unsigned long long>(d.day),
                static_cast<unsigned long long>(d.runs),
                static_cast<unsigned long long>(d.failures),
                d.failure_rate * 100.0,
                static_cast<unsigned long long>(d.fix_interventions),
                d.bugs_found_total, d.bugs_fixed_total, d.total_paths,
                static_cast<unsigned long long>(d.traces_delivered_total));
  }

  std::printf("\nhive stats: ingested=%llu dup=%llu decode_fail=%llu "
              "new_paths=%llu fixes=%llu repair_lab=%llu\n",
              static_cast<unsigned long long>(world.hive().stats().traces_ingested),
              static_cast<unsigned long long>(world.hive().stats().duplicates_dropped),
              static_cast<unsigned long long>(world.hive().stats().decode_failures),
              static_cast<unsigned long long>(world.hive().stats().new_paths),
              static_cast<unsigned long long>(world.hive().stats().fixes_approved),
              static_cast<unsigned long long>(world.hive().stats().repair_lab_entries));

  std::printf("\n%s", hive_status_report(world.hive(), world.net_stats()).c_str());

  if (json_path != nullptr || prom_path != nullptr) {
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    if (json_path != nullptr) {
      obs::write_text_file(json_path, obs::to_json(snap));
    }
    if (prom_path != nullptr) {
      obs::write_text_file(prom_path, obs::to_prometheus(snap));
    }
  }
  return 0;
}
