file(REMOVE_RECURSE
  "libsb_net.a"
)
