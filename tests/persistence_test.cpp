// Tree persistence, program disassembly, and staged fix rollout.
#include <gtest/gtest.h>

#include "core/softborg.h"
#include "minivm/disasm.h"
#include "tree/tree_codec.h"

namespace softborg {
namespace {

// ------------------------------------------------------------ tree codec ---

ExecTree build_tree(std::uint64_t seed, int paths) {
  const auto entry = make_config_space(8);
  ExecTree tree(entry.program.id);
  Rng rng(seed);
  for (int i = 0; i < paths; ++i) {
    std::vector<Value> inputs;
    for (int j = 0; j < 8; ++j) inputs.push_back(rng.next_bool() ? 1 : 0);
    ExecConfig cfg;
    cfg.inputs = inputs;
    cfg.collect_branch_events = true;
    const auto live = execute(entry.program, cfg);
    std::vector<SymDecision> ds;
    for (const auto& ev : live.branch_events) {
      if (ev.tainted) ds.push_back({ev.site, ev.taken});
    }
    tree.add_path(ds, live.trace.outcome, live.trace.crash);
  }
  return tree;
}

TEST(TreeCodec, RoundTripPreservesEverything) {
  const ExecTree tree = build_tree(5, 60);
  const auto back = decode_tree(encode_tree(tree));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == tree);
  EXPECT_EQ(back->num_paths(), tree.num_paths());
  EXPECT_EQ(back->num_nodes(), tree.num_nodes());
  EXPECT_EQ(back->total_executions(), tree.total_executions());
  EXPECT_EQ(back->frontier().size(), tree.frontier().size());
}

TEST(TreeCodec, RoundTripWithInfeasibleAndCrashes) {
  const auto entry = make_media_parser();
  ExecTree tree(entry.program.id);
  tree.add_path({{0, true}, {1, false}}, Outcome::kCrash,
                CrashInfo{CrashKind::kDivByZero, 18, 0});
  tree.add_path({{0, false}}, Outcome::kOk);
  ASSERT_TRUE(tree.mark_infeasible({{0, true}}, 1, true));
  const auto back = decode_tree(encode_tree(tree));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == tree);
  EXPECT_EQ(back->paths_with_outcome(Outcome::kCrash), 1u);
  EXPECT_EQ(back->complete(), tree.complete());
}

TEST(TreeCodec, DecodedTreeAcceptsNewPaths) {
  ExecTree tree = build_tree(7, 30);
  auto back = decode_tree(encode_tree(tree));
  ASSERT_TRUE(back.has_value());
  const std::size_t before = back->num_paths();
  // A fresh path distinct from the first 30 with high probability.
  back->add_path({{0, true}, {1, true}, {2, true}, {3, true},
                  {4, true}, {5, true}, {6, true}, {7, true}},
                 Outcome::kOk);
  EXPECT_GE(back->num_paths(), before);
}

TEST(TreeCodec, RejectsGarbage) {
  EXPECT_FALSE(decode_tree({}).has_value());
  EXPECT_FALSE(decode_tree({0x01, 0x02, 0x03}).has_value());
}

TEST(TreeCodec, RejectsTruncation) {
  const Bytes wire = encode_tree(build_tree(9, 20));
  for (std::size_t cut = 0; cut < wire.size(); cut += 11) {
    Bytes prefix(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode_tree(prefix).has_value()) << "cut " << cut;
  }
}

TEST(TreeCodec, FuzzMutationsNeverCrash) {
  const Bytes wire = encode_tree(build_tree(11, 20));
  Rng rng(13);
  for (int round = 0; round < 1000; ++round) {
    Bytes mutated = wire;
    for (int m = 0; m < 3; ++m) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<std::uint8_t>(rng());
    }
    (void)decode_tree(mutated);  // must not crash
  }
}

TEST(TreeCodec, V1WireMigratesToV2) {
  // Property: every tree decodable from v1 bytes re-encodes to v2 and
  // compares equal — persisted pre-migration state survives the upgrade,
  // and downgrading reproduces the original v1 bytes exactly.
  for (const std::uint64_t seed : {3u, 5u, 9u, 17u, 29u}) {
    ExecTree tree = build_tree(seed, 40);
    for (const auto& f : tree.frontier(4)) {
      ASSERT_TRUE(tree.mark_infeasible(f.prefix, f.site, f.direction, f.node));
    }
    const Bytes v1_wire = tree.encode(ExecTree::WireVersion::kV1);
    const auto from_v1 = decode_tree(v1_wire);
    ASSERT_TRUE(from_v1.has_value()) << "seed " << seed;
    EXPECT_TRUE(*from_v1 == tree);

    const Bytes v2_wire = from_v1->encode(ExecTree::WireVersion::kV2);
    const auto from_v2 = decode_tree(v2_wire);
    ASSERT_TRUE(from_v2.has_value()) << "seed " << seed;
    EXPECT_TRUE(*from_v2 == *from_v1);
    // Migrating through v1 lands on the same bytes as encoding fresh.
    EXPECT_EQ(v2_wire, encode_tree(tree));
    // Downgrade path: v2 -> v1 is byte-stable.
    EXPECT_EQ(from_v2->encode(ExecTree::WireVersion::kV1), v1_wire);
    // The parent-link wire drops the per-edge child indices: it is the
    // strictly denser format.
    EXPECT_LT(v2_wire.size(), v1_wire.size());
  }
}

TEST(TreeCodec, FuzzBothVersionsPrefixesAndMutations) {
  for (const auto version :
       {ExecTree::WireVersion::kV1, ExecTree::WireVersion::kV2}) {
    const Bytes wire = build_tree(11, 20).encode(version);
    // Every proper prefix is rejected (never a crash, never a false accept).
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      const Bytes prefix(wire.begin(),
                         wire.begin() + static_cast<long>(cut));
      EXPECT_FALSE(decode_tree(prefix).has_value()) << "cut " << cut;
    }
    // Random corruption: decode must not crash, and anything it does
    // accept must be a well-formed tree that round-trips both wires.
    Rng rng(17);
    for (int round = 0; round < 1000; ++round) {
      Bytes mutated = wire;
      for (int m = 0; m < 3; ++m) {
        mutated[rng.next_below(mutated.size())] =
            static_cast<std::uint8_t>(rng());
      }
      const auto tree = decode_tree(mutated);
      if (tree.has_value()) {
        const auto v1 = decode_tree(tree->encode(ExecTree::WireVersion::kV1));
        const auto v2 = decode_tree(tree->encode(ExecTree::WireVersion::kV2));
        ASSERT_TRUE(v1.has_value());
        ASSERT_TRUE(v2.has_value());
        EXPECT_TRUE(*v1 == *tree);
        EXPECT_TRUE(*v2 == *tree);
      }
    }
  }
}

// ----------------------------------------------------------------- disasm --

TEST(Disasm, ListsEveryInstruction) {
  const auto entry = make_media_parser();
  const std::string listing = disassemble(entry.program);
  // One line per instruction plus the header and thread marker.
  std::size_t lines = 0;
  for (char c : listing) {
    if (c == '\n') lines++;
  }
  EXPECT_EQ(lines, entry.program.code.size() + 2);
  EXPECT_NE(listing.find("media_parser"), std::string::npos);
  EXPECT_NE(listing.find("brif"), std::string::npos);
  EXPECT_NE(listing.find("div"), std::string::npos);
}

TEST(Disasm, MarksThreadEntries) {
  const auto entry = make_bank_transfer();
  const std::string listing = disassemble(entry.program);
  EXPECT_NE(listing.find("--- thread 0 ---"), std::string::npos);
  EXPECT_NE(listing.find("--- thread 1 ---"), std::string::npos);
  EXPECT_NE(listing.find("lock"), std::string::npos);
}

TEST(Disasm, CoversAllOpcodesInCorpus) {
  for (const auto& entry : standard_corpus()) {
    const std::string listing = disassemble(entry.program);
    EXPECT_FALSE(listing.empty());
    EXPECT_EQ(listing.find("????"), std::string::npos)
        << entry.program.name << ": unknown opcode rendered";
  }
}

// ---------------------------------------------------------- canary rollout -

TEST(CanaryRollout, FullRolloutAfterCleanCanary) {
  WorldConfig config;
  config.pods_per_program = 40;
  config.days = 12;
  config.seed = 3;
  config.canary_fraction = 0.25;
  config.canary_days = 2;
  World world({make_media_parser()}, config);
  world.run();
  // Fix shipped and eventually reached everyone: no failures at the end.
  EXPECT_GE(world.history().back().bugs_fixed_total, 1u);
  EXPECT_EQ(world.pending_rollouts(), 0u);
  EXPECT_EQ(world.rollouts_cancelled(), 0u);
  std::uint64_t late_failures = 0;
  for (const auto& d : world.history()) {
    if (d.day >= 10) late_failures += d.failures;
  }
  EXPECT_EQ(late_failures, 0u);
}

TEST(CanaryRollout, CanarySlowsPropagationButConverges) {
  // With a canary the fleet-wide fix lands later than with instant
  // broadcast — interventions in the canary window stay lower.
  WorldConfig instant, canary;
  instant.pods_per_program = canary.pods_per_program = 40;
  instant.days = canary.days = 6;
  instant.seed = canary.seed = 3;
  canary.canary_fraction = 0.1;
  canary.canary_days = 3;

  World wi({make_media_parser()}, instant);
  World wc({make_media_parser()}, canary);
  wi.run();
  wc.run();
  std::uint64_t instant_averted = 0, canary_averted = 0;
  for (const auto& d : wi.history()) instant_averted += d.fix_interventions;
  for (const auto& d : wc.history()) canary_averted += d.fix_interventions;
  EXPECT_LE(canary_averted, instant_averted);
}

}  // namespace
}  // namespace softborg
