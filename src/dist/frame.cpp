#include "dist/frame.h"

#include <cstring>

#include "common/fsio.h"

namespace softborg::dist {

namespace {

constexpr std::uint8_t kMagic[4] = {'S', 'B', 'D', '1'};

void put_u16le(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32le(Bytes& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::uint16_t get_u16le(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64le(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32le(p)) |
         (static_cast<std::uint64_t>(get_u32le(p + 4)) << 32);
}

}  // namespace

std::uint32_t frame_checksum(const std::uint8_t* data, std::size_t n) {
  const std::uint64_t h = fnv1a64(data, n);
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

void encode_frame(Bytes& out, std::uint32_t type, std::uint32_t credit,
                  const Bytes& payload) {
  encode_frame(out, type, credit, payload, obs::TraceContext{});
}

void encode_frame(Bytes& out, std::uint32_t type, std::uint32_t credit,
                  const Bytes& payload, obs::TraceContext ctx) {
  // Callers only send the small protocol type space and grants within the
  // header fields; both are asserted by construction (workers clamp their
  // windows to u16).
  const bool traced = ctx.valid();
  const std::size_t ext = traced ? kFrameTraceExtSize : 0;
  out.reserve(out.size() + kFrameHeaderSize + ext + payload.size());
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(traced ? kFrameVersionTraced : kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u16le(out, static_cast<std::uint16_t>(credit));
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  if (!traced) {
    put_u32le(out, frame_checksum(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    return;
  }
  // v2: checksum covers extension || payload. Write a placeholder, append
  // both (contiguous in `out`), then patch the checksum in place.
  const std::size_t cksum_pos = out.size();
  put_u32le(out, 0);
  std::uint8_t ext_bytes[kFrameTraceExtSize];
  for (int i = 0; i < 8; ++i) {
    ext_bytes[i] = static_cast<std::uint8_t>(ctx.trace_id >> (8 * i));
  }
  ext_bytes[8] = static_cast<std::uint8_t>(ctx.hop_path);
  ext_bytes[9] = static_cast<std::uint8_t>(ctx.hop_path >> 8);
  out.insert(out.end(), ext_bytes, ext_bytes + kFrameTraceExtSize);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t cksum = frame_checksum(
      out.data() + cksum_pos + 4, kFrameTraceExtSize + payload.size());
  for (int i = 0; i < 4; ++i) {
    out[cksum_pos + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(cksum >> (8 * i));
  }
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (failed_ || n == 0) return;
  // Compact the consumed prefix before growing; keeps the buffer bounded by
  // one frame in progress plus whatever feed() just delivered.
  if (consumed_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame> FrameDecoder::next() {
  if (failed_) return std::nullopt;
  const std::size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* h = buf_.data() + consumed_;
  if (std::memcmp(h, kMagic, 4) != 0 ||
      (h[4] != kFrameVersion && h[4] != kFrameVersionTraced)) {
    failed_ = true;
    return std::nullopt;
  }
  const bool traced = h[4] == kFrameVersionTraced;
  const std::size_t ext = traced ? kFrameTraceExtSize : 0;
  const std::uint32_t len = get_u32le(h + 8);
  if (len > kMaxFramePayload) {
    // A hostile/corrupt length: reject before buffering a single payload
    // byte, so allocation stays bounded no matter what the peer claims.
    failed_ = true;
    return std::nullopt;
  }
  if (avail < kFrameHeaderSize + ext + len) return std::nullopt;  // wait
  Frame f;
  f.type = h[5];
  f.credit = get_u16le(h + 6);
  // The checksum spans extension || payload, so corrupt contexts are
  // rejected as hard as corrupt payloads.
  const std::uint8_t* body = h + kFrameHeaderSize;
  if (frame_checksum(body, ext + len) != get_u32le(h + 12)) {
    failed_ = true;
    return std::nullopt;
  }
  if (traced) {
    f.ctx.trace_id = get_u64le(body);
    f.ctx.hop_path = get_u16le(body + 8);
    if (!f.ctx.valid()) {
      failed_ = true;  // v2 frame claiming "no context" is malformed
      return std::nullopt;
    }
  }
  f.payload.assign(body + ext, body + ext + len);
  consumed_ += kFrameHeaderSize + ext + len;
  return f;
}

}  // namespace softborg::dist
