#include "obs/span.h"

#include <string>

namespace softborg::obs {

namespace detail {
std::atomic<bool> g_spans_enabled{false};
}

void set_spans_enabled(bool on) {
  detail::g_spans_enabled.store(on, std::memory_order_relaxed);
}

SpanSite::SpanSite(const char* name)
    : hist_(&MetricsRegistry::global().histogram(std::string(name) + ".us")) {}

}  // namespace softborg::obs
