// Hive-side trace replay: reconstructing the deterministic branches
// (paper §3.2).
//
// The hive receives only the by-products — a bit-vector of input-dependent
// branch directions, the thread-schedule summary, and the outcome. It does
// NOT receive input values (privacy). Replay re-executes the program with
// three-valued registers (known concrete / unknown-tainted): instructions on
// known values compute concretely; inputs and syscalls produce unknown
// values; a branch on a known condition is *reconstructed* (no bit needed),
// while a branch on an unknown condition consumes the next bit from the
// trace. The output is the full decision stream — the root-to-leaf path of
// Fig. 2/3 — that the collective execution tree merges.
#pragma once

#include <string>
#include <vector>

#include "minivm/interp.h"
#include "minivm/program.h"
#include "trace/trace.h"

namespace softborg {

struct ReplayResult {
  bool ok = false;     // trace is consistent with the program
  std::string error;   // when !ok: what went wrong
  // Tainted (input-dependent) branch decisions in serialized execution
  // order — the canonical path the execution tree stores.
  std::vector<BranchEvent> decisions;
  Outcome outcome = Outcome::kOk;
  std::uint64_t steps_used = 0;
  std::size_t bits_consumed = 0;
};

// Replays `trace` against `program`. Works for any granularity that records
// branch bits (kTaintedBranches, kAllBranches, kFull); at kAllBranches the
// recorded direction of *deterministic* branches is cross-checked against
// the reconstructed one, catching corrupt or mismatched traces.
ReplayResult replay_trace(const Program& program, const Trace& trace);

}  // namespace softborg
