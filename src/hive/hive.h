// The hive (paper §3, Fig. 1): SoftBorg's aggregation and analysis center.
//
// Responsibilities, in the paper's words: "merges information extracted
// from by-products with its existing knowledge of P, identifies
// misbehaviors in P, synthesizes fixes that improve P, and distributes
// these fixes back to the pods"; plus cumulative proofs and execution
// guidance.
//
// Pipeline per ingested trace:
//   decode -> dedup -> (k-anonymity gate, optional) -> bug tracking
//   -> lock-order analysis -> replay to decision stream -> tree merge.
// process() then turns newly found bugs into validated fixes: candidates
// scoring above the auto threshold are approved for distribution;
// schedule-dependent assertion bugs and low-scoring candidates land in the
// repair lab for a human decision (paper §3.3).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "hive/bugs.h"
#include "hive/fixer.h"
#include "hive/guidance.h"
#include "hive/proof.h"
#include "minivm/corpus.h"
#include "privacy/anonymize.h"
#include "trace/sampling.h"
#include "tree/exec_tree.h"

namespace softborg {

struct HiveConfig {
  double auto_fix_threshold = 0.9;
  // A failure matching a fixed bug's signature only counts as a recurrence
  // after this many days past fix approval (fix propagation takes time;
  // failures from not-yet-patched pods are expected in the window).
  std::uint64_t recurrence_grace_days = 2;
  std::size_t k_anonymity = 1;  // 1 = gate disabled
  std::uint64_t seed = 0x417e;
  FixerConfig fixer;
  ProofBudget proof_budget;
};

struct HiveStats {
  std::uint64_t traces_ingested = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t replay_failures = 0;
  std::uint64_t patched_traces_skipped = 0;
  std::uint64_t gated_traces = 0;  // held by the k-anonymity gate
  std::uint64_t paths_merged = 0;
  std::uint64_t new_paths = 0;
  std::uint64_t bugs_found = 0;
  std::uint64_t fixes_approved = 0;
  std::uint64_t repair_lab_entries = 0;
  std::uint64_t proofs_revoked = 0;
  std::uint64_t fixed_traces_seen = 0;   // fix-intervention telemetry
  std::uint64_t fix_recurrences = 0;     // a fixed bug's signature came back
  std::uint64_t bugs_reopened = 0;
};

class Hive {
 public:
  // `corpus` must outlive the hive (the hive analyzes these programs).
  Hive(const std::vector<CorpusEntry>* corpus, HiveConfig config = {});

  // --- ingestion ------------------------------------------------------------
  void ingest_bytes(const Bytes& wire);
  void ingest(Trace t);
  void ingest_sampled(const SampledTrace& t);

  // --- analysis & synthesis ---------------------------------------------------
  // Processes newly recorded bugs; returns fixes approved for distribution.
  std::vector<FixCandidate> process();

  // Guidance directives per program (frontier witnesses for single-threaded
  // programs, schedule plans for multi-threaded ones).
  std::vector<GuidanceDirective> plan_guidance(std::size_t per_program);

  // Attempts a cumulative proof for one program.
  ProofCertificate attempt_proof(ProgramId program, Property property);

  // --- introspection ----------------------------------------------------------
  ExecTree* tree(ProgramId program);
  BugTracker& bug_tracker() { return bugs_; }
  const std::vector<RepairLabEntry>& repair_lab() const { return repair_lab_; }
  const HiveStats& stats() const { return stats_; }
  const SiteStats& site_stats(ProgramId program);
  // Published certificates. A certificate is revoked (paper §3.3: the hive
  // must "decide whether the instrumentation invalidates the hive's
  // existing knowledge and proofs") when a fix for its program ships: the
  // deployed behaviour is P+fixes, no longer the P the proof talks about.
  struct PublishedProof {
    ProofCertificate certificate;
    bool revoked = false;
  };
  const std::vector<PublishedProof>& published_proofs() const {
    return proofs_;
  }
  std::size_t valid_proof_count() const;

 private:
  const CorpusEntry* entry_of(ProgramId program) const;
  void ingest_released(Trace t);

  const std::vector<CorpusEntry>* corpus_;
  HiveConfig config_;
  HiveStats stats_;

  std::map<std::uint64_t, ExecTree> trees_;          // by program id
  std::map<std::uint64_t, LockOrderAnalyzer> locks_; // by program id
  std::map<std::uint64_t, SiteStats> sites_;         // by program id
  std::set<std::uint64_t> seen_trace_ids_;
  std::unique_ptr<KAnonymityGate> gate_;  // null when k_anonymity <= 1

  BugTracker bugs_;
  FixSynthesizer fixer_;
  GuidancePlanner planner_;
  ProofEngine prover_;
  Rng rng_;

  void revoke_proofs(ProgramId program);

  std::uint64_t latest_day_seen_ = 0;
  std::set<std::uint64_t> fix_attempted_bugs_;
  std::map<std::uint64_t, std::uint64_t> recurrences_;  // bug id -> count
  std::vector<RepairLabEntry> repair_lab_;
  std::vector<PublishedProof> proofs_;
};

}  // namespace softborg
