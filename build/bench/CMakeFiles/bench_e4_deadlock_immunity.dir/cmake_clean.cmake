file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_deadlock_immunity.dir/bench_e4_deadlock_immunity.cpp.o"
  "CMakeFiles/bench_e4_deadlock_immunity.dir/bench_e4_deadlock_immunity.cpp.o.d"
  "bench_e4_deadlock_immunity"
  "bench_e4_deadlock_immunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_deadlock_immunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
