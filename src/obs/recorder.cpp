#include "obs/recorder.h"

#include <fcntl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <ctime>

#include "common/fsio.h"

namespace softborg::obs {

namespace detail {

constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

// One output abstraction for both flush paths: Bytes append (ordinary) or
// raw write(2) loop (signal handler). Hashes every byte as it goes so the
// trailing checksum never needs a second pass over the data.
struct DumpSink {
  int fd = -1;
  Bytes* out = nullptr;
  std::uint64_t hash = kFnvBasis;
  bool ok = true;

  void write(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      hash ^= b[i];
      hash *= kFnvPrime;
    }
    if (out != nullptr) {
      out->insert(out->end(), b, b + n);
      return;
    }
    std::size_t off = 0;
    while (ok && off < n) {
      const ssize_t w = ::write(fd, b + off, n - off);
      if (w < 0) {
        if (errno == EINTR) continue;
        ok = false;
        return;
      }
      off += static_cast<std::size_t>(w);
    }
  }
  void put16(std::uint16_t v) {
    unsigned char b[2] = {static_cast<unsigned char>(v & 0xff),
                          static_cast<unsigned char>(v >> 8)};
    write(b, 2);
  }
  void put32(std::uint32_t v) {
    unsigned char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    write(b, 4);
  }
  void put64(std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    write(b, 8);
  }
  void put_event(const RecorderEvent& ev) {
    put64(ev.ts_ns);
    put64(ev.trace_id);
    put64(ev.arg2);
    put32(ev.arg);
    put16(ev.hop_path);
    put16(ev.kind);
  }
};

}  // namespace detail

namespace {

using detail::DumpSink;
using detail::kFnvBasis;
using detail::kFnvPrime;

std::uint64_t mono_now_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return std::uint64_t(ts.tv_sec) * 1000000000ULL + std::uint64_t(ts.tv_nsec);
}

std::uint64_t real_now_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return std::uint64_t(ts.tv_sec) * 1000000000ULL + std::uint64_t(ts.tv_nsec);
}

struct Reader {
  const unsigned char* p;
  std::size_t n;
  std::size_t pos = 0;

  bool take(void* dst, std::size_t len) {
    if (len > n - pos) return false;
    std::memcpy(dst, p + pos, len);
    pos += len;
    return true;
  }
  bool get16(std::uint16_t& v) {
    unsigned char b[2];
    if (!take(b, 2)) return false;
    v = static_cast<std::uint16_t>(b[0] | (std::uint16_t(b[1]) << 8));
    return true;
  }
  bool get32(std::uint32_t& v) {
    unsigned char b[4];
    if (!take(b, 4)) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(b[i]) << (8 * i);
    return true;
  }
  bool get64(std::uint64_t& v) {
    unsigned char b[8];
    if (!take(b, 8)) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(b[i]) << (8 * i);
    return true;
  }
  bool get_event(RecorderEvent& ev) {
    return get64(ev.ts_ns) && get64(ev.trace_id) && get64(ev.arg2) &&
           get32(ev.arg) && get16(ev.hop_path) && get16(ev.kind);
  }
};

constexpr std::size_t kMaxStringLen = 4096;

}  // namespace

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kNone:
      return "none";
    case EventKind::kSpanBegin:
      return "span_begin";
    case EventKind::kSpanEnd:
      return "span_end";
    case EventKind::kPodEmit:
      return "pod_emit";
    case EventKind::kRouterIngress:
      return "router_ingress";
    case EventKind::kRouterForward:
      return "router_forward";
    case EventKind::kFrameRx:
      return "frame_rx";
    case EventKind::kFrameTx:
      return "frame_tx";
    case EventKind::kQueueShed:
      return "queue_shed";
    case EventKind::kCreditStall:
      return "credit_stall";
    case EventKind::kCreditResume:
      return "credit_resume";
    case EventKind::kShardAdmit:
      return "shard_admit";
    case EventKind::kBatchDecode:
      return "batch_decode";
    case EventKind::kMerge:
      return "merge";
    case EventKind::kProofClose:
      return "proof_close";
    case EventKind::kSnapshotCommit:
      return "snapshot_commit";
    case EventKind::kHello:
      return "hello";
  }
  return "unknown";
}

Bytes encode_recorder_dump(const RecorderDump& dump) {
  Bytes bytes;
  DumpSink sink;
  sink.out = &bytes;
  sink.write("SBFR", 4);
  sink.put16(kRecorderDumpVersion);
  sink.put64(dump.pid);
  sink.put64(dump.mono_ns);
  sink.put64(dump.real_ns);
  sink.put32(static_cast<std::uint32_t>(dump.label.size()));
  sink.write(dump.label.data(), dump.label.size());
  sink.put32(static_cast<std::uint32_t>(dump.names.size()));
  for (const auto& name : dump.names) {
    sink.put32(static_cast<std::uint32_t>(name.size()));
    sink.write(name.data(), name.size());
  }
  sink.put32(static_cast<std::uint32_t>(dump.threads.size()));
  for (const auto& th : dump.threads) {
    sink.put32(th.tid);
    sink.put64(th.events.size());
    for (const auto& ev : th.events) sink.put_event(ev);
  }
  sink.put64(sink.hash);
  return bytes;
}

std::optional<RecorderDump> decode_recorder_dump(const Bytes& bytes) {
  if (bytes.size() < 4 + 2 + 8 * 3 + 4 + 4 + 4 + 8) return std::nullopt;
  // Trailing checksum covers every byte before it.
  std::uint64_t hash = kFnvBasis;
  for (std::size_t i = 0; i + 8 < bytes.size(); ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  Reader body{bytes.data(), bytes.size() - 8};
  Reader tail{bytes.data() + bytes.size() - 8, 8};
  std::uint64_t want = 0;
  if (!tail.get64(want) || want != hash) return std::nullopt;

  char magic[4];
  std::uint16_t version = 0;
  if (!body.take(magic, 4) || std::memcmp(magic, "SBFR", 4) != 0)
    return std::nullopt;
  if (!body.get16(version) || version != kRecorderDumpVersion)
    return std::nullopt;

  RecorderDump dump;
  if (!body.get64(dump.pid) || !body.get64(dump.mono_ns) ||
      !body.get64(dump.real_ns)) {
    return std::nullopt;
  }
  std::uint32_t label_len = 0;
  if (!body.get32(label_len) || label_len > kMaxStringLen ||
      label_len > body.n - body.pos) {
    return std::nullopt;
  }
  dump.label.assign(reinterpret_cast<const char*>(body.p + body.pos),
                    label_len);
  body.pos += label_len;

  std::uint32_t name_count = 0;
  if (!body.get32(name_count) || name_count > body.n - body.pos)
    return std::nullopt;
  dump.names.reserve(name_count);
  for (std::uint32_t i = 0; i < name_count; ++i) {
    std::uint32_t len = 0;
    if (!body.get32(len) || len > kMaxStringLen || len > body.n - body.pos)
      return std::nullopt;
    dump.names.emplace_back(reinterpret_cast<const char*>(body.p + body.pos),
                            len);
    body.pos += len;
  }

  std::uint32_t thread_count = 0;
  if (!body.get32(thread_count) || thread_count > body.n - body.pos)
    return std::nullopt;
  dump.threads.reserve(thread_count);
  for (std::uint32_t i = 0; i < thread_count; ++i) {
    RecorderDump::ThreadEvents th;
    std::uint64_t event_count = 0;
    if (!body.get32(th.tid) || !body.get64(event_count)) return std::nullopt;
    if (event_count > (body.n - body.pos) / sizeof(RecorderEvent))
      return std::nullopt;
    th.events.resize(static_cast<std::size_t>(event_count));
    for (auto& ev : th.events) {
      if (!body.get_event(ev)) return std::nullopt;
    }
    dump.threads.push_back(std::move(th));
  }
  if (body.pos != body.n) return std::nullopt;  // trailing garbage
  return dump;
}

Recorder& Recorder::global() {
  static Recorder* instance = new Recorder();
  return *instance;
}

std::atomic<bool>& Recorder::detail_enabled() {
  static std::atomic<bool> flag{false};
  return flag;
}

void Recorder::set_enabled(bool on) {
  detail_enabled().store(on, std::memory_order_relaxed);
}

std::uint32_t Recorder::intern_name(const char* name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto n = name_count_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (names_[i] == name || std::strcmp(names_[i], name) == 0) return i;
  }
  if (n >= kMaxNames) return 0;  // table full: alias to slot 0
  names_[n] = name;
  name_count_.store(n + 1, std::memory_order_release);
  return n;
}

void Recorder::set_label(const char* label) {
  std::lock_guard<std::mutex> lk(mu_);
  std::strncpy(label_, label, sizeof(label_) - 1);
  label_[sizeof(label_) - 1] = '\0';
}

Recorder::Ring* Recorder::ring_for_thread() {
  std::lock_guard<std::mutex> lk(mu_);
  const auto n = ring_count_.load(std::memory_order_relaxed);
  if (n >= kMaxRings) return nullptr;
  auto* ring = new Ring();
  ring->tid = static_cast<std::uint32_t>(::syscall(SYS_gettid));
  rings_[n] = ring;
  ring_count_.store(n + 1, std::memory_order_release);
  return ring;
}

void Recorder::record_impl(EventKind kind, TraceContext ctx, std::uint32_t arg,
                           std::uint64_t arg2) {
  static thread_local Ring* tls_ring = nullptr;
  static thread_local bool tls_tried = false;
  if (tls_ring == nullptr) {
    if (tls_tried) return;  // ring table was full; drop silently
    tls_tried = true;
    tls_ring = ring_for_thread();
    if (tls_ring == nullptr) return;
  }
  if (!ctx.valid()) ctx = current_context();
  RecorderEvent ev;
  ev.ts_ns = mono_now_ns();
  ev.trace_id = ctx.trace_id;
  ev.arg2 = arg2;
  ev.arg = arg;
  ev.hop_path = ctx.hop_path;
  ev.kind = static_cast<std::uint16_t>(kind);
  const auto head = tls_ring->head.load(std::memory_order_relaxed);
  tls_ring->events[head & (kRingCapacity - 1)] = ev;
  tls_ring->head.store(head + 1, std::memory_order_release);
}

void Recorder::emit(detail::DumpSink& sink) const {
  sink.write("SBFR", 4);
  sink.put16(kRecorderDumpVersion);
  sink.put64(static_cast<std::uint64_t>(::getpid()));
  sink.put64(mono_now_ns());
  sink.put64(real_now_ns());
  // label_ and the name/ring tables are only appended to (publish with
  // release), so reading them without mu_ is safe — required in the signal
  // handler, where taking a lock could deadlock.
  const std::size_t label_len = ::strnlen(label_, sizeof(label_));
  sink.put32(static_cast<std::uint32_t>(label_len));
  sink.write(label_, label_len);
  const auto name_count = name_count_.load(std::memory_order_acquire);
  sink.put32(name_count);
  for (std::uint32_t i = 0; i < name_count; ++i) {
    const char* name = names_[i];
    const std::size_t len = std::strlen(name);
    sink.put32(static_cast<std::uint32_t>(len));
    sink.write(name, len);
  }
  const auto ring_count = ring_count_.load(std::memory_order_acquire);
  sink.put32(ring_count);
  for (std::uint32_t i = 0; i < ring_count; ++i) {
    const Ring* ring = rings_[i];
    sink.put32(ring->tid);
    const auto head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t count = head < kRingCapacity ? head : kRingCapacity;
    sink.put64(count);
    for (std::uint64_t seq = head - count; seq < head; ++seq) {
      sink.put_event(ring->events[seq & (kRingCapacity - 1)]);
    }
  }
  sink.put64(sink.hash);
}

void Recorder::flush_fd(int fd) const {
  DumpSink sink;
  sink.fd = fd;
  emit(sink);
}

RecorderDump Recorder::snapshot() const {
  // Emit through the Bytes sink and decode: snapshots exercise the exact
  // codec the file dumps use, so the two can never diverge.
  Bytes bytes;
  DumpSink sink;
  sink.out = &bytes;
  emit(sink);
  auto dump = decode_recorder_dump(bytes);
  return dump ? std::move(*dump) : RecorderDump{};
}

bool Recorder::flush_to_file(const std::string& path) const {
  const Bytes bytes = encode_recorder_dump(snapshot());
  return atomic_write_file(path, bytes.data(), bytes.size());
}

void Recorder::signal_flush_handler(int signo) {
  Recorder& rec = global();
  if (rec.signal_path_[0] != '\0') {
    const int fd = ::open(rec.signal_path_,
                          O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    if (fd >= 0) {
      rec.flush_fd(fd);
      ::fsync(fd);
      ::close(fd);
    }
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

void Recorder::install_signal_flush(const std::string& path) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::size_t n =
        path.size() < kPathMax - 1 ? path.size() : kPathMax - 1;
    std::memcpy(signal_path_, path.data(), n);
    signal_path_[n] = '\0';
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &Recorder::signal_flush_handler;
  sigemptyset(&sa.sa_mask);
  for (const int signo :
       {SIGTERM, SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    ::sigaction(signo, &sa, nullptr);
  }
}

void Recorder::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  const auto ring_count = ring_count_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < ring_count; ++i) {
    rings_[i]->head.store(0, std::memory_order_release);
  }
}

}  // namespace softborg::obs
