#include "trace/sampling.h"

#include <algorithm>
#include <cmath>

namespace softborg {

bool sample_site(std::uint32_t site, PodId pod, std::uint32_t rate) {
  if (rate <= 1) return true;
  // SplitMix-style avalanche of (site, pod).
  std::uint64_t x = (static_cast<std::uint64_t>(site) << 32) ^ pod.value;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x % rate == 0;
}

void SiteStats::add(const SampledTrace& t) {
  const bool failed = t.outcome != Outcome::kOk;
  for (const auto& ob : t.observations) {
    Cell& c = cells_[ob.site];
    if (ob.taken) {
      (failed ? c.taken_fail : c.taken_ok)++;
    } else {
      (failed ? c.nottaken_fail : c.nottaken_ok)++;
    }
  }
}

const SiteStats::Cell* SiteStats::cell(std::uint32_t site) const {
  auto it = cells_.find(site);
  return it == cells_.end() ? nullptr : &it->second;
}

double SiteStats::failure_score(std::uint32_t site, bool taken) const {
  const Cell* c = cell(site);
  if (c == nullptr) return 0.0;
  const double d_fail =
      static_cast<double>(taken ? c->taken_fail : c->nottaken_fail);
  const double d_ok = static_cast<double>(taken ? c->taken_ok : c->nottaken_ok);
  const double o_fail =
      static_cast<double>(taken ? c->nottaken_fail : c->taken_fail);
  const double o_ok = static_cast<double>(taken ? c->nottaken_ok : c->taken_ok);
  // Add-one smoothing keeps rarely observed sites from saturating the score.
  const double p_with = (d_fail + 1.0) / (d_fail + d_ok + 2.0);
  const double p_without = (o_fail + 1.0) / (o_fail + o_ok + 2.0);
  return p_with - p_without;
}

void SiteStats::save_state(Bytes& out) const {
  std::vector<std::uint32_t> sites;
  sites.reserve(cells_.size());
  for (const auto& [site, cell] : cells_) sites.push_back(site);
  std::sort(sites.begin(), sites.end());
  put_varint(out, sites.size());
  for (const std::uint32_t site : sites) {
    const Cell& c = cells_.at(site);
    put_varint(out, site);
    put_varint(out, c.taken_ok);
    put_varint(out, c.taken_fail);
    put_varint(out, c.nottaken_ok);
    put_varint(out, c.nottaken_fail);
  }
}

bool SiteStats::load_state(StateReader& r) {
  cells_.clear();
  const std::uint64_t n = r.count(5);
  cells_.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    const std::uint32_t site = r.u32();
    Cell c;
    c.taken_ok = r.u64();
    c.taken_fail = r.u64();
    c.nottaken_ok = r.u64();
    c.nottaken_fail = r.u64();
    if (!r.ok() || !cells_.emplace(site, c).second) {
      r.fail();  // duplicate site = corrupt snapshot
      return false;
    }
  }
  return r.ok();
}

std::vector<std::uint32_t> SiteStats::ranked_sites() const {
  std::vector<std::uint32_t> sites;
  sites.reserve(cells_.size());
  for (const auto& [site, cell] : cells_) sites.push_back(site);
  std::sort(sites.begin(), sites.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const double sa =
                  std::max(failure_score(a, true), failure_score(a, false));
              const double sb =
                  std::max(failure_score(b, true), failure_score(b, false));
              if (sa != sb) return sa > sb;
              return a < b;
            });
  return sites;
}

}  // namespace softborg
