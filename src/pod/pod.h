// The pod: SoftBorg's per-program-instance runtime (paper §3, Fig. 1).
//
// A pod "lies underneath" one user's instance of a program P. On every
// user-triggered execution it:
//   1. draws inputs from that user's own distribution (or consumes a hive
//      guidance directive instead — input seed, schedule steering, fault
//      injection);
//   2. runs P under the interpreter with all installed fixes active;
//   3. classifies the outcome, inferring end-user feedback (a hung program
//      is usually force-killed by the user);
//   4. captures the by-products at the configured granularity, optionally
//      producing coordinated-sampling site observations instead of the full
//      bit-vector;
//   5. anonymizes and ships the trace to the hive.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/state_wire.h"
#include "minivm/corpus.h"
#include "minivm/fixes.h"
#include "minivm/interp.h"
#include "pod/protocol.h"
#include "privacy/anonymize.h"
#include "trace/sampling.h"
#include "trace/trace.h"

namespace softborg {

// How this simulated user exercises the program. Heterogeneous profiles are
// what makes collective aggregation worthwhile: no single user covers much,
// together they cover a lot (paper §2).
struct UserProfile {
  // Per input slot, the subrange this user actually draws from; empty means
  // the full program domain.
  std::vector<InputDomain> input_prefs;
  double executions_per_day = 5.0;
  // Probability a hang is force-killed by the user (inferred feedback).
  double kill_on_hang = 0.8;
  // Fraction of guidance directives this pod honors.
  double guidance_compliance = 1.0;
};

struct PodConfig {
  Granularity granularity = Granularity::kTaintedBranches;
  std::uint32_t sampling_rate = 0;  // >0: coordinated sampling, 1/rate sites
  // Default keeps pod identity (trusted deployment); privacy experiments
  // turn the knobs up and measure the utility cost (E8).
  AnonymizeConfig anonymize{.strip_pod_id = false, .quantize_day = false};
  std::uint64_t max_steps = 200'000;
  // Superinstruction fusion in the MiniVM core. Traces are byte-identical
  // either way (tests/dispatch_diff_test.cpp); off is only useful for
  // dispatch-overhead experiments.
  bool enable_fusion = true;
};

struct PodRun {
  Trace trace;  // already anonymized
  std::optional<SampledTrace> sampled;
  bool fix_intervened = false;
  std::vector<LockEvent> deadlock_cycle;
};

struct PodStats {
  std::uint64_t runs = 0;
  std::uint64_t failures = 0;       // crash/deadlock/hang/user-killed
  std::uint64_t fix_interventions = 0;
  std::uint64_t guided_runs = 0;

  bool operator==(const PodStats&) const = default;
};

class Pod {
 public:
  Pod(PodId id, const CorpusEntry& entry, UserProfile profile,
      PodConfig config, std::uint64_t seed);

  PodId id() const { return id_; }
  ProgramId program() const { return entry_->program.id; }

  // --- fix installation (idempotent by FixId) ------------------------------
  bool install(const GuardPatch& patch);
  bool install(const CrashGuardFix& fix);
  bool install(const LockAvoidanceFix& fix);
  const FixSet& fixes() const { return fixes_; }

  // --- guidance ------------------------------------------------------------
  // Queues a directive; the next eligible run consumes it.
  void push_guidance(GuidanceDirective directive);
  std::size_t pending_guidance() const { return guidance_.size(); }

  // --- execution -----------------------------------------------------------
  // Number of user-triggered executions for this virtual day.
  std::uint32_t draws_for_day();
  // Performs one execution and returns the (anonymized) by-products.
  PodRun run_once(std::uint64_t day);

  const PodStats& stats() const { return stats_; }

  // Durable-store serialization of the pod's mutable state (rng, installed
  // fixes, queued guidance, stats, trace-sequence counter). Identity and
  // config are not persisted: the resuming World reconstructs the pod with
  // the same (id, entry, profile, config) and then overwrites its state.
  // load_state validates every embedded fix/guidance wire record and that it
  // targets this pod's program; false means corrupt — discard the pod.
  void save_state(Bytes& out) const;
  bool load_state(StateReader& r);

 private:
  std::vector<Value> draw_inputs();

  PodId id_;
  const CorpusEntry* entry_;
  UserProfile profile_;
  PodConfig config_;
  Rng rng_;
  FixSet fixes_;
  std::vector<std::uint64_t> installed_fix_ids_;
  std::deque<GuidanceDirective> guidance_;
  PodStats stats_;
  std::uint64_t next_trace_seq_ = 1;
};

}  // namespace softborg
