// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component of SoftBorg (thread scheduler, fleet simulator,
// network, local-search solver) draws from an Rng seeded from the experiment
// seed, so whole-system runs are bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <limits>

#include "common/check.h"

namespace softborg {

// SplitMix64: used to expand seeds and as a stream splitter.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    SB_CHECK(bound > 0);
    // Lemire's nearly-divisionless method, with rejection for exactness.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    SB_CHECK(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  // Derives an independent child generator; deterministic in (state, salt).
  Rng split(std::uint64_t salt) {
    std::uint64_t s = (*this)() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(s));
  }

  // State capture for the durable store (src/store): resuming a run from a
  // snapshot must continue every stream exactly where it left off.
  void export_state(std::uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  void import_state(const std::uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace softborg
