# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/minivm_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/sym_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/privacy_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/hive_test[1]_include.cmake")
include("/root/repo/build/tests/pod_test[1]_include.cmake")
include("/root/repo/build/tests/world_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/corpus2_test[1]_include.cmake")
include("/root/repo/build/tests/world2_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/sharded_test[1]_include.cmake")
include("/root/repo/build/tests/interp2_test[1]_include.cmake")
include("/root/repo/build/tests/sym2_test[1]_include.cmake")
