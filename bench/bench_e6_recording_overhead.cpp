// E6 — Capture cost vs recording granularity, and coordinated sampling
// (paper §3.1).
//
// Claims under test: capture cost can be reduced by (a) recording only
// branches that depend on program-external events, and (b) coordinated
// sampling across the user community (Liblit [18]); "a recorded trace
// specifies a family of paths, but subsequent aggregation ... can narrow
// down this family".
//
// Part 1: interpreter throughput and wire bytes per execution at each
// granularity (none / tainted-only / all branches / full).
// Part 2: sampling-rate sweep — per-pod recording cost vs how well the
// aggregated site statistics still localize the buggy branch (CBI-style
// rank of the real crash predictor, site 3 of media_parser).
//
// Expected shape: tainted-only costs a small multiple of no-recording and
// far less than all-branches; with rate-r sampling per-pod cost drops ~r x
// while the bug's site keeps rank 1 until very aggressive rates.
//
// Part 3: fleet telemetry overhead — the BM_ShardedPump workload pumped
// with observability fully disabled, with counters on (the default), and
// with counters plus span sampling. The acceptance bar (ROADMAP): counters
// with exporters idle cost < 2% on this workload.
#include <cstdio>

#include "bench_json.h"
#include "core/softborg.h"

using namespace softborg;

int main(int argc, char** argv) {
  BenchJsonWriter json("e6_recording_overhead", argc, argv);
  // ---- part 1: granularity sweep -------------------------------------------
  struct Workload {
    CorpusEntry entry;
    std::vector<Value> inputs;
  };
  std::vector<Workload> workloads;
  workloads.push_back({make_media_parser(), {20, 100}});
  workloads.push_back({make_file_copier(), {32, 8}});
  // skewed_workload has a long deterministic loop: the program where
  // "record only input-dependent branches" pays off most.
  workloads.push_back(
      {make_skewed_workload(8), {1, 1, 0, 1, 0, 1, 0, 1}});

  std::printf("# E6.1: recording granularity vs capture cost\n");
  std::printf("%-14s %-18s %-12s %-12s %-12s\n", "program", "granularity",
              "exec/sec", "bits/exec", "bytes/exec");

  for (const auto& w : workloads) {
    for (auto gran : {Granularity::kNone, Granularity::kTaintedBranches,
                      Granularity::kAllBranches, Granularity::kFull}) {
      const char* name = gran == Granularity::kNone ? "none"
                         : gran == Granularity::kTaintedBranches
                             ? "tainted-only"
                         : gran == Granularity::kAllBranches ? "all-branches"
                                                             : "full";
      const int kRuns = 20'000;
      std::uint64_t bits = 0, bytes = 0;
      Timer timer;
      for (int i = 0; i < kRuns; ++i) {
        ExecConfig cfg;
        cfg.inputs = w.inputs;
        cfg.seed = static_cast<std::uint64_t>(i) + 1;
        cfg.granularity = gran;
        const auto result = execute(w.entry.program, cfg);
        bits += result.trace.branch_bits.size();
        bytes += encode_trace(result.trace).size();
      }
      const double secs = timer.elapsed_seconds();
      std::printf("%-14s %-18s %-12.0f %-12.1f %-12.1f\n",
                  w.entry.program.name.c_str(), name, kRuns / secs,
                  static_cast<double>(bits) / kRuns,
                  static_cast<double>(bytes) / kRuns);
      json.add(w.entry.program.name + "/" + name, "exec_per_sec",
               kRuns / secs);
      json.add(w.entry.program.name + "/" + name, "bytes_per_exec",
               static_cast<double>(bytes) / kRuns);
    }
  }

  // ---- part 2: coordinated sampling ----------------------------------------
  const auto parser = make_media_parser();
  std::printf("\n# E6.2: coordinated sampling — cost vs bug localization\n");
  std::printf("%-8s %-16s %-18s %-14s\n", "rate", "obs/run(pod)",
              "crash-site rank", "crash score");

  for (std::uint32_t rate : {1u, 2u, 4u, 8u, 16u, 32u}) {
    SiteStats stats;
    std::uint64_t observations = 0, runs = 0;
    Rng rng(11);
    // 400 pods, biased toward the crash region so failures occur.
    for (std::uint64_t pod_id = 1; pod_id <= 400; ++pod_id) {
      PodConfig config;
      config.sampling_rate = rate;
      UserProfile profile;
      profile.input_prefs = {{0, 63}, {150, 255}};
      Pod pod(PodId(pod_id), parser, profile, config, rng());
      for (int run = 0; run < 10; ++run) {
        const auto pr = pod.run_once(1);
        runs++;
        if (pr.sampled) {
          observations += pr.sampled->observations.size();
          stats.add(*pr.sampled);
        }
      }
    }
    // Where does the true crash predictor (site 3: "size < 200" taken ==
    // false inside format 13) rank?
    const auto ranked = stats.ranked_sites();
    std::size_t rank = 0;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      if (ranked[i] == 3) rank = i + 1;
    }
    std::printf("%-8u %-16.2f %-18zu %-14.3f\n", rate,
                static_cast<double>(observations) /
                    static_cast<double>(runs),
                rank, stats.failure_score(3, false));
  }
  std::printf("\n(site 3 is the planted crash predictor; rank 1 means the "
              "aggregated statistics localize the bug exactly)\n");

  // ---- part 3: fleet telemetry overhead ------------------------------------
  // The BM_ShardedPump fleet workload (64 endpoints x 64 runs, 8 shards,
  // reliable 1-tick net), pumped with telemetry fully off, with counters on
  // (the shipping default; exporters idle), and with counters + stage spans.
  {
    const auto corpus = standard_corpus();
    std::vector<Bytes> wires;
    {
      Rng rng(29);
      wires.reserve(64 * 64);
      for (std::size_t endpoint = 0; endpoint < 64; ++endpoint) {
        const CorpusEntry& entry = corpus[rng.next_below(corpus.size())];
        ExecConfig cfg;
        for (const auto& d : entry.domains) {
          cfg.inputs.push_back(rng.next_in(d.lo, d.hi));
        }
        for (std::size_t run = 0; run < 64; ++run) {
          cfg.seed = endpoint * 64 + run + 1;
          auto result = execute(entry.program, cfg);
          result.trace.id = TraceId(endpoint * 64 + run + 1);
          wires.push_back(encode_trace(result.trace));
        }
      }
    }
    NetConfig net_config;
    net_config.min_latency_ticks = 1;
    net_config.max_latency_ticks = 1;
    const auto pump_once = [&] {
      SimNet net(net_config);
      ShardedHiveConfig config;
      config.pump_threads = 4;
      ShardedHive hive(&corpus, 8, net, config);
      const Endpoint client = net.add_endpoint();
      for (const auto& w : wires) {
        net.send(client, hive.ingress(), kMsgTrace, w);
      }
      for (int round = 0; round < 3; ++round) {
        net.tick();
        hive.pump(net);
      }
      return hive.aggregate_stats().traces_ingested;
    };
    struct Leg {
      const char* name;
      bool counters;
      bool spans;
    };
    const Leg legs[] = {{"telemetry-off", false, false},
                        {"counters-on", true, false},
                        {"counters+spans", true, true}};
    // Interleave the legs round-robin and keep each leg's fastest round:
    // a single pump is ~2-3 ms, so back-to-back blocks would fold clock and
    // allocator drift into the comparison. The minimum over interleaved
    // rounds isolates the instrumentation cost itself.
    const int kRounds = 12, kRepsPerRound = 5;
    std::printf("\n# E6.3: fleet telemetry overhead on the sharded pump\n");
    std::printf("%-16s %-12s %-12s %-10s\n", "telemetry", "millis/pump",
                "traces/sec", "vs off");
    std::uint64_t ingested = pump_once();  // warm-up: pools + allocator
    double best_ms[3] = {1e30, 1e30, 1e30};
    for (int round = 0; round < kRounds; ++round) {
      for (int l = 0; l < 3; ++l) {
        obs::set_enabled(legs[l].counters);
        obs::set_spans_enabled(legs[l].spans);
        Timer timer;
        for (int rep = 0; rep < kRepsPerRound; ++rep) pump_once();
        const double ms = timer.elapsed_seconds() * 1e3 / kRepsPerRound;
        if (ms < best_ms[l]) best_ms[l] = ms;
      }
    }
    for (int l = 0; l < 3; ++l) {
      const double overhead =
          (best_ms[l] - best_ms[0]) / best_ms[0] * 100.0;
      std::printf("%-16s %-12.2f %-12.0f %+.2f%%\n", legs[l].name, best_ms[l],
                  static_cast<double>(ingested) / (best_ms[l] / 1e3),
                  overhead);
      json.add(std::string("sharded_pump/") + legs[l].name, "millis",
               best_ms[l]);
      json.add(std::string("sharded_pump/") + legs[l].name, "overhead_pct",
               overhead);
    }
    obs::set_enabled(true);
    obs::set_spans_enabled(false);
    std::printf("(acceptance bar: counters-on overhead < 2%% with exporters "
                "idle)\n");
  }
  return json.write() ? 0 : 1;
}
