// E13 — Sustained ingest throughput of the multi-process distributed hive
// (ISSUE 9 tentpole; paper §3: the hive "may be physically centralized …
// entirely distributed, or hybrid").
//
// Claim under test: splitting the hive across shard worker processes behind
// the trace router (src/dist) scales sustained traces/sec with shard count,
// and the bounded-ingress + credit-window machinery keeps memory bounded —
// shedding, not queue growth — when ingress runs 2x hotter than the fleet
// can drain.
//
// Setup, throughput legs: for N in {1, 2, 4, 8}, fork N shard worker
// processes (spawn_worker_process — forked before the driver owns any
// threads), connect them to a TraceRouter over a Unix-domain socket, route a
// pre-generated multi-program workload, and time ingress → quiescent (every
// queue empty, every credit acked). Queues are sized to the workload so the
// throughput legs never shed: every wire is ingested exactly once, and the
// closing reports are cross-checked against the workload size.
//
// Overload leg: 2 shards, a 2x workload, and deliberately tiny queues
// (capacity 64, credit window 16). The router admits everything instantly,
// the queues fill, the lowest-priority traffic is shed, and the run still
// drains to quiescent — the bounded-memory claim is the measured fleet-total
// queue peak (≤ shards × capacity) plus completion, and forwarded + shed
// must equal received.
//
// Honesty note: shard workers are real processes, so the speedup ceiling is
// the host's core count. On a 1-core container every leg time-slices on the
// same core and traces/sec stays roughly flat across N (the bench prints
// the hardware thread count next to the numbers); the ≥2.5x-at-4-shards
// acceptance figure is a multi-core (CI) expectation. Measured numbers and
// methodology: EXPERIMENTS.md ("E13").
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/softborg.h"

using namespace softborg;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kWorkloadTraces = 8192;
constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};

// The hand-written corpus has only 7 programs, and the ring routes whole
// programs — with so few keys one shard ends up owning ~5/6 of the traffic
// and key skew, not the transport, caps the speedup. Widen the population
// with generated programs so the consistent hash has enough keys to spread
// (the real fleet shape: many programs, none dominant).
std::vector<CorpusEntry> bench_corpus() {
  std::vector<CorpusEntry> corpus = standard_corpus();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    corpus.push_back(make_random_program(9000 + seed));
  }
  return corpus;
}

// A day of fleet traffic: corpus programs re-executed with fresh inputs and
// seeds, every wire carrying a unique trace id so dedup passes all of them
// (the recycling happens in the shards' replay-coalescing stage).
std::vector<Bytes> make_workload(const std::vector<CorpusEntry>& corpus,
                                 std::size_t n, std::uint64_t seed,
                                 std::uint64_t id_base) {
  Rng rng(seed);
  std::vector<Bytes> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const CorpusEntry& entry = corpus[rng.next_below(corpus.size())];
    ExecConfig cfg;
    for (const auto& d : entry.domains) {
      cfg.inputs.push_back(rng.next_in(d.lo, d.hi));
    }
    cfg.seed = seed * 1000003 + i;
    auto result = execute(entry.program, cfg);
    result.trace.id = TraceId(id_base + i + 1);
    result.trace.day = static_cast<std::uint32_t>(i % 7);
    out.push_back(encode_trace(result.trace));
  }
  return out;
}

struct LegResult {
  double seconds = 0.0;  // ingress → quiescent wall time
  std::uint64_t ingested = 0;
  std::size_t reports = 0;
  dist::RouterStats router;
  bool completed = false;
};

LegResult run_leg(const std::vector<CorpusEntry>& corpus,
                  const std::vector<Bytes>& wires, std::size_t num_shards,
                  std::size_t queue_capacity, std::uint32_t credit_window) {
  const std::string addr = "unix:/tmp/softborg-bench-e13-" +
                           std::to_string(::getpid()) + "-" +
                           std::to_string(num_shards) + "-" +
                           std::to_string(queue_capacity) + ".sock";
  dist::Listener listener(addr);

  // Fork the fleet before anything in this process owns a thread (the shard
  // hives spin up pools in the children only).
  dist::WorkerConfig wconfig;
  wconfig.queue_capacity = queue_capacity;
  wconfig.credit_window = credit_window;
  std::vector<int> pids;
  for (std::size_t i = 0; i < num_shards; ++i) {
    const int pid = dist::spawn_worker_process(i, &corpus, wconfig,
                                               listener.bound_addr());
    if (pid < 0) {
      std::fprintf(stderr, "e13: fork failed for shard %zu\n", i);
      break;
    }
    pids.push_back(pid);
  }

  dist::RouterConfig rconfig;
  rconfig.queue_capacity = queue_capacity;
  dist::TraceRouter router(num_shards, rconfig);

  const auto round = [&] {
    while (auto ch = listener.accept()) router.add_unidentified(std::move(ch));
    router.pump();
  };
  const auto wait_until = [&](auto done, int timeout_ms) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!done()) {
      if (Clock::now() > deadline) return false;
      const std::uint64_t before =
          router.stats().forwarded + router.stats().credits_granted;
      round();
      // Yield the core only on no-progress rounds: a spinning router starves
      // the very workers it is timing, but a fixed per-round sleep would put
      // a floor under the measured drain time.
      if (router.stats().forwarded + router.stats().credits_granted ==
          before) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    return true;
  };

  LegResult out;
  const bool up = pids.size() == num_shards &&
                  wait_until(
                      [&] {
                        for (std::size_t i = 0; i < num_shards; ++i) {
                          if (!router.shard_alive(i)) return false;
                        }
                        return true;
                      },
                      30'000);
  if (up) {
    const auto start = Clock::now();
    for (const auto& w : wires) router.route_wire(w);
    out.completed = wait_until([&] { return router.quiescent(); }, 180'000);
    out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  }

  router.broadcast_shutdown();
  wait_until([&] { return router.all_reports_in(); }, 30'000);
  for (const auto& r : router.reports()) {
    if (!r.closed) continue;
    ++out.reports;
    if (const auto stats = dist::decode_worker_stats(r.stats_wire)) {
      out.ingested += stats->ingested;
    }
  }
  out.router = router.stats();
  for (const int pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json("e13_throughput", argc, argv);
  const std::vector<CorpusEntry> corpus = bench_corpus();
  const std::vector<Bytes> wires =
      make_workload(corpus, kWorkloadTraces, 29, 0);
  const std::vector<Bytes> overload_wires =
      make_workload(corpus, 2 * kWorkloadTraces, 31, 1'000'000);

  std::printf("E13: distributed hive sustained throughput\n");
  std::printf("  workload: %zu traces, %zu programs; host threads: %u\n",
              wires.size(), corpus.size(),
              std::thread::hardware_concurrency());
  std::printf(
      "  (shards are processes — expect flat scaling on a 1-core host)\n\n");
  std::printf("  %-8s %10s %12s %10s %8s %8s\n", "shards", "seconds",
              "traces/sec", "ingested", "shed", "stalls");

  bool ok = true;
  double base_tps = 0.0;
  for (const std::size_t n : kShardCounts) {
    // Queues sized to the workload: throughput legs measure drain speed, not
    // shed policy, so nothing may be dropped.
    const LegResult leg = run_leg(corpus, wires, n, wires.size(), 256);
    const double tps = leg.seconds > 0.0
                           ? static_cast<double>(wires.size()) / leg.seconds
                           : 0.0;
    if (n == 1) base_tps = tps;
    std::printf("  %-8zu %10.3f %12.0f %10llu %8llu %8llu%s\n", n, leg.seconds,
                tps, static_cast<unsigned long long>(leg.ingested),
                static_cast<unsigned long long>(leg.router.shed),
                static_cast<unsigned long long>(leg.router.backpressure_stalls),
                leg.completed ? "" : "  [DID NOT DRAIN]");
    const std::string workload = "shards_" + std::to_string(n);
    json.add(workload, "traces_per_sec", tps, base_tps);
    json.add(workload, "ingested_total", static_cast<double>(leg.ingested));
    json.add(workload, "completed", leg.completed ? 1.0 : 0.0);
    ok = ok && leg.completed && leg.reports == n &&
         leg.ingested == wires.size() && leg.router.shed == 0;
    if (leg.ingested != wires.size() || leg.router.shed != 0) {
      std::fprintf(stderr,
                   "e13: shards=%zu lost traffic (ingested %llu/%zu, shed "
                   "%llu)\n",
                   n, static_cast<unsigned long long>(leg.ingested),
                   wires.size(),
                   static_cast<unsigned long long>(leg.router.shed));
    }
  }

  // Overload: 2x the workload into deliberately tiny queues. Bounded memory
  // means the queue peak never exceeds capacity and the run still completes;
  // shedding (not buffering) absorbs the excess.
  constexpr std::size_t kOverloadQueue = 64;
  const LegResult over =
      run_leg(corpus, overload_wires, 2, kOverloadQueue, 16);
  const double shed_rate =
      over.router.received > 0
          ? static_cast<double>(over.router.shed) /
                static_cast<double>(over.router.received)
          : 0.0;
  // queue_depth_peak is the fleet-total peak, bounded by shards * capacity.
  const bool over_ok =
      over.completed && over.router.shed > 0 &&
      over.router.queue_depth_peak <= 2 * kOverloadQueue &&
      over.router.forwarded + over.router.shed == over.router.received;
  std::printf(
      "\n  overload (2 shards, queue %zu, 2x traffic): received %llu, "
      "forwarded %llu, shed %llu (%.1f%%), queue peak %zu, stalls %llu — "
      "%s\n",
      kOverloadQueue, static_cast<unsigned long long>(over.router.received),
      static_cast<unsigned long long>(over.router.forwarded),
      static_cast<unsigned long long>(over.router.shed), 100.0 * shed_rate,
      over.router.queue_depth_peak,
      static_cast<unsigned long long>(over.router.backpressure_stalls),
      over_ok ? "bounded, completed" : "FAILED");
  json.add("overload_2x", "shed_total",
           static_cast<double>(over.router.shed));
  json.add("overload_2x", "shed_rate", shed_rate);
  json.add("overload_2x", "queue_depth_peak",
           static_cast<double>(over.router.queue_depth_peak));
  json.add("overload_2x", "backpressure_stalls",
           static_cast<double>(over.router.backpressure_stalls));
  json.add("overload_2x", "bounded_and_completed", over_ok ? 1.0 : 0.0);
  ok = ok && over_ok;

  if (!json.write()) return 1;
  return ok ? 0 : 1;
}
