#include "core/world.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"
#include "obs/span.h"
#include "trace/codec.h"

namespace softborg {

World::World(std::vector<CorpusEntry> corpus, WorldConfig config)
    : corpus_(std::move(corpus)), config_(config), rng_(config.seed),
      net_(config.net) {
  SB_CHECK(!corpus_.empty());
  hive_endpoint_ = net_.add_endpoint();
  hive_ = std::make_unique<Hive>(&corpus_, config_.hive);

  std::uint64_t next_pod_id = 1;
  for (std::size_t ci = 0; ci < corpus_.size(); ++ci) {
    for (std::size_t i = 0; i < config_.pods_per_program; ++i) {
      PodSlot slot;
      slot.corpus_index = ci;
      slot.endpoint = net_.add_endpoint();
      slot.pod = std::make_unique<Pod>(PodId(next_pod_id++), corpus_[ci],
                                       random_profile(corpus_[ci]),
                                       config_.pod_config, rng_());
      pods_.push_back(std::move(slot));
    }
  }
}

UserProfile World::random_profile(const CorpusEntry& entry) {
  UserProfile profile;
  // Heterogeneous usage: rates spread around the mean with a heavy tail.
  const double r = rng_.next_double();
  profile.executions_per_day =
      config_.mean_runs_per_day * (r < 0.1 ? 4.0 : (r < 0.5 ? 1.0 : 0.4));
  // Each user draws inputs from their own window of the domain (about a
  // third of it), except "power users" (20%) who roam the full domain.
  if (!rng_.next_bool(0.2)) {
    for (const auto& d : entry.domains) {
      const Value width = d.width();
      const Value window = std::max<Value>(width / 3, 1);
      const Value start =
          d.lo + rng_.next_in(0, std::max<Value>(width - window, 0));
      profile.input_prefs.push_back(
          {start, std::min(start + window - 1, d.hi)});
    }
  }
  return profile;
}

void World::deliver_downstream() {
  for (auto& slot : pods_) {
    for (const auto& msg : net_.drain(slot.endpoint)) {
      switch (msg.type) {
        case kMsgGuardPatch: {
          if (auto patch = decode_guard_patch(msg.payload)) {
            slot.pod->install(*patch);
          }
          break;
        }
        case kMsgCrashGuard: {
          if (auto fix = decode_crash_guard(msg.payload)) {
            slot.pod->install(*fix);
          }
          break;
        }
        case kMsgLockFix: {
          if (auto fix = decode_lock_fix(msg.payload)) {
            slot.pod->install(*fix);
          }
          break;
        }
        case kMsgGuidance: {
          if (auto directive = decode_guidance(msg.payload)) {
            slot.pod->push_guidance(std::move(*directive));
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

void World::send_fix_to(const FixCandidate& candidate, const PodSlot& slot) {
  std::visit(
      [&](const auto& fix) {
        using T = std::decay_t<decltype(fix)>;
        if constexpr (std::is_same_v<T, GuardPatch>) {
          net_.send(hive_endpoint_, slot.endpoint, kMsgGuardPatch,
                    encode_guard_patch(fix));
        } else if constexpr (std::is_same_v<T, CrashGuardFix>) {
          net_.send(hive_endpoint_, slot.endpoint, kMsgCrashGuard,
                    encode_crash_guard(fix));
        } else {
          net_.send(hive_endpoint_, slot.endpoint, kMsgLockFix,
                    encode_lock_fix(fix));
        }
      },
      candidate.fix);
}

void World::broadcast_fixes(const std::vector<FixCandidate>& fixes) {
  for (const auto& candidate : fixes) {
    fixes_distributed_++;
    std::size_t program_index = 0;
    for (const auto& slot : pods_) {
      if (slot.pod->program() != candidate.program) continue;
      const bool in_canary =
          config_.canary_fraction >= 1.0 ||
          static_cast<double>(program_index) <
              config_.canary_fraction *
                  static_cast<double>(config_.pods_per_program);
      program_index++;
      if (in_canary) send_fix_to(candidate, slot);
    }
    if (config_.canary_fraction < 1.0) {
      pending_rollouts_.push_back(
          {candidate, day_ + config_.canary_days});
    }
  }
}

void World::advance_rollouts() {
  for (auto it = pending_rollouts_.begin(); it != pending_rollouts_.end();) {
    if (day_ < it->full_rollout_day) {
      ++it;
      continue;
    }
    // The canary verdict: if the hive's telemetry reopened the bug, the
    // fix is not holding — cancel the full rollout.
    const Bug* bug = hive_->bug_tracker().find(it->candidate.bug);
    if (bug != nullptr && !bug->fixed) {
      rollouts_cancelled_++;
      it = pending_rollouts_.erase(it);
      continue;
    }
    std::size_t program_index = 0;
    for (const auto& slot : pods_) {
      if (slot.pod->program() != it->candidate.program) continue;
      const bool was_canary =
          static_cast<double>(program_index) <
          config_.canary_fraction *
              static_cast<double>(config_.pods_per_program);
      program_index++;
      if (!was_canary) send_fix_to(it->candidate, slot);
    }
    it = pending_rollouts_.erase(it);
  }
}

void World::send_guidance() {
  if (config_.guidance_per_program_per_day == 0) return;
  const auto directives =
      hive_->plan_guidance(config_.guidance_per_program_per_day);
  for (const auto& d : directives) {
    // Pick a random pod of the right program.
    std::vector<const PodSlot*> eligible;
    for (const auto& slot : pods_) {
      if (slot.pod->program() == d.program) eligible.push_back(&slot);
    }
    if (eligible.empty()) continue;
    const PodSlot* target = eligible[rng_.next_below(eligible.size())];
    net_.send(hive_endpoint_, target->endpoint, kMsgGuidance,
              encode_guidance(d));
  }
}

void World::step_day() {
  SB_SPAN("world.step_day");
  day_++;
  DayMetrics metrics;
  metrics.day = day_;

  // 1. Deliver yesterday's in-flight downstream messages.
  deliver_downstream();

  // 2. Users run their software; pods ship by-products.
  for (auto& slot : pods_) {
    const std::uint32_t n = slot.pod->draws_for_day();
    for (std::uint32_t i = 0; i < n; ++i) {
      PodRun run = slot.pod->run_once(day_);
      metrics.runs++;
      if (run.trace.outcome != Outcome::kOk) metrics.failures++;
      if (run.fix_intervened) metrics.fix_interventions++;
      net_.send(slot.endpoint, hive_endpoint_, kMsgTrace,
                encode_trace(run.trace));
      if (run.sampled.has_value()) {
        hive_->ingest_sampled(*run.sampled);  // cheap side channel
      }
    }
  }

  // 3. Let the network move, then the hive ingest everything delivered as
  //    one batch (decode/replay fan out when hive.ingest_threads > 1).
  for (std::size_t t = 0; t < config_.ticks_per_day; ++t) net_.tick();
  std::vector<Bytes> batch;
  auto messages = net_.drain(hive_endpoint_);
  batch.reserve(messages.size());
  for (auto& msg : messages) {
    if (msg.type == kMsgTrace) batch.push_back(std::move(msg.payload));
  }
  if (!batch.empty()) hive_->ingest_batch(batch);

  // 4. Analysis: bugs -> fixes -> distribution; guidance planning; proof
  //    gap closure over a rotating corpus slice.
  const auto fixes = hive_->process();
  if (config_.distribute_fixes) {
    advance_rollouts();
    broadcast_fixes(fixes);
  }
  send_guidance();
  if (config_.proof_programs_per_day > 0 && !corpus_.empty()) {
    const std::size_t n =
        std::min(config_.proof_programs_per_day, corpus_.size());
    const std::size_t start = ((day_ - 1) * n) % corpus_.size();
    std::vector<const CorpusEntry*> slice;
    slice.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      slice.push_back(&corpus_[(start + i) % corpus_.size()]);
    }
    hive_->attempt_proofs_for(slice, config_.proof_property);
  }
  for (std::size_t t = 0; t < config_.ticks_per_day; ++t) net_.tick();

  // 5. Metrics.
  metrics.failure_rate =
      metrics.runs == 0
          ? 0.0
          : static_cast<double>(metrics.failures) /
                static_cast<double>(metrics.runs);
  metrics.bugs_found_total = hive_->bug_tracker().all().size();
  metrics.bugs_fixed_total =
      hive_->bug_tracker().all().size() - hive_->bug_tracker().open_bugs().size();
  metrics.fixes_distributed_total = fixes_distributed_;
  for (const auto& entry : corpus_) {
    if (const ExecTree* tree = hive_->tree(entry.program.id)) {
      metrics.total_paths += tree->num_paths();
      metrics.open_frontiers += tree->open_frontiers();
    }
  }
  metrics.traces_delivered_total = net_.stats().delivered;
  metrics.net_blocked_at_send_total = net_.stats().blocked_at_send;
  metrics.net_dropped_in_flight_total = net_.stats().dropped_in_flight;
  metrics.net_dropped_total = net_.stats().dropped;
  metrics.proofs_valid_total = hive_->valid_proof_count();
  metrics.proof_solver_calls_total = hive_->proof_stats().solver_calls;
  metrics.proof_solver_recycled_total = hive_->proof_stats().recycled();
  history_.push_back(metrics);
  if (config_.record_metrics) {
    metrics_history_.push_back(
        obs::MetricsRegistry::global().delta_snapshot());
  }

  SB_LOG_INFO(
      "day %llu: runs=%llu failures=%llu (%.2f%%) bugs=%zu fixed=%zu "
      "paths=%zu",
      static_cast<unsigned long long>(day_),
      static_cast<unsigned long long>(metrics.runs),
      static_cast<unsigned long long>(metrics.failures),
      metrics.failure_rate * 100.0, metrics.bugs_found_total,
      metrics.bugs_fixed_total, metrics.total_paths);
}

void World::run() {
  while (day_ < config_.days) step_day();
}

}  // namespace softborg
