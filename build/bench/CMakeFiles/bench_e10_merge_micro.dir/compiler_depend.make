# Empty compiler generated dependencies file for bench_e10_merge_micro.
# This may be replaced when dependencies are built.
