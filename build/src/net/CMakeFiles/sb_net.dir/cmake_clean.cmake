file(REMOVE_RECURSE
  "CMakeFiles/sb_net.dir/simnet.cpp.o"
  "CMakeFiles/sb_net.dir/simnet.cpp.o.d"
  "libsb_net.a"
  "libsb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
