// Bounded trace queue with priority load-shedding (ISSUE 9 tentpole).
//
// Both hops of the distributed pipeline hold traces in one of these: the
// router's per-shard egress queue (filled by ingress, drained by the credit
// window) and each shard worker's ingress queue (filled by the socket,
// drained by ingest_batch). The bound is the backpressure contract — a hot
// shard degrades by shedding instead of ballooning memory.
//
// Dispatch order is strict FIFO: priority decides only *what is shed* when
// the queue is full, never reorders admitted traffic, so a shed-free run is
// byte-identical to an unbounded one (the socket-vs-SimNet differential
// relies on this). Shedding policy, highest-value-first retention: when a
// trace arrives at a full queue, the newest queued trace of the worst
// priority class is evicted if the arrival outranks it; otherwise the
// arrival itself is shed. Crash/deadlock traces (bug evidence) outrank
// guided runs (paid-for exploration), which outrank routine traffic.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/varint.h"
#include "obs/trace.h"
#include "trace/codec.h"

namespace softborg::dist {

// Smaller = more important (sheds last).
enum class TracePriority : std::uint8_t {
  kFailure = 0,  // crashed / deadlocked / assert-failed runs
  kGuided = 1,   // guidance-directed runs the planner paid solver time for
  kRoutine = 2,
};

inline TracePriority trace_priority(const TraceWireSummary& s) {
  if (s.outcome != Outcome::kOk) return TracePriority::kFailure;
  if (s.guided) return TracePriority::kGuided;
  return TracePriority::kRoutine;
}

class BoundedTraceQueue {
 public:
  explicit BoundedTraceQueue(std::size_t capacity) : capacity_(capacity) {}

  struct Item {
    TracePriority priority = TracePriority::kRoutine;
    Bytes wire;
    obs::TraceContext ctx;  // rides along so forwarding can re-attach it
  };

  // Admission control; `wire` is moved in (never copied on this path).
  // Exactly one trace is shed when the queue is full: the displaced queued
  // trace, or the arrival itself.
  void push(TracePriority priority, Bytes wire,
            obs::TraceContext ctx = {}) {
    if (items_.size() >= capacity_) {
      shed_total_++;
      // Find the newest worst-priority entry (scan from the back so FIFO
      // order within the surviving class is preserved).
      auto worst = items_.end();
      for (auto it = items_.rbegin(); it != items_.rend(); ++it) {
        if (worst == items_.end() ||
            it->priority > worst->priority) {
          worst = std::prev(it.base());
          if (worst->priority == TracePriority::kRoutine) break;
        }
      }
      if (worst == items_.end() || priority >= worst->priority) {
        return;  // the arrival is the least valuable: shed it
      }
      items_.erase(worst);
    }
    items_.push_back(Item{priority, std::move(wire), ctx});
    if (items_.size() > max_depth_) max_depth_ = items_.size();
  }

  std::optional<Item> pop() {
    if (items_.empty()) return std::nullopt;
    Item out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  std::size_t depth() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t max_depth() const { return max_depth_; }
  std::uint64_t shed_total() const { return shed_total_; }

  // Overload teardown (a shard died): everything queued is shed at once.
  void shed_all() {
    shed_total_ += items_.size();
    items_.clear();
  }

  // Snapshot-resume path only: seeds the cumulative shed ledger of a fresh
  // queue with the count a restarted worker persisted.
  void restore_shed_total(std::uint64_t n) { shed_total_ = n; }

 private:
  std::size_t capacity_;
  std::deque<Item> items_;
  std::size_t max_depth_ = 0;
  std::uint64_t shed_total_ = 0;
};

}  // namespace softborg::dist
