// LEB128 variable-length integer codec for trace wire encoding (§3.1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace softborg {

using Bytes = std::vector<std::uint8_t>;

void put_varint(Bytes& out, std::uint64_t v);

// ZigZag-encoded signed varint.
void put_varint_signed(Bytes& out, std::int64_t v);

// Cursor-based decoder; returns nullopt on truncated/overlong input.
std::optional<std::uint64_t> get_varint(const Bytes& in, std::size_t& pos);
std::optional<std::int64_t> get_varint_signed(const Bytes& in,
                                              std::size_t& pos);

}  // namespace softborg
