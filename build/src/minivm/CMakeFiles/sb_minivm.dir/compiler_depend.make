# Empty compiler generated dependencies file for sb_minivm.
# This may be replaced when dependencies are built.
