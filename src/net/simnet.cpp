#include "net/simnet.h"

#include <utility>

#include "common/check.h"
#include "obs/registry.h"

namespace softborg {

namespace {
// Network telemetry mirroring NetStats, but process-wide: every SimNet
// instance feeds the same counters, so a fleet with several nets (tests,
// nested worlds) reports aggregate traffic. Counters advance at tick
// boundaries (publish_metrics), never per message. `net.in_flight` is a
// gauge of messages currently queued for delivery — a depth, not a count,
// so it is exported but excluded from the deterministic counter surface.
struct NetMetrics {
  obs::Counter& sent =
      obs::MetricsRegistry::global().counter("net.sent_total");
  obs::Counter& delivered =
      obs::MetricsRegistry::global().counter("net.delivered_total");
  obs::Counter& dropped =
      obs::MetricsRegistry::global().counter("net.dropped_total");
  obs::Counter& duplicated =
      obs::MetricsRegistry::global().counter("net.duplicated_total");
  obs::Counter& blocked_at_send =
      obs::MetricsRegistry::global().counter("net.blocked_at_send_total");
  obs::Counter& dropped_in_flight =
      obs::MetricsRegistry::global().counter("net.dropped_in_flight_total");
  obs::Counter& bytes_sent =
      obs::MetricsRegistry::global().counter("net.bytes_sent_total");
  obs::Gauge& in_flight = obs::MetricsRegistry::global().gauge("net.in_flight");

  static NetMetrics& get() {
    static NetMetrics m;
    return m;
  }
};
}  // namespace

Endpoint SimNet::add_endpoint() {
  inboxes_.emplace_back();
  return static_cast<Endpoint>(inboxes_.size() - 1);
}

bool SimNet::blocked(Endpoint a, Endpoint b) const {
  if (isolated_.count(a) != 0 || isolated_.count(b) != 0) return true;
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return partitions_.count(key) != 0;
}

void SimNet::send(Endpoint from, Endpoint to, std::uint32_t type,
                  Bytes payload) {
  SB_CHECK(from < inboxes_.size() && to < inboxes_.size());
  stats_.sent++;
  stats_.bytes_sent += payload.size();
  if (blocked(from, to)) {
    stats_.blocked_at_send++;
    return;
  }
  if (config_.drop_prob > 0 && rng_.next_bool(config_.drop_prob)) {
    stats_.dropped++;
    return;
  }
  auto enqueue = [&](Bytes body) {
    Message m;
    m.from = from;
    m.to = to;
    m.type = type;
    m.payload = std::move(body);
    m.sent_tick = now_;
    const std::uint32_t span =
        config_.max_latency_ticks - config_.min_latency_ticks;
    m.deliver_tick = now_ + config_.min_latency_ticks +
                     (span > 0 ? rng_.next_below(span + 1) : 0);
    in_flight_[m.deliver_tick].push_back(std::move(m));
    queued_++;
  };
  if (config_.dup_prob > 0 && rng_.next_bool(config_.dup_prob)) {
    stats_.duplicated++;
    enqueue(payload);
  }
  enqueue(std::move(payload));
}

void SimNet::tick() {
  now_++;
  auto end = in_flight_.upper_bound(now_);
  for (auto it = in_flight_.begin(); it != end; ++it) {
    queued_ -= static_cast<std::int64_t>(it->second.size());
    for (Message& m : it->second) {
      if (blocked(m.from, m.to)) {
        stats_.dropped_in_flight++;
        continue;  // partitions that formed mid-flight eat the message
      }
      stats_.delivered++;
      inboxes_[m.to].push_back(std::move(m));
    }
  }
  in_flight_.erase(in_flight_.begin(), end);
  publish_metrics();
}

void SimNet::publish_metrics() {
  if (!obs::enabled()) {
    // Kill switch: drop the outstanding deltas instead of deferring them.
    obs_published_ = stats_;
    obs_published_depth_ = queued_;
    return;
  }
  auto& m = NetMetrics::get();
  const auto bump = [](obs::Counter& c, std::uint64_t now,
                       std::uint64_t& base) {
    if (now != base) {
      c.add(now - base);
      base = now;
    }
  };
  bump(m.sent, stats_.sent, obs_published_.sent);
  bump(m.delivered, stats_.delivered, obs_published_.delivered);
  bump(m.dropped, stats_.dropped, obs_published_.dropped);
  bump(m.duplicated, stats_.duplicated, obs_published_.duplicated);
  bump(m.blocked_at_send, stats_.blocked_at_send,
       obs_published_.blocked_at_send);
  bump(m.dropped_in_flight, stats_.dropped_in_flight,
       obs_published_.dropped_in_flight);
  bump(m.bytes_sent, stats_.bytes_sent, obs_published_.bytes_sent);
  if (queued_ != obs_published_depth_) {
    // add() rather than set(): concurrent nets aggregate their depths.
    m.in_flight.add(queued_ - obs_published_depth_);
    obs_published_depth_ = queued_;
  }
}

std::vector<Message> SimNet::drain(Endpoint ep) {
  SB_CHECK(ep < inboxes_.size());
  // Move the inbox out wholesale — draining used to copy every payload.
  return std::exchange(inboxes_[ep], {});
}

void SimNet::set_partitioned(Endpoint a, Endpoint b, bool blocked_now) {
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (blocked_now) {
    partitions_.insert(key);
  } else {
    partitions_.erase(key);
  }
}

void SimNet::set_isolated(Endpoint ep, bool isolated) {
  if (isolated) {
    isolated_.insert(ep);
  } else {
    isolated_.erase(ep);
  }
}

}  // namespace softborg
