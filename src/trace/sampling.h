// Coordinated sampling of branch-site observations (paper §3.1, after
// Liblit et al.'s cooperative bug isolation [18]).
//
// Instead of the full bit-vector, a pod can record only the branch *sites*
// assigned to it by a deterministic hash of (site, pod, rate). Across a
// large fleet every site is observed by ~1/rate of the pods, so aggregate
// site statistics converge while each pod pays only a fraction of the
// recording cost. A sampled trace specifies a *family* of paths; the
// SiteStats aggregation narrows that family (and, CBI-style, correlates
// site directions with failure).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/state_wire.h"
#include "trace/trace.h"

namespace softborg {

// One sampled observation: at static branch site `site`, direction `taken`.
struct SiteObservation {
  std::uint32_t site = 0;
  bool taken = false;

  bool operator==(const SiteObservation&) const = default;
};

struct SampledTrace {
  ProgramId program;
  PodId pod;
  Outcome outcome = Outcome::kOk;
  std::vector<SiteObservation> observations;
};

// Deterministic coordinated assignment: pod `pod` records site `site` iff
// sample_site(...) is true. rate=1 records everything.
bool sample_site(std::uint32_t site, PodId pod, std::uint32_t rate);

// Per-site aggregate statistics, split by execution outcome, as the hive
// accumulates them. The CBI-style "failure score" of a direction d at site s
// is P(fail | d observed) - P(fail | d not observed) using add-one smoothing.
class SiteStats {
 public:
  void add(const SampledTrace& t);

  struct Cell {
    std::uint64_t taken_ok = 0, taken_fail = 0;
    std::uint64_t nottaken_ok = 0, nottaken_fail = 0;

    bool operator==(const Cell&) const = default;
  };

  const Cell* cell(std::uint32_t site) const;

  // Score of "site taken in direction `taken`" as a failure predictor.
  double failure_score(std::uint32_t site, bool taken) const;

  // Sites ordered by best failure score, highest first.
  std::vector<std::uint32_t> ranked_sites() const;

  std::size_t num_sites() const { return cells_.size(); }

  // Durable-store serialization: cells sorted by site id, so equal stats
  // always produce equal bytes. load_state replaces the current contents;
  // false leaves them unspecified (discard the object).
  void save_state(Bytes& out) const;
  bool load_state(StateReader& r);

  bool operator==(const SiteStats& o) const { return cells_ == o.cells_; }

 private:
  std::unordered_map<std::uint32_t, Cell> cells_;
};

}  // namespace softborg
