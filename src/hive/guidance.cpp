#include "hive/guidance.h"

namespace softborg {

std::vector<GuidanceDirective> GuidancePlanner::plan_frontier(
    const CorpusEntry& entry, const ExecTree& tree,
    std::size_t max_directives, SolverCache* cache) {
  std::vector<GuidanceDirective> out;
  if (entry.program.num_threads() != 1) return out;

  const std::size_t budget =
      config_.effective_frontier_budget(max_directives);
  const auto frontiers = tree.frontier(budget);
  for (const auto& f : frontiers) {
    if (out.size() >= max_directives) break;

    std::vector<SymDecision> target = f.prefix;
    target.push_back({f.site, f.direction});

    ExploreOptions opt;
    opt.input_domains = domains_of(entry);
    opt.max_paths = config_.max_paths_per_frontier;
    opt.solver = config_.solver;
    opt.solver_cache = cache;
    opt.check_crashes = false;  // guidance only needs a witness
    SymbolicExecutor ex(entry.program, opt);
    const auto paths = ex.explore_subtree(target);
    if (paths.empty()) continue;  // infeasible or budget; proof engine's job

    const SymPath& witness = paths.front();
    GuidanceDirective d;
    d.program = entry.program.id;
    d.input_seed = witness.model.inputs;
    if (!witness.model.unknowns.empty()) {
      FaultPlan faults;
      for (std::size_t j = 0; j < witness.model.unknowns.size(); ++j) {
        faults.forced[static_cast<std::uint32_t>(j)] =
            witness.model.unknowns[j];
      }
      d.faults = std::move(faults);
    }
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<GuidanceDirective> GuidancePlanner::plan_schedules(
    const CorpusEntry& entry, std::size_t max_directives, Rng& rng) {
  std::vector<GuidanceDirective> out;
  const std::size_t threads = entry.program.num_threads();
  if (threads < 2) return out;

  // Lock-targeted plans: dry-run each thread solo (the hive has P, so it
  // can probe locally) and learn the step at which the thread first
  // acquires a lock. Interleavings that park every thread just past its
  // first acquisition before mixing are exactly the schedules where lock
  // cycles close — the "rare in practice" interleavings of §3.3.
  std::vector<Value> sample_inputs;
  std::vector<std::uint32_t> first_acquire(threads, 0);
  auto resample = [&]() {
    sample_inputs.clear();
    for (const auto& d : entry.domains) {
      sample_inputs.push_back(rng.next_in(d.lo, d.hi));
    }
    bool any = false;
    for (std::size_t t = 0; t < threads; ++t) {
      SchedulePlan solo;
      solo.runs = {{static_cast<std::uint8_t>(t), 1'000'000}};
      ExecConfig cfg;
      cfg.inputs = sample_inputs;
      cfg.seed = rng();
      cfg.schedule_plan = &solo;
      cfg.granularity = Granularity::kFull;
      cfg.max_steps = 20'000;
      const auto probe = execute(entry.program, cfg);
      first_acquire[t] = 0;
      for (const auto& ev : probe.trace.lock_events) {
        if (ev.thread == t && ev.acquire) {
          first_acquire[t] = ev.step;  // run exactly through the acquire
          any = true;
          break;
        }
      }
    }
    return any;
  };
  bool have_targets = resample();

  for (std::size_t i = 0; i < max_directives; ++i) {
    GuidanceDirective d;
    d.program = entry.program.id;
    SchedulePlan plan;

    if (have_targets && i % 3 != 2) {
      // Targeted: rotate which thread leads; refresh the probe sample every
      // full rotation so different inputs get covered too.
      if (i > 0 && i % (2 * threads) == 0) have_targets = resample();
      const std::size_t rot = i % threads;
      for (std::size_t k = 0; k < threads; ++k) {
        const std::size_t t = (rot + k) % threads;
        if (first_acquire[t] > 0) {
          plan.runs.push_back({static_cast<std::uint8_t>(t),
                               first_acquire[t]});
        }
      }
      for (int round = 0; round < 16; ++round) {
        for (std::size_t t = 0; t < threads; ++t) {
          plan.runs.push_back({static_cast<std::uint8_t>(t), 2});
        }
      }
      d.input_seed = sample_inputs;
    } else {
      // Random mix with heavy-tailed run lengths (diversity).
      for (int k = 0; k < 24; ++k) {
        const std::uint8_t t =
            static_cast<std::uint8_t>(rng.next_below(threads));
        const std::uint32_t len = rng.next_bool(0.2)
                                      ? 20 + static_cast<std::uint32_t>(
                                                 rng.next_below(30))
                                      : 1 + static_cast<std::uint32_t>(
                                                rng.next_below(5));
        plan.runs.push_back({t, len});
      }
    }
    d.schedule = std::move(plan);
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace softborg
