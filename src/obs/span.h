// Stage spans: scoped wall-clock timers feeding registry histograms.
//
//   void Hive::ingest_batch(...) {
//     SB_SPAN("hive.ingest.batch");
//     ...
//   }
//
// records the block's elapsed microseconds into the global registry
// histogram "hive.ingest.batch.us" — but only while span sampling is on
// (set_spans_enabled, default off). When sampling is off the cost is one
// relaxed atomic load and a predictable branch: no clock reads, no
// histogram lock. The call site's histogram handle is resolved once (magic
// static) and reused forever, so the enabled path costs two steady_clock
// reads plus one mutex-guarded histogram insert.
//
// Spans are timing metrics: exported (Prometheus summary / JSON), never
// asserted — wall-clock is nondeterministic by nature. Counter metrics are
// the deterministic surface (registry.h).
#pragma once

#include <atomic>
#include <chrono>

#include "obs/registry.h"

namespace softborg::obs {

namespace detail {
extern std::atomic<bool> g_spans_enabled;
}

inline bool spans_enabled() {
  return detail::g_spans_enabled.load(std::memory_order_relaxed);
}
void set_spans_enabled(bool on);

// One per SB_SPAN call site: owns the resolved histogram handle. The
// constructor appends the ".us" unit suffix to `name`.
class SpanSite {
 public:
  explicit SpanSite(const char* name);
  HistogramMetric& hist() { return *hist_; }

 private:
  HistogramMetric* hist_;
};

class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite& site) {
    if (spans_enabled()) {
      site_ = &site;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedSpan() {
    if (site_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      site_->hist().record(
          std::chrono::duration<double, std::micro>(elapsed).count());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanSite* site_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace softborg::obs

#define SB_OBS_CONCAT_INNER(a, b) a##b
#define SB_OBS_CONCAT(a, b) SB_OBS_CONCAT_INNER(a, b)

// Times the enclosing scope under `name` (a string literal). One statement;
// usable at most once per line.
#define SB_SPAN(name)                                                     \
  static ::softborg::obs::SpanSite SB_OBS_CONCAT(sb_span_site_,           \
                                                 __LINE__){name};         \
  ::softborg::obs::ScopedSpan SB_OBS_CONCAT(sb_span_, __LINE__)(          \
      SB_OBS_CONCAT(sb_span_site_, __LINE__))
