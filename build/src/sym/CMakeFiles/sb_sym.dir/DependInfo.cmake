
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sym/cnf.cpp" "src/sym/CMakeFiles/sb_sym.dir/cnf.cpp.o" "gcc" "src/sym/CMakeFiles/sb_sym.dir/cnf.cpp.o.d"
  "/root/repo/src/sym/csolver.cpp" "src/sym/CMakeFiles/sb_sym.dir/csolver.cpp.o" "gcc" "src/sym/CMakeFiles/sb_sym.dir/csolver.cpp.o.d"
  "/root/repo/src/sym/executor.cpp" "src/sym/CMakeFiles/sb_sym.dir/executor.cpp.o" "gcc" "src/sym/CMakeFiles/sb_sym.dir/executor.cpp.o.d"
  "/root/repo/src/sym/expr.cpp" "src/sym/CMakeFiles/sb_sym.dir/expr.cpp.o" "gcc" "src/sym/CMakeFiles/sb_sym.dir/expr.cpp.o.d"
  "/root/repo/src/sym/portfolio.cpp" "src/sym/CMakeFiles/sb_sym.dir/portfolio.cpp.o" "gcc" "src/sym/CMakeFiles/sb_sym.dir/portfolio.cpp.o.d"
  "/root/repo/src/sym/sat.cpp" "src/sym/CMakeFiles/sb_sym.dir/sat.cpp.o" "gcc" "src/sym/CMakeFiles/sb_sym.dir/sat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/minivm/CMakeFiles/sb_minivm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sb_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
