
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/world_test.cpp" "tests/CMakeFiles/world_test.dir/world_test.cpp.o" "gcc" "tests/CMakeFiles/world_test.dir/world_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/minivm/CMakeFiles/sb_minivm.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/sb_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/sb_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/sb_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pod/CMakeFiles/sb_pod.dir/DependInfo.cmake"
  "/root/repo/build/src/hive/CMakeFiles/sb_hive.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
