// Fix synthesis and validation (paper §3.3 "synthesizes fixes that improve
// P" and the "repair lab" for fixes that need a human).
//
// Pipeline per bug:
//  1. Candidate generation.
//     * crash bugs: replay the exemplar trace into its decision stream,
//       derive the crash path constraint symbolically, and project it onto
//       the inputs (interval hull). If the constraint is input-determined,
//       emit a GuardPatch at the last input-dependent branch of the crash
//       path, guarded by the hull predicate. Always also emit a
//       CrashGuardFix at the faulting pc (covers env/syscall-determined
//       crashes, ClearView-style [24]).
//     * deadlock bugs: a LockAvoidanceFix over the diagnosed cycle [16].
//  2. Validation: run the program many times with the candidate installed —
//     (a) over the crash region (must no longer fail), (b) over the whole
//     input domain (no new failures; unpatched runs byte-identical).
//  3. Verdict: candidates scoring >= auto_threshold are auto-distributed;
//     the rest are queued for the repair lab (paper: "developers manually
//     choose the correct one").
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "common/state_wire.h"
#include "hive/bugs.h"
#include "minivm/corpus.h"
#include "minivm/fixes.h"
#include "sym/executor.h"

namespace softborg {

using FixVariant = std::variant<GuardPatch, CrashGuardFix, LockAvoidanceFix>;

struct FixCandidate {
  FixVariant fix;
  BugId bug;
  ProgramId program;
  // Where the failure lives in input space (from the symbolic crash-path
  // hull, when known); validation samples this region.
  std::vector<InputBound> region_hint;
  // Validation results.
  double averted_fraction = 0.0;     // failing region now passes
  double preserved_fraction = 0.0;   // healthy runs unchanged
  std::uint64_t validation_runs = 0;
  std::string rationale;

  double score() const { return averted_fraction * preserved_fraction; }

  bool operator==(const FixCandidate&) const = default;
};

// Durable-store codec for fix candidates (pending rollouts, the repair
// lab). The embedded fix rides as a validated protocol wire record; decode
// returns false (reader failed) on any malformed field.
void encode_fix_candidate(Bytes& out, const FixCandidate& c);
bool decode_fix_candidate(StateReader& r, FixCandidate& c);

struct FixerConfig {
  std::uint64_t next_fix_id = 1;
  std::size_t validation_runs_region = 60;   // runs inside the crash region
  std::size_t validation_runs_domain = 120;  // runs across the whole domain
  std::uint64_t seed = 0xF1F1;
};

class FixSynthesizer {
 public:
  explicit FixSynthesizer(FixerConfig config = {}) : config_(config) {}

  // Generates and validates candidates for `bug`, best score first.
  std::vector<FixCandidate> synthesize(const Bug& bug,
                                       const CorpusEntry& entry);

  // Fix-id counter persistence: a resumed hive must keep issuing ids where
  // the saved run stopped, or new fixes would collide with installed ones.
  std::uint64_t next_fix_id() const { return config_.next_fix_id; }
  void set_next_fix_id(std::uint64_t id) { config_.next_fix_id = id; }

 private:
  FixId next_id() { return FixId(config_.next_fix_id++); }

  std::vector<FixCandidate> crash_candidates(const Bug& bug,
                                             const CorpusEntry& entry);
  std::vector<FixCandidate> deadlock_candidates(const Bug& bug,
                                                const CorpusEntry& entry);
  void validate(FixCandidate& candidate, const CorpusEntry& entry,
                const Bug& bug);

  FixerConfig config_;
};

// Repair lab: candidates that failed auto-validation, ranked for humans.
struct RepairLabEntry {
  FixCandidate candidate;
  std::string why_not_auto;
};

// Projects `constraints` onto each input variable: the tightest [lo, hi]
// hull per input such that every satisfying assignment lies inside. Inputs
// whose hull equals the full domain are omitted (unconstrained).
std::vector<InputBound> input_hull(const PathConstraint& constraints,
                                   const std::vector<VarDomain>& domains,
                                   const std::vector<VarDomain>& unknowns);

}  // namespace softborg
