// Trace router for the multi-process distributed hive (ISSUE 9 tentpole).
//
// The router is the fleet's ingress: pods (or an in-process traffic source)
// hand it encoded traces; it peeks each wire's header with
// summarize_trace_wire — never materializing the payload — routes by
// consistent hash of the program id (dist/ring.h), and forwards to the
// owning shard worker within that worker's credit window. Between admission
// and forwarding each trace sits in a bounded per-shard queue
// (dist/bounded_queue.h): when a shard falls behind, the queue fills, the
// lowest-priority traffic is shed, and memory stays bounded no matter how
// hot the ingress runs. When a shard dies (socket error), its queued and
// arriving traffic is shed — the fleet degrades, it never wedges — and a
// restarted worker re-announcing itself (kMsgHello) resumes service.
//
// The router is transport-agnostic: it speaks Channels (dist/channel.h), so
// the same code runs over SimNet in the deterministic differential tests
// and over real sockets in production. It is single-threaded by design —
// one pump() loop owns every queue, which keeps forwarding order per shard
// strictly FIFO (the determinism argument for socket-vs-SimNet
// byte-identity rests on this).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dist/bounded_queue.h"
#include "dist/channel.h"
#include "dist/control.h"
#include "dist/ring.h"
#include "obs/registry.h"

namespace softborg::dist {

struct RouterConfig {
  // Per-shard egress queue bound; overflow sheds lowest-priority-first.
  std::size_t queue_capacity = 1024;
  std::size_t vnodes_per_shard = 64;
};

struct RouterStats {
  std::uint64_t received = 0;   // trace wires entering the router
  std::uint64_t forwarded = 0;  // traces sent to shard workers
  std::uint64_t shed = 0;       // queue overflow + dead-shard sheds
  // Pump rounds where a shard had queued work but zero credit (the worker
  // is the bottleneck and flow control is holding the line).
  std::uint64_t backpressure_stalls = 0;
  std::uint64_t routing_failures = 0;  // malformed wires (summarize rejected)
  std::uint64_t unroutable = 0;        // unexpected message types from pods
  std::uint64_t credits_granted = 0;   // total credit received from workers
  // Peak of the fleet-total queued-trace count (summed across shards), so
  // bounded by num_shards * queue_capacity — the router's memory ceiling.
  std::size_t queue_depth_peak = 0;
  double stall_seconds = 0.0;          // wall time with >=1 shard stalled

  bool operator==(const RouterStats&) const = default;
};

class TraceRouter {
 public:
  explicit TraceRouter(std::size_t num_shards, RouterConfig config = {});

  // --- wiring ---------------------------------------------------------------
  // Installs a shard link whose identity is already known (SimNet leg and
  // forked-worker drivers). The worker still announces its credit window
  // with kMsgHello; until that arrives the shard has zero credit.
  void connect_shard(std::size_t index, std::unique_ptr<Channel> ch);
  // Installs a pod ingress channel.
  void add_pod(std::unique_ptr<Channel> ch);
  // Socket leg: an accepted peer is anonymous until its first message —
  // kMsgHello marks a shard worker (new or restarted); anything else marks a
  // pod, and that first message is processed as pod traffic.
  void add_unidentified(std::unique_ptr<Channel> ch);

  // --- ingress --------------------------------------------------------------
  // Routes one encoded trace from an in-process source (bench_e13, the
  // --distributed fleet driver). Same path as pod-channel traffic. `ctx` is
  // the causal context that rode a v2 frame, if any; with tracing enabled
  // and no inbound context the router derives one from the wire header
  // (obs::causal_trace_id) so it becomes the chain's first recorded hop.
  void route_wire(Bytes wire, obs::TraceContext ctx = {});

  // --- the loop -------------------------------------------------------------
  // One round: poll every channel, admit arrivals, forward within credit,
  // account stalls, publish metrics. Drivers call this in their main loop
  // (with net.step() in between on the SimNet leg).
  void pump();

  // --- shutdown & snapshot protocol -----------------------------------------
  // Asks every live shard to drain its queue and report closing stats
  // (kMsgStats + kMsgTreeData + kMsgShutdown ack). Reports arrive via
  // pump(); poll all_reports_in().
  void broadcast_shutdown();
  bool all_reports_in() const;
  // Asks every live shard to write a durable snapshot now; workers ack with
  // an empty kMsgSnapshot.
  void request_snapshots();
  std::size_t snapshot_acks() const { return snapshot_acks_; }

  // A worker's closing report (payloads decoded by the driver: stats via
  // decode_worker_stats, trees via Hive::load_trees).
  struct WorkerReport {
    bool closed = false;  // kMsgShutdown ack seen
    Bytes stats_wire;
    Bytes trees_wire;
  };
  const std::vector<WorkerReport>& reports() const { return reports_; }

  // --- introspection --------------------------------------------------------
  const RouterStats& stats() const { return stats_; }
  std::size_t num_shards() const { return ring_.num_shards(); }
  bool shard_alive(std::size_t index) const;
  std::size_t shard_credit(std::size_t index) const;
  std::size_t shard_credit_window(std::size_t index) const;
  double shard_stall_seconds(std::size_t index) const;
  std::uint64_t shard_forwarded(std::size_t index) const;
  std::size_t total_queue_depth() const;
  // True when every queue is empty and no forwarded trace is awaiting a
  // credit ack — the pipe is drained end to end.
  bool quiescent() const;

  // Grows the ring by one shard (moves ~1/(n+1) of the key space to it);
  // the new worker connects and hellos like any other.
  void add_shard();

 private:
  struct ShardLink {
    std::unique_ptr<Channel> ch;  // null until connected
    BoundedTraceQueue queue;
    std::uint32_t credit = 0;
    std::uint32_t window = 0;  // announced by hello; 0 = not yet announced
    std::uint64_t forwarded = 0;
    std::uint64_t obs_published_forwarded = 0;
    bool stalled = false;
    double stall_started = 0.0;  // monotonic seconds, valid when stalled
    double stall_seconds = 0.0;  // cumulative, this shard only
    double obs_published_stall_seconds = 0.0;
    // Last-published per-shard gauge values, so publish_metrics only pays
    // the registry name lookup when something moved.
    std::int64_t obs_window = -1;
    std::int64_t obs_in_flight = -1;

    bool alive() const { return ch && ch->alive(); }
  };

  void handle_shard_delivery(std::size_t index, Delivery d);
  void poll_shard(std::size_t index);
  void forward(std::size_t index);
  void publish_metrics();

  RouterConfig config_;
  HashRing ring_;
  std::vector<ShardLink> shards_;
  std::vector<std::unique_ptr<Channel>> pods_;
  std::vector<std::unique_ptr<Channel>> unidentified_;
  std::vector<WorkerReport> reports_;
  std::size_t closed_reports_ = 0;
  std::size_t snapshot_acks_ = 0;
  RouterStats stats_;
  RouterStats obs_published_;  // publish_metrics() delta baseline
};

}  // namespace softborg::dist
