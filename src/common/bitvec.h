// Growable bit vector used to encode execution traces.
//
// The paper (§3.1) encodes an execution as one bit per input-dependent
// branch: true = then-side taken. BitVec is the canonical in-memory form;
// trace/codec.h packs it for the wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace softborg {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n, bool fill = false)
      : size_(n), words_((n + 63) / 64, fill ? ~0ULL : 0ULL) {
    trim();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push_back(bool bit) {
    const std::size_t word = size_ / 64, off = size_ % 64;
    if (word == words_.size()) words_.push_back(0);
    if (bit) words_[word] |= (1ULL << off);
    ++size_;
  }

  bool operator[](std::size_t i) const {
    SB_DCHECK(i < size_);
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  void set(std::size_t i, bool bit) {
    SB_CHECK(i < size_);
    if (bit)
      words_[i / 64] |= (1ULL << (i % 64));
    else
      words_[i / 64] &= ~(1ULL << (i % 64));
  }

  void clear() {
    size_ = 0;
    words_.clear();
  }

  // Number of set bits.
  std::size_t popcount() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  // Length of the longest common prefix with `other`.
  std::size_t common_prefix(const BitVec& other) const;

  bool operator==(const BitVec& o) const {
    return size_ == o.size_ && words_ == o.words_;
  }
  bool operator!=(const BitVec& o) const { return !(*this == o); }

  // 64-bit content hash (FNV-1a over words + length).
  std::uint64_t hash() const;

  // Debug rendering, e.g. "10110".
  std::string to_string() const;

  const std::vector<std::uint64_t>& words() const { return words_; }

  // Releases the word storage so a caller can recycle its capacity (the
  // decode hot path rebuilds BitVecs in a loop); this BitVec becomes empty.
  std::vector<std::uint64_t> take_words() && {
    size_ = 0;
    return std::move(words_);
  }

  // Rebuilds from raw words; bits past `n` in the last word are cleared.
  static BitVec from_words(std::vector<std::uint64_t> words, std::size_t n);

 private:
  void trim();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace softborg
