// Differential suite for the predecode + direct-threaded dispatch rebuild:
// the new core (fused and unfused) must be byte-identical to the frozen
// pre-rebuild interpreter (execute_reference, interp_ref.cpp) on every
// observable — encoded trace bytes, outputs, branch events, deadlock
// cycles, fix interventions — across random programs, corpus programs,
// schedules, fault plans, and installed fixes. CI runs this suite under
// both dispatch backends (SOFTBORG_DISPATCH=goto and =switch), and the
// reference is backend-independent, so passing in both builds proves
// goto ≡ switch ≡ pre-rebuild.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "minivm/builder.h"
#include "minivm/corpus.h"
#include "minivm/decode.h"
#include "minivm/disasm.h"
#include "minivm/interp.h"
#include "minivm/random_program.h"
#include "trace/codec.h"

namespace softborg {
namespace {

constexpr Granularity kAllGranularities[] = {
    Granularity::kNone, Granularity::kTaintedBranches,
    Granularity::kAllBranches, Granularity::kFull};

void expect_same(const ExecResult& got, const ExecResult& want,
                 const std::string& ctx) {
  EXPECT_EQ(encode_trace(got.trace), encode_trace(want.trace)) << ctx;
  EXPECT_TRUE(got.trace == want.trace) << ctx;
  EXPECT_EQ(got.outputs, want.outputs) << ctx;
  EXPECT_EQ(got.branch_events, want.branch_events) << ctx;
  EXPECT_EQ(got.deadlock_cycle, want.deadlock_cycle) << ctx;
  EXPECT_EQ(got.fix_intervened, want.fix_intervened) << ctx;
}

// Runs `p` three ways — frozen reference, new core unfused, new core fused —
// and requires all observables identical.
void expect_all_backends_identical(const Program& p, const ExecConfig& cfg,
                                   const std::string& ctx) {
  const ExecResult want = execute_reference(p, cfg);
  ExecConfig unfused = cfg;
  unfused.enable_fusion = false;
  expect_same(execute(p, unfused), want, ctx + " [unfused]");
  ExecConfig fused = cfg;
  fused.enable_fusion = true;
  expect_same(execute(p, fused), want, ctx + " [fused]");
}

// ------------------------------------------------- random programs ---------

TEST(DispatchDiff, RandomProgramsAllBackendsIdentical) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const CorpusEntry entry = make_random_program(seed);
    Rng rng(seed * 77 + 1);
    for (Granularity g : kAllGranularities) {
      ExecConfig cfg;
      cfg.seed = rng();
      cfg.granularity = g;
      cfg.collect_branch_events = true;
      for (const auto& domain : entry.domains) {
        cfg.inputs.push_back(rng.next_in(domain.lo, domain.hi));
      }
      expect_all_backends_identical(
          entry.program, cfg,
          "random seed=" + std::to_string(seed) + " g=" +
              std::to_string(static_cast<int>(g)));
    }
  }
}

TEST(DispatchDiff, RandomProgramsWithCrashGuardsAndPatches) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const CorpusEntry entry = make_random_program(seed);
    const Program& p = entry.program;

    // Install fixes at every eligible site, including duplicates at the
    // same pc/site so first-match resolution is exercised.
    FixSet fixes;
    for (std::uint32_t pc = 0; pc < p.code.size(); ++pc) {
      const Instr& ins = p.code[pc];
      switch (ins.op) {
        case Op::kDiv:
        case Op::kMod: {
          CrashGuardFix g;
          g.pc = pc;
          g.action = CrashGuardFix::Action::kSubstitute;
          g.fallback = 7 + static_cast<Value>(pc);
          fixes.crash_guards.push_back(g);
          // Shadowed duplicate: must never win over the first.
          g.action = CrashGuardFix::Action::kSkip;
          g.fallback = -1;
          fixes.crash_guards.push_back(g);
          break;
        }
        case Op::kAssert:
        case Op::kAbort: {
          CrashGuardFix g;
          g.pc = pc;
          g.action = (pc % 2 == 0) ? CrashGuardFix::Action::kSkip
                                   : CrashGuardFix::Action::kSubstitute;
          fixes.crash_guards.push_back(g);
          break;
        }
        case Op::kBranchIf: {
          GuardPatch patch;
          patch.site = ins.site;
          patch.crash_direction = (ins.site % 2 == 0);
          patch.when.push_back({0, 0, 31});  // fires for half the domain
          fixes.guards.push_back(patch);
          break;
        }
        default:
          break;
      }
    }

    Rng rng(seed * 131 + 5);
    for (int rep = 0; rep < 4; ++rep) {
      ExecConfig cfg;
      cfg.seed = rng();
      cfg.fixes = &fixes;
      cfg.granularity = Granularity::kFull;
      cfg.collect_branch_events = true;
      for (const auto& domain : entry.domains) {
        cfg.inputs.push_back(rng.next_in(domain.lo, domain.hi));
      }
      expect_all_backends_identical(
          p, cfg, "random+fixes seed=" + std::to_string(seed));
    }
  }
}

// ----------------------------------------------------- corpus sweep --------

TEST(DispatchDiff, CorpusUnderSchedulesFaultsAndFixes) {
  const std::vector<CorpusEntry> corpus = standard_corpus();
  for (const CorpusEntry& entry : corpus) {
    const std::size_t threads = entry.program.num_threads();
    Rng rng(0xd1f'f0 + entry.program.id.value);
    for (std::uint64_t s = 0; s < 6; ++s) {
      ExecConfig cfg;
      cfg.seed = rng();
      cfg.granularity = kAllGranularities[s % 4];
      cfg.collect_branch_events = (s % 2 == 0);
      for (const auto& domain : entry.domains) {
        cfg.inputs.push_back(rng.next_in(domain.lo, domain.hi));
      }

      // Random steering plan over the entry's threads.
      SchedulePlan plan;
      for (int i = 0; i < 12; ++i) {
        plan.runs.push_back(
            {static_cast<std::uint8_t>(rng.next_below(threads)),
             static_cast<std::uint32_t>(1 + rng.next_below(7))});
      }
      if (s % 3 != 0) cfg.schedule_plan = &plan;

      // Fault-plan a few syscall invocations.
      FaultPlan faults;
      faults.forced[1 + rng.next_below(4)] = -1;
      faults.forced[8 + rng.next_below(8)] = 0;
      if (s % 2 != 0) cfg.fault_plan = &faults;

      expect_all_backends_identical(
          entry.program, cfg,
          entry.program.name + " s=" + std::to_string(s));
    }
  }
}

TEST(DispatchDiff, DeadlockCyclesAndLockFixesIdentical) {
  for (CorpusEntry entry :
       {make_bank_transfer(), make_dining_philosophers(3),
        make_dining_philosophers(4)}) {
    // The planted cycles span all locks; a fix covering them flips the
    // runs from deadlock-prone to immune (with lock-fix yields).
    LockAvoidanceFix lock_fix;
    for (std::uint16_t l = 0; l < entry.program.num_locks; ++l) {
      lock_fix.cycle_locks.push_back(l);
    }
    FixSet fixes;
    fixes.lock_fixes.push_back(lock_fix);

    Rng rng(42);
    for (std::uint64_t s = 0; s < 30; ++s) {
      ExecConfig cfg;
      cfg.seed = rng();
      cfg.granularity = Granularity::kFull;
      for (const auto& domain : entry.domains) {
        cfg.inputs.push_back(rng.next_in(domain.lo, domain.hi));
      }
      expect_all_backends_identical(
          entry.program, cfg, entry.program.name + " bare s=" + std::to_string(s));
      cfg.fixes = &fixes;
      expect_all_backends_identical(
          entry.program, cfg, entry.program.name + " fixed s=" + std::to_string(s));
    }
  }
}

// ------------------------------------------ step/quantum accounting --------

// Hot loop of fusible pairs: every iteration is [const ; add ; jump], so a
// fused slot sits at the loop head and the run only ends via max_steps.
Program fused_pair_loop() {
  ProgramBuilder b("fused_pair_loop");
  const Reg acc = b.reg();
  const Reg one = b.reg();
  b.const_(acc, 0);
  const ProgramBuilder::Label loop = b.here();
  b.const_(one, 1);
  b.add(acc, acc, one);
  b.jump(loop);
  return b.build();
}

// Same loop with a yield: lets the quantum end voluntarily at arbitrary
// phases relative to the fused pair and the step limit (the yield-at-limit
// quirk gets crossed for some max_steps below).
Program fused_pair_loop_with_yield() {
  ProgramBuilder b("fused_pair_loop_yield");
  const Reg acc = b.reg();
  const Reg one = b.reg();
  b.const_(acc, 0);
  const ProgramBuilder::Label loop = b.here();
  b.const_(one, 1);
  b.add(acc, acc, one);
  b.yield();
  b.jump(loop);
  return b.build();
}

TEST(DispatchDiff, MaxStepsBoundaryWithFusedPairs) {
  const Program plain = fused_pair_loop();
  const Program yielding = fused_pair_loop_with_yield();
  // The loop head really is fused — otherwise this test proves nothing.
  ASSERT_GT(predecode(plain, nullptr).fused_slots, 0u);

  for (std::uint64_t max_steps = 1; max_steps <= 60; ++max_steps) {
    for (std::uint32_t quantum : {1u, 2u, 3u, 6u}) {
      ExecConfig cfg;
      cfg.max_steps = max_steps;
      cfg.quantum = quantum;
      const std::string ctx = "max=" + std::to_string(max_steps) +
                              " q=" + std::to_string(quantum);
      expect_all_backends_identical(plain, cfg, "plain " + ctx);
      expect_all_backends_identical(yielding, cfg, "yield " + ctx);
    }
  }
}

TEST(DispatchDiff, MultiThreadStepLimitAndQuantumBoundaries) {
  for (CorpusEntry entry : {make_race_counter(4), make_bank_transfer(),
                            make_dining_philosophers(3)}) {
    Rng rng(entry.program.id.value * 9 + 1);
    for (std::uint64_t max_steps = 1; max_steps <= 80; max_steps += 3) {
      ExecConfig cfg;
      cfg.seed = rng();
      cfg.max_steps = max_steps;
      cfg.quantum = static_cast<std::uint32_t>(1 + rng.next_below(7));
      cfg.granularity = Granularity::kFull;
      for (const auto& domain : entry.domains) {
        cfg.inputs.push_back(rng.next_in(domain.lo, domain.hi));
      }
      expect_all_backends_identical(
          entry.program, cfg,
          entry.program.name + " max=" + std::to_string(max_steps));
    }
  }
}

// --------------------------------------------------- fusion shapes ---------

TEST(FusionShape, ConstAluPairsFuse) {
  ProgramBuilder b("const_alu");
  const Reg a = b.reg();
  const Reg c = b.reg();
  b.const_(c, 5);
  b.add(a, a, c);
  b.halt();
  const Program p = b.build();
  const DecodedProgram d = predecode(p, nullptr);
  EXPECT_EQ(d.code[0].tok, Tok::kConstAdd);
  EXPECT_EQ(d.code[0].base, Tok::kConst);
  EXPECT_EQ(d.code[0].len, 2);
  // Second half keeps its own plain slot (branch targets may land there).
  EXPECT_EQ(d.code[1].tok, Tok::kAdd);
  EXPECT_EQ(d.code[1].len, 1);
  EXPECT_EQ(d.fused_slots, 1u);
}

TEST(FusionShape, CmpBranchFusesOnlyWhenBranchTestsCmpResult) {
  // Fusible: brif tests the compare's destination.
  {
    ProgramBuilder b("cmp_br");
    const Reg x = b.reg();
    const Reg y = b.reg();
    const Reg cond = b.reg();
    const ProgramBuilder::Label t = b.label();
    const ProgramBuilder::Label f = b.label();
    b.cmp_lt(cond, x, y);
    b.branch_if(cond, t, f);
    b.bind(t);
    b.bind(f);
    b.halt();
    const DecodedProgram d = predecode(b.build(), nullptr);
    EXPECT_EQ(d.code[0].tok, Tok::kCmpLtBranch);
    EXPECT_EQ(d.code[0].len, 2);
  }
  // Not fusible: brif tests an unrelated register.
  {
    ProgramBuilder b("cmp_br_other");
    const Reg x = b.reg();
    const Reg y = b.reg();
    const Reg cond = b.reg();
    const Reg other = b.reg();
    const ProgramBuilder::Label t = b.label();
    const ProgramBuilder::Label f = b.label();
    b.cmp_lt(cond, x, y);
    b.branch_if(other, t, f);
    b.bind(t);
    b.bind(f);
    b.halt();
    const DecodedProgram d = predecode(b.build(), nullptr);
    EXPECT_EQ(d.code[0].tok, Tok::kCmpLt);
    EXPECT_EQ(d.code[0].len, 1);
    EXPECT_EQ(d.fused_slots, 0u);
  }
}

TEST(FusionShape, ConstCmpDefersToCmpBranchFusion) {
  // const ; cmplt ; brif(cmp dest): the cmp should fuse with the branch,
  // leaving the const plain — not const+cmp with a lone branch.
  ProgramBuilder b("defer");
  const Reg x = b.reg();
  const Reg lim = b.reg();
  const Reg cond = b.reg();
  const ProgramBuilder::Label t = b.label();
  const ProgramBuilder::Label f = b.label();
  b.const_(lim, 10);
  b.cmp_lt(cond, x, lim);
  b.branch_if(cond, t, f);
  b.bind(t);
  b.bind(f);
  b.halt();
  const DecodedProgram d = predecode(b.build(), nullptr);
  EXPECT_EQ(d.code[0].tok, Tok::kConst);
  EXPECT_EQ(d.code[0].len, 1);
  EXPECT_EQ(d.code[1].tok, Tok::kCmpLtBranch);
  EXPECT_EQ(d.code[1].len, 2);
  EXPECT_EQ(d.fused_slots, 1u);
}

TEST(FusionShape, MovStoreGFusesAndFuseOffDisablesAll) {
  ProgramBuilder b("mov_storeg");
  const Reg a = b.reg();
  const Reg v = b.reg();
  const std::uint32_t g = b.global();
  b.mov(a, v);
  b.storeg(g, a);
  b.halt();
  const Program p = b.build();
  EXPECT_EQ(predecode(p, nullptr).code[0].tok, Tok::kMovStoreG);
  const DecodedProgram off = predecode(p, nullptr, {.fuse = false});
  EXPECT_EQ(off.code[0].tok, Tok::kMov);
  EXPECT_EQ(off.fused_slots, 0u);
  EXPECT_FALSE(off.fused);
}

TEST(FusionShape, DisassembleDecodedShowsSuperinstructions) {
  const Program p = fused_pair_loop();
  const std::string text = disassemble_decoded(p, predecode(p, nullptr));
  EXPECT_NE(text.find("[const+add]"), std::string::npos) << text;
}

// ------------------------------------------------------ pair counts --------

TEST(PairCounts, StraightLineCountsMatchExecution) {
  ProgramBuilder b("pairs");
  const Reg x = b.reg();
  const Reg one = b.reg();
  const Reg sum = b.reg();
  b.input(x, b.input_slot());
  b.const_(one, 1);
  b.add(sum, x, one);
  b.output(sum);
  b.halt();
  const Program p = b.build();

  OpPairCounts counts;
  ExecConfig cfg;
  cfg.inputs = {3};
  cfg.pair_counts = &counts;
  const ExecResult r = execute(p, cfg);
  EXPECT_EQ(r.outputs, (std::vector<Value>{4}));

  EXPECT_EQ(counts.at(Op::kInput, Op::kConst), 1u);
  EXPECT_EQ(counts.at(Op::kConst, Op::kAdd), 1u);
  EXPECT_EQ(counts.at(Op::kAdd, Op::kOutput), 1u);
  EXPECT_EQ(counts.at(Op::kOutput, Op::kHalt), 1u);
  EXPECT_EQ(counts.total(), 4u);

  const auto rows = counts.sorted();
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) EXPECT_EQ(row.count, 1u);

  // Profiling runs match the reference byte-for-byte too (it executes the
  // unfused stream, not a different machine).
  ExecConfig plain_cfg;
  plain_cfg.inputs = {3};
  expect_same(r, execute_reference(p, plain_cfg), "pair-profiled run");
}

TEST(PairCounts, LoopPairsScaleWithIterationsAndJumpsDontCount) {
  const Program p = fused_pair_loop();  // [const ; add ; jump] body
  OpPairCounts counts;
  ExecConfig cfg;
  cfg.max_steps = 31;  // const0 + 10 iterations x3
  cfg.pair_counts = &counts;
  execute(p, cfg);
  EXPECT_EQ(counts.at(Op::kConst, Op::kAdd), 10u);
  EXPECT_EQ(counts.at(Op::kAdd, Op::kJump), 10u);
  // The jump lands back at the loop head at a lower pc: not a fallthrough.
  EXPECT_EQ(counts.at(Op::kJump, Op::kConst), 0u);
  const std::string table = format_pair_counts(counts, 1);
  EXPECT_NE(table.find("const  -> add"), std::string::npos) << table;
  EXPECT_NE(table.find("fuses: const+add"), std::string::npos) << table;
  EXPECT_NE(table.find("more pair(s)"), std::string::npos) << table;
}

// -------------------------------------------------- predecode cache --------

TEST(PredecodeCache, HitsMissesAndContentKeying) {
  clear_predecode_cache();
  const Program p = fused_pair_loop();

  auto d1 = predecode_cached(p, nullptr);
  PredecodeCacheStats stats = predecode_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 1u);

  // Same content — even via a distinct Program object — hits.
  const Program copy = p;
  auto d2 = predecode_cached(copy, nullptr);
  stats = predecode_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(d1.get(), d2.get());

  // nullptr fixes and an empty FixSet decode identically: same entry.
  const FixSet empty;
  predecode_cached(p, &empty);
  EXPECT_EQ(predecode_cache_stats().hits, 2u);

  // A fix that affects the stream is a different key.
  FixSet fixes;
  fixes.crash_guards.push_back({{}, {}, 0, CrashGuardFix::Action::kSkip, 0});
  predecode_cached(p, &fixes);
  stats = predecode_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);

  // Fusion on/off are distinct streams.
  predecode_cached(p, nullptr, {.fuse = false});
  stats = predecode_cache_stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.entries, 3u);

  clear_predecode_cache();
  stats = predecode_cache_stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(PredecodeCache, CachedStreamCopiesFixesNoDangling) {
  clear_predecode_cache();
  const Program p = fused_pair_loop();
  ExecResult first;
  {
    // FixSet dies at scope end; the cached decoded stream must not care.
    FixSet fixes;
    fixes.crash_guards.push_back(
        {{}, {}, 1, CrashGuardFix::Action::kSubstitute, 9});
    ExecConfig cfg;
    cfg.fixes = &fixes;
    cfg.max_steps = 20;
    first = execute(p, cfg);
  }
  FixSet same;
  same.crash_guards.push_back(
      {{}, {}, 1, CrashGuardFix::Action::kSubstitute, 9});
  ExecConfig cfg;
  cfg.fixes = &same;
  cfg.max_steps = 20;
  expect_same(execute(p, cfg), first, "cached fix copy");
  EXPECT_GE(predecode_cache_stats().hits, 1u);
}

}  // namespace
}  // namespace softborg
