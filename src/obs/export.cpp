#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "common/fsio.h"
#include "common/log.h"

namespace softborg::obs {

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names are
// dot-separated lowercase paths; dots (and any other outlaw byte) become
// underscores, and every name gets the softborg_ prefix.
std::string prometheus_name(const std::string& name) {
  std::string out = "softborg_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

// Shortest-round-trip-ish rendering; JSON has no NaN/Inf, clamp to 0.
std::string number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) c = ' ';
    out.push_back(c);
  }
  return out;
}

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    const std::string name = prometheus_name(c.name);
    append(out, "# TYPE %s counter\n", name.c_str());
    append(out, "%s %llu\n", name.c_str(),
           static_cast<unsigned long long>(c.value));
  }
  for (const auto& g : snap.gauges) {
    const std::string name = prometheus_name(g.name);
    append(out, "# TYPE %s gauge\n", name.c_str());
    append(out, "%s %lld\n", name.c_str(), static_cast<long long>(g.value));
  }
  for (const auto& h : snap.histograms) {
    const std::string name = prometheus_name(h.name);
    append(out, "# TYPE %s summary\n", name.c_str());
    for (const auto& [q, p] : std::initializer_list<std::pair<double, double>>{
             {0.5, 50.0}, {0.9, 90.0}, {0.99, 99.0}}) {
      append(out, "%s{quantile=\"%g\"} %s\n", name.c_str(), q,
             number(h.hist.percentile(p)).c_str());
    }
    append(out, "%s_sum %s\n", name.c_str(), number(h.hist.sum()).c_str());
    append(out, "%s_count %llu\n", name.c_str(),
           static_cast<unsigned long long>(h.hist.count()));
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"schema\": \"softborg.metrics.v1\",\n";
  out += "  \"counters\": [";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const auto& c = snap.counters[i];
    append(out, "%s\n    {\"name\": \"%s\", \"value\": %llu}",
           i == 0 ? "" : ",", json_escape(c.name).c_str(),
           static_cast<unsigned long long>(c.value));
  }
  out += snap.counters.empty() ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    const auto& g = snap.gauges[i];
    append(out, "%s\n    {\"name\": \"%s\", \"value\": %lld}",
           i == 0 ? "" : ",", json_escape(g.name).c_str(),
           static_cast<long long>(g.value));
  }
  out += snap.gauges.empty() ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    append(out, "%s\n    {\"name\": \"%s\", \"count\": %llu, \"sum\": %s, ",
           i == 0 ? "" : ",", json_escape(h.name).c_str(),
           static_cast<unsigned long long>(h.hist.count()),
           number(h.hist.sum()).c_str());
    append(out, "\"p50\": %s, \"p90\": %s, \"p99\": %s, \"max\": %s}",
           number(h.hist.percentile(50)).c_str(),
           number(h.hist.percentile(90)).c_str(),
           number(h.hist.percentile(99)).c_str(),
           number(h.hist.max_seen()).c_str());
  }
  out += snap.histograms.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return true;
  }
  // Atomic temp+fsync+rename: CI artifact consumers parse these files, and
  // a crash mid-write used to leave a torn (half-parseable) snapshot behind.
  std::string err;
  if (!atomic_write_file(path, content.data(), content.size(), &err)) {
    SB_CLOG_ERROR("obs", "cannot write %s (%s)", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

}  // namespace softborg::obs
