#include <gtest/gtest.h>

#include <set>

#include "minivm/builder.h"
#include "minivm/corpus.h"
#include "minivm/interp.h"
#include "minivm/program.h"

namespace softborg {
namespace {

ExecResult run(const Program& p, std::vector<Value> inputs,
               std::uint64_t seed = 1) {
  ExecConfig cfg;
  cfg.inputs = std::move(inputs);
  cfg.seed = seed;
  return execute(p, cfg);
}

// ------------------------------------------------------------- builder -----

TEST(Builder, MinimalProgramValidates) {
  ProgramBuilder b("empty");
  b.halt();
  const Program p = b.build();
  EXPECT_TRUE(p.validate());
  EXPECT_EQ(p.num_threads(), 1u);
}

TEST(Builder, BranchSitesAreDense) {
  ProgramBuilder b("branches");
  const Reg r = b.reg();
  b.input(r, b.input_slot());
  for (int i = 0; i < 5; ++i) {
    auto t = b.label(), e = b.label();
    b.branch_if(r, t, e);
    b.bind(t);
    b.bind(e);
  }
  b.halt();
  const Program p = b.build();
  EXPECT_EQ(p.num_branch_sites, 5u);
}

TEST(Builder, ForwardAndBackwardLabels) {
  // Loop: count down from 3, then halt.
  ProgramBuilder b("loop");
  const Reg i = b.reg(), one = b.reg(), cond = b.reg();
  b.const_(i, 3);
  b.const_(one, 1);
  auto top = b.here();
  auto body = b.label(), done = b.label();
  b.const_(cond, 0);
  b.cmp_lt(cond, cond, i);  // 0 < i
  b.branch_if(cond, body, done);
  b.bind(body);
  b.sub(i, i, one);
  b.jump(top);
  b.bind(done);
  b.output(i);
  b.halt();
  const auto result = run(b.build(), {});
  EXPECT_EQ(result.trace.outcome, Outcome::kOk);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0], 0);
}

TEST(Program, ValidateCatchesBadJump) {
  ProgramBuilder b("x");
  b.halt();
  Program p = b.build();
  p.code.push_back({.op = Op::kJump, .a = 999});
  std::string err;
  EXPECT_FALSE(p.validate(&err));
  EXPECT_NE(err.find("jump"), std::string::npos);
}

TEST(Program, ValidateCatchesBadRegister) {
  ProgramBuilder b("x");
  b.halt();
  Program p = b.build();
  p.code.insert(p.code.begin(), {.op = Op::kConst, .a = 7});
  EXPECT_FALSE(p.validate());
}

// ---------------------------------------------------------- arithmetic -----

TEST(Interp, ArithmeticBasics) {
  ProgramBuilder b("arith");
  const Reg a = b.reg(), c = b.reg(), d = b.reg();
  b.const_(a, 10);
  b.const_(c, 3);
  b.add(d, a, c);
  b.output(d);  // 13
  b.sub(d, a, c);
  b.output(d);  // 7
  b.mul(d, a, c);
  b.output(d);  // 30
  b.div(d, a, c);
  b.output(d);  // 3
  b.mod(d, a, c);
  b.output(d);  // 1
  b.halt();
  const auto result = run(b.build(), {});
  EXPECT_EQ(result.outputs, (std::vector<Value>{13, 7, 30, 3, 1}));
}

TEST(Interp, ComparisonsProduceBooleans) {
  ProgramBuilder b("cmp");
  const Reg a = b.reg(), c = b.reg(), d = b.reg();
  b.const_(a, 5);
  b.const_(c, 5);
  b.cmp_lt(d, a, c);
  b.output(d);  // 0
  b.cmp_le(d, a, c);
  b.output(d);  // 1
  b.cmp_eq(d, a, c);
  b.output(d);  // 1
  b.cmp_ne(d, a, c);
  b.output(d);  // 0
  b.halt();
  const auto result = run(b.build(), {});
  EXPECT_EQ(result.outputs, (std::vector<Value>{0, 1, 1, 0}));
}

TEST(Interp, OverflowWrapsWithoutUB) {
  ProgramBuilder b("wrap");
  const Reg a = b.reg(), c = b.reg(), d = b.reg();
  b.const_(a, INT64_MAX);
  b.const_(c, 1);
  b.add(d, a, c);
  b.output(d);
  b.halt();
  const auto result = run(b.build(), {});
  EXPECT_EQ(result.outputs[0], INT64_MIN);
}

TEST(Interp, DivByZeroCrashes) {
  ProgramBuilder b("crash");
  const Reg a = b.reg(), z = b.reg(), d = b.reg();
  b.const_(a, 1);
  b.const_(z, 0);
  b.div(d, a, z);
  b.halt();
  const auto result = run(b.build(), {});
  EXPECT_EQ(result.trace.outcome, Outcome::kCrash);
  ASSERT_TRUE(result.trace.crash.has_value());
  EXPECT_EQ(result.trace.crash->kind, CrashKind::kDivByZero);
  EXPECT_EQ(result.trace.crash->pc, 2u);
}

TEST(Interp, IntMinDivMinusOneIsDefined) {
  ProgramBuilder b("intmin");
  const Reg a = b.reg(), c = b.reg(), d = b.reg();
  b.const_(a, INT64_MIN);
  b.const_(c, -1);
  b.div(d, a, c);
  b.output(d);
  b.mod(d, a, c);
  b.output(d);
  b.halt();
  const auto result = run(b.build(), {});
  EXPECT_EQ(result.trace.outcome, Outcome::kOk);
  EXPECT_EQ(result.outputs, (std::vector<Value>{INT64_MIN, 0}));
}

// --------------------------------------------------------------- taint -----

TEST(Interp, TaintedBranchesRecordBits) {
  ProgramBuilder b("taint1");
  const Reg x = b.reg(), t = b.reg();
  b.input(x, b.input_slot());
  b.cmp_lt_const(t, x, 10);
  auto yes = b.label(), no = b.label();
  b.branch_if(t, yes, no);
  b.bind(yes);
  b.bind(no);
  b.halt();
  const Program p = b.build();
  EXPECT_EQ(run(p, {5}).trace.branch_bits.size(), 1u);
  EXPECT_TRUE(run(p, {5}).trace.branch_bits[0]);
  EXPECT_FALSE(run(p, {15}).trace.branch_bits[0]);
}

TEST(Interp, UntaintedBranchesRecordNothing) {
  ProgramBuilder b("taint2");
  const Reg x = b.reg(), t = b.reg();
  b.const_(x, 5);
  b.cmp_lt_const(t, x, 10);
  auto yes = b.label(), no = b.label();
  b.branch_if(t, yes, no);
  b.bind(yes);
  b.bind(no);
  b.halt();
  EXPECT_EQ(run(b.build(), {}).trace.branch_bits.size(), 0u);
}

TEST(Interp, TaintPropagatesThroughArithmetic) {
  ProgramBuilder b("taint3");
  const Reg x = b.reg(), y = b.reg(), t = b.reg();
  b.input(x, b.input_slot());
  b.add_const(y, x, 1);   // y tainted
  b.cmp_lt_const(t, y, 100);
  auto yes = b.label(), no = b.label();
  b.branch_if(t, yes, no);
  b.bind(yes);
  b.bind(no);
  b.halt();
  EXPECT_EQ(run(b.build(), {1}).trace.branch_bits.size(), 1u);
}

TEST(Interp, ConstOverwriteClearsTaint) {
  ProgramBuilder b("taint4");
  const Reg x = b.reg(), t = b.reg();
  b.input(x, b.input_slot());
  b.const_(x, 7);  // clears taint
  b.cmp_lt_const(t, x, 10);
  auto yes = b.label(), no = b.label();
  b.branch_if(t, yes, no);
  b.bind(yes);
  b.bind(no);
  b.halt();
  EXPECT_EQ(run(b.build(), {1}).trace.branch_bits.size(), 0u);
}

TEST(Interp, TaintFlowsThroughGlobals) {
  ProgramBuilder b("taint5");
  const std::uint32_t g = b.global();
  const Reg x = b.reg(), y = b.reg(), t = b.reg();
  b.input(x, b.input_slot());
  b.storeg(g, x);
  b.loadg(y, g);
  b.cmp_lt_const(t, y, 10);
  auto yes = b.label(), no = b.label();
  b.branch_if(t, yes, no);
  b.bind(yes);
  b.bind(no);
  b.halt();
  EXPECT_EQ(run(b.build(), {1}).trace.branch_bits.size(), 1u);
}

TEST(Interp, SyscallResultsAreTainted) {
  ProgramBuilder b("taint6");
  const Reg x = b.reg(), n = b.reg(), t = b.reg();
  b.const_(n, 10);
  b.syscall(x, 2, n);  // clock()
  b.cmp_lt_const(t, x, 1000000);
  auto yes = b.label(), no = b.label();
  b.branch_if(t, yes, no);
  b.bind(yes);
  b.bind(no);
  b.halt();
  EXPECT_EQ(run(b.build(), {}).trace.branch_bits.size(), 1u);
}

// -------------------------------------------------------- granularities ----

TEST(Interp, GranularityNoneRecordsNoBits) {
  auto entry = make_media_parser();
  ExecConfig cfg;
  cfg.inputs = {13, 250};
  cfg.granularity = Granularity::kNone;
  const auto result = execute(entry.program, cfg);
  EXPECT_EQ(result.trace.branch_bits.size(), 0u);
  EXPECT_EQ(result.trace.outcome, Outcome::kCrash);
}

TEST(Interp, GranularityAllRecordsAtLeastTainted) {
  auto entry = make_media_parser();
  ExecConfig tainted_cfg, all_cfg;
  tainted_cfg.inputs = all_cfg.inputs = {20, 100};
  tainted_cfg.granularity = Granularity::kTaintedBranches;
  all_cfg.granularity = Granularity::kAllBranches;
  const auto tainted = execute(entry.program, tainted_cfg);
  const auto all = execute(entry.program, all_cfg);
  EXPECT_GE(all.trace.branch_bits.size(), tainted.trace.branch_bits.size());
}

TEST(Interp, FullGranularityRecordsSyscalls) {
  auto entry = make_file_copier();
  ExecConfig cfg;
  cfg.inputs = {10, 3};
  cfg.granularity = Granularity::kFull;
  const auto result = execute(entry.program, cfg);
  EXPECT_FALSE(result.trace.syscalls.empty());
}

// ------------------------------------------------------------ schedule -----

TEST(Interp, SingleThreadedHasNoSchedule) {
  auto entry = make_media_parser();
  const auto result = run(entry.program, {1, 1});
  EXPECT_TRUE(result.trace.schedule.empty());
}

TEST(Interp, MultiThreadedRecordsSchedule) {
  auto entry = make_bank_transfer();
  const auto result = run(entry.program, {50});
  EXPECT_FALSE(result.trace.schedule.empty());
  std::uint64_t total = 0;
  for (const auto& r : result.trace.schedule) total += r.steps;
  EXPECT_EQ(total, result.trace.steps);
}

TEST(Interp, DeterministicGivenSeed) {
  auto entry = make_bank_transfer();
  const auto a = run(entry.program, {150}, 42);
  const auto b = run(entry.program, {150}, 42);
  EXPECT_EQ(a.trace.outcome, b.trace.outcome);
  EXPECT_EQ(a.trace.branch_bits, b.trace.branch_bits);
  EXPECT_EQ(a.trace.schedule, b.trace.schedule);
  EXPECT_EQ(a.trace.steps, b.trace.steps);
}

TEST(Interp, SchedulePlanSteersExecution) {
  // Force thread 0 to run to completion before thread 1 starts: no deadlock
  // even with amount > 100.
  auto entry = make_bank_transfer();
  SchedulePlan plan;
  plan.runs = {{0, 100}};
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {150};
    cfg.seed = seed;
    cfg.schedule_plan = &plan;
    const auto result = execute(entry.program, cfg);
    EXPECT_EQ(result.trace.outcome, Outcome::kOk) << "seed " << seed;
  }
}

// ------------------------------------------------------------ deadlock -----

TEST(Interp, BankTransferDeadlocksUnderSomeSchedule) {
  auto entry = make_bank_transfer();
  int deadlocks = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto result = run(entry.program, {150}, seed);
    if (result.trace.outcome == Outcome::kDeadlock) {
      deadlocks++;
      EXPECT_FALSE(result.deadlock_cycle.empty());
      EXPECT_FALSE(result.trace.lock_events.empty());
    }
  }
  EXPECT_GT(deadlocks, 0);
  EXPECT_LT(deadlocks, 200);  // not every schedule deadlocks
}

TEST(Interp, SafeAmountNeverDeadlocks) {
  auto entry = make_bank_transfer();
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const auto result = run(entry.program, {50}, seed);
    EXPECT_EQ(result.trace.outcome, Outcome::kOk) << "seed " << seed;
  }
}

TEST(Interp, SelfDeadlockDetected) {
  ProgramBuilder b("selflock");
  const auto l = b.lock();
  b.lock_acq(l);
  b.lock_acq(l);  // blocks on itself
  b.halt();
  const auto result = run(b.build(), {});
  EXPECT_EQ(result.trace.outcome, Outcome::kDeadlock);
}

TEST(Interp, UnlockNotHeldCrashes) {
  ProgramBuilder b("badunlock");
  const auto l = b.lock();
  b.lock_rel(l);
  b.halt();
  const auto result = run(b.build(), {});
  EXPECT_EQ(result.trace.outcome, Outcome::kCrash);
  EXPECT_EQ(result.trace.crash->kind, CrashKind::kExplicitAbort);
}

TEST(Interp, HaltWhileHoldingLockIsDeadlockForWaiter) {
  ProgramBuilder b("halt-holding");
  const auto l = b.lock();
  b.lock_acq(l);
  b.halt();  // never releases
  b.start_thread();
  b.lock_acq(l);
  b.halt();
  int deadlocks = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    if (run(b.build(), {}, seed).trace.outcome == Outcome::kDeadlock) {
      deadlocks++;
    }
  }
  EXPECT_GT(deadlocks, 0);
}

// ---------------------------------------------------------------- hang -----

TEST(Interp, InfiniteLoopClassifiedAsHang) {
  ProgramBuilder b("spin");
  auto top = b.here();
  b.jump(top);
  ExecConfig cfg;
  cfg.max_steps = 1000;
  const auto result = execute(b.build(), cfg);
  EXPECT_EQ(result.trace.outcome, Outcome::kHang);
  EXPECT_EQ(result.trace.steps, 1000u);
}

// ---------------------------------------------------------------- fixes ----

TEST(Fixes, GuardPatchAvertsCrash) {
  auto entry = make_media_parser();
  FixSet fixes;
  // Site 3 is the "size < 200" check inside format 13; crash direction is
  // `false` (size >= 200). Fire only for the known crash region.
  GuardPatch patch;
  patch.site = 3;
  patch.crash_direction = false;
  patch.when = {{0, 13, 13}, {1, 200, 255}};
  fixes.guards.push_back(patch);

  ExecConfig cfg;
  cfg.inputs = {13, 250};
  cfg.fixes = &fixes;
  const auto result = execute(entry.program, cfg);
  EXPECT_EQ(result.trace.outcome, Outcome::kOk);
  EXPECT_TRUE(result.trace.patched);
  EXPECT_TRUE(result.fix_intervened);
}

TEST(Fixes, GuardPatchDoesNotFireOutsidePredicate) {
  auto entry = make_media_parser();
  FixSet fixes;
  GuardPatch patch;
  patch.site = 3;
  patch.crash_direction = false;
  patch.when = {{0, 13, 13}, {1, 200, 255}};
  fixes.guards.push_back(patch);

  ExecConfig cfg;
  cfg.inputs = {13, 150};  // size < 200: healthy run
  cfg.fixes = &fixes;
  const auto result = execute(entry.program, cfg);
  EXPECT_EQ(result.trace.outcome, Outcome::kOk);
  EXPECT_FALSE(result.trace.patched);
}

TEST(Fixes, CrashGuardSubstituteAvertsDivByZero) {
  auto entry = make_file_copier();
  // Find the div pc: it is the only kDiv in the program.
  std::uint32_t div_pc = 0;
  for (std::uint32_t pc = 0; pc < entry.program.code.size(); ++pc) {
    if (entry.program.code[pc].op == Op::kDiv) div_pc = pc;
  }
  FixSet fixes;
  fixes.crash_guards.push_back({FixId(1), entry.program.id, div_pc,
                                CrashGuardFix::Action::kSubstitute, 0});

  FaultPlan faults;
  faults.forced[0] = 0;  // first read returns 0 bytes => would crash
  ExecConfig cfg;
  cfg.inputs = {10, 3};
  cfg.fixes = &fixes;
  cfg.fault_plan = &faults;
  const auto result = execute(entry.program, cfg);
  EXPECT_EQ(result.trace.outcome, Outcome::kOk);
  EXPECT_TRUE(result.trace.patched);
}

TEST(Fixes, CrashGuardSkipAvertsAbort) {
  auto entry = make_magic_lookup();
  std::uint32_t abort_pc = 0;
  for (std::uint32_t pc = 0; pc < entry.program.code.size(); ++pc) {
    if (entry.program.code[pc].op == Op::kAbort) abort_pc = pc;
  }
  FixSet fixes;
  fixes.crash_guards.push_back({FixId(2), entry.program.id, abort_pc,
                                CrashGuardFix::Action::kSkip, 0});
  ExecConfig cfg;
  cfg.inputs = {4242};
  cfg.fixes = &fixes;
  const auto result = execute(entry.program, cfg);
  EXPECT_EQ(result.trace.outcome, Outcome::kOk);
}

TEST(Fixes, LockAvoidanceEliminatesDeadlock) {
  auto entry = make_bank_transfer();
  FixSet fixes;
  fixes.lock_fixes.push_back({FixId(3), entry.program.id, {0, 1}});
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {150};
    cfg.seed = seed;
    cfg.fixes = &fixes;
    const auto result = execute(entry.program, cfg);
    EXPECT_EQ(result.trace.outcome, Outcome::kOk) << "seed " << seed;
  }
}

TEST(Fixes, LockAvoidancePreservesResultOnSafeRuns) {
  auto entry = make_bank_transfer();
  FixSet fixes;
  fixes.lock_fixes.push_back({FixId(3), entry.program.id, {0, 1}});
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ExecConfig cfg;
    cfg.inputs = {50};
    cfg.seed = seed;
    cfg.fixes = &fixes;
    EXPECT_EQ(execute(entry.program, cfg).trace.outcome, Outcome::kOk);
  }
}

// ------------------------------------------------------------ guidance -----

TEST(Guidance, FaultPlanForcesSyscallResult) {
  auto entry = make_file_copier();
  FaultPlan faults;
  faults.forced[0] = 0;  // zero-length read on the first call
  ExecConfig cfg;
  cfg.inputs = {10, 3};
  cfg.fault_plan = &faults;
  const auto result = execute(entry.program, cfg);
  EXPECT_EQ(result.trace.outcome, Outcome::kCrash);
  EXPECT_EQ(result.trace.crash->kind, CrashKind::kDivByZero);
}

// -------------------------------------------------------------- corpus -----

TEST(Corpus, AllProgramsValidate) {
  for (const auto& entry : standard_corpus()) {
    std::string err;
    EXPECT_TRUE(entry.program.validate(&err))
        << entry.program.name << ": " << err;
    EXPECT_EQ(entry.domains.size(), entry.program.num_inputs)
        << entry.program.name;
  }
}

TEST(Corpus, MediaParserCrashRegionExact) {
  auto entry = make_media_parser();
  // Exhaustive sweep of the whole input domain against ground truth.
  for (Value format = 0; format <= 63; ++format) {
    for (Value size = 0; size <= 255; size += 5) {
      const auto result = run(entry.program, {format, size});
      const bool should_crash = format == 13 && size >= 200;
      EXPECT_EQ(result.trace.outcome == Outcome::kCrash, should_crash)
          << "format=" << format << " size=" << size;
    }
  }
}

TEST(Corpus, MagicLookupOnlyCrashesOnNeedle) {
  auto entry = make_magic_lookup();
  EXPECT_EQ(run(entry.program, {4242}).trace.outcome, Outcome::kCrash);
  EXPECT_EQ(run(entry.program, {4241}).trace.outcome, Outcome::kOk);
  EXPECT_EQ(run(entry.program, {0}).trace.outcome, Outcome::kOk);
}

TEST(Corpus, ConfigSpaceOutputsBitmask) {
  auto entry = make_config_space(4);
  const auto result = run(entry.program, {1, 0, 1, 1});
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0], 0b1101);
  EXPECT_EQ(result.trace.branch_bits.size(), 4u);
}

TEST(Corpus, ConfigSpaceAllPathsDistinct) {
  auto entry = make_config_space(5);
  std::set<std::string> paths;
  for (Value mask = 0; mask < 32; ++mask) {
    std::vector<Value> inputs;
    for (int j = 0; j < 5; ++j) inputs.push_back((mask >> j) & 1);
    paths.insert(run(entry.program, inputs).trace.branch_bits.to_string());
  }
  EXPECT_EQ(paths.size(), 32u);
}

TEST(Corpus, WorkerPoolNeverAbortsInSystem) {
  auto entry = make_worker_pool();
  for (Value raw = 0; raw <= 255; ++raw) {
    EXPECT_EQ(run(entry.program, {raw}).trace.outcome, Outcome::kOk)
        << "raw=" << raw;
  }
}

TEST(Corpus, RaceCounterFailsUnderSomeSchedule) {
  auto entry = make_race_counter();
  int failures = 0, oks = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const auto result = run(entry.program, {}, seed);
    if (result.trace.outcome == Outcome::kCrash) {
      EXPECT_EQ(result.trace.crash->kind, CrashKind::kAssertFailure);
      failures++;
    } else if (result.trace.outcome == Outcome::kOk) {
      oks++;
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_GT(oks, 0);
}

TEST(Corpus, FileCopierCrashesOnZeroRead) {
  auto entry = make_file_copier();
  int crashes = 0;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    // Small chunk => higher chance of a zero-length read.
    const auto result = run(entry.program, {2, 8}, seed);
    if (result.trace.outcome == Outcome::kCrash) crashes++;
  }
  EXPECT_GT(crashes, 0);
}

}  // namespace
}  // namespace softborg
