file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_relaxed_consistency.dir/bench_e7_relaxed_consistency.cpp.o"
  "CMakeFiles/bench_e7_relaxed_consistency.dir/bench_e7_relaxed_consistency.cpp.o.d"
  "bench_e7_relaxed_consistency"
  "bench_e7_relaxed_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_relaxed_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
