// Fuzz hardening for the distributed hive's frame decoder (ISSUE 9
// satellite): the decoder faces raw socket bytes from potentially corrupt,
// truncated, or hostile peers, and must reject-or-deliver-valid — never
// crash, never allocate beyond the declared payload bound, never
// resynchronize a poisoned stream.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dist/frame.h"

namespace softborg::dist {
namespace {

Bytes some_payload(std::size_t n, std::uint8_t seed) {
  Bytes p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return p;
}

TEST(Frame, RoundTripsTypesCreditsAndPayloads) {
  Bytes stream;
  encode_frame(stream, 1, 0, some_payload(100, 7));
  encode_frame(stream, 9, 512, Bytes{});  // bare credit grant, header-only
  encode_frame(stream, 255, 0xffff, some_payload(1, 0));
  FrameDecoder d;
  d.feed(stream.data(), stream.size());
  auto f1 = d.next();
  auto f2 = d.next();
  auto f3 = d.next();
  ASSERT_TRUE(f1 && f2 && f3);
  EXPECT_FALSE(d.next().has_value());
  EXPECT_FALSE(d.failed());
  EXPECT_EQ(f1->type, 1u);
  EXPECT_EQ(f1->credit, 0u);
  EXPECT_EQ(f1->payload, some_payload(100, 7));
  EXPECT_EQ(f2->type, 9u);
  EXPECT_EQ(f2->credit, 512u);
  EXPECT_TRUE(f2->payload.empty());
  EXPECT_EQ(f3->type, 255u);
  EXPECT_EQ(f3->credit, 0xffffu);
  EXPECT_EQ(f3->payload, some_payload(1, 0));
  EXPECT_EQ(d.buffered(), 0u);
}

TEST(Frame, TruncationAtEveryBoundaryWaitsThenDecodes) {
  Bytes wire;
  encode_frame(wire, 3, 17, some_payload(64, 3));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder d;
    d.feed(wire.data(), cut);
    // A prefix is never an error — just an incomplete frame.
    EXPECT_FALSE(d.next().has_value()) << "cut " << cut;
    EXPECT_FALSE(d.failed()) << "cut " << cut;
    d.feed(wire.data() + cut, wire.size() - cut);
    const auto f = d.next();
    ASSERT_TRUE(f.has_value()) << "cut " << cut;
    EXPECT_EQ(f->type, 3u);
    EXPECT_EQ(f->payload, some_payload(64, 3));
  }
}

TEST(Frame, EveryBitFlipRejectsOrDeliversValid) {
  Bytes wire;
  encode_frame(wire, 1, 2, some_payload(48, 9));
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    Bytes flipped = wire;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    FrameDecoder d;
    d.feed(flipped.data(), flipped.size());
    std::size_t frames = 0;
    while (const auto f = d.next()) {
      frames++;
      // Anything delivered must respect the structural bounds.
      EXPECT_LE(f->payload.size(), kMaxFramePayload);
      EXPECT_LE(f->type, 0xffu);
      EXPECT_LE(f->credit, 0xffffu);
    }
    // A flip lands in exactly one frame: at most one can come out, and the
    // decoder never buffers beyond the one (bounded) frame in progress.
    EXPECT_LE(frames, 1u) << "bit " << bit;
    EXPECT_LE(d.buffered(), kFrameHeaderSize + kMaxFramePayload);
    // Payload and checksum flips must be caught (the checksum covers the
    // body; header flips may legitimately yield a different valid frame —
    // type/credit are not covered — or a reject).
    const std::size_t byte = bit / 8;
    if (byte >= kFrameHeaderSize || byte == 12 || byte == 13 || byte == 14 ||
        byte == 15) {
      EXPECT_TRUE(d.failed()) << "bit " << bit;
      EXPECT_EQ(frames, 0u) << "bit " << bit;
    }
  }
}

TEST(Frame, OversizedLengthRejectsBeforeAllocating) {
  // A hostile length field must be rejected from the 16 header bytes alone
  // — no payload is ever buffered for it.
  for (const std::uint64_t claimed :
       {static_cast<std::uint64_t>(kMaxFramePayload) + 1,
        std::uint64_t{0xffffffff}}) {
    Bytes header = {'S', 'B', 'D', '1', kFrameVersion, 1, 0, 0};
    for (int shift = 0; shift < 32; shift += 8) {
      header.push_back(static_cast<std::uint8_t>(claimed >> shift));
    }
    header.insert(header.end(), {0, 0, 0, 0});  // checksum, never reached
    ASSERT_EQ(header.size(), kFrameHeaderSize);
    FrameDecoder d;
    d.feed(header.data(), header.size());
    EXPECT_FALSE(d.next().has_value());
    EXPECT_TRUE(d.failed());
    EXPECT_LE(d.buffered(), kFrameHeaderSize);
    // Latched: feeding a perfectly good frame afterwards yields nothing.
    Bytes good;
    encode_frame(good, 1, 0, some_payload(8, 1));
    d.feed(good.data(), good.size());
    EXPECT_FALSE(d.next().has_value());
    EXPECT_TRUE(d.failed());
  }
}

TEST(Frame, BadMagicAndVersionLatch) {
  Bytes wire;
  encode_frame(wire, 1, 0, some_payload(4, 2));
  {
    Bytes bad = wire;
    bad[0] = 'X';
    FrameDecoder d;
    d.feed(bad.data(), bad.size());
    EXPECT_FALSE(d.next().has_value());
    EXPECT_TRUE(d.failed());
  }
  {
    // kFrameVersion + 1 became the traced version; the first unknown one
    // must still latch.
    Bytes bad = wire;
    bad[4] = kFrameVersionTraced + 1;
    FrameDecoder d;
    d.feed(bad.data(), bad.size());
    EXPECT_FALSE(d.next().has_value());
    EXPECT_TRUE(d.failed());
  }
}

// --- version 2: the trace-context extension -------------------------------

obs::TraceContext some_ctx() {
  obs::TraceContext ctx{0x1122334455667788ull, 0};
  ctx = obs::with_hop(ctx, obs::Hop::kPod);
  ctx = obs::with_hop(ctx, obs::Hop::kRouter);
  return ctx;
}

TEST(FrameTraced, RoundTripsContextAndPayload) {
  const obs::TraceContext ctx = some_ctx();
  Bytes stream;
  encode_frame(stream, 7, 33, some_payload(100, 5), ctx);
  encode_frame(stream, 8, 0, Bytes{}, ctx);  // header+ext only
  EXPECT_EQ(stream[4], kFrameVersionTraced);
  FrameDecoder d;
  d.feed(stream.data(), stream.size());
  const auto f1 = d.next();
  const auto f2 = d.next();
  ASSERT_TRUE(f1 && f2);
  EXPECT_FALSE(d.failed());
  EXPECT_EQ(f1->type, 7u);
  EXPECT_EQ(f1->credit, 33u);
  EXPECT_EQ(f1->payload, some_payload(100, 5));
  EXPECT_EQ(f1->ctx, ctx);
  EXPECT_TRUE(f2->payload.empty());
  EXPECT_EQ(f2->ctx, ctx);
  EXPECT_EQ(d.buffered(), 0u);
}

TEST(FrameTraced, InvalidContextEmitsByteIdenticalV1) {
  Bytes plain, via_ctx;
  encode_frame(plain, 3, 9, some_payload(32, 1));
  encode_frame(via_ctx, 3, 9, some_payload(32, 1), obs::TraceContext{});
  EXPECT_EQ(plain, via_ctx);
  EXPECT_EQ(plain[4], kFrameVersion);
  // And the decoded frame carries no context.
  FrameDecoder d;
  d.feed(plain.data(), plain.size());
  const auto f = d.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_FALSE(f->ctx.valid());
}

TEST(FrameTraced, MixedVersionStreamInterleaves) {
  const obs::TraceContext ctx = some_ctx();
  Bytes stream;
  encode_frame(stream, 1, 0, some_payload(10, 1));
  encode_frame(stream, 2, 0, some_payload(20, 2), ctx);
  encode_frame(stream, 3, 0, some_payload(30, 3));
  FrameDecoder d;
  d.feed(stream.data(), stream.size());
  const auto f1 = d.next();
  const auto f2 = d.next();
  const auto f3 = d.next();
  ASSERT_TRUE(f1 && f2 && f3);
  EXPECT_FALSE(f1->ctx.valid());
  EXPECT_EQ(f2->ctx, ctx);
  EXPECT_FALSE(f3->ctx.valid());
  EXPECT_FALSE(d.failed());
}

TEST(FrameTraced, TruncationAtEveryBoundaryWaitsThenDecodes) {
  Bytes wire;
  encode_frame(wire, 4, 11, some_payload(40, 6), some_ctx());
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder d;
    d.feed(wire.data(), cut);
    EXPECT_FALSE(d.next().has_value()) << "cut " << cut;
    EXPECT_FALSE(d.failed()) << "cut " << cut;
    d.feed(wire.data() + cut, wire.size() - cut);
    const auto f = d.next();
    ASSERT_TRUE(f.has_value()) << "cut " << cut;
    EXPECT_EQ(f->ctx, some_ctx());
    EXPECT_EQ(f->payload, some_payload(40, 6));
  }
}

TEST(FrameTraced, EveryBitFlipRejectsOrDeliversValid) {
  Bytes wire;
  encode_frame(wire, 1, 2, some_payload(48, 9), some_ctx());
  ASSERT_EQ(wire.size(), kFrameHeaderSize + kFrameTraceExtSize + 48);
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    Bytes flipped = wire;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    FrameDecoder d;
    d.feed(flipped.data(), flipped.size());
    std::size_t frames = 0;
    while (const auto f = d.next()) {
      frames++;
      EXPECT_LE(f->payload.size(), kMaxFramePayload);
    }
    EXPECT_LE(frames, 1u) << "bit " << bit;
    // The checksum covers extension || payload, so flips there — and in the
    // checksum itself — must reject. (kFrameVersion and kFrameVersionTraced
    // differ by two bits, so single version flips always latch too.)
    const std::size_t byte = bit / 8;
    if (byte >= 12) {
      EXPECT_TRUE(d.failed()) << "bit " << bit;
      EXPECT_EQ(frames, 0u) << "bit " << bit;
    }
  }
}

TEST(FrameTraced, ZeroTraceIdRejects) {
  // A v2 frame claiming "no context" is malformed: hand-craft one with a
  // zeroed trace id and a VALID checksum, so only the semantic check can
  // catch it.
  const Bytes payload = some_payload(16, 4);
  Bytes wire = {'S', 'B', 'D', '1', kFrameVersionTraced, 1, 0, 0};
  for (int shift = 0; shift < 32; shift += 8) {
    wire.push_back(static_cast<std::uint8_t>(payload.size() >> shift));
  }
  Bytes body(kFrameTraceExtSize, 0);  // trace id 0, hop path 0
  body.insert(body.end(), payload.begin(), payload.end());
  const std::uint32_t cksum = frame_checksum(body.data(), body.size());
  for (int shift = 0; shift < 32; shift += 8) {
    wire.push_back(static_cast<std::uint8_t>(cksum >> shift));
  }
  wire.insert(wire.end(), body.begin(), body.end());
  FrameDecoder d;
  d.feed(wire.data(), wire.size());
  EXPECT_FALSE(d.next().has_value());
  EXPECT_TRUE(d.failed());
}

TEST(Frame, RandomChopReassemblesIdentically) {
  // The kernel hands the decoder arbitrary read sizes; every chop of the
  // same stream must yield the same frame sequence.
  Rng rng(0xfeed);
  Bytes stream;
  std::vector<Bytes> payloads;
  for (int i = 0; i < 50; ++i) {
    payloads.push_back(some_payload(rng.next_below(300),
                                    static_cast<std::uint8_t>(i)));
    encode_frame(stream, 1 + (i % 14), i % 7 == 0 ? i : 0, payloads.back());
  }
  for (int trial = 0; trial < 20; ++trial) {
    FrameDecoder d;
    std::size_t fed = 0, got = 0;
    while (fed < stream.size() || true) {
      while (const auto f = d.next()) {
        ASSERT_LT(got, payloads.size());
        EXPECT_EQ(f->payload, payloads[got]);
        got++;
      }
      if (fed >= stream.size()) break;
      const std::size_t n =
          std::min<std::size_t>(1 + rng.next_below(97), stream.size() - fed);
      d.feed(stream.data() + fed, n);
      fed += n;
    }
    EXPECT_EQ(got, payloads.size()) << "trial " << trial;
    EXPECT_FALSE(d.failed());
    EXPECT_EQ(d.buffered(), 0u);
  }
}

TEST(Frame, RandomGarbageNeverCrashesAndStaysBounded) {
  Rng rng(0xdead);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder d;
    Bytes junk(rng.next_below(2048));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
    d.feed(junk.data(), junk.size());
    while (const auto f = d.next()) {
      EXPECT_LE(f->payload.size(), kMaxFramePayload);
    }
    EXPECT_LE(d.buffered(), kFrameHeaderSize + kMaxFramePayload);
  }
}

}  // namespace
}  // namespace softborg::dist
