// SoftBorg — collective information recycling for software dependability.
//
// Umbrella header: include this to get the whole public API.
//
//   #include "core/softborg.h"
//
//   auto corpus = softborg::standard_corpus();
//   softborg::WorldConfig config;
//   config.pods_per_program = 200;
//   config.days = 30;
//   softborg::World world(corpus, config);
//   world.run();                                   // Fig. 1 loop
//   auto cert = world.hive().attempt_proof(        // cumulative proof
//       corpus[0].program.id, softborg::Property::kNeverCrashes);
//
// Layering (see DESIGN.md):
//   common   — RNG, bit vectors, varints, metrics, thread pool
//   obs      — fleet telemetry: metrics registry, stage spans, exporters
//   trace    — execution by-products and their wire codec (§3.1)
//   minivm   — the program substrate: model, interpreter, replay, corpus
//   sym      — symbolic expressions, constraint solver, symbolic executor,
//              SAT solvers and the portfolio (§3.3, §4)
//   tree     — the collective execution tree (§3.2)
//   privacy  — anonymization, k-anonymity gate, information content (§3.1)
//   net      — the simulated unreliable network
//   pod      — the per-instance runtime and the pod<->hive protocol
//   hive     — bug detection, fix synthesis, proofs, guidance, cooperative
//              symbolic execution (§3.3, §4)
//   core     — the World fleet simulation tying it all together (Fig. 1)
#pragma once

#include "common/bitvec.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/world.h"
#include "dist/channel.h"
#include "dist/frame.h"
#include "dist/ring.h"
#include "dist/router.h"
#include "dist/socket.h"
#include "dist/worker.h"
#include "hive/bugs.h"
#include "hive/coop.h"
#include "hive/fixer.h"
#include "hive/guidance.h"
#include "hive/hive.h"
#include "hive/proof.h"
#include "hive/report.h"
#include "hive/sharded.h"
#include "minivm/builder.h"
#include "minivm/corpus.h"
#include "minivm/disasm.h"
#include "minivm/interp.h"
#include "minivm/program.h"
#include "minivm/random_program.h"
#include "minivm/replay.h"
#include "net/simnet.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "pod/pod.h"
#include "pod/protocol.h"
#include "privacy/anonymize.h"
#include "privacy/entropy.h"
#include "sym/cnf.h"
#include "sym/csolver.h"
#include "sym/executor.h"
#include "sym/expr.h"
#include "sym/portfolio.h"
#include "sym/sat.h"
#include "trace/codec.h"
#include "trace/sampling.h"
#include "trace/trace.h"
#include "tree/exec_tree.h"
#include "tree/tree_codec.h"
