// E2 — Solver portfolio (paper §4).
//
// Claim under test (the paper's only number): "by replacing a single SAT
// solver with a portfolio of three different SAT solvers running in
// parallel, we achieved a 10x speedup in constraint solving time with only
// a 3x increase in computation resources."
//
// Setup: a mixed workload of 120 instances — random 3-SAT at the hard
// clause ratio (4.2), easy under-constrained 3-SAT, implication chains
// (trivial for unit propagation, hostile to local search), and pigeonhole
// UNSAT instances (hostile to everything but still decidable by DPLL).
// Each instance is solved by each engine alone and by the 3-engine
// portfolio under simulated perfect parallelism (deterministic tick
// accounting; losers are cancelled at the winner's finish time).
//
// Reported: per-engine total/decided stats, portfolio wall time, speedup vs
// each single engine and vs the best-per-engine choice, and the resource
// ratio (cost_ticks / wall_ticks <= 3).
//
// Expected shape: order-of-magnitude speedup vs any fixed engine at a
// resource ratio strictly below 3x (cancellation saves most loser work).
#include <cstdio>

#include "bench_json.h"
#include "core/softborg.h"

using namespace softborg;

int main(int argc, char** argv) {
  BenchJsonWriter json("e2_portfolio", argc, argv);
  constexpr std::uint64_t kBudget = 40'000'000;

  // Workload mix.
  struct Instance {
    const char* family;
    Cnf cnf;
  };
  std::vector<Instance> workload;
  for (std::uint64_t s = 1; s <= 40; ++s) {
    workload.push_back({"3sat-hard", random_ksat(24, 101, 3, s)});  // ~4.2
  }
  for (std::uint64_t s = 1; s <= 20; ++s) {
    workload.push_back({"3sat-easy", random_ksat(30, 90, 3, 100 + s)});
  }
  // Large satisfiable random instances: systematic search plods, local
  // search usually shines — one leg of the complementarity.
  for (std::uint64_t s = 1; s <= 20; ++s) {
    workload.push_back({"3sat-large", random_ksat(160, 640, 3, 200 + s)});
  }
  for (int len = 20; len <= 48; len += 1) {
    workload.push_back({"chain", chain(len)});
  }
  for (int holes = 2; holes <= 6; ++holes) {
    workload.push_back({"pigeonhole", pigeonhole(holes)});
  }

  PortfolioSolver portfolio(make_standard_portfolio(/*seed=*/12345));
  const std::size_t n_solvers = portfolio.size();

  std::vector<std::uint64_t> solo_total(n_solvers, 0);
  std::vector<std::uint64_t> solo_decided(n_solvers, 0);
  std::vector<std::uint64_t> wins(n_solvers, 0);
  std::uint64_t portfolio_wall = 0, portfolio_cost = 0, undecided = 0;

  for (const auto& inst : workload) {
    const auto out = portfolio.solve_simulated(inst.cnf, kBudget);
    portfolio_wall += out.wall_ticks;
    portfolio_cost += out.cost_ticks;
    if (out.winner >= 0) {
      wins[static_cast<std::size_t>(out.winner)]++;
    } else {
      undecided++;
    }
    for (std::size_t i = 0; i < n_solvers; ++i) {
      solo_total[i] += out.per_solver_ticks[i];
      if (out.per_solver_ticks[i] < kBudget) solo_decided[i]++;
    }
  }

  std::printf("# E2: portfolio vs single solvers — %zu instances, budget %llu "
              "ticks/solver\n",
              workload.size(), static_cast<unsigned long long>(kBudget));
  std::printf("%-16s %-14s %-10s %-8s\n", "engine", "total_ticks", "decided",
              "wins");
  for (std::size_t i = 0; i < n_solvers; ++i) {
    std::printf("%-16s %-14llu %-10llu %-8llu\n",
                portfolio.solver(i).name().c_str(),
                static_cast<unsigned long long>(solo_total[i]),
                static_cast<unsigned long long>(solo_decided[i]),
                static_cast<unsigned long long>(wins[i]));
  }
  std::printf("%-16s %-14llu %-10zu\n", "portfolio(3)",
              static_cast<unsigned long long>(portfolio_wall),
              workload.size() - undecided);

  std::printf("\nspeedup of the portfolio over each fixed engine:\n");
  for (std::size_t i = 0; i < n_solvers; ++i) {
    std::printf("  vs %-16s %6.1fx\n", portfolio.solver(i).name().c_str(),
                static_cast<double>(solo_total[i]) /
                    static_cast<double>(portfolio_wall));
  }
  const std::uint64_t best_single =
      *std::min_element(solo_total.begin(), solo_total.end());
  std::printf("  vs best single:    %6.1fx\n",
              static_cast<double>(best_single) /
                  static_cast<double>(portfolio_wall));
  json.add("mixed_sat_workload", "portfolio_wall_ticks",
           static_cast<double>(portfolio_wall),
           static_cast<double>(best_single));
  json.add("mixed_sat_workload", "speedup_vs_best_single",
           static_cast<double>(best_single) /
               static_cast<double>(portfolio_wall));
  json.add("mixed_sat_workload", "cost_over_wall",
           static_cast<double>(portfolio_cost) /
               static_cast<double>(portfolio_wall));
  std::printf("\nresource ratio: %.2fx (3 engines run until the first "
              "decides, then losers are cancelled — the paper's 3x)\n",
              static_cast<double>(portfolio_cost) /
                  static_cast<double>(portfolio_wall));
  std::printf("paper's claim: ~10x speedup for ~3x resources — shape %s\n",
              static_cast<double>(best_single) /
                          static_cast<double>(portfolio_wall) >=
                      3.0
                  ? "REPRODUCED (>=3x even vs the best oracle-chosen engine)"
                  : "NOT reproduced");

  // ---- ablation: which members earn their resource share? ----------------
  std::printf("\n## ablation: portfolio composition (same workload)\n");
  std::printf("%-34s %-14s %-10s %-8s\n", "portfolio", "wall_ticks",
              "decided", "cost/wall");
  struct Combo {
    const char* name;
    std::vector<int> members;  // indices into the standard trio
  };
  const std::vector<Combo> combos = {
      {"dpll-activity alone", {0}},
      {"dpll-activity + dpll-negstatic", {0, 1}},
      {"dpll-activity + walksat", {0, 2}},
      {"all three", {0, 1, 2}},
  };
  for (const auto& combo : combos) {
    std::vector<std::unique_ptr<SatSolver>> members;
    for (int m : combo.members) {
      switch (m) {
        case 0:
          members.push_back(make_dpll_solver(DpllHeuristic::kActivity));
          break;
        case 1:
          members.push_back(make_dpll_solver(DpllHeuristic::kNegativeStatic));
          break;
        default:
          members.push_back(make_walksat_solver(12345));
          break;
      }
    }
    PortfolioSolver pf(std::move(members));
    std::uint64_t wall = 0, cost = 0, decided = 0;
    for (const auto& inst : workload) {
      const auto out = pf.solve_simulated(inst.cnf, kBudget);
      wall += out.wall_ticks;
      cost += out.cost_ticks;
      if (out.winner >= 0) decided++;
    }
    std::printf("%-34s %-14llu %-10llu %-8.2f\n", combo.name,
                static_cast<unsigned long long>(wall),
                static_cast<unsigned long long>(decided),
                static_cast<double>(cost) / static_cast<double>(wall));
  }
  std::printf("(complementarity, not redundancy, is what pays: the "
              "systematic+local-search pair does most of the work, the "
              "third engine buys the last instances and robustness)\n");
  return json.write() ? 0 : 1;
}
