file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_portfolio.dir/bench_e2_portfolio.cpp.o"
  "CMakeFiles/bench_e2_portfolio.dir/bench_e2_portfolio.cpp.o.d"
  "bench_e2_portfolio"
  "bench_e2_portfolio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_portfolio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
