file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_coverage_growth.dir/bench_e1_coverage_growth.cpp.o"
  "CMakeFiles/bench_e1_coverage_growth.dir/bench_e1_coverage_growth.cpp.o.d"
  "bench_e1_coverage_growth"
  "bench_e1_coverage_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_coverage_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
