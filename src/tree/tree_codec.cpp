#include "tree/tree_codec.h"

namespace softborg {

namespace {
constexpr std::uint64_t kTreeMagic = 0x53425452'45ULL;  // "SBTRE"
constexpr std::uint64_t kTreeVersion = 1;
constexpr std::uint64_t kMaxNodes = 1u << 26;
constexpr std::uint64_t kMaxPerNode = 1u << 20;
}  // namespace

Bytes ExecTree::encode() const {
  Bytes out;
  put_varint(out, kTreeMagic);
  put_varint(out, kTreeVersion);
  put_varint(out, program_.value);
  put_varint(out, num_leaves_);
  put_varint(out, nodes_.size());
  for (const auto& n : nodes_) {
    put_varint(out, n.visits);
    put_varint(out, n.edges.size());
    for (const auto& e : n.edges) {
      put_varint(out, e.site);
      put_varint(out, e.dir ? 1 : 0);
      put_varint(out, e.child);
    }
    put_varint(out, n.infeasible.size());
    for (const auto& [site, dir] : n.infeasible) {
      put_varint(out, site);
      put_varint(out, dir ? 1 : 0);
    }
    put_varint(out, n.outcomes.size());
    for (const auto& [outcome, count] : n.outcomes) {
      put_varint(out, static_cast<std::uint64_t>(outcome));
      put_varint(out, count);
    }
    put_varint(out, n.crash.has_value() ? 1 : 0);
    if (n.crash) {
      put_varint(out, static_cast<std::uint64_t>(n.crash->kind));
      put_varint(out, n.crash->pc);
      put_varint_signed(out, n.crash->detail);
    }
  }
  return out;
}

std::optional<ExecTree> ExecTree::decode(const Bytes& bytes) {
  std::size_t pos = 0;
  auto u = [&]() { return get_varint(bytes, pos); };

  auto magic = u(), version = u(), program = u(), leaves = u(), count = u();
  if (!magic || *magic != kTreeMagic) return std::nullopt;
  if (!version || *version != kTreeVersion) return std::nullopt;
  if (!program || !leaves || !count || *count == 0 || *count > kMaxNodes) {
    return std::nullopt;
  }

  ExecTree tree{ProgramId{*program}};
  tree.nodes_.clear();
  tree.nodes_.reserve(*count);
  tree.num_leaves_ = *leaves;

  for (std::uint64_t i = 0; i < *count; ++i) {
    Node n;
    auto visits = u();
    if (!visits) return std::nullopt;
    n.visits = *visits;

    auto n_edges = u();
    if (!n_edges || *n_edges > kMaxPerNode) return std::nullopt;
    for (std::uint64_t k = 0; k < *n_edges; ++k) {
      auto site = u(), dir = u(), child = u();
      if (!site || !dir || !child || *dir > 1 || *child == 0 ||
          *child >= *count) {
        return std::nullopt;  // child 0 (the root) is never a target
      }
      n.edges.push_back({static_cast<std::uint32_t>(*site), *dir == 1,
                         static_cast<std::uint32_t>(*child)});
    }

    auto n_infeasible = u();
    if (!n_infeasible || *n_infeasible > kMaxPerNode) return std::nullopt;
    for (std::uint64_t k = 0; k < *n_infeasible; ++k) {
      auto site = u(), dir = u();
      if (!site || !dir || *dir > 1) return std::nullopt;
      n.infeasible.push_back({static_cast<std::uint32_t>(*site), *dir == 1});
    }

    auto n_outcomes = u();
    if (!n_outcomes || *n_outcomes > kMaxPerNode) return std::nullopt;
    for (std::uint64_t k = 0; k < *n_outcomes; ++k) {
      auto outcome = u(), occurrences = u();
      if (!outcome || !occurrences ||
          *outcome > static_cast<std::uint64_t>(Outcome::kUserKilled)) {
        return std::nullopt;
      }
      n.outcomes.push_back({static_cast<Outcome>(*outcome), *occurrences});
    }

    auto has_crash = u();
    if (!has_crash || *has_crash > 1) return std::nullopt;
    if (*has_crash == 1) {
      auto kind = u(), pc = u();
      auto detail = get_varint_signed(bytes, pos);
      if (!kind || !pc || !detail ||
          *kind > static_cast<std::uint64_t>(CrashKind::kExplicitAbort)) {
        return std::nullopt;
      }
      n.crash = CrashInfo{static_cast<CrashKind>(*kind),
                          static_cast<std::uint32_t>(*pc), *detail};
    }
    tree.nodes_.push_back(std::move(n));
  }

  if (pos != bytes.size()) return std::nullopt;
  return tree;
}

bool ExecTree::operator==(const ExecTree& other) const {
  return program_ == other.program_ && num_leaves_ == other.num_leaves_ &&
         nodes_ == other.nodes_;
}

Bytes encode_tree(const ExecTree& tree) { return tree.encode(); }

std::optional<ExecTree> decode_tree(const Bytes& bytes) {
  return ExecTree::decode(bytes);
}

}  // namespace softborg
