#include "dist/router.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "trace/codec.h"

namespace softborg::dist {

namespace {

double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceRouter::TraceRouter(std::size_t num_shards, RouterConfig config)
    : config_(config), ring_(num_shards, config.vnodes_per_shard) {
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(ShardLink{nullptr, BoundedTraceQueue(config_.queue_capacity)});
  }
  reports_.resize(num_shards);
}

void TraceRouter::connect_shard(std::size_t index, std::unique_ptr<Channel> ch) {
  SB_CHECK(index < shards_.size());
  shards_[index].ch = std::move(ch);
}

void TraceRouter::add_pod(std::unique_ptr<Channel> ch) {
  pods_.push_back(std::move(ch));
}

void TraceRouter::add_unidentified(std::unique_ptr<Channel> ch) {
  unidentified_.push_back(std::move(ch));
}

void TraceRouter::add_shard() {
  ring_.add_shard();
  shards_.push_back(ShardLink{nullptr, BoundedTraceQueue(config_.queue_capacity)});
  reports_.resize(shards_.size());
}

void TraceRouter::route_wire(Bytes wire) {
  stats_.received++;
  const auto summary = summarize_trace_wire(wire);
  if (!summary) {
    stats_.routing_failures++;
    return;
  }
  ShardLink& link = shards_[ring_.owner(summary->program.value)];
  if (link.ch && !link.ch->alive()) {
    // The owning worker is dead: degrade by shedding, never queue into a
    // black hole. (A null ch is different — the worker just hasn't connected
    // yet, so the queue buffers the head of traffic for it.)
    stats_.shed++;
    return;
  }
  const std::uint64_t shed_before = link.queue.shed_total();
  link.queue.push(trace_priority(*summary), std::move(wire));
  stats_.shed += link.queue.shed_total() - shed_before;
}

void TraceRouter::handle_shard_delivery(std::size_t index, Delivery d) {
  ShardLink& link = shards_[index];
  if (d.credit > 0) {
    link.credit += d.credit;
    stats_.credits_granted += d.credit;
  }
  switch (d.type) {
    case kMsgCredit:
      break;  // grant already applied above
    case kMsgHello: {
      const auto hello = decode_hello(d.payload);
      if (!hello) break;
      // Fresh connection state: anything in flight on the old link is gone,
      // the worker's window is whole again.
      link.window = hello->credit_window;
      link.credit = hello->credit_window;
      break;
    }
    case kMsgStats:
      reports_[index].stats_wire = std::move(d.payload);
      break;
    case kMsgTreeData:
      reports_[index].trees_wire = std::move(d.payload);
      break;
    case kMsgShutdown:
      if (!reports_[index].closed) {
        reports_[index].closed = true;
        closed_reports_++;
      }
      break;
    case kMsgSnapshot:
      snapshot_acks_++;
      break;
    default:
      stats_.unroutable++;
      break;
  }
}

void TraceRouter::poll_shard(std::size_t index) {
  ShardLink& link = shards_[index];
  if (!link.ch) return;
  for (auto& d : link.ch->poll()) {
    handle_shard_delivery(index, std::move(d));
  }
}

void TraceRouter::forward(std::size_t index) {
  ShardLink& link = shards_[index];
  const bool alive = link.alive();
  if (!alive && link.ch && !link.queue.empty()) {
    // Dead worker: everything queued for it is shed in one stroke so the
    // router's memory never grows toward a shard that cannot drain.
    stats_.shed += link.queue.depth();
    link.queue.shed_all();
  }
  while (alive && link.credit > 0 && !link.queue.empty()) {
    auto item = link.queue.pop();
    link.ch->send(kMsgTrace, std::move(item->wire));
    link.credit--;
    link.forwarded++;
    stats_.forwarded++;
  }
  // Backpressure: work queued, worker announced a window, window exhausted.
  // (window == 0 means the worker hasn't helloed yet — startup, not stall.)
  const bool stalled_now =
      alive && link.window > 0 && link.credit == 0 && !link.queue.empty();
  if (stalled_now && !link.stalled) {
    link.stalled = true;
    link.stall_started = mono_seconds();
    stats_.backpressure_stalls++;
  } else if (!stalled_now && link.stalled) {
    link.stalled = false;
    stats_.stall_seconds += mono_seconds() - link.stall_started;
  }
}

void TraceRouter::pump() {
  // 1. Anonymous peers: the first message tells us what they are.
  for (std::size_t i = 0; i < unidentified_.size();) {
    Channel* ch = unidentified_[i].get();
    auto deliveries = ch->poll();
    if (deliveries.empty()) {
      if (!ch->alive()) {
        unidentified_.erase(unidentified_.begin() +
                            static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
      continue;
    }
    auto moved = std::move(unidentified_[i]);
    unidentified_.erase(unidentified_.begin() + static_cast<std::ptrdiff_t>(i));
    if (deliveries.front().type == kMsgHello) {
      const auto hello = decode_hello(deliveries.front().payload);
      if (hello && hello->shard_index < shards_.size()) {
        const std::size_t index = hello->shard_index;
        shards_[index].ch = std::move(moved);  // new or restarted worker
        for (auto& d : deliveries) {
          handle_shard_delivery(index, std::move(d));
        }
      } else {
        stats_.unroutable++;  // bogus hello: drop the peer
      }
    } else {
      for (auto& d : deliveries) {
        if (d.type == kMsgTrace) {
          route_wire(std::move(d.payload));
        } else {
          stats_.unroutable++;
        }
      }
      pods_.push_back(std::move(moved));
    }
  }

  // 2. Shard workers first, so freshly granted credit is spendable in this
  // same round.
  for (std::size_t i = 0; i < shards_.size(); ++i) poll_shard(i);

  // 3. Pod ingress.
  for (std::size_t i = 0; i < pods_.size();) {
    Channel* ch = pods_[i].get();
    for (auto& d : ch->poll()) {
      if (d.type == kMsgTrace) {
        route_wire(std::move(d.payload));
      } else if (d.type != kMsgCredit) {
        stats_.unroutable++;
      }
    }
    if (!ch->alive()) {
      pods_.erase(pods_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  // 4. Forward within credit; account stalls and dead-shard sheds.
  std::size_t depth = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    forward(i);
    depth += shards_[i].queue.depth();
    if (shards_[i].ch) shards_[i].ch->flush();
  }
  stats_.queue_depth_peak = std::max(stats_.queue_depth_peak, depth);

  publish_metrics();
}

void TraceRouter::broadcast_shutdown() {
  for (auto& link : shards_) {
    if (link.alive()) link.ch->send(kMsgShutdown, Bytes{});
  }
}

bool TraceRouter::all_reports_in() const {
  return closed_reports_ == shards_.size();
}

void TraceRouter::request_snapshots() {
  for (auto& link : shards_) {
    if (link.alive()) link.ch->send(kMsgSnapshot, Bytes{});
  }
}

bool TraceRouter::shard_alive(std::size_t index) const {
  return index < shards_.size() && shards_[index].alive();
}

std::size_t TraceRouter::shard_credit(std::size_t index) const {
  return index < shards_.size() ? shards_[index].credit : 0;
}

std::uint64_t TraceRouter::shard_forwarded(std::size_t index) const {
  return index < shards_.size() ? shards_[index].forwarded : 0;
}

std::size_t TraceRouter::total_queue_depth() const {
  std::size_t depth = 0;
  for (const auto& link : shards_) depth += link.queue.depth();
  return depth;
}

bool TraceRouter::quiescent() const {
  if (!unidentified_.empty()) return false;
  for (const auto& link : shards_) {
    if (!link.queue.empty()) return false;
    // Credit equal to the announced window means every forwarded trace has
    // been consumed and acknowledged.
    if (link.alive() && link.window > 0 && link.credit != link.window) {
      return false;
    }
  }
  return true;
}

void TraceRouter::publish_metrics() {
  if (!obs::enabled()) return;
  auto& reg = obs::MetricsRegistry::global();
  // Cached handles, looked up once: pump() runs every loop iteration.
  static constexpr const char* kNames[] = {
      "dist.received_total",     "dist.forwarded_total",
      "dist.shed_total",         "dist.backpressure_stalls_total",
      "dist.routing_failures_total", "dist.unroutable_total",
      "dist.credits_granted_total",  "dist.stall_us_total",
  };
  struct Handles {
    obs::Counter* c[8];
    obs::Gauge* depth;
    obs::Gauge* depth_peak;
  };
  static Handles h = [&] {
    Handles out{};
    for (std::size_t i = 0; i < 8; ++i) out.c[i] = &reg.counter(kNames[i]);
    out.depth = &reg.gauge("dist.queue_depth");
    out.depth_peak = &reg.gauge("dist.queue_depth_peak");
    return out;
  }();
  const RouterStats& s = stats_;
  RouterStats& p = obs_published_;
  const std::uint64_t now[8] = {
      s.received,
      s.forwarded,
      s.shed,
      s.backpressure_stalls,
      s.routing_failures,
      s.unroutable,
      s.credits_granted,
      static_cast<std::uint64_t>(s.stall_seconds * 1e6),
  };
  const std::uint64_t before[8] = {
      p.received,
      p.forwarded,
      p.shed,
      p.backpressure_stalls,
      p.routing_failures,
      p.unroutable,
      p.credits_granted,
      static_cast<std::uint64_t>(p.stall_seconds * 1e6),
  };
  for (std::size_t i = 0; i < 8; ++i) {
    if (now[i] > before[i]) h.c[i]->add(now[i] - before[i]);
  }
  p = s;
  h.depth->set(static_cast<std::int64_t>(total_queue_depth()));
  h.depth_peak->set(static_cast<std::int64_t>(s.queue_depth_peak));
  // Per-shard ingest rates: one forwarded counter per shard index.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardLink& link = shards_[i];
    if (link.forwarded == link.obs_published_forwarded) continue;
    reg.counter("dist.shard" + std::to_string(i) + ".forwarded_total")
        .add(link.forwarded - link.obs_published_forwarded);
    link.obs_published_forwarded = link.forwarded;
  }
}

}  // namespace softborg::dist
