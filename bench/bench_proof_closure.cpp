// BM_ProofClosure — solver-result recycling and parallel proof gap closure
// on the 64x64 fleet workload (paper §3.3: cumulative proofs; §2: the hive
// recycles the fleet's redundant work instead of re-deriving it).
//
// Each iteration stands up a fresh hive, batch-ingests a day of fleet
// traffic (64 endpoints x 64 runs — the same workload as BM_ShardedPump),
// and then attempts a cumulative proof for every corpus program
// (Hive::attempt_proofs_all). Only the proof sweep is timed; ingestion is
// setup. Legs, encoded as Args({cache_mode, proof_threads}):
//
//   cache_mode 0 — no cache: every feasibility query runs the solver.
//   cache_mode 1 — cold cache: recycling within and across the sweep's
//                  attempts, starting empty.
//   cache_mode 2 — warm cache: the hive is seeded (merge_from) with the
//                  cache a previous identical sweep accumulated — the
//                  steady state of a long-lived hive re-proving its fleet.
//                  The warm/cold wall-clock ratio is the recycling payoff.
//   proof_threads — Hive::attempt_proofs_for fan-out (0 = inline).
//
// Counters report solver_calls, the recycled fraction, and proofs issued;
// methodology and measured numbers live in EXPERIMENTS.md ("BM_ProofClosure").
#include <benchmark/benchmark.h>

#include "bench_json_gbench.h"
#include "core/softborg.h"

namespace softborg {
namespace {

constexpr Property kProperty = Property::kNeverCrashes;

// A solver-heavy corpus member: `kStages` nonlinear guards over a wide 2-D
// input box. Each guard's boundary (x-a)(y-c)(x-a2) < bound is a cubic
// surface, so the interval solver has to split the box down to the boundary
// to decide a frontier — feasibility queries cost thousands of
// branch-and-prune nodes, the regime where re-deriving answers dwarfs
// recycling them. Constants vary per variant so distinct programs share no
// queries.
CorpusEntry make_constraint_gauntlet(unsigned variant) {
  ProgramBuilder b("gauntlet_" + std::to_string(variant), 9000 + variant);
  const Reg x = b.reg(), y = b.reg(), t = b.reg(), u = b.reg();
  const Reg acc = b.reg(), bit = b.reg();
  const std::uint32_t in_x = b.input_slot(), in_y = b.input_slot();
  b.input(x, in_x);
  b.input(y, in_y);
  b.const_(acc, 0);
  constexpr unsigned kStages = 5;
  for (unsigned j = 0; j < kStages; ++j) {
    auto L_on = b.label(), L_off = b.label();
    const Value a = 150 + 311 * j + 97 * static_cast<Value>(variant);
    const Value c = 1800 - 259 * j + 53 * static_cast<Value>(variant);
    const Value a2 = 4100 - 503 * j + 131 * static_cast<Value>(variant);
    const Value bound = 900'000 + 170'000 * j;
    b.add_const(t, x, -a);
    b.add_const(u, y, -c);
    b.mul(t, t, u);
    b.add_const(u, x, -a2);
    b.mul(t, t, u);
    b.cmp_lt_const(u, t, bound);
    b.branch_if(u, L_on, L_off);
    b.bind(L_on);
    b.const_(bit, static_cast<Value>(1) << j);
    b.add(acc, acc, bit);
    b.jump(L_off);
    b.bind(L_off);
  }
  b.output(acc);
  b.halt();

  CorpusEntry e;
  e.program = b.build();
  e.description = "nonlinear guard gauntlet (solver-heavy proofs)";
  e.domains = {{0, 6000}, {0, 6000}};
  return e;
}

// The proof fleet: the standard corpus plus eight gauntlets, so the sweep
// mixes cheap symbolic programs with ones whose gap closure is dominated by
// solver time.
const std::vector<CorpusEntry>& bench_corpus() {
  static const std::vector<CorpusEntry> corpus = [] {
    std::vector<CorpusEntry> out = standard_corpus();
    for (unsigned v = 0; v < 8; ++v) out.push_back(make_constraint_gauntlet(v));
    return out;
  }();
  return corpus;
}

// A day of fleet traffic: 64 endpoints x 64 runs (see bench_sharded_pump.cpp
// for the redundancy rationale). Unique trace ids keep dedup out of the way.
const std::vector<Bytes>& fleet_workload() {
  static const std::vector<Bytes> wires = [] {
    const auto& corpus = bench_corpus();
    Rng rng(29);
    std::vector<Bytes> out;
    out.reserve(64 * 64);
    for (std::size_t endpoint = 0; endpoint < 64; ++endpoint) {
      const CorpusEntry& entry = corpus[rng.next_below(corpus.size())];
      ExecConfig cfg;
      for (const auto& d : entry.domains) {
        cfg.inputs.push_back(rng.next_in(d.lo, d.hi));
      }
      for (std::size_t run = 0; run < 64; ++run) {
        cfg.seed = endpoint * 64 + run + 1;
        auto result = execute(entry.program, cfg);
        result.trace.id = TraceId(endpoint * 64 + run + 1);
        out.push_back(encode_trace(result.trace));
      }
    }
    return out;
  }();
  return wires;
}

HiveConfig closure_config(int cache_mode, int threads) {
  HiveConfig config;
  config.solver_cache = cache_mode != 0;
  config.proof_threads = static_cast<std::size_t>(threads);
  return config;
}

// The donor for the warm legs: the solver cache left behind by one complete
// cold-cache sweep over identically-ingested trees.
const SolverCache& donor_cache() {
  static const SolverCache cache = [] {
    Hive hive(&bench_corpus(), closure_config(1, 0));
    hive.ingest_batch(fleet_workload());
    hive.attempt_proofs_all(kProperty);
    return hive.solver_cache();
  }();
  return cache;
}

void BM_ProofClosure(benchmark::State& state) {
  const std::vector<CorpusEntry>& corpus = bench_corpus();
  const int cache_mode = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  if (cache_mode == 2) donor_cache();  // build outside the timed region

  std::size_t proofs = 0;
  std::uint64_t solver_calls = 0;
  std::uint64_t recycled = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Hive hive(&corpus, closure_config(cache_mode, threads));
    hive.ingest_batch(fleet_workload());
    if (cache_mode == 2) hive.solver_cache().merge_from(donor_cache());
    state.ResumeTiming();

    const auto certs = hive.attempt_proofs_all(kProperty);

    state.PauseTiming();
    benchmark::DoNotOptimize(certs.size());
    proofs = hive.valid_proof_count();
    solver_calls = hive.proof_stats().solver_calls;
    recycled = hive.proof_stats().recycled();
    state.ResumeTiming();
  }
  state.counters["proofs"] = static_cast<double>(proofs);
  state.counters["solver_calls"] = static_cast<double>(solver_calls);
  state.counters["recycled"] = static_cast<double>(recycled);
  state.counters["recycle_rate"] =
      solver_calls == 0
          ? 0.0
          : static_cast<double>(recycled) / static_cast<double>(solver_calls);
}
BENCHMARK(BM_ProofClosure)
    ->Args({0, 0})  // no cache, serial — the pre-recycling baseline
    ->Args({1, 0})  // cold cache, serial
    ->Args({2, 0})  // warm cache, serial — steady-state recycling
    ->Args({2, 2})  // warm cache, 2 workers
    ->Args({2, 8})  // warm cache, 8 workers
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace softborg

int main(int argc, char** argv) {
  softborg::BenchJsonWriter json("proof_closure", argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  softborg::JsonTeeReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return json.write() ? 0 : 1;
}
