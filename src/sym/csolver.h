// Constraint solver for path constraints over bounded variables.
//
// Branch-and-prune: interval arithmetic over the current variable box tests
// each literal (definitely-true / definitely-false / undecided); undecided
// boxes are split on the widest variable until a decision or the node
// budget runs out. Interval operations are overflow-aware: any operation
// that could wrap returns the full int64 interval, so pruning is always
// sound with respect to MiniVM's wrapping semantics.
//
// Complete for the bounded domains SoftBorg uses (program input domains and
// syscall result ranges); returns kUnknown only on budget exhaustion.
#pragma once

#include <cstdint>
#include <vector>

#include "sym/expr.h"

namespace softborg {

struct VarDomain {
  Value lo = 0;
  Value hi = 0;
};

struct Assignment {
  std::vector<Value> inputs;
  std::vector<Value> unknowns;
};

enum class SolveStatus : std::uint8_t { kSat, kUnsat, kUnknown };

const char* solve_status_name(SolveStatus s);

struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  Assignment model;  // valid iff status == kSat
  std::uint64_t nodes = 0;
};

struct SolverOptions {
  std::uint64_t max_nodes = 200'000;
};

// Decides satisfiability of `pc` with input i ranging over
// input_domains[i] and syscall-unknown j over unknown_domains[j].
// Variables referenced by the constraint but absent from the domain vectors
// default to [0, 0].
SolveResult solve_path(const PathConstraint& pc,
                       const std::vector<VarDomain>& input_domains,
                       const std::vector<VarDomain>& unknown_domains = {},
                       const SolverOptions& options = {});

// True iff `assignment` satisfies every literal (exact, wrap-aware).
bool satisfies(const PathConstraint& pc, const Assignment& assignment);

}  // namespace softborg
