// Disassembly / dispatch-stream inspector for the benchmark corpus.
//
//   vm_disasm                        list corpus programs
//   vm_disasm <name>                 plain disassembly
//   vm_disasm --decoded <name>       decoded stream with superinstructions
//   vm_disasm --pair-counts [name]   dynamic opcode-pair frequencies (the
//                                    data behind the fusion table), measured
//                                    over seeded random-input runs; without
//                                    a name, aggregated over the corpus
#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "minivm/corpus.h"
#include "minivm/decode.h"
#include "minivm/disasm.h"
#include "minivm/interp.h"

using namespace softborg;

namespace {

// Tally fallthrough opcode pairs for one corpus entry over a spread of
// seeded inputs and schedules, so loop bodies dominate the way they do in
// fleet runs.
void tally_pairs(const CorpusEntry& entry, OpPairCounts* counts) {
  Rng rng(7);
  for (int run = 0; run < 32; ++run) {
    ExecConfig cfg;
    cfg.seed = rng();
    for (const auto& domain : entry.domains) {
      cfg.inputs.push_back(rng.next_in(domain.lo, domain.hi));
    }
    cfg.pair_counts = counts;
    execute(entry.program, cfg);
  }
}

const CorpusEntry* find_entry(const std::vector<CorpusEntry>& corpus,
                              const std::string& name) {
  for (const auto& entry : corpus) {
    if (entry.program.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bool decoded = false;
  bool pair_counts = false;
  std::string name;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--decoded") == 0) {
      decoded = true;
    } else if (std::strcmp(argv[i], "--pair-counts") == 0) {
      pair_counts = true;
    } else {
      name = argv[i];
    }
  }

  const std::vector<CorpusEntry> corpus = standard_corpus();

  if (pair_counts) {
    OpPairCounts counts;
    if (name.empty()) {
      for (const auto& entry : corpus) tally_pairs(entry, &counts);
      std::printf("corpus-wide ");
    } else {
      const CorpusEntry* entry = find_entry(corpus, name);
      if (entry == nullptr) {
        std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
        return 1;
      }
      tally_pairs(*entry, &counts);
      std::printf("%s ", name.c_str());
    }
    std::printf("%s", format_pair_counts(counts).c_str());
    return 0;
  }

  if (name.empty()) {
    std::printf("corpus programs:\n");
    for (const auto& entry : corpus) {
      std::printf("  %-18s %s\n", entry.program.name.c_str(),
                  entry.description.c_str());
    }
    return 0;
  }

  const CorpusEntry* entry = find_entry(corpus, name);
  if (entry == nullptr) {
    std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
    return 1;
  }
  if (decoded) {
    const DecodedProgram d = predecode(entry->program, nullptr);
    std::printf("%s", disassemble_decoded(entry->program, d).c_str());
  } else {
    std::printf("%s", disassemble(entry->program).c_str());
  }
  return 0;
}
