// Strongly typed identifiers (I.4: make interfaces precisely typed).
//
// A PodId is not a NodeId is not a ProgramId: mixing them up is a compile
// error rather than a silent cross-wiring of the fleet.
#pragma once

#include <cstdint>
#include <functional>

namespace softborg {

template <typename Tag>
struct Id {
  std::uint64_t value = 0;

  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value(v) {}

  constexpr bool operator==(const Id&) const = default;
  constexpr auto operator<=>(const Id&) const = default;
};

struct PodTag {};
struct ProgramTag {};
struct NodeTag {};  // hive worker node
struct FixTag {};
struct ProofTag {};
struct BugTag {};
struct TraceTag {};

using PodId = Id<PodTag>;
using ProgramId = Id<ProgramTag>;
using NodeId = Id<NodeTag>;
using FixId = Id<FixTag>;
using ProofId = Id<ProofTag>;
using BugId = Id<BugTag>;
using TraceId = Id<TraceTag>;

}  // namespace softborg

namespace std {
template <typename Tag>
struct hash<softborg::Id<Tag>> {
  size_t operator()(const softborg::Id<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
}  // namespace std
