# Empty compiler generated dependencies file for bench_e2_portfolio.
# This may be replaced when dependencies are built.
