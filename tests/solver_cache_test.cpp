// SolverCache: canonicalization, the two subsumption fast paths, eviction
// policy, merge, and a randomized differential against the raw solver.
//
// The cache's contract (sym/solver_cache.h): solve() returns a result that
// is never less correct than solve_path — a decided answer must match what
// a fresh solve would decide, every SAT witness must actually satisfy the
// query within its domains, and the only permitted divergence is returning
// a decision where a fresh solve would have exhausted its budget.
#include <gtest/gtest.h>

#include <functional>
#include <iterator>

#include "core/softborg.h"
#include "sym/solver_cache.h"

namespace softborg {
namespace {

Expr in(std::uint32_t slot) { return make_input(slot); }
Expr cv(Value v) { return make_const(v); }

// cond: `a < b` as a literal expected true/false.
Literal lt(Expr a, Expr b, bool expected = true) {
  return {make_bin(BinOp::kLt, std::move(a), std::move(b)), expected};
}
Literal eq(Expr a, Expr b, bool expected = true) {
  return {make_bin(BinOp::kEq, std::move(a), std::move(b)), expected};
}

TEST(SolverCache, ExactHitAfterInsert) {
  SolverCache cache;
  const PathConstraint pc = {lt(in(0), cv(5))};
  const std::vector<VarDomain> doms = {{0, 10}};

  CacheLookup outcome = CacheLookup::kExactHit;
  const SolveResult first = cache.solve(pc, doms, {}, {}, &outcome);
  EXPECT_EQ(outcome, CacheLookup::kMiss);
  EXPECT_EQ(first.status, SolveStatus::kSat);

  const SolveResult again = cache.solve(pc, doms, {}, {}, &outcome);
  EXPECT_EQ(outcome, CacheLookup::kExactHit);
  EXPECT_EQ(again.status, SolveStatus::kSat);
  EXPECT_TRUE(satisfies(pc, again.model));
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().exact_hits, 1u);
}

TEST(SolverCache, CanonicalRenamingHits) {
  // The same constraint shape over a different input slot, with the same
  // domain riding along, canonicalizes to the same key.
  SolverCache cache;
  const std::vector<VarDomain> doms0 = {{0, 10}};
  const std::vector<VarDomain> doms7 = {{0, 0}, {0, 0}, {0, 0},
                                        {0, 0}, {0, 0}, {0, 0},
                                        {0, 0}, {0, 10}};
  cache.solve({lt(in(0), cv(5))}, doms0);

  CacheLookup outcome = CacheLookup::kMiss;
  const SolveResult r = cache.solve({lt(in(7), cv(5))}, doms7, {}, {},
                                    &outcome);
  EXPECT_EQ(outcome, CacheLookup::kExactHit);
  ASSERT_EQ(r.status, SolveStatus::kSat);
  // The witness must be rebuilt into slot 7's raw space, not slot 0's.
  EXPECT_TRUE(satisfies({lt(in(7), cv(5))}, r.model));
}

TEST(SolverCache, RenamingRespectsDomains) {
  // Same shape, different domain for the renamed variable: must MISS (the
  // domains are part of the canonical key, or SAT/UNSAT could flip).
  SolverCache cache;
  cache.solve({lt(in(0), cv(5))}, {{0, 10}});
  CacheLookup outcome = CacheLookup::kExactHit;
  const SolveResult r = cache.solve({lt(in(0), cv(5))}, {{6, 10}}, {}, {},
                                    &outcome);
  EXPECT_EQ(outcome, CacheLookup::kMiss);
  EXPECT_EQ(r.status, SolveStatus::kUnsat);
}

TEST(SolverCache, ClauseOrderAndDuplicatesIrrelevant) {
  SolverCache cache;
  const std::vector<VarDomain> doms = {{0, 10}, {0, 10}};
  const Literal a = lt(in(0), cv(5));
  const Literal b = lt(cv(2), in(1));
  cache.solve({a, b}, doms);

  CacheLookup outcome = CacheLookup::kMiss;
  cache.solve({b, a}, doms, {}, {}, &outcome);
  EXPECT_EQ(outcome, CacheLookup::kExactHit);
  cache.solve({a, b, a}, doms, {}, {}, &outcome);  // A && A == A
  EXPECT_EQ(outcome, CacheLookup::kExactHit);
}

TEST(SolverCache, UnsatSubsetSubsumesSuperset) {
  SolverCache cache;
  const std::vector<VarDomain> doms = {{0, 10}, {0, 10}};
  // Core: x < 0 over x in [0,10] — UNSAT.
  const Literal core = lt(in(0), cv(0));
  const SolveResult seed = cache.solve({core}, doms);
  ASSERT_EQ(seed.status, SolveStatus::kUnsat);

  // Any superset conjunction is UNSAT for free.
  CacheLookup outcome = CacheLookup::kMiss;
  const SolveResult r =
      cache.solve({lt(cv(3), in(1)), core}, doms, {}, {}, &outcome);
  EXPECT_EQ(outcome, CacheLookup::kUnsatSubsumed);
  EXPECT_EQ(r.status, SolveStatus::kUnsat);
  EXPECT_EQ(cache.stats().unsat_subsumed, 1u);
}

TEST(SolverCache, UnsatSubsumptionRequiresDomainContainment) {
  SolverCache cache;
  // UNSAT over x in [0,10]...
  const Literal core = lt(in(0), cv(0));
  ASSERT_EQ(cache.solve({core}, {{0, 10}}).status, SolveStatus::kUnsat);

  // ...but SAT over x in [-5,10]: the wider query box is not contained in
  // the core's box, so subsumption must decline — and the fresh solve
  // indeed finds a witness. This is exactly the unsoundness the domain
  // guard prevents.
  CacheLookup outcome = CacheLookup::kUnsatSubsumed;
  const SolveResult r = cache.solve({core, lt(cv(3), in(1))},
                                    {{-5, 10}, {0, 10}}, {}, {}, &outcome);
  EXPECT_EQ(outcome, CacheLookup::kMiss);
  EXPECT_EQ(r.status, SolveStatus::kSat);
  EXPECT_TRUE(satisfies({core}, r.model));
}

TEST(SolverCache, ModelReuseAnswersNewQuery) {
  SolverCache cache;
  const std::vector<VarDomain> doms = {{0, 10}};
  // Seed a SAT model for x >= 5.
  const Literal ge5 = lt(in(0), cv(5), /*expected=*/false);
  const SolveResult seed = cache.solve({ge5}, doms);
  ASSERT_EQ(seed.status, SolveStatus::kSat);

  // A narrower query the cached witness happens to satisfy: answered
  // without solving, and the witness is re-verified against the new query.
  CacheLookup outcome = CacheLookup::kMiss;
  const SolveResult r =
      cache.solve({ge5, lt(in(0), cv(9))}, doms, {}, {}, &outcome);
  EXPECT_EQ(outcome, CacheLookup::kModelReused);
  ASSERT_EQ(r.status, SolveStatus::kSat);
  EXPECT_TRUE(satisfies({ge5, lt(in(0), cv(9))}, r.model));
  EXPECT_EQ(cache.stats().models_reused, 1u);
}

TEST(SolverCache, UnknownIsNeverCached) {
  SolverCache cache;
  SolverOptions tiny;
  tiny.max_nodes = 1;  // force budget exhaustion
  const PathConstraint pc = {eq(make_bin(BinOp::kMul, in(0), in(1)), cv(7))};
  const std::vector<VarDomain> doms = {{0, 10}, {0, 10}};

  CacheLookup outcome = CacheLookup::kExactHit;
  const SolveResult r = cache.solve(pc, doms, {}, tiny, &outcome);
  ASSERT_EQ(r.status, SolveStatus::kUnknown);
  EXPECT_EQ(cache.stats().insertions, 0u);

  // Second identical query: still a miss — budget artifacts are not facts.
  cache.solve(pc, doms, {}, tiny, &outcome);
  EXPECT_EQ(outcome, CacheLookup::kMiss);
  EXPECT_EQ(cache.stats().hits(), 0u);

  // With a real budget the same query is decided and then cached.
  const SolveResult full = cache.solve(pc, doms, {}, {}, &outcome);
  EXPECT_EQ(full.status, SolveStatus::kSat);
  cache.solve(pc, doms, {}, {}, &outcome);
  EXPECT_EQ(outcome, CacheLookup::kExactHit);
}

TEST(SolverCache, MergeFromTransfersKnowledge) {
  SolverCache a, b;
  const std::vector<VarDomain> doms = {{0, 10}};
  const PathConstraint sat_pc = {lt(in(0), cv(5))};
  const PathConstraint unsat_pc = {lt(in(0), cv(0))};
  a.solve(sat_pc, doms);
  a.solve(unsat_pc, doms);

  b.merge_from(a);
  CacheLookup outcome = CacheLookup::kMiss;
  EXPECT_EQ(b.solve(sat_pc, doms, {}, {}, &outcome).status,
            SolveStatus::kSat);
  EXPECT_EQ(outcome, CacheLookup::kExactHit);
  EXPECT_EQ(b.solve(unsat_pc, doms, {}, {}, &outcome).status,
            SolveStatus::kUnsat);
  EXPECT_EQ(outcome, CacheLookup::kExactHit);

  // Merging is idempotent.
  const std::size_t size = b.size();
  b.merge_from(a);
  EXPECT_EQ(b.size(), size);
}

TEST(SolverCache, GenerationalEvictionStaysCorrect) {
  SolverCacheConfig config;
  config.max_entries = 8;  // evict constantly
  config.max_unsat_cores = 2;
  config.max_models = 2;
  SolverCache cache(config);
  Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    const Value k = static_cast<Value>(rng.next_in(-5, 15));
    const PathConstraint pc = {lt(in(0), cv(k))};
    const std::vector<VarDomain> doms = {{0, 10}};
    const SolveResult r = cache.solve(pc, doms);
    EXPECT_EQ(r.status, k > 0 ? SolveStatus::kSat : SolveStatus::kUnsat);
    if (r.status == SolveStatus::kSat) {
      EXPECT_TRUE(satisfies(pc, r.model));
    }
  }
  EXPECT_GT(cache.stats().resets, 0u);
}

// The core soundness property, fuzzed: whatever the cache's internal state,
// a decided answer agrees with a fresh solve and every witness verifies.
TEST(SolverCache, RandomizedDifferentialAgainstSolvePath) {
  SolverCache cache;
  Rng rng(0x5eed);
  const BinOp ops[] = {BinOp::kAdd, BinOp::kSub, BinOp::kMul, BinOp::kLt,
                       BinOp::kLe,  BinOp::kEq,  BinOp::kNe};

  std::function<Expr(int)> random_expr = [&](int depth) -> Expr {
    if (depth == 0 || rng.next_bool(0.3)) {
      return rng.next_bool(0.5)
                 ? in(static_cast<std::uint32_t>(rng.next_below(3)))
                 : cv(static_cast<Value>(rng.next_in(-3, 3)));
    }
    const BinOp op = ops[rng.next_below(std::size(ops))];
    return make_bin(op, random_expr(depth - 1), random_expr(depth - 1));
  };

  for (int round = 0; round < 400; ++round) {
    PathConstraint pc;
    const std::size_t lits = 1 + rng.next_below(3);
    for (std::size_t i = 0; i < lits; ++i) {
      pc.push_back({random_expr(2), rng.next_bool(0.5)});
    }
    std::vector<VarDomain> doms(3);
    for (auto& d : doms) {
      d.lo = static_cast<Value>(rng.next_in(-2, 2));
      d.hi = d.lo + static_cast<Value>(rng.next_below(4));
    }

    const SolveResult fresh = solve_path(pc, doms);
    const SolveResult cached = cache.solve(pc, doms);
    if (fresh.status != SolveStatus::kUnknown) {
      EXPECT_EQ(cached.status, fresh.status) << "round " << round;
    }
    if (cached.status == SolveStatus::kSat) {
      EXPECT_TRUE(satisfies(pc, cached.model)) << "round " << round;
      for (std::size_t v = 0; v < cached.model.inputs.size() && v < 3; ++v) {
        EXPECT_GE(cached.model.inputs[v], doms[v].lo);
        EXPECT_LE(cached.model.inputs[v], doms[v].hi);
      }
    }
  }
  // The fuzz stream must actually exercise the recycling tiers.
  EXPECT_GT(cache.stats().hits(), 0u);
}

// End-to-end through the executor: exploration with a cache yields the same
// paths and statuses as without one (witness models may differ — both are
// verified — so paths are compared by decisions and terminal).
TEST(SolverCache, ExecutorExplorationMatchesUncached) {
  for (const auto& entry : standard_corpus()) {
    if (entry.program.num_threads() != 1) continue;
    ExploreOptions base;
    base.input_domains = domains_of(entry);

    SymbolicExecutor plain(entry.program, base);
    const auto expected = plain.explore();

    SolverCache cache;
    ExploreOptions with_cache = base;
    with_cache.solver_cache = &cache;
    SymbolicExecutor cached(entry.program, with_cache);
    const auto got = cached.explore();

    ASSERT_EQ(got.size(), expected.size()) << entry.program.name;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].decisions, expected[i].decisions);
      EXPECT_EQ(got[i].terminal, expected[i].terminal);
      if (got[i].model_verified) {
        EXPECT_TRUE(satisfies(got[i].constraints, got[i].model));
      }
    }
    EXPECT_EQ(cached.stats().complete, plain.stats().complete);
    EXPECT_EQ(cached.stats().solver_calls, plain.stats().solver_calls);
    const auto& s = cached.stats();
    EXPECT_LE(s.solver_cache_hits + s.solver_unsat_subsumed +
                  s.solver_models_reused,
              s.solver_calls);
    // The uncached run must report zero recycling.
    EXPECT_EQ(plain.stats().solver_cache_hits, 0u);
  }
}

}  // namespace
}  // namespace softborg
