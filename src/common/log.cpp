#include "common/log.h"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace softborg {

namespace {

// SOFTBORG_LOG=debug|info|warn|error (case-insensitive, or the numeric
// level). Unset or unparsable keeps the compiled-in default.
int initial_level() {
  const char* env = std::getenv("SOFTBORG_LOG");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kWarn);
  }
  if (env[0] >= '0' && env[0] <= '3' && env[1] == '\0') {
    return env[0] - '0';
  }
  char word[8] = {};
  for (std::size_t i = 0; i < sizeof(word) - 1 && env[i] != '\0'; ++i) {
    word[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(env[i])));
  }
  if (std::strcmp(word, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(word, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(word, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(word, "error") == 0) return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int> g_level{initial_level()};
std::mutex g_io_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* level_name_json(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

// SOFTBORG_LOG_JSON=1 switches every line to one structured JSON object:
//   {"ts":"...","level":"warn","component":"dist","msg":"..."}
bool json_mode() {
  static const bool on = [] {
    const char* env = std::getenv("SOFTBORG_LOG_JSON");
    return env != nullptr && std::strcmp(env, "1") == 0;
  }();
  return on;
}

// Appends `s` JSON-escaped; stops (and NUL-terminates) when out runs out.
void append_json_escaped(char* out, std::size_t size, std::size_t& pos,
                         const char* s) {
  for (; *s != '\0' && pos + 7 < size; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out[pos++] = '\\';
      out[pos++] = static_cast<char>(c);
    } else if (c < 0x20) {
      pos += static_cast<std::size_t>(
          std::snprintf(out + pos, size - pos, "\\u%04x", c));
    } else {
      out[pos++] = static_cast<char>(c);
    }
  }
  out[pos] = '\0';
}

void append_raw(char* out, std::size_t size, std::size_t& pos,
                const char* s) {
  for (; *s != '\0' && pos + 1 < size; ++s) out[pos++] = *s;
  out[pos] = '\0';
}

// "YYYY-MM-DD HH:MM:SS.mmm" in local time.
void format_timestamp(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  char date[32];
  std::strftime(date, sizeof(date), "%Y-%m-%d %H:%M:%S", &tm);
  std::snprintf(buf, size, "%s.%03d", date, static_cast<int>(ms));
}

void vlog(LogLevel level, const char* component, const char* fmt,
          va_list args) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[2048];
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  char stamp[48];
  format_timestamp(stamp, sizeof(stamp));

  // The whole line is assembled in one buffer and emitted with ONE write(2):
  // stderr is unbuffered, so a multi-part fprintf can reach the fd as
  // several writes — and forked fleet processes share that fd, where the
  // mutex (process-local) cannot prevent mid-line interleaving. A single
  // short write is atomic on pipes up to PIPE_BUF, which covers CI's
  // captured logs.
  char line[4608];
  std::size_t pos = 0;
  const bool tagged = component != nullptr && *component != '\0';
  if (json_mode()) {
    append_raw(line, sizeof(line), pos, "{\"ts\":\"");
    append_raw(line, sizeof(line), pos, stamp);
    append_raw(line, sizeof(line), pos, "\",\"level\":\"");
    append_raw(line, sizeof(line), pos, level_name_json(level));
    if (tagged) {
      append_raw(line, sizeof(line), pos, "\",\"component\":\"");
      append_json_escaped(line, sizeof(line), pos, component);
    }
    append_raw(line, sizeof(line), pos, "\",\"msg\":\"");
    append_json_escaped(line, sizeof(line), pos, buf);
    append_raw(line, sizeof(line), pos, "\"}\n");
  } else {
    append_raw(line, sizeof(line), pos, "[");
    append_raw(line, sizeof(line), pos, stamp);
    append_raw(line, sizeof(line), pos, "] [");
    append_raw(line, sizeof(line), pos, level_name(level));
    append_raw(line, sizeof(line), pos, "] ");
    if (tagged) {
      append_raw(line, sizeof(line), pos, "[");
      append_raw(line, sizeof(line), pos, component);
      append_raw(line, sizeof(line), pos, "] ");
    }
    append_raw(line, sizeof(line), pos, buf);
    append_raw(line, sizeof(line), pos, "\n");
  }

  std::lock_guard<std::mutex> lock(g_io_mu);
  const char* p = line;
  std::size_t left = pos;
  while (left > 0) {
    const ssize_t n = ::write(STDERR_FILENO, p, left);
    if (n <= 0) break;
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_at(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlog(level, nullptr, fmt, args);
  va_end(args);
}

void log_tagged(LogLevel level, const char* component, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlog(level, component, fmt, args);
  va_end(args);
}

}  // namespace softborg
