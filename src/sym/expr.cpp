#include "sym/expr.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace softborg {

const char* binop_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
  }
  return "?";
}

Expr make_const(Value v) {
  auto node = std::make_shared<ExprNode>();
  node->kind = ExprKind::kConst;
  node->cval = v;
  return node;
}

Expr make_input(std::uint32_t slot) {
  auto node = std::make_shared<ExprNode>();
  node->kind = ExprKind::kInput;
  node->index = slot;
  return node;
}

Expr make_unknown(std::uint32_t ordinal) {
  auto node = std::make_shared<ExprNode>();
  node->kind = ExprKind::kUnknown;
  node->index = ordinal;
  return node;
}

Value eval_binop(BinOp op, Value a, Value b) {
  switch (op) {
    case BinOp::kAdd:
      return static_cast<Value>(static_cast<std::uint64_t>(a) +
                                static_cast<std::uint64_t>(b));
    case BinOp::kSub:
      return static_cast<Value>(static_cast<std::uint64_t>(a) -
                                static_cast<std::uint64_t>(b));
    case BinOp::kMul:
      return static_cast<Value>(static_cast<std::uint64_t>(a) *
                                static_cast<std::uint64_t>(b));
    case BinOp::kDiv:
      SB_CHECK(b != 0);
      return (a == INT64_MIN && b == -1) ? INT64_MIN : a / b;
    case BinOp::kMod:
      SB_CHECK(b != 0);
      return (a == INT64_MIN && b == -1) ? 0 : a % b;
    case BinOp::kLt: return a < b;
    case BinOp::kLe: return a <= b;
    case BinOp::kEq: return a == b;
    case BinOp::kNe: return a != b;
  }
  return 0;
}

Expr make_bin(BinOp op, Expr lhs, Expr rhs) {
  SB_CHECK(lhs != nullptr && rhs != nullptr);
  if (is_const(lhs) && is_const(rhs)) {
    // Fold unless it would divide by zero — keep that symbolic so the
    // executor's crash check sees it.
    if (!((op == BinOp::kDiv || op == BinOp::kMod) && rhs->cval == 0)) {
      return make_const(eval_binop(op, lhs->cval, rhs->cval));
    }
  }
  // Algebraic identities keep expression DAGs small, which directly cuts
  // solver cost. ONLY identities that return one of the operands are legal
  // here: an identity that folded a tainted-operand expression to a
  // constant (x-x, x*0, x==x, ...) would break the taint<->symbolic
  // correspondence — the interpreter taints such results and records a
  // trace bit, so the symbolic executor must keep them symbolic too.
  const bool lhs0 = is_const(lhs) && lhs->cval == 0;
  const bool rhs0 = is_const(rhs) && rhs->cval == 0;
  const bool lhs1 = is_const(lhs) && lhs->cval == 1;
  const bool rhs1 = is_const(rhs) && rhs->cval == 1;
  switch (op) {
    case BinOp::kAdd:
      if (lhs0) return rhs;
      if (rhs0) return lhs;
      break;
    case BinOp::kSub:
      if (rhs0) return lhs;
      break;
    case BinOp::kMul:
      if (lhs1) return rhs;
      if (rhs1) return lhs;
      break;
    case BinOp::kDiv:
      if (rhs1) return lhs;
      break;
    default:
      break;
  }
  auto node = std::make_shared<ExprNode>();
  node->kind = ExprKind::kBin;
  node->op = op;
  node->lhs = std::move(lhs);
  node->rhs = std::move(rhs);
  return node;
}

namespace {

// Expressions are DAGs (register reuse shares subtrees); every walk must
// memoize on node identity or evaluation goes exponential.
Value eval_memo(const ExprNode* e, const std::vector<Value>& inputs,
                const std::vector<Value>& unknowns,
                std::unordered_map<const ExprNode*, Value>& memo) {
  switch (e->kind) {
    case ExprKind::kConst:
      return e->cval;
    case ExprKind::kInput:
      return e->index < inputs.size() ? inputs[e->index] : 0;
    case ExprKind::kUnknown:
      return e->index < unknowns.size() ? unknowns[e->index] : 0;
    case ExprKind::kBin: {
      auto it = memo.find(e);
      if (it != memo.end()) return it->second;
      const Value a = eval_memo(e->lhs.get(), inputs, unknowns, memo);
      const Value b = eval_memo(e->rhs.get(), inputs, unknowns, memo);
      Value r;
      if ((e->op == BinOp::kDiv || e->op == BinOp::kMod) && b == 0) {
        // Division by zero under this assignment: define as 0 for the
        // purpose of constraint evaluation (the executor treats divisor==0
        // as a crash condition separately).
        r = 0;
      } else {
        r = eval_binop(e->op, a, b);
      }
      memo.emplace(e, r);
      return r;
    }
  }
  return 0;
}

void max_indices_memo(const ExprNode* e, int* max_input, int* max_unknown,
                      std::unordered_set<const ExprNode*>& seen) {
  switch (e->kind) {
    case ExprKind::kConst:
      return;
    case ExprKind::kInput:
      *max_input = std::max(*max_input, static_cast<int>(e->index));
      return;
    case ExprKind::kUnknown:
      *max_unknown = std::max(*max_unknown, static_cast<int>(e->index));
      return;
    case ExprKind::kBin:
      if (!seen.insert(e).second) return;
      max_indices_memo(e->lhs.get(), max_input, max_unknown, seen);
      max_indices_memo(e->rhs.get(), max_input, max_unknown, seen);
      return;
  }
}

}  // namespace

Value eval_expr(const Expr& e, const std::vector<Value>& inputs,
                const std::vector<Value>& unknowns) {
  std::unordered_map<const ExprNode*, Value> memo;
  return eval_memo(e.get(), inputs, unknowns, memo);
}

void max_indices(const Expr& e, int* max_input, int* max_unknown) {
  std::unordered_set<const ExprNode*> seen;
  max_indices_memo(e.get(), max_input, max_unknown, seen);
}

namespace {
std::string expr_to_string_depth(const ExprNode* e, int depth) {
  switch (e->kind) {
    case ExprKind::kConst:
      return std::to_string(e->cval);
    case ExprKind::kInput:
      return "in" + std::to_string(e->index);
    case ExprKind::kUnknown:
      return "sys" + std::to_string(e->index);
    case ExprKind::kBin:
      if (depth <= 0) return "(...)";  // DAGs can be huge; elide deep parts
      return "(" + expr_to_string_depth(e->lhs.get(), depth - 1) + " " +
             binop_name(e->op) + " " +
             expr_to_string_depth(e->rhs.get(), depth - 1) + ")";
  }
  return "?";
}
}  // namespace

std::string expr_to_string(const Expr& e) {
  return expr_to_string_depth(e.get(), 12);
}

std::string path_to_string(const PathConstraint& pc) {
  std::string s;
  for (const auto& lit : pc) {
    if (!s.empty()) s += " && ";
    s += (lit.expected ? "" : "!") + expr_to_string(lit.cond);
  }
  return s.empty() ? "true" : s;
}

}  // namespace softborg
