# Empty compiler generated dependencies file for bench_e3_bug_density.
# This may be replaced when dependencies are built.
