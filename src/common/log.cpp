#include "common/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace softborg {

namespace {

// SOFTBORG_LOG=debug|info|warn|error (case-insensitive, or the numeric
// level). Unset or unparsable keeps the compiled-in default.
int initial_level() {
  const char* env = std::getenv("SOFTBORG_LOG");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kWarn);
  }
  if (env[0] >= '0' && env[0] <= '3' && env[1] == '\0') {
    return env[0] - '0';
  }
  char word[8] = {};
  for (std::size_t i = 0; i < sizeof(word) - 1 && env[i] != '\0'; ++i) {
    word[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(env[i])));
  }
  if (std::strcmp(word, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(word, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(word, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(word, "error") == 0) return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int> g_level{initial_level()};
std::mutex g_io_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

// "YYYY-MM-DD HH:MM:SS.mmm" in local time.
void format_timestamp(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  char date[32];
  std::strftime(date, sizeof(date), "%Y-%m-%d %H:%M:%S", &tm);
  std::snprintf(buf, size, "%s.%03d", date, static_cast<int>(ms));
}

void vlog(LogLevel level, const char* component, const char* fmt,
          va_list args) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[2048];
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  char stamp[48];
  format_timestamp(stamp, sizeof(stamp));
  std::lock_guard<std::mutex> lock(g_io_mu);
  if (component != nullptr && *component != '\0') {
    std::fprintf(stderr, "[%s] [%s] [%s] %s\n", stamp, level_name(level),
                 component, buf);
  } else {
    std::fprintf(stderr, "[%s] [%s] %s\n", stamp, level_name(level), buf);
  }
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_at(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlog(level, nullptr, fmt, args);
  va_end(args);
}

void log_tagged(LogLevel level, const char* component, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlog(level, component, fmt, args);
  va_end(args);
}

}  // namespace softborg
