// Environment model: the program-external world MiniVM programs interact
// with via kSyscall. Results are drawn from per-syscall distributions
// (seeded, deterministic), and can be overridden by a hive guidance
// FaultPlan ("produce specific test cases ... in terms of system call
// faults to be injected (e.g., a short socket read())", §3.3).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "minivm/program.h"

namespace softborg {

struct SyscallSpec {
  Value lo = 0;            // nominal result range [lo, hi]
  Value hi = 0;
  double fail_prob = 0.0;  // probability of returning fail_value
  Value fail_value = -1;
  bool arg_bounded = true;  // if true, nominal result is clamped to [0, arg]
};

// Forced syscall results, keyed by dynamic call index (the N-th syscall
// executed in the run). Used by guidance directives for fault injection.
struct FaultPlan {
  std::map<std::uint32_t, Value> forced;
};

class EnvModel {
 public:
  // Default world: sys 0 = read (short reads possible), sys 1 = alloc
  // (rare failure), sys 2 = clock, sys 3 = net send (fails sometimes).
  EnvModel();
  explicit EnvModel(std::vector<SyscallSpec> specs)
      : specs_(std::move(specs)) {}

  const SyscallSpec& spec(std::uint16_t sys_id) const;

  // Result of syscall #call_index with id sys_id and argument arg.
  Value call(std::uint16_t sys_id, Value arg, std::uint32_t call_index,
             Rng& rng, const FaultPlan* faults) const;

  // Coarse result classification for the trace summary:
  // -1 failure, 1 partial/short (result < arg for arg-bounded calls), 0 ok.
  std::int8_t classify(std::uint16_t sys_id, Value arg, Value result) const;

  std::size_t num_syscalls() const { return specs_.size(); }

 private:
  std::vector<SyscallSpec> specs_;
};

}  // namespace softborg
